// Embedding atlas: train SARN, project the embeddings with PCA and export a
// GeoJSON map where each road segment is colored by its first principal
// component — open the file in geojson.io / QGIS / kepler.gl and the learned
// spatial structure becomes visible (smooth color gradients over the city,
// discontinuities at the river).
//
//   ./build/examples/embedding_atlas [output.geojson]

#include <cstdio>
#include <string>

#include "core/sarn_model.h"
#include "roadnet/geojson.h"
#include "roadnet/synthetic_city.h"
#include "tensor/pca.h"

using namespace sarn;  // NOLINT: example brevity.

int main(int argc, char** argv) {
  std::string path = argc > 1 ? argv[1] : "/tmp/sarn_embedding_atlas.geojson";

  roadnet::SyntheticCityConfig city_config;
  city_config.rows = 18;
  city_config.cols = 18;
  roadnet::RoadNetwork network = roadnet::GenerateSyntheticCity(city_config);
  std::printf("City: %lld segments\n", static_cast<long long>(network.num_segments()));

  core::SarnConfig config;
  config.embedding_dim = 32;
  config.hidden_dim = 32;
  config.projection_dim = 16;
  config.gat_heads = 2;
  config.max_epochs = 15;
  core::FitCellSideToNetwork(config, network);
  core::SarnModel model(network, config);
  core::TrainStats stats = model.Train();
  std::printf("SARN trained for %d epochs (loss %.3f)\n", stats.epochs_run,
              stats.final_loss);

  tensor::PcaResult pca = tensor::Pca(model.Embeddings(), /*num_components=*/2);
  std::printf("PCA explained variance: %.3f, %.3f\n", pca.explained_variance[0],
              pca.explained_variance[1]);

  roadnet::GeoJsonOptions options;
  for (int64_t i = 0; i < network.num_segments(); ++i) {
    options.values.push_back(pca.projections.at(i, 0));
  }
  if (!roadnet::ExportGeoJson(network, path, options)) {
    std::printf("FAILED to write %s\n", path.c_str());
    return 1;
  }
  std::printf("Wrote %s — open it in geojson.io and color by the "
              "\"color\" property.\n",
              path.c_str());
  return 0;
}
