// Quickstart: generate a synthetic city, train SARN, and inspect what the
// embeddings learned.
//
//   ./build/examples/quickstart
//
// Walks through the full public API surface: city generation, the spatial
// similarity matrix, SARN training, and nearest-neighbor queries in the
// learned embedding space.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/sarn_model.h"
#include "core/spatial_similarity.h"
#include "geo/point.h"
#include "roadnet/synthetic_city.h"
#include "tasks/embedding_index.h"
#include "tensor/ops.h"

using namespace sarn;  // NOLINT: example brevity.

int main() {
  // 1. A small synthetic city (substitute for an OpenStreetMap extract).
  roadnet::SyntheticCityConfig city_config;
  city_config.rows = 16;
  city_config.cols = 16;
  roadnet::RoadNetwork network = roadnet::GenerateSyntheticCity(city_config);
  std::printf("City: %lld road segments, %zu topological edges, %.2f x %.2f km\n",
              static_cast<long long>(network.num_segments()),
              network.topo_edges().size(),
              network.bounding_box().WidthMeters() / 1000.0,
              network.bounding_box().HeightMeters() / 1000.0);

  // 2. The spatial similarity matrix A^s (paper Eq. 3-5).
  core::SpatialSimilarityConfig similarity_config;
  std::vector<core::SpatialEdge> spatial_edges =
      core::BuildSpatialEdges(network, similarity_config);
  std::printf("Spatial similarity matrix: %zu undirected spatial edges "
              "(%lld dual-typed)\n",
              spatial_edges.size(),
              static_cast<long long>(core::CountDualTypedEdges(network, spatial_edges)));

  // 3. Train SARN (Algorithm 1).
  core::SarnConfig config;
  config.embedding_dim = 32;
  config.hidden_dim = 32;
  config.projection_dim = 16;
  config.gat_heads = 2;
  config.max_epochs = 15;
  core::FitCellSideToNetwork(config, network);
  core::SarnModel model(network, config);
  core::TrainStats stats = model.Train();
  std::printf("SARN trained: %d epochs, final contrastive loss %.3f (%.1fs)\n",
              stats.epochs_run, stats.final_loss, stats.seconds);

  // 4. The learned embeddings served through the top-k index: nearest
  // neighbors of a motorway segment.
  tasks::EmbeddingIndex index(model.Embeddings(), tasks::IndexMetric::kCosine);
  int64_t query = 0;
  for (int64_t i = 0; i < network.num_segments(); ++i) {
    if (network.segment(i).type == roadnet::HighwayType::kMotorway) {
      query = i;
      break;
    }
  }
  const roadnet::RoadSegment& q = network.segment(query);
  std::printf("\nQuery segment #%lld: %s, %.0f m, midpoint (%.5f, %.5f)\n",
              static_cast<long long>(query), roadnet::HighwayName(q.type).c_str(),
              q.length_meters, q.Midpoint().lat, q.Midpoint().lng);
  std::printf("Top-5 most similar segments in embedding space:\n");
  for (const tasks::Neighbor& neighbor : index.QueryById(query, 5)) {
    const roadnet::RoadSegment& s = network.segment(neighbor.id);
    double meters = geo::HaversineMeters(q.Midpoint(), s.Midpoint());
    std::printf("  #%-5lld cos=%.3f  %-11s %4.0f m away\n",
                static_cast<long long>(neighbor.id), neighbor.score,
                roadnet::HighwayName(s.type).c_str(), meters);
  }
  std::printf("\nSpatially close, similarly-oriented segments of the same class should\n"
              "dominate this list — that is SARN's spatial structure awareness.\n");
  return 0;
}
