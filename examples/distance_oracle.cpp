// Shortest-path distance oracle — the paper's third downstream task as an
// application: answer road-network distance queries from embeddings in
// microseconds instead of running Dijkstra per query.
//
//   ./build/examples/distance_oracle

#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "core/sarn_model.h"
#include "graph/dijkstra.h"
#include "roadnet/synthetic_city.h"
#include "tasks/embedding_index.h"
#include "tasks/embedding_source.h"
#include "tasks/spd_task.h"

using namespace sarn;  // NOLINT: example brevity.

int main() {
  roadnet::SyntheticCityConfig city_config;
  city_config.rows = 16;
  city_config.cols = 16;
  roadnet::RoadNetwork network = roadnet::GenerateSyntheticCity(city_config);
  std::printf("City: %lld segments\n", static_cast<long long>(network.num_segments()));

  // Self-supervised embeddings (no distance labels used in training!).
  core::SarnConfig config;
  config.embedding_dim = 32;
  config.hidden_dim = 32;
  config.projection_dim = 16;
  config.gat_heads = 2;
  config.max_epochs = 15;
  core::FitCellSideToNetwork(config, network);
  core::SarnModel model(network, config);
  model.Train();

  // A small supervised regressor on embedding differences = the oracle.
  tasks::SpdConfig task_config;
  task_config.num_train_pairs = 3000;
  task_config.num_test_pairs = 600;
  task_config.epochs = 100;
  tasks::SpdTask task(network, task_config);
  tasks::FrozenEmbeddingSource source(model.Embeddings());
  tasks::SpdResult result = task.Evaluate(source);
  std::printf("Oracle accuracy on %lld held-out OD pairs: MAE %.0f m, MRE %.1f%%\n",
              static_cast<long long>(result.num_test_pairs), result.mae_meters,
              100.0 * result.mre);

  // Latency contrast vs exact Dijkstra.
  graph::CsrGraph routing = network.ToLengthWeightedGraph();
  Rng rng(7);
  const int kQueries = 200;
  Timer dijkstra_timer;
  double sink = 0.0;
  for (int q = 0; q < kQueries; ++q) {
    graph::VertexId source_vertex = rng.UniformInt(0, routing.num_vertices() - 1);
    graph::VertexId target = rng.UniformInt(0, routing.num_vertices() - 1);
    auto d = graph::ShortestPathDistance(routing, source_vertex, target);
    sink += d.value_or(0.0);
  }
  double dijkstra_us = dijkstra_timer.ElapsedMillis() * 1000.0 / kQueries;
  std::printf("Exact Dijkstra: %.1f us/query. The embedding oracle costs one\n"
              "d-dimensional FFN evaluation (~%lld MACs) per query regardless of\n"
              "network size — constant time where Dijkstra grows with the graph.\n",
              dijkstra_us,
              static_cast<long long>(config.embedding_dim * 20 + 20));
  (void)sink;

  // The same embeddings also serve nearest-neighbor lookups: one batched
  // scan answers many queries at once (this is the primitive `sarn serve`
  // micro-batches behind its NDJSON interface).
  tasks::EmbeddingIndex index(model.Embeddings(), tasks::IndexMetric::kCosine);
  std::vector<tasks::IndexQuery> batch;
  for (int i = 0; i < kQueries; ++i) {
    batch.push_back(tasks::IndexQuery::ById(
        rng.UniformInt(0, network.num_segments() - 1)));
  }
  Timer batch_timer;
  std::vector<std::vector<tasks::Neighbor>> neighbors = index.QueryBatch(batch, 5);
  double batch_us = batch_timer.ElapsedMillis() * 1000.0 / kQueries;
  std::printf("Batched top-5 neighbor scan over all %lld segments: %.1f us/query\n"
              "(segment %lld looks most like segment %lld, cosine %.3f).\n",
              static_cast<long long>(network.num_segments()), batch_us,
              static_cast<long long>(batch[0].id),
              static_cast<long long>(neighbors[0][0].id), neighbors[0][0].score);
  return 0;
}
