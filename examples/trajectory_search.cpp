// Trajectory similarity search — the carpooling scenario from the paper's
// introduction: find users with commute trajectories similar to a query, in
// linear time, by comparing trajectory embeddings instead of running
// quadratic-time point-to-point distance computations.
//
//   ./build/examples/trajectory_search
//
// Pipeline: synthetic city -> synthetic GPS trips -> map matching -> SARN
// segment embeddings -> GRU trajectory encoder -> top-k search, with the
// exact discrete Fréchet ranking as the reference.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/timer.h"
#include "core/sarn_model.h"
#include "roadnet/synthetic_city.h"
#include "tasks/embedding_source.h"
#include "tasks/traj_similarity_task.h"
#include "tensor/ops.h"
#include "traj/frechet.h"
#include "traj/map_matching.h"
#include "traj/trajectory_generator.h"

using namespace sarn;  // NOLINT: example brevity.

int main() {
  roadnet::SyntheticCityConfig city_config;
  city_config.rows = 16;
  city_config.cols = 16;
  roadnet::RoadNetwork network = roadnet::GenerateSyntheticCity(city_config);

  // Simulated commuter GPS trips, map-matched onto the network.
  traj::TrajectoryGeneratorConfig generator_config;
  generator_config.min_route_segments = 8;
  traj::TrajectoryGenerator generator(network, generator_config);
  traj::MapMatcher matcher(network);
  std::vector<traj::MatchedTrajectory> commutes;
  for (const traj::GeneratedTrajectory& trip : generator.Generate(160)) {
    traj::MatchedTrajectory matched = matcher.Match(trip.gps);
    if (matched.size() >= 2) commutes.push_back(traj::TruncateSegments(matched, 60));
  }
  std::printf("%zu commute trajectories map-matched onto %lld segments\n",
              commutes.size(), static_cast<long long>(network.num_segments()));

  // Task-agnostic SARN embeddings, then a small supervised GRU ranking head
  // (exactly the paper's downstream-task protocol).
  core::SarnConfig config;
  config.embedding_dim = 32;
  config.hidden_dim = 32;
  config.projection_dim = 16;
  config.gat_heads = 2;
  config.max_epochs = 15;
  core::FitCellSideToNetwork(config, network);
  core::SarnModel model(network, config);
  model.Train();

  tasks::TrajSimConfig task_config;
  task_config.epochs = 4;
  tasks::TrajectorySimilarityTask task(network, commutes, task_config);
  tasks::FrozenEmbeddingSource source(model.Embeddings());

  Timer timer;
  tasks::TrajSimResult result = task.Evaluate(source);
  std::printf("Embedding-based top-k search quality over %lld held-out commutes:\n"
              "  HR@5 = %.1f%%   HR@20 = %.1f%%   R5@20 = %.1f%%   (%.1fs)\n",
              static_cast<long long>(result.num_test), 100.0 * result.hr5,
              100.0 * result.hr20, 100.0 * result.r5_20, timer.ElapsedMillis() / 1000.0);

  // Cost contrast: embedding comparison is O(d) per candidate; the exact
  // Fréchet reference is O(len^2) haversine evaluations per candidate.
  Timer exact_timer;
  double sink = 0.0;
  std::vector<geo::LatLng> a = traj::MatchedMidpoints(commutes[0], network);
  for (size_t c = 1; c < std::min<size_t>(commutes.size(), 50); ++c) {
    sink += traj::DiscreteFrechet(a, traj::MatchedMidpoints(commutes[c], network));
  }
  std::printf("Exact Fréchet against 49 candidates: %.1f ms "
              "(embeddings make this a linear scan of vectors)\n",
              exact_timer.ElapsedMillis());
  (void)sink;
  return 0;
}
