// City explorer: exercises the road-network substrate end-to-end without any
// learning — generation, statistics, persistence, routing and map matching.
// A good smoke test that the synthetic-data substitutes behave like the real
// datasets they replace (DESIGN.md §3).
//
//   ./build/examples/city_explorer [scale]

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>

#include "common/timer.h"
#include "core/spatial_similarity.h"
#include "graph/dijkstra.h"
#include "roadnet/io.h"
#include "roadnet/synthetic_city.h"
#include "tasks/metrics.h"
#include "traj/map_matching.h"
#include "traj/trajectory_generator.h"

using namespace sarn;  // NOLINT: example brevity.

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.05;
  Timer timer;
  roadnet::RoadNetwork network =
      roadnet::GenerateSyntheticCity(roadnet::ChengduLikeConfig(scale));
  std::printf("Generated CD-like city at scale %.3f in %.0f ms:\n", scale,
              timer.ElapsedMillis());
  std::printf("  %lld segments, %zu topological edges, %.2f x %.2f km, "
              "mean length %.0f m\n",
              static_cast<long long>(network.num_segments()),
              network.topo_edges().size(),
              network.bounding_box().WidthMeters() / 1000.0,
              network.bounding_box().HeightMeters() / 1000.0,
              network.MeanSegmentLength());

  std::map<roadnet::HighwayType, int> type_counts;
  for (const roadnet::RoadSegment& s : network.segments()) ++type_counts[s.type];
  std::printf("  Road hierarchy:");
  for (const auto& [type, count] : type_counts) {
    std::printf(" %s=%d", roadnet::HighwayName(type).c_str(), count);
  }
  std::printf("\n");

  std::vector<int64_t> types, speeds;
  for (const roadnet::RoadSegment& s : network.segments()) {
    if (s.speed_limit_kmh) {
      types.push_back(static_cast<int64_t>(s.type));
      speeds.push_back(*s.speed_limit_kmh);
    }
  }
  std::printf("  Type<->speed NMI: %.2f (paper: 0.80 for Chengdu)\n",
              tasks::NormalizedMutualInformation(types, speeds));

  // Spatial structure.
  timer.Reset();
  auto spatial = core::BuildSpatialEdges(network, core::SpatialSimilarityConfig{});
  std::printf("  A^s built in %.0f ms: %zu spatial edges, %lld dual-typed\n",
              timer.ElapsedMillis(), spatial.size(),
              static_cast<long long>(core::CountDualTypedEdges(network, spatial)));

  // Persistence round trip.
  std::string path = "/tmp/sarn_city_explorer.csv";
  roadnet::SaveRoadNetworkCsv(network, path);
  auto loaded = roadnet::LoadRoadNetworkCsv(path);
  std::printf("  CSV round trip: %s (%lld segments)\n",
              loaded.has_value() ? "ok" : "FAILED",
              loaded ? static_cast<long long>(loaded->num_segments()) : 0);

  // Routing.
  graph::CsrGraph routing = network.ToLengthWeightedGraph();
  graph::ShortestPathTree tree = Dijkstra(routing, 0);
  int64_t reachable = 0;
  double max_distance = 0;
  for (double d : tree.distance) {
    if (d != graph::kInfiniteDistance) {
      ++reachable;
      max_distance = std::max(max_distance, d);
    }
  }
  std::printf("  Dijkstra from segment 0: %lld/%lld reachable, eccentricity %.1f km\n",
              static_cast<long long>(reachable),
              static_cast<long long>(network.num_segments()), max_distance / 1000.0);

  // Trips + map matching quality.
  traj::TrajectoryGenerator generator(network, {});
  traj::MapMatcher matcher(network);
  auto trips = generator.Generate(30);
  double recall = 0;
  for (const auto& trip : trips) {
    traj::MatchedTrajectory matched = matcher.Match(trip.gps);
    std::set<roadnet::SegmentId> matched_set(matched.segments.begin(),
                                             matched.segments.end());
    int hits = 0;
    for (roadnet::SegmentId sid : trip.ground_truth) hits += matched_set.count(sid);
    recall += static_cast<double>(hits) / trip.ground_truth.size();
  }
  std::printf("  %zu GPS trips generated; map-matching route recall %.0f%%\n",
              trips.size(), 100.0 * recall / trips.size());
  return 0;
}
