#include "geo/point.h"

#include <algorithm>

namespace sarn::geo {

double HaversineMeters(const LatLng& a, const LatLng& b) {
  double lat1 = DegToRad(a.lat);
  double lat2 = DegToRad(b.lat);
  double dlat = lat2 - lat1;
  double dlng = DegToRad(b.lng - a.lng);
  double s1 = std::sin(dlat / 2.0);
  double s2 = std::sin(dlng / 2.0);
  double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  h = std::min(1.0, h);
  return 2.0 * kEarthRadiusMeters * std::asin(std::sqrt(h));
}

double AngularDistance(double radian_a, double radian_b) {
  double diff = std::fmod(std::fabs(radian_a - radian_b), 2.0 * kPi);
  if (diff > kPi) diff = 2.0 * kPi - diff;
  return diff;
}

double SegmentRadian(const LatLng& a, const LatLng& b) {
  double mid_lat = DegToRad((a.lat + b.lat) / 2.0);
  double dx = (b.lng - a.lng) * std::cos(mid_lat);  // East component (deg-equivalent).
  double dy = b.lat - a.lat;                        // North component.
  double angle = std::atan2(dy, dx);
  if (angle < 0) angle += 2.0 * kPi;
  return angle;
}

LocalProjection::LocalProjection(const LatLng& origin) : origin_(origin) {
  meters_per_deg_lat_ = kEarthRadiusMeters * kPi / 180.0;
  meters_per_deg_lng_ = meters_per_deg_lat_ * std::cos(DegToRad(origin.lat));
}

LatLng LocalProjection::ToLatLng(double x_meters, double y_meters) const {
  return LatLng{origin_.lat + y_meters / meters_per_deg_lat_,
                origin_.lng + x_meters / meters_per_deg_lng_};
}

void LocalProjection::ToMeters(const LatLng& p, double* x_meters, double* y_meters) const {
  *x_meters = (p.lng - origin_.lng) * meters_per_deg_lng_;
  *y_meters = (p.lat - origin_.lat) * meters_per_deg_lat_;
}

double BoundingBox::WidthMeters() const {
  double mid_lat = (min_lat + max_lat) / 2.0;
  return HaversineMeters(LatLng{mid_lat, min_lng}, LatLng{mid_lat, max_lng});
}

double BoundingBox::HeightMeters() const {
  double mid_lng = (min_lng + max_lng) / 2.0;
  return HaversineMeters(LatLng{min_lat, mid_lng}, LatLng{max_lat, mid_lng});
}

}  // namespace sarn::geo
