#include "geo/grid.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace sarn::geo {

Grid::Grid(const BoundingBox& box, double cell_side_meters)
    : box_(box), cell_side_meters_(cell_side_meters) {
  SARN_CHECK_GT(cell_side_meters, 0.0);
  SARN_CHECK_LE(box.min_lat, box.max_lat);
  SARN_CHECK_LE(box.min_lng, box.max_lng);
  double height = std::max(1.0, box.HeightMeters());
  double width = std::max(1.0, box.WidthMeters());
  rows_ = std::max(1, static_cast<int>(std::ceil(height / cell_side_meters)));
  cols_ = std::max(1, static_cast<int>(std::ceil(width / cell_side_meters)));
  lat_per_cell_ = (box.max_lat - box.min_lat) / rows_;
  lng_per_cell_ = (box.max_lng - box.min_lng) / cols_;
  if (lat_per_cell_ <= 0) lat_per_cell_ = 1e-9;
  if (lng_per_cell_ <= 0) lng_per_cell_ = 1e-9;
}

int Grid::RowOf(const LatLng& p) const {
  int row = static_cast<int>((p.lat - box_.min_lat) / lat_per_cell_);
  return std::clamp(row, 0, rows_ - 1);
}

int Grid::ColOf(const LatLng& p) const {
  int col = static_cast<int>((p.lng - box_.min_lng) / lng_per_cell_);
  return std::clamp(col, 0, cols_ - 1);
}

int Grid::CellOf(const LatLng& p) const { return RowOf(p) * cols_ + ColOf(p); }

std::vector<int> Grid::CellsWithinRadius(const LatLng& p, double radius_meters) const {
  int row = RowOf(p);
  int col = ColOf(p);
  int span = static_cast<int>(std::ceil(radius_meters / cell_side_meters_)) + 1;
  std::vector<int> cells;
  for (int r = std::max(0, row - span); r <= std::min(rows_ - 1, row + span); ++r) {
    for (int c = std::max(0, col - span); c <= std::min(cols_ - 1, col + span); ++c) {
      cells.push_back(r * cols_ + c);
    }
  }
  return cells;
}

}  // namespace sarn::geo
