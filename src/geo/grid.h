// Uniform grid partitioning of a geographic region.
//
// Two users:
//  * core/negative_queue: the paper's spatial distance-based negative
//    sampling partitions the road-network space with a grid of side length
//    `clen` and keeps one embedding queue per cell (paper §4.4, Fig. 3).
//  * geo/spatial_index: radius queries for A^s construction and map-matching.

#ifndef SARN_GEO_GRID_H_
#define SARN_GEO_GRID_H_

#include <cstdint>
#include <vector>

#include "geo/point.h"

namespace sarn::geo {

/// A fixed uniform grid over a bounding box, with square-ish cells of a
/// requested side length in meters. Cells are indexed row-major:
/// cell = row * cols + col, row 0 at min_lat, col 0 at min_lng.
class Grid {
 public:
  /// Builds a grid covering `box` with cells of approximately
  /// `cell_side_meters` on each side (at least 1x1).
  Grid(const BoundingBox& box, double cell_side_meters);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int num_cells() const { return rows_ * cols_; }
  double cell_side_meters() const { return cell_side_meters_; }
  const BoundingBox& box() const { return box_; }

  /// Cell index of a point. Points outside the box are clamped to the
  /// nearest border cell (road midpoints can drift marginally outside the
  /// network bounding box after augmentation/noise).
  int CellOf(const LatLng& p) const;

  int RowOf(const LatLng& p) const;
  int ColOf(const LatLng& p) const;

  /// Cells whose centers lie within `radius_meters` of `p`, including the
  /// cell of p itself; used for neighborhood scans.
  std::vector<int> CellsWithinRadius(const LatLng& p, double radius_meters) const;

 private:
  BoundingBox box_;
  double cell_side_meters_;
  int rows_;
  int cols_;
  double lat_per_cell_;
  double lng_per_cell_;
};

}  // namespace sarn::geo

#endif  // SARN_GEO_GRID_H_
