#include "geo/spatial_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace sarn::geo {
namespace {

BoundingBox BoxOf(const std::vector<LatLng>& points) {
  BoundingBox box = BoundingBox::Empty();
  for (const LatLng& p : points) box.Extend(p);
  if (points.empty()) box = BoundingBox{0, 0, 0, 0};
  return box;
}

}  // namespace

SpatialIndex::SpatialIndex(std::vector<LatLng> points, double cell_side_meters)
    : points_(std::move(points)), grid_(BoxOf(points_), cell_side_meters) {
  size_t n = points_.size();
  std::vector<uint32_t> cell_of(n);
  std::vector<uint32_t> counts(grid_.num_cells() + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    cell_of[i] = static_cast<uint32_t>(grid_.CellOf(points_[i]));
    ++counts[cell_of[i] + 1];
  }
  for (size_t c = 1; c < counts.size(); ++c) counts[c] += counts[c - 1];
  bucket_offsets_ = counts;
  bucket_ids_.resize(n);
  std::vector<uint32_t> cursor(bucket_offsets_.begin(), bucket_offsets_.end() - 1);
  for (size_t i = 0; i < n; ++i) {
    bucket_ids_[cursor[cell_of[i]]++] = static_cast<uint32_t>(i);
  }
}

std::vector<uint32_t> SpatialIndex::WithinRadius(const LatLng& center,
                                                 double radius_meters) const {
  std::vector<uint32_t> result;
  if (points_.empty()) return result;
  for (int cell : grid_.CellsWithinRadius(center, radius_meters)) {
    for (uint32_t k = bucket_offsets_[cell]; k < bucket_offsets_[cell + 1]; ++k) {
      uint32_t id = bucket_ids_[k];
      if (HaversineMeters(center, points_[id]) <= radius_meters) {
        result.push_back(id);
      }
    }
  }
  return result;
}

std::optional<uint32_t> SpatialIndex::Nearest(const LatLng& center,
                                              double max_radius_meters) const {
  if (points_.empty()) return std::nullopt;
  double radius = grid_.cell_side_meters();
  std::optional<uint32_t> best;
  double best_dist = std::numeric_limits<double>::infinity();
  while (radius <= max_radius_meters * 2.0) {
    for (int cell : grid_.CellsWithinRadius(center, radius)) {
      for (uint32_t k = bucket_offsets_[cell]; k < bucket_offsets_[cell + 1]; ++k) {
        uint32_t id = bucket_ids_[k];
        double dist = HaversineMeters(center, points_[id]);
        if (dist < best_dist) {
          best_dist = dist;
          best = id;
        }
      }
    }
    // A hit within the scanned ring is guaranteed closest only once the ring
    // radius exceeds the found distance.
    if (best.has_value() && best_dist <= radius) return best;
    if (radius >= max_radius_meters) break;
    radius = std::min(radius * 2.0, max_radius_meters);
    if (radius >= std::max(grid_.box().WidthMeters(), grid_.box().HeightMeters()) +
                      grid_.cell_side_meters()) {
      // Scanned everything; the radius cap still applies below.
      break;
    }
  }
  if (best.has_value() && best_dist <= max_radius_meters) return best;
  return std::nullopt;
}

}  // namespace sarn::geo
