// Geographic point and angle primitives.

#ifndef SARN_GEO_POINT_H_
#define SARN_GEO_POINT_H_

#include <cmath>

namespace sarn::geo {

inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kEarthRadiusMeters = 6371000.0;

/// A WGS84 coordinate in degrees.
struct LatLng {
  double lat = 0.0;
  double lng = 0.0;

  friend bool operator==(const LatLng& a, const LatLng& b) {
    return a.lat == b.lat && a.lng == b.lng;
  }
};

inline double DegToRad(double degrees) { return degrees * kPi / 180.0; }
inline double RadToDeg(double radians) { return radians * 180.0 / kPi; }

/// Midpoint of a segment in coordinate space (adequate for the city-scale
/// distances used throughout; no antimeridian handling).
inline LatLng Midpoint(const LatLng& a, const LatLng& b) {
  return LatLng{(a.lat + b.lat) / 2.0, (a.lng + b.lng) / 2.0};
}

/// Great-circle (haversine) distance in meters.
double HaversineMeters(const LatLng& a, const LatLng& b);

/// Absolute angular distance between two directions given in radians,
/// folded into [0, pi]. This is the paper's ag_dist(s_i, s_j) with the
/// natural 2*pi wrap-around.
double AngularDistance(double radian_a, double radian_b);

/// Bearing of the segment a->b, in radians in [0, 2*pi), measured from east
/// counter-clockwise on the local tangent plane. Used as RoadSegment::radian.
double SegmentRadian(const LatLng& a, const LatLng& b);

/// A local equirectangular projection anchored at `origin`: converts between
/// lat/lng and (x east, y north) meters. Accurate to well under 0.1% at city
/// scale, which is all the synthetic generator and grid partitioning need.
class LocalProjection {
 public:
  explicit LocalProjection(const LatLng& origin);

  LatLng ToLatLng(double x_meters, double y_meters) const;
  void ToMeters(const LatLng& p, double* x_meters, double* y_meters) const;

  const LatLng& origin() const { return origin_; }

 private:
  LatLng origin_;
  double meters_per_deg_lat_;
  double meters_per_deg_lng_;
};

/// Axis-aligned geographic bounding box.
struct BoundingBox {
  double min_lat = 0.0;
  double min_lng = 0.0;
  double max_lat = 0.0;
  double max_lng = 0.0;

  bool Contains(const LatLng& p) const {
    return p.lat >= min_lat && p.lat <= max_lat && p.lng >= min_lng && p.lng <= max_lng;
  }

  void Extend(const LatLng& p) {
    if (p.lat < min_lat) min_lat = p.lat;
    if (p.lat > max_lat) max_lat = p.lat;
    if (p.lng < min_lng) min_lng = p.lng;
    if (p.lng > max_lng) max_lng = p.lng;
  }

  /// Box spanning exactly the given points; identity element for Extend.
  static BoundingBox Empty() {
    return BoundingBox{1e9, 1e9, -1e9, -1e9};
  }

  /// Width (east-west) and height (north-south) in meters, measured through
  /// the box centre.
  double WidthMeters() const;
  double HeightMeters() const;
};

}  // namespace sarn::geo

#endif  // SARN_GEO_POINT_H_
