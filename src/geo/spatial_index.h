// Grid-bucketed point index supporting radius and nearest-neighbor queries.
//
// Used to build the spatial similarity matrix A^s in O(n * neighbors) rather
// than O(n^2), and by the map-matcher to snap GPS points to road segments.

#ifndef SARN_GEO_SPATIAL_INDEX_H_
#define SARN_GEO_SPATIAL_INDEX_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "geo/grid.h"
#include "geo/point.h"

namespace sarn::geo {

/// Immutable index over a set of points (built once, queried many times).
/// Item ids are the indices of the `points` vector passed at construction.
class SpatialIndex {
 public:
  /// `cell_side_meters` should be on the order of the typical query radius.
  SpatialIndex(std::vector<LatLng> points, double cell_side_meters);

  size_t size() const { return points_.size(); }
  const LatLng& point(size_t id) const { return points_[id]; }

  /// Ids of all points with haversine distance <= radius_meters of `center`
  /// (including a point identical to the center, if indexed).
  std::vector<uint32_t> WithinRadius(const LatLng& center, double radius_meters) const;

  /// Id of the nearest indexed point, or nullopt if the index is empty.
  /// `max_radius_meters` bounds the search (expanding ring over grid cells).
  std::optional<uint32_t> Nearest(const LatLng& center,
                                  double max_radius_meters = 1e7) const;

 private:
  std::vector<LatLng> points_;
  Grid grid_;
  // CSR-style buckets: ids_ grouped by cell, offsets per cell.
  std::vector<uint32_t> bucket_ids_;
  std::vector<uint32_t> bucket_offsets_;
};

}  // namespace sarn::geo

#endif  // SARN_GEO_SPATIAL_INDEX_H_
