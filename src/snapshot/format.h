// On-disk layout of the mmap-able single-arena snapshot (DESIGN.md §13).
//
// A snapshot is ONE contiguous arena — the file itself — holding a trained
// model's embedding matrix plus the prepared serving payload (float and/or
// int8 index rows, quantization scales, geo locator tables) as named,
// 64-byte-aligned, CRC-checked sections. The design follows ggml's
// one-buffer model file: a fixed header, a fixed-stride section table, then
// raw payload bytes at aligned offsets, so a loader mmaps the file once and
// adopts tensor sections as zero-copy views — cold start is O(page-fault),
// not O(parse).
//
//   offset 0        SnapshotHeader (64 bytes)
//   offset 64       SectionEntry[section_count]   (64 bytes each)
//   aligned         section payloads, each 64-byte aligned, zero-padded
//
// Multi-byte fields are little-endian host order (same stance as the
// checkpoint container: the magic plus CRCs reject foreign files; this is a
// deployment format for the machines the model trains and serves on).
//
// Validation order on load — each corruption mode maps to its own
// SnapshotError so the fuzz suite can pin them one by one:
//   1. file shorter than the header ............................ kTruncated
//   2. magic mismatch .......................................... kBadMagic
//   3. header CRC mismatch (bit flip in the header) ............ kCrcMismatch
//   4. version_major above this build's ........................ kBadVersion
//   5. declared file_bytes != actual size ...................... kTruncated
//   6. section table out of bounds / bad count ................. kBadSectionTable
//   7. section table CRC mismatch .............................. kCrcMismatch
//   8. entry lies: empty name, misaligned/overflowing offsets .. kBadSectionTable
//   9. payload CRC mismatch .................................... kCrcMismatch
//  10. meta section missing or unparseable ..................... kMalformed
//  11. section byte counts disagreeing with meta's n/d ......... kShapeMismatch

#ifndef SARN_SNAPSHOT_FORMAT_H_
#define SARN_SNAPSHOT_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

namespace sarn::snapshot {

/// First 8 bytes of every snapshot file.
inline constexpr char kSnapshotMagic[8] = {'S', 'A', 'R', 'N',
                                           'S', 'N', 'P', '\n'};

/// Readers reject files whose major version is above theirs; minor bumps
/// are additive (new optional sections) and stay readable.
inline constexpr uint32_t kSnapshotVersionMajor = 1;
inline constexpr uint32_t kSnapshotVersionMinor = 0;

/// Every section payload (and the section table) starts at a multiple of
/// this. 64 covers every scalar type and keeps rows cache-line aligned; the
/// mmap base is page-aligned, so file alignment is memory alignment.
inline constexpr size_t kSectionAlignment = 64;

/// Element type of a section payload (SectionEntry::dtype).
enum class SectionType : uint8_t {
  kBytes = 0,  // Opaque byte blob (the meta section).
  kF32 = 1,
  kI8 = 2,
  kF64 = 3,
};

#pragma pack(push, 1)
/// Fixed 64-byte file header. header_crc (CRC-32 of bytes [0, 60)) is
/// checked before any field other than the magic is trusted.
struct SnapshotHeader {
  char magic[8];
  uint32_t version_major;
  uint32_t version_minor;
  uint64_t file_bytes;     // Exact total file size, padding included.
  uint64_t table_offset;   // Always 64 in v1.
  uint32_t section_count;
  uint32_t flags;          // Reserved, 0 in v1.
  uint64_t reserved0;
  uint64_t reserved1;
  uint32_t table_crc;      // CRC-32 of the section-table bytes.
  uint32_t header_crc;     // CRC-32 of this struct's first 60 bytes.
};
static_assert(sizeof(SnapshotHeader) == 64);

/// Fixed 64-byte section-table entry. Names are NUL-padded and must be
/// NUL-terminated (at most 39 characters).
struct SectionEntry {
  char name[40];
  uint64_t offset;  // Absolute file offset, kSectionAlignment-aligned.
  uint64_t bytes;   // Payload length (excludes alignment padding).
  uint32_t crc32;   // CRC-32 of the payload bytes.
  uint8_t dtype;    // SectionType.
  uint8_t reserved[3];
};
static_assert(sizeof(SectionEntry) == 64);
#pragma pack(pop)

// Section names of v1. A snapshot always carries kSectionMeta; everything
// else is optional and advertised by the meta flags.
inline constexpr char kSectionMeta[] = "meta";
inline constexpr char kSectionModelEmbeddings[] = "model/embeddings";
inline constexpr char kSectionIndexF32Rows[] = "index/f32/rows";
inline constexpr char kSectionIndexI8Codes[] = "index/i8/codes";
inline constexpr char kSectionIndexI8Scales[] = "index/i8/scales";
inline constexpr char kSectionGeoMidpoints[] = "geo/midpoints";

/// Meta-section payload version (bumped independently of the container).
inline constexpr uint32_t kMetaVersion = 1;

// SnapshotMeta::payload_flags bits.
inline constexpr uint32_t kHasFloatIndex = 1u << 0;
inline constexpr uint32_t kHasInt8Index = 1u << 1;
inline constexpr uint32_t kHasLocator = 1u << 2;
inline constexpr uint32_t kHasModelEmbeddings = 1u << 3;

/// Why a snapshot failed to save or load; every fuzz mutation mode must
/// map to exactly one of these (never UB, never a crash).
enum class SnapshotError {
  kOk = 0,
  kIoError,          // Cannot open/stat/map/write/rename the file.
  kBadMagic,         // Not a snapshot file.
  kBadVersion,       // A snapshot, but a major version this build can't read.
  kTruncated,        // Shorter than the header or the declared file_bytes.
  kBadSectionTable,  // Table/entry geometry lies: bad count, unaligned or
                     // out-of-bounds offsets, overflowing extents, bad names.
  kCrcMismatch,      // Header, table or payload bytes corrupted.
  kMalformed,        // Geometry checks passed but the meta payload (or a
                     // required section) does not parse.
  kShapeMismatch,    // Section byte counts disagree with meta's n/d.
};

const char* SnapshotErrorName(SnapshotError error);

struct SnapshotStatus {
  SnapshotError error = SnapshotError::kOk;
  std::string message;

  bool ok() const { return error == SnapshotError::kOk; }
  static SnapshotStatus Ok() { return {}; }
  static SnapshotStatus Fail(SnapshotError error, std::string message) {
    return {error, std::move(message)};
  }
};

}  // namespace sarn::snapshot

#endif  // SARN_SNAPSHOT_FORMAT_H_
