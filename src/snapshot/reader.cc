#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <fstream>

#include "common/binary_io.h"
#include "obs/metrics.h"
#include "snapshot/snapshot.h"

namespace sarn::snapshot {
namespace {

struct SnapshotMetrics {
  obs::Counter& loads;
  obs::Counter& load_errors;
  obs::Histogram& load_ms;
  obs::Gauge& bytes;
  obs::Gauge& mapped_bytes;
  obs::Gauge& copied_bytes;

  static SnapshotMetrics& Get() {
    static SnapshotMetrics metrics{
        obs::MetricsRegistry::Default().GetCounter("sarn.snapshot.loads"),
        obs::MetricsRegistry::Default().GetCounter("sarn.snapshot.load_errors"),
        obs::MetricsRegistry::Default().GetHistogram(
            "sarn.snapshot.load_ms", obs::ExponentialBuckets(0.01, 4.0, 12)),
        obs::MetricsRegistry::Default().GetGauge("sarn.snapshot.bytes"),
        obs::MetricsRegistry::Default().GetGauge("sarn.snapshot.mapped_bytes"),
        obs::MetricsRegistry::Default().GetGauge("sarn.snapshot.copied_bytes"),
    };
    return metrics;
  }
};

bool ValidName(const char (&name)[40]) {
  const void* nul = std::memchr(name, '\0', sizeof(name));
  return nul != nullptr && name[0] != '\0';
}

}  // namespace

MappedSnapshot::~MappedSnapshot() {
  if (mapped_ && base_ != nullptr) {
    ::munmap(const_cast<unsigned char*>(base_), size_);
  }
}

const MappedSnapshot::Section* MappedSnapshot::Find(
    std::string_view name) const {
  for (const Section& section : sections_) {
    if (section.name == name) return &section;
  }
  return nullptr;
}

SnapshotStatus MappedSnapshot::Map(const std::string& path,
                                   const Options& options,
                                   std::shared_ptr<const MappedSnapshot>* out) {
  // The object is built first so that early-return paths unmap via the
  // destructor; *out is only assigned after full validation.
  std::shared_ptr<MappedSnapshot> snap(new MappedSnapshot());

  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return SnapshotStatus::Fail(SnapshotError::kIoError,
                                "cannot open " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return SnapshotStatus::Fail(SnapshotError::kIoError,
                                "cannot stat " + path);
  }
  snap->size_ = static_cast<size_t>(st.st_size);

  // Validation step 1: a snapshot is at least one header long. Checked
  // before mmap (mapping zero bytes is itself an error).
  if (snap->size_ < sizeof(SnapshotHeader)) {
    ::close(fd);
    return SnapshotStatus::Fail(
        SnapshotError::kTruncated,
        path + ": " + std::to_string(snap->size_) + " bytes, shorter than the "
        + std::to_string(sizeof(SnapshotHeader)) + "-byte header");
  }

  void* mapping = ::mmap(nullptr, snap->size_, PROT_READ, MAP_PRIVATE, fd, 0);
  if (mapping != MAP_FAILED) {
    snap->base_ = static_cast<const unsigned char*>(mapping);
    snap->mapped_ = true;
    ::close(fd);
  } else {
    // Filesystems without mmap support: fall back to one heap read. The
    // format validates identically; only mapped_bytes accounting differs.
    ::close(fd);
    std::ifstream in(path, std::ios::binary);
    snap->heap_copy_.resize(snap->size_);
    in.read(snap->heap_copy_.data(),
            static_cast<std::streamsize>(snap->size_));
    if (!in.good() ||
        static_cast<size_t>(in.gcount()) != snap->size_) {
      return SnapshotStatus::Fail(SnapshotError::kIoError,
                                  "mmap failed and heap read of " + path +
                                      " came up short");
    }
    snap->base_ = reinterpret_cast<const unsigned char*>(
        snap->heap_copy_.data());
  }

  // Step 2: magic.
  SnapshotHeader header;
  std::memcpy(&header, snap->base_, sizeof(header));
  if (std::memcmp(header.magic, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return SnapshotStatus::Fail(SnapshotError::kBadMagic,
                                path + " is not a SARN snapshot");
  }
  // Step 3: header integrity before trusting any other header field.
  const uint32_t header_crc =
      Crc32(snap->base_, offsetof(SnapshotHeader, header_crc));
  if (header_crc != header.header_crc) {
    return SnapshotStatus::Fail(SnapshotError::kCrcMismatch,
                                path + ": header CRC mismatch");
  }
  // Step 4: version gate.
  if (header.version_major > kSnapshotVersionMajor) {
    return SnapshotStatus::Fail(
        SnapshotError::kBadVersion,
        path + ": snapshot version " + std::to_string(header.version_major) +
            "." + std::to_string(header.version_minor) +
            " is newer than this build reads (" +
            std::to_string(kSnapshotVersionMajor) + ".x); rebuild or upgrade");
  }
  snap->version_major_ = header.version_major;
  snap->version_minor_ = header.version_minor;
  // Step 5: exact size. A well-formed header on a truncated (or padded)
  // file is still a torn write.
  if (header.file_bytes != snap->size_) {
    return SnapshotStatus::Fail(
        SnapshotError::kTruncated,
        path + ": header declares " + std::to_string(header.file_bytes) +
            " bytes but the file has " + std::to_string(snap->size_));
  }
  // Step 6: section-table geometry.
  const uint64_t table_bytes =
      static_cast<uint64_t>(header.section_count) * sizeof(SectionEntry);
  if (header.table_offset < sizeof(SnapshotHeader) ||
      header.table_offset % kSectionAlignment != 0 ||
      header.table_offset > snap->size_ ||
      table_bytes > snap->size_ - header.table_offset) {
    return SnapshotStatus::Fail(
        SnapshotError::kBadSectionTable,
        path + ": section table out of bounds (offset " +
            std::to_string(header.table_offset) + ", " +
            std::to_string(header.section_count) + " entries)");
  }
  // Step 7: table integrity before trusting any entry.
  const unsigned char* table_base = snap->base_ + header.table_offset;
  if (Crc32(table_base, table_bytes) != header.table_crc) {
    return SnapshotStatus::Fail(SnapshotError::kCrcMismatch,
                                path + ": section table CRC mismatch");
  }
  // Step 8: per-entry geometry.
  const uint64_t payload_floor = header.table_offset + table_bytes;
  snap->sections_.reserve(header.section_count);
  for (uint32_t i = 0; i < header.section_count; ++i) {
    SectionEntry entry;
    std::memcpy(&entry, table_base + i * sizeof(SectionEntry), sizeof(entry));
    if (!ValidName(entry.name)) {
      return SnapshotStatus::Fail(
          SnapshotError::kBadSectionTable,
          path + ": section " + std::to_string(i) + " has a bad name");
    }
    const std::string_view name(
        reinterpret_cast<const char*>(table_base + i * sizeof(SectionEntry)));
    if (entry.offset % kSectionAlignment != 0 ||
        entry.offset < payload_floor || entry.offset > snap->size_ ||
        entry.bytes > snap->size_ - entry.offset) {
      return SnapshotStatus::Fail(
          SnapshotError::kBadSectionTable,
          path + ": section '" + std::string(name) +
              "' extent lies outside the file or is misaligned");
    }
    if (entry.dtype > static_cast<uint8_t>(SectionType::kF64)) {
      return SnapshotStatus::Fail(
          SnapshotError::kBadSectionTable,
          path + ": section '" + std::string(name) + "' has unknown dtype " +
              std::to_string(entry.dtype));
    }
    if (snap->Find(name) != nullptr) {
      return SnapshotStatus::Fail(
          SnapshotError::kBadSectionTable,
          path + ": duplicate section '" + std::string(name) + "'");
    }
    Section section;
    section.name = name;
    section.dtype = static_cast<SectionType>(entry.dtype);
    section.data = snap->base_ + entry.offset;
    section.bytes = entry.bytes;
    snap->sections_.push_back(section);

    // Step 9: payload integrity.
    if (options.verify_payload_crc &&
        Crc32(section.data, section.bytes) != entry.crc32) {
      return SnapshotStatus::Fail(
          SnapshotError::kCrcMismatch,
          path + ": payload CRC mismatch in section '" + std::string(name) +
              "'");
    }
  }

  // Step 10: the meta section is mandatory and must parse.
  const Section* meta_section = snap->Find(kSectionMeta);
  if (meta_section == nullptr) {
    return SnapshotStatus::Fail(SnapshotError::kMalformed,
                                path + ": no meta section");
  }
  ByteReader reader(std::string_view(
      static_cast<const char*>(meta_section->data), meta_section->bytes));
  uint32_t meta_version = 0;
  uint32_t metric_raw = 0;
  SnapshotMeta& meta = snap->meta_;
  // Trailing bytes after the v1 fields are tolerated: minor versions may
  // append fields, and this reader must keep loading them.
  bool parsed = reader.GetU32(&meta_version) && reader.GetI64(&meta.n) &&
                reader.GetI64(&meta.d) && reader.GetU32(&metric_raw) &&
                reader.GetU32(&meta.payload_flags) &&
                reader.GetF32(&meta.i8_shared_scale) &&
                reader.GetF64(&meta.locator_cell_side_meters);
  if (!parsed || meta_version > kMetaVersion || meta.n < 0 || meta.d <= 0 ||
      metric_raw > static_cast<uint32_t>(tasks::IndexMetric::kL1)) {
    return SnapshotStatus::Fail(SnapshotError::kMalformed,
                                path + ": meta section does not parse");
  }
  meta.metric = static_cast<tasks::IndexMetric>(metric_raw);

  // Step 11: every advertised payload exists with the byte count meta's
  // (n, d) imply, with the dtype the writer stamps.
  const size_t n = static_cast<size_t>(meta.n);
  const size_t d = static_cast<size_t>(meta.d);
  struct Expectation {
    uint32_t flag;
    const char* name;
    SectionType dtype;
    size_t bytes;
  };
  const Expectation expectations[] = {
      {kHasModelEmbeddings, kSectionModelEmbeddings, SectionType::kF32,
       n * d * sizeof(float)},
      {kHasFloatIndex, kSectionIndexF32Rows, SectionType::kF32,
       n * d * sizeof(float)},
      {kHasInt8Index, kSectionIndexI8Codes, SectionType::kI8, n * d},
      {kHasLocator, kSectionGeoMidpoints, SectionType::kF64,
       n * 2 * sizeof(double)},
  };
  for (const Expectation& expect : expectations) {
    if (!meta.has(expect.flag)) continue;
    const Section* section = snap->Find(expect.name);
    if (section == nullptr || section->dtype != expect.dtype) {
      return SnapshotStatus::Fail(
          SnapshotError::kMalformed,
          path + ": meta advertises section '" + std::string(expect.name) +
              "' but the snapshot does not carry it");
    }
    if (section->bytes != expect.bytes) {
      return SnapshotStatus::Fail(
          SnapshotError::kShapeMismatch,
          path + ": section '" + std::string(expect.name) + "' holds " +
              std::to_string(section->bytes) + " bytes, expected " +
              std::to_string(expect.bytes) + " for n=" +
              std::to_string(meta.n) + " d=" + std::to_string(meta.d));
    }
  }
  // Per-row scales ride along with an int8 cosine payload only.
  if (meta.has(kHasInt8Index) && meta.metric == tasks::IndexMetric::kCosine) {
    const Section* scales = snap->Find(kSectionIndexI8Scales);
    if (scales == nullptr || scales->dtype != SectionType::kF32) {
      return SnapshotStatus::Fail(
          SnapshotError::kMalformed,
          path + ": int8 cosine payload is missing its per-row scales");
    }
    if (scales->bytes != n * sizeof(float)) {
      return SnapshotStatus::Fail(
          SnapshotError::kShapeMismatch,
          path + ": int8 scale section holds " +
              std::to_string(scales->bytes) + " bytes, expected " +
              std::to_string(n * sizeof(float)));
    }
  }
  if (meta.has(kHasLocator) && !(meta.locator_cell_side_meters > 0.0)) {
    return SnapshotStatus::Fail(
        SnapshotError::kMalformed,
        path + ": locator payload with non-positive grid cell side");
  }

  *out = std::move(snap);
  return SnapshotStatus::Ok();
}

SnapshotStatus LoadServingSnapshot(const std::string& path,
                                   tasks::IndexPrecision precision,
                                   LoadedSnapshot* out,
                                   const MappedSnapshot::Options& options) {
  const auto start = std::chrono::steady_clock::now();
  SnapshotMetrics& metrics = SnapshotMetrics::Get();

  std::shared_ptr<const MappedSnapshot> mapping;
  SnapshotStatus status = MappedSnapshot::Map(path, options, &mapping);
  if (!status.ok()) {
    metrics.load_errors.Increment();
    return status;
  }
  const SnapshotMeta& meta = mapping->meta();

  LoadedSnapshot loaded;
  loaded.mapping = mapping;
  loaded.meta = meta;

  if (precision == tasks::IndexPrecision::kFloat32) {
    if (!meta.has(kHasFloatIndex)) {
      metrics.load_errors.Increment();
      return SnapshotStatus::Fail(
          SnapshotError::kMalformed,
          path + ": snapshot carries no float32 index payload");
    }
    const MappedSnapshot::Section* rows = mapping->Find(kSectionIndexF32Rows);
    loaded.index = tasks::EmbeddingIndex::Adopt(
        meta.n, meta.d, meta.metric, precision,
        tensor::Storage::External(static_cast<const float*>(rows->data),
                                  rows->bytes / sizeof(float)),
        tensor::Storage(), 0.0f, mapping);
    loaded.mapped_bytes += rows->bytes;
  } else {
    if (!meta.has(kHasInt8Index)) {
      metrics.load_errors.Increment();
      return SnapshotStatus::Fail(
          SnapshotError::kMalformed,
          path + ": snapshot carries no int8 index payload");
    }
    const MappedSnapshot::Section* codes = mapping->Find(kSectionIndexI8Codes);
    // Codes ride in a float storage (same ByteStorage convention as the heap
    // index). Rounding the view up to whole floats stays in bounds: sections
    // sit at 64-byte offsets and the arena is zero-padded to 64.
    tensor::Storage code_view = tensor::Storage::External(
        static_cast<const float*>(codes->data),
        (codes->bytes + sizeof(float) - 1) / sizeof(float));
    tensor::Storage scale_view;
    if (meta.metric == tasks::IndexMetric::kCosine) {
      const MappedSnapshot::Section* scales =
          mapping->Find(kSectionIndexI8Scales);
      scale_view = tensor::Storage::External(
          static_cast<const float*>(scales->data),
          scales->bytes / sizeof(float));
      loaded.mapped_bytes += scales->bytes;
    }
    loaded.index = tasks::EmbeddingIndex::Adopt(
        meta.n, meta.d, meta.metric, precision, std::move(code_view),
        std::move(scale_view), meta.i8_shared_scale, mapping);
    loaded.mapped_bytes += codes->bytes;
  }

  if (meta.has(kHasModelEmbeddings)) {
    const MappedSnapshot::Section* model =
        mapping->Find(kSectionModelEmbeddings);
    loaded.model_embeddings = mapping->SpanOf<float>(*model);
    loaded.mapped_bytes += model->bytes;
  }

  if (meta.has(kHasLocator)) {
    const MappedSnapshot::Section* midpoints =
        mapping->Find(kSectionGeoMidpoints);
    std::span<const double> flat = mapping->SpanOf<double>(*midpoints);
    std::vector<geo::LatLng> points(flat.size() / 2);
    for (size_t i = 0; i < points.size(); ++i) {
      points[i] = geo::LatLng{flat[2 * i], flat[2 * i + 1]};
    }
    // The only materialised payload: grid buckets are cheap to rebuild and
    // pointer-heavy to serialise, so the snapshot stores just the points.
    loaded.locator = std::make_shared<const geo::SpatialIndex>(
        std::move(points), meta.locator_cell_side_meters);
    loaded.copied_bytes += midpoints->bytes;
  }

  loaded.load_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  metrics.loads.Increment();
  metrics.load_ms.Observe(loaded.load_ms);
  metrics.bytes.Set(static_cast<double>(mapping->file_bytes()));
  metrics.mapped_bytes.Set(static_cast<double>(loaded.mapped_bytes));
  metrics.copied_bytes.Set(static_cast<double>(loaded.copied_bytes));

  *out = std::move(loaded);
  return SnapshotStatus::Ok();
}

}  // namespace sarn::snapshot
