#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/binary_io.h"
#include "common/check.h"
#include "snapshot/snapshot.h"

namespace sarn::snapshot {
namespace {

size_t AlignUp(size_t value, size_t alignment) {
  return (value + alignment - 1) / alignment * alignment;
}

}  // namespace

const char* SnapshotErrorName(SnapshotError error) {
  switch (error) {
    case SnapshotError::kOk: return "ok";
    case SnapshotError::kIoError: return "io_error";
    case SnapshotError::kBadMagic: return "bad_magic";
    case SnapshotError::kBadVersion: return "bad_version";
    case SnapshotError::kTruncated: return "truncated";
    case SnapshotError::kBadSectionTable: return "bad_section_table";
    case SnapshotError::kCrcMismatch: return "crc_mismatch";
    case SnapshotError::kMalformed: return "malformed";
    case SnapshotError::kShapeMismatch: return "shape_mismatch";
  }
  return "unknown";
}

void SnapshotWriter::Add(std::string_view name, SectionType dtype,
                         const void* data, size_t bytes) {
  SARN_CHECK(!name.empty() && name.size() < sizeof(SectionEntry{}.name))
      << "section name '" << std::string(name) << "'";
  for (const PendingSection& section : sections_) {
    SARN_CHECK(section.name != name) << "duplicate section " << std::string(name);
  }
  PendingSection section;
  section.name = std::string(name);
  section.dtype = dtype;
  section.bytes.assign(static_cast<const char*>(data), bytes);
  sections_.push_back(std::move(section));
}

std::string SnapshotWriter::Finish() {
  const size_t count = sections_.size();
  const size_t table_offset = sizeof(SnapshotHeader);
  const size_t payload_start =
      AlignUp(table_offset + count * sizeof(SectionEntry), kSectionAlignment);

  // Lay out the arena: aligned payload offsets, zero padding in the gaps
  // (padding is covered by file_bytes but by no section CRC).
  std::vector<SectionEntry> table(count);
  size_t cursor = payload_start;
  for (size_t i = 0; i < count; ++i) {
    SectionEntry& entry = table[i];
    std::memset(&entry, 0, sizeof(entry));
    std::memcpy(entry.name, sections_[i].name.data(), sections_[i].name.size());
    entry.offset = cursor;
    entry.bytes = sections_[i].bytes.size();
    entry.crc32 = Crc32(sections_[i].bytes.data(), sections_[i].bytes.size());
    entry.dtype = static_cast<uint8_t>(sections_[i].dtype);
    cursor = AlignUp(cursor + sections_[i].bytes.size(), kSectionAlignment);
  }
  const size_t file_bytes = cursor;

  SnapshotHeader header;
  std::memset(&header, 0, sizeof(header));
  std::memcpy(header.magic, kSnapshotMagic, sizeof(kSnapshotMagic));
  header.version_major = kSnapshotVersionMajor;
  header.version_minor = kSnapshotVersionMinor;
  header.file_bytes = file_bytes;
  header.table_offset = table_offset;
  header.section_count = static_cast<uint32_t>(count);
  header.table_crc =
      Crc32(table.data(), table.size() * sizeof(SectionEntry));
  header.header_crc = Crc32(&header, offsetof(SnapshotHeader, header_crc));

  std::string arena(file_bytes, '\0');
  std::memcpy(arena.data(), &header, sizeof(header));
  std::memcpy(arena.data() + table_offset, table.data(),
              table.size() * sizeof(SectionEntry));
  for (size_t i = 0; i < count; ++i) {
    std::memcpy(arena.data() + table[i].offset, sections_[i].bytes.data(),
                sections_[i].bytes.size());
  }
  sections_.clear();
  return arena;
}

SnapshotStatus WriteSnapshotFile(const std::string& path,
                                 const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      return SnapshotStatus::Fail(SnapshotError::kIoError,
                                  "cannot open " + tmp + " for writing");
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out.good()) {
      return SnapshotStatus::Fail(SnapshotError::kIoError,
                                  "short write to " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return SnapshotStatus::Fail(SnapshotError::kIoError,
                                "cannot rename " + tmp + " to " + path);
  }
  return SnapshotStatus::Ok();
}

std::string BuildServingSnapshot(const SnapshotContents& contents) {
  SARN_CHECK(contents.n >= 0 && contents.d > 0);
  uint32_t flags = 0;
  float shared_scale = 0.0f;
  if (contents.model_embeddings != nullptr) {
    SARN_CHECK_EQ(contents.model_embeddings->rank(), 2);
    SARN_CHECK_EQ(contents.model_embeddings->shape()[0], contents.n);
    SARN_CHECK_EQ(contents.model_embeddings->shape()[1], contents.d);
    flags |= kHasModelEmbeddings;
  }
  if (contents.float_index != nullptr) {
    SARN_CHECK(contents.float_index->precision() ==
               tasks::IndexPrecision::kFloat32);
    SARN_CHECK(contents.float_index->metric() == contents.metric);
    SARN_CHECK_EQ(contents.float_index->size(), contents.n);
    SARN_CHECK_EQ(contents.float_index->dim(), contents.d);
    flags |= kHasFloatIndex;
  }
  if (contents.int8_index != nullptr) {
    SARN_CHECK(contents.int8_index->precision() == tasks::IndexPrecision::kInt8);
    SARN_CHECK(contents.int8_index->metric() == contents.metric);
    SARN_CHECK_EQ(contents.int8_index->size(), contents.n);
    SARN_CHECK_EQ(contents.int8_index->dim(), contents.d);
    flags |= kHasInt8Index;
    shared_scale = contents.int8_index->shared_scale_i8();
  }
  if (contents.midpoints != nullptr) {
    SARN_CHECK_EQ(static_cast<int64_t>(contents.midpoints->size()), contents.n);
    flags |= kHasLocator;
  }

  ByteWriter meta;
  meta.PutU32(kMetaVersion);
  meta.PutI64(contents.n);
  meta.PutI64(contents.d);
  meta.PutU32(static_cast<uint32_t>(contents.metric));
  meta.PutU32(flags);
  meta.PutF32(shared_scale);
  meta.PutF64(contents.locator_cell_side_meters);

  SnapshotWriter writer;
  writer.Add(kSectionMeta, SectionType::kBytes, meta.buffer().data(),
             meta.buffer().size());
  if (contents.model_embeddings != nullptr) {
    const tensor::Storage& data = contents.model_embeddings->data();
    writer.Add(kSectionModelEmbeddings, SectionType::kF32, data.data(),
               data.size() * sizeof(float));
  }
  if (contents.float_index != nullptr) {
    std::span<const float> rows = contents.float_index->rows_f32();
    writer.Add(kSectionIndexF32Rows, SectionType::kF32, rows.data(),
               rows.size() * sizeof(float));
  }
  if (contents.int8_index != nullptr) {
    std::span<const int8_t> codes = contents.int8_index->codes_i8();
    writer.Add(kSectionIndexI8Codes, SectionType::kI8, codes.data(),
               codes.size());
    std::span<const float> scales = contents.int8_index->row_scales_i8();
    if (!scales.empty()) {
      writer.Add(kSectionIndexI8Scales, SectionType::kF32, scales.data(),
                 scales.size() * sizeof(float));
    }
  }
  if (contents.midpoints != nullptr) {
    // [n, 2] f64 (lat, lng) — LatLng is two doubles, serialised explicitly
    // so the section layout never depends on struct padding.
    std::vector<double> flat;
    flat.reserve(contents.midpoints->size() * 2);
    for (const geo::LatLng& p : *contents.midpoints) {
      flat.push_back(p.lat);
      flat.push_back(p.lng);
    }
    writer.Add(kSectionGeoMidpoints, SectionType::kF64, flat.data(),
               flat.size() * sizeof(double));
  }
  return writer.Finish();
}

SnapshotStatus SaveServingSnapshot(const std::string& path,
                                   const SnapshotContents& contents) {
  return WriteSnapshotFile(path, BuildServingSnapshot(contents));
}

}  // namespace sarn::snapshot
