// Save/load of mmap-able model + index snapshots (format.h, DESIGN.md §13).
//
// Writing: SnapshotWriter lays named sections into one arena (header,
// fixed-stride section table, aligned CRC-checked payloads) and
// WriteSnapshotFile publishes it atomically (tmp + rename, like the
// checkpoint writer). BuildServingSnapshot assembles the standard contents —
// the trained embedding matrix, the prepared float and/or int8 index
// payloads taken verbatim from an EmbeddingIndex, and the geo locator
// table — so a snapshot round-trips bitwise.
//
// Loading: MappedSnapshot::Map mmaps the file read-only and validates it
// (magic, versions, CRCs, section geometry — see format.h for the exact
// order); every corruption mode is a typed SnapshotError, never UB.
// LoadServingSnapshot then adopts the index sections as zero-copy
// tensor::Storage::External views — the EmbeddingIndex pins the mapping via
// a shared_ptr owner, so the file stays mapped exactly as long as any index
// (or in-flight serve batch) still references it, and hot-swap retirement
// munmaps it with the last reference. Only the locator is materialised
// (its grid buckets are rebuilt from the mapped midpoint table).
//
// Obs: every successful load publishes sarn.snapshot.load_ms, .bytes,
// .mapped_bytes (zero-copy adopted), .copied_bytes (materialised) and bumps
// sarn.snapshot.loads.

#ifndef SARN_SNAPSHOT_SNAPSHOT_H_
#define SARN_SNAPSHOT_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "geo/spatial_index.h"
#include "snapshot/format.h"
#include "tasks/embedding_index.h"
#include "tensor/tensor.h"

namespace sarn::snapshot {

// --- Writing -----------------------------------------------------------------

/// Assembles one snapshot arena in memory. Sections are laid out in Add()
/// order at 64-byte-aligned offsets; Finish() seals the header and table.
class SnapshotWriter {
 public:
  /// Names must be unique, non-empty and at most 39 bytes (checked).
  void Add(std::string_view name, SectionType dtype, const void* data,
           size_t bytes);

  /// The complete file image. The writer is left empty.
  std::string Finish();

 private:
  struct PendingSection {
    std::string name;
    SectionType dtype;
    std::string bytes;
  };
  std::vector<PendingSection> sections_;
};

/// Atomically writes `bytes` (a Finish()ed arena) to `path`.
SnapshotStatus WriteSnapshotFile(const std::string& path,
                                 const std::string& bytes);

/// What BuildServingSnapshot puts into the arena. All payload pointers are
/// borrowed for the call only.
struct SnapshotContents {
  int64_t n = 0;
  int64_t d = 0;
  tasks::IndexMetric metric = tasks::IndexMetric::kCosine;
  /// Trained [n, d] embedding matrix (pre-normalisation); optional.
  const tensor::Tensor* model_embeddings = nullptr;
  /// Prepared indexes to embed; each must match (n, d, metric) and its
  /// precision. Either may be null.
  const tasks::EmbeddingIndex* float_index = nullptr;
  const tasks::EmbeddingIndex* int8_index = nullptr;
  /// Segment midpoints for the serve locator; optional.
  const std::vector<geo::LatLng>* midpoints = nullptr;
  /// Grid cell side the locator was built with (meters).
  double locator_cell_side_meters = 0.0;
};

/// Serialises the contents into one arena (meta + payload sections).
std::string BuildServingSnapshot(const SnapshotContents& contents);

/// BuildServingSnapshot + WriteSnapshotFile.
SnapshotStatus SaveServingSnapshot(const std::string& path,
                                   const SnapshotContents& contents);

// --- Loading -----------------------------------------------------------------

/// Parsed meta section.
struct SnapshotMeta {
  int64_t n = 0;
  int64_t d = 0;
  tasks::IndexMetric metric = tasks::IndexMetric::kCosine;
  uint32_t payload_flags = 0;  // kHasFloatIndex | kHasInt8Index | ...
  float i8_shared_scale = 0.0f;
  double locator_cell_side_meters = 0.0;

  bool has(uint32_t flag) const { return (payload_flags & flag) != 0; }
};

/// A validated, read-only mapping of a snapshot file. Move-free: always
/// held behind shared_ptr so index views can pin it. Unmaps on destruction.
class MappedSnapshot {
 public:
  struct Options {
    /// Verify every section payload's CRC at map time. Costs one sequential
    /// pass over the file; disable only for benchmarking page-fault-only
    /// loads of already-trusted files.
    bool verify_payload_crc = true;
  };

  struct Section {
    std::string_view name;
    SectionType dtype = SectionType::kBytes;
    const void* data = nullptr;
    size_t bytes = 0;
  };

  /// Maps and fully validates `path`. `*out` is only set on success.
  static SnapshotStatus Map(const std::string& path, const Options& options,
                            std::shared_ptr<const MappedSnapshot>* out);

  ~MappedSnapshot();
  MappedSnapshot(const MappedSnapshot&) = delete;
  MappedSnapshot& operator=(const MappedSnapshot&) = delete;

  uint32_t version_major() const { return version_major_; }
  uint32_t version_minor() const { return version_minor_; }
  size_t file_bytes() const { return size_; }
  const SnapshotMeta& meta() const { return meta_; }
  const std::vector<Section>& sections() const { return sections_; }

  /// nullptr when absent.
  const Section* Find(std::string_view name) const;

  /// Typed view of a section (bytes must divide evenly; callers validate
  /// element counts against meta()).
  template <typename T>
  std::span<const T> SpanOf(const Section& section) const {
    return {static_cast<const T*>(section.data), section.bytes / sizeof(T)};
  }

 private:
  MappedSnapshot() = default;

  const unsigned char* base_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;  // False when the fallback heap read path was used.
  std::string heap_copy_;
  uint32_t version_major_ = 0;
  uint32_t version_minor_ = 0;
  SnapshotMeta meta_;
  std::vector<Section> sections_;
};

/// Everything a serve cold start needs, adopted from one mapping.
struct LoadedSnapshot {
  std::shared_ptr<const MappedSnapshot> mapping;
  SnapshotMeta meta;
  /// Index at the requested precision; zero-copy over the mapping.
  std::shared_ptr<const tasks::EmbeddingIndex> index;
  /// Rebuilt from the mapped midpoint table; null when the snapshot has no
  /// locator section.
  std::shared_ptr<const geo::SpatialIndex> locator;
  /// Zero-copy view of the trained [n, d] embedding matrix (empty when the
  /// snapshot was built without one).
  std::span<const float> model_embeddings;

  size_t mapped_bytes = 0;  // Adopted zero-copy payload bytes.
  size_t copied_bytes = 0;  // Materialised bytes (locator rebuild).
  double load_ms = 0.0;
};

/// Maps `path` and adopts the index payload at `precision` (the snapshot
/// must carry that payload — kMalformed otherwise). On success publishes
/// the sarn.snapshot.* metrics.
SnapshotStatus LoadServingSnapshot(const std::string& path,
                                   tasks::IndexPrecision precision,
                                   LoadedSnapshot* out,
                                   const MappedSnapshot::Options& options = {});

}  // namespace sarn::snapshot

#endif  // SARN_SNAPSHOT_SNAPSHOT_H_
