#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/parallel.h"
#include "tensor/matmul_kernels.h"

namespace sarn::tensor {
namespace {

using internal::TensorImpl;

// Row-major rank-2 addressing, shared by every op that walks rows. The stride
// arithmetic (`i * cols + j`, row base pointers) used to be hand-rolled in
// each backward lambda; it lives here exactly once. Sixteen bytes, cheap to
// capture by value.
struct RowMajor {
  int64_t rows = 0;
  int64_t cols = 0;

  size_t at(int64_t i, int64_t j) const { return static_cast<size_t>(i * cols + j); }
  size_t row_offset(int64_t i) const { return static_cast<size_t>(i * cols); }

  const float* row(const Storage& s, int64_t i) const { return s.data() + i * cols; }
  float* row(Storage& s, int64_t i) const { return s.data() + i * cols; }
};

RowMajor Layout(const Tensor& t) {
  SARN_CHECK_EQ(t.rank(), 2);
  return RowMajor{t.shape()[0], t.shape()[1]};
}

// How operand b aligns against operand a in a binary op.
enum class Broadcast {
  kSame,    // identical element counts and (logical) shapes
  kRowVec,  // a: [m, n], b: [n] or [1, n]
  kScalar,  // b: single element
};

bool IsRowVecOf(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2) return false;
  int64_t n = a.shape()[1];
  if (b.rank() == 1 && b.shape()[0] == n) return true;
  if (b.rank() == 2 && b.shape()[0] == 1 && b.shape()[1] == n) return true;
  return false;
}

Broadcast ResolveBroadcast(const Tensor& a, const Tensor& b) {
  if (a.numel() == b.numel() && a.numel() > 0 &&
      (a.shape() == b.shape() || a.rank() == 1 || b.rank() == 1)) {
    // Treat [n] and [1, n]/[n, 1] with equal numel as the same layout.
    if (a.shape() == b.shape() || std::min(a.rank(), b.rank()) <= 1) return Broadcast::kSame;
  }
  if (b.numel() == 1) return Broadcast::kScalar;
  if (IsRowVecOf(a, b)) return Broadcast::kRowVec;
  SARN_CHECK(false) << "incompatible shapes " << ShapeToString(a.shape()) << " vs "
                    << ShapeToString(b.shape());
  return Broadcast::kSame;  // Unreachable.
}

// Generic elementwise binary with the three broadcast modes. `fwd(x, y)` is
// the value, `dfdx(x, y, out)` / `dfdy(x, y, out)` the partials.
template <typename Fwd, typename DfDx, typename DfDy>
Tensor BinaryOp(const Tensor& a, const Tensor& b, Fwd fwd, DfDx dfdx, DfDy dfdy) {
  Broadcast mode = ResolveBroadcast(a, b);
  const Storage& av = a.data();
  const Storage& bv = b.data();
  int64_t n_cols = (mode == Broadcast::kRowVec) ? a.shape()[1] : 0;
  Storage out = Storage::Uninitialized(av.size());
  switch (mode) {
    case Broadcast::kSame:
      for (size_t i = 0; i < av.size(); ++i) out[i] = fwd(av[i], bv[i]);
      break;
    case Broadcast::kRowVec:
      for (size_t i = 0; i < av.size(); ++i) out[i] = fwd(av[i], bv[i % n_cols]);
      break;
    case Broadcast::kScalar:
      for (size_t i = 0; i < av.size(); ++i) out[i] = fwd(av[i], bv[0]);
      break;
  }
  auto ai = a.impl();
  auto bi = b.impl();
  return MakeOpResult(
      a.shape(), std::move(out), {a, b},
      [ai, bi, mode, n_cols, fwd, dfdx, dfdy](TensorImpl& o) {
        const Storage& g = o.grad;
        auto b_at = [&](size_t i) -> float {
          switch (mode) {
            case Broadcast::kSame:
              return bi->data[i];
            case Broadcast::kRowVec:
              return bi->data[i % n_cols];
            case Broadcast::kScalar:
              return bi->data[0];
          }
          return 0.0f;
        };
        if (ai->requires_grad) {
          ai->EnsureGrad();
          for (size_t i = 0; i < g.size(); ++i) {
            ai->grad[i] += g[i] * dfdx(ai->data[i], b_at(i), o.data[i]);
          }
        }
        if (bi->requires_grad) {
          bi->EnsureGrad();
          for (size_t i = 0; i < g.size(); ++i) {
            float contribution = g[i] * dfdy(ai->data[i], b_at(i), o.data[i]);
            switch (mode) {
              case Broadcast::kSame:
                bi->grad[i] += contribution;
                break;
              case Broadcast::kRowVec:
                bi->grad[i % n_cols] += contribution;
                break;
              case Broadcast::kScalar:
                bi->grad[0] += contribution;
                break;
            }
          }
        }
      });
}

// Generic elementwise unary. `dfd(x, out)` is the local derivative.
template <typename Fwd, typename Df>
Tensor UnaryOp(const Tensor& a, Fwd fwd, Df dfd) {
  const Storage& av = a.data();
  Storage out = Storage::Uninitialized(av.size());
  for (size_t i = 0; i < av.size(); ++i) out[i] = fwd(av[i]);
  auto ai = a.impl();
  return MakeOpResult(a.shape(), std::move(out), {a}, [ai, dfd](TensorImpl& o) {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    for (size_t i = 0; i < o.grad.size(); ++i) {
      ai->grad[i] += o.grad[i] * dfd(ai->data[i], o.data[i]);
    }
  });
}

Tensor Reciprocal(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return 1.0f / x; },
      [](float, float out) { return -out * out; });
}

// Rows per parallel matmul chunk: >= ~64k multiply-adds each, rounded up to
// the register-tile height so only a chunk's last tile can be partial.
size_t MatMulRowGrain(int64_t reduce, int64_t cols) {
  size_t grain =
      std::max<size_t>(1, 65536 / static_cast<size_t>(std::max<int64_t>(1, reduce * cols)));
  size_t mr = static_cast<size_t>(kernels::kMr);
  return (grain + mr - 1) / mr * mr;
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  // Commutative: put the broadcast operand on the right.
  if (b.numel() > a.numel()) return Add(b, a);
  return BinaryOp(
      a, b, [](float x, float y) { return x + y; },
      [](float, float, float) { return 1.0f; }, [](float, float, float) { return 1.0f; });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  if (a.numel() >= b.numel()) {
    return BinaryOp(
        a, b, [](float x, float y) { return x - y; },
        [](float, float, float) { return 1.0f; },
        [](float, float, float) { return -1.0f; });
  }
  return Add(Neg(b), a);
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  if (b.numel() > a.numel()) return Mul(b, a);
  return BinaryOp(
      a, b, [](float x, float y) { return x * y; },
      [](float, float y, float) { return y; }, [](float x, float, float) { return x; });
}

Tensor Div(const Tensor& a, const Tensor& b) {
  if (a.numel() >= b.numel()) {
    return BinaryOp(
        a, b, [](float x, float y) { return x / y; },
        [](float, float y, float) { return 1.0f / y; },
        [](float x, float y, float) { return -x / (y * y); });
  }
  return Mul(Reciprocal(b), a);
}

Tensor AddScalar(const Tensor& a, float s) {
  return UnaryOp(
      a, [s](float x) { return x + s; }, [](float, float) { return 1.0f; });
}

Tensor MulScalar(const Tensor& a, float s) {
  return UnaryOp(
      a, [s](float x) { return x * s; }, [s](float, float) { return s; });
}

Tensor Neg(const Tensor& a) { return MulScalar(a, -1.0f); }

Tensor Exp(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::exp(x); }, [](float, float out) { return out; });
}

Tensor Log(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::log(x); }, [](float x, float) { return 1.0f / x; });
}

Tensor Sqrt(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::sqrt(x); },
      [](float, float out) { return out > 0 ? 0.5f / out : 0.0f; });
}

Tensor Square(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return x * x; }, [](float x, float) { return 2.0f * x; });
}

Tensor Abs(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::fabs(x); },
      [](float x, float) { return x > 0 ? 1.0f : (x < 0 ? -1.0f : 0.0f); });
}

Tensor ClampMin(const Tensor& a, float lo) {
  return UnaryOp(
      a, [lo](float x) { return x < lo ? lo : x; },
      [lo](float x, float) { return x > lo ? 1.0f : 0.0f; });
}

Tensor Relu(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return x > 0 ? x : 0.0f; },
      [](float x, float) { return x > 0 ? 1.0f : 0.0f; });
}

Tensor LeakyRelu(const Tensor& a, float negative_slope) {
  return UnaryOp(
      a, [negative_slope](float x) { return x > 0 ? x : negative_slope * x; },
      [negative_slope](float x, float) { return x > 0 ? 1.0f : negative_slope; });
}

Tensor Elu(const Tensor& a, float alpha) {
  return UnaryOp(
      a, [alpha](float x) { return x > 0 ? x : alpha * (std::exp(x) - 1.0f); },
      [alpha](float x, float out) { return x > 0 ? 1.0f : out + alpha; });
}

Tensor Sigmoid(const Tensor& a) {
  return UnaryOp(
      a,
      [](float x) {
        // Stable in both tails.
        if (x >= 0) {
          float z = std::exp(-x);
          return 1.0f / (1.0f + z);
        }
        float z = std::exp(x);
        return z / (1.0f + z);
      },
      [](float, float out) { return out * (1.0f - out); });
}

Tensor Tanh(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::tanh(x); },
      [](float, float out) { return 1.0f - out * out; });
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  SARN_CHECK_EQ(a.rank(), 2);
  SARN_CHECK_EQ(b.rank(), 2);
  int64_t m = a.shape()[0], k = a.shape()[1], k2 = b.shape()[0], n = b.shape()[1];
  SARN_CHECK_EQ(k, k2) << "MatMul " << ShapeToString(a.shape()) << " x "
                       << ShapeToString(b.shape());
  const float* ad = a.data().data();
  const float* bd = b.data().data();
  // The init kernels overwrite every element of their row range, so the
  // output can start uninitialized (no zero-fill pass).
  Storage out = Storage::Uninitialized(static_cast<size_t>(m * n));
  float* od = out.data();
  // Plan-executor steps (capture and replay run under GradFusionEnabled)
  // swap in the compiled AVX2 kernels; the dynamic tape stays on the scalar
  // reference kernels it verifies them against. Both produce identical bits
  // (DESIGN.md §15), and the choice is latched here on the recording thread
  // so pool workers executing a row range agree with the plan.
  const bool compiled = GradFusionEnabled() && kernels::MatMulCompiledAvailable();
  // Split so each chunk holds >= ~64k multiply-adds; chunks of kMr rows keep
  // the register tiles full except at a range boundary.
  size_t grain = MatMulRowGrain(k, n);
  ParallelFor(
      static_cast<size_t>(m),
      [&](size_t begin, size_t end) {
#if defined(SARN_HAVE_AVX2_KERNELS)
        if (compiled) {
          kernels::MatMulInitAvx2(ad, bd, od, static_cast<int64_t>(begin),
                                  static_cast<int64_t>(end), k, n);
          return;
        }
#endif
        kernels::MatMulBlockedInit(ad, bd, od, static_cast<int64_t>(begin),
                                   static_cast<int64_t>(end), k, n);
      },
      grain);
  auto ai = a.impl();
  auto bi = b.impl();
  return MakeOpResult({m, n}, std::move(out), {a, b},
                      [ai, bi, m, k, n, compiled](TensorImpl& o) {
    const float* g = o.grad.data();
    if (ai->requires_grad) {
      ai->EnsureGrad();
      float* ga = ai->grad.data();
      const float* bd = bi->data.data();
#if defined(SARN_HAVE_AVX2_KERNELS)
      if (compiled) {
        // Pre-transpose B so the compiled dA kernel's kk lanes load
        // contiguously — pure data movement, no float arithmetic.
        Storage bt = Storage::Uninitialized(static_cast<size_t>(k * n));
        float* btd = bt.data();
        for (int64_t kk = 0; kk < k; ++kk) {
          for (int64_t j = 0; j < n; ++j) btd[j * k + kk] = bd[kk * n + j];
        }
        ParallelFor(
            static_cast<size_t>(m),
            [&](size_t begin, size_t end) {
              kernels::MatMulGradATAvx2(g, btd, ga, static_cast<int64_t>(begin),
                                        static_cast<int64_t>(end), k, n);
            },
            MatMulRowGrain(k, n));
      } else
#endif
      {
        // dA = G * B^T : [m,n] x [n,k]
        ParallelFor(
            static_cast<size_t>(m),
            [&](size_t begin, size_t end) {
              kernels::MatMulGradABlocked(g, bd, ga, static_cast<int64_t>(begin),
                                          static_cast<int64_t>(end), k, n);
            },
            MatMulRowGrain(k, n));
      }
    }
    if (bi->requires_grad) {
      bi->EnsureGrad();
      float* gb = bi->grad.data();
      const float* ad = ai->data.data();
      // dB = A^T * G : [k,m] x [m,n]; parallel over k (rows of dB).
      ParallelFor(
          static_cast<size_t>(k),
          [&](size_t begin, size_t end) {
#if defined(SARN_HAVE_AVX2_KERNELS)
            if (compiled) {
              kernels::MatMulGradBAvx2(ad, g, gb, static_cast<int64_t>(begin),
                                       static_cast<int64_t>(end), m, k, n);
              return;
            }
#endif
            kernels::MatMulGradBBlocked(ad, g, gb, static_cast<int64_t>(begin),
                                        static_cast<int64_t>(end), m, k, n);
          },
          MatMulRowGrain(m, n));
    }
  });
}

Tensor Transpose(const Tensor& a) {
  RowMajor rm = Layout(a);
  Storage out = Storage::Uninitialized(a.data().size());
  for (int64_t i = 0; i < rm.rows; ++i) {
    for (int64_t j = 0; j < rm.cols; ++j) {
      out[static_cast<size_t>(j * rm.rows + i)] = a.data()[rm.at(i, j)];
    }
  }
  auto ai = a.impl();
  return MakeOpResult({rm.cols, rm.rows}, std::move(out), {a}, [ai, rm](TensorImpl& o) {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    for (int64_t i = 0; i < rm.rows; ++i) {
      for (int64_t j = 0; j < rm.cols; ++j) {
        ai->grad[rm.at(i, j)] += o.grad[static_cast<size_t>(j * rm.rows + i)];
      }
    }
  });
}

Tensor Reshape(const Tensor& a, const Shape& shape) {
  SARN_CHECK_EQ(NumElements(shape), a.numel());
  auto ai = a.impl();
  // Zero-copy: the result aliases the input's buffer. Ops never mutate their
  // inputs, and gradients stay per-node, so this is semantics-preserving.
  return MakeOpResult(shape, a.data().Share(), {a}, [ai](TensorImpl& o) {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    for (size_t i = 0; i < o.grad.size(); ++i) ai->grad[i] += o.grad[i];
  });
}

Tensor Sum(const Tensor& a) {
  double acc = 0.0;
  for (float v : a.data()) acc += v;
  Storage out = Storage::Uninitialized(1);
  out[0] = static_cast<float>(acc);
  auto ai = a.impl();
  return MakeOpResult({1}, std::move(out), {a}, [ai](TensorImpl& o) {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    float g = o.grad[0];
    for (float& gv : ai->grad) gv += g;
  });
}

Tensor Mean(const Tensor& a) {
  SARN_CHECK_GT(a.numel(), 0);
  return MulScalar(Sum(a), 1.0f / static_cast<float>(a.numel()));
}

Tensor SumAxis(const Tensor& a, int axis) {
  SARN_CHECK(axis == 0 || axis == 1);
  RowMajor rm = Layout(a);
  auto ai = a.impl();
  if (axis == 0) {
    Storage out = Storage::Zeroed(static_cast<size_t>(rm.cols));
    for (int64_t i = 0; i < rm.rows; ++i) {
      for (int64_t j = 0; j < rm.cols; ++j) out[static_cast<size_t>(j)] += a.data()[rm.at(i, j)];
    }
    return MakeOpResult({rm.cols}, std::move(out), {a}, [ai, rm](TensorImpl& o) {
      if (!ai->requires_grad) return;
      ai->EnsureGrad();
      for (int64_t i = 0; i < rm.rows; ++i) {
        for (int64_t j = 0; j < rm.cols; ++j) ai->grad[rm.at(i, j)] += o.grad[j];
      }
    });
  }
  Storage out = Storage::Uninitialized(static_cast<size_t>(rm.rows));
  for (int64_t i = 0; i < rm.rows; ++i) {
    const float* row = rm.row(a.data(), i);
    double acc = 0.0;
    for (int64_t j = 0; j < rm.cols; ++j) acc += row[j];
    out[static_cast<size_t>(i)] = static_cast<float>(acc);
  }
  return MakeOpResult({rm.rows}, std::move(out), {a}, [ai, rm](TensorImpl& o) {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    for (int64_t i = 0; i < rm.rows; ++i) {
      for (int64_t j = 0; j < rm.cols; ++j) ai->grad[rm.at(i, j)] += o.grad[i];
    }
  });
}

Tensor MeanAxis(const Tensor& a, int axis) {
  int64_t count = axis == 0 ? a.shape()[0] : a.shape()[1];
  SARN_CHECK_GT(count, 0);
  return MulScalar(SumAxis(a, axis), 1.0f / static_cast<float>(count));
}

Tensor RowSoftmax(const Tensor& a) {
  RowMajor rm = Layout(a);
  Storage out = Storage::Uninitialized(a.data().size());
  for (int64_t i = 0; i < rm.rows; ++i) {
    const float* row = rm.row(a.data(), i);
    float* orow = rm.row(out, i);
    float mx = -std::numeric_limits<float>::infinity();
    for (int64_t j = 0; j < rm.cols; ++j) mx = std::max(mx, row[j]);
    double sum = 0.0;
    for (int64_t j = 0; j < rm.cols; ++j) {
      orow[j] = std::exp(row[j] - mx);
      sum += orow[j];
    }
    float inv = static_cast<float>(1.0 / sum);
    for (int64_t j = 0; j < rm.cols; ++j) orow[j] *= inv;
  }
  auto ai = a.impl();
  return MakeOpResult(a.shape(), std::move(out), {a}, [ai, rm](TensorImpl& o) {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    for (int64_t i = 0; i < rm.rows; ++i) {
      const float* y = rm.row(o.data, i);
      const float* g = rm.row(o.grad, i);
      float* ga = rm.row(ai->grad, i);
      double dot = 0.0;
      for (int64_t j = 0; j < rm.cols; ++j) dot += static_cast<double>(g[j]) * y[j];
      for (int64_t j = 0; j < rm.cols; ++j) ga[j] += (g[j] - static_cast<float>(dot)) * y[j];
    }
  });
}

Tensor RowLogSoftmax(const Tensor& a) {
  RowMajor rm = Layout(a);
  Storage out = Storage::Uninitialized(a.data().size());
  for (int64_t i = 0; i < rm.rows; ++i) {
    const float* row = rm.row(a.data(), i);
    float* orow = rm.row(out, i);
    float mx = -std::numeric_limits<float>::infinity();
    for (int64_t j = 0; j < rm.cols; ++j) mx = std::max(mx, row[j]);
    double sum = 0.0;
    for (int64_t j = 0; j < rm.cols; ++j) sum += std::exp(static_cast<double>(row[j]) - mx);
    float lse = mx + static_cast<float>(std::log(sum));
    for (int64_t j = 0; j < rm.cols; ++j) orow[j] = row[j] - lse;
  }
  auto ai = a.impl();
  return MakeOpResult(a.shape(), std::move(out), {a}, [ai, rm](TensorImpl& o) {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    for (int64_t i = 0; i < rm.rows; ++i) {
      const float* y = rm.row(o.data, i);
      const float* g = rm.row(o.grad, i);
      float* ga = rm.row(ai->grad, i);
      double gsum = 0.0;
      for (int64_t j = 0; j < rm.cols; ++j) gsum += g[j];
      for (int64_t j = 0; j < rm.cols; ++j) {
        ga[j] += g[j] - static_cast<float>(gsum) * std::exp(y[j]);
      }
    }
  });
}

Tensor RowL2Normalize(const Tensor& a, float eps) {
  RowMajor rm = Layout(a);
  Storage out = Storage::Uninitialized(a.data().size());
  Storage norms = Storage::Uninitialized(static_cast<size_t>(rm.rows));
  for (int64_t i = 0; i < rm.rows; ++i) {
    const float* row = rm.row(a.data(), i);
    double sq = 0.0;
    for (int64_t j = 0; j < rm.cols; ++j) sq += static_cast<double>(row[j]) * row[j];
    float norm = std::max(static_cast<float>(std::sqrt(sq)), eps);
    norms[static_cast<size_t>(i)] = norm;
    float inv = 1.0f / norm;
    float* orow = rm.row(out, i);
    for (int64_t j = 0; j < rm.cols; ++j) orow[j] = row[j] * inv;
  }
  auto ai = a.impl();
  return MakeOpResult(a.shape(), std::move(out), {a},
                      [ai, rm, norms = std::move(norms), eps](TensorImpl& o) {
                        if (!ai->requires_grad) return;
                        ai->EnsureGrad();
                        for (int64_t i = 0; i < rm.rows; ++i) {
                          const float* x = rm.row(ai->data, i);
                          const float* g = rm.row(o.grad, i);
                          float* ga = rm.row(ai->grad, i);
                          float norm = norms[static_cast<size_t>(i)];
                          float inv = 1.0f / norm;
                          if (norm <= eps) {
                            for (int64_t j = 0; j < rm.cols; ++j) ga[j] += g[j] * inv;
                            continue;
                          }
                          double dot = 0.0;
                          for (int64_t j = 0; j < rm.cols; ++j) {
                            dot += static_cast<double>(g[j]) * x[j];
                          }
                          float scale = static_cast<float>(dot) * inv * inv * inv;
                          for (int64_t j = 0; j < rm.cols; ++j) {
                            ga[j] += g[j] * inv - x[j] * scale;
                          }
                        }
                      });
}

Tensor DotRows(const Tensor& a, const Tensor& b) {
  SARN_CHECK(a.shape() == b.shape())
      << ShapeToString(a.shape()) << " vs " << ShapeToString(b.shape());
  RowMajor rm = Layout(a);
  Storage out = Storage::Uninitialized(static_cast<size_t>(rm.rows));
  for (int64_t i = 0; i < rm.rows; ++i) {
    const float* arow = rm.row(a.data(), i);
    const float* brow = rm.row(b.data(), i);
    double acc = 0.0;
    for (int64_t j = 0; j < rm.cols; ++j) {
      acc += static_cast<double>(arow[j]) * brow[j];
    }
    out[static_cast<size_t>(i)] = static_cast<float>(acc);
  }
  auto ai = a.impl();
  auto bi = b.impl();
  return MakeOpResult({rm.rows}, std::move(out), {a, b}, [ai, bi, rm](TensorImpl& o) {
    for (int64_t i = 0; i < rm.rows; ++i) {
      float g = o.grad[static_cast<size_t>(i)];
      if (ai->requires_grad) {
        ai->EnsureGrad();
        const float* brow = rm.row(bi->data, i);
        float* ga = rm.row(ai->grad, i);
        for (int64_t j = 0; j < rm.cols; ++j) ga[j] += g * brow[j];
      }
      if (bi->requires_grad) {
        bi->EnsureGrad();
        const float* arow = rm.row(ai->data, i);
        float* gb = rm.row(bi->grad, i);
        for (int64_t j = 0; j < rm.cols; ++j) gb[j] += g * arow[j];
      }
    }
  });
}

Tensor ScaleRows(const Tensor& a, const Tensor& scale) {
  RowMajor rm = Layout(a);
  SARN_CHECK_EQ(scale.numel(), rm.rows) << "ScaleRows " << ShapeToString(a.shape())
                                        << " by " << ShapeToString(scale.shape());
  Storage out = Storage::Uninitialized(a.data().size());
  for (int64_t i = 0; i < rm.rows; ++i) {
    float s = scale.data()[static_cast<size_t>(i)];
    const float* row = rm.row(a.data(), i);
    float* orow = rm.row(out, i);
    for (int64_t j = 0; j < rm.cols; ++j) orow[j] = row[j] * s;
  }
  auto ai = a.impl();
  auto si = scale.impl();
  return MakeOpResult(a.shape(), std::move(out), {a, scale}, [ai, si, rm](TensorImpl& o) {
    for (int64_t i = 0; i < rm.rows; ++i) {
      const float* g = rm.row(o.grad, i);
      float s = si->data[static_cast<size_t>(i)];
      if (ai->requires_grad) {
        ai->EnsureGrad();
        float* ga = rm.row(ai->grad, i);
        for (int64_t j = 0; j < rm.cols; ++j) ga[j] += g[j] * s;
      }
      if (si->requires_grad) {
        si->EnsureGrad();
        const float* arow = rm.row(ai->data, i);
        double acc = 0.0;
        for (int64_t j = 0; j < rm.cols; ++j) acc += static_cast<double>(g[j]) * arow[j];
        si->grad[static_cast<size_t>(i)] += static_cast<float>(acc);
      }
    }
  });
}

Tensor Rows(const Tensor& a, const std::vector<int64_t>& indices) {
  RowMajor rm = Layout(a);
  int64_t m = static_cast<int64_t>(indices.size());
  Storage out = Storage::Uninitialized(static_cast<size_t>(m * rm.cols));
  for (int64_t r = 0; r < m; ++r) {
    int64_t src = indices[static_cast<size_t>(r)];
    SARN_CHECK(src >= 0 && src < rm.rows) << "row index " << src;
    std::copy_n(rm.row(a.data(), src), rm.cols, out.data() + r * rm.cols);
  }
  auto ai = a.impl();
  return MakeOpResult({m, rm.cols}, std::move(out), {a},
                      [ai, rm, idx = MakeIndexVec(indices)](TensorImpl& o) {
                        if (!ai->requires_grad) return;
                        ai->EnsureGrad();
                        for (size_t r = 0; r < idx.size(); ++r) {
                          const float* g = o.grad.data() + r * rm.cols;
                          float* ga = rm.row(ai->grad, idx[r]);
                          for (int64_t j = 0; j < rm.cols; ++j) ga[j] += g[j];
                        }
                      });
}

Tensor TakePerRow(const Tensor& a, const std::vector<int64_t>& cols) {
  RowMajor rm = Layout(a);
  SARN_CHECK_EQ(static_cast<int64_t>(cols.size()), rm.rows);
  Storage out = Storage::Uninitialized(static_cast<size_t>(rm.rows));
  for (int64_t i = 0; i < rm.rows; ++i) {
    int64_t c = cols[static_cast<size_t>(i)];
    SARN_CHECK(c >= 0 && c < rm.cols) << "col index " << c;
    out[static_cast<size_t>(i)] = a.data()[rm.at(i, c)];
  }
  auto ai = a.impl();
  return MakeOpResult({rm.rows}, std::move(out), {a},
                      [ai, rm, idx = MakeIndexVec(cols)](TensorImpl& o) {
                        if (!ai->requires_grad) return;
                        ai->EnsureGrad();
                        for (size_t i = 0; i < idx.size(); ++i) {
                          ai->grad[rm.at(static_cast<int64_t>(i), idx[i])] += o.grad[i];
                        }
                      });
}

Tensor ColsRange(const Tensor& a, int64_t col, int64_t count) {
  RowMajor rm = Layout(a);
  SARN_CHECK(col >= 0 && count > 0 && col + count <= rm.cols)
      << "ColsRange [" << col << ", " << col + count << ") of " << ShapeToString(a.shape());
  Storage out = Storage::Uninitialized(static_cast<size_t>(rm.rows * count));
  for (int64_t i = 0; i < rm.rows; ++i) {
    std::copy_n(rm.row(a.data(), i) + col, count, out.data() + i * count);
  }
  auto ai = a.impl();
  return MakeOpResult({rm.rows, count}, std::move(out), {a},
                      [ai, rm, col, count](TensorImpl& o) {
                        if (!ai->requires_grad) return;
                        ai->EnsureGrad();
                        for (int64_t i = 0; i < rm.rows; ++i) {
                          const float* g = o.grad.data() + i * count;
                          float* ga = rm.row(ai->grad, i) + col;
                          for (int64_t j = 0; j < count; ++j) ga[j] += g[j];
                        }
                      });
}

Tensor Concat(const std::vector<Tensor>& parts, int axis) {
  SARN_CHECK(!parts.empty());
  SARN_CHECK(axis == 0 || axis == 1);
  for (const Tensor& p : parts) SARN_CHECK_EQ(p.rank(), 2);
  int64_t m = 0, n = 0;
  if (axis == 0) {
    n = parts[0].shape()[1];
    for (const Tensor& p : parts) {
      SARN_CHECK_EQ(p.shape()[1], n);
      m += p.shape()[0];
    }
  } else {
    m = parts[0].shape()[0];
    for (const Tensor& p : parts) {
      SARN_CHECK_EQ(p.shape()[0], m);
      n += p.shape()[1];
    }
  }
  RowMajor rm{m, n};
  Storage out = Storage::Uninitialized(static_cast<size_t>(m * n));
  if (axis == 0) {
    size_t offset = 0;
    for (const Tensor& p : parts) {
      std::copy(p.data().begin(), p.data().end(), out.begin() + offset);
      offset += p.data().size();
    }
  } else {
    int64_t col_offset = 0;
    for (const Tensor& p : parts) {
      int64_t pn = p.shape()[1];
      for (int64_t i = 0; i < m; ++i) {
        std::copy_n(p.data().data() + i * pn, pn, rm.row(out, i) + col_offset);
      }
      col_offset += pn;
    }
  }
  PoolVec<std::shared_ptr<TensorImpl>> impls;
  impls.reserve(parts.size());
  for (const Tensor& p : parts) impls.push_back(p.impl());
  return MakeOpResult({m, n}, std::move(out), parts,
                      [impls = std::move(impls), axis, rm](TensorImpl& o) {
                        if (axis == 0) {
                          size_t offset = 0;
                          for (const auto& pi : impls) {
                            if (pi->requires_grad) {
                              pi->EnsureGrad();
                              for (size_t i = 0; i < pi->data.size(); ++i) {
                                pi->grad[i] += o.grad[offset + i];
                              }
                            }
                            offset += pi->data.size();
                          }
                        } else {
                          int64_t col_offset = 0;
                          for (const auto& pi : impls) {
                            int64_t pn = pi->shape[1];
                            if (pi->requires_grad) {
                              pi->EnsureGrad();
                              for (int64_t i = 0; i < rm.rows; ++i) {
                                const float* g = rm.row(o.grad, i) + col_offset;
                                float* gp = pi->grad.data() + i * pn;
                                for (int64_t j = 0; j < pn; ++j) gp[j] += g[j];
                              }
                            }
                            col_offset += pn;
                          }
                        }
                      });
}

Tensor Dropout(const Tensor& a, float p, Rng& rng) {
  SARN_CHECK(p >= 0.0f && p < 1.0f) << "p=" << p;
  if (p == 0.0f) return a;
  float keep = 1.0f - p;
  float scale = 1.0f / keep;
  Storage mask = Storage::Uninitialized(a.data().size());
  Storage out = Storage::Uninitialized(a.data().size());
  for (size_t i = 0; i < mask.size(); ++i) {
    mask[i] = rng.Bernoulli(keep) ? scale : 0.0f;
    out[i] = a.data()[i] * mask[i];
  }
  auto ai = a.impl();
  return MakeOpResult(a.shape(), std::move(out), {a},
                      [ai, mask = std::move(mask)](TensorImpl& o) {
                        if (!ai->requires_grad) return;
                        ai->EnsureGrad();
                        for (size_t i = 0; i < o.grad.size(); ++i) {
                          ai->grad[i] += o.grad[i] * mask[i];
                        }
                      });
}

Tensor EdgeSoftmax(const Tensor& scores, const std::vector<int64_t>& dst,
                   int64_t num_vertices) {
  SARN_CHECK(scores.rank() == 1 || (scores.rank() == 2 && scores.shape()[1] == 1));
  int64_t e_count = scores.numel();
  SARN_CHECK_EQ(static_cast<int64_t>(dst.size()), e_count);
  PoolVec<float> max_per(static_cast<size_t>(num_vertices),
                         -std::numeric_limits<float>::infinity());
  for (int64_t e = 0; e < e_count; ++e) {
    int64_t v = dst[static_cast<size_t>(e)];
    SARN_DCHECK(v >= 0 && v < num_vertices);
    max_per[static_cast<size_t>(v)] =
        std::max(max_per[static_cast<size_t>(v)], scores.data()[static_cast<size_t>(e)]);
  }
  PoolVec<double> sum_per(static_cast<size_t>(num_vertices), 0.0);
  Storage out = Storage::Uninitialized(static_cast<size_t>(e_count));
  for (int64_t e = 0; e < e_count; ++e) {
    size_t v = static_cast<size_t>(dst[static_cast<size_t>(e)]);
    float ex = std::exp(scores.data()[static_cast<size_t>(e)] - max_per[v]);
    out[static_cast<size_t>(e)] = ex;
    sum_per[v] += ex;
  }
  for (int64_t e = 0; e < e_count; ++e) {
    size_t v = static_cast<size_t>(dst[static_cast<size_t>(e)]);
    out[static_cast<size_t>(e)] =
        sum_per[v] > 0 ? static_cast<float>(out[static_cast<size_t>(e)] / sum_per[v]) : 0.0f;
  }
  auto si = scores.impl();
  return MakeOpResult(
      {e_count}, std::move(out), {scores},
      [si, idx = MakeIndexVec(dst), num_vertices](TensorImpl& o) {
        if (!si->requires_grad) return;
        si->EnsureGrad();
        // Grouped softmax Jacobian: ds_e = y_e * (g_e - sum_{e' in group} g_e' y_e').
        PoolVec<double> group_dot(static_cast<size_t>(num_vertices), 0.0);
        for (size_t e = 0; e < idx.size(); ++e) {
          group_dot[static_cast<size_t>(idx[e])] +=
              static_cast<double>(o.grad[e]) * o.data[e];
        }
        for (size_t e = 0; e < idx.size(); ++e) {
          si->grad[e] += o.data[e] * (o.grad[e] - static_cast<float>(
                                                      group_dot[static_cast<size_t>(idx[e])]));
        }
      });
}

Tensor ScatterAddRows(const Tensor& messages, const std::vector<int64_t>& dst,
                      int64_t num_vertices) {
  RowMajor rm = Layout(messages);
  SARN_CHECK_EQ(static_cast<int64_t>(dst.size()), rm.rows);
  RowMajor orm{num_vertices, rm.cols};
  Storage out = Storage::Zeroed(static_cast<size_t>(num_vertices * rm.cols));
  for (int64_t e = 0; e < rm.rows; ++e) {
    int64_t v = dst[static_cast<size_t>(e)];
    SARN_DCHECK(v >= 0 && v < num_vertices);
    const float* msg = rm.row(messages.data(), e);
    float* orow = orm.row(out, v);
    for (int64_t j = 0; j < rm.cols; ++j) orow[j] += msg[j];
  }
  auto mi = messages.impl();
  return MakeOpResult({num_vertices, rm.cols}, std::move(out), {messages},
                      [mi, rm, orm, idx = MakeIndexVec(dst)](TensorImpl& o) {
                        if (!mi->requires_grad) return;
                        mi->EnsureGrad();
                        for (size_t e = 0; e < idx.size(); ++e) {
                          const float* g = orm.row(o.grad, idx[e]);
                          float* gm = rm.row(mi->grad, static_cast<int64_t>(e));
                          for (int64_t j = 0; j < rm.cols; ++j) gm[j] += g[j];
                        }
                      });
}

Tensor FusedEdgeScores(const Tensor& score_src, const Tensor& score_dst,
                       const std::vector<int64_t>& src, const std::vector<int64_t>& dst,
                       float negative_slope) {
  SARN_CHECK(!GradModeEnabled()) << "FusedEdgeScores is inference-only";
  SARN_CHECK_EQ(src.size(), dst.size());
  int64_t e_count = static_cast<int64_t>(src.size());
  const Storage& ss = score_src.data();
  const Storage& sd = score_dst.data();
  Storage out = Storage::Uninitialized(static_cast<size_t>(e_count));
  for (int64_t e = 0; e < e_count; ++e) {
    // Same operation order as Add(Rows(score_dst, dst), Rows(score_src, src))
    // followed by LeakyRelu — bitwise identical, no intermediates.
    float x = sd[static_cast<size_t>(dst[static_cast<size_t>(e)])] +
              ss[static_cast<size_t>(src[static_cast<size_t>(e)])];
    out[static_cast<size_t>(e)] = x > 0 ? x : negative_slope * x;
  }
  return Tensor::FromStorage({e_count}, std::move(out));
}

namespace {
thread_local bool t_grad_fusion = false;
}  // namespace

bool GradFusionEnabled() { return t_grad_fusion; }

void SetGradFusionEnabled(bool enabled) { t_grad_fusion = enabled; }

GradFusionGuard::GradFusionGuard(bool enabled) : previous_(t_grad_fusion) {
  t_grad_fusion = enabled;
}

GradFusionGuard::~GradFusionGuard() { t_grad_fusion = previous_; }

Tensor FusedEdgeScoreActivate(const Tensor& score_src, const Tensor& score_dst,
                              const std::vector<int64_t>& src,
                              const std::vector<int64_t>& dst,
                              float negative_slope) {
  SARN_CHECK_EQ(src.size(), dst.size());
  int64_t e_count = static_cast<int64_t>(src.size());
  const Storage& ss = score_src.data();
  const Storage& sd = score_dst.data();
  Storage out = Storage::Uninitialized(static_cast<size_t>(e_count));
  for (int64_t e = 0; e < e_count; ++e) {
    // Same float order as Add(Rows(score_dst, dst), Rows(score_src, src))
    // followed by LeakyRelu.
    float x = sd[static_cast<size_t>(dst[static_cast<size_t>(e)])] +
              ss[static_cast<size_t>(src[static_cast<size_t>(e)])];
    out[static_cast<size_t>(e)] = x > 0 ? x : negative_slope * x;
  }
  auto ssi = score_src.impl();
  auto sdi = score_dst.impl();
  // Parent order {score_dst, score_src} mirrors Add(rows_dst, rows_src): the
  // backward DFS then visits the score_dst matmul subtree first, so wx
  // receives the two attention-gradient contributions in the unfused order
  // (score_src's closure runs before score_dst's).
  return MakeOpResult(
      {e_count}, std::move(out), {score_dst, score_src},
      [ssi, sdi, negative_slope, src_idx = MakeIndexVec(src),
       dst_idx = MakeIndexVec(dst)](TensorImpl& o) {
        // Per edge: recompute the pre-activation x bitwise from the saved
        // inputs (LeakyRelu's derivative tests x), then scatter the chain
        // gradient g * lrelu'(x) exactly as the unfused Rows backwards do —
        // ascending edge order, single accumulation per edge. The unfused
        // graph updates score_src before score_dst; the targets are distinct
        // tensors with single-assignment row gradients, so per-tensor float
        // accumulation order (the bitwise invariant) is preserved.
        auto chain = [&](size_t e) -> float {
          float x = sdi->data[static_cast<size_t>(dst_idx[e])] +
                    ssi->data[static_cast<size_t>(src_idx[e])];
          return o.grad[e] * (x > 0 ? 1.0f : negative_slope);
        };
        if (ssi->requires_grad) {
          ssi->EnsureGrad();
          for (size_t e = 0; e < src_idx.size(); ++e) {
            ssi->grad[static_cast<size_t>(src_idx[e])] += chain(e);
          }
        }
        if (sdi->requires_grad) {
          sdi->EnsureGrad();
          for (size_t e = 0; e < dst_idx.size(); ++e) {
            sdi->grad[static_cast<size_t>(dst_idx[e])] += chain(e);
          }
        }
      });
}

Tensor ScaleScatterRows(const Tensor& rows, const Tensor& scale,
                        const std::vector<int64_t>& dst, int64_t num_vertices) {
  RowMajor rm = Layout(rows);
  SARN_CHECK_EQ(scale.numel(), rm.rows);
  SARN_CHECK_EQ(static_cast<int64_t>(dst.size()), rm.rows);
  RowMajor orm{num_vertices, rm.cols};
  Storage out = Storage::Zeroed(static_cast<size_t>(num_vertices * rm.cols));
  for (int64_t e = 0; e < rm.rows; ++e) {
    int64_t v = dst[static_cast<size_t>(e)];
    SARN_DCHECK(v >= 0 && v < num_vertices);
    const float* row = rm.row(rows.data(), e);
    float s = scale.data()[static_cast<size_t>(e)];
    float* orow = orm.row(out, v);
    for (int64_t j = 0; j < rm.cols; ++j) {
      // Explicit float intermediate matches the rounding of the unfused
      // ScaleRows-then-ScatterAdd chain exactly.
      float message = row[j] * s;
      orow[j] += message;
    }
  }
  auto ai = rows.impl();
  auto si = scale.impl();
  return MakeOpResult(
      {num_vertices, rm.cols}, std::move(out), {rows, scale},
      [ai, si, rm, orm, idx = MakeIndexVec(dst)](TensorImpl& o) {
        // The unfused pair first materialises messages.grad[e] =
        // out.grad[dst[e]] (single assignment into zeros), then ScaleRows
        // consumes it per edge. Reading out.grad[dst[e]] directly yields the
        // same values; every gradient target (rows.grad row e, scale.grad[e])
        // receives exactly one accumulation, so the per-edge interleaving
        // cannot change any float result.
        for (size_t e = 0; e < idx.size(); ++e) {
          const float* g = orm.row(o.grad, idx[e]);
          float s = si->data[e];
          if (ai->requires_grad) {
            ai->EnsureGrad();
            float* ga = rm.row(ai->grad, static_cast<int64_t>(e));
            for (int64_t j = 0; j < rm.cols; ++j) ga[j] += g[j] * s;
          }
          if (si->requires_grad) {
            si->EnsureGrad();
            const float* arow = rm.row(ai->data, static_cast<int64_t>(e));
            double acc = 0.0;
            for (int64_t j = 0; j < rm.cols; ++j) {
              acc += static_cast<double>(g[j]) * arow[j];
            }
            si->grad[e] += static_cast<float>(acc);
          }
        }
      });
}

Tensor FusedGatherScaleScatter(const Tensor& wx, const std::vector<int64_t>& src,
                               const std::vector<int64_t>& dst, const Tensor& alpha,
                               int64_t num_vertices) {
  SARN_CHECK(!GradModeEnabled()) << "FusedGatherScaleScatter is inference-only";
  SARN_CHECK_EQ(src.size(), dst.size());
  RowMajor rm = Layout(wx);
  RowMajor orm{num_vertices, rm.cols};
  Storage out = Storage::Zeroed(static_cast<size_t>(num_vertices * rm.cols));
  for (size_t e = 0; e < src.size(); ++e) {
    const float* row = rm.row(wx.data(), src[e]);
    float s = alpha.data()[e];
    float* orow = orm.row(out, dst[e]);
    for (int64_t j = 0; j < rm.cols; ++j) {
      // Explicit float intermediate matches the rounding of the unfused
      // ScaleRows-then-ScatterAdd chain exactly.
      float message = row[j] * s;
      orow[j] += message;
    }
  }
  return Tensor::FromStorage({num_vertices, rm.cols}, std::move(out));
}

}  // namespace sarn::tensor
