// Principal component analysis by power iteration with deflation.
//
// Used to project learned road-segment embeddings to 2-3 components for
// visualization (GeoJSON export) and for quick diagnostics of embedding
// collapse. Works on detached data; no autograd involvement.

#ifndef SARN_TENSOR_PCA_H_
#define SARN_TENSOR_PCA_H_

#include "tensor/tensor.h"

namespace sarn::tensor {

struct PcaResult {
  /// [n, components] projections of the (centered) rows.
  Tensor projections;
  /// [components, d] principal axes (unit rows).
  Tensor components;
  /// Explained variance per component, descending.
  std::vector<double> explained_variance;
};

/// Projects the rows of x [n, d] onto the top `num_components` principal
/// axes. `num_components` must be <= d. Deterministic (fixed-seed start
/// vectors); `iterations` bounds the power-iteration steps per component.
PcaResult Pca(const Tensor& x, int num_components, int iterations = 100);

}  // namespace sarn::tensor

#endif  // SARN_TENSOR_PCA_H_
