// Raw float matmul kernels behind tensor::MatMul — forward and both
// backward products — in two variants each:
//
//   *Naive:   the straightforward i/k/j (resp. dot-product) loops the seed
//             implementation used. Kept as the golden reference for
//             equivalence tests and as the baseline in bench_micro_kernels.
//   *Blocked: register-tiled kernels. The output is computed in kMr x kNr
//             tiles held in registers across the whole k-reduction, so each
//             A element is reused kNr times and each B row kMr times per
//             load instead of being re-streamed from cache per scalar. The
//             reduction order per output element is unchanged (ascending
//             k for the forward / dB, ascending j for dA), so results match
//             the naive kernels bit-for-bit on finite inputs.
//
// All kernels operate on a row range [row_begin, row_end) of the output so
// ParallelFor can partition them; `c` is accumulated into (callers zero or
// pre-seed it).

#ifndef SARN_TENSOR_MATMUL_KERNELS_H_
#define SARN_TENSOR_MATMUL_KERNELS_H_

#include <cstdint>

namespace sarn::tensor::kernels {

/// Register tile height (output rows) and width (output cols) of the
/// blocked kernels. kMr * kNr accumulators must fit the register file with
/// room for operands (4 x 16 floats = 8 SSE / 4 AVX2 vectors).
inline constexpr int64_t kMr = 4;
inline constexpr int64_t kNr = 16;

/// C[i,:] += A[i,:] * B for i in [row_begin, row_end). A: [m,k], B: [k,n].
void MatMulNaive(const float* a, const float* b, float* c, int64_t row_begin,
                 int64_t row_end, int64_t k, int64_t n);
void MatMulBlocked(const float* a, const float* b, float* c, int64_t row_begin,
                   int64_t row_end, int64_t k, int64_t n);

/// dA[i,:] += G[i,:] * B^T for i in [row_begin, row_end). G: [m,n], B: [k,n].
void MatMulGradANaive(const float* g, const float* b, float* da, int64_t row_begin,
                      int64_t row_end, int64_t k, int64_t n);
void MatMulGradABlocked(const float* g, const float* b, float* da, int64_t row_begin,
                        int64_t row_end, int64_t k, int64_t n);

/// dB[kk,:] += (A^T * G)[kk,:] for kk in [row_begin, row_end). A: [m,k], G: [m,n].
void MatMulGradBNaive(const float* a, const float* g, float* db, int64_t row_begin,
                      int64_t row_end, int64_t m, int64_t k, int64_t n);
void MatMulGradBBlocked(const float* a, const float* g, float* db, int64_t row_begin,
                        int64_t row_end, int64_t m, int64_t k, int64_t n);

}  // namespace sarn::tensor::kernels

#endif  // SARN_TENSOR_MATMUL_KERNELS_H_
