// Raw float matmul kernels behind tensor::MatMul — forward and both
// backward products — in two variants each:
//
//   *Naive:   the straightforward i/k/j (resp. dot-product) loops the seed
//             implementation used. Kept as the golden reference for
//             equivalence tests and as the baseline in bench_micro_kernels.
//   *Blocked: register-tiled kernels. The output is computed in kMr x kNr
//             tiles held in registers across the whole k-reduction, so each
//             A element is reused kNr times and each B row kMr times per
//             load instead of being re-streamed from cache per scalar. The
//             reduction order per output element is unchanged (ascending
//             k for the forward / dB, ascending j for dA), so results match
//             the naive kernels bit-for-bit on finite inputs.
//
// All kernels operate on a row range [row_begin, row_end) of the output so
// ParallelFor can partition them; `c` is accumulated into (callers zero or
// pre-seed it).

#ifndef SARN_TENSOR_MATMUL_KERNELS_H_
#define SARN_TENSOR_MATMUL_KERNELS_H_

#include <cstdint>

namespace sarn::tensor::kernels {

/// Register tile height (output rows) and width (output cols) of the
/// blocked kernels. kMr * kNr accumulators must fit the register file with
/// room for operands (4 x 16 floats = 8 SSE / 4 AVX2 vectors).
inline constexpr int64_t kMr = 4;
inline constexpr int64_t kNr = 16;

/// C[i,:] += A[i,:] * B for i in [row_begin, row_end). A: [m,k], B: [k,n].
void MatMulNaive(const float* a, const float* b, float* c, int64_t row_begin,
                 int64_t row_end, int64_t k, int64_t n);
void MatMulBlocked(const float* a, const float* b, float* c, int64_t row_begin,
                   int64_t row_end, int64_t k, int64_t n);

/// C[i,:] = A[i,:] * B (overwrite): the blocked forward kernel minus the
/// accumulate-into-C contract. The register tile starts at +0.0f instead of
/// being seeded from C, which is bit-identical to accumulating into a
/// zeroed buffer — so MatMul can hand it an uninitialized output and skip
/// the zero-fill pass plus the tile re-read entirely.
void MatMulBlockedInit(const float* a, const float* b, float* c, int64_t row_begin,
                       int64_t row_end, int64_t k, int64_t n);

/// dA[i,:] += G[i,:] * B^T for i in [row_begin, row_end). G: [m,n], B: [k,n].
void MatMulGradANaive(const float* g, const float* b, float* da, int64_t row_begin,
                      int64_t row_end, int64_t k, int64_t n);
void MatMulGradABlocked(const float* g, const float* b, float* da, int64_t row_begin,
                        int64_t row_end, int64_t k, int64_t n);

/// dB[kk,:] += (A^T * G)[kk,:] for kk in [row_begin, row_end). A: [m,k], G: [m,n].
void MatMulGradBNaive(const float* a, const float* g, float* db, int64_t row_begin,
                      int64_t row_end, int64_t m, int64_t k, int64_t n);
void MatMulGradBBlocked(const float* a, const float* g, float* db, int64_t row_begin,
                        int64_t row_end, int64_t m, int64_t k, int64_t n);

// --- Compiled (plan-executor) AVX2 kernels ----------------------------------
// Vector lanes are distinct output elements — no reduction is reassociated
// and no FMA is emitted (see simd/matmul_avx2.cc) — so each kernel is
// bit-identical to its scalar blocked counterpart on every input. The plan
// executor swaps them in for verified capture/replay steps (DESIGN.md §15);
// the dynamic tape keeps the scalar reference kernels.

/// True when the AVX2 kernels are compiled in and the host supports them.
/// Defined (returning false) on every build so call sites need no #ifdefs.
bool MatMulCompiledAvailable();

#if defined(SARN_HAVE_AVX2_KERNELS)
bool MatMulAvx2Supported();

/// C[i,:] = A[i,:] * B (overwrite, zero seed) — MatMulBlockedInit, 8-wide.
void MatMulInitAvx2(const float* a, const float* b, float* c, int64_t row_begin,
                    int64_t row_end, int64_t k, int64_t n);

/// dA[i,:] += G[i,:] * B^T via the pre-transposed bt ([n, k], bt[j*k+kk] ==
/// b[kk*n+j]) — MatMulGradABlocked's zero-seeded-dot-then-add chains, 8-wide.
void MatMulGradATAvx2(const float* g, const float* bt, float* da,
                      int64_t row_begin, int64_t row_end, int64_t k, int64_t n);

/// dB[kk,:] += (A^T * G)[kk,:] — MatMulGradBBlocked, 8-wide.
void MatMulGradBAvx2(const float* a, const float* g, float* db,
                     int64_t row_begin, int64_t row_end, int64_t m, int64_t k,
                     int64_t n);
#endif  // SARN_HAVE_AVX2_KERNELS

}  // namespace sarn::tensor::kernels

#endif  // SARN_TENSOR_MATMUL_KERNELS_H_
