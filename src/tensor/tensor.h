// A compact dense-tensor engine with reverse-mode automatic differentiation.
//
// This is the numeric substrate every model in the repository trains on
// (SARN's GAT encoders, the projection heads, the GRU trajectory encoder, the
// baseline FFNs). It is deliberately small: float32 storage, row-major, rank
// <= 2 in practice (vectors and matrices), a tape built dynamically by the
// ops in tensor/ops.h, and topological-order backpropagation.
//
// Usage:
//   Tensor w = Tensor::Randn({4, 3}, rng).RequiresGrad();
//   Tensor x = Tensor::FromVector({1, 4}, {1, 2, 3, 4});
//   Tensor loss = Sum(MatMul(x, w));
//   loss.Backward();
//   w.grad();  // d loss / d w
//
// Thread-compatibility: distinct graphs may be built/run on distinct threads;
// a single Tensor must not be used concurrently. Gradient recording can be
// suspended with NoGradGuard (used by all inference paths).

#ifndef SARN_TENSOR_TENSOR_H_
#define SARN_TENSOR_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace sarn::tensor {

/// Tensor shape; rank 0 (scalar) through rank 3 are supported, rank <= 2 is
/// the common case.
using Shape = std::vector<int64_t>;

int64_t NumElements(const Shape& shape);
std::string ShapeToString(const Shape& shape);

namespace internal {

struct TensorImpl {
  Shape shape;
  std::vector<float> data;
  std::vector<float> grad;  // Allocated lazily, same size as data.
  bool requires_grad = false;

  // Autograd tape node. `backward` propagates this node's grad into its
  // parents' grads. Cleared by Tensor::Backward() after use.
  std::function<void()> backward;
  std::vector<std::shared_ptr<TensorImpl>> parents;

  void EnsureGrad() {
    if (grad.size() != data.size()) grad.assign(data.size(), 0.0f);
  }
};

}  // namespace internal

/// True while gradients are being recorded on this thread (default true).
bool GradModeEnabled();

/// RAII guard disabling gradient recording; nestable.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

/// Value-semantic handle to a (possibly autograd-tracked) dense float tensor.
/// Copies share the underlying buffer (like torch.Tensor).
class Tensor {
 public:
  /// An empty (null) tensor; defined() is false.
  Tensor() = default;

  // --- Factories -----------------------------------------------------------

  static Tensor Zeros(const Shape& shape);
  static Tensor Ones(const Shape& shape);
  static Tensor Full(const Shape& shape, float value);
  static Tensor FromVector(const Shape& shape, std::vector<float> values);
  /// N(0, stddev^2) entries.
  static Tensor Randn(const Shape& shape, Rng& rng, float stddev = 1.0f);
  /// U[lo, hi) entries.
  static Tensor Uniform(const Shape& shape, Rng& rng, float lo, float hi);
  /// Glorot/Xavier-uniform initialisation for a [fan_in, fan_out] matrix.
  static Tensor GlorotUniform(int64_t fan_in, int64_t fan_out, Rng& rng);

  // --- Introspection -------------------------------------------------------

  bool defined() const { return impl_ != nullptr; }
  const Shape& shape() const { return impl_->shape; }
  int64_t dim(size_t axis) const;
  int64_t numel() const { return static_cast<int64_t>(impl_->data.size()); }
  int64_t rank() const { return static_cast<int64_t>(impl_->shape.size()); }
  bool requires_grad() const { return impl_->requires_grad; }

  /// Marks this tensor as a gradient leaf (a trainable parameter). Returns
  /// *this for chaining.
  Tensor& RequiresGrad(bool value = true);

  // --- Data access ---------------------------------------------------------

  const std::vector<float>& data() const { return impl_->data; }
  std::vector<float>& mutable_data() { return impl_->data; }
  /// Gradient buffer (zeros if backward has not reached this tensor).
  const std::vector<float>& grad() const;
  std::vector<float>& mutable_grad();

  float item() const;                       // Requires numel() == 1.
  float at(int64_t i) const;                // Rank-1 access.
  float at(int64_t i, int64_t j) const;     // Rank-2 access.
  void set(int64_t i, float v);             // Rank-1.
  void set(int64_t i, int64_t j, float v);  // Rank-2.

  // --- Autograd ------------------------------------------------------------

  /// Runs reverse-mode autodiff from this scalar tensor: fills `grad` of all
  /// reachable tensors with requires_grad. The tape is consumed (freed).
  void Backward();

  /// Same, with an explicit seed gradient (shape must match).
  void Backward(const std::vector<float>& seed_grad);

  /// Zeroes this tensor's gradient buffer.
  void ZeroGrad();

  /// Returns a copy detached from the autograd graph (shares no tape, fresh
  /// buffer, requires_grad = false).
  Tensor Detach() const;

  /// Deep copy of values (no tape).
  Tensor Clone() const;

  std::string ToString(int max_per_dim = 8) const;

  // Internal: used by ops.
  std::shared_ptr<internal::TensorImpl> impl() const { return impl_; }
  static Tensor FromImpl(std::shared_ptr<internal::TensorImpl> impl);

 private:
  std::shared_ptr<internal::TensorImpl> impl_;
};

/// Signature of an op's backward pass: receives the output node (whose
/// `grad` holds dL/d_out) and must accumulate into the inputs' grads (the
/// closure captures the input impls itself).
using BackwardFn = std::function<void(internal::TensorImpl& out)>;

/// Creates a result tensor wired into the tape: if grad mode is on and any
/// input requires grad, the result requires grad and `backward` will be
/// invoked during backprop. Used by all op implementations.
Tensor MakeOpResult(Shape shape, std::vector<float> data, std::vector<Tensor> inputs,
                    BackwardFn backward);

}  // namespace sarn::tensor

#endif  // SARN_TENSOR_TENSOR_H_
