// A compact dense-tensor engine with reverse-mode automatic differentiation.
//
// This is the numeric substrate every model in the repository trains on
// (SARN's GAT encoders, the projection heads, the GRU trajectory encoder, the
// baseline FFNs). It is deliberately small: float32 storage, row-major, rank
// <= 2 in practice (vectors and matrices), a tape built dynamically by the
// ops in tensor/ops.h, and topological-order backpropagation.
//
// Usage:
//   Tensor w = Tensor::Randn({4, 3}, rng).RequiresGrad();
//   Tensor x = Tensor::FromVector({1, 4}, {1, 2, 3, 4});
//   Tensor loss = Sum(MatMul(x, w));
//   loss.Backward();
//   w.grad();  // d loss / d w
//
// Thread-compatibility: distinct graphs may be built/run on distinct threads;
// a single Tensor must not be used concurrently. Gradient recording can be
// suspended with NoGradGuard (used by all inference paths).

#ifndef SARN_TENSOR_TENSOR_H_
#define SARN_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "tensor/storage.h"

namespace sarn::tensor {

/// Tensor shape; rank 0 (scalar) through rank 3 are supported, rank <= 2 is
/// the common case.
using Shape = std::vector<int64_t>;

int64_t NumElements(const Shape& shape);
std::string ShapeToString(const Shape& shape);

namespace internal {

struct TensorImpl {
  Shape shape;
  Storage data;             // Pooled; returned to the BufferPool on destruction.
  Storage grad;             // Allocated lazily, same size as data.
  bool requires_grad = false;

  // Autograd tape node. `backward` propagates this node's grad into its
  // parents' grads (it receives *this). Cleared by Tensor::Backward() after
  // use, which also drops the parents so intermediate buffers recycle.
  TapeFn backward;
  PoolVec<std::shared_ptr<TensorImpl>> parents;

  // Tape-traversal mark: visited iff equal to the current Backward() pass id
  // on this thread (replaces a per-call hash set, so topo sort allocates
  // nothing in steady state).
  uint64_t visit_mark = 0;

  void EnsureGrad() {
    if (grad.size() != data.size()) grad.assign(data.size(), 0.0f);
  }
};

class Tensor;  // below

/// Thread-local tape interposition for the step-plan recorder and executor
/// (src/plan/). Null (the default) keeps the dynamic tape untouched.
struct TapeHooks {
  /// Observes every tape node the thread records (MakeOpResult with grad
  /// mode on and a grad-requiring input).
  void (*on_node)(void* ctx, const std::shared_ptr<TensorImpl>& node) = nullptr;
  /// Offered the whole backward pass after the seed has been validated.
  /// Returning true means the hook executed (or replayed) the pass itself;
  /// false falls through to the dynamic DFS path.
  bool (*backward)(void* ctx, const std::shared_ptr<TensorImpl>& root,
                   const float* seed, size_t seed_size) = nullptr;
  void* ctx = nullptr;
};

/// Installs `hooks` for the calling thread (nullptr uninstalls). The pointer
/// must stay valid until uninstalled.
void SetThreadTapeHooks(TapeHooks* hooks);
TapeHooks* ThreadTapeHooks();

/// Next backward pass id for this thread's visit_mark stamping. Shared
/// between the dynamic DFS and the plan recorder's topo sort so their marks
/// never collide.
uint64_t NextBackwardPass();

}  // namespace internal

/// True while gradients are being recorded on this thread (default true).
bool GradModeEnabled();

/// RAII guard disabling gradient recording; nestable.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

/// Value-semantic handle to a (possibly autograd-tracked) dense float tensor.
/// Copies share the underlying buffer (like torch.Tensor).
class Tensor {
 public:
  /// An empty (null) tensor; defined() is false.
  Tensor() = default;

  // --- Factories -----------------------------------------------------------

  static Tensor Zeros(const Shape& shape);
  static Tensor Ones(const Shape& shape);
  static Tensor Full(const Shape& shape, float value);
  static Tensor FromVector(const Shape& shape, std::vector<float> values);
  /// Pooled buffer with unspecified contents — for call sites that fill every
  /// element immediately (avoids a zero-fill plus a staging copy).
  static Tensor Uninitialized(const Shape& shape);
  /// Takes ownership of an already-filled pooled buffer.
  static Tensor FromStorage(Shape shape, Storage data);
  /// N(0, stddev^2) entries.
  static Tensor Randn(const Shape& shape, Rng& rng, float stddev = 1.0f);
  /// U[lo, hi) entries.
  static Tensor Uniform(const Shape& shape, Rng& rng, float lo, float hi);
  /// Glorot/Xavier-uniform initialisation for a [fan_in, fan_out] matrix.
  static Tensor GlorotUniform(int64_t fan_in, int64_t fan_out, Rng& rng);

  // --- Introspection -------------------------------------------------------

  bool defined() const { return impl_ != nullptr; }
  const Shape& shape() const { return impl_->shape; }
  int64_t dim(size_t axis) const;
  int64_t numel() const { return static_cast<int64_t>(impl_->data.size()); }
  int64_t rank() const { return static_cast<int64_t>(impl_->shape.size()); }
  bool requires_grad() const { return impl_->requires_grad; }

  /// Marks this tensor as a gradient leaf (a trainable parameter). Returns
  /// *this for chaining.
  Tensor& RequiresGrad(bool value = true);

  // --- Data access ---------------------------------------------------------

  const Storage& data() const { return impl_->data; }
  Storage& mutable_data() { return impl_->data; }
  /// Gradient buffer (zeros if backward has not reached this tensor).
  const Storage& grad() const;
  Storage& mutable_grad();

  /// Zero-copy read-only view of rows [begin_row, begin_row + num_rows) of a
  /// rank-2 tensor. Shares the underlying buffer (no copy, no tape); the view
  /// must not outlive writes that resize the base and must not be mutated.
  Tensor RowRange(int64_t begin_row, int64_t num_rows) const;

  float item() const;                       // Requires numel() == 1.
  float at(int64_t i) const;                // Rank-1 access.
  float at(int64_t i, int64_t j) const;     // Rank-2 access.
  void set(int64_t i, float v);             // Rank-1.
  void set(int64_t i, int64_t j, float v);  // Rank-2.

  // --- Autograd ------------------------------------------------------------

  /// Outcome of a Backward() call. Failures are reported before any gradient
  /// is touched, so a rejected call leaves the tape and all grads intact.
  enum class BackwardStatus {
    kOk = 0,
    kUndefinedTensor,    // Called on a default-constructed Tensor.
    kNotScalar,          // Seedless Backward() on a tensor with numel() != 1.
    kSeedSizeMismatch,   // seed_grad.size() != numel().
  };

  /// Runs reverse-mode autodiff from this scalar tensor: fills `grad` of all
  /// reachable tensors with requires_grad. The tape is consumed (freed).
  /// Returns kNotScalar (without running) when numel() != 1.
  BackwardStatus Backward();

  /// Same, with an explicit seed gradient. Returns kSeedSizeMismatch
  /// (without running) when the seed's size differs from numel(); the check
  /// is always on, not a debug assertion.
  BackwardStatus Backward(const std::vector<float>& seed_grad);

  /// Zeroes this tensor's gradient buffer.
  void ZeroGrad();

  /// Returns a copy detached from the autograd graph (shares no tape, fresh
  /// buffer, requires_grad = false).
  Tensor Detach() const;

  /// Deep copy of values (no tape).
  Tensor Clone() const;

  std::string ToString(int max_per_dim = 8) const;

  // Internal: used by ops.
  std::shared_ptr<internal::TensorImpl> impl() const { return impl_; }
  static Tensor FromImpl(std::shared_ptr<internal::TensorImpl> impl);

 private:
  std::shared_ptr<internal::TensorImpl> impl_;
};

/// Stable name for logging/tests ("ok", "undefined_tensor", ...).
const char* BackwardStatusName(Tensor::BackwardStatus status);

/// Signature of an op's backward pass: receives the output node (whose
/// `grad` holds dL/d_out) and must accumulate into the inputs' grads (the
/// closure captures the input impls itself). TapeFn keeps the closure inline
/// in the node or in a pooled chunk — never in the global heap.
using BackwardFn = TapeFn;

/// Creates a result tensor wired into the tape: if grad mode is on and any
/// input requires grad, the result requires grad and `backward` will be
/// invoked during backprop. Used by all op implementations. The node itself
/// and its parent list come from the BufferPool.
Tensor MakeOpResult(Shape shape, Storage data, std::initializer_list<Tensor> inputs,
                    BackwardFn backward);
Tensor MakeOpResult(Shape shape, Storage data, const std::vector<Tensor>& inputs,
                    BackwardFn backward);

}  // namespace sarn::tensor

#endif  // SARN_TENSOR_TENSOR_H_
