#include "tensor/pca.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace sarn::tensor {

PcaResult Pca(const Tensor& x, int num_components, int iterations) {
  SARN_CHECK_EQ(x.rank(), 2);
  int64_t n = x.shape()[0];
  int64_t d = x.shape()[1];
  SARN_CHECK_GT(num_components, 0);
  SARN_CHECK_LE(num_components, d);
  SARN_CHECK_GT(n, 1);

  // Center columns.
  std::vector<double> mean(static_cast<size_t>(d), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < d; ++j) {
      mean[static_cast<size_t>(j)] += x.at(i, j);
    }
  }
  for (double& m : mean) m /= static_cast<double>(n);
  std::vector<double> centered(static_cast<size_t>(n * d));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < d; ++j) {
      centered[static_cast<size_t>(i * d + j)] =
          x.at(i, j) - mean[static_cast<size_t>(j)];
    }
  }
  // Covariance C = X^T X / (n - 1), [d, d].
  std::vector<double> cov(static_cast<size_t>(d * d), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    const double* row = centered.data() + i * d;
    for (int64_t a = 0; a < d; ++a) {
      for (int64_t b = a; b < d; ++b) {
        cov[static_cast<size_t>(a * d + b)] += row[a] * row[b];
      }
    }
  }
  for (int64_t a = 0; a < d; ++a) {
    for (int64_t b = a; b < d; ++b) {
      double value = cov[static_cast<size_t>(a * d + b)] / (n - 1);
      cov[static_cast<size_t>(a * d + b)] = value;
      cov[static_cast<size_t>(b * d + a)] = value;
    }
  }

  PcaResult result;
  result.components = Tensor::Zeros({num_components, d});
  result.projections = Tensor::Zeros({n, num_components});
  Rng rng(12345);
  std::vector<double> vec(static_cast<size_t>(d));
  std::vector<double> next(static_cast<size_t>(d));
  for (int c = 0; c < num_components; ++c) {
    for (double& v : vec) v = rng.Normal();
    double eigenvalue = 0.0;
    for (int iter = 0; iter < iterations; ++iter) {
      // next = C * vec
      for (int64_t a = 0; a < d; ++a) {
        double acc = 0.0;
        const double* row = cov.data() + a * d;
        for (int64_t b = 0; b < d; ++b) acc += row[b] * vec[static_cast<size_t>(b)];
        next[static_cast<size_t>(a)] = acc;
      }
      double norm = 0.0;
      for (double v : next) norm += v * v;
      norm = std::sqrt(norm);
      if (norm < 1e-12) break;  // Rank-deficient; remaining variance ~0.
      eigenvalue = norm;
      for (int64_t a = 0; a < d; ++a) next[static_cast<size_t>(a)] /= norm;
      vec = next;
    }
    result.explained_variance.push_back(eigenvalue);
    for (int64_t j = 0; j < d; ++j) {
      result.components.set(c, j, static_cast<float>(vec[static_cast<size_t>(j)]));
    }
    // Project and deflate: C -= lambda v v^T.
    for (int64_t i = 0; i < n; ++i) {
      double dot = 0.0;
      const double* row = centered.data() + i * d;
      for (int64_t j = 0; j < d; ++j) dot += row[j] * vec[static_cast<size_t>(j)];
      result.projections.set(i, c, static_cast<float>(dot));
    }
    for (int64_t a = 0; a < d; ++a) {
      for (int64_t b = 0; b < d; ++b) {
        cov[static_cast<size_t>(a * d + b)] -=
            eigenvalue * vec[static_cast<size_t>(a)] * vec[static_cast<size_t>(b)];
      }
    }
  }
  return result;
}

}  // namespace sarn::tensor
