#include "tensor/matmul_kernels.h"

#include <algorithm>

#include "tensor/simd/simd.h"

namespace sarn::tensor::kernels {
namespace {

// Full-width forward/dB micro-kernel: accumulates a kMr x kNr tile of
// `out += rows * cols` where `rows` yields the tile's left-operand scalars
// and `cols` the contiguous right-operand row per reduction step.
template <typename LeftAt>
inline void AccumulateTile(int64_t reduce, LeftAt left_at, const float* right,
                           int64_t right_stride, float acc[kMr][kNr]) {
  for (int64_t r = 0; r < reduce; ++r) {
    const float* rrow = right + r * right_stride;
    for (int64_t ii = 0; ii < kMr; ++ii) {
      float lv = left_at(ii, r);
      for (int64_t jj = 0; jj < kNr; ++jj) acc[ii][jj] += lv * rrow[jj];
    }
  }
}

// Seeds the register tile from the output buffer so every element's
// floating-point accumulation chain starts from the existing value, exactly
// as the naive kernels' in-place `out[j] += term` updates do. Accumulating
// into a zeroed tile and adding it afterwards would round differently
// whenever the output is non-zero on entry.
inline void LoadTile(const float* out, int64_t stride, int64_t mr, int64_t nr,
                     float acc[kMr][kNr]) {
  for (int64_t ii = 0; ii < mr; ++ii) {
    const float* row = out + ii * stride;
    for (int64_t jj = 0; jj < nr; ++jj) acc[ii][jj] = row[jj];
  }
}

inline void StoreTile(const float acc[kMr][kNr], int64_t mr, int64_t nr,
                      float* out, int64_t stride) {
  for (int64_t ii = 0; ii < mr; ++ii) {
    float* row = out + ii * stride;
    for (int64_t jj = 0; jj < nr; ++jj) row[jj] = acc[ii][jj];
  }
}

}  // namespace

void MatMulNaive(const float* a, const float* b, float* c, int64_t row_begin,
                 int64_t row_end, int64_t k, int64_t n) {
  for (int64_t i = row_begin; i < row_end; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t kk = 0; kk < k; ++kk) {
      float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b + kk * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void MatMulBlocked(const float* a, const float* b, float* c, int64_t row_begin,
                   int64_t row_end, int64_t k, int64_t n) {
  for (int64_t i0 = row_begin; i0 < row_end; i0 += kMr) {
    int64_t mr = std::min(kMr, row_end - i0);
    for (int64_t j0 = 0; j0 < n; j0 += kNr) {
      int64_t nr = std::min(kNr, n - j0);
      float acc[kMr][kNr] = {};
      LoadTile(c + i0 * n + j0, n, mr, nr, acc);
      if (mr == kMr && nr == kNr) {
        // Fast path with compile-time tile bounds: acc stays in registers
        // across the whole k loop.
        AccumulateTile(
            k, [&](int64_t ii, int64_t kk) { return a[(i0 + ii) * k + kk]; },
            b + j0, n, acc);
      } else {
        for (int64_t kk = 0; kk < k; ++kk) {
          const float* brow = b + kk * n + j0;
          for (int64_t ii = 0; ii < mr; ++ii) {
            float av = a[(i0 + ii) * k + kk];
            for (int64_t jj = 0; jj < nr; ++jj) acc[ii][jj] += av * brow[jj];
          }
        }
      }
      StoreTile(acc, mr, nr, c + i0 * n + j0, n);
    }
  }
}

void MatMulBlockedInit(const float* a, const float* b, float* c, int64_t row_begin,
                       int64_t row_end, int64_t k, int64_t n) {
  for (int64_t i0 = row_begin; i0 < row_end; i0 += kMr) {
    int64_t mr = std::min(kMr, row_end - i0);
    for (int64_t j0 = 0; j0 < n; j0 += kNr) {
      int64_t nr = std::min(kNr, n - j0);
      // Same accumulation chains as MatMulBlocked over a zeroed output: the
      // tile seed is +0.0f either way, so results are bit-identical while C
      // is written exactly once and never read.
      float acc[kMr][kNr] = {};
      if (mr == kMr && nr == kNr) {
        AccumulateTile(
            k, [&](int64_t ii, int64_t kk) { return a[(i0 + ii) * k + kk]; },
            b + j0, n, acc);
      } else {
        for (int64_t kk = 0; kk < k; ++kk) {
          const float* brow = b + kk * n + j0;
          for (int64_t ii = 0; ii < mr; ++ii) {
            float av = a[(i0 + ii) * k + kk];
            for (int64_t jj = 0; jj < nr; ++jj) acc[ii][jj] += av * brow[jj];
          }
        }
      }
      StoreTile(acc, mr, nr, c + i0 * n + j0, n);
    }
  }
}

void MatMulGradANaive(const float* g, const float* b, float* da, int64_t row_begin,
                      int64_t row_end, int64_t k, int64_t n) {
  for (int64_t i = row_begin; i < row_end; ++i) {
    const float* grow = g + i * n;
    float* darow = da + i * k;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float* brow = b + kk * n;
      float acc = 0.0f;
      for (int64_t j = 0; j < n; ++j) acc += grow[j] * brow[j];
      darow[kk] += acc;
    }
  }
}

void MatMulGradABlocked(const float* g, const float* b, float* da, int64_t row_begin,
                        int64_t row_end, int64_t k, int64_t n) {
  // dA[i,kk] = <G row i, B row kk>: 4x2 tiles of simultaneous dot products
  // so each loaded G/B value feeds several accumulators. Scalar accumulation
  // in ascending j keeps the reduction order identical to the naive kernel
  // (the dependent-add chains cannot be vectorised without reassociating).
  // The narrow tile keeps accumulators plus operand temporaries within the
  // 16 SSE registers; wider tiles spill and run slower than naive.
  constexpr int64_t kRows = 4;
  constexpr int64_t kCols = 2;
  for (int64_t i0 = row_begin; i0 < row_end; i0 += kRows) {
    int64_t mr = std::min(kRows, row_end - i0);
    for (int64_t k0 = 0; k0 < k; k0 += kCols) {
      int64_t kr = std::min(kCols, k - k0);
      float acc[kRows][kCols] = {};
      if (mr == kRows && kr == kCols) {
        for (int64_t j = 0; j < n; ++j) {
          float bv[kCols];
          for (int64_t cc = 0; cc < kCols; ++cc) bv[cc] = b[(k0 + cc) * n + j];
          for (int64_t ii = 0; ii < kRows; ++ii) {
            float gv = g[(i0 + ii) * n + j];
            for (int64_t cc = 0; cc < kCols; ++cc) acc[ii][cc] += gv * bv[cc];
          }
        }
      } else {
        for (int64_t j = 0; j < n; ++j) {
          for (int64_t ii = 0; ii < mr; ++ii) {
            float gv = g[(i0 + ii) * n + j];
            for (int64_t cc = 0; cc < kr; ++cc) acc[ii][cc] += gv * b[(k0 + cc) * n + j];
          }
        }
      }
      for (int64_t ii = 0; ii < mr; ++ii) {
        for (int64_t cc = 0; cc < kr; ++cc) da[(i0 + ii) * k + k0 + cc] += acc[ii][cc];
      }
    }
  }
}

void MatMulGradBNaive(const float* a, const float* g, float* db, int64_t row_begin,
                      int64_t row_end, int64_t m, int64_t k, int64_t n) {
  for (int64_t kk = row_begin; kk < row_end; ++kk) {
    float* dbrow = db + kk * n;
    for (int64_t i = 0; i < m; ++i) {
      float av = a[i * k + kk];
      if (av == 0.0f) continue;
      const float* grow = g + i * n;
      for (int64_t j = 0; j < n; ++j) dbrow[j] += av * grow[j];
    }
  }
}

void MatMulGradBBlocked(const float* a, const float* g, float* db, int64_t row_begin,
                        int64_t row_end, int64_t m, int64_t k, int64_t n) {
  // dB[kk,j] = sum_i A[i,kk] * G[i,j]: same register tile as the forward,
  // with the reduction over i. A is read down a column (stride k), but only
  // kMr scalars per step against kNr contiguous G values.
  for (int64_t k0 = row_begin; k0 < row_end; k0 += kMr) {
    int64_t mr = std::min(kMr, row_end - k0);
    for (int64_t j0 = 0; j0 < n; j0 += kNr) {
      int64_t nr = std::min(kNr, n - j0);
      float acc[kMr][kNr] = {};
      LoadTile(db + k0 * n + j0, n, mr, nr, acc);
      if (mr == kMr && nr == kNr) {
        AccumulateTile(
            m, [&](int64_t ii, int64_t i) { return a[i * k + k0 + ii]; },
            g + j0, n, acc);
      } else {
        for (int64_t i = 0; i < m; ++i) {
          const float* grow = g + i * n + j0;
          for (int64_t ii = 0; ii < mr; ++ii) {
            float av = a[i * k + k0 + ii];
            for (int64_t jj = 0; jj < nr; ++jj) acc[ii][jj] += av * grow[jj];
          }
        }
      }
      StoreTile(acc, mr, nr, db + k0 * n + j0, n);
    }
  }
}

// Follows the serve-scan tier dispatch (simd.h): the SARN_SIMD override and
// ForceTier() govern the compiled matmul kernels too, so a scalar-forced run
// exercises the reference kernels on every path.
bool MatMulCompiledAvailable() {
  return simd::ActiveTier() == simd::Tier::kAvx2;
}

}  // namespace sarn::tensor::kernels
