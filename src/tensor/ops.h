// Differentiable operations over Tensor.
//
// Shapes are validated eagerly (SARN_CHECK) so shape bugs fail at the op
// call site, not during backprop. Broadcasting is limited to the cases the
// models need:
//   * identical shapes,
//   * [m, n] (op) [n] or [1, n]  — row-vector broadcast (bias add),
//   * anything (op) scalar tensor (numel == 1), on either side.
//
// Graph-specific ops (EdgeSoftmax, ScatterAddRows) implement the sparse
// attention aggregation GAT needs without materialising n x n matrices.

#ifndef SARN_TENSOR_OPS_H_
#define SARN_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace sarn::tensor {

// --- Elementwise binary (with limited broadcasting) -------------------------
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);

// --- Scalar variants ---------------------------------------------------------
Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);

// --- Elementwise unary -------------------------------------------------------
Tensor Neg(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Log(const Tensor& a);   // Caller guarantees positivity (see ClampMin).
Tensor Sqrt(const Tensor& a);  // Caller guarantees non-negativity.
Tensor Square(const Tensor& a);
Tensor Abs(const Tensor& a);
Tensor ClampMin(const Tensor& a, float lo);
Tensor Relu(const Tensor& a);
Tensor LeakyRelu(const Tensor& a, float negative_slope = 0.2f);
Tensor Elu(const Tensor& a, float alpha = 1.0f);
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);

// --- Linear algebra ----------------------------------------------------------
/// [m, k] x [k, n] -> [m, n]. Register-tiled kernels (tensor/matmul_kernels.h)
/// parallelised over output rows for the forward and both backward products.
Tensor MatMul(const Tensor& a, const Tensor& b);
/// 2-D transpose (copies).
Tensor Transpose(const Tensor& a);
/// Zero-copy view with a new shape (same element count): the result shares
/// the input's storage. Safe because ops never mutate their inputs; gradients
/// stay separate per node.
Tensor Reshape(const Tensor& a, const Shape& shape);

// --- Reductions ---------------------------------------------------------------
Tensor Sum(const Tensor& a);                  // -> scalar [1]
Tensor Mean(const Tensor& a);                 // -> scalar [1]
Tensor SumAxis(const Tensor& a, int axis);    // 2-D only; axis 0 -> [n], 1 -> [m]
Tensor MeanAxis(const Tensor& a, int axis);

// --- Row-structured ops (2-D) --------------------------------------------------
/// Numerically stable softmax along axis 1.
Tensor RowSoftmax(const Tensor& a);
/// Numerically stable log-softmax along axis 1.
Tensor RowLogSoftmax(const Tensor& a);
/// Per-row L2 normalisation: out[i] = a[i] / max(||a[i]||, eps).
Tensor RowL2Normalize(const Tensor& a, float eps = 1e-8f);
/// Per-row dot products of two [m, n] tensors -> [m].
Tensor DotRows(const Tensor& a, const Tensor& b);
/// Scales each row of a [m, n] by scale[m] (or [m,1]): out[i,j] = a[i,j]*s[i].
/// The column-vector broadcast counterpart of Mul-with-row-vector.
Tensor ScaleRows(const Tensor& a, const Tensor& scale);
/// Gathers rows: out[r] = a[indices[r]]; backward scatter-adds. This is also
/// the embedding-lookup primitive.
Tensor Rows(const Tensor& a, const std::vector<int64_t>& indices);
/// out[r] = a[r, cols[r]] -> [m]; the cross-entropy gather.
Tensor TakePerRow(const Tensor& a, const std::vector<int64_t>& cols);
/// Contiguous column slice of a [m, n] tensor: out = a[:, col : col + count].
/// Backward scatter-adds into the sliced columns. This is the per-head view
/// primitive for fused multi-head layers (one wide matmul, sliced per head).
Tensor ColsRange(const Tensor& a, int64_t col, int64_t count);
/// Concatenation of 2-D tensors along axis 0 (rows) or 1 (columns).
Tensor Concat(const std::vector<Tensor>& parts, int axis);

// --- Regularisation ------------------------------------------------------------
/// Inverted dropout: keeps each element with probability (1-p), scales by
/// 1/(1-p). Identity when p == 0. Caller decides train vs eval.
Tensor Dropout(const Tensor& a, float p, Rng& rng);

// --- Sparse graph ops ------------------------------------------------------------
/// Softmax of per-edge scores grouped by destination vertex:
/// out[e] = exp(s[e] - max_dst) / sum_{e': dst[e']=dst[e]} exp(...).
/// `scores` is [E] (or [E,1]); `dst[e]` in [0, num_vertices).
Tensor EdgeSoftmax(const Tensor& scores, const std::vector<int64_t>& dst,
                   int64_t num_vertices);
/// Sums per-edge message rows into destination vertices:
/// out[v] = sum_{e: dst[e]=v} messages[e]; messages [E, d] -> out [num_vertices, d].
Tensor ScatterAddRows(const Tensor& messages, const std::vector<int64_t>& dst,
                      int64_t num_vertices);

// --- Fused inference-only ops (grad mode must be off) ---------------------------
// Bitwise-identical fusions of the op chains GAT inference runs per layer;
// they skip the intermediate [E, ...] tensors entirely. Both SARN_CHECK that
// gradient recording is disabled: there is no backward.

/// LeakyRelu(score_dst[dst[e]] + score_src[src[e]]) -> [E]. Fuses
/// Reshape(LeakyRelu(Add(Rows(score_dst, dst), Rows(score_src, src))), {E}).
Tensor FusedEdgeScores(const Tensor& score_src, const Tensor& score_dst,
                       const std::vector<int64_t>& src, const std::vector<int64_t>& dst,
                       float negative_slope = 0.2f);

/// out[dst[e]] += wx[src[e]] * alpha[e] -> [num_vertices, d]. Fuses
/// ScatterAddRows(ScaleRows(Rows(wx, src), alpha), dst, num_vertices).
Tensor FusedGatherScaleScatter(const Tensor& wx, const std::vector<int64_t>& src,
                               const std::vector<int64_t>& dst, const Tensor& alpha,
                               int64_t num_vertices);

// --- Fused differentiable ops (grad-path fusion) --------------------------------
// Grad-mode counterparts of the inference fusions above: each collapses an
// adjacent elementwise/gather/scatter chain into ONE tape node whose forward
// and backward apply the exact float operation order of the unfused chain —
// values and gradients stay bitwise identical; only the [E, ...]
// intermediates (and their zero-filled grad buffers) disappear. Selected by
// GatLayer::Forward when GradFusionEnabled() is on (the plan executor turns
// it on for recorded/replayed steps).

/// True when nn layers should emit the fused differentiable kernels on the
/// grad path (thread-local; default false).
bool GradFusionEnabled();
void SetGradFusionEnabled(bool enabled);

/// RAII toggle for GradFusionEnabled on the calling thread.
class GradFusionGuard {
 public:
  explicit GradFusionGuard(bool enabled);
  ~GradFusionGuard();
  GradFusionGuard(const GradFusionGuard&) = delete;
  GradFusionGuard& operator=(const GradFusionGuard&) = delete;

 private:
  bool previous_;
};

/// Differentiable FusedEdgeScores: LeakyRelu(score_dst[dst[e]] +
/// score_src[src[e]]) -> [E], one tape node replacing the five-node
/// Reshape(LeakyRelu(Add(Rows(score_dst, dst), Rows(score_src, src)))) chain.
/// The backward recomputes the pre-activation (bitwise, from the saved
/// inputs) and scatter-adds in ascending edge order, exactly like the
/// unfused closures.
Tensor FusedEdgeScoreActivate(const Tensor& score_src, const Tensor& score_dst,
                              const std::vector<int64_t>& src,
                              const std::vector<int64_t>& dst,
                              float negative_slope = 0.2f);

/// Differentiable ScaleRows+ScatterAddRows: out[dst[e]] += rows[e] * scale[e]
/// -> [num_vertices, d], one tape node replacing the messages [E, d]
/// intermediate (data and grad). `rows` is the gathered [E, d] tensor (the
/// Rows(wx, src) node is kept so wx receives its gradient contributions in
/// the unfused order).
Tensor ScaleScatterRows(const Tensor& rows, const Tensor& scale,
                        const std::vector<int64_t>& dst, int64_t num_vertices);

}  // namespace sarn::tensor

#endif  // SARN_TENSOR_OPS_H_
