#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace sarn::tensor {

int64_t NumElements(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    SARN_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) out << ", ";
    out << shape[i];
  }
  out << "]";
  return out.str();
}

namespace {

thread_local bool t_grad_mode = true;

// Tape nodes and their control blocks come from the BufferPool, so building
// and tearing down a step's graph recycles instead of hitting the global
// allocator.
std::shared_ptr<internal::TensorImpl> NewImpl(Shape shape, Storage data) {
  SARN_CHECK_EQ(NumElements(shape), static_cast<int64_t>(data.size()))
      << "shape " << ShapeToString(shape);
  auto impl = std::allocate_shared<internal::TensorImpl>(
      PoolAllocator<internal::TensorImpl>());
  impl->shape = std::move(shape);
  impl->data = std::move(data);
  return impl;
}

}  // namespace

bool GradModeEnabled() { return t_grad_mode; }

NoGradGuard::NoGradGuard() : previous_(t_grad_mode) { t_grad_mode = false; }
NoGradGuard::~NoGradGuard() { t_grad_mode = previous_; }

Tensor Tensor::Zeros(const Shape& shape) {
  return FromImpl(NewImpl(shape, Storage::Zeroed(static_cast<size_t>(NumElements(shape)))));
}

Tensor Tensor::Ones(const Shape& shape) { return Full(shape, 1.0f); }

Tensor Tensor::Full(const Shape& shape, float value) {
  Storage data = Storage::Uninitialized(static_cast<size_t>(NumElements(shape)));
  data.Fill(value);
  return FromImpl(NewImpl(shape, std::move(data)));
}

Tensor Tensor::FromVector(const Shape& shape, std::vector<float> values) {
  return FromImpl(NewImpl(shape, Storage::Of(values)));
}

Tensor Tensor::Uninitialized(const Shape& shape) {
  return FromImpl(
      NewImpl(shape, Storage::Uninitialized(static_cast<size_t>(NumElements(shape)))));
}

Tensor Tensor::FromStorage(Shape shape, Storage data) {
  return FromImpl(NewImpl(std::move(shape), std::move(data)));
}

Tensor Tensor::Randn(const Shape& shape, Rng& rng, float stddev) {
  Storage data = Storage::Uninitialized(static_cast<size_t>(NumElements(shape)));
  for (float& v : data) v = static_cast<float>(rng.Normal(0.0, stddev));
  return FromImpl(NewImpl(shape, std::move(data)));
}

Tensor Tensor::Uniform(const Shape& shape, Rng& rng, float lo, float hi) {
  Storage data = Storage::Uninitialized(static_cast<size_t>(NumElements(shape)));
  for (float& v : data) v = static_cast<float>(rng.Uniform(lo, hi));
  return FromImpl(NewImpl(shape, std::move(data)));
}

Tensor Tensor::GlorotUniform(int64_t fan_in, int64_t fan_out, Rng& rng) {
  float limit = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Uniform({fan_in, fan_out}, rng, -limit, limit);
}

int64_t Tensor::dim(size_t axis) const {
  SARN_CHECK_LT(axis, impl_->shape.size());
  return impl_->shape[axis];
}

Tensor& Tensor::RequiresGrad(bool value) {
  impl_->requires_grad = value;
  return *this;
}

const Storage& Tensor::grad() const {
  impl_->EnsureGrad();
  return impl_->grad;
}

Storage& Tensor::mutable_grad() {
  impl_->EnsureGrad();
  return impl_->grad;
}

Tensor Tensor::RowRange(int64_t begin_row, int64_t num_rows) const {
  SARN_CHECK_EQ(rank(), 2);
  SARN_CHECK(begin_row >= 0 && num_rows >= 0 && begin_row + num_rows <= impl_->shape[0]);
  int64_t cols = impl_->shape[1];
  return FromImpl(NewImpl(
      {num_rows, cols},
      Storage::View(impl_->data, static_cast<size_t>(begin_row * cols),
                    static_cast<size_t>(num_rows * cols))));
}

float Tensor::item() const {
  SARN_CHECK_EQ(numel(), 1);
  return impl_->data[0];
}

float Tensor::at(int64_t i) const {
  SARN_DCHECK(i >= 0 && i < numel());
  return impl_->data[static_cast<size_t>(i)];
}

float Tensor::at(int64_t i, int64_t j) const {
  SARN_DCHECK(rank() == 2);
  SARN_DCHECK(i >= 0 && i < impl_->shape[0] && j >= 0 && j < impl_->shape[1]);
  return impl_->data[static_cast<size_t>(i * impl_->shape[1] + j)];
}

void Tensor::set(int64_t i, float v) {
  SARN_DCHECK(i >= 0 && i < numel());
  impl_->data[static_cast<size_t>(i)] = v;
}

void Tensor::set(int64_t i, int64_t j, float v) {
  SARN_DCHECK(rank() == 2);
  impl_->data[static_cast<size_t>(i * impl_->shape[1] + j)] = v;
}

Tensor::BackwardStatus Tensor::Backward() {
  if (!defined()) return BackwardStatus::kUndefinedTensor;
  if (numel() != 1) return BackwardStatus::kNotScalar;
  return Backward({1.0f});
}

namespace {

// Reused across Backward() calls on the same thread: after warm-up the topo
// sort performs no allocations. Backward is not re-entrant (no op's backward
// calls Backward), so one set of buffers per thread suffices.
struct BackwardScratch {
  struct Frame {
    internal::TensorImpl* node;
    size_t next_parent;
  };
  std::vector<internal::TensorImpl*> order;
  std::vector<Frame> stack;
  uint64_t pass_id = 0;
};

thread_local BackwardScratch t_backward_scratch;

thread_local internal::TapeHooks* t_tape_hooks = nullptr;

}  // namespace

namespace internal {

void SetThreadTapeHooks(TapeHooks* hooks) { t_tape_hooks = hooks; }

TapeHooks* ThreadTapeHooks() { return t_tape_hooks; }

uint64_t NextBackwardPass() { return ++t_backward_scratch.pass_id; }

}  // namespace internal

const char* BackwardStatusName(Tensor::BackwardStatus status) {
  switch (status) {
    case Tensor::BackwardStatus::kOk: return "ok";
    case Tensor::BackwardStatus::kUndefinedTensor: return "undefined_tensor";
    case Tensor::BackwardStatus::kNotScalar: return "not_scalar";
    case Tensor::BackwardStatus::kSeedSizeMismatch: return "seed_size_mismatch";
  }
  return "unknown";
}

Tensor::BackwardStatus Tensor::Backward(const std::vector<float>& seed_grad) {
  if (!defined()) return BackwardStatus::kUndefinedTensor;
  // A wrong-sized seed is a recoverable caller error, not a programming
  // invariant: reject it with a typed status (the check must survive
  // -DNDEBUG builds) before any gradient is touched.
  if (static_cast<int64_t>(seed_grad.size()) != numel()) {
    return BackwardStatus::kSeedSizeMismatch;
  }
  if (internal::TapeHooks* hooks = t_tape_hooks;
      hooks != nullptr && hooks->backward != nullptr) {
    if (hooks->backward(hooks->ctx, impl_, seed_grad.data(), seed_grad.size())) {
      return BackwardStatus::kOk;  // Recorded/replayed by the plan layer.
    }
  }
  // Topological order over the tape (iterative DFS to survive deep graphs,
  // e.g., unrolled GRUs over 180-step trajectories). Visited state is a pass
  // id stamped on each node, so no per-call hash set is built.
  BackwardScratch& scratch = t_backward_scratch;
  uint64_t pass = ++scratch.pass_id;
  auto& order = scratch.order;
  auto& stack = scratch.stack;
  order.clear();
  stack.clear();
  impl_->visit_mark = pass;
  stack.push_back({impl_.get(), 0});
  while (!stack.empty()) {
    BackwardScratch::Frame& frame = stack.back();
    if (frame.next_parent < frame.node->parents.size()) {
      internal::TensorImpl* parent = frame.node->parents[frame.next_parent++].get();
      if (parent->visit_mark != pass) {
        parent->visit_mark = pass;
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(frame.node);
      stack.pop_back();
    }
  }
  impl_->EnsureGrad();
  for (size_t i = 0; i < seed_grad.size(); ++i) impl_->grad[i] += seed_grad[i];
  // `order` is children-after-parents; walk it back-to-front.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    internal::TensorImpl* node = *it;
    if (node->backward) {
      node->EnsureGrad();
      node->backward(*node);
    }
  }
  // Consume the tape: dropping closures and parent edges releases every
  // intermediate node no Tensor still references, which returns its pooled
  // data/grad buffers (and the node itself) to the BufferPool.
  for (internal::TensorImpl* node : order) {
    node->backward.Reset();
    PoolVec<std::shared_ptr<internal::TensorImpl>>().swap(node->parents);
  }
  order.clear();
  return BackwardStatus::kOk;
}

void Tensor::ZeroGrad() {
  if (!impl_->grad.empty()) impl_->grad.Fill(0.0f);
}

Tensor Tensor::Detach() const {
  return FromImpl(
      NewImpl(impl_->shape, Storage::CopyOf(impl_->data.data(), impl_->data.size())));
}

Tensor Tensor::Clone() const { return Detach(); }

std::string Tensor::ToString(int max_per_dim) const {
  if (!defined()) return "Tensor(undefined)";
  std::ostringstream out;
  out << "Tensor" << ShapeToString(impl_->shape) << " ";
  if (rank() <= 1) {
    out << "[";
    int64_t n = std::min<int64_t>(numel(), max_per_dim);
    for (int64_t i = 0; i < n; ++i) {
      if (i > 0) out << ", ";
      out << impl_->data[static_cast<size_t>(i)];
    }
    if (numel() > n) out << ", ...";
    out << "]";
  } else if (rank() == 2) {
    out << "[";
    int64_t rows = std::min<int64_t>(impl_->shape[0], max_per_dim);
    for (int64_t i = 0; i < rows; ++i) {
      out << (i > 0 ? ", [" : "[");
      int64_t cols = std::min<int64_t>(impl_->shape[1], max_per_dim);
      for (int64_t j = 0; j < cols; ++j) {
        if (j > 0) out << ", ";
        out << at(i, j);
      }
      if (impl_->shape[1] > cols) out << ", ...";
      out << "]";
    }
    if (impl_->shape[0] > rows) out << ", ...";
    out << "]";
  } else {
    out << "<rank " << rank() << ">";
  }
  return out.str();
}

Tensor Tensor::FromImpl(std::shared_ptr<internal::TensorImpl> impl) {
  Tensor t;
  t.impl_ = std::move(impl);
  return t;
}

namespace {

Tensor MakeOpResultImpl(Shape shape, Storage data, const Tensor* inputs,
                        size_t input_count, BackwardFn backward) {
  auto impl = NewImpl(std::move(shape), std::move(data));
  if (GradModeEnabled()) {
    bool any_requires = false;
    for (size_t i = 0; i < input_count; ++i) {
      if (inputs[i].defined() && inputs[i].requires_grad()) {
        any_requires = true;
        break;
      }
    }
    if (any_requires) {
      impl->requires_grad = true;
      impl->parents.reserve(input_count);
      for (size_t i = 0; i < input_count; ++i) {
        if (inputs[i].defined()) impl->parents.push_back(inputs[i].impl());
      }
      impl->backward = std::move(backward);
      internal::IncrementTapeNodeCount();
      if (internal::TapeHooks* hooks = t_tape_hooks;
          hooks != nullptr && hooks->on_node != nullptr) {
        hooks->on_node(hooks->ctx, impl);
      }
    }
  }
  return Tensor::FromImpl(impl);
}

}  // namespace

Tensor MakeOpResult(Shape shape, Storage data, std::initializer_list<Tensor> inputs,
                    BackwardFn backward) {
  return MakeOpResultImpl(std::move(shape), std::move(data), inputs.begin(),
                          inputs.size(), std::move(backward));
}

Tensor MakeOpResult(Shape shape, Storage data, const std::vector<Tensor>& inputs,
                    BackwardFn backward) {
  return MakeOpResultImpl(std::move(shape), std::move(data), inputs.data(),
                          inputs.size(), std::move(backward));
}

}  // namespace sarn::tensor
