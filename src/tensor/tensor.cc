#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_set>

namespace sarn::tensor {

int64_t NumElements(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    SARN_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) out << ", ";
    out << shape[i];
  }
  out << "]";
  return out.str();
}

namespace {

thread_local bool t_grad_mode = true;

std::shared_ptr<internal::TensorImpl> NewImpl(Shape shape, std::vector<float> data) {
  SARN_CHECK_EQ(NumElements(shape), static_cast<int64_t>(data.size()))
      << "shape " << ShapeToString(shape);
  auto impl = std::make_shared<internal::TensorImpl>();
  impl->shape = std::move(shape);
  impl->data = std::move(data);
  return impl;
}

}  // namespace

bool GradModeEnabled() { return t_grad_mode; }

NoGradGuard::NoGradGuard() : previous_(t_grad_mode) { t_grad_mode = false; }
NoGradGuard::~NoGradGuard() { t_grad_mode = previous_; }

Tensor Tensor::Zeros(const Shape& shape) {
  return FromImpl(NewImpl(shape, std::vector<float>(NumElements(shape), 0.0f)));
}

Tensor Tensor::Ones(const Shape& shape) { return Full(shape, 1.0f); }

Tensor Tensor::Full(const Shape& shape, float value) {
  return FromImpl(NewImpl(shape, std::vector<float>(NumElements(shape), value)));
}

Tensor Tensor::FromVector(const Shape& shape, std::vector<float> values) {
  return FromImpl(NewImpl(shape, std::move(values)));
}

Tensor Tensor::Randn(const Shape& shape, Rng& rng, float stddev) {
  std::vector<float> data(NumElements(shape));
  for (float& v : data) v = static_cast<float>(rng.Normal(0.0, stddev));
  return FromImpl(NewImpl(shape, std::move(data)));
}

Tensor Tensor::Uniform(const Shape& shape, Rng& rng, float lo, float hi) {
  std::vector<float> data(NumElements(shape));
  for (float& v : data) v = static_cast<float>(rng.Uniform(lo, hi));
  return FromImpl(NewImpl(shape, std::move(data)));
}

Tensor Tensor::GlorotUniform(int64_t fan_in, int64_t fan_out, Rng& rng) {
  float limit = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Uniform({fan_in, fan_out}, rng, -limit, limit);
}

int64_t Tensor::dim(size_t axis) const {
  SARN_CHECK_LT(axis, impl_->shape.size());
  return impl_->shape[axis];
}

Tensor& Tensor::RequiresGrad(bool value) {
  impl_->requires_grad = value;
  return *this;
}

const std::vector<float>& Tensor::grad() const {
  impl_->EnsureGrad();
  return impl_->grad;
}

std::vector<float>& Tensor::mutable_grad() {
  impl_->EnsureGrad();
  return impl_->grad;
}

float Tensor::item() const {
  SARN_CHECK_EQ(numel(), 1);
  return impl_->data[0];
}

float Tensor::at(int64_t i) const {
  SARN_DCHECK(i >= 0 && i < numel());
  return impl_->data[static_cast<size_t>(i)];
}

float Tensor::at(int64_t i, int64_t j) const {
  SARN_DCHECK(rank() == 2);
  SARN_DCHECK(i >= 0 && i < impl_->shape[0] && j >= 0 && j < impl_->shape[1]);
  return impl_->data[static_cast<size_t>(i * impl_->shape[1] + j)];
}

void Tensor::set(int64_t i, float v) {
  SARN_DCHECK(i >= 0 && i < numel());
  impl_->data[static_cast<size_t>(i)] = v;
}

void Tensor::set(int64_t i, int64_t j, float v) {
  SARN_DCHECK(rank() == 2);
  impl_->data[static_cast<size_t>(i * impl_->shape[1] + j)] = v;
}

void Tensor::Backward() {
  SARN_CHECK_EQ(numel(), 1) << "Backward() without seed requires a scalar";
  Backward({1.0f});
}

void Tensor::Backward(const std::vector<float>& seed_grad) {
  SARN_CHECK(defined());
  SARN_CHECK_EQ(static_cast<int64_t>(seed_grad.size()), numel());
  // Topological order over the tape (iterative DFS to survive deep graphs,
  // e.g., unrolled GRUs over 180-step trajectories).
  std::vector<internal::TensorImpl*> order;
  std::unordered_set<internal::TensorImpl*> visited;
  struct Frame {
    internal::TensorImpl* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  if (visited.insert(impl_.get()).second) stack.push_back({impl_.get(), 0});
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent < frame.node->parents.size()) {
      internal::TensorImpl* parent = frame.node->parents[frame.next_parent++].get();
      if (visited.insert(parent).second) stack.push_back({parent, 0});
    } else {
      order.push_back(frame.node);
      stack.pop_back();
    }
  }
  impl_->EnsureGrad();
  for (size_t i = 0; i < seed_grad.size(); ++i) impl_->grad[i] += seed_grad[i];
  // `order` is children-after-parents; walk it back-to-front.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    internal::TensorImpl* node = *it;
    if (node->backward) {
      node->EnsureGrad();
      node->backward();
    }
  }
  // Consume the tape so intermediate buffers can be freed.
  for (internal::TensorImpl* node : order) {
    node->backward = nullptr;
    node->parents.clear();
  }
}

void Tensor::ZeroGrad() {
  if (!impl_->grad.empty()) std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
}

Tensor Tensor::Detach() const {
  auto impl = NewImpl(impl_->shape, impl_->data);
  return FromImpl(impl);
}

Tensor Tensor::Clone() const { return Detach(); }

std::string Tensor::ToString(int max_per_dim) const {
  if (!defined()) return "Tensor(undefined)";
  std::ostringstream out;
  out << "Tensor" << ShapeToString(impl_->shape) << " ";
  if (rank() <= 1) {
    out << "[";
    int64_t n = std::min<int64_t>(numel(), max_per_dim);
    for (int64_t i = 0; i < n; ++i) {
      if (i > 0) out << ", ";
      out << impl_->data[static_cast<size_t>(i)];
    }
    if (numel() > n) out << ", ...";
    out << "]";
  } else if (rank() == 2) {
    out << "[";
    int64_t rows = std::min<int64_t>(impl_->shape[0], max_per_dim);
    for (int64_t i = 0; i < rows; ++i) {
      out << (i > 0 ? ", [" : "[");
      int64_t cols = std::min<int64_t>(impl_->shape[1], max_per_dim);
      for (int64_t j = 0; j < cols; ++j) {
        if (j > 0) out << ", ";
        out << at(i, j);
      }
      if (impl_->shape[1] > cols) out << ", ...";
      out << "]";
    }
    if (impl_->shape[0] > rows) out << ", ...";
    out << "]";
  } else {
    out << "<rank " << rank() << ">";
  }
  return out.str();
}

Tensor Tensor::FromImpl(std::shared_ptr<internal::TensorImpl> impl) {
  Tensor t;
  t.impl_ = std::move(impl);
  return t;
}

Tensor MakeOpResult(Shape shape, std::vector<float> data, std::vector<Tensor> inputs,
                    BackwardFn backward) {
  auto impl = NewImpl(std::move(shape), std::move(data));
  if (GradModeEnabled()) {
    bool any_requires = false;
    for (const Tensor& input : inputs) {
      if (input.defined() && input.requires_grad()) {
        any_requires = true;
        break;
      }
    }
    if (any_requires) {
      impl->requires_grad = true;
      for (const Tensor& input : inputs) {
        if (input.defined()) impl->parents.push_back(input.impl());
      }
      // Captures a raw self pointer: the closure is owned by *impl and only
      // invoked while the node is alive during Backward().
      internal::TensorImpl* self = impl.get();
      impl->backward = [self, fn = std::move(backward)]() { fn(*self); };
    }
  }
  return Tensor::FromImpl(impl);
}

}  // namespace sarn::tensor
