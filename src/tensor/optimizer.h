// Gradient-descent optimizers over Tensor parameters.
//
// The SARN trainer uses Adam with a cosine-annealed learning rate (paper
// §5.1); SGD is provided for baselines and tests.

#ifndef SARN_TENSOR_OPTIMIZER_H_
#define SARN_TENSOR_OPTIMIZER_H_

#include <vector>

#include "common/binary_io.h"
#include "tensor/tensor.h"

namespace sarn::tensor {

/// Interface shared by optimizers. Parameters are registered once; Step()
/// applies one update from the accumulated gradients; ZeroGrad() clears them.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update using each parameter's current grad buffer.
  virtual void Step() = 0;

  /// Serialises the optimizer's internal state (learning rate plus whatever
  /// the subclass accumulates — momentum buffers, Adam moments, step count)
  /// so a restored optimizer produces a bitwise-identical next Step().
  /// Parameter *values* are not included; checkpoint those separately.
  virtual void SaveState(ByteWriter& out) const;

  /// Restores state written by SaveState for the same parameter list.
  /// Returns false — leaving this optimizer untouched — on truncation or a
  /// parameter-count/size mismatch.
  virtual bool LoadState(ByteReader& in);

  /// Zeroes the grad buffers of all registered parameters.
  void ZeroGrad();

  /// Overrides the learning rate (used by LR schedules).
  void set_learning_rate(float lr) { learning_rate_ = lr; }
  float learning_rate() const { return learning_rate_; }

  const std::vector<Tensor>& parameters() const { return parameters_; }

 protected:
  Optimizer(std::vector<Tensor> parameters, float learning_rate);

  std::vector<Tensor> parameters_;
  float learning_rate_;
};

/// Vanilla SGD with optional momentum and L2 weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> parameters, float learning_rate, float momentum = 0.0f,
      float weight_decay = 0.0f);

  void Step() override;
  void SaveState(ByteWriter& out) const override;
  bool LoadState(ByteReader& in) override;

 private:
  float momentum_;
  float weight_decay_;
  std::vector<std::vector<float>> velocity_;
};

/// Adam (Kingma & Ba) with bias correction and optional L2 weight decay.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> parameters, float learning_rate, float beta1 = 0.9f,
       float beta2 = 0.999f, float epsilon = 1e-8f, float weight_decay = 0.0f);

  void Step() override;
  void SaveState(ByteWriter& out) const override;
  bool LoadState(ByteReader& in) override;

  int64_t step_count() const { return step_; }

 private:
  float beta1_;
  float beta2_;
  float epsilon_;
  float weight_decay_;
  int64_t step_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

/// Cosine-annealing learning-rate schedule: lr(t) = lr_min +
/// (lr_max - lr_min) * (1 + cos(pi * t / t_max)) / 2. Call OnEpoch(optimizer,
/// epoch) at the start of each epoch.
class CosineAnnealingSchedule {
 public:
  CosineAnnealingSchedule(float lr_max, int max_epochs, float lr_min = 0.0f);

  /// Learning rate for the given epoch (clamped to [0, max_epochs]).
  float LearningRateAt(int epoch) const;

  void OnEpoch(Optimizer& optimizer, int epoch) {
    last_epoch_ = epoch;
    optimizer.set_learning_rate(LearningRateAt(epoch));
  }

  /// Most recent epoch passed to OnEpoch (-1 before the first call); this is
  /// the schedule's full resumable state.
  int last_epoch() const { return last_epoch_; }

  void SaveState(ByteWriter& out) const;
  /// Returns false on truncation or a mismatched schedule horizon.
  bool LoadState(ByteReader& in);

 private:
  float lr_max_;
  float lr_min_;
  int max_epochs_;
  int last_epoch_ = -1;
};

}  // namespace sarn::tensor

#endif  // SARN_TENSOR_OPTIMIZER_H_
