// The storage plane under the tensor engine (DESIGN.md §11).
//
// Every op result used to heap-allocate a fresh std::vector<float> for its
// data (and later its grad), plus a std::function tape node — thousands of
// global-allocator round trips per training step. This header separates
// *storage* (where the bytes live) from *tensor semantics* (shape, autograd):
//
//   * BufferPool — a process-wide size-class pool of raw blocks. Acquire
//     rounds the request up to a power-of-two class and pops from a
//     thread-local free list (no lock); on a class's first use (a pool
//     *miss*) the block is malloc'd once and recycled forever after.
//     Cross-thread release is safe: blocks simply migrate to the releasing
//     thread's cache, overflowing into per-class mutex-guarded central lists.
//   * Storage — a ref-counted handle to a float buffer drawn from the pool.
//     Move-only (copies must be explicit: CopyFrom or Share), so silent
//     deep-copies and silent aliasing are both impossible. View() makes a
//     zero-copy window into another Storage (shares the block, offsets the
//     pointer); views are read-only by contract.
//   * PoolVec / PoolAllocator — std-container plumbing routed through the
//     pool, used for tape parents, index captures and pooled tape nodes.
//   * TapeFn — a move-only type-erased callable replacing std::function for
//     autograd tape nodes: the closure lives inline in the node (up to
//     kTapeFnInlineBytes) or in a pooled chunk, never in the global heap.
//   * StepScope — RAII bracket around one training step / serve batch;
//     publishes the sarn.alloc.* metrics (pool hits/misses, live and pooled
//     bytes, high-water mark, per-step misses, tape nodes) on exit.
//
// Steady-state guarantee: once every size class a workload touches has been
// seen, Acquire never misses — training steps and serve batches run
// allocation-free against the global allocator for all tensor storage, tape
// nodes and backward closures. Recycling never changes numerics: buffers are
// either fully overwritten or explicitly zero-filled before use.

#ifndef SARN_TENSOR_STORAGE_H_
#define SARN_TENSOR_STORAGE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.h"

namespace sarn::tensor {

namespace internal {
struct TensorImpl;  // tensor.h

/// Pool block header; the payload follows at kBlockHeaderBytes. While checked
/// out, `refs` counts Storage handles (views included); while pooled, `next`
/// links the free list.
struct StorageBlock {
  std::atomic<int32_t> refs{0};
  uint32_t size_class = 0;
  StorageBlock* next = nullptr;
  size_t oversize_bytes = 0;  // Exact payload bytes for oversize blocks.

  void* payload() { return reinterpret_cast<char*>(this) + kPayloadOffset; }
  float* floats() { return static_cast<float*>(payload()); }

  static constexpr size_t kPayloadOffset = 64;  // Keeps payloads cache-aligned.
};

/// Bumps the process tape-node counter (MakeOpResult); published by StepScope
/// as sarn.alloc.tape_nodes.
void IncrementTapeNodeCount();
uint64_t TapeNodeCount();

/// Sentinel size_class for blocks carved out of a plan executor arena
/// (src/plan/). Such blocks are owned by the arena, not the pool:
/// BufferPool::Release on the last reference only signals the arena's
/// release counter (stashed in `next`) and never touches a free list.
/// Their exact payload capacity lives in `oversize_bytes`, like oversize
/// blocks.
inline constexpr uint32_t kArenaSizeClass = 26;  // kNumClasses(25) + 1.

/// Thread-local allocation interposition for the step-plan recorder and
/// executor (src/plan/). All callbacks are optional; a null hooks pointer
/// (the default) keeps the pool hot path unchanged apart from one
/// thread-local load.
struct AllocHooks {
  /// Offered every Acquire first. Returning a block (refs already 1) serves
  /// the acquisition without touching the pool; returning nullptr falls
  /// through to the normal pool path.
  StorageBlock* (*acquire)(void* ctx, size_t bytes) = nullptr;
  /// Observes every pool-path acquisition (after `acquire` declined).
  void (*on_acquire)(void* ctx, StorageBlock* block, size_t bytes) = nullptr;
  /// Observes a pool block's refcount reaching zero, before it is recycled.
  /// Not called for arena blocks (their release is counted on the arena).
  void (*on_release)(void* ctx, StorageBlock* block) = nullptr;
  void* ctx = nullptr;
};

/// Installs `hooks` for the calling thread (nullptr uninstalls). The pointer
/// must stay valid until uninstalled.
void SetThreadAllocHooks(AllocHooks* hooks);
AllocHooks* ThreadAllocHooks();

}  // namespace internal

/// Point-in-time allocator statistics (process-wide).
struct PoolStats {
  uint64_t hits = 0;        // Acquires served from a free list.
  uint64_t misses = 0;      // Acquires that had to call the global allocator.
  int64_t live_bytes = 0;   // Payload bytes currently checked out.
  int64_t pooled_bytes = 0; // Payload bytes parked in free lists.
  int64_t peak_live_bytes = 0;  // High-water mark of live_bytes.
  uint64_t tape_nodes = 0;  // Autograd tape nodes created since process start.
};

class BufferPool {
 public:
  /// The process-wide pool (leaky singleton: never destroyed, so free lists
  /// stay reachable and thread-exit flushes are always safe).
  static BufferPool& Instance();

  /// Returns a block whose payload holds at least `bytes` bytes, with
  /// refs == 1. Thread-safe; lock-free when the calling thread's cache has a
  /// block of the class.
  internal::StorageBlock* Acquire(size_t bytes);

  /// Drops one reference; the last reference returns the block to the
  /// releasing thread's cache (overflow goes central). Thread-safe.
  void Release(internal::StorageBlock* block);

  /// Payload capacity in bytes of the block's size class.
  static size_t ClassBytes(uint32_t size_class);

  /// Smallest class whose capacity covers `bytes`; kOversizeClass when none
  /// does. Exposed so the plan executor can verify a replayed acquisition
  /// lands in the recorded class before serving it from an arena.
  static uint32_t SizeClassFor(size_t bytes);

  static constexpr size_t kMinClassBytes = 64;
  static constexpr uint32_t kNumClasses = 25;  // 64 B .. 1 GiB.
  static constexpr uint32_t kOversizeClass = kNumClasses;

  PoolStats Stats() const;

  /// Moves the calling thread's cached blocks to the central lists (used by
  /// tests to make pooled_bytes observable across threads).
  void FlushThreadCache();

 private:
  BufferPool() = default;
  friend class StepScope;

  static constexpr uint32_t kMaxThreadCachePerClass = 128;

  struct ThreadCache;
  /// The calling thread's cache, or nullptr once thread-local destructors
  /// have torn it down (late releases then go straight to the central lists).
  static ThreadCache* LocalCacheOrNull();

  internal::StorageBlock* AcquireCentral(uint32_t size_class);
  void ReleaseCentral(internal::StorageBlock* block);

  struct CentralList {
    std::mutex mu;
    internal::StorageBlock* head = nullptr;
  };
  CentralList central_[kNumClasses];

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<int64_t> live_bytes_{0};
  std::atomic<int64_t> pooled_bytes_{0};
  std::atomic<int64_t> peak_live_bytes_{0};
};

/// Ref-counted handle to a pooled float buffer. Move-only; explicit CopyFrom
/// for deep copies, Share()/View() for aliasing. An empty Storage (size 0)
/// holds no block.
class Storage {
 public:
  using value_type = float;

  Storage() = default;
  ~Storage() { Reset(); }

  Storage(Storage&& other) noexcept
      : block_(other.block_), ptr_(other.ptr_), size_(other.size_),
        view_(other.view_) {
    other.block_ = nullptr;
    other.ptr_ = nullptr;
    other.size_ = 0;
    other.view_ = false;
  }
  Storage& operator=(Storage&& other) noexcept {
    if (this != &other) {
      Reset();
      block_ = std::exchange(other.block_, nullptr);
      ptr_ = std::exchange(other.ptr_, nullptr);
      size_ = std::exchange(other.size_, 0);
      view_ = std::exchange(other.view_, false);
    }
    return *this;
  }

  Storage(const Storage&) = delete;
  Storage& operator=(const Storage&) = delete;

  /// Deep copy from a std::vector (checkpoint restore, factory seams).
  Storage& operator=(const std::vector<float>& values) {
    Resize(values.size());
    if (!values.empty()) std::memcpy(ptr_, values.data(), values.size() * sizeof(float));
    return *this;
  }

  // --- Factories -------------------------------------------------------------

  /// Pooled buffer with unspecified contents; caller must overwrite fully.
  static Storage Uninitialized(size_t n);
  /// Pooled buffer filled with zeros.
  static Storage Zeroed(size_t n);
  static Storage CopyOf(const float* src, size_t n);
  static Storage Of(const std::vector<float>& values) {
    return CopyOf(values.data(), values.size());
  }

  /// Zero-copy window [offset, offset + n) into `base` (shares the block).
  /// Read-only by contract: writing through a view writes the base.
  static Storage View(const Storage& base, size_t offset, size_t n);

  /// Wraps externally owned bytes (an mmap'd snapshot section) as a
  /// read-only storage: no BufferPool block is acquired and Reset() never
  /// frees into the pool — the caller owns the memory and must keep it
  /// mapped for the handle's lifetime (DESIGN.md §13). Marked as a view so
  /// Resize() can never recycle it in place.
  static Storage External(const float* ptr, size_t n) {
    Storage s;
    s.ptr_ = const_cast<float*>(ptr);
    s.size_ = n;
    s.view_ = true;
    return s;
  }

  /// Zero-copy alias of the whole buffer (marked as a view).
  Storage Share() const { return View(*this, 0, size_); }

  // --- Mutation --------------------------------------------------------------

  /// Deep copy; reacquires only if the element count differs and the held
  /// block cannot hold `n`.
  void CopyFrom(const Storage& other) { CopyFrom(other.data(), other.size()); }
  void CopyFrom(const float* src, size_t n);

  /// Makes this exactly n elements filled with `value` (the vector::assign
  /// analogue EnsureGrad/ZeroGrad rely on).
  void assign(size_t n, float value);

  void Fill(float value);

  /// Resizes in place when the held block's class can hold n (contents are
  /// then unspecified); otherwise swaps in a pooled buffer.
  void Resize(size_t n);

  void Reset();

  // --- Access ----------------------------------------------------------------

  float* data() { return ptr_; }
  const float* data() const { return ptr_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool is_view() const { return view_; }

  float* begin() { return ptr_; }
  float* end() { return ptr_ + size_; }
  const float* begin() const { return ptr_; }
  const float* end() const { return ptr_ + size_; }

  float& operator[](size_t i) { return ptr_[i]; }
  const float& operator[](size_t i) const { return ptr_[i]; }

  std::vector<float> ToVector() const { return std::vector<float>(begin(), end()); }

  friend bool operator==(const Storage& a, const Storage& b) {
    if (a.size_ != b.size_) return false;
    return a.size_ == 0 || std::memcmp(a.ptr_, b.ptr_, a.size_ * sizeof(float)) == 0;
  }
  friend bool operator==(const Storage& a, const std::vector<float>& b) {
    if (a.size_ != b.size()) return false;
    return a.size_ == 0 || std::memcmp(a.ptr_, b.data(), a.size_ * sizeof(float)) == 0;
  }
  friend bool operator==(const std::vector<float>& a, const Storage& b) { return b == a; }

 private:
  internal::StorageBlock* block_ = nullptr;
  float* ptr_ = nullptr;
  size_t size_ = 0;
  bool view_ = false;
};

/// Stateless STL allocator routed through the BufferPool: containers built
/// with it (tape parents, index captures) recycle their buffers instead of
/// hitting the global allocator.
template <typename T>
struct PoolAllocator {
  using value_type = T;

  PoolAllocator() = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) {}  // NOLINT(google-explicit-constructor)

  T* allocate(size_t n) {
    static_assert(alignof(T) <= internal::StorageBlock::kPayloadOffset);
    internal::StorageBlock* block = BufferPool::Instance().Acquire(n * sizeof(T));
    return static_cast<T*>(block->payload());
  }
  void deallocate(T* p, size_t) {
    auto* block = reinterpret_cast<internal::StorageBlock*>(
        reinterpret_cast<char*>(p) - internal::StorageBlock::kPayloadOffset);
    BufferPool::Instance().Release(block);
  }

  friend bool operator==(const PoolAllocator&, const PoolAllocator&) { return true; }
};

/// A std::vector whose buffer comes from the pool.
template <typename T>
using PoolVec = std::vector<T, PoolAllocator<T>>;

/// Pooled copy of an index list for backward-closure captures.
using IndexVec = PoolVec<int64_t>;

inline IndexVec MakeIndexVec(const std::vector<int64_t>& indices) {
  return IndexVec(indices.begin(), indices.end());
}

/// Move-only type-erased `void(internal::TensorImpl&)` for autograd tape
/// nodes. Closures up to kTapeFnInlineBytes live inside the node; larger ones
/// go to a pooled chunk. Never touches the global allocator.
class TapeFn {
 public:
  static constexpr size_t kInlineBytes = 152;

  TapeFn() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, TapeFn>>>
  TapeFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(alignof(Fn) <= alignof(std::max_align_t));
    if constexpr (sizeof(Fn) <= kInlineBytes) {
      new (inline_buf_) Fn(std::forward<F>(f));
      vtable_ = &InlineVTable<Fn>();
    } else {
      internal::StorageBlock* block = BufferPool::Instance().Acquire(sizeof(Fn));
      new (block->payload()) Fn(std::forward<F>(f));
      heap_ = block;
      vtable_ = &HeapVTable<Fn>();
    }
  }

  TapeFn(TapeFn&& other) noexcept { MoveFrom(std::move(other)); }
  TapeFn& operator=(TapeFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  TapeFn(const TapeFn&) = delete;
  TapeFn& operator=(const TapeFn&) = delete;

  ~TapeFn() { Reset(); }

  void operator()(internal::TensorImpl& out) {
    SARN_DCHECK(vtable_ != nullptr);
    vtable_->invoke(Target(), out);
  }

  explicit operator bool() const { return vtable_ != nullptr; }

  void Reset() {
    if (vtable_ == nullptr) return;
    vtable_->destroy(Target());
    if (heap_ != nullptr) {
      BufferPool::Instance().Release(static_cast<internal::StorageBlock*>(heap_));
      heap_ = nullptr;
    }
    vtable_ = nullptr;
  }

 private:
  struct VTable {
    void (*invoke)(void*, internal::TensorImpl&);
    void (*destroy)(void*);
    void (*relocate)(void* from, void* to);  // Move-construct + destroy source.
  };

  void* Target() {
    return heap_ != nullptr ? static_cast<internal::StorageBlock*>(heap_)->payload()
                            : static_cast<void*>(inline_buf_);
  }

  void MoveFrom(TapeFn&& other) noexcept {
    vtable_ = other.vtable_;
    heap_ = other.heap_;
    if (vtable_ != nullptr && heap_ == nullptr) {
      vtable_->relocate(other.inline_buf_, inline_buf_);
    }
    other.vtable_ = nullptr;
    other.heap_ = nullptr;
  }

  template <typename Fn>
  static const VTable& InlineVTable() {
    static constexpr VTable table = {
        [](void* t, internal::TensorImpl& out) { (*static_cast<Fn*>(t))(out); },
        [](void* t) { static_cast<Fn*>(t)->~Fn(); },
        [](void* from, void* to) {
          new (to) Fn(std::move(*static_cast<Fn*>(from)));
          static_cast<Fn*>(from)->~Fn();
        },
    };
    return table;
  }

  template <typename Fn>
  static const VTable& HeapVTable() {
    static constexpr VTable table = {
        [](void* t, internal::TensorImpl& out) { (*static_cast<Fn*>(t))(out); },
        [](void* t) { static_cast<Fn*>(t)->~Fn(); },
        nullptr,  // Heap closures move by stealing the block pointer.
    };
    return table;
  }

  const VTable* vtable_ = nullptr;
  void* heap_ = nullptr;
  alignas(std::max_align_t) unsigned char inline_buf_[kInlineBytes];
};

/// Process-wide pool statistics snapshot (includes the tape-node counter).
PoolStats GetPoolStats();

/// RAII bracket around one training step or serve batch. On destruction it
/// publishes the sarn.alloc.* metrics: steps counter, per-step pool misses
/// gauge, live/pooled/peak byte gauges, and cumulative hit/miss/tape-node
/// counters. Metrics-only: never touches numerics or the RNG.
class StepScope {
 public:
  StepScope();
  ~StepScope();
  StepScope(const StepScope&) = delete;
  StepScope& operator=(const StepScope&) = delete;

  /// Pool misses since this scope opened.
  uint64_t pool_misses() const;

 private:
  uint64_t hits_at_entry_;
  uint64_t misses_at_entry_;
  uint64_t tape_at_entry_;
};

}  // namespace sarn::tensor

#endif  // SARN_TENSOR_STORAGE_H_
