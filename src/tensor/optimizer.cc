#include "tensor/optimizer.h"

#include <cmath>

#include "geo/point.h"

namespace sarn::tensor {

Optimizer::Optimizer(std::vector<Tensor> parameters, float learning_rate)
    : parameters_(std::move(parameters)), learning_rate_(learning_rate) {
  for (const Tensor& p : parameters_) {
    SARN_CHECK(p.defined() && p.requires_grad())
        << "optimizer parameters must be defined and require grad";
  }
}

void Optimizer::ZeroGrad() {
  for (Tensor& p : parameters_) p.ZeroGrad();
}

namespace {

// Shared helper for the per-parameter buffer lists (Sgd velocity, Adam
// moments): written as a count followed by one float vector per parameter.
void WriteBuffers(ByteWriter& out, const std::vector<std::vector<float>>& buffers) {
  out.PutU64(buffers.size());
  for (const std::vector<float>& b : buffers) out.PutFloats(b);
}

// Reads buffers written by WriteBuffers into `staged`, validating the count
// and per-parameter sizes against `parameters`. Strong guarantee: on failure
// `staged` content is unspecified but nothing else is touched.
bool ReadBuffers(ByteReader& in, const std::vector<Tensor>& parameters,
                 std::vector<std::vector<float>>* staged) {
  uint64_t count = 0;
  if (!in.GetU64(&count) || count != parameters.size()) return false;
  staged->resize(parameters.size());
  for (size_t i = 0; i < parameters.size(); ++i) {
    if (!in.GetFloats(&(*staged)[i])) return false;
    if ((*staged)[i].size() != parameters[i].data().size()) return false;
  }
  return true;
}

}  // namespace

void Optimizer::SaveState(ByteWriter& out) const { out.PutF32(learning_rate_); }

bool Optimizer::LoadState(ByteReader& in) {
  float lr = 0.0f;
  if (!in.GetF32(&lr)) return false;
  learning_rate_ = lr;
  return true;
}

Sgd::Sgd(std::vector<Tensor> parameters, float learning_rate, float momentum,
         float weight_decay)
    : Optimizer(std::move(parameters), learning_rate),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.resize(parameters_.size());
  for (size_t i = 0; i < parameters_.size(); ++i) {
    velocity_[i].assign(parameters_[i].data().size(), 0.0f);
  }
}

void Sgd::SaveState(ByteWriter& out) const {
  Optimizer::SaveState(out);
  WriteBuffers(out, velocity_);
}

bool Sgd::LoadState(ByteReader& in) {
  float lr = 0.0f;
  if (!in.GetF32(&lr)) return false;
  std::vector<std::vector<float>> velocity;
  if (!ReadBuffers(in, parameters_, &velocity)) return false;
  learning_rate_ = lr;
  velocity_ = std::move(velocity);
  return true;
}

void Sgd::Step() {
  for (size_t i = 0; i < parameters_.size(); ++i) {
    Storage& data = parameters_[i].mutable_data();
    const Storage& grad = parameters_[i].grad();
    std::vector<float>& vel = velocity_[i];
    for (size_t j = 0; j < data.size(); ++j) {
      float g = grad[j] + weight_decay_ * data[j];
      if (momentum_ != 0.0f) {
        vel[j] = momentum_ * vel[j] + g;
        g = vel[j];
      }
      data[j] -= learning_rate_ * g;
    }
  }
}

Adam::Adam(std::vector<Tensor> parameters, float learning_rate, float beta1, float beta2,
           float epsilon, float weight_decay)
    : Optimizer(std::move(parameters), learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon),
      weight_decay_(weight_decay) {
  m_.resize(parameters_.size());
  v_.resize(parameters_.size());
  for (size_t i = 0; i < parameters_.size(); ++i) {
    m_[i].assign(parameters_[i].data().size(), 0.0f);
    v_[i].assign(parameters_[i].data().size(), 0.0f);
  }
}

void Adam::SaveState(ByteWriter& out) const {
  Optimizer::SaveState(out);
  out.PutI64(step_);
  WriteBuffers(out, m_);
  WriteBuffers(out, v_);
}

bool Adam::LoadState(ByteReader& in) {
  float lr = 0.0f;
  int64_t step = 0;
  if (!in.GetF32(&lr) || !in.GetI64(&step) || step < 0) return false;
  std::vector<std::vector<float>> m, v;
  if (!ReadBuffers(in, parameters_, &m) || !ReadBuffers(in, parameters_, &v)) {
    return false;
  }
  learning_rate_ = lr;
  step_ = step;
  m_ = std::move(m);
  v_ = std::move(v);
  return true;
}

void Adam::Step() {
  ++step_;
  float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(step_));
  float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(step_));
  for (size_t i = 0; i < parameters_.size(); ++i) {
    Storage& data = parameters_[i].mutable_data();
    const Storage& grad = parameters_[i].grad();
    std::vector<float>& m = m_[i];
    std::vector<float>& v = v_[i];
    for (size_t j = 0; j < data.size(); ++j) {
      float g = grad[j] + weight_decay_ * data[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g * g;
      float m_hat = m[j] / bias1;
      float v_hat = v[j] / bias2;
      data[j] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + epsilon_);
    }
  }
}

CosineAnnealingSchedule::CosineAnnealingSchedule(float lr_max, int max_epochs, float lr_min)
    : lr_max_(lr_max), lr_min_(lr_min), max_epochs_(max_epochs) {
  SARN_CHECK_GT(max_epochs, 0);
}

void CosineAnnealingSchedule::SaveState(ByteWriter& out) const {
  out.PutI64(max_epochs_);
  out.PutI64(last_epoch_);
}

bool CosineAnnealingSchedule::LoadState(ByteReader& in) {
  int64_t max_epochs = 0;
  int64_t last_epoch = 0;
  if (!in.GetI64(&max_epochs) || !in.GetI64(&last_epoch)) return false;
  if (max_epochs != max_epochs_) return false;  // Different schedule horizon.
  last_epoch_ = static_cast<int>(last_epoch);
  return true;
}

float CosineAnnealingSchedule::LearningRateAt(int epoch) const {
  if (epoch < 0) epoch = 0;
  if (epoch > max_epochs_) epoch = max_epochs_;
  double phase = static_cast<double>(epoch) / max_epochs_;
  return lr_min_ +
         (lr_max_ - lr_min_) * 0.5f * static_cast<float>(1.0 + std::cos(geo::kPi * phase));
}

}  // namespace sarn::tensor
