// AVX2 tier: 8-wide float and 32-wide int8 scan kernels. This translation
// unit is the only one compiled with -mavx2 (no -mfma: mul+add must stay two
// IEEE operations so the scalar tier reproduces every score bit for bit —
// see simd.h). Row loads are shared across a block of up to kMaxQueryBlock
// queries, which is where the batched kernels beat a per-query loop: each
// streamed row feeds four accumulator sets instead of one.
//
// Reduction schedule (must match simd_scalar.cc exactly):
//   * float: lane l accumulates j ≡ l (mod 8) ascending; horizontal combine
//     ((a0+a4)+(a2+a6)) + ((a1+a5)+(a3+a7)); ascending scalar tail.
//   * int8 dot: |r| × sign-adjusted q through maddubs (codes are clamped to
//     ±127 by the quantizer, so pair sums ≤ 32258 fit i16 exactly), widened
//     to i32 — exact integers, order-free, so a full query block of four
//     accumulators reduces jointly through one hadd tree.
//   * int8 L1: bias both sides by 0x80 and psadbw — exact integers.
//
// The final scale multiply stays the single float expression the scalar tier
// uses — float(acc) * (q_scale * r_scale) for dot, -(float(acc) * scale) for
// L1 — evaluated lane-wise (cvtdq2ps rounds exactly like static_cast<float>,
// and multiplying by a negated operand only flips the sign bit).

#if defined(SARN_HAVE_AVX2_KERNELS)

#include <immintrin.h>

#include <cmath>
#include <cstdint>

#include "tensor/simd/kernel_table.h"

namespace sarn::tensor::simd::internal {
namespace {

// ((a0+a4)+(a2+a6)) + ((a1+a5)+(a3+a7)) — the tree the scalar tier mirrors.
inline float ReduceAdd(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);            // s_l = a_l + a_{l+4}
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));   // s0 = (a0+a4)+(a2+a6), s1 = ...
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}

template <int QN>
void DotScanAvx2Impl(const float* queries, const float* rows, int64_t n,
                     int64_t d, float* out, int64_t out_stride) {
  for (int64_t r = 0; r < n; ++r) {
    const float* row = rows + r * d;
    __m256 acc[QN];
    for (int qi = 0; qi < QN; ++qi) acc[qi] = _mm256_setzero_ps();
    int64_t j = 0;
    for (; j + 8 <= d; j += 8) {
      __m256 rv = _mm256_loadu_ps(row + j);
      for (int qi = 0; qi < QN; ++qi) {
        __m256 qv = _mm256_loadu_ps(queries + static_cast<int64_t>(qi) * d + j);
        acc[qi] = _mm256_add_ps(acc[qi], _mm256_mul_ps(qv, rv));
      }
    }
    for (int qi = 0; qi < QN; ++qi) {
      const float* q = queries + static_cast<int64_t>(qi) * d;
      float sum = ReduceAdd(acc[qi]);
      for (int64_t t = j; t < d; ++t) sum += q[t] * row[t];
      out[static_cast<int64_t>(qi) * out_stride + r] = sum;
    }
  }
}

template <int QN>
void L1ScanAvx2Impl(const float* queries, const float* rows, int64_t n,
                    int64_t d, float* out, int64_t out_stride) {
  const __m256 abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  for (int64_t r = 0; r < n; ++r) {
    const float* row = rows + r * d;
    __m256 acc[QN];
    for (int qi = 0; qi < QN; ++qi) acc[qi] = _mm256_setzero_ps();
    int64_t j = 0;
    for (; j + 8 <= d; j += 8) {
      __m256 rv = _mm256_loadu_ps(row + j);
      for (int qi = 0; qi < QN; ++qi) {
        __m256 qv = _mm256_loadu_ps(queries + static_cast<int64_t>(qi) * d + j);
        __m256 diff = _mm256_and_ps(_mm256_sub_ps(qv, rv), abs_mask);
        acc[qi] = _mm256_add_ps(acc[qi], diff);
      }
    }
    for (int qi = 0; qi < QN; ++qi) {
      const float* q = queries + static_cast<int64_t>(qi) * d;
      float sum = ReduceAdd(acc[qi]);
      for (int64_t t = j; t < d; ++t) sum += std::fabs(q[t] - row[t]);
      out[static_cast<int64_t>(qi) * out_stride + r] = -sum;
    }
  }
}

// Sums the four i32 lanes-of-interest after madd: exact, order-free.
inline int32_t ReduceAddI32(__m256i v) {
  __m128i lo = _mm256_castsi256_si128(v);
  __m128i hi = _mm256_extracti128_si256(v, 1);
  __m128i s = _mm_add_epi32(lo, hi);
  s = _mm_add_epi32(s, _mm_srli_si128(s, 8));
  s = _mm_add_epi32(s, _mm_srli_si128(s, 4));
  return _mm_cvtsi128_si32(s);
}

// Joint reduction of a full query block: result lane q holds the i32 lane sum
// of acc_q. One hadd tree for four accumulators costs about what one
// ReduceAddI32 does, which is what makes the 4-query int8 row loop cheap —
// exact integers, so the reassociation is free.
inline __m128i ReduceAdd4I32(__m256i a0, __m256i a1, __m256i a2, __m256i a3) {
  __m256i s01 = _mm256_hadd_epi32(a0, a1);
  __m256i s23 = _mm256_hadd_epi32(a2, a3);
  __m256i s = _mm256_hadd_epi32(s01, s23);  // [Σa0,Σa1,Σa2,Σa3] per half.
  return _mm_add_epi32(_mm256_castsi256_si128(s),
                       _mm256_extracti128_si256(s, 1));
}

template <int QN>
void DotScanI8Avx2Impl(const int8_t* queries, const float* query_scales,
                       const int8_t* rows, const float* row_scales, int64_t n,
                       int64_t d, float* out, int64_t out_stride) {
  const __m256i ones16 = _mm256_set1_epi16(1);
  for (int64_t r = 0; r < n; ++r) {
    const int8_t* row = rows + r * d;
    __m256i acc[QN];
    for (int qi = 0; qi < QN; ++qi) acc[qi] = _mm256_setzero_si256();
    int64_t j = 0;
    for (; j + 32 <= d; j += 32) {
      __m256i rv =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + j));
      for (int qi = 0; qi < QN; ++qi) {
        __m256i qv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
            queries + static_cast<int64_t>(qi) * d + j));
        // Signed×signed via the unsigned×signed maddubs: |q| × (r·sign(q)).
        __m256i aq = _mm256_sign_epi8(qv, qv);
        __m256i sr = _mm256_sign_epi8(rv, qv);
        __m256i p16 = _mm256_maddubs_epi16(aq, sr);
        acc[qi] = _mm256_add_epi32(acc[qi], _mm256_madd_epi16(p16, ones16));
      }
    }
    for (int qi = 0; qi < QN; ++qi) {
      const int8_t* q = queries + static_cast<int64_t>(qi) * d;
      int32_t sum = ReduceAddI32(acc[qi]);
      for (int64_t t = j; t < d; ++t) {
        sum += static_cast<int32_t>(q[t]) * static_cast<int32_t>(row[t]);
      }
      out[static_cast<int64_t>(qi) * out_stride + r] =
          static_cast<float>(sum) * (query_scales[qi] * row_scales[r]);
    }
  }
}

// The serving hot path: a full block of four queries against each row. |r|
// rides the unsigned maddubs operand and is shared by the block; each query
// contributes q·sign(r) on the signed side, so the per-query cost is one
// load + sign + maddubs + madd + add. The four accumulators reduce jointly
// and finish with one lane-wise scale multiply.
void DotScanI8Avx2Block4(const int8_t* queries, const float* query_scales,
                         const int8_t* rows, const float* row_scales,
                         int64_t n, int64_t d, float* out,
                         int64_t out_stride) {
  const __m256i ones16 = _mm256_set1_epi16(1);
  const __m128 qscale4 = _mm_loadu_ps(query_scales);
  const int8_t* q0 = queries;
  const int8_t* q1 = queries + d;
  const int8_t* q2 = queries + 2 * d;
  const int8_t* q3 = queries + 3 * d;
  for (int64_t r = 0; r < n; ++r) {
    const int8_t* row = rows + r * d;
    __m256i acc0 = _mm256_setzero_si256();
    __m256i acc1 = _mm256_setzero_si256();
    __m256i acc2 = _mm256_setzero_si256();
    __m256i acc3 = _mm256_setzero_si256();
    int64_t j = 0;
    for (; j + 32 <= d; j += 32) {
      __m256i rv =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + j));
      __m256i ar = _mm256_sign_epi8(rv, rv);  // |r|, shared by the block.
      auto mac = [&](const int8_t* q, __m256i acc) {
        __m256i qv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q + j));
        __m256i p16 = _mm256_maddubs_epi16(ar, _mm256_sign_epi8(qv, rv));
        return _mm256_add_epi32(acc, _mm256_madd_epi16(p16, ones16));
      };
      acc0 = mac(q0, acc0);
      acc1 = mac(q1, acc1);
      acc2 = mac(q2, acc2);
      acc3 = mac(q3, acc3);
    }
    __m128i sums = ReduceAdd4I32(acc0, acc1, acc2, acc3);
    if (j == d) {
      __m128 res = _mm_mul_ps(_mm_cvtepi32_ps(sums),
                              _mm_mul_ps(qscale4, _mm_set1_ps(row_scales[r])));
      alignas(16) float r4[4];
      _mm_store_ps(r4, res);
      out[r] = r4[0];
      out[out_stride + r] = r4[1];
      out[2 * out_stride + r] = r4[2];
      out[3 * out_stride + r] = r4[3];
    } else {
      alignas(16) int32_t s4[4];
      _mm_store_si128(reinterpret_cast<__m128i*>(s4), sums);
      for (int qi = 0; qi < 4; ++qi) {
        const int8_t* q = queries + static_cast<int64_t>(qi) * d;
        int32_t sum = s4[qi];
        for (int64_t t = j; t < d; ++t) {
          sum += static_cast<int32_t>(q[t]) * static_cast<int32_t>(row[t]);
        }
        out[static_cast<int64_t>(qi) * out_stride + r] =
            static_cast<float>(sum) * (query_scales[qi] * row_scales[r]);
      }
    }
  }
}

inline int64_t ReduceAddI64(__m256i v) {
  __m128i lo = _mm256_castsi256_si128(v);
  __m128i hi = _mm256_extracti128_si256(v, 1);
  __m128i s = _mm_add_epi64(lo, hi);
  return _mm_cvtsi128_si64(s) +
         _mm_cvtsi128_si64(_mm_srli_si128(s, 8));
}

template <int QN>
void L1ScanI8Avx2Impl(const int8_t* queries, const int8_t* rows, int64_t n,
                      int64_t d, float scale, float* out, int64_t out_stride) {
  const __m256i bias = _mm256_set1_epi8(static_cast<char>(0x80));
  for (int64_t r = 0; r < n; ++r) {
    const int8_t* row = rows + r * d;
    __m256i acc[QN];
    for (int qi = 0; qi < QN; ++qi) acc[qi] = _mm256_setzero_si256();
    int64_t j = 0;
    for (; j + 32 <= d; j += 32) {
      __m256i rv = _mm256_xor_si256(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + j)), bias);
      for (int qi = 0; qi < QN; ++qi) {
        __m256i qv = _mm256_xor_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                queries + static_cast<int64_t>(qi) * d + j)),
            bias);
        acc[qi] = _mm256_add_epi64(acc[qi], _mm256_sad_epu8(qv, rv));
      }
    }
    for (int qi = 0; qi < QN; ++qi) {
      const int8_t* q = queries + static_cast<int64_t>(qi) * d;
      int64_t sum = ReduceAddI64(acc[qi]);
      for (int64_t t = j; t < d; ++t) {
        sum += std::abs(static_cast<int32_t>(q[t]) -
                        static_cast<int32_t>(row[t]));
      }
      out[static_cast<int64_t>(qi) * out_stride + r] =
          -(static_cast<float>(sum) * scale);
    }
  }
}

// L1 counterpart of DotScanI8Avx2Block4. psadbw emits four sums (≤ 2040 per
// chunk) in the low half of each 64-bit lane; accumulating them with 32-bit
// lane adds never carries into the zero high halves while the total stays
// below 2^31 — true for any d below ~33M — so the same joint i32 reduction
// applies, with the zero lanes adding nothing.
void L1ScanI8Avx2Block4(const int8_t* queries, const int8_t* rows, int64_t n,
                        int64_t d, float scale, float* out,
                        int64_t out_stride) {
  const __m256i bias = _mm256_set1_epi8(static_cast<char>(0x80));
  // acc * -scale is bitwise -(acc * scale): only the sign bit differs.
  const __m128 neg_scale = _mm_set1_ps(-scale);
  const int8_t* q0 = queries;
  const int8_t* q1 = queries + d;
  const int8_t* q2 = queries + 2 * d;
  const int8_t* q3 = queries + 3 * d;
  for (int64_t r = 0; r < n; ++r) {
    const int8_t* row = rows + r * d;
    __m256i acc0 = _mm256_setzero_si256();
    __m256i acc1 = _mm256_setzero_si256();
    __m256i acc2 = _mm256_setzero_si256();
    __m256i acc3 = _mm256_setzero_si256();
    int64_t j = 0;
    for (; j + 32 <= d; j += 32) {
      __m256i rv = _mm256_xor_si256(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + j)), bias);
      auto sad = [&](const int8_t* q, __m256i acc) {
        __m256i qv = _mm256_xor_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q + j)), bias);
        return _mm256_add_epi32(acc, _mm256_sad_epu8(qv, rv));
      };
      acc0 = sad(q0, acc0);
      acc1 = sad(q1, acc1);
      acc2 = sad(q2, acc2);
      acc3 = sad(q3, acc3);
    }
    __m128i sums = ReduceAdd4I32(acc0, acc1, acc2, acc3);
    if (j == d) {
      __m128 res = _mm_mul_ps(_mm_cvtepi32_ps(sums), neg_scale);
      alignas(16) float r4[4];
      _mm_store_ps(r4, res);
      out[r] = r4[0];
      out[out_stride + r] = r4[1];
      out[2 * out_stride + r] = r4[2];
      out[3 * out_stride + r] = r4[3];
    } else {
      alignas(16) int32_t s4[4];
      _mm_store_si128(reinterpret_cast<__m128i*>(s4), sums);
      for (int qi = 0; qi < 4; ++qi) {
        const int8_t* q = queries + static_cast<int64_t>(qi) * d;
        int64_t sum = s4[qi];
        for (int64_t t = j; t < d; ++t) {
          sum += std::abs(static_cast<int32_t>(q[t]) -
                          static_cast<int32_t>(row[t]));
        }
        out[static_cast<int64_t>(qi) * out_stride + r] =
            -(static_cast<float>(sum) * scale);
      }
    }
  }
}

// Candidate select for the fused top-k: compare 8 scores at a time and peel
// set bits off the movemask. Typical serve tiles yield a handful of
// candidates per thousand rows once the heaps warm up, so the scan is almost
// entirely the vectorized compare.
int64_t FilterAboveAvx2(const float* scores, int64_t count, float threshold,
                        int32_t* out) {
  const __m256 thr = _mm256_set1_ps(threshold);
  int64_t m = 0;
  int64_t t = 0;
  for (; t + 8 <= count; t += 8) {
    __m256 v = _mm256_loadu_ps(scores + t);
    unsigned mask = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_cmp_ps(v, thr, _CMP_GT_OQ)));
    while (mask != 0) {
      out[m++] = static_cast<int32_t>(t) + __builtin_ctz(mask);
      mask &= mask - 1;
    }
  }
  for (; t < count; ++t) {
    if (scores[t] > threshold) out[m++] = static_cast<int32_t>(t);
  }
  return m;
}

void DotScanAvx2(const float* queries, int qn, const float* rows, int64_t n,
                 int64_t d, float* out, int64_t out_stride) {
  switch (qn) {
    case 1: DotScanAvx2Impl<1>(queries, rows, n, d, out, out_stride); break;
    case 2: DotScanAvx2Impl<2>(queries, rows, n, d, out, out_stride); break;
    case 3: DotScanAvx2Impl<3>(queries, rows, n, d, out, out_stride); break;
    default: DotScanAvx2Impl<4>(queries, rows, n, d, out, out_stride); break;
  }
}

void L1ScanAvx2(const float* queries, int qn, const float* rows, int64_t n,
                int64_t d, float* out, int64_t out_stride) {
  switch (qn) {
    case 1: L1ScanAvx2Impl<1>(queries, rows, n, d, out, out_stride); break;
    case 2: L1ScanAvx2Impl<2>(queries, rows, n, d, out, out_stride); break;
    case 3: L1ScanAvx2Impl<3>(queries, rows, n, d, out, out_stride); break;
    default: L1ScanAvx2Impl<4>(queries, rows, n, d, out, out_stride); break;
  }
}

void DotScanI8Avx2(const int8_t* queries, const float* query_scales, int qn,
                   const int8_t* rows, const float* row_scales, int64_t n,
                   int64_t d, float* out, int64_t out_stride) {
  switch (qn) {
    case 1:
      DotScanI8Avx2Impl<1>(queries, query_scales, rows, row_scales, n, d, out,
                           out_stride);
      break;
    case 2:
      DotScanI8Avx2Impl<2>(queries, query_scales, rows, row_scales, n, d, out,
                           out_stride);
      break;
    case 3:
      DotScanI8Avx2Impl<3>(queries, query_scales, rows, row_scales, n, d, out,
                           out_stride);
      break;
    default:
      DotScanI8Avx2Block4(queries, query_scales, rows, row_scales, n, d, out,
                          out_stride);
      break;
  }
}

void L1ScanI8Avx2(const int8_t* queries, int qn, const int8_t* rows, int64_t n,
                  int64_t d, float scale, float* out, int64_t out_stride) {
  switch (qn) {
    case 1: L1ScanI8Avx2Impl<1>(queries, rows, n, d, scale, out, out_stride); break;
    case 2: L1ScanI8Avx2Impl<2>(queries, rows, n, d, scale, out, out_stride); break;
    case 3: L1ScanI8Avx2Impl<3>(queries, rows, n, d, scale, out, out_stride); break;
    default: L1ScanI8Avx2Block4(queries, rows, n, d, scale, out, out_stride); break;
  }
}

}  // namespace

const KernelTable& Avx2Table() {
  static constexpr KernelTable table = {
      DotScanAvx2,
      L1ScanAvx2,
      DotScanI8Avx2,
      L1ScanI8Avx2,
      FilterAboveAvx2,
  };
  return table;
}

}  // namespace sarn::tensor::simd::internal

#endif  // SARN_HAVE_AVX2_KERNELS
