// Runtime-dispatched SIMD scan kernels for the serving hot loop
// (DESIGN.md §12).
//
// The serve path answers top-k queries with brute-force scans: for every
// (query, row) pair it reduces d elements to one score. This layer provides
// explicitly vectorized implementations of those reductions — batched
// dot-product (cosine), L1 distance, and their int8-quantized counterparts —
// selected once at startup:
//
//   * kAvx2   — 8-wide float / 32-wide int8 kernels (x86-64 with AVX2).
//   * kNeon   — 4-wide float / 16-wide int8 kernels (aarch64).
//   * kScalar — portable fallback, always available.
//
// Determinism contract: every tier computes the SAME reduction for a
// (query, row) pair, bit for bit. The float kernels are specified as eight
// independent lane accumulators over ascending j (lane l sums j ≡ l mod 8)
// combined by the fixed tree ((a0+a4)+(a2+a6)) + ((a1+a5)+(a3+a7)), followed
// by the ascending scalar tail — the scalar tier *emulates the vector
// schedule* rather than the other way around, and no tier uses FMA. The int8
// kernels accumulate in exact int32/int64 arithmetic, so their order is
// irrelevant; the final scale multiply is a single float expression shared by
// all tiers. simd_kernels_test pins scalar-vs-vector bitwise identity.
//
// Selection: cpuid (GCC __builtin_cpu_supports) picks the widest available
// tier; the SARN_SIMD environment variable (off|scalar|avx2|neon) overrides
// it, and a -DSARN_NO_SIMD build compiles the vector tiers out entirely.
// ForceTier() is a test/bench hook for switching tiers mid-process.
//
// Quantization: ggml-style symmetric per-row int8. Each row stores
// round(x / scale) with scale = absmax / 127, so dot(q, r) ≈
// q_scale * r_scale * dot_i8(q, r). Quantize/Dequantize are deliberately
// scalar — they run once per snapshot (or once per external query vector),
// never in the scan loop, and a single implementation keeps every tier's
// quantized index bitwise identical.

#ifndef SARN_TENSOR_SIMD_SIMD_H_
#define SARN_TENSOR_SIMD_SIMD_H_

#include <cstdint>

namespace sarn::tensor::simd {

enum class Tier {
  kScalar = 0,
  kAvx2 = 1,
  kNeon = 2,
};

/// Stable lowercase name ("scalar", "avx2", "neon") for logs and metrics.
const char* TierName(Tier tier);

/// True when the tier was compiled in and the host CPU supports it.
/// kScalar is always available.
bool TierAvailable(Tier tier);

/// The tier the dispatcher would pick on its own: SARN_SIMD override if set
/// and available, else the widest available tier.
Tier DetectTier();

/// The tier the scan kernels below currently run on (ForceTier override, or
/// DetectTier() cached at first use).
Tier ActiveTier();

/// Overrides the active tier (test/bench hook). The tier must be available.
void ForceTier(Tier tier);

/// Kernels process up to this many queries per call, sharing each row load
/// across the query block.
inline constexpr int kMaxQueryBlock = 4;

// --- Float scan kernels ------------------------------------------------------
// queries: row-major [qn, d] (qn in [1, kMaxQueryBlock]); rows: row-major
// [n, d]; out[qi * out_stride + r] receives the score of (query qi, row r).

/// out = dot(q, row) — the cosine score when both sides are L2-normalised.
void DotScan(const float* queries, int qn, const float* rows, int64_t n,
             int64_t d, float* out, int64_t out_stride);

/// out = -sum_j |q_j - row_j| (negated so higher is always more similar).
void L1Scan(const float* queries, int qn, const float* rows, int64_t n,
            int64_t d, float* out, int64_t out_stride);

// --- Int8 quantized scan kernels ---------------------------------------------
// queries: row-major [qn, d] int8; rows: row-major [n, d] int8.

/// out = float(dot_i8(q, row)) * (query_scales[qi] * row_scales[r]).
void DotScanI8(const int8_t* queries, const float* query_scales, int qn,
               const int8_t* rows, const float* row_scales, int64_t n,
               int64_t d, float* out, int64_t out_stride);

/// out = -(float(sum_j |q_j - row_j|) * scale), one scale shared by the whole
/// index (L1 distances do not factor through per-row scales).
void L1ScanI8(const int8_t* queries, int qn, const int8_t* rows, int64_t n,
              int64_t d, float scale, float* out, int64_t out_stride);

// --- Fused top-k support -----------------------------------------------------

/// Writes the positions t (ascending) with scores[t] > threshold into out
/// (capacity >= count) and returns how many qualified. The comparison is the
/// exact float >, so every tier selects the same candidate set, and NaN
/// scores never qualify. This is the select step of the fused scan+top-k
/// accumulation: the caller re-checks each candidate against its live heap
/// minimum, so filtering against a stale (lower) threshold stays exact — the
/// filter only ever returns a superset of the rows the heap would accept.
int64_t FilterAbove(const float* scores, int64_t count, float threshold,
                    int32_t* out);

// --- Symmetric int8 quantization ---------------------------------------------

/// max_j |x_j| (0 for an empty range).
float AbsMax(const float* x, int64_t n);

/// Per-row symmetric quantization: *scale = absmax/127, out_j =
/// clamp(round(x_j / *scale), -127, 127). An all-zero row quantizes to
/// scale 0 and all-zero codes.
void QuantizeRowI8(const float* x, int64_t d, int8_t* out, float* scale);

/// Quantizes with a caller-fixed scale (the shared-scale L1 format); values
/// beyond ±127*scale saturate.
void QuantizeRowI8WithScale(const float* x, int64_t d, float scale,
                            int8_t* out);

/// out_j = float(q_j) * scale — the reconstruction the quantized scores
/// approximate against.
void DequantizeRowI8(const int8_t* q, int64_t d, float scale, float* out);

}  // namespace sarn::tensor::simd

#endif  // SARN_TENSOR_SIMD_SIMD_H_
