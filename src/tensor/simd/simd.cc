// Tier dispatch and the scalar quantization primitives (see simd.h).

#include "tensor/simd/simd.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/check.h"
#include "common/logging.h"
#include "tensor/simd/kernel_table.h"

namespace sarn::tensor::simd {
namespace {

// -1 = no override; otherwise the forced Tier. Relaxed is enough: ForceTier
// is a test/bench hook called between scans, not concurrently with them.
std::atomic<int> g_forced_tier{-1};

Tier DetectTierUncached() {
#if defined(SARN_NO_SIMD)
  return Tier::kScalar;
#else
  if (const char* env = std::getenv("SARN_SIMD")) {
    std::string value(env);
    std::transform(value.begin(), value.end(), value.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (value == "off" || value == "scalar") return Tier::kScalar;
    if (value == "avx2") {
      if (TierAvailable(Tier::kAvx2)) return Tier::kAvx2;
      SARN_LOG(Warning) << "SARN_SIMD=avx2 requested but unavailable; "
                           "falling back to scalar kernels";
      return Tier::kScalar;
    }
    if (value == "neon") {
      if (TierAvailable(Tier::kNeon)) return Tier::kNeon;
      SARN_LOG(Warning) << "SARN_SIMD=neon requested but unavailable; "
                           "falling back to scalar kernels";
      return Tier::kScalar;
    }
    SARN_LOG(Warning) << "unknown SARN_SIMD value '" << env
                      << "' (want off|scalar|avx2|neon); auto-detecting";
  }
  if (TierAvailable(Tier::kAvx2)) return Tier::kAvx2;
  if (TierAvailable(Tier::kNeon)) return Tier::kNeon;
  return Tier::kScalar;
#endif
}

const internal::KernelTable& Table() {
  switch (ActiveTier()) {
#if defined(SARN_HAVE_AVX2_KERNELS)
    case Tier::kAvx2:
      return internal::Avx2Table();
#endif
#if defined(SARN_HAVE_NEON_KERNELS)
    case Tier::kNeon:
      return internal::NeonTable();
#endif
    default:
      return internal::ScalarTable();
  }
}

}  // namespace

const char* TierName(Tier tier) {
  switch (tier) {
    case Tier::kScalar: return "scalar";
    case Tier::kAvx2: return "avx2";
    case Tier::kNeon: return "neon";
  }
  return "unknown";
}

bool TierAvailable(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return true;
    case Tier::kAvx2:
#if defined(SARN_HAVE_AVX2_KERNELS) && defined(__x86_64__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Tier::kNeon:
#if defined(SARN_HAVE_NEON_KERNELS)
      return true;  // NEON is baseline on aarch64.
#else
      return false;
#endif
  }
  return false;
}

Tier DetectTier() {
  static const Tier detected = DetectTierUncached();
  return detected;
}

Tier ActiveTier() {
  int forced = g_forced_tier.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Tier>(forced);
  return DetectTier();
}

void ForceTier(Tier tier) {
  SARN_CHECK(TierAvailable(tier)) << "tier " << TierName(tier)
                                  << " is not available on this host/build";
  g_forced_tier.store(static_cast<int>(tier), std::memory_order_relaxed);
}

void DotScan(const float* queries, int qn, const float* rows, int64_t n,
             int64_t d, float* out, int64_t out_stride) {
  SARN_DCHECK(qn >= 1 && qn <= kMaxQueryBlock);
  Table().dot_scan(queries, qn, rows, n, d, out, out_stride);
}

void L1Scan(const float* queries, int qn, const float* rows, int64_t n,
            int64_t d, float* out, int64_t out_stride) {
  SARN_DCHECK(qn >= 1 && qn <= kMaxQueryBlock);
  Table().l1_scan(queries, qn, rows, n, d, out, out_stride);
}

void DotScanI8(const int8_t* queries, const float* query_scales, int qn,
               const int8_t* rows, const float* row_scales, int64_t n,
               int64_t d, float* out, int64_t out_stride) {
  SARN_DCHECK(qn >= 1 && qn <= kMaxQueryBlock);
  Table().dot_scan_i8(queries, query_scales, qn, rows, row_scales, n, d, out,
                      out_stride);
}

void L1ScanI8(const int8_t* queries, int qn, const int8_t* rows, int64_t n,
              int64_t d, float scale, float* out, int64_t out_stride) {
  SARN_DCHECK(qn >= 1 && qn <= kMaxQueryBlock);
  Table().l1_scan_i8(queries, qn, rows, n, d, scale, out, out_stride);
}

int64_t FilterAbove(const float* scores, int64_t count, float threshold,
                    int32_t* out) {
  return Table().filter_above(scores, count, threshold, out);
}

float AbsMax(const float* x, int64_t n) {
  float amax = 0.0f;
  for (int64_t i = 0; i < n; ++i) amax = std::max(amax, std::fabs(x[i]));
  return amax;
}

void QuantizeRowI8(const float* x, int64_t d, int8_t* out, float* scale) {
  float amax = AbsMax(x, d);
  if (amax == 0.0f) {
    *scale = 0.0f;
    std::memset(out, 0, static_cast<size_t>(d));
    return;
  }
  *scale = amax / 127.0f;
  const float inv = 127.0f / amax;
  for (int64_t j = 0; j < d; ++j) {
    long v = std::lrintf(x[j] * inv);
    out[j] = static_cast<int8_t>(std::clamp<long>(v, -127, 127));
  }
}

void QuantizeRowI8WithScale(const float* x, int64_t d, float scale,
                            int8_t* out) {
  if (scale == 0.0f) {
    std::memset(out, 0, static_cast<size_t>(d));
    return;
  }
  const float inv = 1.0f / scale;
  for (int64_t j = 0; j < d; ++j) {
    long v = std::lrintf(x[j] * inv);
    out[j] = static_cast<int8_t>(std::clamp<long>(v, -127, 127));
  }
}

void DequantizeRowI8(const int8_t* q, int64_t d, float scale, float* out) {
  for (int64_t j = 0; j < d; ++j) out[j] = static_cast<float>(q[j]) * scale;
}

}  // namespace sarn::tensor::simd
