// Scalar tier: portable kernels that *emulate the vector schedule* — eight
// float lane accumulators over ascending j, the fixed combine tree
// ((a0+a4)+(a2+a6)) + ((a1+a5)+(a3+a7)), then the ascending scalar tail —
// so the vector tiers are bitwise identical to this reference on the same
// input (pinned by simd_kernels_test). The int8 reductions are exact integer
// arithmetic; only the final scale multiply is float, written as the same
// single expression every tier uses.

#include <cmath>
#include <cstdint>
#include <cstdlib>

#include "tensor/simd/kernel_table.h"

namespace sarn::tensor::simd::internal {
namespace {

float DotOne(const float* q, const float* r, int64_t d) {
  float acc[8] = {0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f};
  int64_t j = 0;
  for (; j + 8 <= d; j += 8) {
    for (int l = 0; l < 8; ++l) acc[l] += q[j + l] * r[j + l];
  }
  float s0 = (acc[0] + acc[4]) + (acc[2] + acc[6]);
  float s1 = (acc[1] + acc[5]) + (acc[3] + acc[7]);
  float sum = s0 + s1;
  for (; j < d; ++j) sum += q[j] * r[j];
  return sum;
}

float L1One(const float* q, const float* r, int64_t d) {
  float acc[8] = {0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f};
  int64_t j = 0;
  for (; j + 8 <= d; j += 8) {
    for (int l = 0; l < 8; ++l) acc[l] += std::fabs(q[j + l] - r[j + l]);
  }
  float s0 = (acc[0] + acc[4]) + (acc[2] + acc[6]);
  float s1 = (acc[1] + acc[5]) + (acc[3] + acc[7]);
  float sum = s0 + s1;
  for (; j < d; ++j) sum += std::fabs(q[j] - r[j]);
  return sum;
}

int32_t DotOneI8(const int8_t* q, const int8_t* r, int64_t d) {
  int32_t acc = 0;
  for (int64_t j = 0; j < d; ++j) {
    acc += static_cast<int32_t>(q[j]) * static_cast<int32_t>(r[j]);
  }
  return acc;
}

int64_t L1OneI8(const int8_t* q, const int8_t* r, int64_t d) {
  int64_t acc = 0;
  for (int64_t j = 0; j < d; ++j) {
    acc += std::abs(static_cast<int32_t>(q[j]) - static_cast<int32_t>(r[j]));
  }
  return acc;
}

void DotScanScalar(const float* queries, int qn, const float* rows, int64_t n,
                   int64_t d, float* out, int64_t out_stride) {
  for (int qi = 0; qi < qn; ++qi) {
    const float* q = queries + static_cast<int64_t>(qi) * d;
    float* o = out + static_cast<int64_t>(qi) * out_stride;
    for (int64_t r = 0; r < n; ++r) o[r] = DotOne(q, rows + r * d, d);
  }
}

void L1ScanScalar(const float* queries, int qn, const float* rows, int64_t n,
                  int64_t d, float* out, int64_t out_stride) {
  for (int qi = 0; qi < qn; ++qi) {
    const float* q = queries + static_cast<int64_t>(qi) * d;
    float* o = out + static_cast<int64_t>(qi) * out_stride;
    for (int64_t r = 0; r < n; ++r) o[r] = -L1One(q, rows + r * d, d);
  }
}

void DotScanI8Scalar(const int8_t* queries, const float* query_scales, int qn,
                     const int8_t* rows, const float* row_scales, int64_t n,
                     int64_t d, float* out, int64_t out_stride) {
  for (int qi = 0; qi < qn; ++qi) {
    const int8_t* q = queries + static_cast<int64_t>(qi) * d;
    float* o = out + static_cast<int64_t>(qi) * out_stride;
    for (int64_t r = 0; r < n; ++r) {
      int32_t acc = DotOneI8(q, rows + r * d, d);
      o[r] = static_cast<float>(acc) * (query_scales[qi] * row_scales[r]);
    }
  }
}

void L1ScanI8Scalar(const int8_t* queries, int qn, const int8_t* rows,
                    int64_t n, int64_t d, float scale, float* out,
                    int64_t out_stride) {
  for (int qi = 0; qi < qn; ++qi) {
    const int8_t* q = queries + static_cast<int64_t>(qi) * d;
    float* o = out + static_cast<int64_t>(qi) * out_stride;
    for (int64_t r = 0; r < n; ++r) {
      int64_t acc = L1OneI8(q, rows + r * d, d);
      o[r] = -(static_cast<float>(acc) * scale);
    }
  }
}

int64_t FilterAboveScalar(const float* scores, int64_t count, float threshold,
                          int32_t* out) {
  int64_t m = 0;
  for (int64_t t = 0; t < count; ++t) {
    if (scores[t] > threshold) out[m++] = static_cast<int32_t>(t);
  }
  return m;
}

}  // namespace

const KernelTable& ScalarTable() {
  static constexpr KernelTable table = {
      DotScanScalar,
      L1ScanScalar,
      DotScanI8Scalar,
      L1ScanI8Scalar,
      FilterAboveScalar,
  };
  return table;
}

}  // namespace sarn::tensor::simd::internal
