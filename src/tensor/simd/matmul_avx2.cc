// AVX2 "compiled" matmul kernels for verified step-plan execution
// (DESIGN.md §15). Compiled with -mavx2 and -ffp-contract=off, like
// simd_avx2.cc: mul+add must stay two IEEE operations so every element
// reproduces the scalar blocked kernels bit for bit.
//
// Determinism contract: vector lanes are distinct OUTPUT elements, never
// partial sums of one element, so no reduction is reassociated —
//
//   * MatMulInitAvx2    — per element: +0.0f seed, += a*b ascending k, one
//                         store. Matches MatMulBlockedInit exactly.
//   * MatMulGradATAvx2  — per element: local +0.0f-seeded dot ascending j,
//                         then a single += into dA. Matches
//                         MatMulGradABlocked exactly; takes B^T so the
//                         kk-lanes load contiguously (the transpose is pure
//                         data movement done by the caller).
//   * MatMulGradBAvx2   — per element: seed from dB, += a*g ascending i,
//                         store. Matches MatMulGradBBlocked exactly.
//
// Sub-tile remainders run the same scalar loops as the blocked kernels;
// since every element's chain is independent, mixing vector full tiles with
// scalar edge tiles cannot change any result. ops_test pins the bitwise
// scalar-vs-AVX2 identity on tile-multiple, remainder and degenerate shapes.

#if defined(SARN_HAVE_AVX2_KERNELS)

#include <immintrin.h>

#include <algorithm>
#include <cstdint>

#include "tensor/matmul_kernels.h"

namespace sarn::tensor::kernels {
namespace {

// 4 output rows x 16 output columns: 8 ymm accumulators + 2 operand-row
// vectors + 1 broadcast stay inside the 16-register file.
constexpr int64_t kTileRows = 4;
constexpr int64_t kTileCols = 16;

// Scalar edge path shared by the forward and dB kernels: accumulate
// `rows x [mr, nr]` from `left_at(ii, r) * right[r * right_stride + jj]`,
// ascending r, on top of the given seed tile.
template <typename LeftAt>
inline void ScalarTail(int64_t reduce, LeftAt left_at, const float* right,
                       int64_t right_stride, int64_t mr, int64_t nr,
                       float acc[kTileRows][kTileCols]) {
  for (int64_t r = 0; r < reduce; ++r) {
    const float* rrow = right + r * right_stride;
    for (int64_t ii = 0; ii < mr; ++ii) {
      float lv = left_at(ii, r);
      for (int64_t jj = 0; jj < nr; ++jj) acc[ii][jj] += lv * rrow[jj];
    }
  }
}

}  // namespace

bool MatMulAvx2Supported() { return __builtin_cpu_supports("avx2"); }

void MatMulInitAvx2(const float* a, const float* b, float* c, int64_t row_begin,
                    int64_t row_end, int64_t k, int64_t n) {
  for (int64_t i0 = row_begin; i0 < row_end; i0 += kTileRows) {
    int64_t mr = std::min(kTileRows, row_end - i0);
    for (int64_t j0 = 0; j0 < n; j0 += kTileCols) {
      int64_t nr = std::min(kTileCols, n - j0);
      if (mr == kTileRows && nr == kTileCols) {
        __m256 acc[kTileRows][2];
        for (int64_t ii = 0; ii < kTileRows; ++ii) {
          acc[ii][0] = _mm256_setzero_ps();
          acc[ii][1] = _mm256_setzero_ps();
        }
        for (int64_t kk = 0; kk < k; ++kk) {
          const float* brow = b + kk * n + j0;
          __m256 bv0 = _mm256_loadu_ps(brow);
          __m256 bv1 = _mm256_loadu_ps(brow + 8);
          for (int64_t ii = 0; ii < kTileRows; ++ii) {
            __m256 av = _mm256_set1_ps(a[(i0 + ii) * k + kk]);
            acc[ii][0] = _mm256_add_ps(acc[ii][0], _mm256_mul_ps(av, bv0));
            acc[ii][1] = _mm256_add_ps(acc[ii][1], _mm256_mul_ps(av, bv1));
          }
        }
        for (int64_t ii = 0; ii < kTileRows; ++ii) {
          float* crow = c + (i0 + ii) * n + j0;
          _mm256_storeu_ps(crow, acc[ii][0]);
          _mm256_storeu_ps(crow + 8, acc[ii][1]);
        }
      } else {
        float acc[kTileRows][kTileCols] = {};
        ScalarTail(
            k, [&](int64_t ii, int64_t kk) { return a[(i0 + ii) * k + kk]; },
            b + j0, n, mr, nr, acc);
        for (int64_t ii = 0; ii < mr; ++ii) {
          float* crow = c + (i0 + ii) * n + j0;
          for (int64_t jj = 0; jj < nr; ++jj) crow[jj] = acc[ii][jj];
        }
      }
    }
  }
}

void MatMulGradATAvx2(const float* g, const float* bt, float* da,
                      int64_t row_begin, int64_t row_end, int64_t k, int64_t n) {
  // dA[i, kk] += dot_j(G[i, :], B[kk, :]); bt is [n, k] with
  // bt[j * k + kk] == b[kk * n + j], so 8 consecutive kk lanes load as one
  // vector and one B^T stream feeds a block of 4 G rows.
  for (int64_t i0 = row_begin; i0 < row_end; i0 += kTileRows) {
    int64_t mr = std::min(kTileRows, row_end - i0);
    for (int64_t k0 = 0; k0 < k; k0 += kTileCols) {
      int64_t kr = std::min(kTileCols, k - k0);
      if (mr == kTileRows && kr == kTileCols) {
        __m256 acc[kTileRows][2];
        for (int64_t ii = 0; ii < kTileRows; ++ii) {
          acc[ii][0] = _mm256_setzero_ps();
          acc[ii][1] = _mm256_setzero_ps();
        }
        for (int64_t j = 0; j < n; ++j) {
          const float* btrow = bt + j * k + k0;
          __m256 bv0 = _mm256_loadu_ps(btrow);
          __m256 bv1 = _mm256_loadu_ps(btrow + 8);
          for (int64_t ii = 0; ii < kTileRows; ++ii) {
            __m256 gv = _mm256_set1_ps(g[(i0 + ii) * n + j]);
            acc[ii][0] = _mm256_add_ps(acc[ii][0], _mm256_mul_ps(gv, bv0));
            acc[ii][1] = _mm256_add_ps(acc[ii][1], _mm256_mul_ps(gv, bv1));
          }
        }
        for (int64_t ii = 0; ii < kTileRows; ++ii) {
          float* darow = da + (i0 + ii) * k + k0;
          _mm256_storeu_ps(
              darow, _mm256_add_ps(_mm256_loadu_ps(darow), acc[ii][0]));
          _mm256_storeu_ps(
              darow + 8, _mm256_add_ps(_mm256_loadu_ps(darow + 8), acc[ii][1]));
        }
      } else {
        float acc[kTileRows][kTileCols] = {};
        ScalarTail(
            n, [&](int64_t ii, int64_t j) { return g[(i0 + ii) * n + j]; },
            bt + k0, k, mr, kr, acc);
        for (int64_t ii = 0; ii < mr; ++ii) {
          float* darow = da + (i0 + ii) * k + k0;
          for (int64_t jj = 0; jj < kr; ++jj) darow[jj] += acc[ii][jj];
        }
      }
    }
  }
}

void MatMulGradBAvx2(const float* a, const float* g, float* db,
                     int64_t row_begin, int64_t row_end, int64_t m, int64_t k,
                     int64_t n) {
  for (int64_t k0 = row_begin; k0 < row_end; k0 += kTileRows) {
    int64_t mr = std::min(kTileRows, row_end - k0);
    for (int64_t j0 = 0; j0 < n; j0 += kTileCols) {
      int64_t nr = std::min(kTileCols, n - j0);
      if (mr == kTileRows && nr == kTileCols) {
        __m256 acc[kTileRows][2];
        for (int64_t ii = 0; ii < kTileRows; ++ii) {
          const float* dbrow = db + (k0 + ii) * n + j0;
          acc[ii][0] = _mm256_loadu_ps(dbrow);
          acc[ii][1] = _mm256_loadu_ps(dbrow + 8);
        }
        for (int64_t i = 0; i < m; ++i) {
          const float* grow = g + i * n + j0;
          __m256 gv0 = _mm256_loadu_ps(grow);
          __m256 gv1 = _mm256_loadu_ps(grow + 8);
          for (int64_t ii = 0; ii < kTileRows; ++ii) {
            __m256 av = _mm256_set1_ps(a[i * k + k0 + ii]);
            acc[ii][0] = _mm256_add_ps(acc[ii][0], _mm256_mul_ps(av, gv0));
            acc[ii][1] = _mm256_add_ps(acc[ii][1], _mm256_mul_ps(av, gv1));
          }
        }
        for (int64_t ii = 0; ii < kTileRows; ++ii) {
          float* dbrow = db + (k0 + ii) * n + j0;
          _mm256_storeu_ps(dbrow, acc[ii][0]);
          _mm256_storeu_ps(dbrow + 8, acc[ii][1]);
        }
      } else {
        float acc[kTileRows][kTileCols] = {};
        for (int64_t ii = 0; ii < mr; ++ii) {
          const float* dbrow = db + (k0 + ii) * n + j0;
          for (int64_t jj = 0; jj < nr; ++jj) acc[ii][jj] = dbrow[jj];
        }
        ScalarTail(
            m, [&](int64_t ii, int64_t i) { return a[i * k + k0 + ii]; },
            g + j0, n, mr, nr, acc);
        for (int64_t ii = 0; ii < mr; ++ii) {
          float* dbrow = db + (k0 + ii) * n + j0;
          for (int64_t jj = 0; jj < nr; ++jj) dbrow[jj] = acc[ii][jj];
        }
      }
    }
  }
}

}  // namespace sarn::tensor::kernels

#endif  // SARN_HAVE_AVX2_KERNELS
