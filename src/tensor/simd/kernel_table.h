// Internal: the per-tier kernel function table. Each tier's translation unit
// (simd_scalar.cc, simd_avx2.cc, simd_neon.cc) fills one table; simd.cc picks
// the active one at dispatch time. Not part of the public API.

#ifndef SARN_TENSOR_SIMD_KERNEL_TABLE_H_
#define SARN_TENSOR_SIMD_KERNEL_TABLE_H_

#include <cstdint>

namespace sarn::tensor::simd::internal {

struct KernelTable {
  void (*dot_scan)(const float* queries, int qn, const float* rows, int64_t n,
                   int64_t d, float* out, int64_t out_stride);
  void (*l1_scan)(const float* queries, int qn, const float* rows, int64_t n,
                  int64_t d, float* out, int64_t out_stride);
  void (*dot_scan_i8)(const int8_t* queries, const float* query_scales, int qn,
                      const int8_t* rows, const float* row_scales, int64_t n,
                      int64_t d, float* out, int64_t out_stride);
  void (*l1_scan_i8)(const int8_t* queries, int qn, const int8_t* rows,
                     int64_t n, int64_t d, float scale, float* out,
                     int64_t out_stride);
  int64_t (*filter_above)(const float* scores, int64_t count, float threshold,
                          int32_t* out);
};

const KernelTable& ScalarTable();
#if defined(SARN_HAVE_AVX2_KERNELS)
const KernelTable& Avx2Table();
#endif
#if defined(SARN_HAVE_NEON_KERNELS)
const KernelTable& NeonTable();
#endif

}  // namespace sarn::tensor::simd::internal

#endif  // SARN_TENSOR_SIMD_KERNEL_TABLE_H_
