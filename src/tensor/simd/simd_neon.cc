// NEON tier (aarch64): 4-wide float kernels emulating the 8-lane schedule
// with an accumulator pair, and 16-wide int8 kernels. The float combine uses
// the same fixed tree as the other tiers — acc_lo holds lanes 0..3, acc_hi
// lanes 4..7, so vaddq(acc_lo, acc_hi) lane l is a_l + a_{l+4} exactly like
// the AVX2 128-bit fold — and the TU is compiled with contraction disabled
// (no fused multiply-add), so scores match the scalar tier bit for bit.

#if defined(SARN_HAVE_NEON_KERNELS)

#include <arm_neon.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>

#include "tensor/simd/kernel_table.h"

namespace sarn::tensor::simd::internal {
namespace {

// ((a0+a4)+(a2+a6)) + ((a1+a5)+(a3+a7)) from the lane-0..3 / lane-4..7 pair.
inline float ReduceAdd(float32x4_t acc_lo, float32x4_t acc_hi) {
  float32x4_t s = vaddq_f32(acc_lo, acc_hi);  // s_l = a_l + a_{l+4}
  float32x2_t p = vadd_f32(vget_low_f32(s), vget_high_f32(s));
  return vget_lane_f32(p, 0) + vget_lane_f32(p, 1);
}

template <int QN>
void DotScanNeonImpl(const float* queries, const float* rows, int64_t n,
                     int64_t d, float* out, int64_t out_stride) {
  for (int64_t r = 0; r < n; ++r) {
    const float* row = rows + r * d;
    float32x4_t acc_lo[QN], acc_hi[QN];
    for (int qi = 0; qi < QN; ++qi) {
      acc_lo[qi] = vdupq_n_f32(0.0f);
      acc_hi[qi] = vdupq_n_f32(0.0f);
    }
    int64_t j = 0;
    for (; j + 8 <= d; j += 8) {
      float32x4_t r_lo = vld1q_f32(row + j);
      float32x4_t r_hi = vld1q_f32(row + j + 4);
      for (int qi = 0; qi < QN; ++qi) {
        const float* q = queries + static_cast<int64_t>(qi) * d + j;
        acc_lo[qi] = vaddq_f32(acc_lo[qi], vmulq_f32(vld1q_f32(q), r_lo));
        acc_hi[qi] = vaddq_f32(acc_hi[qi], vmulq_f32(vld1q_f32(q + 4), r_hi));
      }
    }
    for (int qi = 0; qi < QN; ++qi) {
      const float* q = queries + static_cast<int64_t>(qi) * d;
      float sum = ReduceAdd(acc_lo[qi], acc_hi[qi]);
      for (int64_t t = j; t < d; ++t) sum += q[t] * row[t];
      out[static_cast<int64_t>(qi) * out_stride + r] = sum;
    }
  }
}

template <int QN>
void L1ScanNeonImpl(const float* queries, const float* rows, int64_t n,
                    int64_t d, float* out, int64_t out_stride) {
  for (int64_t r = 0; r < n; ++r) {
    const float* row = rows + r * d;
    float32x4_t acc_lo[QN], acc_hi[QN];
    for (int qi = 0; qi < QN; ++qi) {
      acc_lo[qi] = vdupq_n_f32(0.0f);
      acc_hi[qi] = vdupq_n_f32(0.0f);
    }
    int64_t j = 0;
    for (; j + 8 <= d; j += 8) {
      float32x4_t r_lo = vld1q_f32(row + j);
      float32x4_t r_hi = vld1q_f32(row + j + 4);
      for (int qi = 0; qi < QN; ++qi) {
        const float* q = queries + static_cast<int64_t>(qi) * d + j;
        acc_lo[qi] = vaddq_f32(acc_lo[qi], vabdq_f32(vld1q_f32(q), r_lo));
        acc_hi[qi] = vaddq_f32(acc_hi[qi], vabdq_f32(vld1q_f32(q + 4), r_hi));
      }
    }
    for (int qi = 0; qi < QN; ++qi) {
      const float* q = queries + static_cast<int64_t>(qi) * d;
      float sum = ReduceAdd(acc_lo[qi], acc_hi[qi]);
      for (int64_t t = j; t < d; ++t) sum += std::fabs(q[t] - row[t]);
      out[static_cast<int64_t>(qi) * out_stride + r] = -sum;
    }
  }
}

template <int QN>
void DotScanI8NeonImpl(const int8_t* queries, const float* query_scales,
                       const int8_t* rows, const float* row_scales, int64_t n,
                       int64_t d, float* out, int64_t out_stride) {
  for (int64_t r = 0; r < n; ++r) {
    const int8_t* row = rows + r * d;
    int32x4_t acc[QN];
    for (int qi = 0; qi < QN; ++qi) acc[qi] = vdupq_n_s32(0);
    int64_t j = 0;
    for (; j + 16 <= d; j += 16) {
      int8x16_t rv = vld1q_s8(row + j);
      for (int qi = 0; qi < QN; ++qi) {
        int8x16_t qv = vld1q_s8(queries + static_cast<int64_t>(qi) * d + j);
        int16x8_t p_lo = vmull_s8(vget_low_s8(qv), vget_low_s8(rv));
        int16x8_t p_hi = vmull_s8(vget_high_s8(qv), vget_high_s8(rv));
        acc[qi] = vpadalq_s16(acc[qi], p_lo);
        acc[qi] = vpadalq_s16(acc[qi], p_hi);
      }
    }
    for (int qi = 0; qi < QN; ++qi) {
      const int8_t* q = queries + static_cast<int64_t>(qi) * d;
      int32_t sum = vaddvq_s32(acc[qi]);
      for (int64_t t = j; t < d; ++t) {
        sum += static_cast<int32_t>(q[t]) * static_cast<int32_t>(row[t]);
      }
      out[static_cast<int64_t>(qi) * out_stride + r] =
          static_cast<float>(sum) * (query_scales[qi] * row_scales[r]);
    }
  }
}

template <int QN>
void L1ScanI8NeonImpl(const int8_t* queries, const int8_t* rows, int64_t n,
                      int64_t d, float scale, float* out, int64_t out_stride) {
  for (int64_t r = 0; r < n; ++r) {
    const int8_t* row = rows + r * d;
    int32x4_t acc[QN];
    for (int qi = 0; qi < QN; ++qi) acc[qi] = vdupq_n_s32(0);
    int64_t j = 0;
    for (; j + 16 <= d; j += 16) {
      int8x16_t rv = vld1q_s8(row + j);
      for (int qi = 0; qi < QN; ++qi) {
        int8x16_t qv = vld1q_s8(queries + static_cast<int64_t>(qi) * d + j);
        int16x8_t ad_lo = vabdl_s8(vget_low_s8(qv), vget_low_s8(rv));
        int16x8_t ad_hi = vabdl_s8(vget_high_s8(qv), vget_high_s8(rv));
        acc[qi] = vpadalq_s16(acc[qi], ad_lo);
        acc[qi] = vpadalq_s16(acc[qi], ad_hi);
      }
    }
    for (int qi = 0; qi < QN; ++qi) {
      const int8_t* q = queries + static_cast<int64_t>(qi) * d;
      int64_t sum = vaddvq_s32(acc[qi]);
      for (int64_t t = j; t < d; ++t) {
        sum += std::abs(static_cast<int32_t>(q[t]) -
                        static_cast<int32_t>(row[t]));
      }
      out[static_cast<int64_t>(qi) * out_stride + r] =
          -(static_cast<float>(sum) * scale);
    }
  }
}

void DotScanNeon(const float* queries, int qn, const float* rows, int64_t n,
                 int64_t d, float* out, int64_t out_stride) {
  switch (qn) {
    case 1: DotScanNeonImpl<1>(queries, rows, n, d, out, out_stride); break;
    case 2: DotScanNeonImpl<2>(queries, rows, n, d, out, out_stride); break;
    case 3: DotScanNeonImpl<3>(queries, rows, n, d, out, out_stride); break;
    default: DotScanNeonImpl<4>(queries, rows, n, d, out, out_stride); break;
  }
}

void L1ScanNeon(const float* queries, int qn, const float* rows, int64_t n,
                int64_t d, float* out, int64_t out_stride) {
  switch (qn) {
    case 1: L1ScanNeonImpl<1>(queries, rows, n, d, out, out_stride); break;
    case 2: L1ScanNeonImpl<2>(queries, rows, n, d, out, out_stride); break;
    case 3: L1ScanNeonImpl<3>(queries, rows, n, d, out, out_stride); break;
    default: L1ScanNeonImpl<4>(queries, rows, n, d, out, out_stride); break;
  }
}

void DotScanI8Neon(const int8_t* queries, const float* query_scales, int qn,
                   const int8_t* rows, const float* row_scales, int64_t n,
                   int64_t d, float* out, int64_t out_stride) {
  switch (qn) {
    case 1:
      DotScanI8NeonImpl<1>(queries, query_scales, rows, row_scales, n, d, out,
                           out_stride);
      break;
    case 2:
      DotScanI8NeonImpl<2>(queries, query_scales, rows, row_scales, n, d, out,
                           out_stride);
      break;
    case 3:
      DotScanI8NeonImpl<3>(queries, query_scales, rows, row_scales, n, d, out,
                           out_stride);
      break;
    default:
      DotScanI8NeonImpl<4>(queries, query_scales, rows, row_scales, n, d, out,
                           out_stride);
      break;
  }
}

void L1ScanI8Neon(const int8_t* queries, int qn, const int8_t* rows, int64_t n,
                  int64_t d, float scale, float* out, int64_t out_stride) {
  switch (qn) {
    case 1: L1ScanI8NeonImpl<1>(queries, rows, n, d, scale, out, out_stride); break;
    case 2: L1ScanI8NeonImpl<2>(queries, rows, n, d, scale, out, out_stride); break;
    case 3: L1ScanI8NeonImpl<3>(queries, rows, n, d, scale, out, out_stride); break;
    default: L1ScanI8NeonImpl<4>(queries, rows, n, d, scale, out, out_stride); break;
  }
}

// NEON has no movemask, and at serve tile sizes the narrowing-shift mask
// dance buys nothing over a plain compare loop (candidates are sparse once
// the heaps warm up), so this tier keeps the scalar select.
int64_t FilterAboveNeon(const float* scores, int64_t count, float threshold,
                        int32_t* out) {
  int64_t m = 0;
  for (int64_t t = 0; t < count; ++t) {
    if (scores[t] > threshold) out[m++] = static_cast<int32_t>(t);
  }
  return m;
}

}  // namespace

const KernelTable& NeonTable() {
  static constexpr KernelTable table = {
      DotScanNeon,
      L1ScanNeon,
      DotScanI8Neon,
      L1ScanI8Neon,
      FilterAboveNeon,
  };
  return table;
}

}  // namespace sarn::tensor::simd::internal

#endif  // SARN_HAVE_NEON_KERNELS
