#include "tensor/storage.h"

#include <algorithm>

#include "obs/metrics.h"

namespace sarn::tensor {
namespace {

// Tape nodes created since process start (MakeOpResult bumps this; StepScope
// publishes it). Pool-internal like the other counters so the tensor hot path
// never touches the obs registry.
std::atomic<uint64_t> g_tape_nodes{0};

constexpr uint32_t kOversize = 25;

void RaiseToAtLeast(std::atomic<int64_t>& peak, int64_t value) {
  int64_t seen = peak.load(std::memory_order_relaxed);
  while (value > seen &&
         !peak.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

namespace internal {

void IncrementTapeNodeCount() {
  g_tape_nodes.fetch_add(1, std::memory_order_relaxed);
}

uint64_t TapeNodeCount() { return g_tape_nodes.load(std::memory_order_relaxed); }

namespace {
thread_local AllocHooks* t_alloc_hooks = nullptr;
}  // namespace

void SetThreadAllocHooks(AllocHooks* hooks) { t_alloc_hooks = hooks; }

AllocHooks* ThreadAllocHooks() { return t_alloc_hooks; }

}  // namespace internal

// --- BufferPool --------------------------------------------------------------

// Per-thread free lists. The destructor drains everything to the central
// lists; t_cache_destroyed (trivially destructible, so valid for the whole
// thread lifetime) makes late releases from other thread-local destructors
// fall back to the central path instead of touching a dead cache.
struct BufferPool::ThreadCache {
  internal::StorageBlock* head[kNumClasses] = {};
  uint32_t count[kNumClasses] = {};

  ~ThreadCache();
};

namespace {
thread_local bool t_cache_destroyed = false;
}  // namespace

BufferPool::ThreadCache::~ThreadCache() {
  t_cache_destroyed = true;
  BufferPool& pool = BufferPool::Instance();
  for (uint32_t cls = 0; cls < kNumClasses; ++cls) {
    internal::StorageBlock* block = head[cls];
    while (block != nullptr) {
      internal::StorageBlock* next = block->next;
      pool.ReleaseCentral(block);
      block = next;
    }
    head[cls] = nullptr;
    count[cls] = 0;
  }
}

BufferPool::ThreadCache* BufferPool::LocalCacheOrNull() {
  if (t_cache_destroyed) return nullptr;
  static thread_local ThreadCache cache;
  return &cache;
}

BufferPool& BufferPool::Instance() {
  static BufferPool* pool = new BufferPool();  // Leaky: free lists outlive threads.
  return *pool;
}

size_t BufferPool::ClassBytes(uint32_t size_class) {
  SARN_DCHECK(size_class < kNumClasses);
  return kMinClassBytes << size_class;
}

// Class k holds 64 << k bytes.
uint32_t BufferPool::SizeClassFor(size_t bytes) {
  size_t cap = kMinClassBytes;
  for (uint32_t cls = 0; cls < kNumClasses; ++cls, cap <<= 1) {
    if (bytes <= cap) return cls;
  }
  return kOversizeClass;
}

internal::StorageBlock* BufferPool::Acquire(size_t bytes) {
  internal::AllocHooks* hooks = internal::ThreadAllocHooks();
  if (hooks != nullptr && hooks->acquire != nullptr) {
    if (internal::StorageBlock* served = hooks->acquire(hooks->ctx, bytes)) {
      return served;  // Arena-served: bypasses the pool and its stats.
    }
  }
  uint32_t cls = SizeClassFor(bytes);
  if (cls == kOversizeClass) {
    void* mem = ::operator new(internal::StorageBlock::kPayloadOffset + bytes);
    auto* block = new (mem) internal::StorageBlock();
    block->size_class = kOversizeClass;
    block->oversize_bytes = bytes;
    block->refs.store(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    int64_t live = live_bytes_.fetch_add(static_cast<int64_t>(bytes),
                                         std::memory_order_relaxed) +
                   static_cast<int64_t>(bytes);
    RaiseToAtLeast(peak_live_bytes_, live);
    if (hooks != nullptr && hooks->on_acquire != nullptr) {
      hooks->on_acquire(hooks->ctx, block, bytes);
    }
    return block;
  }

  internal::StorageBlock* block = nullptr;
  if (ThreadCache* cache = LocalCacheOrNull(); cache != nullptr) {
    block = cache->head[cls];
    if (block != nullptr) {
      cache->head[cls] = block->next;
      --cache->count[cls];
    }
  }
  if (block == nullptr) block = AcquireCentral(cls);

  int64_t class_bytes = static_cast<int64_t>(ClassBytes(cls));
  if (block != nullptr) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    pooled_bytes_.fetch_sub(class_bytes, std::memory_order_relaxed);
  } else {
    void* mem = ::operator new(internal::StorageBlock::kPayloadOffset + ClassBytes(cls));
    block = new (mem) internal::StorageBlock();
    block->size_class = cls;
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
  block->next = nullptr;
  block->refs.store(1, std::memory_order_relaxed);
  int64_t live =
      live_bytes_.fetch_add(class_bytes, std::memory_order_relaxed) + class_bytes;
  RaiseToAtLeast(peak_live_bytes_, live);
  if (hooks != nullptr && hooks->on_acquire != nullptr) {
    hooks->on_acquire(hooks->ctx, block, bytes);
  }
  return block;
}

void BufferPool::Release(internal::StorageBlock* block) {
  SARN_DCHECK(block != nullptr);
  if (block->refs.fetch_sub(1, std::memory_order_release) != 1) return;
  // Last reference: synchronise with all prior releases before recycling.
  std::atomic_thread_fence(std::memory_order_acquire);

  if (block->size_class == internal::kArenaSizeClass) {
    // Arena-owned: the block's memory belongs to a plan executor arena, which
    // parked its release counter in `next` at serve time. Signal it and leave
    // the bytes alone — the executor reuses them on the next replayed step.
    reinterpret_cast<std::atomic<uint64_t>*>(block->next)
        ->fetch_add(1, std::memory_order_release);
    return;
  }
  if (internal::AllocHooks* hooks = internal::ThreadAllocHooks();
      hooks != nullptr && hooks->on_release != nullptr) {
    hooks->on_release(hooks->ctx, block);
  }

  if (block->size_class == kOversizeClass) {
    live_bytes_.fetch_sub(static_cast<int64_t>(block->oversize_bytes),
                          std::memory_order_relaxed);
    block->~StorageBlock();
    ::operator delete(block);
    return;
  }

  uint32_t cls = block->size_class;
  int64_t class_bytes = static_cast<int64_t>(ClassBytes(cls));
  live_bytes_.fetch_sub(class_bytes, std::memory_order_relaxed);
  pooled_bytes_.fetch_add(class_bytes, std::memory_order_relaxed);
  if (ThreadCache* cache = LocalCacheOrNull();
      cache != nullptr && cache->count[cls] < kMaxThreadCachePerClass) {
    block->next = cache->head[cls];
    cache->head[cls] = block;
    ++cache->count[cls];
    return;
  }
  ReleaseCentral(block);
}

internal::StorageBlock* BufferPool::AcquireCentral(uint32_t size_class) {
  CentralList& list = central_[size_class];
  std::lock_guard<std::mutex> lock(list.mu);
  internal::StorageBlock* block = list.head;
  if (block != nullptr) list.head = block->next;
  return block;
}

void BufferPool::ReleaseCentral(internal::StorageBlock* block) {
  CentralList& list = central_[block->size_class];
  std::lock_guard<std::mutex> lock(list.mu);
  block->next = list.head;
  list.head = block;
}

void BufferPool::FlushThreadCache() {
  ThreadCache* cache = LocalCacheOrNull();
  if (cache == nullptr) return;
  for (uint32_t cls = 0; cls < kNumClasses; ++cls) {
    internal::StorageBlock* block = cache->head[cls];
    while (block != nullptr) {
      internal::StorageBlock* next = block->next;
      ReleaseCentral(block);
      block = next;
    }
    cache->head[cls] = nullptr;
    cache->count[cls] = 0;
  }
}

PoolStats BufferPool::Stats() const {
  PoolStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.live_bytes = live_bytes_.load(std::memory_order_relaxed);
  stats.pooled_bytes = pooled_bytes_.load(std::memory_order_relaxed);
  stats.peak_live_bytes = peak_live_bytes_.load(std::memory_order_relaxed);
  stats.tape_nodes = internal::TapeNodeCount();
  return stats;
}

PoolStats GetPoolStats() { return BufferPool::Instance().Stats(); }

// --- Storage -----------------------------------------------------------------

Storage Storage::Uninitialized(size_t n) {
  Storage s;
  if (n == 0) return s;
  s.block_ = BufferPool::Instance().Acquire(n * sizeof(float));
  s.ptr_ = s.block_->floats();
  s.size_ = n;
  return s;
}

Storage Storage::Zeroed(size_t n) {
  Storage s = Uninitialized(n);
  if (n != 0) std::memset(s.ptr_, 0, n * sizeof(float));
  return s;
}

Storage Storage::CopyOf(const float* src, size_t n) {
  Storage s = Uninitialized(n);
  if (n != 0) std::memcpy(s.ptr_, src, n * sizeof(float));
  return s;
}

Storage Storage::View(const Storage& base, size_t offset, size_t n) {
  SARN_DCHECK(offset + n <= base.size_);
  Storage s;
  s.size_ = n;
  s.view_ = true;
  if (n == 0) return s;
  s.ptr_ = const_cast<float*>(base.ptr_) + offset;
  if (base.block_ != nullptr) {
    base.block_->refs.fetch_add(1, std::memory_order_relaxed);
    s.block_ = base.block_;
  }
  return s;
}

void Storage::CopyFrom(const float* src, size_t n) {
  Resize(n);
  if (n != 0) std::memcpy(ptr_, src, n * sizeof(float));
}

void Storage::assign(size_t n, float value) {
  Resize(n);
  Fill(value);
}

void Storage::Fill(float value) {
  std::fill(ptr_, ptr_ + size_, value);
}

void Storage::Resize(size_t n) {
  if (n == size_) return;
  // Reuse the held block when it is exclusively ours and its class can hold n.
  if (block_ != nullptr && !view_ &&
      block_->refs.load(std::memory_order_relaxed) == 1) {
    // Oversize and arena blocks both carry their exact capacity in
    // oversize_bytes; sized classes derive it from the class table.
    size_t capacity = block_->size_class >= kOversize
                          ? block_->oversize_bytes
                          : BufferPool::ClassBytes(block_->size_class);
    if (n * sizeof(float) <= capacity) {
      size_ = n;
      return;
    }
  }
  *this = Uninitialized(n);
}

void Storage::Reset() {
  if (block_ != nullptr) BufferPool::Instance().Release(block_);
  block_ = nullptr;
  ptr_ = nullptr;
  size_ = 0;
  view_ = false;
}

// --- StepScope ---------------------------------------------------------------

namespace {

struct AllocInstruments {
  obs::Counter& steps;
  obs::Counter& pool_hits;
  obs::Counter& pool_misses;
  obs::Counter& tape_nodes;
  obs::Gauge& step_pool_misses;
  obs::Gauge& live_bytes;
  obs::Gauge& pooled_bytes;
  obs::Gauge& peak_live_bytes;
};

AllocInstruments& Instruments() {
  // References stay valid for the registry's lifetime (ResetForTest zeroes in
  // place), so one lookup serves the whole process.
  static AllocInstruments* instruments = [] {
    auto& registry = obs::MetricsRegistry::Default();
    return new AllocInstruments{
        registry.GetCounter("sarn.alloc.steps"),
        registry.GetCounter("sarn.alloc.pool_hits"),
        registry.GetCounter("sarn.alloc.pool_misses"),
        registry.GetCounter("sarn.alloc.tape_nodes"),
        registry.GetGauge("sarn.alloc.step_pool_misses"),
        registry.GetGauge("sarn.alloc.live_bytes"),
        registry.GetGauge("sarn.alloc.pooled_bytes"),
        registry.GetGauge("sarn.alloc.peak_live_bytes"),
    };
  }();
  return *instruments;
}

}  // namespace

StepScope::StepScope() {
  PoolStats stats = BufferPool::Instance().Stats();
  hits_at_entry_ = stats.hits;
  misses_at_entry_ = stats.misses;
  tape_at_entry_ = stats.tape_nodes;
}

uint64_t StepScope::pool_misses() const {
  return BufferPool::Instance().Stats().misses - misses_at_entry_;
}

StepScope::~StepScope() {
  PoolStats stats = BufferPool::Instance().Stats();
  AllocInstruments& instruments = Instruments();
  instruments.steps.Increment();
  instruments.pool_hits.Increment(stats.hits - hits_at_entry_);
  instruments.pool_misses.Increment(stats.misses - misses_at_entry_);
  instruments.tape_nodes.Increment(stats.tape_nodes - tape_at_entry_);
  instruments.step_pool_misses.Set(
      static_cast<double>(stats.misses - misses_at_entry_));
  instruments.live_bytes.Set(static_cast<double>(stats.live_bytes));
  instruments.pooled_bytes.Set(static_cast<double>(stats.pooled_bytes));
  instruments.peak_live_bytes.Set(static_cast<double>(stats.peak_live_bytes));
}

}  // namespace sarn::tensor
