// Synthetic city generator — the repository's substitute for the paper's
// OpenStreetMap extracts (DESIGN.md §3).
//
// The generator produces a perturbed street grid with an OSM-like road-type
// hierarchy: a motorway ring at the city border, trunk radials through the
// centre, primary/secondary arterials every few blocks, tertiary collectors,
// and residential streets elsewhere, with one-way streets, irregular block
// shapes (node jitter) and missing street links. Segment statistics (mean
// length ~70-110 m, degree distribution, type mix, dual-typed edge rarity)
// track the paper's Table 3 datasets; speed-limit labels correlate with road
// type but carry controlled noise so the type<->speed NMI lands in the
// paper's reported 0.4-0.8 band.

#ifndef SARN_ROADNET_SYNTHETIC_CITY_H_
#define SARN_ROADNET_SYNTHETIC_CITY_H_

#include <cstdint>
#include <string>

#include "geo/point.h"
#include "roadnet/road_network.h"

namespace sarn::roadnet {

struct SyntheticCityConfig {
  uint64_t seed = 7;
  geo::LatLng origin{30.65, 104.06};
  /// Grid intersections (rows x cols).
  int rows = 24;
  int cols = 24;
  /// Mean spacing between intersections, meters.
  double block_meters = 110.0;
  /// Node position jitter, as a fraction of block_meters.
  double jitter_fraction = 0.22;
  /// Every k-th grid line is a primary arterial; half-way lines secondary.
  int arterial_every = 5;
  /// Motorway ring along the border and trunk radials through the centre.
  bool ring_and_radials = true;
  /// A river crossing the city: street links over it are removed except at
  /// bridges every `bridge_every` columns (bridges are primary roads). This
  /// is where graph topology and Euclidean geometry genuinely diverge —
  /// opposite banks are spatially close but many hops apart — the exact
  /// situation motivating SARN's spatial edges (paper Fig. 1).
  bool river = true;
  int bridge_every = 7;
  /// Fraction of non-bridge residential links removed (street irregularity).
  double street_drop_fraction = 0.08;
  /// Fraction of minor streets that are one-way.
  double one_way_fraction = 0.15;
  /// Fraction of segments that carry a posted speed limit (task-1 labels).
  double speed_label_fraction = 1.0;
  /// Probability that a label is drawn from a neighbouring type's pool
  /// instead of the segment's own type pool (lowers type<->speed NMI).
  double speed_noise = 0.15;
  /// Probability that a label takes its pool's modal (median) value rather
  /// than a uniform pool draw (raises type<->speed NMI).
  double speed_modal_fraction = 0.75;
};

/// Generates the city. Node-level (undirected) connectivity is guaranteed:
/// only non-bridge links are ever dropped.
RoadNetwork GenerateSyntheticCity(const SyntheticCityConfig& config);

/// Dataset presets mirroring the paper's Table 3 cities. `scale` multiplies
/// the segment count (approximately linearly): scale = 1.0 reproduces the
/// paper-size network (~30k-37k segments); benches default to much smaller
/// scales. Returned configs differ in density, label sparsity and noise the
/// way the real cities do (e.g., SF has low type<->speed NMI).
SyntheticCityConfig ChengduLikeConfig(double scale);
SyntheticCityConfig BeijingLikeConfig(double scale);
SyntheticCityConfig SanFranciscoLikeConfig(double scale);

/// Named lookup: "CD", "BJ", "SF" (also "SF-S" at half and "SF-L" at double
/// the given scale, mirroring §5.2.4).
SyntheticCityConfig CityConfigByName(const std::string& name, double scale);

}  // namespace sarn::roadnet

#endif  // SARN_ROADNET_SYNTHETIC_CITY_H_
