#include "roadnet/road_types.h"

#include <array>

#include "common/check.h"

namespace sarn::roadnet {
namespace {

struct TypeInfo {
  const char* name;
  double weight;
  std::vector<int> speed_limits;
};

const std::array<TypeInfo, kNumHighwayTypes>& Table() {
  static const auto& table = *new std::array<TypeInfo, kNumHighwayTypes>{{
      {"motorway", 6.0, {80, 100, 120}},
      {"trunk", 5.0, {60, 80, 100}},
      {"primary", 4.5, {50, 60, 70}},
      {"secondary", 4.0, {40, 50, 60}},
      {"tertiary", 3.5, {30, 40, 50}},
      {"unclassified", 2.5, {30, 40}},
      {"residential", 2.0, {20, 30, 40}},
      {"service", 1.5, {10, 20}},
  }};
  return table;
}

}  // namespace

double HighwayWeight(HighwayType type) {
  return Table()[static_cast<size_t>(type)].weight;
}

const std::string& HighwayName(HighwayType type) {
  static const auto& names = *new std::array<std::string, kNumHighwayTypes>{
      {"motorway", "trunk", "primary", "secondary", "tertiary", "unclassified",
       "residential", "service"}};
  return names[static_cast<size_t>(type)];
}

std::optional<HighwayType> HighwayFromName(const std::string& name) {
  for (int t = 0; t < kNumHighwayTypes; ++t) {
    if (HighwayName(static_cast<HighwayType>(t)) == name) {
      return static_cast<HighwayType>(t);
    }
  }
  return std::nullopt;
}

const std::vector<int>& TypicalSpeedLimits(HighwayType type) {
  return Table()[static_cast<size_t>(type)].speed_limits;
}

const std::vector<HighwayType>& AllHighwayTypes() {
  static const auto& all = *new std::vector<HighwayType>{
      HighwayType::kMotorway,     HighwayType::kTrunk,       HighwayType::kPrimary,
      HighwayType::kSecondary,    HighwayType::kTertiary,    HighwayType::kUnclassified,
      HighwayType::kResidential,  HighwayType::kService,
  };
  return all;
}

}  // namespace sarn::roadnet
