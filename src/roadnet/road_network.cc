#include "roadnet/road_network.h"

#include <unordered_map>

#include "common/check.h"

namespace sarn::roadnet {

const RoadSegment& RoadNetwork::segment(SegmentId id) const {
  SARN_CHECK(id >= 0 && id < num_segments()) << "segment " << id;
  return segments_[static_cast<size_t>(id)];
}

std::vector<geo::LatLng> RoadNetwork::Midpoints() const {
  std::vector<geo::LatLng> midpoints;
  midpoints.reserve(segments_.size());
  for (const RoadSegment& s : segments_) midpoints.push_back(s.Midpoint());
  return midpoints;
}

graph::CsrGraph RoadNetwork::ToLengthWeightedGraph() const {
  std::vector<graph::WeightedEdge> edges;
  edges.reserve(topo_edges_.size());
  for (const TopoEdge& e : topo_edges_) {
    double w = (segments_[static_cast<size_t>(e.from)].length_meters +
                segments_[static_cast<size_t>(e.to)].length_meters) /
               2.0;
    edges.push_back({e.from, e.to, w});
  }
  return graph::CsrGraph(num_segments(), edges);
}

graph::CsrGraph RoadNetwork::ToTypeWeightedGraph() const {
  std::vector<graph::WeightedEdge> edges;
  edges.reserve(topo_edges_.size());
  for (const TopoEdge& e : topo_edges_) edges.push_back({e.from, e.to, e.weight});
  return graph::CsrGraph(num_segments(), edges);
}

double RoadNetwork::MeanSegmentLength() const {
  if (segments_.empty()) return 0.0;
  double total = 0.0;
  for (const RoadSegment& s : segments_) total += s.length_meters;
  return total / static_cast<double>(segments_.size());
}

int64_t RoadNetworkBuilder::AddNode(const geo::LatLng& position) {
  nodes_.push_back(position);
  return static_cast<int64_t>(nodes_.size()) - 1;
}

SegmentId RoadNetworkBuilder::AddSegment(int64_t from_node, int64_t to_node,
                                         HighwayType type,
                                         std::optional<int> speed_limit_kmh) {
  SARN_CHECK(from_node >= 0 && from_node < num_nodes()) << "from_node " << from_node;
  SARN_CHECK(to_node >= 0 && to_node < num_nodes()) << "to_node " << to_node;
  SARN_CHECK_NE(from_node, to_node);
  segments_.push_back({from_node, to_node, type, speed_limit_kmh});
  return static_cast<SegmentId>(segments_.size()) - 1;
}

RoadNetwork RoadNetworkBuilder::Build() const {
  RoadNetwork network;
  network.segments_.reserve(segments_.size());
  for (const PendingSegment& p : segments_) {
    RoadSegment s;
    s.type = p.type;
    s.speed_limit_kmh = p.speed_limit_kmh;
    s.from_node = p.from_node;
    s.to_node = p.to_node;
    s.start = nodes_[static_cast<size_t>(p.from_node)];
    s.end = nodes_[static_cast<size_t>(p.to_node)];
    s.length_meters = geo::HaversineMeters(s.start, s.end);
    s.radian = geo::SegmentRadian(s.start, s.end);
    network.box_.Extend(s.start);
    network.box_.Extend(s.end);
    network.segments_.push_back(s);
  }
  // Topological adjacency: s_i -> s_j iff i ends where j starts. Exclude the
  // immediate U-turn back along the reverse twin of a two-way street (same
  // node pair, opposite direction), which OSM-derived segment graphs exclude
  // as well.
  std::unordered_map<int64_t, std::vector<SegmentId>> outgoing_of_node;
  for (size_t j = 0; j < network.segments_.size(); ++j) {
    outgoing_of_node[network.segments_[j].from_node].push_back(
        static_cast<SegmentId>(j));
  }
  for (size_t i = 0; i < network.segments_.size(); ++i) {
    const RoadSegment& si = network.segments_[i];
    auto it = outgoing_of_node.find(si.to_node);
    if (it == outgoing_of_node.end()) continue;
    for (SegmentId j : it->second) {
      if (static_cast<size_t>(j) == i) continue;
      const RoadSegment& sj = network.segments_[static_cast<size_t>(j)];
      if (sj.to_node == si.from_node && sj.from_node == si.to_node) continue;  // U-turn.
      double weight = 0.5 * (HighwayWeight(si.type) + HighwayWeight(sj.type));
      network.topo_edges_.push_back({static_cast<SegmentId>(i), j, weight});
    }
  }
  if (network.segments_.empty()) network.box_ = geo::BoundingBox{0, 0, 0, 0};
  return network;
}

}  // namespace sarn::roadnet
