// Minimal OpenStreetMap XML importer.
//
// Parses the subset of the OSM XML format the paper's datasets come from:
// <node id lat lon>, <way> with <nd ref> members and <tag k v> pairs. Ways
// tagged with a recognized highway=* value become road segments (one
// directed segment per consecutive node pair; the reverse direction is
// added unless oneway=yes). maxspeed tags become speed-limit labels.
//
// This is a purpose-built scanner, not a general XML parser: it handles the
// well-formed exports produced by Overpass / osmium / JOSM (attribute order
// free, single or double quotes, self-closing tags) and rejects files
// missing the <osm> root.

#ifndef SARN_ROADNET_OSM_IMPORT_H_
#define SARN_ROADNET_OSM_IMPORT_H_

#include <optional>
#include <string>

#include "roadnet/road_network.h"

namespace sarn::roadnet {

struct OsmImportStats {
  int64_t nodes_parsed = 0;
  int64_t ways_parsed = 0;
  int64_t ways_kept = 0;  // Ways with a recognized highway type.
  int64_t segments_created = 0;
};

/// Parses OSM XML text into a road network. Returns nullopt when the text is
/// not an OSM document or contains no usable highway ways.
std::optional<RoadNetwork> ParseOsmXml(const std::string& xml,
                                       OsmImportStats* stats = nullptr);

/// Reads an .osm file from disk. Returns nullopt on I/O or parse failure.
std::optional<RoadNetwork> LoadOsmFile(const std::string& path,
                                       OsmImportStats* stats = nullptr);

}  // namespace sarn::roadnet

#endif  // SARN_ROADNET_OSM_IMPORT_H_
