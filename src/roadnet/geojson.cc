#include "roadnet/geojson.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/check.h"
#include "common/string_util.h"

namespace sarn::roadnet {

std::string ValueToHexColor(double value, double min_value, double max_value) {
  double t = max_value > min_value ? (value - min_value) / (max_value - min_value) : 0.5;
  t = std::clamp(t, 0.0, 1.0);
  int red = static_cast<int>(40 + 215 * t);
  int green = 60;
  int blue = static_cast<int>(40 + 215 * (1.0 - t));
  char buffer[8];
  std::snprintf(buffer, sizeof(buffer), "#%02x%02x%02x", red, green, blue);
  return buffer;
}

bool ExportGeoJson(const RoadNetwork& network, const std::string& path,
                   const GeoJsonOptions& options) {
  if (!options.values.empty()) {
    SARN_CHECK_EQ(static_cast<int64_t>(options.values.size()), network.num_segments());
  }
  std::ofstream out(path);
  if (!out.is_open()) return false;

  double min_value = 0.0, max_value = 0.0;
  if (!options.values.empty()) {
    min_value = *std::min_element(options.values.begin(), options.values.end());
    max_value = *std::max_element(options.values.begin(), options.values.end());
  }

  out << "{\"type\":\"FeatureCollection\",\"features\":[\n";
  for (int64_t i = 0; i < network.num_segments(); ++i) {
    const RoadSegment& s = network.segment(i);
    if (i > 0) out << ",\n";
    out << "{\"type\":\"Feature\",\"geometry\":{\"type\":\"LineString\","
        << "\"coordinates\":[[" << FormatDouble(s.start.lng, 7) << ","
        << FormatDouble(s.start.lat, 7) << "],[" << FormatDouble(s.end.lng, 7) << ","
        << FormatDouble(s.end.lat, 7) << "]]},\"properties\":{\"id\":" << i;
    if (options.include_attributes) {
      out << ",\"highway\":\"" << HighwayName(s.type) << "\""
          << ",\"length_m\":" << FormatDouble(s.length_meters, 1);
      if (s.speed_limit_kmh.has_value()) {
        out << ",\"maxspeed\":" << *s.speed_limit_kmh;
      }
    }
    if (!options.values.empty()) {
      double value = options.values[static_cast<size_t>(i)];
      out << ",\"value\":" << FormatDouble(value, 5) << ",\"color\":\""
          << ValueToHexColor(value, min_value, max_value) << "\"";
    }
    out << "}}";
  }
  out << "\n]}\n";
  return out.good();
}

}  // namespace sarn::roadnet
