#include "roadnet/synthetic_city.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace sarn::roadnet {
namespace {

// Union-find over grid nodes, used to protect bridges when dropping links.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  bool Union(size_t a, size_t b) {
    size_t ra = Find(a), rb = Find(b);
    if (ra == rb) return false;
    parent_[ra] = rb;
    return true;
  }

 private:
  std::vector<size_t> parent_;
};

struct GridLink {
  int64_t node_a;
  int64_t node_b;
  HighwayType type;
  // Street identity: orientation (0 horizontal, 1 vertical) and line index.
  // Real speed limits are posted per road, so labels are sampled per line.
  int orientation = 0;
  int line = 0;
};

int SampleSpeedFromPool(HighwayType type, const SyntheticCityConfig& config, Rng& rng) {
  HighwayType pool_type = type;
  if (rng.Bernoulli(config.speed_noise)) {
    // Borrow the pool of an adjacent type in the hierarchy.
    int t = static_cast<int>(type) + (rng.Bernoulli(0.5) ? 1 : -1);
    t = std::clamp(t, 0, kNumHighwayTypes - 1);
    pool_type = static_cast<HighwayType>(t);
  }
  const std::vector<int>& pool = TypicalSpeedLimits(pool_type);
  if (rng.Bernoulli(config.speed_modal_fraction)) return pool[pool.size() / 2];
  return pool[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(pool.size()) - 1))];
}

}  // namespace

RoadNetwork GenerateSyntheticCity(const SyntheticCityConfig& config) {
  SARN_CHECK_GE(config.rows, 3);
  SARN_CHECK_GE(config.cols, 3);
  SARN_CHECK_GT(config.block_meters, 1.0);
  Rng rng(config.seed);
  geo::LocalProjection proj(config.origin);
  RoadNetworkBuilder builder;

  // 1. Jittered grid of intersections.
  int rows = config.rows, cols = config.cols;
  auto node_index = [cols](int r, int c) { return static_cast<int64_t>(r) * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      double jitter = config.block_meters * config.jitter_fraction;
      double x = c * config.block_meters + rng.Uniform(-jitter, jitter);
      double y = r * config.block_meters + rng.Uniform(-jitter, jitter);
      int64_t id = builder.AddNode(proj.ToLatLng(x, y));
      SARN_CHECK_EQ(id, node_index(r, c));
    }
  }

  // 2. Classify every grid link by the road hierarchy.
  int mid_row = rows / 2, mid_col = cols / 2;
  auto line_type = [&](bool on_border, bool on_radial, int line_index) -> HighwayType {
    if (config.ring_and_radials && on_border) return HighwayType::kMotorway;
    if (config.ring_and_radials && on_radial) return HighwayType::kTrunk;
    if (line_index % config.arterial_every == 0) return HighwayType::kPrimary;
    if (config.arterial_every >= 4 &&
        line_index % config.arterial_every == config.arterial_every / 2) {
      return HighwayType::kSecondary;
    }
    return HighwayType::kResidential;
  };

  std::vector<GridLink> links;
  for (int r = 0; r < rows; ++r) {
    bool border_row = (r == 0 || r == rows - 1);
    bool radial_row = (r == mid_row);
    for (int c = 0; c + 1 < cols; ++c) {  // Horizontal links.
      HighwayType type = line_type(border_row, radial_row, r);
      links.push_back({node_index(r, c), node_index(r, c + 1), type, 0, r});
    }
  }
  for (int c = 0; c < cols; ++c) {
    bool border_col = (c == 0 || c == cols - 1);
    bool radial_col = (c == mid_col);
    for (int r = 0; r + 1 < rows; ++r) {  // Vertical links.
      HighwayType type = line_type(border_col, radial_col, c);
      links.push_back({node_index(r, c), node_index(r + 1, c), type, 1, c});
    }
  }

  // River: remove vertical links crossing the river row, keep bridges.
  if (config.river && rows >= 8) {
    int river_row = (rows * 2) / 5;  // Between river_row and river_row + 1.
    if (river_row == mid_row) ++river_row;
    std::vector<GridLink> kept;
    kept.reserve(links.size());
    for (const GridLink& link : links) {
      bool crosses = link.orientation == 1 &&
                     std::min(link.node_a, link.node_b) / cols == river_row;
      if (!crosses) {
        kept.push_back(link);
        continue;
      }
      int c = static_cast<int>(link.node_a % cols);
      bool bridge = c == 0 || c == cols - 1 || c == mid_col ||
                    c % config.bridge_every == 0;
      if (bridge) {
        GridLink upgraded = link;
        if (HighwayWeight(upgraded.type) < HighwayWeight(HighwayType::kPrimary)) {
          upgraded.type = HighwayType::kPrimary;
        }
        kept.push_back(upgraded);
      }
    }
    links = std::move(kept);
  }

  // Sprinkle tertiary collectors and service alleys over residential links.
  for (GridLink& link : links) {
    if (link.type != HighwayType::kResidential) continue;
    double roll = rng.Uniform();
    if (roll < 0.18) {
      link.type = HighwayType::kTertiary;
    } else if (roll < 0.24) {
      link.type = HighwayType::kUnclassified;
    } else if (roll < 0.30) {
      link.type = HighwayType::kService;
    }
  }

  // 3. Drop a fraction of minor links — but never a bridge: a random
  // spanning forest is built first and its links are immortal.
  std::vector<size_t> order(links.size());
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);
  UnionFind components(static_cast<size_t>(rows) * cols);
  std::vector<bool> in_tree(links.size(), false);
  for (size_t idx : order) {
    if (components.Union(static_cast<size_t>(links[idx].node_a),
                         static_cast<size_t>(links[idx].node_b))) {
      in_tree[idx] = true;
    }
  }
  std::vector<bool> dropped(links.size(), false);
  for (size_t i = 0; i < links.size(); ++i) {
    bool minor = links[i].type == HighwayType::kResidential ||
                 links[i].type == HighwayType::kService ||
                 links[i].type == HighwayType::kUnclassified;
    if (!in_tree[i] && minor && rng.Bernoulli(config.street_drop_fraction)) {
      dropped[i] = true;
    }
  }

  // 4. Speed limits are posted per street (line), the way municipalities
  // post them: one sample per (orientation, line); segments whose sprinkled
  // type diverges from the line's majority type draw their own sample.
  std::map<std::pair<int, int>, int> line_speed;
  for (const GridLink& link : links) {
    auto key = std::make_pair(link.orientation, link.line);
    if (line_speed.find(key) == line_speed.end()) {
      line_speed[key] = SampleSpeedFromPool(link.type, config, rng);
    }
  }
  auto segment_speed = [&](const GridLink& link) -> std::optional<int> {
    if (!rng.Bernoulli(config.speed_label_fraction)) return std::nullopt;
    auto key = std::make_pair(link.orientation, link.line);
    HighwayType majority =
        link.orientation == 0
            ? line_type(link.line == 0 || link.line == rows - 1, link.line == mid_row,
                        link.line)
            : line_type(link.line == 0 || link.line == cols - 1, link.line == mid_col,
                        link.line);
    if (link.type == majority || rng.Bernoulli(0.5)) return line_speed.at(key);
    return SampleSpeedFromPool(link.type, config, rng);
  };

  // 5. Emit directed segments: major roads are dual carriageways; minor
  // streets are occasionally one-way.
  for (size_t i = 0; i < links.size(); ++i) {
    if (dropped[i]) continue;
    const GridLink& link = links[i];
    bool major = HighwayWeight(link.type) >= HighwayWeight(HighwayType::kTertiary);
    bool one_way = !major && rng.Bernoulli(config.one_way_fraction);
    bool forward_first = rng.Bernoulli(0.5);
    int64_t a = forward_first ? link.node_a : link.node_b;
    int64_t b = forward_first ? link.node_b : link.node_a;
    builder.AddSegment(a, b, link.type, segment_speed(link));
    if (!one_way) {
      builder.AddSegment(b, a, link.type, segment_speed(link));
    }
  }

  return builder.Build();
}

namespace {

SyntheticCityConfig ScaledConfig(double scale, int base_rows, int base_cols,
                                 double block_meters, const geo::LatLng& origin,
                                 uint64_t seed) {
  SARN_CHECK_GT(scale, 0.0);
  SyntheticCityConfig config;
  config.seed = seed;
  config.origin = origin;
  double factor = std::sqrt(scale);
  config.rows = std::max(4, static_cast<int>(std::lround(base_rows * factor)));
  config.cols = std::max(4, static_cast<int>(std::lround(base_cols * factor)));
  config.block_meters = block_meters;
  return config;
}

}  // namespace

SyntheticCityConfig ChengduLikeConfig(double scale) {
  // CD: 29,593 segments over 10.13 x 11.26 km; coarse blocks, high NMI (0.80)
  // -> low label noise.
  SyntheticCityConfig config =
      ScaledConfig(scale, 86, 90, 112.0, geo::LatLng{30.65, 104.06}, 104);
  config.speed_noise = 0.05;
  config.speed_modal_fraction = 0.92;
  config.speed_label_fraction = 1.0;
  return config;
}

SyntheticCityConfig BeijingLikeConfig(double scale) {
  // BJ: 36,809 segments over 9.49 x 8.74 km; NMI 0.73.
  SyntheticCityConfig config =
      ScaledConfig(scale, 98, 94, 93.0, geo::LatLng{39.90, 116.40}, 116);
  config.speed_noise = 0.08;
  config.speed_modal_fraction = 0.88;
  config.one_way_fraction = 0.22;
  return config;
}

SyntheticCityConfig SanFranciscoLikeConfig(double scale) {
  // SF: 37,284 segments over 5.72 x 5.69 km; dense small blocks, NMI 0.39
  // -> heavy label noise.
  SyntheticCityConfig config =
      ScaledConfig(scale, 98, 98, 58.0, geo::LatLng{37.77, -122.42}, 122);
  config.speed_noise = 0.40;
  config.speed_modal_fraction = 0.40;
  config.one_way_fraction = 0.30;
  config.arterial_every = 6;
  return config;
}

SyntheticCityConfig CityConfigByName(const std::string& name, double scale) {
  if (name == "CD") return ChengduLikeConfig(scale);
  if (name == "BJ") return BeijingLikeConfig(scale);
  if (name == "SF") return SanFranciscoLikeConfig(scale);
  if (name == "SF-S") return SanFranciscoLikeConfig(scale * 0.5);
  if (name == "SF-L") return SanFranciscoLikeConfig(scale * 2.0);
  SARN_CHECK(false) << "unknown city " << name;
  return {};
}

}  // namespace sarn::roadnet
