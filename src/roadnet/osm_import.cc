#include "roadnet/osm_import.h"

#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"

namespace sarn::roadnet {
namespace {

// A parsed XML tag: name plus attribute map; `closing` is true for </name>,
// `self_closing` for <name ... />.
struct XmlTag {
  std::string name;
  std::unordered_map<std::string, std::string> attributes;
  bool closing = false;
  bool self_closing = false;
};

// Scans the next tag starting at or after `pos`; advances `pos` past it.
std::optional<XmlTag> NextTag(const std::string& xml, size_t& pos) {
  size_t open = xml.find('<', pos);
  if (open == std::string::npos) return std::nullopt;
  size_t close = xml.find('>', open);
  if (close == std::string::npos) return std::nullopt;
  pos = close + 1;
  std::string body = xml.substr(open + 1, close - open - 1);
  XmlTag tag;
  if (!body.empty() && body[0] == '?') return NextTag(xml, pos);   // <?xml ...?>
  if (body.size() >= 3 && body.compare(0, 3, "!--") == 0) {
    // Comment: skip to its true end (may contain '>').
    size_t end = xml.find("-->", open);
    if (end == std::string::npos) return std::nullopt;
    pos = end + 3;
    return NextTag(xml, pos);
  }
  if (!body.empty() && body[0] == '/') {
    tag.closing = true;
    tag.name = Trim(body.substr(1));
    return tag;
  }
  if (!body.empty() && body.back() == '/') {
    tag.self_closing = true;
    body.pop_back();
  }
  // Name = up to first whitespace.
  size_t name_end = body.find_first_of(" \t\n\r");
  tag.name = body.substr(0, name_end);
  if (name_end == std::string::npos) return tag;
  // Attributes: key="value" or key='value'.
  size_t i = name_end;
  while (i < body.size()) {
    while (i < body.size() && std::isspace(static_cast<unsigned char>(body[i]))) ++i;
    size_t eq = body.find('=', i);
    if (eq == std::string::npos) break;
    std::string key = Trim(body.substr(i, eq - i));
    size_t quote = body.find_first_of("\"'", eq);
    if (quote == std::string::npos) break;
    char quote_char = body[quote];
    size_t end = body.find(quote_char, quote + 1);
    if (end == std::string::npos) break;
    tag.attributes[key] = body.substr(quote + 1, end - quote - 1);
    i = end + 1;
  }
  return tag;
}

std::optional<int> ParseMaxspeed(const std::string& value) {
  // "50", "50 km/h", "30 mph" — take the leading number; convert mph.
  size_t digits = 0;
  while (digits < value.size() && std::isdigit(static_cast<unsigned char>(value[digits]))) {
    ++digits;
  }
  if (digits == 0) return std::nullopt;
  auto number = ParseInt(value.substr(0, digits));
  if (!number) return std::nullopt;
  if (value.find("mph") != std::string::npos) {
    return static_cast<int>(*number * 1.609344 + 0.5);
  }
  return static_cast<int>(*number);
}

}  // namespace

std::optional<RoadNetwork> ParseOsmXml(const std::string& xml, OsmImportStats* stats) {
  OsmImportStats local_stats;
  size_t pos = 0;
  bool saw_osm_root = false;

  struct OsmWay {
    std::vector<int64_t> node_refs;
    HighwayType type = HighwayType::kResidential;
    bool has_highway = false;
    bool oneway = false;
    std::optional<int> maxspeed;
  };
  std::unordered_map<int64_t, geo::LatLng> nodes;
  std::vector<OsmWay> ways;
  std::optional<OsmWay> current_way;

  while (auto tag = NextTag(xml, pos)) {
    if (tag->name == "osm" && !tag->closing) {
      saw_osm_root = true;
    } else if (tag->name == "node" && !tag->closing) {
      auto id = ParseInt(tag->attributes["id"]);
      auto lat = ParseDouble(tag->attributes["lat"]);
      auto lon = ParseDouble(tag->attributes["lon"]);
      if (id && lat && lon) {
        nodes[*id] = geo::LatLng{*lat, *lon};
        ++local_stats.nodes_parsed;
      }
    } else if (tag->name == "way") {
      if (tag->closing || tag->self_closing) {
        if (current_way.has_value()) {
          ++local_stats.ways_parsed;
          if (current_way->has_highway && current_way->node_refs.size() >= 2) {
            ways.push_back(std::move(*current_way));
            ++local_stats.ways_kept;
          }
          current_way.reset();
        }
      } else {
        current_way = OsmWay{};
      }
    } else if (current_way.has_value() && tag->name == "nd") {
      if (auto ref = ParseInt(tag->attributes["ref"])) {
        current_way->node_refs.push_back(*ref);
      }
    } else if (current_way.has_value() && tag->name == "tag") {
      const std::string& key = tag->attributes["k"];
      const std::string& value = tag->attributes["v"];
      if (key == "highway") {
        // "motorway_link" etc. map to their base class.
        std::string base = value;
        size_t link = base.find("_link");
        if (link != std::string::npos) base = base.substr(0, link);
        if (auto type = HighwayFromName(base)) {
          current_way->type = *type;
          current_way->has_highway = true;
        }
      } else if (key == "oneway") {
        current_way->oneway = (value == "yes" || value == "1" || value == "true");
      } else if (key == "maxspeed") {
        current_way->maxspeed = ParseMaxspeed(value);
      }
    }
  }

  if (!saw_osm_root) {
    SARN_LOG(Error) << "not an OSM document";
    return std::nullopt;
  }

  RoadNetworkBuilder builder;
  std::unordered_map<int64_t, int64_t> builder_node_of;  // OSM id -> builder id.
  auto node_of = [&](int64_t osm_id) -> int64_t {
    auto it = builder_node_of.find(osm_id);
    if (it != builder_node_of.end()) return it->second;
    int64_t id = builder.AddNode(nodes.at(osm_id));
    builder_node_of.emplace(osm_id, id);
    return id;
  };
  for (const OsmWay& way : ways) {
    for (size_t k = 0; k + 1 < way.node_refs.size(); ++k) {
      int64_t a_ref = way.node_refs[k];
      int64_t b_ref = way.node_refs[k + 1];
      if (nodes.find(a_ref) == nodes.end() || nodes.find(b_ref) == nodes.end()) {
        continue;  // Clipped extract: member node outside the file.
      }
      if (a_ref == b_ref) continue;
      int64_t a = node_of(a_ref);
      int64_t b = node_of(b_ref);
      builder.AddSegment(a, b, way.type, way.maxspeed);
      ++local_stats.segments_created;
      if (!way.oneway) {
        builder.AddSegment(b, a, way.type, way.maxspeed);
        ++local_stats.segments_created;
      }
    }
  }
  if (stats != nullptr) *stats = local_stats;
  if (builder.num_segments() == 0) {
    SARN_LOG(Error) << "OSM document contains no usable highway ways";
    return std::nullopt;
  }
  return builder.Build();
}

std::optional<RoadNetwork> LoadOsmFile(const std::string& path, OsmImportStats* stats) {
  std::ifstream in(path);
  if (!in.is_open()) return std::nullopt;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return ParseOsmXml(buffer.str(), stats);
}

}  // namespace sarn::roadnet
