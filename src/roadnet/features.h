// Road-segment feature discretisation (paper §4.3, "Feature embedding
// layer"): each segment is a 5-tuple with seven scalar feature values —
// type, length, radian, and the two coordinates of each endpoint. Continuous
// values are discretised with equi-sized bins (5 m for length, 10 degrees
// for radian, 50 m for coordinates) and every value becomes an integer bin
// id, feeding one embedding table per feature (nn::FeatureEmbedding).

#ifndef SARN_ROADNET_FEATURES_H_
#define SARN_ROADNET_FEATURES_H_

#include <cstdint>
#include <vector>

#include "roadnet/road_network.h"

namespace sarn::roadnet {

/// Number of input features per segment (type, length, radian, start lat,
/// start lng, end lat, end lng).
inline constexpr int kNumSegmentFeatures = 7;

/// Paper bin widths.
inline constexpr double kLengthBinMeters = 5.0;
inline constexpr double kRadianBinDegrees = 10.0;
inline constexpr double kCoordBinMeters = 50.0;

/// Discretised features of a whole network, feature-major:
/// ids[f][s] = bin id of feature f for segment s.
struct SegmentFeatures {
  std::vector<std::vector<int64_t>> ids;
  std::vector<int64_t> vocab_sizes;  // Bin count per feature.
};

/// Discretises all segments of `network`. Coordinate bins are relative to the
/// network's bounding box (IDs are network-local; embeddings remain
/// ID-independent across networks as the paper requires).
SegmentFeatures FeaturizeSegments(const RoadNetwork& network);

/// Dense (non-learned) feature matrix [n, kNumHighwayTypes + 6]:
/// one-hot type ++ {length/1km, sin(radian), cos(radian), normalized mid lat,
/// normalized mid lng, normalized length rank}. Used by baselines that take
/// raw features (SRN2Vec) and by tests.
std::vector<std::vector<float>> DenseSegmentFeatures(const RoadNetwork& network);

}  // namespace sarn::roadnet

#endif  // SARN_ROADNET_FEATURES_H_
