#include "roadnet/features.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "geo/point.h"

namespace sarn::roadnet {
namespace {

int64_t BinOf(double value, double bin_width, int64_t num_bins) {
  int64_t bin = static_cast<int64_t>(value / bin_width);
  return std::clamp<int64_t>(bin, 0, num_bins - 1);
}

}  // namespace

SegmentFeatures FeaturizeSegments(const RoadNetwork& network) {
  const geo::BoundingBox& box = network.bounding_box();
  geo::LocalProjection proj(geo::LatLng{box.min_lat, box.min_lng});

  // Vocabulary sizes derived from the data domain (>= 1 each).
  double max_length = 0.0;
  for (const RoadSegment& s : network.segments()) {
    max_length = std::max(max_length, s.length_meters);
  }
  int64_t length_bins =
      std::max<int64_t>(1, static_cast<int64_t>(max_length / kLengthBinMeters) + 1);
  int64_t radian_bins =
      static_cast<int64_t>(std::ceil(360.0 / kRadianBinDegrees));  // 36.
  int64_t lat_bins = std::max<int64_t>(
      1, static_cast<int64_t>(box.HeightMeters() / kCoordBinMeters) + 1);
  int64_t lng_bins = std::max<int64_t>(
      1, static_cast<int64_t>(box.WidthMeters() / kCoordBinMeters) + 1);

  SegmentFeatures features;
  features.vocab_sizes = {kNumHighwayTypes, length_bins, radian_bins,
                          lat_bins,         lng_bins,    lat_bins,
                          lng_bins};
  features.ids.assign(kNumSegmentFeatures, {});
  for (auto& column : features.ids) column.reserve(network.segments().size());

  for (const RoadSegment& s : network.segments()) {
    features.ids[0].push_back(static_cast<int64_t>(s.type));
    features.ids[1].push_back(BinOf(s.length_meters, kLengthBinMeters, length_bins));
    features.ids[2].push_back(
        BinOf(geo::RadToDeg(s.radian), kRadianBinDegrees, radian_bins));
    double x = 0.0, y = 0.0;
    proj.ToMeters(s.start, &x, &y);
    features.ids[3].push_back(BinOf(y, kCoordBinMeters, lat_bins));
    features.ids[4].push_back(BinOf(x, kCoordBinMeters, lng_bins));
    proj.ToMeters(s.end, &x, &y);
    features.ids[5].push_back(BinOf(y, kCoordBinMeters, lat_bins));
    features.ids[6].push_back(BinOf(x, kCoordBinMeters, lng_bins));
  }
  return features;
}

std::vector<std::vector<float>> DenseSegmentFeatures(const RoadNetwork& network) {
  const geo::BoundingBox& box = network.bounding_box();
  double width = std::max(1.0, box.WidthMeters());
  double height = std::max(1.0, box.HeightMeters());
  geo::LocalProjection proj(geo::LatLng{box.min_lat, box.min_lng});

  std::vector<std::vector<float>> features;
  features.reserve(network.segments().size());
  for (const RoadSegment& s : network.segments()) {
    std::vector<float> row(kNumHighwayTypes + 6, 0.0f);
    row[static_cast<size_t>(s.type)] = 1.0f;
    size_t k = kNumHighwayTypes;
    row[k++] = static_cast<float>(s.length_meters / 1000.0);
    row[k++] = static_cast<float>(std::sin(s.radian));
    row[k++] = static_cast<float>(std::cos(s.radian));
    double x = 0.0, y = 0.0;
    proj.ToMeters(s.Midpoint(), &x, &y);
    row[k++] = static_cast<float>(x / width);
    row[k++] = static_cast<float>(y / height);
    row[k++] = static_cast<float>(HighwayWeight(s.type) / 6.0);
    features.push_back(std::move(row));
  }
  return features;
}

}  // namespace sarn::roadnet
