// OSM-style highway taxonomy with the importance weights of paper Eq. 1
// ("e.g., 6.0 for motorways and 2.0 for residential roads") and per-type
// speed-limit pools used by the synthetic generator to produce the
// road-property labels of downstream task 1.

#ifndef SARN_ROADNET_ROAD_TYPES_H_
#define SARN_ROADNET_ROAD_TYPES_H_

#include <optional>
#include <string>
#include <vector>

namespace sarn::roadnet {

enum class HighwayType {
  kMotorway = 0,
  kTrunk = 1,
  kPrimary = 2,
  kSecondary = 3,
  kTertiary = 4,
  kUnclassified = 5,
  kResidential = 6,
  kService = 7,
};

inline constexpr int kNumHighwayTypes = 8;

/// Importance weight of a road type (Eq. 1's weight(.)).
double HighwayWeight(HighwayType type);

/// OSM key string ("motorway", "residential", ...).
const std::string& HighwayName(HighwayType type);

/// Reverse lookup; nullopt on unknown names.
std::optional<HighwayType> HighwayFromName(const std::string& name);

/// Candidate speed limits (km/h) typically posted on roads of this type;
/// the synthetic generator samples (with cross-type noise) from these.
const std::vector<int>& TypicalSpeedLimits(HighwayType type);

/// All types, in enum order.
const std::vector<HighwayType>& AllHighwayTypes();

}  // namespace sarn::roadnet

#endif  // SARN_ROADNET_ROAD_TYPES_H_
