// CSV persistence for road networks.
//
// Format (one header + one row per segment):
//   from_node,to_node,type,speed_limit,start_lat,start_lng,end_lat,end_lng
// `speed_limit` is empty when unposted. Node positions are reconstructed
// from the first row mentioning each node id.

#ifndef SARN_ROADNET_IO_H_
#define SARN_ROADNET_IO_H_

#include <optional>
#include <string>

#include "roadnet/road_network.h"

namespace sarn::roadnet {

/// Writes `network` to `path`. Returns false on I/O error.
bool SaveRoadNetworkCsv(const RoadNetwork& network, const std::string& path);

/// Reads a network written by SaveRoadNetworkCsv. Returns nullopt on missing
/// file or malformed content.
std::optional<RoadNetwork> LoadRoadNetworkCsv(const std::string& path);

}  // namespace sarn::roadnet

#endif  // SARN_ROADNET_IO_H_
