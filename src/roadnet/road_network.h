// Road-network data model.
//
// A road network is a directed graph whose vertices are *road segments*
// (paper §3): segment s_i carries <type, length, radian, start, end>. Two
// segments are topologically adjacent (A^t_{i,j} > 0) when s_j is directly
// connected from s_i, i.e., s_i's end intersection is s_j's start
// intersection; the edge weight is the mean of the two segments' type-based
// importance weights (Eq. 1).

#ifndef SARN_ROADNET_ROAD_NETWORK_H_
#define SARN_ROADNET_ROAD_NETWORK_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "geo/point.h"
#include "graph/csr_graph.h"
#include "roadnet/road_types.h"

namespace sarn::roadnet {

using SegmentId = int64_t;

/// One directed road segment (a graph vertex in the paper's formulation).
struct RoadSegment {
  HighwayType type = HighwayType::kResidential;
  double length_meters = 0.0;
  double radian = 0.0;  // Direction in [0, 2*pi), east = 0, ccw.
  geo::LatLng start;
  geo::LatLng end;
  /// Posted speed limit (km/h); the *label* of downstream task 1 — it is
  /// never part of the model input features. nullopt when unposted.
  std::optional<int> speed_limit_kmh;
  /// Intersection ids (from the builder); used to derive connectivity.
  int64_t from_node = -1;
  int64_t to_node = -1;

  geo::LatLng Midpoint() const { return geo::Midpoint(start, end); }
};

/// A weighted topological edge A^t_{i,j} between segments (Eq. 1).
struct TopoEdge {
  SegmentId from = 0;
  SegmentId to = 0;
  double weight = 0.0;
};

/// Immutable road network (build with RoadNetworkBuilder).
class RoadNetwork {
 public:
  int64_t num_segments() const { return static_cast<int64_t>(segments_.size()); }
  const RoadSegment& segment(SegmentId id) const;
  const std::vector<RoadSegment>& segments() const { return segments_; }

  /// All topological edges (the sparse A^t).
  const std::vector<TopoEdge>& topo_edges() const { return topo_edges_; }

  /// Bounding box over all segment endpoints.
  const geo::BoundingBox& bounding_box() const { return box_; }

  /// Midpoints of all segments, indexable by SegmentId.
  std::vector<geo::LatLng> Midpoints() const;

  /// Segment graph for routing/SPD ground truth: edge i->j with weight
  /// (length_i + length_j) / 2, i.e., midpoint-to-midpoint travel distance.
  graph::CsrGraph ToLengthWeightedGraph() const;

  /// Segment graph with the Eq. 1 type weights (used by weighted walks and
  /// the augmentation baselines).
  graph::CsrGraph ToTypeWeightedGraph() const;

  double MeanSegmentLength() const;

 private:
  friend class RoadNetworkBuilder;

  std::vector<RoadSegment> segments_;
  std::vector<TopoEdge> topo_edges_;
  geo::BoundingBox box_ = geo::BoundingBox::Empty();
};

/// Incremental construction: register intersections, then directed segments
/// between them; Build() derives lengths, radians, the bounding box and the
/// Eq. 1-weighted topological adjacency.
class RoadNetworkBuilder {
 public:
  /// Returns the node id.
  int64_t AddNode(const geo::LatLng& position);

  /// Returns the segment id. Nodes must already exist.
  SegmentId AddSegment(int64_t from_node, int64_t to_node, HighwayType type,
                       std::optional<int> speed_limit_kmh = std::nullopt);

  int64_t num_nodes() const { return static_cast<int64_t>(nodes_.size()); }
  int64_t num_segments() const { return static_cast<int64_t>(segments_.size()); }
  const geo::LatLng& node(int64_t id) const { return nodes_[static_cast<size_t>(id)]; }

  /// Finalises the network. The builder can keep being used afterwards
  /// (Build copies).
  RoadNetwork Build() const;

 private:
  struct PendingSegment {
    int64_t from_node;
    int64_t to_node;
    HighwayType type;
    std::optional<int> speed_limit_kmh;
  };

  std::vector<geo::LatLng> nodes_;
  std::vector<PendingSegment> segments_;
};

}  // namespace sarn::roadnet

#endif  // SARN_ROADNET_ROAD_NETWORK_H_
