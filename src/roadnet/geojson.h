// GeoJSON export of road networks, optionally colored by per-segment
// scalars (e.g., PCA components of learned embeddings). The output opens
// directly in geojson.io / QGIS / Kepler for visual inspection of what the
// embeddings learned.

#ifndef SARN_ROADNET_GEOJSON_H_
#define SARN_ROADNET_GEOJSON_H_

#include <optional>
#include <string>
#include <vector>

#include "roadnet/road_network.h"

namespace sarn::roadnet {

struct GeoJsonOptions {
  /// Optional per-segment scalar written as property "value" and mapped to
  /// a blue->red "color" property (hex). Size must equal num_segments.
  std::vector<double> values;
  /// Include type/length/speed properties per feature.
  bool include_attributes = true;
};

/// Writes a FeatureCollection of LineString features (one per segment).
/// Returns false on I/O failure.
bool ExportGeoJson(const RoadNetwork& network, const std::string& path,
                   const GeoJsonOptions& options = {});

/// Maps a value in [min, max] to a "#rrggbb" blue->red ramp.
std::string ValueToHexColor(double value, double min_value, double max_value);

}  // namespace sarn::roadnet

#endif  // SARN_ROADNET_GEOJSON_H_
