#include "roadnet/io.h"

#include <unordered_map>

#include "common/csv.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace sarn::roadnet {

bool SaveRoadNetworkCsv(const RoadNetwork& network, const std::string& path) {
  CsvTable table;
  table.header = {"from_node", "to_node",  "type",    "speed_limit",
                  "start_lat", "start_lng", "end_lat", "end_lng"};
  table.rows.reserve(static_cast<size_t>(network.num_segments()));
  for (const RoadSegment& s : network.segments()) {
    table.rows.push_back({
        std::to_string(s.from_node),
        std::to_string(s.to_node),
        HighwayName(s.type),
        s.speed_limit_kmh.has_value() ? std::to_string(*s.speed_limit_kmh) : "",
        FormatDouble(s.start.lat, 7),
        FormatDouble(s.start.lng, 7),
        FormatDouble(s.end.lat, 7),
        FormatDouble(s.end.lng, 7),
    });
  }
  return WriteCsvFile(path, table);
}

std::optional<RoadNetwork> LoadRoadNetworkCsv(const std::string& path) {
  std::optional<CsvTable> table = ReadCsvFile(path, /*has_header=*/true);
  if (!table.has_value()) return std::nullopt;
  if (table->header.size() != 8) {
    SARN_LOG(Error) << "bad header in " << path;
    return std::nullopt;
  }
  RoadNetworkBuilder builder;
  std::unordered_map<int64_t, int64_t> node_remap;  // File node id -> builder id.
  auto node_of = [&](int64_t file_id, const geo::LatLng& position) {
    auto it = node_remap.find(file_id);
    if (it != node_remap.end()) return it->second;
    int64_t id = builder.AddNode(position);
    node_remap.emplace(file_id, id);
    return id;
  };
  for (const auto& row : table->rows) {
    if (row.size() != 8) return std::nullopt;
    auto from = ParseInt(row[0]);
    auto to = ParseInt(row[1]);
    auto type = HighwayFromName(row[2]);
    auto start_lat = ParseDouble(row[4]);
    auto start_lng = ParseDouble(row[5]);
    auto end_lat = ParseDouble(row[6]);
    auto end_lng = ParseDouble(row[7]);
    if (!from || !to || !type || !start_lat || !start_lng || !end_lat || !end_lng) {
      SARN_LOG(Error) << "malformed row in " << path;
      return std::nullopt;
    }
    std::optional<int> speed;
    if (!Trim(row[3]).empty()) {
      auto parsed = ParseInt(row[3]);
      if (!parsed) return std::nullopt;
      speed = static_cast<int>(*parsed);
    }
    int64_t from_id = node_of(*from, geo::LatLng{*start_lat, *start_lng});
    int64_t to_id = node_of(*to, geo::LatLng{*end_lat, *end_lng});
    builder.AddSegment(from_id, to_id, *type, speed);
  }
  return builder.Build();
}

}  // namespace sarn::roadnet
