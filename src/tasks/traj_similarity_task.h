// Downstream task 2: trajectory similarity prediction (paper §5.2.2).
//
// Each trajectory is a (map-matched, truncated) sequence of road segments.
// A 2-layer GRU over the frozen segment embeddings produces a trajectory
// embedding; the L1 distance between two trajectory embeddings predicts
// their distance, trained by regression against the discrete Fréchet
// distance of the matched polylines (the paper's ground-truth metric). We
// report HR@5, HR@20 and R5@20 over the test set, ranking each test
// trajectory's peers by predicted distance. NEUTRAJ (which owns its segment
// table) is evaluated through the same ranking harness.

#ifndef SARN_TASKS_TRAJ_SIMILARITY_TASK_H_
#define SARN_TASKS_TRAJ_SIMILARITY_TASK_H_

#include <cstdint>
#include <map>
#include <vector>

#include "baselines/neutraj_lite.h"
#include "geo/point.h"
#include "roadnet/road_network.h"
#include "tasks/embedding_source.h"
#include "tasks/splits.h"
#include "traj/similarity_metrics.h"
#include "traj/trajectory.h"

namespace sarn::tasks {

struct TrajSimConfig {
  uint64_t seed = 71;
  int64_t gru_hidden = 64;
  int gru_layers = 2;
  int epochs = 6;
  int pairs_per_epoch = 1000;
  int batch_pairs = 24;
  float learning_rate = 0.01f;
  /// L2-normalise segment embeddings before the GRU (applied uniformly to
  /// every method; differentiable for trainable sources).
  bool normalize_embeddings = true;
  /// Ground-truth trajectory distance (paper default: discrete Fréchet;
  /// §5.2.2 notes the metric is replaceable — DTW/Hausdorff also supported).
  traj::SimilarityMetric metric = traj::SimilarityMetric::kFrechet;
};

struct TrajSimResult {
  double hr5 = 0.0;
  double hr20 = 0.0;
  double r5_20 = 0.0;
  int64_t num_test = 0;
};

class TrajectorySimilarityTask {
 public:
  /// Requires >= 30 trajectories so that the test split can rank top-20.
  TrajectorySimilarityTask(const roadnet::RoadNetwork& network,
                           std::vector<traj::MatchedTrajectory> trajectories,
                           const TrajSimConfig& config);

  /// Trains the GRU head on the source's embeddings and reports ranking
  /// metrics over the test split.
  TrajSimResult Evaluate(const EmbeddingSource& source) const;

  /// NEUTRAJ-lite: its own segment table + GRU, trained on the same split
  /// and judged by the same harness.
  TrajSimResult EvaluateNeutraj(const baselines::NeutrajLiteConfig& config) const;

  /// Ground-truth distance between two trajectories under the configured
  /// metric (cached).
  double GroundTruthDistance(size_t a, size_t b) const;

  size_t num_trajectories() const { return sequences_.size(); }
  const Split& split() const { return split_; }

 private:
  TrajSimResult RankTestSet(const tensor::Tensor& test_embeddings) const;

  const roadnet::RoadNetwork* network_;
  TrajSimConfig config_;
  std::vector<std::vector<int64_t>> sequences_;
  std::vector<std::vector<geo::LatLng>> polylines_;
  Split split_;
  mutable std::map<std::pair<size_t, size_t>, double> frechet_cache_;
  // True rankings among test items, computed once: true_ranking_[q] lists
  // the other test-set positions ordered by ground-truth distance.
  std::vector<std::vector<int64_t>> true_ranking_;
};

}  // namespace sarn::tasks

#endif  // SARN_TASKS_TRAJ_SIMILARITY_TASK_H_
