// Top-k query serving over learned embeddings.
//
// The paper's motivation (§1) is that embeddings turn graph traversals into
// linear vector scans. This index is that serving layer: it holds an
// embedding matrix (optionally L2-normalised) and answers top-k most-similar
// queries under cosine or L1 distance with an exact brute-force scan —
// O(n d) per query, cache-friendly, and deterministic.
//
// The core entry point is QueryBatch: a whole micro-batch of queries is
// answered with one multi-query scan through the runtime-dispatched SIMD
// kernels of src/tensor/simd/ (AVX2/NEON with a bitwise-identical scalar
// fallback — DESIGN.md §12). The scan is fused with top-k selection: rows
// are streamed in tiles through blocks of up to simd::kMaxQueryBlock queries
// (each row load feeds four accumulator sets) and accumulated straight into
// per-query top-k heaps, so no [batch, n] score matrix is ever materialised.
// The classic single-shot QueryById/QueryByVector calls are thin wrappers
// over a batch of one, so a batched answer is bitwise identical to the
// sequential one — the serve layer (src/serve/) relies on this to batch
// transparently.
//
// Precision: kFloat32 stores the (normalised) float rows. kInt8 stores
// ggml-style symmetric per-row quantized rows — int8 codes plus one float
// scale per row (cosine) or one shared scale (L1; distances do not factor
// through per-row scales) — cutting index memory ~4x and feeding the 32-wide
// int8 SIMD lanes. Quantized answers approximate the float index; the
// recall@10 >= 0.99 contract is pinned by quantized_index_test.
//
// Thread safety: an EmbeddingIndex is immutable after construction; all
// query methods are const and safe to call concurrently from any number of
// threads. The serve layer hot-swaps whole indexes via shared_ptr.

#ifndef SARN_TASKS_EMBEDDING_INDEX_H_
#define SARN_TASKS_EMBEDDING_INDEX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace sarn::tasks {

enum class IndexMetric {
  kCosine = 0,  // Higher is more similar.
  kL1 = 1,      // Lower is more similar.
};

enum class IndexPrecision {
  kFloat32 = 0,  // Exact float scan.
  kInt8 = 1,     // Symmetric int8 quantized scan (~4x smaller, approximate).
};

/// Stable lowercase name ("float32", "int8") for logs, stats and metrics.
const char* PrecisionName(IndexPrecision precision);

struct Neighbor {
  int64_t id = -1;
  /// Similarity score for kCosine; negative L1 distance for kL1 (so that
  /// higher always means more similar).
  double score = 0.0;
};

/// One query of a batch: either a stored row (by id, the row itself is
/// excluded from its own result) or an external vector (nothing excluded).
struct IndexQuery {
  /// >= 0: query by stored row id; `vector` is ignored.
  int64_t id = -1;
  /// Used when id < 0; dimension must match the index.
  std::vector<float> vector;

  static IndexQuery ById(int64_t id) {
    IndexQuery q;
    q.id = id;
    return q;
  }
  static IndexQuery ByVector(std::vector<float> v) {
    IndexQuery q;
    q.vector = std::move(v);
    return q;
  }
};

class EmbeddingIndex {
 public:
  /// Copies (and for cosine, L2-normalises) the embedding rows; kInt8
  /// additionally quantizes them and drops the float copy entirely.
  EmbeddingIndex(const tensor::Tensor& embeddings, IndexMetric metric,
                 IndexPrecision precision = IndexPrecision::kFloat32);

  /// Adopts an already-prepared scan payload without copying it — the
  /// zero-copy seam the mmap snapshot loader (src/snapshot/) uses. The
  /// storages are typically Storage::External views into a mapped file and
  /// must hold exactly the bytes the heap constructor would have produced
  /// (normalised/quantized rows), so queries are bitwise identical to the
  /// heap-built index. `payload_owner` is held for the index's lifetime and
  /// keeps the mapping (or any other byte owner) alive.
  ///  * kFloat32: `rows_or_codes` holds the [n, d] float rows; `scales` empty.
  ///  * kInt8 cosine: `rows_or_codes` holds the [n, d] int8 codes (byte
  ///    payload riding in a float storage), `scales` the [n] per-row scales.
  ///  * kInt8 L1: codes plus `shared_scale`; `scales` empty.
  static std::shared_ptr<const EmbeddingIndex> Adopt(
      int64_t n, int64_t d, IndexMetric metric, IndexPrecision precision,
      tensor::Storage rows_or_codes, tensor::Storage scales, float shared_scale,
      std::shared_ptr<const void> payload_owner);

  /// Answers every query of the batch with one multi-query fused scan, best
  /// neighbor first. k is clamped per query to n - 1 (by-id, self excluded)
  /// or n (by-vector). result[i] corresponds to queries[i]. Scores are
  /// bitwise identical to a batch of one regardless of batch composition:
  /// every (query, row) score is an independent fixed-order reduction.
  std::vector<std::vector<Neighbor>> QueryBatch(std::span<const IndexQuery> queries,
                                                int k) const;

  /// Top-k neighbors of row `query_id` (the row itself is excluded),
  /// best first. Wrapper over QueryBatch with a batch of one.
  std::vector<Neighbor> QueryById(int64_t query_id, int k) const;

  /// Top-k neighbors of an external query vector (dimension must match).
  /// Wrapper over QueryBatch with a batch of one.
  std::vector<Neighbor> QueryByVector(const std::vector<float>& query, int k) const;

  int64_t size() const { return n_; }
  int64_t dim() const { return d_; }
  IndexMetric metric() const { return metric_; }
  IndexPrecision precision() const { return precision_; }

  /// Bytes held by the scan payload (rows + quantization scales) — the
  /// number the sarn.serve.index_bytes gauge reports. kInt8 is ~4x smaller
  /// than kFloat32 for the same matrix.
  size_t index_bytes() const;

  /// True when the scan payload is adopted external memory (an mmap'd
  /// snapshot) rather than pooled copies.
  bool adopted() const { return payload_owner_ != nullptr; }

  // --- Serialization access (src/snapshot/) ----------------------------------
  // Raw views of the prepared scan payload, exactly as the kernels consume
  // it. The snapshot writer serialises these bytes verbatim so a loaded
  // index answers queries bitwise identically.

  /// kFloat32 only: the [n, d] scan rows (normalised for cosine); empty at
  /// kInt8.
  std::span<const float> rows_f32() const {
    return {data_.data(), data_.size()};
  }
  /// kInt8 only: the [n, d] int8 codes; empty at kFloat32.
  std::span<const int8_t> codes_i8() const {
    if (precision_ != IndexPrecision::kInt8) return {};
    return {reinterpret_cast<const int8_t*>(data_q_.data()),
            static_cast<size_t>(n_) * static_cast<size_t>(d_)};
  }
  /// kInt8 cosine only: the [n] per-row scales; empty otherwise.
  std::span<const float> row_scales_i8() const {
    return {scales_.data(), scales_.size()};
  }
  /// kInt8 L1 only: the index-wide scale (0 otherwise).
  float shared_scale_i8() const { return shared_scale_; }

 private:
  EmbeddingIndex() = default;  // Adopt() fills the members directly.

  void ScanFloat(std::span<const IndexQuery> queries, int k,
                 const int64_t* excludes,
                 std::vector<std::vector<Neighbor>>* results) const;
  void ScanInt8(std::span<const IndexQuery> queries, int k,
                const int64_t* excludes,
                std::vector<std::vector<Neighbor>>* results) const;

  IndexMetric metric_;
  IndexPrecision precision_;
  int64_t n_ = 0;
  int64_t d_ = 0;
  // Pooled snapshot storage: all buffers recycle through the BufferPool when
  // the serve layer hot-swaps indexes.
  tensor::Storage data_;    // kFloat32: row-major [n, d], normalised for cosine.
  tensor::Storage data_q_;  // kInt8: row-major [n, d] int8 codes (raw bytes).
  tensor::Storage scales_;  // kInt8 cosine: [n] per-row scales.
  float shared_scale_ = 0.0f;  // kInt8 L1: one scale for the whole index.
  // Keeps adopted external payloads (the mmap'd snapshot) alive; null for
  // heap-built indexes.
  std::shared_ptr<const void> payload_owner_;
};

}  // namespace sarn::tasks

#endif  // SARN_TASKS_EMBEDDING_INDEX_H_
