// Top-k query serving over learned embeddings.
//
// The paper's motivation (§1) is that embeddings turn graph traversals into
// linear vector scans. This index is that serving layer: it holds an
// embedding matrix (optionally L2-normalised) and answers top-k most-similar
// queries under cosine or L1 distance with an exact brute-force scan —
// O(n d) per query, cache-friendly, and deterministic, which at road-network
// sizes (tens of thousands of rows) answers in well under a millisecond.

#ifndef SARN_TASKS_EMBEDDING_INDEX_H_
#define SARN_TASKS_EMBEDDING_INDEX_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace sarn::tasks {

enum class IndexMetric {
  kCosine = 0,  // Higher is more similar.
  kL1 = 1,      // Lower is more similar.
};

struct Neighbor {
  int64_t id = -1;
  /// Similarity score for kCosine; negative L1 distance for kL1 (so that
  /// higher always means more similar).
  double score = 0.0;
};

class EmbeddingIndex {
 public:
  /// Copies (and for cosine, L2-normalises) the embedding rows.
  EmbeddingIndex(const tensor::Tensor& embeddings, IndexMetric metric);

  /// Top-k neighbors of row `query_id` (the row itself is excluded),
  /// best first. k is clamped to n - 1.
  std::vector<Neighbor> QueryById(int64_t query_id, int k) const;

  /// Top-k neighbors of an external query vector (dimension must match).
  std::vector<Neighbor> QueryByVector(const std::vector<float>& query, int k) const;

  int64_t size() const { return n_; }
  int64_t dim() const { return d_; }
  IndexMetric metric() const { return metric_; }

 private:
  std::vector<Neighbor> TopK(const std::vector<float>& query, int k,
                             int64_t exclude) const;

  IndexMetric metric_;
  int64_t n_ = 0;
  int64_t d_ = 0;
  std::vector<float> data_;  // Row-major, normalised for cosine.
};

}  // namespace sarn::tasks

#endif  // SARN_TASKS_EMBEDDING_INDEX_H_
