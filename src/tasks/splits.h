// Train/validation/test index splits (the paper uses 6:2:2 throughout).

#ifndef SARN_TASKS_SPLITS_H_
#define SARN_TASKS_SPLITS_H_

#include <cstdint>
#include <vector>

namespace sarn::tasks {

struct Split {
  std::vector<int64_t> train;
  std::vector<int64_t> val;
  std::vector<int64_t> test;
};

/// Shuffles [0, n) with `seed` and splits by the given fractions
/// (train_fraction + val_fraction <= 1; the remainder is test).
Split MakeSplit(int64_t n, uint64_t seed, double train_fraction = 0.6,
                double val_fraction = 0.2);

/// Same, but over a caller-provided id list.
Split MakeSplitOf(std::vector<int64_t> ids, uint64_t seed, double train_fraction = 0.6,
                  double val_fraction = 0.2);

}  // namespace sarn::tasks

#endif  // SARN_TASKS_SPLITS_H_
