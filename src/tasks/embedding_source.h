// Uniform access to road-segment embeddings for downstream tasks.
//
// The paper evaluates three regimes (§5.2):
//  * frozen self-supervised embeddings (node2vec, SRN2Vec, GraphCL, GCA,
//    SARN, and RNE reused across tasks) — FrozenEmbeddingSource;
//  * SARN* fine-tuning, where the final GAT layer trains jointly with the
//    task head — SarnFineTuneSource;
//  * fully supervised end-to-end models (HRNR) — HrnrSource.
// A task trains its prediction head plus whatever TrainableParameters() the
// source exposes, calling Forward() each step.
//
// Thread-safety contract (per source, see each class): a source is
// *shareable* when concurrent Forward() calls are safe without external
// locking — the serve layer (src/serve/) requires a shareable source to
// build query snapshots from. Trainable sources mutate model state on
// Forward() and are single-threaded by contract. Forward() and dim() are
// const on the source object itself: evaluating a source never changes
// which embeddings it denotes, even when a trainable backing model advances.

#ifndef SARN_TASKS_EMBEDDING_SOURCE_H_
#define SARN_TASKS_EMBEDDING_SOURCE_H_

#include <vector>

#include "baselines/hrnr_lite.h"
#include "core/sarn_model.h"
#include "tensor/tensor.h"

namespace sarn::tasks {

class EmbeddingSource {
 public:
  virtual ~EmbeddingSource() = default;

  /// Segment embeddings [n, dim]. Gradient-tracked when the source is
  /// trainable; may be cached when it is not.
  virtual tensor::Tensor Forward() const = 0;

  /// Source parameters the task should optimise jointly (empty = frozen).
  virtual std::vector<tensor::Tensor> TrainableParameters() const { return {}; }

  virtual int64_t dim() const = 0;
};

/// Precomputed, frozen embeddings.
///
/// Thread safety: immutable after construction — Forward() returns the same
/// tensor every call with no side effects, so one frozen source is safe to
/// share across any number of serve/query threads.
class FrozenEmbeddingSource : public EmbeddingSource {
 public:
  explicit FrozenEmbeddingSource(tensor::Tensor embeddings)
      : embeddings_(std::move(embeddings)) {}

  tensor::Tensor Forward() const override { return embeddings_; }
  int64_t dim() const override { return embeddings_.shape()[1]; }

 private:
  tensor::Tensor embeddings_;
};

/// SARN*: re-encodes through the trained SARN encoder each step; only the
/// final GAT layer's parameters are trainable (paper §5.2).
///
/// The pre-trained final-layer weights are snapshotted at construction and
/// restored on destruction, so each task fine-tunes from the same
/// self-supervised starting point (the paper fine-tunes per task); create
/// one source per task evaluation.
///
/// Thread safety: single-threaded training only. Forward() runs the encoder
/// and records autograd state on the shared model, so concurrent calls (or
/// serving from this source while it trains) are undefined; freeze the
/// trained embeddings into a FrozenEmbeddingSource to serve them.
class SarnFineTuneSource : public EmbeddingSource {
 public:
  explicit SarnFineTuneSource(core::SarnModel& model) : model_(&model) {
    for (const tensor::Tensor& p : model_->FineTuneParameters()) {
      snapshot_.push_back(p.data().ToVector());
    }
  }

  ~SarnFineTuneSource() override { Reset(); }

  /// Restores the snapshotted pre-fine-tuning weights.
  void Reset() {
    std::vector<tensor::Tensor> params = model_->FineTuneParameters();
    for (size_t i = 0; i < params.size(); ++i) {
      params[i].mutable_data() = snapshot_[i];
    }
  }

  tensor::Tensor Forward() const override { return model_->EncodeForFineTune(); }
  std::vector<tensor::Tensor> TrainableParameters() const override {
    return model_->FineTuneParameters();
  }
  int64_t dim() const override { return model_->embedding_dim(); }

 private:
  core::SarnModel* model_;
  std::vector<std::vector<float>> snapshot_;
};

/// HRNR: the whole hierarchical encoder trains end-to-end with the task.
///
/// Thread safety: single-threaded training only, like SarnFineTuneSource —
/// Forward() builds the model's autograd graph.
class HrnrSource : public EmbeddingSource {
 public:
  explicit HrnrSource(baselines::HrnrLite& model) : model_(&model) {}

  tensor::Tensor Forward() const override { return model_->Forward(); }
  std::vector<tensor::Tensor> TrainableParameters() const override {
    return model_->Parameters();
  }
  int64_t dim() const override { return model_->embedding_dim(); }

 private:
  baselines::HrnrLite* model_;
};

}  // namespace sarn::tasks

#endif  // SARN_TASKS_EMBEDDING_SOURCE_H_
