#include "tasks/splits.h"

#include <numeric>

#include "common/check.h"
#include "common/rng.h"

namespace sarn::tasks {

Split MakeSplit(int64_t n, uint64_t seed, double train_fraction, double val_fraction) {
  std::vector<int64_t> ids(static_cast<size_t>(n));
  std::iota(ids.begin(), ids.end(), 0);
  return MakeSplitOf(std::move(ids), seed, train_fraction, val_fraction);
}

Split MakeSplitOf(std::vector<int64_t> ids, uint64_t seed, double train_fraction,
                  double val_fraction) {
  SARN_CHECK(train_fraction >= 0 && val_fraction >= 0 &&
             train_fraction + val_fraction <= 1.0);
  Rng rng(seed);
  rng.Shuffle(ids);
  size_t n = ids.size();
  size_t train_end = static_cast<size_t>(train_fraction * n);
  size_t val_end = train_end + static_cast<size_t>(val_fraction * n);
  Split split;
  split.train.assign(ids.begin(), ids.begin() + static_cast<int64_t>(train_end));
  split.val.assign(ids.begin() + static_cast<int64_t>(train_end),
                   ids.begin() + static_cast<int64_t>(val_end));
  split.test.assign(ids.begin() + static_cast<int64_t>(val_end), ids.end());
  return split;
}

}  // namespace sarn::tasks
