#include "tasks/metrics.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <unordered_set>

#include "common/check.h"

namespace sarn::tasks {

double MicroF1(const std::vector<int64_t>& predicted, const std::vector<int64_t>& actual) {
  SARN_CHECK_EQ(predicted.size(), actual.size());
  SARN_CHECK(!actual.empty());
  size_t correct = 0;
  for (size_t i = 0; i < actual.size(); ++i) correct += predicted[i] == actual[i] ? 1 : 0;
  return static_cast<double>(correct) / actual.size();
}

double MacroF1(const std::vector<int64_t>& predicted, const std::vector<int64_t>& actual) {
  SARN_CHECK_EQ(predicted.size(), actual.size());
  SARN_CHECK(!actual.empty());
  std::set<int64_t> classes(actual.begin(), actual.end());
  double f1_sum = 0.0;
  for (int64_t c : classes) {
    int64_t tp = 0, fp = 0, fn = 0;
    for (size_t i = 0; i < actual.size(); ++i) {
      bool predicted_c = predicted[i] == c;
      bool actual_c = actual[i] == c;
      tp += (predicted_c && actual_c) ? 1 : 0;
      fp += (predicted_c && !actual_c) ? 1 : 0;
      fn += (!predicted_c && actual_c) ? 1 : 0;
    }
    double precision = tp + fp > 0 ? static_cast<double>(tp) / (tp + fp) : 0.0;
    double recall = tp + fn > 0 ? static_cast<double>(tp) / (tp + fn) : 0.0;
    f1_sum += precision + recall > 0 ? 2.0 * precision * recall / (precision + recall)
                                     : 0.0;
  }
  return f1_sum / static_cast<double>(classes.size());
}

namespace {

// Binary AUC by the Mann-Whitney rank statistic with midrank ties.
double BinaryAuc(const std::vector<double>& scores, const std::vector<bool>& positive) {
  size_t n = scores.size();
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });
  // Midranks.
  std::vector<double> rank(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    double mid = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) rank[order[k]] = mid;
    i = j + 1;
  }
  double positive_rank_sum = 0.0;
  int64_t pos = 0;
  for (size_t k = 0; k < n; ++k) {
    if (positive[k]) {
      positive_rank_sum += rank[k];
      ++pos;
    }
  }
  int64_t neg = static_cast<int64_t>(n) - pos;
  if (pos == 0 || neg == 0) return -1.0;  // Undefined.
  return (positive_rank_sum - pos * (pos + 1.0) / 2.0) /
         (static_cast<double>(pos) * neg);
}

}  // namespace

double MacroAuc(const std::vector<std::vector<double>>& scores,
                const std::vector<int64_t>& actual, int64_t num_classes) {
  SARN_CHECK_EQ(scores.size(), actual.size());
  SARN_CHECK(!actual.empty());
  double total = 0.0;
  int used = 0;
  for (int64_t c = 0; c < num_classes; ++c) {
    std::vector<double> class_scores(actual.size());
    std::vector<bool> positive(actual.size());
    for (size_t i = 0; i < actual.size(); ++i) {
      SARN_CHECK_GT(static_cast<int64_t>(scores[i].size()), c);
      class_scores[i] = scores[i][static_cast<size_t>(c)];
      positive[i] = actual[i] == c;
    }
    double auc = BinaryAuc(class_scores, positive);
    if (auc >= 0.0) {
      total += auc;
      ++used;
    }
  }
  return used > 0 ? total / used : 0.0;
}

double NormalizedMutualInformation(const std::vector<int64_t>& a,
                                   const std::vector<int64_t>& b) {
  SARN_CHECK_EQ(a.size(), b.size());
  SARN_CHECK(!a.empty());
  double n = static_cast<double>(a.size());
  std::map<int64_t, double> pa, pb;
  std::map<std::pair<int64_t, int64_t>, double> joint;
  for (size_t i = 0; i < a.size(); ++i) {
    pa[a[i]] += 1.0;
    pb[b[i]] += 1.0;
    joint[{a[i], b[i]}] += 1.0;
  }
  double mutual = 0.0;
  for (const auto& [key, count] : joint) {
    double pxy = count / n;
    double px = pa[key.first] / n;
    double py = pb[key.second] / n;
    mutual += pxy * std::log(pxy / (px * py));
  }
  auto entropy = [n](const std::map<int64_t, double>& p) {
    double h = 0.0;
    for (const auto& [label, count] : p) {
      double prob = count / n;
      h -= prob * std::log(prob);
    }
    return h;
  };
  double ha = entropy(pa), hb = entropy(pb);
  if (ha <= 0.0 || hb <= 0.0) return ha == hb ? 1.0 : 0.0;
  return mutual / std::sqrt(ha * hb);
}

double HitRatioAtK(const std::vector<int64_t>& predicted_ranking,
                   const std::vector<int64_t>& true_ranking, size_t k) {
  SARN_CHECK_GE(predicted_ranking.size(), k);
  SARN_CHECK_GE(true_ranking.size(), k);
  std::unordered_set<int64_t> truth(true_ranking.begin(),
                                    true_ranking.begin() + static_cast<int64_t>(k));
  size_t hits = 0;
  for (size_t i = 0; i < k; ++i) hits += truth.count(predicted_ranking[i]) > 0 ? 1 : 0;
  return static_cast<double>(hits) / static_cast<double>(k);
}

double RecallTopAInB(const std::vector<int64_t>& predicted_ranking,
                     const std::vector<int64_t>& true_ranking, size_t a, size_t b) {
  SARN_CHECK_GE(predicted_ranking.size(), b);
  SARN_CHECK_GE(true_ranking.size(), a);
  std::unordered_set<int64_t> truth(true_ranking.begin(),
                                    true_ranking.begin() + static_cast<int64_t>(a));
  size_t hits = 0;
  for (size_t i = 0; i < b; ++i) hits += truth.count(predicted_ranking[i]) > 0 ? 1 : 0;
  return static_cast<double>(hits) / static_cast<double>(a);
}

double MeanAbsoluteError(const std::vector<double>& predicted,
                         const std::vector<double>& actual) {
  SARN_CHECK_EQ(predicted.size(), actual.size());
  SARN_CHECK(!actual.empty());
  double total = 0.0;
  for (size_t i = 0; i < actual.size(); ++i) total += std::fabs(predicted[i] - actual[i]);
  return total / static_cast<double>(actual.size());
}

double MeanRelativeError(const std::vector<double>& predicted,
                         const std::vector<double>& actual, double floor) {
  SARN_CHECK_EQ(predicted.size(), actual.size());
  SARN_CHECK(!actual.empty());
  double total = 0.0;
  for (size_t i = 0; i < actual.size(); ++i) {
    total += std::fabs(predicted[i] - actual[i]) / std::max(actual[i], floor);
  }
  return total / static_cast<double>(actual.size());
}

}  // namespace sarn::tasks
