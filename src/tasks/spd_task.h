// Downstream task 3: shortest-path distance prediction (paper §5.2.3).
//
// Ground truth comes from Dijkstra on the length-weighted segment graph
// (midpoint-to-midpoint distances, directed). Following the paper, an FFN
// with one hidden layer of 20 units predicts the distance from the
// per-dimension DIFFERENCE of the two segment embeddings, trained with MSE
// on sampled reachable OD pairs; we report MAE (meters) and MRE.

#ifndef SARN_TASKS_SPD_TASK_H_
#define SARN_TASKS_SPD_TASK_H_

#include <cstdint>
#include <vector>

#include "roadnet/road_network.h"
#include "tasks/embedding_source.h"

namespace sarn::tasks {

struct SpdConfig {
  uint64_t seed = 61;
  /// Sampled reachable OD pairs (paper: 1 permille of all pairs for
  /// training, 0.01 permille for testing; we cap for bench speed).
  int num_train_pairs = 4000;
  int num_test_pairs = 800;
  int64_t hidden = 20;
  int epochs = 150;
  /// Epoch budget for trainable sources (each batch re-encodes the graph).
  int epochs_trainable = 25;
  int batch_size = 512;
  float learning_rate = 0.01f;
};

struct SpdResult {
  double mae_meters = 0.0;
  double mre = 0.0;  // Fractional (0.1 = 10%).
  int64_t num_test_pairs = 0;
};

class SpdTask {
 public:
  SpdTask(const roadnet::RoadNetwork& network, const SpdConfig& config);

  SpdResult Evaluate(const EmbeddingSource& source) const;

  /// The sampled (origin, destination, meters) triples (tests/inspection).
  const std::vector<std::tuple<int64_t, int64_t, double>>& train_pairs() const {
    return train_pairs_;
  }
  const std::vector<std::tuple<int64_t, int64_t, double>>& test_pairs() const {
    return test_pairs_;
  }

 private:
  SpdConfig config_;
  std::vector<std::tuple<int64_t, int64_t, double>> train_pairs_;
  std::vector<std::tuple<int64_t, int64_t, double>> test_pairs_;
  double mean_distance_km_ = 1.0;
};

}  // namespace sarn::tasks

#endif  // SARN_TASKS_SPD_TASK_H_
