#include "tasks/travel_time_task.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "nn/gru.h"
#include "nn/linear.h"
#include "nn/losses.h"
#include "nn/sequence_util.h"
#include "tasks/metrics.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"

namespace sarn::tasks {

using tensor::Tensor;

double SimulatedTravelTimeSeconds(const roadnet::RoadNetwork& network,
                                  const std::vector<roadnet::SegmentId>& route) {
  double total = 0.0;
  for (roadnet::SegmentId id : route) {
    const roadnet::RoadSegment& s = network.segment(id);
    const std::vector<int>& pool = roadnet::TypicalSpeedLimits(s.type);
    double speed_ms = pool[pool.size() / 2] * 0.75 / 3.6;  // Generator's cruise model.
    total += s.length_meters / std::max(speed_ms, 0.5);
  }
  return total;
}

TravelTimeTask::TravelTimeTask(const roadnet::RoadNetwork& network,
                               std::vector<std::vector<int64_t>> routes,
                               const TravelTimeConfig& config)
    : network_(&network), config_(config) {
  double sum = 0.0;
  for (auto& route : routes) {
    if (route.size() < 2) continue;
    routes_.push_back(std::move(route));
    times_s_.push_back(SimulatedTravelTimeSeconds(network, routes_.back()));
    sum += times_s_.back();
  }
  SARN_CHECK_GE(routes_.size(), 20u);
  mean_time_s_ = std::max(1.0, sum / static_cast<double>(routes_.size()));
  split_ = MakeSplit(static_cast<int64_t>(routes_.size()), config.seed);
}

TravelTimeResult TravelTimeTask::Evaluate(const EmbeddingSource& source) const {
  Rng rng(config_.seed + 1);
  nn::Gru gru(source.dim(), config_.gru_hidden, config_.gru_layers, rng);
  nn::Linear head(config_.gru_hidden, 1, rng);
  std::vector<Tensor> parameters = gru.Parameters();
  for (const Tensor& p : head.Parameters()) parameters.push_back(p);
  for (const Tensor& p : source.TrainableParameters()) parameters.push_back(p);
  tensor::Adam optimizer(parameters, config_.learning_rate);

  bool trainable_source = !source.TrainableParameters().empty();
  Tensor frozen_embeddings;
  if (!trainable_source) frozen_embeddings = source.Forward();

  auto predict = [&](const std::vector<int64_t>& route_ids) {
    Tensor embeddings = trainable_source ? source.Forward() : frozen_embeddings;
    std::vector<std::vector<int64_t>> batch;
    for (int64_t r : route_ids) batch.push_back(routes_[static_cast<size_t>(r)]);
    Tensor encoded = nn::EmbedSequences(gru, embeddings, batch);
    int64_t m = static_cast<int64_t>(route_ids.size());
    return tensor::Reshape(head.Forward(encoded), {m});
  };

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    std::vector<int64_t> order = split_.train;
    rng.Shuffle(order);
    for (size_t begin = 0; begin < order.size();
         begin += static_cast<size_t>(config_.batch_routes)) {
      size_t end = std::min(order.size(), begin + static_cast<size_t>(config_.batch_routes));
      std::vector<int64_t> batch(order.begin() + static_cast<int64_t>(begin),
                                 order.begin() + static_cast<int64_t>(end));
      std::vector<float> targets;
      for (int64_t r : batch) {
        targets.push_back(
            static_cast<float>(times_s_[static_cast<size_t>(r)] / mean_time_s_));
      }
      optimizer.ZeroGrad();
      Tensor loss = nn::MseLoss(
          predict(batch), Tensor::FromVector({static_cast<int64_t>(targets.size())},
                                             targets));
      loss.Backward();
      optimizer.Step();
    }
  }

  tensor::NoGradGuard guard;
  Tensor predictions = predict(split_.test);
  std::vector<double> predicted, actual;
  for (size_t i = 0; i < split_.test.size(); ++i) {
    predicted.push_back(
        std::max(0.0, static_cast<double>(predictions.at(static_cast<int64_t>(i)))) *
        mean_time_s_);
    actual.push_back(times_s_[static_cast<size_t>(split_.test[i])]);
  }
  TravelTimeResult result;
  result.mae_seconds = MeanAbsoluteError(predicted, actual);
  result.mape = MeanRelativeError(predicted, actual, /*floor=*/10.0);
  result.num_test = static_cast<int64_t>(split_.test.size());
  return result;
}

}  // namespace sarn::tasks
