#include "tasks/representation_quality.h"

#include <algorithm>
#include <cmath>
#include <iterator>

#include "common/check.h"

namespace sarn::tasks {
namespace {

// Normalised row accessor: returns unit row i of x into `out`.
void NormalizedRow(const tensor::Tensor& x, int64_t i, std::vector<double>& out) {
  int64_t d = x.shape()[1];
  out.resize(static_cast<size_t>(d));
  double sq = 0.0;
  for (int64_t j = 0; j < d; ++j) {
    out[static_cast<size_t>(j)] = x.at(i, j);
    sq += out[static_cast<size_t>(j)] * out[static_cast<size_t>(j)];
  }
  double inv = sq > 1e-16 ? 1.0 / std::sqrt(sq) : 0.0;
  for (double& v : out) v *= inv;
}

double SquaredDistance(const std::vector<double>& a, const std::vector<double>& b) {
  double total = 0.0;
  for (size_t j = 0; j < a.size(); ++j) {
    double diff = a[j] - b[j];
    total += diff * diff;
  }
  return total;
}

}  // namespace

double AlignmentLoss(const tensor::Tensor& embeddings,
                     const std::vector<std::pair<int64_t, int64_t>>& pairs) {
  SARN_CHECK_EQ(embeddings.rank(), 2);
  SARN_CHECK(!pairs.empty());
  std::vector<double> a, b;
  double total = 0.0;
  for (const auto& [i, j] : pairs) {
    NormalizedRow(embeddings, i, a);
    NormalizedRow(embeddings, j, b);
    total += SquaredDistance(a, b);
  }
  return total / static_cast<double>(pairs.size());
}

double UniformityLoss(const tensor::Tensor& embeddings, int num_samples, uint64_t seed,
                      double t) {
  SARN_CHECK_EQ(embeddings.rank(), 2);
  int64_t n = embeddings.shape()[0];
  SARN_CHECK_GT(n, 1);
  SARN_CHECK_GT(num_samples, 0);
  Rng rng(seed);
  std::vector<double> a, b;
  double sum = 0.0;
  for (int s = 0; s < num_samples; ++s) {
    int64_t i = rng.UniformInt(0, n - 1);
    int64_t j = rng.UniformInt(0, n - 1);
    while (j == i) j = rng.UniformInt(0, n - 1);
    NormalizedRow(embeddings, i, a);
    NormalizedRow(embeddings, j, b);
    sum += std::exp(-t * SquaredDistance(a, b));
  }
  return std::log(sum / num_samples);
}

double NeighborhoodStability(const tensor::Tensor& a, const tensor::Tensor& b,
                             int k, IndexMetric metric) {
  SARN_CHECK_EQ(a.rank(), 2);
  SARN_CHECK_EQ(b.rank(), 2);
  SARN_CHECK_EQ(a.shape()[0], b.shape()[0]);
  int64_t n = a.shape()[0];
  SARN_CHECK_GT(n, 1);
  SARN_CHECK_GT(k, 0);

  std::vector<IndexQuery> queries;
  queries.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) queries.push_back(IndexQuery::ById(i));

  EmbeddingIndex index_a(a, metric);
  EmbeddingIndex index_b(b, metric);
  std::vector<std::vector<Neighbor>> top_a = index_a.QueryBatch(queries, k);
  std::vector<std::vector<Neighbor>> top_b = index_b.QueryBatch(queries, k);

  double total = 0.0;
  std::vector<int64_t> ids_a, ids_b;
  for (int64_t i = 0; i < n; ++i) {
    ids_a.clear();
    ids_b.clear();
    for (const Neighbor& nb : top_a[static_cast<size_t>(i)]) ids_a.push_back(nb.id);
    for (const Neighbor& nb : top_b[static_cast<size_t>(i)]) ids_b.push_back(nb.id);
    std::sort(ids_a.begin(), ids_a.end());
    std::sort(ids_b.begin(), ids_b.end());
    std::vector<int64_t> common;
    std::set_intersection(ids_a.begin(), ids_a.end(), ids_b.begin(), ids_b.end(),
                          std::back_inserter(common));
    size_t unioned = ids_a.size() + ids_b.size() - common.size();
    total += unioned == 0 ? 1.0
                          : static_cast<double>(common.size()) /
                                static_cast<double>(unioned);
  }
  return total / static_cast<double>(n);
}

}  // namespace sarn::tasks
