// Extension task (the paper's stated future work, §5/§6): route travel-time
// estimation. Ground truth is the simulated driving time of a route (segment
// length over the class cruise speed, as the trajectory generator drives);
// the predictor is a GRU over frozen segment embeddings with a linear head,
// trained by regression. Reported as MAE (seconds) and MAPE.
//
// This exercises a contextual signal (speed/time) that is NOT part of the
// embedding inputs, on sequences — complementary to the paper's three tasks.

#ifndef SARN_TASKS_TRAVEL_TIME_TASK_H_
#define SARN_TASKS_TRAVEL_TIME_TASK_H_

#include <cstdint>
#include <vector>

#include "roadnet/road_network.h"
#include "tasks/embedding_source.h"
#include "tasks/splits.h"
#include "traj/trajectory.h"

namespace sarn::tasks {

struct TravelTimeConfig {
  uint64_t seed = 81;
  int64_t gru_hidden = 32;
  int gru_layers = 1;
  int epochs = 5;
  int batch_routes = 24;
  float learning_rate = 0.01f;
};

struct TravelTimeResult {
  double mae_seconds = 0.0;
  double mape = 0.0;  // Fractional.
  int64_t num_test = 0;
};

/// Simulated driving time of a route, seconds (matches the trajectory
/// generator's cruise model).
double SimulatedTravelTimeSeconds(const roadnet::RoadNetwork& network,
                                  const std::vector<roadnet::SegmentId>& route);

class TravelTimeTask {
 public:
  /// `routes` are segment sequences (e.g., MatchedTrajectory::segments).
  TravelTimeTask(const roadnet::RoadNetwork& network,
                 std::vector<std::vector<int64_t>> routes,
                 const TravelTimeConfig& config);

  TravelTimeResult Evaluate(const EmbeddingSource& source) const;

  const Split& split() const { return split_; }

 private:
  const roadnet::RoadNetwork* network_;
  TravelTimeConfig config_;
  std::vector<std::vector<int64_t>> routes_;
  std::vector<double> times_s_;  // Aligned ground truth.
  double mean_time_s_ = 1.0;
  Split split_;
};

}  // namespace sarn::tasks

#endif  // SARN_TASKS_TRAVEL_TIME_TASK_H_
