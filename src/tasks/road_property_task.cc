#include "tasks/road_property_task.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "nn/linear.h"
#include "nn/losses.h"
#include "tasks/metrics.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"

namespace sarn::tasks {

using tensor::Tensor;

RoadPropertyTask::RoadPropertyTask(const roadnet::RoadNetwork& network,
                                   const RoadPropertyConfig& config)
    : network_(&network), config_(config) {
  std::vector<int64_t> candidates;
  for (int64_t i = 0; i < network.num_segments(); ++i) {
    if (network.segment(i).speed_limit_kmh.has_value()) candidates.push_back(i);
  }
  if (config.max_labeled > 0 &&
      static_cast<int64_t>(candidates.size()) > config.max_labeled) {
    Rng rng(config.seed);
    rng.Shuffle(candidates);
    candidates.resize(static_cast<size_t>(config.max_labeled));
  }
  labeled_ids_ = std::move(candidates);
  SARN_CHECK_GE(labeled_ids_.size(), 10u) << "too few labeled segments";
  for (int64_t id : labeled_ids_) {
    int speed = *network.segment(id).speed_limit_kmh;
    class_of_speed_.emplace(speed, static_cast<int64_t>(class_of_speed_.size()));
  }
  // Re-number classes in sorted speed order for determinism.
  int64_t next = 0;
  for (auto& [speed, cls] : class_of_speed_) cls = next++;
  for (int64_t id : labeled_ids_) {
    labels_.push_back(class_of_speed_.at(*network.segment(id).speed_limit_kmh));
  }
  split_ = MakeSplit(static_cast<int64_t>(labeled_ids_.size()), config.seed + 1);
}

double RoadPropertyTask::TypeLabelNmi() const {
  std::vector<int64_t> types;
  types.reserve(labeled_ids_.size());
  for (int64_t id : labeled_ids_) {
    types.push_back(static_cast<int64_t>(network_->segment(id).type));
  }
  return NormalizedMutualInformation(types, labels_);
}

RoadPropertyResult RoadPropertyTask::Evaluate(const EmbeddingSource& source) const {
  Rng rng(config_.seed + 2);
  int64_t num_classes = this->num_classes();
  nn::Ffn classifier({source.dim(), config_.hidden, num_classes},
                     nn::Activation::kRelu, rng);
  std::vector<Tensor> parameters = classifier.Parameters();
  for (const Tensor& p : source.TrainableParameters()) parameters.push_back(p);
  tensor::Adam optimizer(parameters, config_.learning_rate);

  auto subset_labels = [&](const std::vector<int64_t>& subset) {
    std::vector<int64_t> out;
    out.reserve(subset.size());
    for (int64_t local : subset) out.push_back(labels_[static_cast<size_t>(local)]);
    return out;
  };
  auto subset_segment_ids = [&](const std::vector<int64_t>& subset) {
    std::vector<int64_t> out;
    out.reserve(subset.size());
    for (int64_t local : subset) out.push_back(labeled_ids_[static_cast<size_t>(local)]);
    return out;
  };

  std::vector<int64_t> train_segments = subset_segment_ids(split_.train);
  std::vector<int64_t> train_labels = subset_labels(split_.train);
  std::vector<int64_t> val_segments = subset_segment_ids(split_.val);
  std::vector<int64_t> val_labels = subset_labels(split_.val);
  std::vector<int64_t> test_segments = subset_segment_ids(split_.test);
  std::vector<int64_t> test_labels = subset_labels(split_.test);

  bool trainable_source = !source.TrainableParameters().empty();
  Tensor frozen_embeddings;
  if (!trainable_source) frozen_embeddings = source.Forward();

  auto logits_for = [&](const std::vector<int64_t>& segments) {
    Tensor embeddings = trainable_source ? source.Forward() : frozen_embeddings;
    return classifier.Forward(tensor::Rows(embeddings, segments));
  };
  auto predict = [&](const Tensor& logits) {
    std::vector<int64_t> predictions;
    int64_t m = logits.shape()[0];
    for (int64_t i = 0; i < m; ++i) {
      int64_t best = 0;
      for (int64_t c = 1; c < num_classes; ++c) {
        if (logits.at(i, c) > logits.at(i, best)) best = c;
      }
      predictions.push_back(best);
    }
    return predictions;
  };

  double best_val_f1 = -1.0;
  RoadPropertyResult best;
  best.num_classes = num_classes;
  best.num_labeled = num_labeled();
  int epochs = trainable_source ? config_.epochs_trainable : config_.epochs;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    optimizer.ZeroGrad();
    Tensor loss = nn::CrossEntropyWithLogits(logits_for(train_segments), train_labels);
    loss.Backward();
    optimizer.Step();

    // Periodic validation-gated test measurement.
    if (epoch % 5 == 4 || epoch + 1 == epochs) {
      tensor::NoGradGuard guard;
      double val_f1 = MicroF1(predict(logits_for(val_segments)), val_labels);
      if (val_f1 > best_val_f1) {
        best_val_f1 = val_f1;
        Tensor test_logits = logits_for(test_segments);
        Tensor probabilities = tensor::RowSoftmax(test_logits);
        std::vector<std::vector<double>> scores(test_labels.size());
        for (size_t i = 0; i < test_labels.size(); ++i) {
          for (int64_t c = 0; c < num_classes; ++c) {
            scores[i].push_back(probabilities.at(static_cast<int64_t>(i), c));
          }
        }
        std::vector<int64_t> predictions = predict(test_logits);
        best.f1 = MicroF1(predictions, test_labels);
        best.macro_f1 = MacroF1(predictions, test_labels);
        best.auc = MacroAuc(scores, test_labels, num_classes);
      }
    }
  }
  return best;
}

}  // namespace sarn::tasks
