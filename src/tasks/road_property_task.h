// Downstream task 1: road property (speed limit) prediction (paper §5.2.1).
//
// The labels are the posted speed limits of the labeled subset of segments
// (never part of the embedding inputs). A one-hidden-layer FFN classifier
// (32 units, as in the paper) is trained on frozen or jointly-trainable
// embeddings with a 6:2:2 split; we report F1 (micro) and one-vs-rest AUC,
// selecting the test epoch by validation F1.

#ifndef SARN_TASKS_ROAD_PROPERTY_TASK_H_
#define SARN_TASKS_ROAD_PROPERTY_TASK_H_

#include <cstdint>
#include <map>
#include <vector>

#include "roadnet/road_network.h"
#include "tasks/embedding_source.h"
#include "tasks/splits.h"

namespace sarn::tasks {

struct RoadPropertyConfig {
  uint64_t seed = 51;
  int64_t hidden = 32;
  int epochs = 150;
  /// Epoch budget when the source itself is trainable (SARN*, HRNR): every
  /// epoch then re-encodes the whole network, so fewer epochs are used.
  int epochs_trainable = 60;
  float learning_rate = 0.01f;
  /// Use at most this many labeled segments (0 = all); mirrors the paper's
  /// partially-labeled datasets.
  int64_t max_labeled = 0;
};

struct RoadPropertyResult {
  double f1 = 0.0;        // Micro F1 on test.
  double macro_f1 = 0.0;  // Macro F1 on test.
  double auc = 0.0;       // One-vs-rest macro AUC on test.
  int64_t num_classes = 0;
  int64_t num_labeled = 0;
};

class RoadPropertyTask {
 public:
  RoadPropertyTask(const roadnet::RoadNetwork& network, const RoadPropertyConfig& config);

  /// Trains the classifier (jointly with the source's trainable parameters)
  /// and reports test metrics.
  RoadPropertyResult Evaluate(const EmbeddingSource& source) const;

  /// NMI between road type and speed-limit class over labeled segments
  /// (the paper's task-difficulty indicator, §5.2.1).
  double TypeLabelNmi() const;

  int64_t num_classes() const { return static_cast<int64_t>(class_of_speed_.size()); }
  int64_t num_labeled() const { return static_cast<int64_t>(labeled_ids_.size()); }

 private:
  const roadnet::RoadNetwork* network_;
  RoadPropertyConfig config_;
  std::vector<int64_t> labeled_ids_;
  std::vector<int64_t> labels_;  // Aligned with labeled_ids_.
  std::map<int, int64_t> class_of_speed_;
  Split split_;  // Indexes into labeled_ids_.
};

}  // namespace sarn::tasks

#endif  // SARN_TASKS_ROAD_PROPERTY_TASK_H_
