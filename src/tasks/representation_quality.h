// Alignment / uniformity diagnostics (Wang & Isola, ICML'20 — the paper
// cites them in §4.4 to argue that a large negative pool "prompts the
// distribution of embeddings with uniformity").
//
//   alignment  = E[ ||f(x) - f(x+)||^2 ]  over positive pairs (lower = better)
//   uniformity = log E[ exp(-2 ||f(x) - f(y)||^2) ] over random pairs
//                (lower = more uniform on the hypersphere)
//
// Both are computed on L2-normalised embeddings. Used by tests and
// diagnostics to verify that contrastive training actually improves the
// embedding distribution, independent of any downstream task.

#ifndef SARN_TASKS_REPRESENTATION_QUALITY_H_
#define SARN_TASKS_REPRESENTATION_QUALITY_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "tasks/embedding_index.h"
#include "tensor/tensor.h"

namespace sarn::tasks {

/// Mean squared L2 distance between normalised embedding pairs (rows
/// `pairs[i].first` vs `pairs[i].second`).
double AlignmentLoss(const tensor::Tensor& embeddings,
                     const std::vector<std::pair<int64_t, int64_t>>& pairs);

/// log E[exp(-t * ||x - y||^2)] over `num_samples` random row pairs
/// (t = 2, the paper's [38] default). Deterministic given `seed`.
double UniformityLoss(const tensor::Tensor& embeddings, int num_samples,
                      uint64_t seed, double t = 2.0);

/// Mean Jaccard overlap of each row's top-k neighbor set between two
/// embedding matrices of the same row count (e.g. before/after an extra
/// training phase, or across two checkpoints): 1.0 when every row keeps
/// exactly the same k nearest neighbors, ~k/n for unrelated embeddings.
/// Both matrices are scanned with one batched EmbeddingIndex::QueryBatch
/// call each, so the cost is two multi-query scans.
double NeighborhoodStability(const tensor::Tensor& a, const tensor::Tensor& b,
                             int k, IndexMetric metric = IndexMetric::kCosine);

}  // namespace sarn::tasks

#endif  // SARN_TASKS_REPRESENTATION_QUALITY_H_
