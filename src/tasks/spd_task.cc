#include "tasks/spd_task.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "graph/dijkstra.h"
#include "nn/linear.h"
#include "nn/losses.h"
#include "tasks/metrics.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"

namespace sarn::tasks {

using tensor::Tensor;

SpdTask::SpdTask(const roadnet::RoadNetwork& network, const SpdConfig& config)
    : config_(config) {
  Rng rng(config.seed);
  graph::CsrGraph routing = network.ToLengthWeightedGraph();
  int64_t n = network.num_segments();
  SARN_CHECK_GT(n, 2);

  int64_t total_needed = config.num_train_pairs + config.num_test_pairs;
  std::vector<std::tuple<int64_t, int64_t, double>> pairs;
  pairs.reserve(static_cast<size_t>(total_needed));
  double distance_sum = 0.0;
  // Sample sources; harvest several reachable targets per Dijkstra tree.
  int targets_per_source =
      std::max<int>(8, static_cast<int>(total_needed / std::max<int64_t>(1, n / 8)));
  while (static_cast<int64_t>(pairs.size()) < total_needed) {
    int64_t source = rng.UniformInt(0, n - 1);
    graph::ShortestPathTree tree = Dijkstra(routing, source);
    std::vector<int64_t> reachable;
    for (int64_t v = 0; v < n; ++v) {
      if (v != source &&
          tree.distance[static_cast<size_t>(v)] != graph::kInfiniteDistance) {
        reachable.push_back(v);
      }
    }
    if (reachable.empty()) continue;
    for (int t = 0; t < targets_per_source &&
                    static_cast<int64_t>(pairs.size()) < total_needed;
         ++t) {
      int64_t target = reachable[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(reachable.size()) - 1))];
      double meters = tree.distance[static_cast<size_t>(target)];
      pairs.emplace_back(source, target, meters);
      distance_sum += meters;
    }
  }
  rng.Shuffle(pairs);
  mean_distance_km_ = std::max(0.1, distance_sum / pairs.size() / 1000.0);
  train_pairs_.assign(pairs.begin(), pairs.begin() + config.num_train_pairs);
  test_pairs_.assign(pairs.begin() + config.num_train_pairs, pairs.end());
}

SpdResult SpdTask::Evaluate(const EmbeddingSource& source) const {
  Rng rng(config_.seed + 1);
  nn::Ffn regressor({source.dim(), config_.hidden, 1}, nn::Activation::kRelu, rng);
  std::vector<Tensor> parameters = regressor.Parameters();
  for (const Tensor& p : source.TrainableParameters()) parameters.push_back(p);
  tensor::Adam optimizer(parameters, config_.learning_rate);

  bool trainable_source = !source.TrainableParameters().empty();
  Tensor frozen_embeddings;
  if (!trainable_source) frozen_embeddings = source.Forward();

  // Predict distance (in units of the mean train distance) from the raw
  // per-dimension embedding difference.
  auto predict = [&](const std::vector<std::tuple<int64_t, int64_t, double>>& pairs,
                     size_t begin, size_t end) {
    Tensor embeddings = trainable_source ? source.Forward() : frozen_embeddings;
    std::vector<int64_t> a_ids, b_ids;
    for (size_t i = begin; i < end; ++i) {
      a_ids.push_back(std::get<0>(pairs[i]));
      b_ids.push_back(std::get<1>(pairs[i]));
    }
    Tensor diff =
        tensor::Sub(tensor::Rows(embeddings, a_ids), tensor::Rows(embeddings, b_ids));
    int64_t m = static_cast<int64_t>(a_ids.size());
    return tensor::Reshape(regressor.Forward(diff), {m});
  };
  auto targets_for = [&](const std::vector<std::tuple<int64_t, int64_t, double>>& pairs,
                         size_t begin, size_t end) {
    std::vector<float> targets;
    for (size_t i = begin; i < end; ++i) {
      targets.push_back(
          static_cast<float>(std::get<2>(pairs[i]) / 1000.0 / mean_distance_km_));
    }
    return targets;
  };

  int epochs = trainable_source ? config_.epochs_trainable : config_.epochs;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    for (size_t begin = 0; begin < train_pairs_.size();
         begin += static_cast<size_t>(config_.batch_size)) {
      size_t end =
          std::min(train_pairs_.size(), begin + static_cast<size_t>(config_.batch_size));
      std::vector<float> targets = targets_for(train_pairs_, begin, end);
      optimizer.ZeroGrad();
      Tensor loss = nn::MseLoss(
          predict(train_pairs_, begin, end),
          Tensor::FromVector({static_cast<int64_t>(targets.size())}, targets));
      loss.Backward();
      optimizer.Step();
    }
  }

  tensor::NoGradGuard guard;
  Tensor predictions = predict(test_pairs_, 0, test_pairs_.size());
  std::vector<double> predicted_m, actual_m;
  for (size_t i = 0; i < test_pairs_.size(); ++i) {
    predicted_m.push_back(
        std::max(0.0, static_cast<double>(predictions.at(static_cast<int64_t>(i)))) *
        mean_distance_km_ * 1000.0);
    actual_m.push_back(std::get<2>(test_pairs_[i]));
  }
  SpdResult result;
  result.mae_meters = MeanAbsoluteError(predicted_m, actual_m);
  result.mre = MeanRelativeError(predicted_m, actual_m, /*floor=*/50.0);
  result.num_test_pairs = static_cast<int64_t>(test_pairs_.size());
  return result;
}

}  // namespace sarn::tasks
