#include "tasks/embedding_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/simd/simd.h"
#include "tensor/storage.h"

namespace sarn::tasks {

namespace simd = tensor::simd;

namespace {

// Rows scanned per kernel call: the fused scan streams the matrix in tiles
// this tall, scoring a block of up to simd::kMaxQueryBlock queries per pass
// and feeding the scores straight into the top-k heaps, so the scratch is
// one small pooled tile instead of a [batch, n] score matrix.
constexpr int64_t kScanTile = 1024;

// L2-normalises `row` in place, with the norm accumulated in double exactly
// like the stored rows at construction (so a by-vector query of a stored row
// reproduces that row bit-for-bit).
void NormalizeRow(float* row, int64_t d) {
  double sq = 0.0;
  for (int64_t j = 0; j < d; ++j) sq += static_cast<double>(row[j]) * row[j];
  float inv = sq > 1e-16 ? static_cast<float>(1.0 / std::sqrt(sq)) : 0.0f;
  for (int64_t j = 0; j < d; ++j) row[j] *= inv;
}

// Pooled Storage reinterpreted as a raw byte buffer (Storage is float-typed;
// int8 codes ride in it so snapshots recycle through the BufferPool like
// every other index payload).
tensor::Storage ByteStorage(size_t bytes) {
  return tensor::Storage::Uninitialized((bytes + sizeof(float) - 1) /
                                        sizeof(float));
}

// Top-k selection fused with the tiled scan: a pool-backed array sorted
// descending by (score, id) keeps the k best pairs seen while tiles arrive
// in ascending-id order — the k largest pairs under strict-> replacement
// against the current minimum (the array's back), exactly the set a
// (score, id) min-heap would keep, already in the emit order. The selection
// rule is independent of tiling and batching, so fused, batched and
// single-query answers select identically.
class TopKAccumulator {
 public:
  TopKAccumulator(int k, int64_t exclude) : k_(k), exclude_(exclude) {
    best_.reserve(static_cast<size_t>(std::max(k, 0)));
  }

  /// Offers `count` scores for rows [id0, id0 + count), ascending. `cand` is
  /// caller scratch for at least `count` candidate positions.
  void PushTile(const float* scores, int64_t count, int64_t id0,
                int32_t* cand) {
    if (k_ <= 0) return;
    int64_t t = 0;
    while (static_cast<int>(best_.size()) < k_ && t < count) {
      const int64_t id = id0 + t;
      if (id != exclude_) Insert({scores[t], id});
      ++t;
    }
    // Once full, scores that don't beat the current minimum can't change the
    // selection, so the SIMD filter picks the rare candidates. Filtering in
    // sub-chunks keeps the threshold fresh while the minimum rises (a frozen
    // whole-tile threshold lets most of the first tile through); each
    // chunk's threshold is only ever stale-low, so the filter returns a
    // superset of acceptable rows and the strict > below re-checks each one
    // — the selection evolves exactly as the plain per-score loop would.
    constexpr int64_t kFilterChunk = 256;
    while (t < count) {
      const int64_t len = std::min<int64_t>(kFilterChunk, count - t);
      const int64_t m =
          simd::FilterAbove(scores + t, len, best_.back().first, cand);
      for (int64_t c = 0; c < m; ++c) {
        const int64_t pos = t + cand[c];
        const int64_t id = id0 + pos;
        if (id == exclude_) continue;
        const float score = scores[pos];
        if (score > best_.back().first) {
          best_.pop_back();
          Insert({score, id});
        }
      }
      t += len;
    }
  }

  std::vector<Neighbor> Finish() {
    std::vector<Neighbor> out(best_.size());
    for (size_t i = 0; i < best_.size(); ++i) {
      out[i] = {best_[i].second, static_cast<double>(best_[i].first)};
    }
    return out;
  }

 private:
  using Entry = std::pair<float, int64_t>;

  void Insert(const Entry& e) {
    auto it = std::upper_bound(
        best_.begin(), best_.end(), e,
        [](const Entry& a, const Entry& b) { return a > b; });
    best_.insert(it, e);
  }

  int k_;
  int64_t exclude_;
  tensor::PoolVec<Entry> best_;  // Descending by (score, id); back = minimum.
};

int ClampK(int k, int64_t n, int64_t exclude) {
  return std::min<int>(k, static_cast<int>(exclude >= 0 ? n - 1 : n));
}

}  // namespace

const char* PrecisionName(IndexPrecision precision) {
  switch (precision) {
    case IndexPrecision::kFloat32: return "float32";
    case IndexPrecision::kInt8: return "int8";
  }
  return "unknown";
}

EmbeddingIndex::EmbeddingIndex(const tensor::Tensor& embeddings,
                               IndexMetric metric, IndexPrecision precision)
    : metric_(metric), precision_(precision) {
  SARN_CHECK_EQ(embeddings.rank(), 2);
  n_ = embeddings.shape()[0];
  d_ = embeddings.shape()[1];
  // Both precisions prepare the float rows first (cosine normalisation must
  // happen before quantization so the per-row scales see unit vectors).
  tensor::Storage rows =
      tensor::Storage::CopyOf(embeddings.data().data(), embeddings.data().size());
  if (metric_ == IndexMetric::kCosine) {
    for (int64_t i = 0; i < n_; ++i) NormalizeRow(rows.data() + i * d_, d_);
  }
  if (precision_ == IndexPrecision::kFloat32) {
    data_ = std::move(rows);
    return;
  }
  // kInt8: symmetric quantization, then the float copy is dropped — the
  // quantized payload (codes + scales) is the whole index.
  data_q_ = ByteStorage(static_cast<size_t>(n_) * static_cast<size_t>(d_));
  int8_t* codes = reinterpret_cast<int8_t*>(data_q_.data());
  if (metric_ == IndexMetric::kCosine) {
    // Per-row scales: dot(q, r) factors as q_scale * r_scale * dot_i8.
    scales_ = tensor::Storage::Uninitialized(static_cast<size_t>(n_));
    for (int64_t i = 0; i < n_; ++i) {
      simd::QuantizeRowI8(rows.data() + i * d_, d_, codes + i * d_,
                          scales_.data() + i);
    }
  } else {
    // L1 distances do not factor through per-row scales, so the whole matrix
    // shares one: |q - r|_1 ≈ scale * sum |q_i8 - r_i8|.
    shared_scale_ =
        simd::AbsMax(rows.data(), static_cast<int64_t>(rows.size())) / 127.0f;
    for (int64_t i = 0; i < n_; ++i) {
      simd::QuantizeRowI8WithScale(rows.data() + i * d_, d_, shared_scale_,
                                   codes + i * d_);
    }
  }
}

std::shared_ptr<const EmbeddingIndex> EmbeddingIndex::Adopt(
    int64_t n, int64_t d, IndexMetric metric, IndexPrecision precision,
    tensor::Storage rows_or_codes, tensor::Storage scales, float shared_scale,
    std::shared_ptr<const void> payload_owner) {
  SARN_CHECK(n >= 0 && d > 0);
  auto index = std::shared_ptr<EmbeddingIndex>(new EmbeddingIndex());
  index->metric_ = metric;
  index->precision_ = precision;
  index->n_ = n;
  index->d_ = d;
  if (precision == IndexPrecision::kFloat32) {
    SARN_CHECK_EQ(rows_or_codes.size(),
                  static_cast<size_t>(n) * static_cast<size_t>(d));
    SARN_CHECK(scales.empty());
    index->data_ = std::move(rows_or_codes);
  } else {
    // Codes ride in a float storage as raw bytes (same trick as the heap
    // constructor); the storage covers ceil(n*d / 4) floats.
    const size_t code_bytes = static_cast<size_t>(n) * static_cast<size_t>(d);
    SARN_CHECK(rows_or_codes.size() * sizeof(float) >= code_bytes);
    index->data_q_ = std::move(rows_or_codes);
    if (metric == IndexMetric::kCosine) {
      SARN_CHECK_EQ(scales.size(), static_cast<size_t>(n));
      index->scales_ = std::move(scales);
    } else {
      SARN_CHECK(scales.empty());
      index->shared_scale_ = shared_scale;
    }
  }
  index->payload_owner_ = std::move(payload_owner);
  return index;
}

size_t EmbeddingIndex::index_bytes() const {
  if (precision_ == IndexPrecision::kFloat32) {
    return data_.size() * sizeof(float);
  }
  // int8 codes plus the scales: one per row (cosine) or one shared (L1).
  return static_cast<size_t>(n_) * static_cast<size_t>(d_) +
         (metric_ == IndexMetric::kCosine ? scales_.size() : 1) * sizeof(float);
}

namespace {

// Scan-side instruments, cached once (DESIGN.md §9 pattern). Updated per
// QueryBatch call — cheap relaxed adds next to a full index scan.
struct IndexScanMetrics {
  obs::Counter& scans;
  obs::Counter& scanned_queries;
  obs::Histogram& scan_seconds;

  static IndexScanMetrics& Get() {
    static IndexScanMetrics metrics{
        obs::MetricsRegistry::Default().GetCounter("sarn.index.scans"),
        obs::MetricsRegistry::Default().GetCounter("sarn.index.scanned_queries"),
        obs::MetricsRegistry::Default().GetHistogram("sarn.index.scan_seconds"),
    };
    return metrics;
  }
};

}  // namespace

std::vector<std::vector<Neighbor>> EmbeddingIndex::QueryBatch(
    std::span<const IndexQuery> queries, int k) const {
  SARN_TRACE_SPAN("index_query_batch");
  const size_t b = queries.size();
  std::vector<std::vector<Neighbor>> results(b);
  if (b == 0 || n_ == 0) return results;
  IndexScanMetrics& scan_metrics = IndexScanMetrics::Get();
  scan_metrics.scans.Increment();
  scan_metrics.scanned_queries.Increment(b);
  const Timer scan_timer;
  // Publishes sarn.alloc.* on exit; after the first batch of a given size the
  // pooled scratch below is all hits, so steady-state serving is
  // allocation-free against the global allocator for the scan itself.
  tensor::StepScope alloc_scope;

  tensor::PoolVec<int64_t> excludes(b, -1);
  for (size_t i = 0; i < b; ++i) {
    if (queries[i].id >= 0) {
      SARN_CHECK(queries[i].id < n_) << "query id " << queries[i].id << " of " << n_;
      excludes[i] = queries[i].id;
    } else {
      SARN_CHECK_EQ(static_cast<int64_t>(queries[i].vector.size()), d_);
    }
  }

  if (precision_ == IndexPrecision::kFloat32) {
    ScanFloat(queries, k, excludes.data(), &results);
  } else {
    ScanInt8(queries, k, excludes.data(), &results);
  }
  scan_metrics.scan_seconds.Observe(scan_timer.ElapsedSeconds());
  return results;
}

// One multi-query fused scan: every (query, row) score is an independent
// fixed-order reduction (see src/tensor/simd/simd.h), so the result is
// invariant to batch composition, query-block grouping and to how
// ParallelFor partitions the batch.
void EmbeddingIndex::ScanFloat(std::span<const IndexQuery> queries, int k,
                               const int64_t* excludes,
                               std::vector<std::vector<Neighbor>>* results) const {
  const size_t b = queries.size();
  // Assemble the query matrix [b, d] (the blocked kernels want the block
  // contiguous); by-id queries reuse the stored (for cosine, already
  // normalised) row.
  tensor::Storage q = tensor::Storage::Uninitialized(b * static_cast<size_t>(d_));
  for (size_t i = 0; i < b; ++i) {
    const IndexQuery& query = queries[i];
    float* row = q.data() + i * static_cast<size_t>(d_);
    if (query.id >= 0) {
      std::copy_n(data_.data() + query.id * d_, d_, row);
    } else {
      std::copy_n(query.vector.data(), d_, row);
      if (metric_ == IndexMetric::kCosine) NormalizeRow(row, d_);
    }
  }
  ParallelFor(
      b,
      [&](size_t begin, size_t end) {
        constexpr int kBlock = simd::kMaxQueryBlock;
        tensor::Storage tile =
            tensor::Storage::Uninitialized(kBlock * static_cast<size_t>(kScanTile));
        tensor::PoolVec<int32_t> cand(static_cast<size_t>(kScanTile), 0);
        for (size_t g = begin; g < end; g += kBlock) {
          const int qn = static_cast<int>(std::min<size_t>(kBlock, end - g));
          TopKAccumulator accs[kBlock] = {
              {qn > 0 ? ClampK(k, n_, excludes[g + 0]) : 0, qn > 0 ? excludes[g + 0] : -1},
              {qn > 1 ? ClampK(k, n_, excludes[g + 1]) : 0, qn > 1 ? excludes[g + 1] : -1},
              {qn > 2 ? ClampK(k, n_, excludes[g + 2]) : 0, qn > 2 ? excludes[g + 2] : -1},
              {qn > 3 ? ClampK(k, n_, excludes[g + 3]) : 0, qn > 3 ? excludes[g + 3] : -1},
          };
          for (int64_t r0 = 0; r0 < n_; r0 += kScanTile) {
            const int64_t rows = std::min<int64_t>(kScanTile, n_ - r0);
            if (metric_ == IndexMetric::kCosine) {
              simd::DotScan(q.data() + g * static_cast<size_t>(d_), qn,
                            data_.data() + r0 * d_, rows, d_, tile.data(),
                            kScanTile);
            } else {
              simd::L1Scan(q.data() + g * static_cast<size_t>(d_), qn,
                           data_.data() + r0 * d_, rows, d_, tile.data(),
                           kScanTile);
            }
            for (int qi = 0; qi < qn; ++qi) {
              accs[qi].PushTile(tile.data() + qi * kScanTile, rows, r0,
                                cand.data());
            }
          }
          for (int qi = 0; qi < qn; ++qi) {
            (*results)[g + qi] = accs[qi].Finish();
          }
        }
      },
      /*grain=*/2);
}

void EmbeddingIndex::ScanInt8(std::span<const IndexQuery> queries, int k,
                              const int64_t* excludes,
                              std::vector<std::vector<Neighbor>>* results) const {
  const size_t b = queries.size();
  const int8_t* codes = reinterpret_cast<const int8_t*>(data_q_.data());
  // Assemble the quantized query block [b, d] + per-query scales. By-id
  // queries reuse the stored codes (and their stored scale), so a stored row
  // queries itself with zero extra quantization error.
  tensor::Storage qbytes = ByteStorage(b * static_cast<size_t>(d_));
  int8_t* q8 = reinterpret_cast<int8_t*>(qbytes.data());
  tensor::PoolVec<float> qscales(b, shared_scale_);
  tensor::PoolVec<float> scratch(static_cast<size_t>(d_), 0.0f);
  for (size_t i = 0; i < b; ++i) {
    const IndexQuery& query = queries[i];
    int8_t* qrow = q8 + i * static_cast<size_t>(d_);
    if (query.id >= 0) {
      std::memcpy(qrow, codes + query.id * d_, static_cast<size_t>(d_));
      if (metric_ == IndexMetric::kCosine) qscales[i] = scales_[query.id];
    } else if (metric_ == IndexMetric::kCosine) {
      std::copy_n(query.vector.data(), d_, scratch.data());
      NormalizeRow(scratch.data(), d_);
      simd::QuantizeRowI8(scratch.data(), d_, qrow, &qscales[i]);
    } else {
      simd::QuantizeRowI8WithScale(query.vector.data(), d_, shared_scale_, qrow);
    }
  }
  ParallelFor(
      b,
      [&](size_t begin, size_t end) {
        constexpr int kBlock = simd::kMaxQueryBlock;
        tensor::Storage tile =
            tensor::Storage::Uninitialized(kBlock * static_cast<size_t>(kScanTile));
        tensor::PoolVec<int32_t> cand(static_cast<size_t>(kScanTile), 0);
        for (size_t g = begin; g < end; g += kBlock) {
          const int qn = static_cast<int>(std::min<size_t>(kBlock, end - g));
          TopKAccumulator accs[kBlock] = {
              {qn > 0 ? ClampK(k, n_, excludes[g + 0]) : 0, qn > 0 ? excludes[g + 0] : -1},
              {qn > 1 ? ClampK(k, n_, excludes[g + 1]) : 0, qn > 1 ? excludes[g + 1] : -1},
              {qn > 2 ? ClampK(k, n_, excludes[g + 2]) : 0, qn > 2 ? excludes[g + 2] : -1},
              {qn > 3 ? ClampK(k, n_, excludes[g + 3]) : 0, qn > 3 ? excludes[g + 3] : -1},
          };
          for (int64_t r0 = 0; r0 < n_; r0 += kScanTile) {
            const int64_t rows = std::min<int64_t>(kScanTile, n_ - r0);
            if (metric_ == IndexMetric::kCosine) {
              simd::DotScanI8(q8 + g * static_cast<size_t>(d_),
                              qscales.data() + g, qn, codes + r0 * d_,
                              scales_.data() + r0, rows, d_, tile.data(),
                              kScanTile);
            } else {
              simd::L1ScanI8(q8 + g * static_cast<size_t>(d_), qn,
                             codes + r0 * d_, rows, d_, shared_scale_,
                             tile.data(), kScanTile);
            }
            for (int qi = 0; qi < qn; ++qi) {
              accs[qi].PushTile(tile.data() + qi * kScanTile, rows, r0,
                                cand.data());
            }
          }
          for (int qi = 0; qi < qn; ++qi) {
            (*results)[g + qi] = accs[qi].Finish();
          }
        }
      },
      /*grain=*/2);
}

std::vector<Neighbor> EmbeddingIndex::QueryById(int64_t query_id, int k) const {
  SARN_CHECK(query_id >= 0 && query_id < n_) << "query_id " << query_id;
  IndexQuery query = IndexQuery::ById(query_id);
  return std::move(QueryBatch({&query, 1}, k)[0]);
}

std::vector<Neighbor> EmbeddingIndex::QueryByVector(const std::vector<float>& query,
                                                    int k) const {
  IndexQuery q = IndexQuery::ByVector(query);
  return std::move(QueryBatch({&q, 1}, k)[0]);
}

}  // namespace sarn::tasks
