#include "tasks/embedding_index.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "tensor/matmul_kernels.h"

namespace sarn::tasks {
namespace {

// L2-normalises `row` in place, with the norm accumulated in double exactly
// like the stored rows at construction (so a by-vector query of a stored row
// reproduces that row bit-for-bit).
void NormalizeRow(float* row, int64_t d) {
  double sq = 0.0;
  for (int64_t j = 0; j < d; ++j) sq += static_cast<double>(row[j]) * row[j];
  float inv = sq > 1e-16 ? static_cast<float>(1.0 / std::sqrt(sq)) : 0.0f;
  for (int64_t j = 0; j < d; ++j) row[j] *= inv;
}

// Top-k selection over one query's score row: a min-heap on (score, id)
// keeps the k best seen while scanning ids ascending, then pops into
// descending order. Independent of how the scores were produced, so batched
// and single-query answers select identically.
std::vector<Neighbor> SelectTopK(const float* scores, int64_t n, int k,
                                 int64_t exclude) {
  k = std::min<int>(k, static_cast<int>(exclude >= 0 ? n - 1 : n));
  if (k <= 0) return {};
  using Entry = std::pair<float, int64_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  for (int64_t i = 0; i < n; ++i) {
    if (i == exclude) continue;
    float score = scores[i];
    if (static_cast<int>(heap.size()) < k) {
      heap.emplace(score, i);
    } else if (score > heap.top().first) {
      heap.pop();
      heap.emplace(score, i);
    }
  }
  std::vector<Neighbor> out(heap.size());
  for (auto it = out.rbegin(); it != out.rend(); ++it) {
    *it = {heap.top().second, static_cast<double>(heap.top().first)};
    heap.pop();
  }
  return out;
}

}  // namespace

EmbeddingIndex::EmbeddingIndex(const tensor::Tensor& embeddings, IndexMetric metric)
    : metric_(metric) {
  SARN_CHECK_EQ(embeddings.rank(), 2);
  n_ = embeddings.shape()[0];
  d_ = embeddings.shape()[1];
  data_ = tensor::Storage::CopyOf(embeddings.data().data(), embeddings.data().size());
  if (metric_ == IndexMetric::kCosine) {
    for (int64_t i = 0; i < n_; ++i) NormalizeRow(data_.data() + i * d_, d_);
  }
  // Transposed copy ([d, n] row-major) so a batch of cosine queries is one
  // [b, d] x [d, n] matmul through the register-tiled kernels.
  if (metric_ == IndexMetric::kCosine) {
    data_t_ = tensor::Storage::Uninitialized(data_.size());
    for (int64_t i = 0; i < n_; ++i) {
      for (int64_t j = 0; j < d_; ++j) {
        data_t_[j * n_ + i] = data_[i * d_ + j];
      }
    }
  }
}

std::vector<std::vector<Neighbor>> EmbeddingIndex::QueryBatch(
    std::span<const IndexQuery> queries, int k) const {
  const size_t b = queries.size();
  std::vector<std::vector<Neighbor>> results(b);
  if (b == 0 || n_ == 0) return results;
  // Publishes sarn.alloc.* on exit; after the first batch of a given size the
  // pooled scratch below is all hits, so steady-state serving is
  // allocation-free against the global allocator for the scan itself.
  tensor::StepScope alloc_scope;

  tensor::PoolVec<int64_t> excludes(b, -1);
  for (size_t i = 0; i < b; ++i) {
    if (queries[i].id >= 0) {
      SARN_CHECK(queries[i].id < n_) << "query id " << queries[i].id << " of " << n_;
      excludes[i] = queries[i].id;
    } else {
      SARN_CHECK_EQ(static_cast<int64_t>(queries[i].vector.size()), d_);
    }
  }

  // One multi-query scan: every (query, row) score is an independent
  // ascending-j reduction, so the result is invariant to batch composition
  // and to how ParallelFor partitions the batch.
  tensor::Storage scores;
  if (metric_ == IndexMetric::kCosine) {
    // Assemble the query matrix [b, d] (the matmul needs it contiguous);
    // by-id queries reuse the stored, already-normalised row.
    tensor::Storage q = tensor::Storage::Uninitialized(b * static_cast<size_t>(d_));
    for (size_t i = 0; i < b; ++i) {
      const IndexQuery& query = queries[i];
      float* row = q.data() + i * static_cast<size_t>(d_);
      if (query.id >= 0) {
        std::copy_n(data_.data() + query.id * d_, d_, row);
      } else {
        std::copy_n(query.vector.data(), d_, row);
        NormalizeRow(row, d_);
      }
    }
    // The kernels accumulate, so the score matrix starts zeroed.
    scores = tensor::Storage::Zeroed(b * static_cast<size_t>(n_));
    ParallelFor(
        b,
        [&](size_t begin, size_t end) {
          tensor::kernels::MatMulBlocked(q.data(), data_t_.data(), scores.data(),
                                         static_cast<int64_t>(begin),
                                         static_cast<int64_t>(end), d_, n_);
        },
        /*grain=*/2);
  } else {
    // L1 needs no query matrix at all: each query reads either its stored
    // row in place (zero-copy view of the snapshot) or the caller's vector.
    scores = tensor::Storage::Uninitialized(b * static_cast<size_t>(n_));
    ParallelFor(
        b,
        [&](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            const IndexQuery& query = queries[i];
            const float* qrow = query.id >= 0 ? data_.data() + query.id * d_
                                              : query.vector.data();
            float* out = scores.data() + i * static_cast<size_t>(n_);
            for (int64_t r = 0; r < n_; ++r) {
              const float* row = data_.data() + r * d_;
              float l1 = 0.0f;
              for (int64_t j = 0; j < d_; ++j) l1 += std::fabs(qrow[j] - row[j]);
              out[r] = -l1;
            }
          }
        },
        /*grain=*/2);
  }

  ParallelFor(
      b,
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          results[i] =
              SelectTopK(scores.data() + i * static_cast<size_t>(n_), n_, k, excludes[i]);
        }
      },
      /*grain=*/2);
  return results;
}

std::vector<Neighbor> EmbeddingIndex::QueryById(int64_t query_id, int k) const {
  SARN_CHECK(query_id >= 0 && query_id < n_) << "query_id " << query_id;
  IndexQuery query = IndexQuery::ById(query_id);
  return std::move(QueryBatch({&query, 1}, k)[0]);
}

std::vector<Neighbor> EmbeddingIndex::QueryByVector(const std::vector<float>& query,
                                                    int k) const {
  IndexQuery q = IndexQuery::ByVector(query);
  return std::move(QueryBatch({&q, 1}, k)[0]);
}

}  // namespace sarn::tasks
