#include "tasks/embedding_index.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/check.h"

namespace sarn::tasks {

EmbeddingIndex::EmbeddingIndex(const tensor::Tensor& embeddings, IndexMetric metric)
    : metric_(metric) {
  SARN_CHECK_EQ(embeddings.rank(), 2);
  n_ = embeddings.shape()[0];
  d_ = embeddings.shape()[1];
  data_ = embeddings.data();
  if (metric_ == IndexMetric::kCosine) {
    for (int64_t i = 0; i < n_; ++i) {
      float* row = data_.data() + i * d_;
      double sq = 0.0;
      for (int64_t j = 0; j < d_; ++j) sq += static_cast<double>(row[j]) * row[j];
      float inv = sq > 1e-16 ? static_cast<float>(1.0 / std::sqrt(sq)) : 0.0f;
      for (int64_t j = 0; j < d_; ++j) row[j] *= inv;
    }
  }
}

std::vector<Neighbor> EmbeddingIndex::TopK(const std::vector<float>& query, int k,
                                           int64_t exclude) const {
  SARN_CHECK_EQ(static_cast<int64_t>(query.size()), d_);
  k = std::min<int>(k, static_cast<int>(exclude >= 0 ? n_ - 1 : n_));
  if (k <= 0) return {};
  // Min-heap on score keeps the k best seen so far.
  using Entry = std::pair<double, int64_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  for (int64_t i = 0; i < n_; ++i) {
    if (i == exclude) continue;
    const float* row = data_.data() + i * d_;
    double score = 0.0;
    if (metric_ == IndexMetric::kCosine) {
      for (int64_t j = 0; j < d_; ++j) score += static_cast<double>(query[j]) * row[j];
    } else {
      double l1 = 0.0;
      for (int64_t j = 0; j < d_; ++j) l1 += std::fabs(query[j] - row[j]);
      score = -l1;
    }
    if (static_cast<int>(heap.size()) < k) {
      heap.emplace(score, i);
    } else if (score > heap.top().first) {
      heap.pop();
      heap.emplace(score, i);
    }
  }
  std::vector<Neighbor> out(heap.size());
  for (auto it = out.rbegin(); it != out.rend(); ++it) {
    *it = {heap.top().second, heap.top().first};
    heap.pop();
  }
  return out;
}

std::vector<Neighbor> EmbeddingIndex::QueryById(int64_t query_id, int k) const {
  SARN_CHECK(query_id >= 0 && query_id < n_) << "query_id " << query_id;
  std::vector<float> query(data_.begin() + query_id * d_,
                           data_.begin() + (query_id + 1) * d_);
  return TopK(query, k, query_id);
}

std::vector<Neighbor> EmbeddingIndex::QueryByVector(const std::vector<float>& query,
                                                    int k) const {
  if (metric_ == IndexMetric::kCosine) {
    std::vector<float> normalized = query;
    double sq = 0.0;
    for (float v : normalized) sq += static_cast<double>(v) * v;
    float inv = sq > 1e-16 ? static_cast<float>(1.0 / std::sqrt(sq)) : 0.0f;
    for (float& v : normalized) v *= inv;
    return TopK(normalized, k, -1);
  }
  return TopK(query, k, -1);
}

}  // namespace sarn::tasks
