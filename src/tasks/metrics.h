// Evaluation metrics of the paper's three downstream tasks, plus NMI
// (used in §5.2.1 to report the type<->speed-limit correlation).

#ifndef SARN_TASKS_METRICS_H_
#define SARN_TASKS_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sarn::tasks {

/// Micro-averaged F1 over multiclass predictions (equals accuracy for
/// single-label classification).
double MicroF1(const std::vector<int64_t>& predicted, const std::vector<int64_t>& actual);

/// Macro-averaged F1: per-class F1 averaged over classes present in
/// `actual`.
double MacroF1(const std::vector<int64_t>& predicted, const std::vector<int64_t>& actual);

/// One-vs-rest ROC-AUC, macro-averaged over classes present in `actual`.
/// `scores[i][c]` is the score of sample i for class c. Classes that are
/// all-positive or all-negative in `actual` are skipped.
double MacroAuc(const std::vector<std::vector<double>>& scores,
                const std::vector<int64_t>& actual, int64_t num_classes);

/// Normalized mutual information of two discrete labelings (in [0, 1]).
double NormalizedMutualInformation(const std::vector<int64_t>& a,
                                   const std::vector<int64_t>& b);

/// HR@k: |top-k(predicted) ∩ top-k(truth)| / k (NEUTRAJ's hit ratio).
/// Both arguments are ranked id lists (best first) of length >= k.
double HitRatioAtK(const std::vector<int64_t>& predicted_ranking,
                   const std::vector<int64_t>& true_ranking, size_t k);

/// R-a@b: |top-b(predicted) ∩ top-a(truth)| / a (the paper's R5@20 with
/// a = 5, b = 20).
double RecallTopAInB(const std::vector<int64_t>& predicted_ranking,
                     const std::vector<int64_t>& true_ranking, size_t a, size_t b);

/// Mean absolute error.
double MeanAbsoluteError(const std::vector<double>& predicted,
                         const std::vector<double>& actual);

/// Mean relative error: mean(|pred - actual| / max(actual, floor)).
double MeanRelativeError(const std::vector<double>& predicted,
                         const std::vector<double>& actual, double floor = 1.0);

}  // namespace sarn::tasks

#endif  // SARN_TASKS_METRICS_H_
