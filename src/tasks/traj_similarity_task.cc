#include "tasks/traj_similarity_task.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "nn/gru.h"
#include "nn/losses.h"
#include "nn/sequence_util.h"
#include "tasks/metrics.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"
#include "traj/frechet.h"

namespace sarn::tasks {

using tensor::Tensor;

TrajectorySimilarityTask::TrajectorySimilarityTask(
    const roadnet::RoadNetwork& network,
    std::vector<traj::MatchedTrajectory> trajectories, const TrajSimConfig& config)
    : network_(&network), config_(config) {
  for (const traj::MatchedTrajectory& t : trajectories) {
    if (t.segments.size() < 2) continue;
    sequences_.push_back(t.segments);
    polylines_.push_back(traj::MatchedMidpoints(t, network));
  }
  SARN_CHECK_GE(sequences_.size(), 30u) << "need enough trajectories to rank top-20";
  split_ = MakeSplit(static_cast<int64_t>(sequences_.size()), config.seed);
  SARN_CHECK_GE(split_.test.size(), 21u);

  // Precompute ground-truth rankings within the test set.
  size_t t_count = split_.test.size();
  true_ranking_.resize(t_count);
  for (size_t q = 0; q < t_count; ++q) {
    std::vector<std::pair<double, int64_t>> by_distance;
    for (size_t o = 0; o < t_count; ++o) {
      if (o == q) continue;
      double d = GroundTruthDistance(static_cast<size_t>(split_.test[q]),
                                     static_cast<size_t>(split_.test[o]));
      by_distance.emplace_back(d, static_cast<int64_t>(o));
    }
    std::sort(by_distance.begin(), by_distance.end());
    for (const auto& [d, o] : by_distance) true_ranking_[q].push_back(o);
  }
}

double TrajectorySimilarityTask::GroundTruthDistance(size_t a, size_t b) const {
  if (a == b) return 0.0;
  std::pair<size_t, size_t> key = {std::min(a, b), std::max(a, b)};
  auto it = frechet_cache_.find(key);
  if (it != frechet_cache_.end()) return it->second;
  double d = traj::TrajectoryDistance(config_.metric, polylines_[key.first],
                                      polylines_[key.second]);
  frechet_cache_.emplace(key, d);
  return d;
}

TrajSimResult TrajectorySimilarityTask::RankTestSet(const Tensor& test_embeddings) const {
  size_t t_count = split_.test.size();
  SARN_CHECK_EQ(test_embeddings.shape()[0], static_cast<int64_t>(t_count));
  int64_t dim = test_embeddings.shape()[1];
  TrajSimResult result;
  result.num_test = static_cast<int64_t>(t_count);
  for (size_t q = 0; q < t_count; ++q) {
    std::vector<std::pair<double, int64_t>> by_distance;
    for (size_t o = 0; o < t_count; ++o) {
      if (o == q) continue;
      double l1 = 0.0;
      for (int64_t j = 0; j < dim; ++j) {
        l1 += std::fabs(test_embeddings.at(static_cast<int64_t>(q), j) -
                        test_embeddings.at(static_cast<int64_t>(o), j));
      }
      by_distance.emplace_back(l1, static_cast<int64_t>(o));
    }
    std::sort(by_distance.begin(), by_distance.end());
    std::vector<int64_t> predicted;
    predicted.reserve(by_distance.size());
    for (const auto& [d, o] : by_distance) predicted.push_back(o);
    result.hr5 += HitRatioAtK(predicted, true_ranking_[q], 5);
    result.hr20 += HitRatioAtK(predicted, true_ranking_[q], 20);
    result.r5_20 += RecallTopAInB(predicted, true_ranking_[q], 5, 20);
  }
  result.hr5 /= static_cast<double>(t_count);
  result.hr20 /= static_cast<double>(t_count);
  result.r5_20 /= static_cast<double>(t_count);
  return result;
}

TrajSimResult TrajectorySimilarityTask::Evaluate(const EmbeddingSource& source) const {
  Rng rng(config_.seed + 3);
  nn::Gru gru(source.dim(), config_.gru_hidden, config_.gru_layers, rng);
  Tensor scale = Tensor::FromVector({1}, {1.0f}).RequiresGrad();
  Tensor offset = Tensor::FromVector({1}, {0.0f}).RequiresGrad();
  std::vector<Tensor> parameters = gru.Parameters();
  parameters.push_back(scale);
  parameters.push_back(offset);
  for (const Tensor& p : source.TrainableParameters()) parameters.push_back(p);
  tensor::Adam optimizer(parameters, config_.learning_rate);

  bool trainable_source = !source.TrainableParameters().empty();
  auto embeddings_of = [&](Tensor raw) {
    return config_.normalize_embeddings ? tensor::RowL2Normalize(raw) : raw;
  };
  Tensor frozen_embeddings;
  if (!trainable_source) frozen_embeddings = embeddings_of(source.Forward()).Detach();

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    for (int produced = 0; produced < config_.pairs_per_epoch;
         produced += config_.batch_pairs) {
      std::vector<std::vector<int64_t>> batch_sequences;
      std::vector<int64_t> left, right;
      std::vector<float> targets_km;
      for (int k = 0; k < config_.batch_pairs; ++k) {
        size_t a = static_cast<size_t>(split_.train[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(split_.train.size()) - 1))]);
        size_t b = static_cast<size_t>(split_.train[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(split_.train.size()) - 1))]);
        if (a == b) continue;
        left.push_back(static_cast<int64_t>(batch_sequences.size()));
        batch_sequences.push_back(sequences_[a]);
        right.push_back(static_cast<int64_t>(batch_sequences.size()));
        batch_sequences.push_back(sequences_[b]);
        targets_km.push_back(static_cast<float>(GroundTruthDistance(a, b) / 1000.0));
      }
      if (left.empty()) continue;
      Tensor embeddings =
          trainable_source ? embeddings_of(source.Forward()) : frozen_embeddings;
      Tensor trajectory_embeddings = nn::EmbedSequences(gru, embeddings, batch_sequences);
      Tensor l1 = tensor::SumAxis(
          tensor::Abs(tensor::Sub(tensor::Rows(trajectory_embeddings, left),
                                  tensor::Rows(trajectory_embeddings, right))),
          1);
      Tensor prediction = tensor::Add(tensor::Mul(l1, scale), offset);
      int64_t m = prediction.numel();
      Tensor loss = nn::MseLoss(prediction, Tensor::FromVector({m}, targets_km));
      optimizer.ZeroGrad();
      loss.Backward();
      optimizer.Step();
    }
  }

  tensor::NoGradGuard guard;
  Tensor embeddings =
      trainable_source ? embeddings_of(source.Forward()) : frozen_embeddings;
  std::vector<std::vector<int64_t>> test_sequences;
  for (int64_t idx : split_.test) test_sequences.push_back(sequences_[static_cast<size_t>(idx)]);
  Tensor test_embeddings = nn::EmbedSequences(gru, embeddings, test_sequences);
  return RankTestSet(test_embeddings);
}

TrajSimResult TrajectorySimilarityTask::EvaluateNeutraj(
    const baselines::NeutrajLiteConfig& config) const {
  baselines::NeutrajLite model(network_->num_segments(), config);
  std::vector<std::vector<int64_t>> train_sequences;
  std::vector<size_t> train_global;
  for (int64_t idx : split_.train) {
    train_sequences.push_back(sequences_[static_cast<size_t>(idx)]);
    train_global.push_back(static_cast<size_t>(idx));
  }
  model.Train(train_sequences, [&](size_t a, size_t b) {
    return GroundTruthDistance(train_global[a], train_global[b]);
  });
  std::vector<std::vector<int64_t>> test_sequences;
  for (int64_t idx : split_.test) test_sequences.push_back(sequences_[static_cast<size_t>(idx)]);
  return RankTestSet(model.Embed(test_sequences));
}

}  // namespace sarn::tasks
