#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iterator>
#include <map>

#include "common/logging.h"

namespace sarn::obs {
namespace {

uint64_t SteadyNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Tracer::Tracer() : epoch_ns_(SteadyNowNanos()) {}

Tracer& Tracer::Instance() {
  static Tracer tracer;
  return tracer;
}

uint64_t Tracer::NowMicros() const {
  return (SteadyNowNanos() - epoch_ns_) / 1000;
}

Tracer::ThreadBuffer& Tracer::LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [this] {
    auto fresh = std::make_shared<ThreadBuffer>();
    std::lock_guard<std::mutex> lock(buffers_mu_);
    buffers_.push_back(fresh);
    return fresh;
  }();
  return *buffer;
}

void Tracer::Record(const char* name, uint64_t begin_us, uint64_t dur_us) {
  TraceEvent event;
  event.name = name;
  event.tid = ThreadId();
  event.begin_us = begin_us;
  event.dur_us = dur_us;
  ThreadBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.events.push_back(event);
}

std::vector<TraceEvent> Tracer::Drain() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(buffers_mu_);
    buffers = buffers_;
  }
  std::vector<TraceEvent> events;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    events.insert(events.end(), buffer->events.begin(), buffer->events.end());
    buffer->events.clear();
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.begin_us < b.begin_us;
            });
  return events;
}

std::vector<Tracer::PhaseTotal> Tracer::Aggregate(
    const std::vector<TraceEvent>& events) {
  std::map<std::string, PhaseTotal> by_name;
  for (const TraceEvent& event : events) {
    PhaseTotal& total = by_name[event.name];
    total.name = event.name;
    total.count += 1;
    total.seconds += static_cast<double>(event.dur_us) * 1e-6;
  }
  std::vector<PhaseTotal> totals;
  totals.reserve(by_name.size());
  for (auto& [name, total] : by_name) totals.push_back(std::move(total));
  std::sort(totals.begin(), totals.end(),
            [](const PhaseTotal& a, const PhaseTotal& b) {
              return a.seconds > b.seconds;
            });
  return totals;
}

std::string Tracer::ToChromeTraceJson(const std::vector<TraceEvent>& events) {
  std::string json = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) json += ",";
    first = false;
    json += "{\"name\":\"";
    // Span names are identifiers by convention; escape defensively anyway.
    for (const char* p = event.name; *p != '\0'; ++p) {
      if (*p == '"' || *p == '\\') json += '\\';
      json += *p;
    }
    json += "\",\"cat\":\"sarn\",\"ph\":\"X\",\"pid\":1,\"tid\":" +
            std::to_string(event.tid) +
            ",\"ts\":" + std::to_string(event.begin_us) +
            ",\"dur\":" + std::to_string(event.dur_us) + "}";
  }
  json += "],\"displayTimeUnit\":\"ms\"}";
  return json;
}

bool Tracer::WriteChromeTrace(const std::string& path,
                              const std::vector<TraceEvent>& events) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    SARN_LOG(Error) << "cannot open trace file " << path;
    return false;
  }
  out << ToChromeTraceJson(events) << "\n";
  out.flush();
  if (!out.good()) {
    SARN_LOG(Error) << "short write to trace file " << path;
    return false;
  }
  return true;
}

bool Tracer::AppendChromeTrace(const std::string& path,
                               const std::vector<TraceEvent>& events) {
  constexpr const char* kPrefix = "{\"traceEvents\":[";
  constexpr const char* kSuffix = "],\"displayTimeUnit\":\"ms\"}";
  std::string existing;
  {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      existing.assign(std::istreambuf_iterator<char>(in),
                      std::istreambuf_iterator<char>());
    }
  }
  size_t tail = existing.rfind(kSuffix);
  if (existing.compare(0, std::string(kPrefix).size(), kPrefix) != 0 ||
      tail == std::string::npos) {
    // Missing or foreign file: start fresh rather than corrupt it further.
    return WriteChromeTrace(path, events);
  }
  // Splice: keep the prior array contents, comma-join the new events' array
  // contents, restore the closing suffix. Both halves stay valid JSON.
  std::string fresh = ToChromeTraceJson(events);
  std::string fresh_inner = fresh.substr(
      std::string(kPrefix).size(),
      fresh.rfind(kSuffix) - std::string(kPrefix).size());
  std::string merged = existing.substr(0, tail);
  bool prior_empty = tail == std::string(kPrefix).size();
  if (!fresh_inner.empty()) {
    if (!prior_empty) merged += ",";
    merged += fresh_inner;
  }
  merged += kSuffix;

  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    SARN_LOG(Error) << "cannot open trace file " << path;
    return false;
  }
  out << merged << "\n";
  out.flush();
  if (!out.good()) {
    SARN_LOG(Error) << "short write to trace file " << path;
    return false;
  }
  return true;
}

}  // namespace sarn::obs
