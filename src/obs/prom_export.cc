#include "obs/prom_export.h"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace sarn::obs {
namespace {

// Prometheus value rendering: full double precision, non-finite spelled the
// way the exposition format expects.
std::string PromNumber(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

std::string PromMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

std::string PrometheusText(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  for (const auto& [name, value] : snapshot.counters) {
    std::string prom = PromMetricName(name);
    out << "# TYPE " << prom << " counter\n";
    out << prom << " " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    std::string prom = PromMetricName(name);
    out << "# TYPE " << prom << " gauge\n";
    out << prom << " " << PromNumber(value) << "\n";
  }
  for (const MetricsSnapshot::HistogramStat& h : snapshot.histograms) {
    std::string prom = PromMetricName(h.name);
    out << "# TYPE " << prom << " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += i < h.bucket_counts.size() ? h.bucket_counts[i] : 0;
      out << prom << "_bucket{le=\"" << PromNumber(h.bounds[i]) << "\"} "
          << cumulative << "\n";
    }
    out << prom << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    out << prom << "_sum " << PromNumber(h.sum) << "\n";
    out << prom << "_count " << h.count << "\n";
  }
  return out.str();
}

bool WritePromFile(const MetricsSnapshot& snapshot, const std::string& path) {
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << PrometheusText(snapshot);
    out.flush();
    if (!out) return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace sarn::obs
