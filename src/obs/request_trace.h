// Request-scoped serve tracing: per-request stage timestamps recorded into a
// lock-free ring buffer, with tail retention for the slowest requests.
//
// Design (DESIGN.md §14): every admitted query gets a monotonically-assigned
// id from a RequestTracer. A uniform sample (1-in-sample_every) of requests is
// *traced*: the engine stamps a timeline of stage timestamps into a
// RequestContext as the query moves admit -> enqueue -> batch-form -> scan ->
// reply, and Finish() publishes the completed record into a fixed-size ring
// of recent records. The ring is written lock-free (fetch_add slot claim +
// per-slot seqlock so readers detect torn records and skip them); a small
// mutex-guarded side table additionally retains the slowest N requests ever
// seen so the tail survives ring wrap-around (tail sampling).
//
// The stage model telescopes: the five reported stages are consecutive
// timestamp deltas covering [admit, replied] with no gaps, so per-stage
// attribution sums to exactly the end-to-end latency by construction.
//
// Cost contract (mirrors trace.h): when tracing is disabled — sample_every=0
// or the context was sampled out — every RequestContext::Mark* call is a
// branch on a bool already in the object; the only shared-state touch on the
// sampled-out path is one relaxed fetch_add per request for id assignment,
// which the serve path already performs for its own bookkeeping. Tracing
// never changes query results: it only reads the clock and writes
// tracer-owned memory (pinned by the serve bitwise-identity test).

#ifndef SARN_OBS_REQUEST_TRACE_H_
#define SARN_OBS_REQUEST_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace sarn::obs {

/// The five named stages a traced request's latency is attributed to.
/// Values index RequestRecord::StageNanos.
enum class RequestStage {
  kAdmission = 0,  // admit -> enqueued: admission checks + queue push.
  kQueue = 1,      // enqueued -> batch_formed: waiting for a batch slot.
  kCache = 2,      // batch_formed -> scan_begin: resolve + cache lookup.
  kScan = 3,       // scan_begin -> scan_end: index scan (0 for cache hits).
  kReply = 4,      // scan_end -> replied: result copy + promise fulfilment.
};
inline constexpr int kRequestStageCount = 5;
const char* RequestStageName(RequestStage stage);

/// One completed traced request. Timestamps are monotonic-clock nanoseconds;
/// stages telescope: admit <= enqueued <= batch_formed <= scan_begin <=
/// scan_end <= replied, so StageNanos sums exactly to TotalNanos.
struct RequestRecord {
  uint64_t id = 0;
  uint64_t admit_ns = 0;
  uint64_t enqueued_ns = 0;
  uint64_t batch_formed_ns = 0;
  uint64_t scan_begin_ns = 0;
  uint64_t scan_end_ns = 0;
  uint64_t replied_ns = 0;
  bool cache_hit = false;
  bool ok = true;  // False when the request resolved to an error reply.

  uint64_t TotalNanos() const { return replied_ns - admit_ns; }
  uint64_t StageNanos(RequestStage stage) const;
};

class RequestTracer;

/// Per-request handle stamped by the serve path. Movable, not copyable.
/// Default-constructed or sampled-out contexts are inert: Mark*/Finish are a
/// single predictable branch. Stamping order must follow the stage model;
/// Finish() fills any unstamped trailing timestamps from the reply time (an
/// error rejected at admission still telescopes — its scan stage is 0).
class RequestContext {
 public:
  RequestContext() = default;
  RequestContext(RequestContext&& other) noexcept { *this = std::move(other); }
  RequestContext& operator=(RequestContext&& other) noexcept {
    record_ = other.record_;
    tracer_ = other.tracer_;
    traced_ = other.traced_;
    other.tracer_ = nullptr;
    other.traced_ = false;
    return *this;
  }
  RequestContext(const RequestContext&) = delete;
  RequestContext& operator=(const RequestContext&) = delete;

  /// The request id (assigned even when sampled out; 0 for a
  /// default-constructed context).
  uint64_t id() const { return record_.id; }
  /// True when this request's timeline is being recorded.
  bool traced() const { return traced_; }
  /// The timeline as stamped so far (complete right after Finish(), which
  /// the serve path uses to feed the per-stage histograms).
  const RequestRecord& record() const { return record_; }

  void MarkEnqueued() {
    if (traced_) record_.enqueued_ns = Now();
  }
  void MarkBatchFormed() {
    if (traced_) record_.batch_formed_ns = Now();
  }
  void MarkScanBegin() {
    if (traced_) record_.scan_begin_ns = Now();
  }
  void MarkScanEnd() {
    if (traced_) record_.scan_end_ns = Now();
  }
  void MarkCacheHit() {
    if (traced_) record_.cache_hit = true;
  }

  /// Stamps the reply time, back-fills unstamped timestamps so stages
  /// telescope, publishes the record to the tracer, and returns end-to-end
  /// nanoseconds (0 when untraced). Idempotent via the traced_ flag.
  uint64_t Finish(bool ok);

 private:
  friend class RequestTracer;
  static uint64_t Now();

  RequestRecord record_;
  RequestTracer* tracer_ = nullptr;
  bool traced_ = false;
};

/// Owns the ring buffer + slowest-N table. One per QueryEngine (serve) —
/// the instance is engine-owned so hot-swapping an index never resets ids.
/// Thread-safe: Admit/publish are called from admission + worker threads
/// concurrently with Snapshot readers.
class RequestTracer {
 public:
  struct Options {
    /// Uniform sampling period: every sample_every-th admitted request is
    /// traced. 1 = trace everything, 0 = tracing disabled (Admit still
    /// assigns ids; contexts are inert).
    uint32_t sample_every = 16;
    /// Ring capacity (recent traced records); rounded up to a power of two.
    uint32_t ring_capacity = 256;
    /// How many all-time-slowest records to retain past ring wrap.
    uint32_t slowest_capacity = 8;
  };

  explicit RequestTracer(const Options& options);

  /// True when any request may be traced (sample_every > 0). A relaxed
  /// member read — the disabled fast path the PR 3 invariant requires.
  bool enabled() const { return sample_every_ != 0; }
  uint32_t sample_every() const { return sample_every_; }

  /// Assigns the next request id and decides sampling. The returned context
  /// has admit stamped when traced.
  RequestContext Admit();

  /// Point-in-time view for statsz: recent ring records (torn slots skipped,
  /// newest last) and the slowest-N table (slowest first).
  struct TraceSnapshot {
    uint64_t admitted = 0;  // Requests admitted (ids assigned).
    uint64_t traced = 0;    // Requests whose timeline was recorded.
    std::vector<RequestRecord> recent;
    std::vector<RequestRecord> slowest;
  };
  TraceSnapshot Snapshot() const;

 private:
  friend class RequestContext;

  // A ring slot guarded by a seqlock: odd sequence = write in progress. The
  // record payload is stored as relaxed atomic words (not a plain struct) so
  // a torn read is detected by the sequence check, never a data race — the
  // ring stays TSan-clean by construction.
  static constexpr int kSlotWords = 8;
  struct Slot {
    std::atomic<uint64_t> sequence{0};
    std::atomic<uint64_t> words[kSlotWords] = {};
  };
  static void EncodeRecord(const RequestRecord& record, uint64_t* words);
  static RequestRecord DecodeRecord(const uint64_t* words);

  void Publish(const RequestRecord& record);

  uint32_t sample_every_ = 0;
  uint32_t ring_mask_ = 0;  // capacity - 1 (capacity is a power of two).
  std::unique_ptr<Slot[]> ring_;
  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> published_{0};

  uint32_t slowest_capacity_ = 0;
  mutable std::mutex slowest_mu_;
  std::vector<RequestRecord> slowest_;  // Sorted slowest-first.
  // Cheap pre-filter: requests faster than this can't enter the table, so
  // the mutex is only taken for genuine tail candidates once it fills.
  std::atomic<uint64_t> slowest_floor_ns_{0};
};

}  // namespace sarn::obs

#endif  // SARN_OBS_REQUEST_TRACE_H_
