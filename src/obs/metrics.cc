#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace sarn::obs {
namespace {

// CAS-add for pre-C++20-fetch_add atomic<double> portability.
void AtomicAdd(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  SARN_CHECK(!bounds_.empty()) << "histogram needs at least one bucket bound";
  for (size_t i = 1; i < bounds_.size(); ++i) {
    SARN_CHECK(bounds_[i - 1] < bounds_[i]) << "bucket bounds must ascend";
  }
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  exemplars_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0);
    exemplars_[i].store(0);
  }
}

size_t Histogram::BucketFor(double value) const {
  // First bucket whose upper bound contains `value`; overflow otherwise.
  size_t bucket = std::upper_bound(bounds_.begin(), bounds_.end(), value) -
                  bounds_.begin();
  if (bucket > 0 && value == bounds_[bucket - 1]) bucket -= 1;  // Inclusive bound.
  return bucket;
}

void Histogram::Observe(double value) {
  buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, value);
}

void Histogram::ObserveWithExemplar(double value, uint64_t exemplar_id) {
  const size_t bucket = BucketFor(value);
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  if (exemplar_id != 0) {
    exemplars_[bucket].store(exemplar_id, std::memory_order_relaxed);
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, value);
}

double Histogram::Mean() const {
  uint64_t count = Count();
  return count == 0 ? 0.0 : Sum() / static_cast<double>(count);
}

double Histogram::Percentile(double p) const {
  return PercentileFromCounts(bounds_, BucketCounts(), p);
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> counts(bounds_.size() + 1);
  for (size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

std::vector<uint64_t> Histogram::BucketExemplars() const {
  std::vector<uint64_t> ids(bounds_.size() + 1);
  for (size_t i = 0; i < ids.size(); ++i) {
    ids[i] = exemplars_[i].load(std::memory_order_relaxed);
  }
  return ids;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
    exemplars_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

double PercentileFromCounts(const std::vector<double>& bounds,
                            const std::vector<uint64_t>& counts, double p) {
  SARN_CHECK_EQ(counts.size(), bounds.size() + 1);
  p = std::clamp(p, 0.0, 100.0);
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  if (total == 1) {
    // Interpolating a rank inside a one-sample bucket would just echo `p`;
    // report the sample's bucket midpoint instead (overflow -> last bound).
    for (size_t i = 0; i < counts.size(); ++i) {
      if (counts[i] == 0) continue;
      if (i == counts.size() - 1) return bounds.back();  // Overflow bucket.
      double lower = i == 0 ? 0.0 : bounds[i - 1];
      return (lower + bounds[i]) / 2.0;
    }
  }
  double rank = p / 100.0 * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    uint64_t next = cumulative + counts[i];
    if (static_cast<double>(next) >= rank) {
      if (i == counts.size() - 1) return bounds.back();  // Overflow bucket.
      double lower = i == 0 ? 0.0 : bounds[i - 1];
      double upper = bounds[i];
      double within = (rank - static_cast<double>(cumulative)) /
                      static_cast<double>(counts[i]);
      return lower + (upper - lower) * std::clamp(within, 0.0, 1.0);
    }
    cumulative = next;
  }
  return bounds.back();
}

std::vector<double> ExponentialBuckets(double start, double factor, int count) {
  SARN_CHECK_GT(start, 0.0);
  SARN_CHECK_GT(factor, 1.0);
  SARN_CHECK_GT(count, 0);
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(count));
  double bound = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::vector<double> DefaultLatencyBuckets() {
  // Seconds: 1us .. ~134s in x4 steps (14 buckets + overflow).
  return ExponentialBuckets(1e-6, 4.0, 14);
}

const char* InstrumentKindName(InstrumentKind kind) {
  switch (kind) {
    case InstrumentKind::kCounter:
      return "counter";
    case InstrumentKind::kGauge:
      return "gauge";
    case InstrumentKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

namespace {

// Binds `name` to `kind`, aborting on a cross-kind collision. Caller holds
// the registry mutex.
void BindKind(std::map<std::string, InstrumentKind>& kinds,
              const std::string& name, InstrumentKind kind) {
  auto [it, inserted] = kinds.emplace(name, kind);
  SARN_CHECK(inserted || it->second == kind)
      << "metric name collision: \"" << name << "\" is registered as a "
      << InstrumentKindName(it->second) << ", requested "
      << InstrumentKindName(kind);
}

}  // namespace

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  BindKind(kinds_, name, InstrumentKind::kCounter);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  BindKind(kinds_, name, InstrumentKind::kGauge);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  BindKind(kinds_, name, InstrumentKind::kHistogram);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(upper_bounds));
  return *slot;
}

std::optional<InstrumentKind> MetricsRegistry::Kind(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = kinds_.find(name);
  if (it == kinds_.end()) return std::nullopt;
  return it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->Value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->Value());
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramStat stat;
    stat.name = name;
    stat.count = histogram->Count();
    stat.sum = histogram->Sum();
    stat.p50 = histogram->Percentile(50.0);
    stat.p95 = histogram->Percentile(95.0);
    stat.p99 = histogram->Percentile(99.0);
    stat.bounds = histogram->bucket_bounds();
    stat.bucket_counts = histogram->BucketCounts();
    stat.exemplars = histogram->BucketExemplars();
    snapshot.histograms.push_back(std::move(stat));
  }
  return snapshot;
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace sarn::obs
