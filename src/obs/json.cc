#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace sarn::obs {
namespace {

// Recursive-descent validator over a string_view cursor. Depth-capped so a
// pathological input cannot blow the stack.
class Validator {
 public:
  explicit Validator(std::string_view text) : text_(text) {}

  bool Validate(std::string* error) {
    SkipSpace();
    if (!Value(0)) {
      Fill(error);
      return false;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      message_ = "trailing bytes after JSON value";
      Fill(error);
      return false;
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 128;

  bool Fail(const char* message) {
    if (message_.empty()) message_ = message;
    return false;
  }

  void Fill(std::string* error) {
    if (error != nullptr) {
      *error = message_.empty() ? "invalid JSON" : message_;
      *error += " (at byte " + std::to_string(pos_) + ")";
    }
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipSpace() {
    while (!AtEnd() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\n' ||
                        Peek() == '\r')) {
      ++pos_;
    }
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return Fail("bad literal");
    pos_ += word.size();
    return true;
  }

  bool String() {
    if (AtEnd() || Peek() != '"') return Fail("expected string");
    ++pos_;
    while (!AtEnd()) {
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return Fail("raw control character in string");
      if (c == '\\') {
        ++pos_;
        if (AtEnd()) return Fail("truncated escape");
        char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (AtEnd() || !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return Fail("bad \\u escape");
            }
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return Fail("bad escape character");
        }
      }
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool Digits() {
    if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
      return Fail("expected digit");
    }
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    return true;
  }

  bool Number() {
    if (!AtEnd() && Peek() == '-') ++pos_;
    if (AtEnd()) return Fail("truncated number");
    if (Peek() == '0') {
      ++pos_;
    } else if (!Digits()) {
      return false;
    }
    if (!AtEnd() && Peek() == '.') {
      ++pos_;
      if (!Digits()) return Fail("bad fraction");
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (!Digits()) return Fail("bad exponent");
    }
    return true;
  }

  bool Value(int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (AtEnd()) return Fail("expected value");
    char c = Peek();
    if (c == '{') return Object(depth);
    if (c == '[') return Array(depth);
    if (c == '"') return String();
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) return Number();
    return Fail("unexpected character");
  }

  bool Object(int depth) {
    ++pos_;  // '{'
    SkipSpace();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipSpace();
      if (!String()) return false;
      SkipSpace();
      if (AtEnd() || Peek() != ':') return Fail("expected ':'");
      ++pos_;
      SkipSpace();
      if (!Value(depth + 1)) return false;
      SkipSpace();
      if (AtEnd()) return Fail("unterminated object");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool Array(int depth) {
    ++pos_;  // '['
    SkipSpace();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipSpace();
      if (!Value(depth + 1)) return false;
      SkipSpace();
      if (AtEnd()) return Fail("unterminated array");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string message_;
};

}  // namespace

bool JsonValid(std::string_view text, std::string* error) {
  return Validator(text).Validate(error);
}

bool JsonLinesValid(std::string_view text, std::string* error) {
  size_t line_start = 0;
  int line_number = 1;
  while (line_start <= text.size()) {
    size_t line_end = text.find('\n', line_start);
    if (line_end == std::string_view::npos) line_end = text.size();
    std::string_view line = text.substr(line_start, line_end - line_start);
    bool blank = line.find_first_not_of(" \t\r") == std::string_view::npos;
    if (!blank && !JsonValid(line, error)) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_number) + ": " + *error;
      }
      return false;
    }
    if (line_end == text.size()) break;
    line_start = line_end + 1;
    ++line_number;
  }
  return true;
}

void JsonEscape(std::string_view value, std::string* out) {
  for (unsigned char c : value) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          *out += buffer;
        } else {
          *out += static_cast<char>(c);
        }
    }
  }
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

}  // namespace sarn::obs
