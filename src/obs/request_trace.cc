#include "obs/request_trace.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"

namespace sarn::obs {
namespace {

uint32_t RoundUpPow2(uint32_t v) {
  uint32_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

const char* RequestStageName(RequestStage stage) {
  switch (stage) {
    case RequestStage::kAdmission:
      return "admission";
    case RequestStage::kQueue:
      return "queue";
    case RequestStage::kCache:
      return "cache";
    case RequestStage::kScan:
      return "scan";
    case RequestStage::kReply:
      return "reply";
  }
  return "unknown";
}

uint64_t RequestRecord::StageNanos(RequestStage stage) const {
  switch (stage) {
    case RequestStage::kAdmission:
      return enqueued_ns - admit_ns;
    case RequestStage::kQueue:
      return batch_formed_ns - enqueued_ns;
    case RequestStage::kCache:
      return scan_begin_ns - batch_formed_ns;
    case RequestStage::kScan:
      return scan_end_ns - scan_begin_ns;
    case RequestStage::kReply:
      return replied_ns - scan_end_ns;
  }
  return 0;
}

uint64_t RequestContext::Now() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t RequestContext::Finish(bool ok) {
  if (!traced_) return 0;
  traced_ = false;
  record_.ok = ok;
  record_.replied_ns = Now();
  // Back-fill timestamps the serve path never reached (admission rejection,
  // cache hit resolved before a scan) so the stage deltas telescope: an
  // unstamped stage collapses to zero rather than going negative.
  if (record_.enqueued_ns == 0) record_.enqueued_ns = record_.replied_ns;
  if (record_.batch_formed_ns < record_.enqueued_ns) {
    record_.batch_formed_ns = record_.enqueued_ns;
  }
  if (record_.scan_begin_ns < record_.batch_formed_ns) {
    record_.scan_begin_ns = record_.batch_formed_ns;
  }
  if (record_.scan_end_ns < record_.scan_begin_ns) {
    record_.scan_end_ns = record_.scan_begin_ns;
  }
  if (record_.replied_ns < record_.scan_end_ns) {
    record_.replied_ns = record_.scan_end_ns;
  }
  if (tracer_ != nullptr) tracer_->Publish(record_);
  return record_.TotalNanos();
}

RequestTracer::RequestTracer(const Options& options)
    : sample_every_(options.sample_every),
      slowest_capacity_(options.slowest_capacity) {
  uint32_t capacity = RoundUpPow2(std::max<uint32_t>(options.ring_capacity, 2));
  ring_mask_ = capacity - 1;
  ring_ = std::make_unique<Slot[]>(capacity);
  slowest_.reserve(slowest_capacity_);
}

RequestContext RequestTracer::Admit() {
  RequestContext ctx;
  uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  ctx.record_.id = id;
  if (sample_every_ != 0 && (id % sample_every_) == 0) {
    ctx.traced_ = true;
    ctx.tracer_ = this;
    ctx.record_.admit_ns = RequestContext::Now();
  }
  return ctx;
}

void RequestTracer::EncodeRecord(const RequestRecord& record,
                                 uint64_t* words) {
  words[0] = record.id;
  words[1] = record.admit_ns;
  words[2] = record.enqueued_ns;
  words[3] = record.batch_formed_ns;
  words[4] = record.scan_begin_ns;
  words[5] = record.scan_end_ns;
  words[6] = record.replied_ns;
  words[7] = (record.cache_hit ? 1u : 0u) | (record.ok ? 2u : 0u);
}

RequestRecord RequestTracer::DecodeRecord(const uint64_t* words) {
  RequestRecord record;
  record.id = words[0];
  record.admit_ns = words[1];
  record.enqueued_ns = words[2];
  record.batch_formed_ns = words[3];
  record.scan_begin_ns = words[4];
  record.scan_end_ns = words[5];
  record.replied_ns = words[6];
  record.cache_hit = (words[7] & 1u) != 0;
  record.ok = (words[7] & 2u) != 0;
  return record;
}

void RequestTracer::Publish(const RequestRecord& record) {
  // Ring write: claim a slot with fetch_add, bracket the word stores with an
  // odd sequence so a concurrent reader detects the torn window and skips it.
  uint64_t ticket = published_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = ring_[ticket & ring_mask_];
  uint64_t seq = slot.sequence.load(std::memory_order_relaxed);
  slot.sequence.store(seq + 1, std::memory_order_release);  // Odd: writing.
  uint64_t words[kSlotWords];
  EncodeRecord(record, words);
  for (int i = 0; i < kSlotWords; ++i) {
    slot.words[i].store(words[i], std::memory_order_relaxed);
  }
  slot.sequence.store(seq + 2, std::memory_order_release);  // Even: stable.

  // Slowest-N tail retention. The relaxed floor read keeps the common case
  // (request faster than the current table minimum) lock-free.
  if (slowest_capacity_ == 0) return;
  uint64_t total = record.TotalNanos();
  if (total <= slowest_floor_ns_.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(slowest_mu_);
  auto pos = std::upper_bound(
      slowest_.begin(), slowest_.end(), total,
      [](uint64_t t, const RequestRecord& r) { return t > r.TotalNanos(); });
  if (slowest_.size() < slowest_capacity_) {
    slowest_.insert(pos, record);
  } else if (pos != slowest_.end()) {
    slowest_.insert(pos, record);
    slowest_.pop_back();
  }
  if (slowest_.size() == slowest_capacity_) {
    slowest_floor_ns_.store(slowest_.back().TotalNanos(),
                            std::memory_order_relaxed);
  }
}

RequestTracer::TraceSnapshot RequestTracer::Snapshot() const {
  TraceSnapshot snapshot;
  snapshot.admitted = next_id_.load(std::memory_order_relaxed) - 1;
  uint64_t published = published_.load(std::memory_order_acquire);
  snapshot.traced = published;
  uint32_t capacity = ring_mask_ + 1;
  uint64_t begin = published > capacity ? published - capacity : 0;
  snapshot.recent.reserve(static_cast<size_t>(published - begin));
  for (uint64_t ticket = begin; ticket < published; ++ticket) {
    const Slot& slot = ring_[ticket & ring_mask_];
    // Seqlock read: retry a few times on a torn slot, then skip it — a
    // statsz dump tolerates a missing record, never a half-written one.
    for (int attempt = 0; attempt < 4; ++attempt) {
      uint64_t before = slot.sequence.load(std::memory_order_acquire);
      if (before & 1) continue;  // Write in progress.
      uint64_t words[kSlotWords];
      for (int i = 0; i < kSlotWords; ++i) {
        words[i] = slot.words[i].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      uint64_t after = slot.sequence.load(std::memory_order_relaxed);
      if (before == after && before != 0) {
        snapshot.recent.push_back(DecodeRecord(words));
        break;
      }
      if (before == 0 && after == 0) break;  // Never written (early startup).
    }
  }
  {
    std::lock_guard<std::mutex> lock(slowest_mu_);
    snapshot.slowest = slowest_;
  }
  return snapshot;
}

}  // namespace sarn::obs
