#include "obs/slo.h"

#include <chrono>

#include "common/check.h"
#include "common/logging.h"

namespace sarn::obs {

SloWatchdog::Evaluation SloWatchdog::Evaluate(
    const std::vector<double>& bounds, const std::vector<uint64_t>& oldest,
    const std::vector<uint64_t>& newest, double budget_p99_ms) {
  SARN_CHECK_EQ(oldest.size(), bounds.size() + 1);
  SARN_CHECK_EQ(newest.size(), bounds.size() + 1);
  Evaluation eval;
  std::vector<uint64_t> delta(newest.size());
  for (size_t i = 0; i < newest.size(); ++i) {
    // Cumulative counts never decrease; clamp defensively anyway (a test
    // ResetForTest between snapshots must not underflow).
    delta[i] = newest[i] >= oldest[i] ? newest[i] - oldest[i] : 0;
    eval.window_count += delta[i];
  }
  if (eval.window_count == 0) return eval;
  eval.has_samples = true;
  // The watched histogram records seconds; the budget is expressed in ms.
  eval.p99_ms = PercentileFromCounts(bounds, delta, 99.0) * 1e3;
  eval.breached = eval.p99_ms > budget_p99_ms;
  return eval;
}

SloWatchdog::SloWatchdog(const Options& options, MetricsSink* sink)
    : options_(options), sink_(sink) {
  SARN_CHECK_GT(options_.budget_p99_ms, 0.0);
  SARN_CHECK_GT(options_.window_seconds, 0.0);
  SARN_CHECK_GT(options_.tick_seconds, 0.0);
  thread_ = std::thread([this] { Run(); });
}

SloWatchdog::~SloWatchdog() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void SloWatchdog::Run() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::duration<double>(options_.tick_seconds),
                 [this] { return stop_; });
    if (stop_) return;
    lock.unlock();
    Tick();
    lock.lock();
  }
}

void SloWatchdog::Tick() {
  Histogram& histogram =
      MetricsRegistry::Default().GetHistogram(options_.metric);
  const std::vector<double>& bounds = histogram.bucket_bounds();
  auto now = std::chrono::steady_clock::now();
  window_.push_back({now, histogram.BucketCounts()});
  // Keep one snapshot older than the window so the delta spans >= window.
  auto horizon = now - std::chrono::duration_cast<
                           std::chrono::steady_clock::duration>(
                           std::chrono::duration<double>(options_.window_seconds));
  while (window_.size() > 2 && window_[1].at <= horizon) window_.pop_front();
  if (window_.size() < 2) return;

  const TimedCounts& oldest = window_.front();
  const TimedCounts& newest = window_.back();
  Evaluation eval =
      Evaluate(bounds, oldest.counts, newest.counts, options_.budget_p99_ms);
  MetricsRegistry::Default().GetGauge("sarn.slo.p99_ms").Set(eval.p99_ms);
  if (!eval.has_samples) return;

  double span_seconds =
      std::chrono::duration<double>(newest.at - oldest.at).count();
  if (eval.breached && !in_breach_) {
    in_breach_ = true;
    breaches_.fetch_add(1, std::memory_order_relaxed);
    MetricsRegistry::Default().GetCounter("sarn.slo.breaches").Increment();
    SloBurnEvent event;
    event.kind = SloBurnEvent::Kind::kBreach;
    event.metric = options_.metric;
    event.budget_ms = options_.budget_p99_ms;
    event.p99_ms = eval.p99_ms;
    event.window_seconds = span_seconds;
    event.window_count = eval.window_count;
    SARN_LOG(Warning) << "slo breach metric=" << event.metric
                      << " p99_ms=" << event.p99_ms
                      << " budget_ms=" << event.budget_ms
                      << " window_count=" << event.window_count;
    if (sink_ != nullptr) sink_->OnSlo(event);
  } else if (!eval.breached && in_breach_) {
    in_breach_ = false;
    SloBurnEvent event;
    event.kind = SloBurnEvent::Kind::kRecovered;
    event.metric = options_.metric;
    event.budget_ms = options_.budget_p99_ms;
    event.p99_ms = eval.p99_ms;
    event.window_seconds = span_seconds;
    event.window_count = eval.window_count;
    SARN_LOG(Info) << "slo recovered metric=" << event.metric
                   << " p99_ms=" << event.p99_ms
                   << " budget_ms=" << event.budget_ms;
    if (sink_ != nullptr) sink_->OnSlo(event);
  }
}

}  // namespace sarn::obs
