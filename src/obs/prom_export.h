// Prometheus text exposition format 0.0.4 emitter for MetricsSnapshot.
//
// Mapping (DESIGN.md §14): dotted SARN metric names become underscore-joined
// Prometheus names ("sarn.serve.requests" -> "sarn_serve_requests"). Counters
// export as `counter`, gauges as `gauge`, histograms as `histogram` with the
// standard cumulative `_bucket{le="..."}` series (including `le="+Inf"`),
// `_sum` and `_count`. Text format 0.0.4 has no exemplar syntax, so bucket
// exemplar request ids surface only through statsz; this file emits strictly
// parseable 0.0.4 text.

#ifndef SARN_OBS_PROM_EXPORT_H_
#define SARN_OBS_PROM_EXPORT_H_

#include <string>

#include "obs/metrics.h"

namespace sarn::obs {

/// "sarn.serve.load_ms" -> "sarn_serve_load_ms": characters outside
/// [a-zA-Z0-9_:] become '_', and a leading digit gains a '_' prefix.
std::string PromMetricName(const std::string& name);

/// Renders the whole snapshot as Prometheus text exposition format 0.0.4.
/// Deterministic: instruments appear in snapshot (name-sorted) order.
std::string PrometheusText(const MetricsSnapshot& snapshot);

/// Atomically replaces `path` with the rendered snapshot (tmp + rename, same
/// publication discipline as checkpoints). Returns false on I/O failure.
bool WritePromFile(const MetricsSnapshot& snapshot, const std::string& path);

}  // namespace sarn::obs

#endif  // SARN_OBS_PROM_EXPORT_H_
