#include "obs/metrics_sink.h"

#include "common/logging.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace sarn::obs {
namespace {

void AppendField(std::string* json, const char* key, const std::string& value,
                 bool* first) {
  if (!*first) *json += ",";
  *first = false;
  *json += "\"";
  *json += key;
  *json += "\":";
  *json += value;
}

std::string Quoted(std::string_view value) {
  std::string out = "\"";
  JsonEscape(value, &out);
  out += "\"";
  return out;
}

}  // namespace

const char* CheckpointActionName(CheckpointEvent::Action action) {
  switch (action) {
    case CheckpointEvent::Action::kWritten:
      return "written";
    case CheckpointEvent::Action::kWriteFailed:
      return "write_failed";
    case CheckpointEvent::Action::kSkippedCorrupt:
      return "skipped_corrupt";
    case CheckpointEvent::Action::kSkippedMismatch:
      return "skipped_mismatch";
    case CheckpointEvent::Action::kResumedFrom:
      return "resumed_from";
  }
  return "?";
}

std::string EpochRecordToJson(const EpochRecord& record) {
  std::string json = "{";
  bool first = true;
  AppendField(&json, "event", Quoted("epoch"), &first);
  AppendField(&json, "run", Quoted(record.run), &first);
  AppendField(&json, "epoch", std::to_string(record.epoch), &first);
  AppendField(&json, "loss", JsonNumber(record.loss), &first);
  AppendField(&json, "grad_norm", JsonNumber(record.grad_norm), &first);
  AppendField(&json, "lr", JsonNumber(record.learning_rate), &first);
  AppendField(&json, "batches", std::to_string(record.batches), &first);
  AppendField(&json, "epoch_seconds", JsonNumber(record.epoch_seconds), &first);
  AppendField(&json, "resumed", record.resumed ? "true" : "false", &first);

  std::string phases = "{";
  bool phases_first = true;
  for (const auto& [name, seconds] : record.phase_seconds) {
    AppendField(&phases, name.c_str(), JsonNumber(seconds), &phases_first);
  }
  phases += "}";
  AppendField(&json, "phases", phases, &first);

  if (record.queue_stored >= 0) {
    std::string queue = "{";
    bool queue_first = true;
    AppendField(&queue, "stored", std::to_string(record.queue_stored), &queue_first);
    AppendField(&queue, "nonempty_cells", std::to_string(record.queue_nonempty_cells),
                &queue_first);
    AppendField(&queue, "pushes", std::to_string(record.queue_pushes), &queue_first);
    AppendField(&queue, "evictions", std::to_string(record.queue_evictions),
                &queue_first);
    queue += "}";
    AppendField(&json, "queue", queue, &first);
  }

  std::string checkpoint = "{";
  bool ckpt_first = true;
  AppendField(&checkpoint, "bytes", std::to_string(record.checkpoint_bytes),
              &ckpt_first);
  AppendField(&checkpoint, "seconds", JsonNumber(record.checkpoint_seconds),
              &ckpt_first);
  checkpoint += "}";
  AppendField(&json, "checkpoint", checkpoint, &first);

  std::string pool = "{";
  bool pool_first = true;
  AppendField(&pool, "regions", std::to_string(record.pool_regions), &pool_first);
  AppendField(&pool, "chunks", std::to_string(record.pool_chunks), &pool_first);
  AppendField(&pool, "items", std::to_string(record.pool_items), &pool_first);
  AppendField(&pool, "idle_seconds", JsonNumber(record.pool_idle_seconds),
              &pool_first);
  pool += "}";
  AppendField(&json, "pool", pool, &first);

  json += "}";
  return json;
}

const char* SloBurnKindName(SloBurnEvent::Kind kind) {
  switch (kind) {
    case SloBurnEvent::Kind::kBreach:
      return "breach";
    case SloBurnEvent::Kind::kRecovered:
      return "recovered";
  }
  return "?";
}

std::string SloBurnEventToJson(const SloBurnEvent& event) {
  std::string json = "{";
  bool first = true;
  AppendField(&json, "event", Quoted("slo"), &first);
  AppendField(&json, "kind", Quoted(SloBurnKindName(event.kind)), &first);
  AppendField(&json, "metric", Quoted(event.metric), &first);
  AppendField(&json, "budget_ms", JsonNumber(event.budget_ms), &first);
  AppendField(&json, "p99_ms", JsonNumber(event.p99_ms), &first);
  AppendField(&json, "window_seconds", JsonNumber(event.window_seconds), &first);
  AppendField(&json, "window_count", std::to_string(event.window_count), &first);
  json += "}";
  return json;
}

std::string CheckpointEventToJson(const CheckpointEvent& event) {
  std::string json = "{";
  bool first = true;
  AppendField(&json, "event", Quoted("checkpoint"), &first);
  AppendField(&json, "action", Quoted(CheckpointActionName(event.action)), &first);
  AppendField(&json, "path", Quoted(event.path), &first);
  AppendField(&json, "epoch", std::to_string(event.epoch), &first);
  AppendField(&json, "bytes", std::to_string(event.bytes), &first);
  AppendField(&json, "seconds", JsonNumber(event.seconds), &first);
  if (!event.detail.empty()) {
    AppendField(&json, "detail", Quoted(event.detail), &first);
  }
  json += "}";
  return json;
}

JsonlMetricsSink::JsonlMetricsSink(const std::string& path)
    : out_(path, std::ios::app) {
  if (!out_.is_open()) {
    SARN_LOG(Error) << "cannot open metrics file " << path << " for append";
  }
}

void JsonlMetricsSink::WriteLine(const std::string& line) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!out_.is_open()) return;
  out_ << line << "\n";
  out_.flush();  // One line per epoch: durability beats batching here.
}

void JsonlMetricsSink::OnEpoch(const EpochRecord& record) {
  WriteLine(EpochRecordToJson(record));
}

void JsonlMetricsSink::OnCheckpoint(const CheckpointEvent& event) {
  WriteLine(CheckpointEventToJson(event));
}

void JsonlMetricsSink::OnSlo(const SloBurnEvent& event) {
  WriteLine(SloBurnEventToJson(event));
}

void JsonlMetricsSink::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (out_.is_open()) out_.flush();
}

void RecordCheckpointEvent(MetricsSink* sink, const CheckpointEvent& event) {
  const char* action = CheckpointActionName(event.action);
  MetricsRegistry& registry = MetricsRegistry::Default();
  registry.GetCounter(std::string("sarn.checkpoint.") + action).Increment();
  switch (event.action) {
    case CheckpointEvent::Action::kWritten:
      registry.GetCounter("sarn.checkpoint.bytes_written")
          .Increment(static_cast<uint64_t>(event.bytes));
      registry.GetHistogram("sarn.checkpoint.write_seconds").Observe(event.seconds);
      SARN_LOG(Info) << "checkpoint action=written path=" << event.path
                     << " epoch=" << event.epoch << " bytes=" << event.bytes
                     << " seconds=" << event.seconds;
      break;
    case CheckpointEvent::Action::kWriteFailed:
      SARN_LOG(Error) << "checkpoint action=write_failed path=" << event.path
                      << " epoch=" << event.epoch << " detail=" << event.detail;
      break;
    case CheckpointEvent::Action::kSkippedCorrupt:
      SARN_LOG(Warning) << "checkpoint action=skipped_corrupt path=" << event.path
                        << " detail=" << event.detail;
      break;
    case CheckpointEvent::Action::kSkippedMismatch:
      SARN_LOG(Warning) << "checkpoint action=skipped_mismatch path=" << event.path
                        << " detail=" << event.detail;
      break;
    case CheckpointEvent::Action::kResumedFrom:
      SARN_LOG(Info) << "checkpoint action=resumed_from path=" << event.path
                     << " epoch=" << event.epoch << " bytes=" << event.bytes;
      break;
  }
  if (sink != nullptr) sink->OnCheckpoint(event);
}

}  // namespace sarn::obs
