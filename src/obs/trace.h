// Scoped trace spans with per-thread buffers and Chrome trace_event export.
//
//   SARN_TRACE_SPAN("gat_forward");
//
// records one complete event (name, thread, begin, duration) into the
// calling thread's buffer when tracing is enabled. Cost model:
//  * compile-time off (-DSARN_OBS_NO_TRACE): the macro expands to nothing —
//    span bodies are compiled out entirely;
//  * runtime off (the default): one relaxed atomic load per span;
//  * runtime on: two steady_clock reads plus an uncontended per-thread lock
//    (the lock is only ever contended by Drain).
//
// Buffers are drained into a single event list which can be aggregated into
// per-phase wall-time totals or written as a Chrome trace
// ({"traceEvents":[...]}) for chrome://tracing / https://ui.perfetto.dev.
// Span names must be string literals (or otherwise outlive the tracer).

#ifndef SARN_OBS_TRACE_H_
#define SARN_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sarn::obs {

struct TraceEvent {
  const char* name = nullptr;
  uint32_t tid = 0;
  uint64_t begin_us = 0;  // Microseconds since the tracer's epoch.
  uint64_t dur_us = 0;
};

class Tracer {
 public:
  /// The process-wide tracer used by SARN_TRACE_SPAN.
  static Tracer& Instance();

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Microseconds since the tracer was constructed (monotonic).
  uint64_t NowMicros() const;

  /// Appends one complete event to the calling thread's buffer.
  void Record(const char* name, uint64_t begin_us, uint64_t dur_us);

  /// Removes and returns every buffered event (all threads), begin-ordered.
  std::vector<TraceEvent> Drain();

  /// Total wall-time and count per span name, descending by total.
  struct PhaseTotal {
    std::string name;
    uint64_t count = 0;
    double seconds = 0.0;
  };
  static std::vector<PhaseTotal> Aggregate(const std::vector<TraceEvent>& events);

  /// Serialises events as Chrome trace JSON ({"traceEvents": [...]}).
  static std::string ToChromeTraceJson(const std::vector<TraceEvent>& events);
  /// Writes ToChromeTraceJson to `path`. Returns false on I/O error (logged).
  static bool WriteChromeTrace(const std::string& path,
                               const std::vector<TraceEvent>& events);
  /// Merges `events` into an existing Chrome trace file: the new events are
  /// spliced into the prior file's traceEvents array, so a resumed training
  /// run (kill + `sarn train` again on the same --trace-file) produces one
  /// valid trace holding spans from both process lifetimes. Falls back to
  /// WriteChromeTrace when `path` is missing or not a trace produced here.
  static bool AppendChromeTrace(const std::string& path,
                                const std::vector<TraceEvent>& events);

 private:
  struct ThreadBuffer {
    std::mutex mu;
    std::vector<TraceEvent> events;
  };

  Tracer();
  ThreadBuffer& LocalBuffer();

  std::atomic<bool> enabled_{false};
  uint64_t epoch_ns_ = 0;  // steady_clock at construction.
  std::mutex buffers_mu_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
};

/// RAII span: samples the clock on construction and records on destruction.
/// A span constructed while tracing is disabled stays inert even if tracing
/// is enabled before it closes (and vice versa: a span opened while enabled
/// records on close).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    Tracer& tracer = Tracer::Instance();
    if (tracer.enabled()) {
      name_ = name;
      begin_us_ = tracer.NowMicros();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) {
      Tracer& tracer = Tracer::Instance();
      tracer.Record(name_, begin_us_, tracer.NowMicros() - begin_us_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  uint64_t begin_us_ = 0;
};

}  // namespace sarn::obs

#if defined(SARN_OBS_NO_TRACE)
#define SARN_TRACE_SPAN(name)
#else
#define SARN_TRACE_SPAN_CONCAT2(a, b) a##b
#define SARN_TRACE_SPAN_CONCAT(a, b) SARN_TRACE_SPAN_CONCAT2(a, b)
#define SARN_TRACE_SPAN(name) \
  ::sarn::obs::TraceSpan SARN_TRACE_SPAN_CONCAT(sarn_trace_span_, __LINE__)(name)
#endif

#endif  // SARN_OBS_TRACE_H_
