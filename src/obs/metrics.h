// Lock-cheap training metrics: counters, gauges and fixed-bucket histograms
// behind a name-keyed registry.
//
// Design: looking an instrument up in the registry takes a mutex (once per
// call site — instruments are meant to be cached in a local or static
// reference), but *updating* an instrument is a relaxed atomic operation, so
// thread-pool workers can bump counters and observe histogram samples from
// inside a ParallelFor body without serialising on a lock. Instrument
// references stay valid for the registry's lifetime: ResetForTest() zeroes
// values in place rather than destroying nodes.
//
// Naming scheme (DESIGN.md §9): dotted lowercase, subsystem first —
// "sarn.train.epochs", "sarn.checkpoint.write_seconds", "sarn.pool.chunks".

#ifndef SARN_OBS_METRICS_H_
#define SARN_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace sarn::obs {

/// Monotonically increasing event count. All operations are relaxed atomics.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (e.g. queue occupancy, current LR).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram for non-negative samples (durations, byte counts).
/// Buckets are defined by ascending finite upper bounds; one implicit
/// overflow bucket catches everything above the last bound. Observation is a
/// relaxed fetch_add on one bucket plus a CAS-add on the running sum, so
/// concurrent Observe calls never lose counts.
///
/// Exemplars: ObserveWithExemplar additionally tags the sample's bucket with
/// a caller-chosen id (last writer wins). The serve layer uses this to link
/// tail latency buckets to concrete traced request ids, so "what was the
/// p99?" can be answered with "these exact requests" (statsz, DESIGN.md §14).
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly ascending.
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double value);
  /// Observe + tag the sample's bucket with `exemplar_id` (0 means "none"
  /// and is never stored).
  void ObserveWithExemplar(double value, uint64_t exemplar_id);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Mean() const;

  /// Estimated p-th percentile (p in [0, 100]) by linear interpolation
  /// inside the bucket holding the target rank; samples in the overflow
  /// bucket are attributed to the last finite bound. 0 when empty; the
  /// single-sample estimate is that sample's bucket midpoint (interpolating
  /// a rank inside a one-sample bucket would just echo `p`, which is noise).
  double Percentile(double p) const;

  const std::vector<double>& bucket_bounds() const { return bounds_; }
  /// Per-bucket counts, bounds_.size() + 1 entries (last = overflow).
  std::vector<uint64_t> BucketCounts() const;
  /// Per-bucket exemplar ids, bounds_.size() + 1 entries; 0 = no exemplar.
  std::vector<uint64_t> BucketExemplars() const;

  void Reset();

 private:
  size_t BucketFor(double value) const;

  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;    // bounds_.size() + 1
  std::unique_ptr<std::atomic<uint64_t>[]> exemplars_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Percentile estimate from explicit bucket counts — the same math as
/// Histogram::Percentile, exposed so windowed (snapshot-delta) counts can be
/// evaluated too (the SLO watchdog's sliding window, src/obs/slo.h).
/// `counts` must have bounds.size() + 1 entries (last = overflow).
double PercentileFromCounts(const std::vector<double>& bounds,
                            const std::vector<uint64_t>& counts, double p);

/// Exponential bucket bounds: start, start*factor, ... (count bounds).
std::vector<double> ExponentialBuckets(double start, double factor, int count);
/// Default latency buckets: 1us .. ~2min, x4 steps.
std::vector<double> DefaultLatencyBuckets();

/// Point-in-time copy of every instrument, for export and tests. Histogram
/// stats carry the full bucket layout (bounds, per-bucket counts, exemplar
/// ids) so exporters (Prometheus text, statsz) never re-read live atomics.
struct MetricsSnapshot {
  struct HistogramStat {
    std::string name;
    uint64_t count = 0;
    double sum = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    std::vector<double> bounds;           // Finite upper bounds, ascending.
    std::vector<uint64_t> bucket_counts;  // bounds.size() + 1 (last = overflow).
    std::vector<uint64_t> exemplars;      // bounds.size() + 1; 0 = none.
  };
  std::vector<std::pair<std::string, uint64_t>> counters;  // Sorted by name.
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramStat> histograms;
};

/// What a registry name is bound to. A name maps to exactly one kind for the
/// registry's lifetime: re-requesting it as a different kind is a programming
/// error (silent aliasing would split one series across two instruments).
enum class InstrumentKind { kCounter, kGauge, kHistogram };
const char* InstrumentKindName(InstrumentKind kind);

class MetricsRegistry {
 public:
  /// The process-wide registry used by the SARN_* instrumentation.
  static MetricsRegistry& Default();

  /// Finds or creates the named instrument. The returned reference is valid
  /// for the registry's lifetime; cache it at the call site and update
  /// lock-free. GetHistogram ignores `upper_bounds` when the name exists.
  /// Requesting an existing name as a different instrument kind is a checked
  /// error (the failure message names both kinds), never a silent alias.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> upper_bounds = DefaultLatencyBuckets());

  /// The kind `name` is registered as, or nullopt when unregistered.
  std::optional<InstrumentKind> Kind(const std::string& name) const;

  MetricsSnapshot Snapshot() const;

  /// Zeroes every instrument in place (references stay valid).
  void ResetForTest();

 private:
  mutable std::mutex mu_;
  std::map<std::string, InstrumentKind> kinds_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace sarn::obs

#endif  // SARN_OBS_METRICS_H_
