// Lock-cheap training metrics: counters, gauges and fixed-bucket histograms
// behind a name-keyed registry.
//
// Design: looking an instrument up in the registry takes a mutex (once per
// call site — instruments are meant to be cached in a local or static
// reference), but *updating* an instrument is a relaxed atomic operation, so
// thread-pool workers can bump counters and observe histogram samples from
// inside a ParallelFor body without serialising on a lock. Instrument
// references stay valid for the registry's lifetime: ResetForTest() zeroes
// values in place rather than destroying nodes.
//
// Naming scheme (DESIGN.md §9): dotted lowercase, subsystem first —
// "sarn.train.epochs", "sarn.checkpoint.write_seconds", "sarn.pool.chunks".

#ifndef SARN_OBS_METRICS_H_
#define SARN_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace sarn::obs {

/// Monotonically increasing event count. All operations are relaxed atomics.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (e.g. queue occupancy, current LR).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram for non-negative samples (durations, byte counts).
/// Buckets are defined by ascending finite upper bounds; one implicit
/// overflow bucket catches everything above the last bound. Observation is a
/// relaxed fetch_add on one bucket plus a CAS-add on the running sum, so
/// concurrent Observe calls never lose counts.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly ascending.
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Mean() const;

  /// Estimated p-th percentile (p in [0, 100]) by linear interpolation
  /// inside the bucket holding the target rank; samples in the overflow
  /// bucket are attributed to the last finite bound. 0 when empty.
  double Percentile(double p) const;

  const std::vector<double>& bucket_bounds() const { return bounds_; }
  /// Per-bucket counts, bounds_.size() + 1 entries (last = overflow).
  std::vector<uint64_t> BucketCounts() const;

  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Exponential bucket bounds: start, start*factor, ... (count bounds).
std::vector<double> ExponentialBuckets(double start, double factor, int count);
/// Default latency buckets: 1us .. ~2min, x4 steps.
std::vector<double> DefaultLatencyBuckets();

/// Point-in-time copy of every instrument, for export and tests.
struct MetricsSnapshot {
  struct HistogramStat {
    std::string name;
    uint64_t count = 0;
    double sum = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  std::vector<std::pair<std::string, uint64_t>> counters;  // Sorted by name.
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramStat> histograms;
};

class MetricsRegistry {
 public:
  /// The process-wide registry used by the SARN_* instrumentation.
  static MetricsRegistry& Default();

  /// Finds or creates the named instrument. The returned reference is valid
  /// for the registry's lifetime; cache it at the call site and update
  /// lock-free. GetHistogram ignores `upper_bounds` when the name exists.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> upper_bounds = DefaultLatencyBuckets());

  MetricsSnapshot Snapshot() const;

  /// Zeroes every instrument in place (references stay valid).
  void ResetForTest();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace sarn::obs

#endif  // SARN_OBS_METRICS_H_
