// Per-epoch training telemetry records and the sinks that persist them.
//
// Trainers (SarnModel::Train, TrainGraphCl) fill one EpochRecord per
// completed epoch and hand it to the configured MetricsSink; checkpoint
// lifecycle actions (written / skipped-corrupt / resumed-from / failed) flow
// through RecordCheckpointEvent, which emits a structured log line, bumps
// the default metrics registry, and forwards to the sink.
//
// JsonlMetricsSink appends one JSON object per record to a file. It opens in
// append mode, so a killed-and-resumed training run keeps writing to the
// same file and the epoch series stays continuous (restored epochs are not
// re-emitted — their lines are already in the file).

#ifndef SARN_OBS_METRICS_SINK_H_
#define SARN_OBS_METRICS_SINK_H_

#include <chrono>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace sarn::obs {

/// Adds the scope's wall time (seconds) to an accumulator on destruction;
/// trainers use one per phase per batch to build EpochRecord::phase_seconds.
class ScopedPhaseTimer {
 public:
  explicit ScopedPhaseTimer(double* accumulator)
      : accumulator_(accumulator), begin_(std::chrono::steady_clock::now()) {}
  ~ScopedPhaseTimer() {
    *accumulator_ +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - begin_)
            .count();
  }
  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

 private:
  double* accumulator_;
  std::chrono::steady_clock::time_point begin_;
};

struct EpochRecord {
  std::string run = "sarn";  // Trainer id: "sarn", "graphcl", ...
  int epoch = 0;             // 0-based index of the epoch just completed.
  double loss = 0.0;
  double grad_norm = 0.0;  // Mean per-batch gradient L2 norm.
  double learning_rate = 0.0;
  int batches = 0;
  double epoch_seconds = 0.0;
  bool resumed = false;  // Epoch ran in a call that resumed from a checkpoint.

  /// Wall-time breakdown of the epoch (augmentation, gat_forward, ...).
  std::vector<std::pair<std::string, double>> phase_seconds;

  // Negative-queue state after the epoch (-1 when the trainer has none).
  int64_t queue_stored = -1;
  int64_t queue_nonempty_cells = -1;
  uint64_t queue_pushes = 0;     // Cumulative Push calls.
  uint64_t queue_evictions = 0;  // Cumulative FIFO evictions.

  // Checkpoint write of this epoch (zeros when none was written).
  int64_t checkpoint_bytes = 0;
  double checkpoint_seconds = 0.0;

  // Thread-pool activity during the epoch (deltas of the global stats).
  uint64_t pool_regions = 0;
  uint64_t pool_chunks = 0;
  uint64_t pool_items = 0;
  double pool_idle_seconds = 0.0;
};

struct CheckpointEvent {
  enum class Action {
    kWritten,         // A checkpoint file was published.
    kWriteFailed,     // SaveCheckpoint returned an error.
    kSkippedCorrupt,  // A file failed validation during resume discovery.
    kSkippedMismatch, // A valid file did not match this model/config.
    kResumedFrom,     // Training state was restored from this file.
  };
  Action action = Action::kWritten;
  std::string path;
  int epoch = -1;        // Epoch count stored in / restored from the file.
  int64_t bytes = 0;     // File size (written/resumed), 0 otherwise.
  double seconds = 0.0;  // Save/load latency where measured.
  std::string detail;    // Error name/message for failures.
};

const char* CheckpointActionName(CheckpointEvent::Action action);

/// SLO watchdog evaluation outcome (src/obs/slo.h): one event per window
/// evaluation that crossed the budget in either direction — `breach` when the
/// windowed p99 first exceeds the budget, `recovered` when it drops back.
struct SloBurnEvent {
  enum class Kind { kBreach, kRecovered };
  Kind kind = Kind::kBreach;
  std::string metric;      // Histogram name the budget is evaluated on.
  double budget_ms = 0.0;  // Configured p99 budget.
  double p99_ms = 0.0;     // Windowed p99 at evaluation time.
  double window_seconds = 0.0;
  uint64_t window_count = 0;  // Samples inside the window.
};

const char* SloBurnKindName(SloBurnEvent::Kind kind);

class MetricsSink {
 public:
  virtual ~MetricsSink() = default;
  virtual void OnEpoch(const EpochRecord& record) = 0;
  virtual void OnCheckpoint(const CheckpointEvent& event) = 0;
  /// Default no-op so pre-existing sinks (tests, fakes) keep compiling.
  virtual void OnSlo(const SloBurnEvent& event) { (void)event; }
  virtual void Flush() {}
};

/// Serialises a record as a single-line JSON object (no trailing newline).
std::string EpochRecordToJson(const EpochRecord& record);
std::string CheckpointEventToJson(const CheckpointEvent& event);
std::string SloBurnEventToJson(const SloBurnEvent& event);

/// Appends one JSON line per record; thread-safe; flushes per line so a
/// crashed run keeps every completed epoch.
class JsonlMetricsSink : public MetricsSink {
 public:
  explicit JsonlMetricsSink(const std::string& path);

  /// False when the file could not be opened (records are then dropped).
  bool ok() const { return out_.is_open(); }

  void OnEpoch(const EpochRecord& record) override;
  void OnCheckpoint(const CheckpointEvent& event) override;
  void OnSlo(const SloBurnEvent& event) override;
  void Flush() override;

 private:
  void WriteLine(const std::string& line);

  std::mutex mu_;
  std::ofstream out_;
};

/// Structured checkpoint-lifecycle event: one log line
/// ("checkpoint action=written path=... epoch=..."), registry counters
/// ("sarn.checkpoint.<action>", bytes/latency instruments), and sink
/// forwarding. `sink` may be null.
void RecordCheckpointEvent(MetricsSink* sink, const CheckpointEvent& event);

}  // namespace sarn::obs

#endif  // SARN_OBS_METRICS_SINK_H_
