// Minimal RFC 8259 JSON *validator* (no DOM): used by tests and the CLI's
// check-json command to verify that exported telemetry (Chrome traces,
// JSONL metrics files) is well-formed without pulling in a JSON library.

#ifndef SARN_OBS_JSON_H_
#define SARN_OBS_JSON_H_

#include <string>
#include <string_view>

namespace sarn::obs {

/// True when `text` is exactly one valid JSON value (leading/trailing
/// whitespace allowed). On failure, `*error` (if non-null) describes the
/// first problem with its byte offset.
bool JsonValid(std::string_view text, std::string* error = nullptr);

/// True when every non-empty line of `text` is a valid JSON value — the
/// JSON-Lines shape of the metrics file. Empty input is valid (zero records).
bool JsonLinesValid(std::string_view text, std::string* error = nullptr);

/// Appends `value` to `out` with JSON string escaping ("quotes", backslash,
/// control characters), without the surrounding quotes.
void JsonEscape(std::string_view value, std::string* out);

/// Formats a double as a JSON number; non-finite values become null (JSON
/// has no NaN/Infinity).
std::string JsonNumber(double value);

}  // namespace sarn::obs

#endif  // SARN_OBS_JSON_H_
