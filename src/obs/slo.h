// SLO watchdog: a background thread that evaluates a p99 latency budget over
// a sliding window of a registry histogram and emits structured burn events.
//
// Mechanism (DESIGN.md §14): every tick the watchdog snapshots the target
// histogram's cumulative bucket counts and keeps a deque of timestamped
// snapshots spanning the window. The windowed distribution is the element-wise
// difference between the newest and the oldest in-window snapshot — no
// per-sample storage, no contention with the serving threads (reading the
// buckets is a relaxed-atomic scan). PercentileFromCounts turns the delta
// into a windowed p99, compared against the budget with breach/recovery
// hysteresis: one kBreach event when the budget is first exceeded, one
// kRecovered when the window drops back under it, never a per-tick flood.
//
// Events flow through MetricsSink::OnSlo (JSONL when `sarn serve
// --metrics-file` is set) and bump "sarn.slo.breaches" / the
// "sarn.slo.p99_ms" gauge in the default registry either way.

#ifndef SARN_OBS_SLO_H_
#define SARN_OBS_SLO_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/metrics_sink.h"

namespace sarn::obs {

class SloWatchdog {
 public:
  struct Options {
    std::string metric = "sarn.serve.latency_seconds";  // Histogram to watch.
    double budget_p99_ms = 50.0;  // Breach when windowed p99 exceeds this.
    double window_seconds = 10.0;
    double tick_seconds = 1.0;  // Evaluation period.
  };

  /// One windowed evaluation outcome (also the unit test surface).
  struct Evaluation {
    bool has_samples = false;  // False when the window contains no samples.
    uint64_t window_count = 0;
    double p99_ms = 0.0;
    bool breached = false;
  };

  /// Pure windowed evaluation: `newest` minus `oldest` cumulative bucket
  /// counts (same layout: bounds.size() + 1 entries), p99 against the budget.
  /// Exposed static so tests cover the math without threads or clocks.
  static Evaluation Evaluate(const std::vector<double>& bounds,
                             const std::vector<uint64_t>& oldest,
                             const std::vector<uint64_t>& newest,
                             double budget_p99_ms);

  /// Starts the watchdog thread. `sink` may be null (events then only hit
  /// the registry + log). The histogram is resolved from the default
  /// registry on first tick so the engine can register it lazily.
  SloWatchdog(const Options& options, MetricsSink* sink);
  ~SloWatchdog();  // Joins the thread.

  SloWatchdog(const SloWatchdog&) = delete;
  SloWatchdog& operator=(const SloWatchdog&) = delete;

  /// Breach events emitted so far (test/introspection accessor).
  uint64_t breaches() const { return breaches_.load(std::memory_order_relaxed); }

 private:
  struct TimedCounts {
    std::chrono::steady_clock::time_point at;
    std::vector<uint64_t> counts;
  };

  void Run();
  void Tick();

  Options options_;
  MetricsSink* sink_;
  std::deque<TimedCounts> window_;
  bool in_breach_ = false;
  std::atomic<uint64_t> breaches_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace sarn::obs

#endif  // SARN_OBS_SLO_H_
