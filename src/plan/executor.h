// PlanExecutor: records, verifies and replays StepPlans (DESIGN.md §15).
//
// One executor serves one training loop (one thread). The loop brackets each
// step with BeginStep(key) .. guard destruction; inside the bracket the
// executor interposes on the tensor runtime through two thread-local hook
// sets:
//
//   * AllocHooks (tensor/storage.h) observe every BufferPool acquisition and
//     final release — the step's allocation stream — and, on replay, serve
//     acquisitions straight from a pre-packed arena.
//   * TapeHooks (tensor/tensor.h) observe tape-node creation and take over
//     Backward(): capture runs a canonical backward (topological order
//     identical to the dynamic DFS, plus an EnsureGrad pre-pass so closures
//     never allocate), replay executes the recorded closure order with
//     parallel-safe runs dispatched over ParallelFor.
//
// Per-key lifecycle in kReplay mode:
//
//   1st sight of key  — capture: dynamic pool allocation, stream recorded,
//                       plan built (first-fit interval packing, wavefront
//                       partition).
//   2nd sight         — verify: capture again, compare streams. A match
//                       proves the stream is reproducible for this key
//                       (first-touch allocations such as Adam moments and
//                       parameter gradients only appear in the very first
//                       step, so the first recording can be stale).
//   3rd+ sight        — replay: acquisitions are served from the arena by
//                       position after checking the requested byte count
//                       against the recorded slot; any mismatch flips the
//                       step to pool fallback, invalidates the plan and
//                       retires the arena. The backward skips the DFS and
//                       runs the recorded order directly.
//
// Determinism: capture and replay run the same canonical backward (same
// closure order, same allocation order); parallel runs only cover closures
// with pairwise-disjoint write sets, so replay is bitwise identical to the
// dynamic tape at any thread count.

#ifndef SARN_PLAN_EXECUTOR_H_
#define SARN_PLAN_EXECUTOR_H_

#include <cstdint>
#include <memory>

#include "plan/plan.h"

namespace sarn::plan {

/// Cumulative executor counters, exposed for tests and published as
/// sarn.plan.* metrics at every step end.
struct PlanCounters {
  uint64_t captures = 0;         // Steps that recorded a stream.
  uint64_t replays = 0;          // Steps served from an arena-backed plan.
  uint64_t verified = 0;         // Capture streams that matched the cache.
  uint64_t divergences = 0;      // Stream mismatches (capture or replay).
  uint64_t fallback_allocs = 0;  // Replay acquisitions served by the pool.
  uint64_t retired_arenas = 0;   // Arenas taken out of service.
};

class PlanExecutor {
 public:
  /// An executor in kOff mode is inert: BeginStep installs nothing and costs
  /// two branches per step.
  explicit PlanExecutor(PlanMode mode);
  ~PlanExecutor();

  PlanExecutor(const PlanExecutor&) = delete;
  PlanExecutor& operator=(const PlanExecutor&) = delete;

  PlanMode mode() const;

  /// RAII step bracket. Must be destroyed on the thread that called
  /// BeginStep, before the next BeginStep. Destruction finalises the step:
  /// capture builds/verifies the plan, replay checks arena quiescence, and
  /// the sarn.plan.* metrics are published.
  class StepGuard {
   public:
    StepGuard(StepGuard&& other) noexcept : executor_(other.executor_) {
      other.executor_ = nullptr;
    }
    StepGuard& operator=(StepGuard&&) = delete;
    StepGuard(const StepGuard&) = delete;
    StepGuard& operator=(const StepGuard&) = delete;
    ~StepGuard();

   private:
    friend class PlanExecutor;
    explicit StepGuard(PlanExecutor* executor) : executor_(executor) {}
    PlanExecutor* executor_;  // Null for inert guards (kOff) and moved-from.
  };

  /// Opens the bracket around one training step. The entire step — forward,
  /// backward, optimizer, queue updates — must run between BeginStep and the
  /// guard's destruction, on the calling thread.
  StepGuard BeginStep(const PlanKey& key);

  // --- Introspection (tests, benches) ---------------------------------------

  PlanCounters counters() const;
  size_t cache_size() const;
  /// The cached plan for `key`, or nullptr. Pointer valid until the next
  /// BeginStep with the same key.
  const StepPlan* CachedPlan(const PlanKey& key) const;

 private:
  struct Impl;
  void EndStep();
  std::unique_ptr<Impl> impl_;
};

}  // namespace sarn::plan

#endif  // SARN_PLAN_EXECUTOR_H_
