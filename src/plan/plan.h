// Static step-graph plans for training (DESIGN.md §15).
//
// The tensor engine builds its autograd tape dynamically: every op call
// allocates a node, every Backward() re-derives the topological order, and
// every buffer goes through the BufferPool's size-class free lists. For SARN
// training the step graph is *structurally static* given a handful of step
// parameters (graph sizes, batch size, queue occupancy, hyper-parameters):
// the same ops run in the same order with the same shapes, step after step.
//
// This header defines the immutable artifacts the plan layer produces:
//
//   * PlanMode   — off | record | replay, resolved from an explicit request
//                  or the SARN_PLAN environment variable.
//   * PlanKey    — everything the op/allocation stream of one step depends
//                  on. Two steps with equal keys produce byte-identical
//                  streams; any key change invalidates the cached plan.
//   * StepPlan   — the recorded plan: the backward execution order over the
//                  step's tape nodes, a wavefront partition of that order
//                  into parallel-safe runs, and the step's full allocation
//                  stream as buffer slots with birth/death event ticks and
//                  AOT-planned arena offsets (first-fit interval packing).
//
// Plans are recorded and executed by PlanExecutor (plan/executor.h). The
// contract that makes replay safe to enable by default is *bitwise
// determinism*: a replayed step produces exactly the float stream the
// dynamic tape would have produced — same losses, same gradients, same
// parameters, same telemetry — at any thread count.

#ifndef SARN_PLAN_PLAN_H_
#define SARN_PLAN_PLAN_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sarn::plan {

/// How the training loop engages the plan layer.
///   kOff    — dynamic tape only (status quo).
///   kRecord — every step is captured and verified against the cached plan;
///             execution stays on pool-backed buffers. This is the
///             recording/verification backend: it proves stream stability
///             without committing to arena replay.
///   kReplay — record on first sight of a key, verify on the second, then
///             replay: arena-served buffers, no tape DFS, fused grad kernels,
///             parallel closure runs.
enum class PlanMode { kOff = 0, kRecord, kReplay };

const char* PlanModeName(PlanMode mode);

/// Parses "off" / "record" / "replay" (exact, lowercase); nullopt otherwise.
std::optional<PlanMode> ParsePlanMode(std::string_view text);

/// Resolves the mode for a training run: an explicit request wins, then the
/// SARN_PLAN environment variable, then kOff. Unparsable env values fall
/// back to kOff (a bad env var must not change training behaviour).
PlanMode EffectivePlanMode(std::optional<PlanMode> requested);

// --- Plan cache key ----------------------------------------------------------

/// 64-bit FNV-1a style combiner for building config hashes.
inline uint64_t HashCombine(uint64_t h, uint64_t value) {
  h ^= value + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

/// Folds a string (e.g. a variant name: encoder / augmentation / negative
/// sampler identity) into a config hash. Length is mixed in first so that
/// concatenated names cannot alias ("ga"+"t" vs "g"+"at").
inline uint64_t HashString(uint64_t h, std::string_view text) {
  h = HashCombine(h, static_cast<uint64_t>(text.size()));
  for (char c : text) h = HashCombine(h, static_cast<uint64_t>(static_cast<unsigned char>(c)));
  return h;
}

/// Everything the shape of one training step's op/allocation stream depends
/// on. Values (parameters, RNG draws) are free to differ between steps with
/// equal keys — only the *structure* must match, and for SARN it does: RNG
/// affects which rows are gathered, never how many.
struct PlanKey {
  uint64_t config_hash = 0;  // Hyper-parameters + ablation switches + LR.
  int64_t vertices = 0;      // |V| of the (augmented) graph.
  int64_t edges_a = 0;       // Edge count of view 1 (pre-self-loop).
  int64_t edges_b = 0;       // Edge count of view 2 (0 when unused).
  int64_t batch = 0;         // Anchors in this step.
  int64_t phi_max = 0;       // Widest local-negative queue over the batch.
  int64_t cells = 0;         // Non-empty grid cells (global loss rows).
  int64_t rows = 0;          // Batch members participating in the global loss.
  int64_t threads = 1;       // ParallelFor width.

  friend bool operator==(const PlanKey&, const PlanKey&) = default;
};

struct PlanKeyHash {
  size_t operator()(const PlanKey& k) const {
    uint64_t h = k.config_hash;
    h = HashCombine(h, static_cast<uint64_t>(k.vertices));
    h = HashCombine(h, static_cast<uint64_t>(k.edges_a));
    h = HashCombine(h, static_cast<uint64_t>(k.edges_b));
    h = HashCombine(h, static_cast<uint64_t>(k.batch));
    h = HashCombine(h, static_cast<uint64_t>(k.phi_max));
    h = HashCombine(h, static_cast<uint64_t>(k.cells));
    h = HashCombine(h, static_cast<uint64_t>(k.rows));
    h = HashCombine(h, static_cast<uint64_t>(k.threads));
    return static_cast<size_t>(h);
  }
};

// --- Plan IR -----------------------------------------------------------------

/// One buffer acquisition in the step's allocation stream, in acquisition
/// order. `birth`/`death` are event ticks (one shared counter over both
/// acquisitions and releases), which is exactly the lifetime information
/// first-fit interval packing needs.
struct BufferSlot {
  static constexpr uint32_t kNoDeath = 0xffffffffu;
  static constexpr uint64_t kNoOffset = ~uint64_t{0};

  uint64_t bytes = 0;        // Exact requested bytes (replay verifies these).
  uint32_t size_class = 0;   // BufferPool class; >= kOversizeClass stays pooled.
  uint32_t birth = 0;        // Event tick of the acquisition.
  uint32_t death = kNoDeath; // Event tick of the final release; kNoDeath when
                             // the buffer escapes the step bracket.
  uint64_t arena_offset = kNoOffset;  // Block-header offset in the arena.

  bool arena_backed() const { return arena_offset != kNoOffset; }
};

/// A maximal consecutive span of the backward execution order whose closures
/// touch pairwise-disjoint tensors and perform no allocations; such a span
/// may run under ParallelFor without changing a single bit of any gradient.
struct ExecRun {
  uint32_t begin = 0;  // Indices into StepPlan::exec.
  uint32_t end = 0;
  bool parallel = false;
};

/// An immutable recorded training step. `exec` holds indices into the step's
/// node registry (tape nodes in creation order); replay addresses nodes by
/// these indices, so no pointer from the recorded step survives into the
/// plan.
struct StepPlan {
  PlanKey key;
  uint32_t tape_nodes = 0;        // Nodes the step records (registry size).
  uint32_t root = 0;              // Registry index of the backward root.
  std::vector<uint32_t> exec;     // Backward closure order (registry indices).
  std::vector<ExecRun> runs;      // Wavefront partition over `exec`.
  std::vector<BufferSlot> slots;  // The step's full allocation stream.
  uint64_t arena_bytes = 0;       // Packed arena footprint.
  uint32_t arena_slots = 0;       // Slots served from the arena on replay.
  uint32_t escaping_slots = 0;    // Slots with no in-step release (stay pooled).
  uint32_t parallel_runs = 0;     // Runs with parallel == true.
  uint32_t parallel_nodes = 0;    // Closures covered by parallel runs.
};

/// True when the two plans describe the same op/allocation stream (keys,
/// node counts, execution order and slot stream all equal; arena offsets are
/// derived data and not compared). Used by the verification pass.
bool SameStream(const StepPlan& a, const StepPlan& b);

}  // namespace sarn::plan

#endif  // SARN_PLAN_PLAN_H_
