#include "plan/executor.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <new>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "tensor/storage.h"
#include "tensor/tensor.h"

namespace sarn::plan {
namespace {

using tensor::BufferPool;
using tensor::internal::StorageBlock;
using tensor::internal::TensorImpl;

constexpr uint64_t kHeaderBytes = StorageBlock::kPayloadOffset;

uint64_t AlignUp64(uint64_t v) { return (v + 63) & ~uint64_t{63}; }

// --- Metrics -----------------------------------------------------------------

struct PlanInstruments {
  obs::Counter& captures;
  obs::Counter& replays;
  obs::Counter& verified;
  obs::Counter& divergences;
  obs::Counter& fallback_allocs;
  obs::Counter& retired_arenas;
  obs::Gauge& cache_size;
  obs::Gauge& nodes;
  obs::Gauge& slots;
  obs::Gauge& arena_bytes;
  obs::Gauge& parallel_runs;
  obs::Gauge& parallel_nodes;
};

PlanInstruments& Instruments() {
  // Leaky singleton, same pattern as the sarn.alloc.* instruments: the
  // references stay valid for the registry's lifetime.
  static PlanInstruments* instruments = [] {
    auto& registry = obs::MetricsRegistry::Default();
    return new PlanInstruments{
        registry.GetCounter("sarn.plan.captures"),
        registry.GetCounter("sarn.plan.replays"),
        registry.GetCounter("sarn.plan.verified"),
        registry.GetCounter("sarn.plan.divergences"),
        registry.GetCounter("sarn.plan.fallback_allocs"),
        registry.GetCounter("sarn.plan.retired_arenas"),
        registry.GetGauge("sarn.plan.cache_size"),
        registry.GetGauge("sarn.plan.nodes"),
        registry.GetGauge("sarn.plan.slots"),
        registry.GetGauge("sarn.plan.arena_bytes"),
        registry.GetGauge("sarn.plan.parallel_runs"),
        registry.GetGauge("sarn.plan.parallel_nodes"),
    };
  }();
  return *instruments;
}

// --- Arena -------------------------------------------------------------------

// One contiguous 64-aligned allocation serving a plan's arena-backed slots.
// Each Serve() placement-constructs a fresh StorageBlock header at the slot's
// planned offset (overlapping dead slots may have clobbered the previous
// header bytes with payload data, so headers are never reused). Releases are
// observed only through `released_`: BufferPool::Release bumps it through
// the pointer stashed in the block's `next` field and leaves the memory
// alone. The arena may be handed to the next step only when every block it
// ever served has been released (quiescent()).
class Arena {
 public:
  explicit Arena(uint64_t bytes) : bytes_(bytes) {
    if (bytes_ > 0) {
      base_ = static_cast<char*>(::operator new(bytes_, std::align_val_t{64}));
    }
  }
  ~Arena() {
    if (base_ != nullptr) ::operator delete(base_, std::align_val_t{64});
  }
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  StorageBlock* Serve(const BufferSlot& slot) {
    SARN_DCHECK(slot.arena_offset + kHeaderBytes <= bytes_);
    auto* block = new (base_ + slot.arena_offset) StorageBlock();
    block->size_class = tensor::internal::kArenaSizeClass;
    block->oversize_bytes = BufferPool::ClassBytes(slot.size_class);
    block->next = reinterpret_cast<StorageBlock*>(&released_);
    block->refs.store(1, std::memory_order_relaxed);
    ++served_;
    return block;
  }

  uint64_t served() const { return served_; }
  uint64_t released() const { return released_.load(std::memory_order_acquire); }
  bool quiescent() const { return released() == served_; }
  uint64_t bytes() const { return bytes_; }

 private:
  char* base_ = nullptr;
  uint64_t bytes_ = 0;
  uint64_t served_ = 0;                 // Executor thread only.
  std::atomic<uint64_t> released_{0};   // Bumped by BufferPool::Release.
};

// --- Per-step state ----------------------------------------------------------

enum class StepKind { kCapture, kReplay };

struct ActiveStep {
  PlanKey key;
  StepKind kind = StepKind::kCapture;
  bool backward_done = false;
  bool diverged = false;

  // Hook blocks handed to the tensor runtime; addresses must stay stable for
  // the bracket's lifetime (ActiveStep lives in PlanExecutor::Impl).
  tensor::internal::AllocHooks alloc_hooks;
  tensor::internal::TapeHooks tape_hooks;

  // Tape-node registry: every grad node the step creates, in creation order.
  // All recorder containers use the global allocator on purpose — pool
  // traffic from the recorder itself would pollute the recorded stream.
  std::vector<std::shared_ptr<TensorImpl>> registry;
  std::unordered_map<const TensorImpl*, uint32_t> node_index;

  // Capture state.
  uint32_t events = 0;
  std::vector<BufferSlot> slots;
  std::unordered_map<const StorageBlock*, uint32_t> live;
  bool in_closure = false;
  bool closure_allocated = false;
  uint32_t root = 0;
  std::vector<uint32_t> exec;
  std::vector<uint8_t> node_allocates;  // Per exec position.
  std::vector<ExecRun> runs;
  uint32_t registry_count = 0;  // Snapshot before teardown.

  // Replay state.
  const StepPlan* plan = nullptr;
  Arena* arena = nullptr;
  uint32_t next_slot = 0;
  uint64_t arena_served = 0;
  uint64_t fallbacks = 0;
  uint64_t arena_released_at_begin = 0;

  void Reset(const PlanKey& step_key, StepKind step_kind) {
    key = step_key;
    kind = step_kind;
    backward_done = false;
    diverged = false;
    alloc_hooks = {};
    tape_hooks = {};
    registry.clear();
    node_index.clear();
    events = 0;
    slots.clear();
    live.clear();
    in_closure = false;
    closure_allocated = false;
    root = 0;
    exec.clear();
    node_allocates.clear();
    runs.clear();
    registry_count = 0;
    plan = nullptr;
    arena = nullptr;
    next_slot = 0;
    arena_served = 0;
    fallbacks = 0;
    arena_released_at_begin = 0;
  }
};

// --- Hook callbacks ----------------------------------------------------------

void OnNode(void* ctx, const std::shared_ptr<TensorImpl>& node) {
  auto& step = *static_cast<ActiveStep*>(ctx);
  step.node_index.emplace(node.get(), static_cast<uint32_t>(step.registry.size()));
  step.registry.push_back(node);
}

void CaptureOnAcquire(void* ctx, StorageBlock* block, size_t bytes) {
  auto& step = *static_cast<ActiveStep*>(ctx);
  BufferSlot slot;
  slot.bytes = bytes;
  slot.size_class = block->size_class;
  slot.birth = step.events++;
  step.live[block] = static_cast<uint32_t>(step.slots.size());
  step.slots.push_back(slot);
  if (step.in_closure) step.closure_allocated = true;
}

void CaptureOnRelease(void* ctx, StorageBlock* block) {
  auto& step = *static_cast<ActiveStep*>(ctx);
  auto it = step.live.find(block);
  if (it == step.live.end()) return;  // Acquired before the bracket opened.
  step.slots[it->second].death = step.events++;
  step.live.erase(it);
}

StorageBlock* ReplayAcquire(void* ctx, size_t bytes) {
  auto& step = *static_cast<ActiveStep*>(ctx);
  if (step.diverged) {
    ++step.fallbacks;
    return nullptr;
  }
  if (step.next_slot >= step.plan->slots.size()) {
    step.diverged = true;  // Stream grew past the recording.
    ++step.fallbacks;
    return nullptr;
  }
  const BufferSlot& slot = step.plan->slots[step.next_slot];
  if (slot.bytes != static_cast<uint64_t>(bytes)) {
    step.diverged = true;  // Shape drift the key failed to capture.
    ++step.fallbacks;
    return nullptr;
  }
  ++step.next_slot;
  if (!slot.arena_backed()) {
    // Planned pool service: an escaping or oversize slot.
    ++step.fallbacks;
    return nullptr;
  }
  ++step.arena_served;
  return step.arena->Serve(slot);
}

// --- Canonical backward ------------------------------------------------------

// EnsureGrad pre-pass shared by capture and replay: walking the execution
// order, allocate the node's grad and every grad-requiring parent's grad up
// front. Values are untouched (grads zero-fill exactly as the closures would
// have them), but the allocation *order* becomes plan-governed and the
// closures become allocation-free — the property that lets replay fan
// disjoint closures out across threads without desyncing the slot stream.
void PrepassEnsureGrad(ActiveStep& step, const std::vector<uint32_t>& exec) {
  for (uint32_t idx : exec) {
    TensorImpl* node = step.registry[idx].get();
    node->EnsureGrad();
    for (const auto& parent : node->parents) {
      if (parent->requires_grad) parent->EnsureGrad();
    }
  }
}

// Consumes the tape and tears the registry down, replicating the dynamic
// path's release order: closures and parent edges drop leaves-to-root, then
// registry references drop in creation order. Runs identically in capture
// and replay so buffer deaths land on the same event ticks.
void ConsumeTape(ActiveStep& step, const std::vector<uint32_t>& exec) {
  for (auto it = exec.rbegin(); it != exec.rend(); ++it) {
    TensorImpl* node = step.registry[*it].get();
    node->backward.Reset();
    tensor::PoolVec<std::shared_ptr<TensorImpl>>().swap(node->parents);
  }
  step.registry_count = static_cast<uint32_t>(step.registry.size());
  for (auto& node : step.registry) node.reset();
}

// Partitions the execution order into maximal runs of closures that (a)
// performed no allocations during capture and (b) have pairwise-disjoint
// footprints. A closure's footprint is its node plus its parents: it writes
// only parent grads and reads only its own grad/data and parent data, so
// disjoint footprints mean disjoint write sets and race-free, bitwise-stable
// concurrent execution. Must run before ConsumeTape (it needs parent edges).
void PartitionRuns(ActiveStep& step) {
  std::unordered_map<const TensorImpl*, uint32_t> leaf_ids;
  std::vector<uint32_t> stamp;  // Impl id -> serial of the run that holds it.
  uint32_t serial = 0;
  auto id_of = [&](const TensorImpl* impl) -> uint32_t {
    if (auto it = step.node_index.find(impl); it != step.node_index.end()) {
      return it->second;
    }
    auto [lit, _] = leaf_ids.try_emplace(
        impl, static_cast<uint32_t>(step.registry.size() + leaf_ids.size()));
    return lit->second;
  };
  step.runs.clear();
  std::vector<uint32_t> footprint;
  for (uint32_t i = 0; i < step.exec.size(); ++i) {
    TensorImpl* node = step.registry[step.exec[i]].get();
    bool eligible = step.node_allocates[i] == 0;
    footprint.clear();
    footprint.push_back(step.exec[i]);
    for (const auto& parent : node->parents) footprint.push_back(id_of(parent.get()));
    bool extend = false;
    if (eligible && !step.runs.empty() && step.runs.back().parallel) {
      extend = true;
      for (uint32_t id : footprint) {
        if (id < stamp.size() && stamp[id] == serial) {
          extend = false;  // Conflicts with a closure already in this run.
          break;
        }
      }
    }
    if (extend) {
      step.runs.back().end = i + 1;
    } else {
      ++serial;
      step.runs.push_back(ExecRun{i, i + 1, eligible});
    }
    if (eligible) {
      for (uint32_t id : footprint) {
        if (id >= stamp.size()) stamp.resize(id + 1, 0);
        stamp[id] = serial;
      }
    }
  }
}

// Capture-mode backward: topological order identical to the dynamic DFS in
// tensor.cc, then seed, EnsureGrad pre-pass, serial closures with per-closure
// allocation attribution, wavefront partition, tape consumption. Returns
// false (dynamic DFS takes over, numerics unharmed) when the step cannot be
// planned — e.g. the root or a closure-carrying node predates the bracket.
bool CaptureBackward(ActiveStep& step, const std::shared_ptr<TensorImpl>& root,
                     const float* seed, size_t seed_size) {
  SARN_TRACE_SPAN("plan_capture_backward");
  auto root_it = step.node_index.find(root.get());
  if (root_it == step.node_index.end()) return false;

  uint64_t pass = tensor::internal::NextBackwardPass();
  struct Frame {
    TensorImpl* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  std::vector<TensorImpl*> order;
  root->visit_mark = pass;
  stack.push_back({root.get(), 0});
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent < frame.node->parents.size()) {
      TensorImpl* parent = frame.node->parents[frame.next_parent++].get();
      if (parent->visit_mark != pass) {
        parent->visit_mark = pass;
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(frame.node);
      stack.pop_back();
    }
  }
  step.exec.clear();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (!(*it)->backward) continue;
    auto nit = step.node_index.find(*it);
    if (nit == step.node_index.end()) return false;  // Tape leaked across steps.
    step.exec.push_back(nit->second);
  }
  step.root = root_it->second;
  step.backward_done = true;

  root->EnsureGrad();
  for (size_t i = 0; i < seed_size; ++i) root->grad[i] += seed[i];
  PrepassEnsureGrad(step, step.exec);

  step.node_allocates.assign(step.exec.size(), 0);
  for (size_t i = 0; i < step.exec.size(); ++i) {
    TensorImpl* node = step.registry[step.exec[i]].get();
    step.in_closure = true;
    step.closure_allocated = false;
    node->backward(*node);
    step.in_closure = false;
    step.node_allocates[i] = step.closure_allocated ? 1 : 0;
  }
  PartitionRuns(step);
  ConsumeTape(step, step.exec);
  return true;
}

// Replay-mode backward: no DFS — the recorded order executes directly, with
// parallel-safe runs dispatched over the worker pool (grain 1: one closure
// is one work item). Falls back to the dynamic DFS on any structural
// mismatch; the step is then marked diverged and the plan is invalidated at
// EndStep.
bool ReplayBackward(ActiveStep& step, const std::shared_ptr<TensorImpl>& root,
                    const float* seed, size_t seed_size) {
  SARN_TRACE_SPAN("plan_replay_backward");
  const StepPlan& plan = *step.plan;
  if (step.diverged || step.registry.size() != plan.tape_nodes ||
      plan.root >= step.registry.size() ||
      step.registry[plan.root].get() != root.get()) {
    step.diverged = true;
    return false;
  }
  step.backward_done = true;

  root->EnsureGrad();
  for (size_t i = 0; i < seed_size; ++i) root->grad[i] += seed[i];
  PrepassEnsureGrad(step, plan.exec);

  for (const ExecRun& run : plan.runs) {
    size_t count = run.end - run.begin;
    if (run.parallel && count > 1 && GetParallelThreads() > 1) {
      ParallelFor(
          count,
          [&](size_t begin, size_t end) {
            for (size_t k = begin; k < end; ++k) {
              TensorImpl* node = step.registry[plan.exec[run.begin + k]].get();
              node->backward(*node);
            }
          },
          1);
    } else {
      for (size_t k = 0; k < count; ++k) {
        TensorImpl* node = step.registry[plan.exec[run.begin + k]].get();
        node->backward(*node);
      }
    }
  }
  ConsumeTape(step, plan.exec);
  return true;
}

bool OnBackward(void* ctx, const std::shared_ptr<TensorImpl>& root, const float* seed,
                size_t seed_size) {
  auto& step = *static_cast<ActiveStep*>(ctx);
  if (step.backward_done) return false;  // Only the step's first Backward is planned.
  return step.kind == StepKind::kReplay ? ReplayBackward(step, root, seed, seed_size)
                                        : CaptureBackward(step, root, seed, seed_size);
}

// --- Plan finalisation -------------------------------------------------------

// First-fit interval packing of the capture's allocation stream: slots with
// an in-step death and a regular size class get arena offsets; escaping and
// oversize slots stay pool-backed. Offsets are 64-aligned (header + payload
// footprints are multiples of 64), so arena payloads keep the pool's cache
// alignment.
void PackSlots(StepPlan& plan) {
  struct Placed {
    uint64_t begin, end;
    uint32_t birth, death;
  };
  std::vector<Placed> placed;
  std::vector<std::pair<uint64_t, uint64_t>> busy;
  for (BufferSlot& slot : plan.slots) {
    if (slot.death == BufferSlot::kNoDeath) {
      ++plan.escaping_slots;
      continue;
    }
    if (slot.size_class >= BufferPool::kOversizeClass) continue;
    uint64_t need = AlignUp64(kHeaderBytes + BufferPool::ClassBytes(slot.size_class));
    busy.clear();
    for (const Placed& p : placed) {
      if (p.birth < slot.death && slot.birth < p.death) busy.emplace_back(p.begin, p.end);
    }
    std::sort(busy.begin(), busy.end());
    uint64_t offset = 0;
    for (const auto& [b, e] : busy) {
      if (offset + need <= b) break;
      if (e > offset) offset = e;
    }
    slot.arena_offset = offset;
    placed.push_back({offset, offset + need, slot.birth, slot.death});
    plan.arena_bytes = std::max(plan.arena_bytes, offset + need);
    ++plan.arena_slots;
  }
  for (const ExecRun& run : plan.runs) {
    if (run.parallel && run.end - run.begin > 1) {
      ++plan.parallel_runs;
      plan.parallel_nodes += run.end - run.begin;
    }
  }
}

}  // namespace

// --- PlanExecutor ------------------------------------------------------------

struct PlanExecutor::Impl {
  explicit Impl(PlanMode m) : mode(m) {}

  struct CacheEntry {
    std::shared_ptr<StepPlan> plan;
    std::unique_ptr<Arena> arena;
    bool verified = false;
  };

  PlanMode mode;
  std::unordered_map<PlanKey, CacheEntry, PlanKeyHash> cache;
  std::vector<std::unique_ptr<Arena>> graveyard;
  PlanCounters counters;
  PlanCounters published;
  ActiveStep step;
  bool step_active = false;
  bool fusion_prev = false;

  void RetireArena(std::unique_ptr<Arena> arena) {
    if (arena == nullptr) return;
    ++counters.retired_arenas;
    if (!arena->quiescent()) graveyard.push_back(std::move(arena));
    // Quiescent arenas free immediately as `arena` goes out of scope.
  }

  void SweepGraveyard() {
    graveyard.erase(std::remove_if(graveyard.begin(), graveyard.end(),
                                   [](const std::unique_ptr<Arena>& a) {
                                     return a->quiescent();
                                   }),
                    graveyard.end());
  }
};

PlanExecutor::PlanExecutor(PlanMode mode) : impl_(std::make_unique<Impl>(mode)) {}

PlanExecutor::~PlanExecutor() {
  if (impl_ == nullptr) return;
  // Arenas with outstanding blocks must not be freed (a late Release would
  // write through their counter pointer); leak them deliberately. In a
  // correct run every arena is quiescent here.
  for (auto& [key, entry] : impl_->cache) {
    if (entry.arena != nullptr && !entry.arena->quiescent()) entry.arena.release();
  }
  for (auto& arena : impl_->graveyard) {
    if (arena != nullptr && !arena->quiescent()) arena.release();
  }
}

PlanMode PlanExecutor::mode() const { return impl_->mode; }

PlanExecutor::StepGuard::~StepGuard() {
  if (executor_ != nullptr) executor_->EndStep();
}

PlanExecutor::StepGuard PlanExecutor::BeginStep(const PlanKey& key) {
  Impl& im = *impl_;
  if (im.mode == PlanMode::kOff) return StepGuard(nullptr);
  SARN_CHECK(!im.step_active) << "plan step brackets must not overlap";
  im.step_active = true;

  Impl::CacheEntry* entry = nullptr;
  if (auto it = im.cache.find(key); it != im.cache.end()) entry = &it->second;
  StepKind kind = StepKind::kCapture;
  if (im.mode == PlanMode::kReplay && entry != nullptr && entry->verified &&
      entry->plan != nullptr) {
    kind = StepKind::kReplay;
  }
  ActiveStep& step = im.step;
  step.Reset(key, kind);
  if (kind == StepKind::kReplay) {
    if (entry->arena == nullptr) {
      entry->arena = std::make_unique<Arena>(entry->plan->arena_bytes);
    }
    step.plan = entry->plan.get();
    step.arena = entry->arena.get();
    step.arena_released_at_begin = entry->arena->released();
    step.alloc_hooks.acquire = &ReplayAcquire;
  } else {
    step.alloc_hooks.on_acquire = &CaptureOnAcquire;
    step.alloc_hooks.on_release = &CaptureOnRelease;
  }
  step.alloc_hooks.ctx = &step;
  step.tape_hooks.on_node = &OnNode;
  step.tape_hooks.backward = &OnBackward;
  step.tape_hooks.ctx = &step;

  // Fused differentiable kernels must be on for every planned step — capture
  // and replay see the same op stream — and restored afterwards so dynamic
  // (kOff) baselines stay byte-for-byte unfused.
  im.fusion_prev = tensor::GradFusionEnabled();
  tensor::SetGradFusionEnabled(true);
  tensor::internal::SetThreadAllocHooks(&step.alloc_hooks);
  tensor::internal::SetThreadTapeHooks(&step.tape_hooks);
  return StepGuard(this);
}

void PlanExecutor::EndStep() {
  Impl& im = *impl_;
  SARN_CHECK(im.step_active);
  tensor::internal::SetThreadAllocHooks(nullptr);
  tensor::internal::SetThreadTapeHooks(nullptr);
  tensor::SetGradFusionEnabled(im.fusion_prev);
  ActiveStep& step = im.step;

  const StepPlan* published_plan = nullptr;
  if (step.kind == StepKind::kReplay) {
    im.counters.fallback_allocs += step.fallbacks;
    // The whole recorded stream must have been consumed and every arena
    // block must be back: anything else is behavioural drift, so the plan
    // and its arena leave service.
    uint64_t released = step.arena->released() - step.arena_released_at_begin;
    bool clean = !step.diverged && step.backward_done &&
                 step.next_slot == step.plan->slots.size() &&
                 released == step.arena_served;
    auto it = im.cache.find(step.key);
    if (clean) {
      ++im.counters.replays;
      published_plan = step.plan;
    } else {
      ++im.counters.divergences;
      if (it != im.cache.end()) {
        im.RetireArena(std::move(it->second.arena));
        im.cache.erase(it);
      }
    }
  } else if (step.backward_done) {
    auto plan = std::make_shared<StepPlan>();
    plan->key = step.key;
    plan->tape_nodes = step.registry_count;
    plan->root = step.root;
    plan->exec = std::move(step.exec);
    plan->runs = std::move(step.runs);
    plan->slots = std::move(step.slots);
    PackSlots(*plan);
    ++im.counters.captures;

    Impl::CacheEntry& entry = im.cache[step.key];
    if (entry.plan != nullptr && SameStream(*entry.plan, *plan)) {
      // Second identical capture: the stream is reproducible for this key.
      entry.verified = true;
      ++im.counters.verified;
      published_plan = entry.plan.get();
    } else {
      if (entry.plan != nullptr) {
        ++im.counters.divergences;
        im.RetireArena(std::move(entry.arena));
      }
      entry.plan = std::move(plan);
      entry.verified = false;
      published_plan = entry.plan.get();
    }
  }
  // Drop never-verified entries when churn (e.g. queue fill-phase keys)
  // bloats the cache; verified plans are the valuable ones.
  if (im.cache.size() > 64) {
    for (auto it = im.cache.begin(); it != im.cache.end();) {
      if (!it->second.verified && im.counters.captures > 0) {
        im.RetireArena(std::move(it->second.arena));
        it = im.cache.erase(it);
      } else {
        ++it;
      }
      if (im.cache.size() <= 32) break;
    }
  }
  im.SweepGraveyard();

  PlanInstruments& instruments = Instruments();
  instruments.captures.Increment(im.counters.captures - im.published.captures);
  instruments.replays.Increment(im.counters.replays - im.published.replays);
  instruments.verified.Increment(im.counters.verified - im.published.verified);
  instruments.divergences.Increment(im.counters.divergences - im.published.divergences);
  instruments.fallback_allocs.Increment(im.counters.fallback_allocs -
                                        im.published.fallback_allocs);
  instruments.retired_arenas.Increment(im.counters.retired_arenas -
                                       im.published.retired_arenas);
  im.published = im.counters;
  instruments.cache_size.Set(static_cast<double>(im.cache.size()));
  if (published_plan != nullptr) {
    instruments.nodes.Set(static_cast<double>(published_plan->tape_nodes));
    instruments.slots.Set(static_cast<double>(published_plan->slots.size()));
    instruments.arena_bytes.Set(static_cast<double>(published_plan->arena_bytes));
    instruments.parallel_runs.Set(static_cast<double>(published_plan->parallel_runs));
    instruments.parallel_nodes.Set(static_cast<double>(published_plan->parallel_nodes));
  }

  step.Reset(PlanKey{}, StepKind::kCapture);  // Drop registry references now.
  im.step_active = false;
}

PlanCounters PlanExecutor::counters() const { return impl_->counters; }

size_t PlanExecutor::cache_size() const { return impl_->cache.size(); }

const StepPlan* PlanExecutor::CachedPlan(const PlanKey& key) const {
  auto it = impl_->cache.find(key);
  return it == impl_->cache.end() ? nullptr : it->second.plan.get();
}

}  // namespace sarn::plan
