#include "plan/plan.h"

#include <cstdlib>

namespace sarn::plan {

const char* PlanModeName(PlanMode mode) {
  switch (mode) {
    case PlanMode::kOff: return "off";
    case PlanMode::kRecord: return "record";
    case PlanMode::kReplay: return "replay";
  }
  return "unknown";
}

std::optional<PlanMode> ParsePlanMode(std::string_view text) {
  if (text == "off") return PlanMode::kOff;
  if (text == "record") return PlanMode::kRecord;
  if (text == "replay") return PlanMode::kReplay;
  return std::nullopt;
}

PlanMode EffectivePlanMode(std::optional<PlanMode> requested) {
  if (requested.has_value()) return *requested;
  if (const char* env = std::getenv("SARN_PLAN"); env != nullptr) {
    if (std::optional<PlanMode> parsed = ParsePlanMode(env)) return *parsed;
  }
  return PlanMode::kOff;
}

bool SameStream(const StepPlan& a, const StepPlan& b) {
  if (!(a.key == b.key)) return false;
  if (a.tape_nodes != b.tape_nodes || a.root != b.root) return false;
  if (a.exec != b.exec) return false;
  if (a.slots.size() != b.slots.size()) return false;
  for (size_t i = 0; i < a.slots.size(); ++i) {
    const BufferSlot& x = a.slots[i];
    const BufferSlot& y = b.slots[i];
    if (x.bytes != y.bytes || x.size_class != y.size_class ||
        x.birth != y.birth || x.death != y.death) {
      return false;
    }
  }
  return true;
}

}  // namespace sarn::plan
