// Thread-safe LRU cache for served top-k results.
//
// Keys are canonical byte strings built by the query engine from
// (snapshot epoch, metric, k, query payload) — see query_engine.cc — so a
// snapshot hot-swap implicitly invalidates every cached entry (the epoch
// changes); the engine additionally calls Clear() on swap so stale results
// do not pin memory until they age out. Values are shared_ptr-held neighbor
// lists: a hit hands out a reference to the cached vector, an eviction just
// drops the cache's reference while in-flight responses keep theirs.

#ifndef SARN_SERVE_RESULT_CACHE_H_
#define SARN_SERVE_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "tasks/embedding_index.h"

namespace sarn::serve {

class ResultCache {
 public:
  using Value = std::shared_ptr<const std::vector<tasks::Neighbor>>;

  /// `capacity` is the maximum number of cached entries; 0 disables the
  /// cache entirely (Get always misses, Put is a no-op).
  explicit ResultCache(size_t capacity) : capacity_(capacity) {}

  /// Returns the cached value and refreshes its recency, or null on miss.
  Value Get(const std::string& key);

  /// Inserts or refreshes `key`; evicts the least-recently-used entry when
  /// the cache is full.
  void Put(const std::string& key, Value value);

  /// Drops every entry (snapshot swap). Hit/miss counters are cumulative
  /// and survive a Clear.
  void Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const { return evictions_.load(std::memory_order_relaxed); }

 private:
  using Entry = std::pair<std::string, Value>;

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // Front = most recently used.
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace sarn::serve

#endif  // SARN_SERVE_RESULT_CACHE_H_
