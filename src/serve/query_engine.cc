#include "serve/query_engine.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/check.h"
#include "tensor/simd/simd.h"

namespace sarn::serve {
namespace {

std::vector<double> BatchSizeBuckets() {
  return {1, 2, 4, 8, 16, 32, 64, 128, 256};
}

// Process-global sarn.serve.* instruments (DESIGN.md §9 naming scheme),
// looked up once and updated lock-free alongside the per-engine counters.
struct ServeMetrics {
  obs::Counter& requests;
  obs::Counter& errors;
  obs::Counter& batches;
  obs::Counter& cache_hits;
  obs::Counter& cache_misses;
  obs::Counter& swaps;
  obs::Histogram& batch_size;
  obs::Histogram& latency_seconds;
  obs::Gauge& epoch;
  obs::Gauge& index_bytes;  // Scan payload bytes of the live snapshot.
  obs::Gauge& simd_tier;    // Numeric simd::Tier of the active kernel path.
  // Per-stage latency histograms over traced requests (DESIGN.md §14); the
  // Prometheus-export face of the engine-owned stage histograms.
  obs::Histogram* stages[obs::kRequestStageCount];

  static ServeMetrics& Get() {
    static ServeMetrics metrics{
        obs::MetricsRegistry::Default().GetCounter("sarn.serve.requests"),
        obs::MetricsRegistry::Default().GetCounter("sarn.serve.errors"),
        obs::MetricsRegistry::Default().GetCounter("sarn.serve.batches"),
        obs::MetricsRegistry::Default().GetCounter("sarn.serve.cache_hits"),
        obs::MetricsRegistry::Default().GetCounter("sarn.serve.cache_misses"),
        obs::MetricsRegistry::Default().GetCounter("sarn.serve.swaps"),
        obs::MetricsRegistry::Default().GetHistogram("sarn.serve.batch_size",
                                                     BatchSizeBuckets()),
        obs::MetricsRegistry::Default().GetHistogram("sarn.serve.latency_seconds"),
        obs::MetricsRegistry::Default().GetGauge("sarn.serve.epoch"),
        obs::MetricsRegistry::Default().GetGauge("sarn.serve.index_bytes"),
        obs::MetricsRegistry::Default().GetGauge("sarn.serve.simd_tier"),
        {
            &obs::MetricsRegistry::Default().GetHistogram(
                "sarn.serve.stage.admission_seconds"),
            &obs::MetricsRegistry::Default().GetHistogram(
                "sarn.serve.stage.queue_seconds"),
            &obs::MetricsRegistry::Default().GetHistogram(
                "sarn.serve.stage.cache_seconds"),
            &obs::MetricsRegistry::Default().GetHistogram(
                "sarn.serve.stage.scan_seconds"),
            &obs::MetricsRegistry::Default().GetHistogram(
                "sarn.serve.stage.reply_seconds"),
        },
    };
    return metrics;
  }
};

// Canonical cache key: (epoch, metric, precision, k, query payload).
// By-point requests resolve to a row id first, so they share cache entries
// with by-id requests for the same segment. Precision is part of the key so
// a float and a quantized snapshot can never alias an entry (approximate
// int8 answers must not satisfy exact float lookups or vice versa).
std::string CacheKey(uint64_t epoch, tasks::IndexMetric metric,
                     tasks::IndexPrecision precision, int k,
                     const tasks::IndexQuery& query) {
  std::string key;
  key.reserve(48 + query.vector.size() * sizeof(float));
  key.append(std::to_string(epoch));
  key.push_back('|');
  key.push_back(metric == tasks::IndexMetric::kCosine ? 'c' : 'l');
  key.push_back(precision == tasks::IndexPrecision::kInt8 ? 'q' : 'f');
  key.push_back('|');
  key.append(std::to_string(k));
  key.push_back('|');
  if (query.id >= 0) {
    key.push_back('i');
    key.append(std::to_string(query.id));
  } else {
    key.push_back('v');
    key.append(reinterpret_cast<const char*>(query.vector.data()),
               query.vector.size() * sizeof(float));
  }
  return key;
}

}  // namespace

QueryEngine::QueryEngine(std::shared_ptr<const tasks::EmbeddingIndex> index,
                         std::shared_ptr<const geo::SpatialIndex> locator,
                         ServeOptions options)
    : options_(options),
      locator_(std::move(locator)),
      cache_(options.cache_capacity),
      latency_seconds_(obs::DefaultLatencyBuckets()),
      batch_size_(BatchSizeBuckets()),
      tracer_([&options] {
        obs::RequestTracer::Options trace;
        trace.sample_every = options.trace_sample_every;
        trace.ring_capacity = options.trace_ring_capacity;
        trace.slowest_capacity = options.trace_slowest;
        return trace;
      }()),
      traced_total_seconds_(obs::DefaultLatencyBuckets()) {
  SARN_CHECK(index != nullptr);
  SARN_CHECK_GT(options_.max_batch, 0);
  for (int s = 0; s < obs::kRequestStageCount; ++s) {
    stage_seconds_[s] =
        std::make_unique<obs::Histogram>(obs::DefaultLatencyBuckets());
  }
  auto snapshot = std::make_shared<Snapshot>();
  snapshot->epoch = next_epoch_;
  snapshot->index = std::move(index);
  snapshot_ = std::move(snapshot);
  ServeMetrics::Get().epoch.Set(static_cast<double>(next_epoch_));
  ServeMetrics::Get().index_bytes.Set(
      static_cast<double>(snapshot_->index->index_bytes()));
  ServeMetrics::Get().simd_tier.Set(
      static_cast<double>(tensor::simd::ActiveTier()));
  for (int i = 0; i < options_.threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryEngine::~QueryEngine() {
  {
    // Loaders first: a PublishAsync still in flight must finish (and maybe
    // publish) before the snapshot and cache are torn down.
    std::lock_guard<std::mutex> lock(loaders_mu_);
    for (std::thread& loader : loaders_) loader.join();
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::shared_ptr<const QueryEngine::Snapshot> QueryEngine::AcquireSnapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

uint64_t QueryEngine::epoch() const { return AcquireSnapshot()->epoch; }

uint64_t QueryEngine::Publish(std::shared_ptr<const tasks::EmbeddingIndex> index) {
  SARN_CHECK(index != nullptr);
  auto snapshot = std::make_shared<Snapshot>();
  snapshot->index = std::move(index);
  const size_t index_bytes = snapshot->index->index_bytes();
  uint64_t published_epoch = 0;
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot->epoch = published_epoch = ++next_epoch_;
    snapshot_ = std::move(snapshot);
  }
  // Epoch-keyed entries can no longer be hit; drop them so they do not pin
  // memory until they age out of the LRU.
  cache_.Clear();
  swaps_.fetch_add(1, std::memory_order_relaxed);
  ServeMetrics::Get().swaps.Increment();
  ServeMetrics::Get().epoch.Set(static_cast<double>(published_epoch));
  ServeMetrics::Get().index_bytes.Set(static_cast<double>(index_bytes));
  return published_epoch;
}

std::future<uint64_t> QueryEngine::PublishAsync(
    std::function<std::shared_ptr<const tasks::EmbeddingIndex>()> loader) {
  SARN_CHECK(loader != nullptr);
  auto task = std::make_shared<std::packaged_task<uint64_t()>>(
      [this, loader = std::move(loader)]() -> uint64_t {
        std::shared_ptr<const tasks::EmbeddingIndex> index = loader();
        if (index == nullptr) return 0;
        return Publish(std::move(index));
      });
  std::future<uint64_t> future = task->get_future();
  std::lock_guard<std::mutex> lock(loaders_mu_);
  loaders_.emplace_back([task] { (*task)(); });
  return future;
}

std::future<ServeResponse> QueryEngine::Submit(ServeRequest request) {
  Pending pending;
  pending.ctx = tracer_.Admit();  // Stamps admit when this request is traced.
  requests_.fetch_add(1, std::memory_order_relaxed);
  ServeMetrics::Get().requests.Increment();
  pending.request = std::move(request);
  pending.admitted = std::chrono::steady_clock::now();
  std::future<ServeResponse> future = pending.promise.get_future();
  if (options_.threads == 0) {
    // Synchronous mode: the caller's thread is the batch of one.
    pending.ctx.MarkEnqueued();
    std::vector<Pending> batch;
    batch.push_back(std::move(pending));
    ExecuteBatch(std::move(batch));
    return future;
  }
  pending.ctx.MarkEnqueued();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.push_back(std::move(pending));
  }
  queue_cv_.notify_one();
  return future;
}

ServeResponse QueryEngine::Query(ServeRequest request) {
  return Submit(std::move(request)).get();
}

void QueryEngine::WorkerLoop() {
  for (;;) {
    std::vector<Pending> batch = WaitBatch();
    if (batch.empty()) return;  // Stopping and the queue is drained.
    ExecuteBatch(std::move(batch));
  }
}

std::vector<QueryEngine::Pending> QueryEngine::WaitBatch() {
  const auto window = std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(options_.batch_window_ms));
  std::unique_lock<std::mutex> lock(queue_mu_);
  queue_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
  if (queue_.empty()) return {};
  // Wait for the batch to fill, but never past the oldest request's
  // deadline; stopping flushes immediately.
  const auto deadline = queue_.front().admitted + window;
  while (static_cast<int>(queue_.size()) < options_.max_batch && !stop_) {
    if (queue_cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
  }
  const size_t take = std::min(queue_.size(), static_cast<size_t>(options_.max_batch));
  std::vector<Pending> batch;
  batch.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  return batch;
}

ServeResponse QueryEngine::Resolve(const ServeRequest& request,
                                   const Snapshot& snapshot,
                                   tasks::IndexQuery* query) const {
  ServeResponse response;
  response.epoch = snapshot.epoch;
  if (request.k < 0) {
    response.error = "k must be >= 0";
    return response;
  }
  switch (request.kind) {
    case ServeRequest::Kind::kById:
      if (request.id < 0 || request.id >= snapshot.index->size()) {
        response.error = "id " + std::to_string(request.id) + " out of range [0, " +
                         std::to_string(snapshot.index->size()) + ")";
        return response;
      }
      *query = tasks::IndexQuery::ById(request.id);
      break;
    case ServeRequest::Kind::kByVector:
      if (static_cast<int64_t>(request.vector.size()) != snapshot.index->dim()) {
        response.error = "vector has " + std::to_string(request.vector.size()) +
                         " dims, index has " + std::to_string(snapshot.index->dim());
        return response;
      }
      *query = tasks::IndexQuery::ByVector(request.vector);
      break;
    case ServeRequest::Kind::kByPoint: {
      if (locator_ == nullptr) {
        response.error = "lat/lng queries need a road network (serve --network)";
        return response;
      }
      std::optional<uint32_t> nearest = locator_->Nearest(request.point);
      if (!nearest.has_value()) {
        response.error = "no segment near the query point";
        return response;
      }
      if (static_cast<int64_t>(*nearest) >= snapshot.index->size()) {
        response.error = "nearest segment " + std::to_string(*nearest) +
                         " is outside the embedding table";
        return response;
      }
      *query = tasks::IndexQuery::ById(static_cast<int64_t>(*nearest));
      break;
    }
  }
  response.ok = true;
  response.query_id = query->id;
  return response;
}

void QueryEngine::ExecuteBatch(std::vector<Pending> batch) {
  ServeMetrics& metrics = ServeMetrics::Get();
  // Queue stage ends here for every member of the batch.
  for (Pending& pending : batch) pending.ctx.MarkBatchFormed();
  const std::shared_ptr<const Snapshot> snapshot = AcquireSnapshot();
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_items_.fetch_add(batch.size(), std::memory_order_relaxed);
  metrics.batches.Increment();
  metrics.batch_size.Observe(static_cast<double>(batch.size()));
  batch_size_.Observe(static_cast<double>(batch.size()));

  struct Slot {
    ServeResponse response;
    tasks::IndexQuery query;
    std::string key;
    bool needs_scan = false;
  };
  std::vector<Slot> slots(batch.size());
  // Misses grouped by k: QueryBatch answers one k per scan, and real
  // traffic overwhelmingly shares one k per micro-batch.
  std::map<int, std::vector<size_t>> scan_groups;
  for (size_t i = 0; i < batch.size(); ++i) {
    Slot& slot = slots[i];
    const ServeRequest& request = batch[i].request;
    obs::RequestContext& ctx = batch[i].ctx;
    slot.response = Resolve(request, *snapshot, &slot.query);
    if (!slot.response.ok) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      metrics.errors.Increment();
      // Disposed without a scan: collapse the scan stage to zero here so the
      // remaining wait (other slots' scans) lands in the reply stage.
      ctx.MarkScanBegin();
      ctx.MarkScanEnd();
      continue;
    }
    if (request.k == 0) {  // Valid, trivially empty; skip cache + scan.
      ctx.MarkScanBegin();
      ctx.MarkScanEnd();
      continue;
    }
    slot.key = CacheKey(snapshot->epoch, snapshot->index->metric(),
                        snapshot->index->precision(), request.k, slot.query);
    if (ResultCache::Value cached = cache_.Get(slot.key)) {
      slot.response.cache_hit = true;
      slot.response.neighbors = *cached;
      metrics.cache_hits.Increment();
      ctx.MarkCacheHit();
      ctx.MarkScanBegin();
      ctx.MarkScanEnd();
      continue;
    }
    metrics.cache_misses.Increment();
    slot.needs_scan = true;
    scan_groups[request.k].push_back(i);
  }

  for (const auto& [k, indices] : scan_groups) {
    std::vector<tasks::IndexQuery> queries;
    queries.reserve(indices.size());
    for (size_t i : indices) {
      queries.push_back(std::move(slots[i].query));
      batch[i].ctx.MarkScanBegin();
    }
    std::vector<std::vector<tasks::Neighbor>> results =
        snapshot->index->QueryBatch(queries, k);
    for (size_t j = 0; j < indices.size(); ++j) {
      Slot& slot = slots[indices[j]];
      batch[indices[j]].ctx.MarkScanEnd();
      slot.response.neighbors = std::move(results[j]);
      cache_.Put(slot.key, std::make_shared<const std::vector<tasks::Neighbor>>(
                               slot.response.neighbors));
    }
  }

  const auto now = std::chrono::steady_clock::now();
  for (size_t i = 0; i < batch.size(); ++i) {
    const double seconds =
        std::chrono::duration<double>(now - batch[i].admitted).count();
    obs::RequestContext& ctx = batch[i].ctx;
    const bool ok = slots[i].response.ok;
    if (!ctx.traced()) {
      latency_seconds_.Observe(seconds);
      metrics.latency_seconds.Observe(seconds);
    } else {
      // Traced request: close the timeline, feed the per-stage histograms,
      // and tag the latency buckets with this request id so statsz can join
      // a tail bucket back to the full timeline in the ring. All of it
      // happens *before* the promise resolves: once a client holds the
      // reply, its trace record is visible to statsz (no reply/record race).
      ctx.Finish(ok);
      const obs::RequestRecord& record = ctx.record();
      latency_seconds_.ObserveWithExemplar(seconds, record.id);
      metrics.latency_seconds.ObserveWithExemplar(seconds, record.id);
      traced_total_seconds_.ObserveWithExemplar(
          static_cast<double>(record.TotalNanos()) * 1e-9, record.id);
      for (int s = 0; s < obs::kRequestStageCount; ++s) {
        const double stage_seconds =
            static_cast<double>(
                record.StageNanos(static_cast<obs::RequestStage>(s))) *
            1e-9;
        stage_seconds_[s]->ObserveWithExemplar(stage_seconds, record.id);
        metrics.stages[s]->ObserveWithExemplar(stage_seconds, record.id);
      }
    }
    batch[i].promise.set_value(std::move(slots[i].response));
  }
}

ServeStats QueryEngine::Stats() const {
  ServeStats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.errors = errors_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.batched_items = batched_items_.load(std::memory_order_relaxed);
  stats.cache_hits = cache_.hits();
  stats.cache_misses = cache_.misses();
  stats.swaps = swaps_.load(std::memory_order_relaxed);
  const std::shared_ptr<const Snapshot> snapshot = AcquireSnapshot();
  stats.epoch = snapshot->epoch;
  stats.index_bytes = snapshot->index->index_bytes();
  stats.precision = tasks::PrecisionName(snapshot->index->precision());
  stats.simd_tier = tensor::simd::TierName(tensor::simd::ActiveTier());
  stats.uptime_seconds = uptime_.ElapsedSeconds();
  stats.qps = stats.uptime_seconds > 0.0
                  ? static_cast<double>(stats.requests) / stats.uptime_seconds
                  : 0.0;
  stats.mean_batch_size = batch_size_.Mean();
  stats.latency_p50_ms = latency_seconds_.Percentile(50) * 1e3;
  stats.latency_p95_ms = latency_seconds_.Percentile(95) * 1e3;
  stats.latency_p99_ms = latency_seconds_.Percentile(99) * 1e3;
  // Process-wide snapshot-load telemetry (src/snapshot/reader.cc) so one
  // stats line describes how the live index got here.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  stats.snapshot_loads = registry.GetCounter("sarn.snapshot.loads").Value();
  stats.snapshot_load_errors =
      registry.GetCounter("sarn.snapshot.load_errors").Value();
  stats.snapshot_bytes =
      static_cast<uint64_t>(registry.GetGauge("sarn.snapshot.bytes").Value());
  stats.snapshot_mapped_bytes = static_cast<uint64_t>(
      registry.GetGauge("sarn.snapshot.mapped_bytes").Value());
  stats.snapshot_copied_bytes = static_cast<uint64_t>(
      registry.GetGauge("sarn.snapshot.copied_bytes").Value());
  return stats;
}

ServeTraceStats QueryEngine::TraceStats() const {
  ServeTraceStats stats;
  stats.enabled = tracer_.enabled();
  stats.sample_every = tracer_.sample_every();
  obs::RequestTracer::TraceSnapshot trace = tracer_.Snapshot();
  stats.admitted = trace.admitted;
  stats.traced = trace.traced;
  stats.recent = std::move(trace.recent);
  stats.slowest = std::move(trace.slowest);

  double stage_total_ms = 0.0;
  stats.stages.reserve(obs::kRequestStageCount);
  for (int s = 0; s < obs::kRequestStageCount; ++s) {
    const obs::Histogram& histogram = *stage_seconds_[s];
    ServeTraceStats::StageStat stage;
    stage.stage = obs::RequestStageName(static_cast<obs::RequestStage>(s));
    stage.count = histogram.Count();
    stage.total_ms = histogram.Sum() * 1e3;
    stage.p50_ms = histogram.Percentile(50) * 1e3;
    stage.p95_ms = histogram.Percentile(95) * 1e3;
    stage.p99_ms = histogram.Percentile(99) * 1e3;
    // Tail exemplars: request ids from the highest occupied buckets.
    std::vector<uint64_t> counts = histogram.BucketCounts();
    std::vector<uint64_t> exemplars = histogram.BucketExemplars();
    for (size_t b = counts.size(); b-- > 0 && stage.exemplars.size() < 4;) {
      if (counts[b] > 0 && exemplars[b] != 0) {
        stage.exemplars.push_back(exemplars[b]);
      }
    }
    stage_total_ms += stage.total_ms;
    stats.stages.push_back(std::move(stage));
  }
  stats.traced_total_ms = traced_total_seconds_.Sum() * 1e3;
  stats.attributed_fraction =
      stats.traced_total_ms > 0.0 ? stage_total_ms / stats.traced_total_ms : 1.0;
  return stats;
}

}  // namespace sarn::serve
