#include "serve/result_cache.h"

namespace sarn::serve {

ResultCache::Value ResultCache::Get(const std::string& key) {
  if (capacity_ == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->second;
}

void ResultCache::Put(const std::string& key, Value value) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(value));
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace sarn::serve
