// Concurrent, batched top-k embedding query engine — the online serving
// layer the paper's §1 pitch implies: embeddings turn graph traversals into
// vector scans, and this engine turns those scans into a service.
//
// Architecture (DESIGN.md §10):
//  * Admission: Submit() enqueues a request and returns a future. Worker
//    threads assemble *micro-batches*: a batch flushes when it reaches
//    `max_batch` requests or when the oldest admitted request has waited
//    `batch_window_ms` — so a lone request pays at most one window of
//    latency while a burst is answered by one multi-query scan.
//  * Execution: each batch is resolved (lat/lng → nearest segment through
//    the geo locator, ids bounds-checked, vectors dimension-checked),
//    filtered through the LRU result cache, and the misses answered with a
//    single EmbeddingIndex::QueryBatch call (matmul-backed, thread-pool
//    partitioned).
//  * Snapshots: the embedding index is held behind an epoch-tagged
//    snapshot. Publish() atomically swaps in a freshly built index without
//    stopping readers — in-flight batches keep the shared_ptr they acquired
//    and drain on the old snapshot, which is freed when the last batch
//    releases it. Every response carries the epoch it was answered from, so
//    a response can always be traced to one complete, never-torn matrix.
//  * Caching: results are keyed by (epoch, metric, k, query); a swap bumps
//    the epoch and clears the cache.
//
// Instrumented with src/obs metrics under sarn.serve.* (request/error
// counters, batch-size and latency histograms, cache hits/misses, swap
// count) and per-engine counters surfaced through Stats().

#ifndef SARN_SERVE_QUERY_ENGINE_H_
#define SARN_SERVE_QUERY_ENGINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "geo/spatial_index.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "serve/result_cache.h"
#include "tasks/embedding_index.h"

namespace sarn::serve {

struct ServeOptions {
  /// Worker threads consuming the request queue. 0 = synchronous mode:
  /// Submit() executes the request inline as a batch of one (no threads,
  /// deterministic — used by tests and as the bench baseline).
  int threads = 1;
  /// Flush a micro-batch at this many requests...
  int max_batch = 64;
  /// ...or when the oldest admitted request has waited this long.
  double batch_window_ms = 1.0;
  /// LRU result-cache entries; 0 disables caching.
  size_t cache_capacity = 4096;
  /// Request tracing (DESIGN.md §14): every trace_sample_every-th request
  /// gets a per-stage timeline recorded into the trace ring. 1 traces
  /// everything, 0 disables tracing entirely (the Mark* calls reduce to a
  /// dead branch). Tracing never changes results — only timestamps are read.
  uint32_t trace_sample_every = 16;
  /// Recent traced records retained for statsz (rounded up to a power of 2).
  uint32_t trace_ring_capacity = 256;
  /// All-time-slowest traced records retained past ring wrap-around.
  uint32_t trace_slowest = 8;
};

struct ServeRequest {
  enum class Kind { kById, kByVector, kByPoint };
  Kind kind = Kind::kById;
  int64_t id = -1;              // kById.
  std::vector<float> vector;    // kByVector.
  geo::LatLng point;            // kByPoint: answered for the nearest segment.
  int k = 10;
};

struct ServeResponse {
  bool ok = false;
  std::string error;            // Set when !ok.
  uint64_t epoch = 0;           // Snapshot the answer was computed from.
  bool cache_hit = false;
  int64_t query_id = -1;        // Resolved row id (kById/kByPoint), -1 for vectors.
  std::vector<tasks::Neighbor> neighbors;
};

/// Point-in-time engine statistics (per engine, not process-global).
struct ServeStats {
  uint64_t requests = 0;
  uint64_t errors = 0;
  uint64_t batches = 0;
  uint64_t batched_items = 0;   // Requests that went through worker batches.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t swaps = 0;
  uint64_t epoch = 0;
  uint64_t index_bytes = 0;     // Scan payload bytes of the live snapshot.
  std::string precision;        // Live snapshot precision: "float32" / "int8".
  std::string simd_tier;        // Active kernel tier: "scalar" / "avx2" / "neon".
  double uptime_seconds = 0.0;
  double qps = 0.0;             // requests / uptime.
  double mean_batch_size = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  // Process-wide sarn.snapshot.* load telemetry (src/snapshot/reader.cc), so
  // one stats line describes the full serving configuration.
  uint64_t snapshot_loads = 0;
  uint64_t snapshot_load_errors = 0;
  uint64_t snapshot_bytes = 0;         // Arena bytes of the last load.
  uint64_t snapshot_mapped_bytes = 0;  // Served zero-copy from the mapping.
  uint64_t snapshot_copied_bytes = 0;  // Materialised into pool storage.
};

/// Per-stage latency attribution + the traced-request ring, the data behind
/// {"op":"statsz"} (DESIGN.md §14). Stages telescope over [admit, replied],
/// so `attributed_fraction` is 1.0 up to float rounding by construction.
struct ServeTraceStats {
  struct StageStat {
    std::string stage;  // admission / queue / cache / scan / reply.
    uint64_t count = 0;
    double total_ms = 0.0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    /// Exemplar request ids from the highest occupied latency buckets
    /// (slowest bucket first) — the concrete requests behind the tail.
    std::vector<uint64_t> exemplars;
  };
  bool enabled = false;       // False when trace_sample_every == 0.
  uint32_t sample_every = 0;
  uint64_t admitted = 0;      // Requests admitted (ids assigned).
  uint64_t traced = 0;        // Requests with a recorded timeline.
  double traced_total_ms = 0.0;      // Σ end-to-end over traced requests.
  double attributed_fraction = 1.0;  // Σ stage time / Σ end-to-end.
  std::vector<StageStat> stages;     // kRequestStageCount entries, in order.
  std::vector<obs::RequestRecord> recent;   // Ring contents, oldest first.
  std::vector<obs::RequestRecord> slowest;  // Tail table, slowest first.
};

class QueryEngine {
 public:
  /// `index` is the initial snapshot (epoch 1). `locator` resolves
  /// lat/lng queries to segment ids (typically built over the network's
  /// segment midpoints); may be null, in which case kByPoint requests fail
  /// cleanly. The locator is epoch-independent: embeddings are retrained,
  /// geometry is not.
  QueryEngine(std::shared_ptr<const tasks::EmbeddingIndex> index,
              std::shared_ptr<const geo::SpatialIndex> locator,
              ServeOptions options = {});

  /// Drains the queue (every pending future resolves) and joins workers.
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Admits a request; the future resolves when its micro-batch executes.
  std::future<ServeResponse> Submit(ServeRequest request);

  /// Convenience: Submit and wait.
  ServeResponse Query(ServeRequest request);

  /// Atomically publishes a new embedding snapshot: bumps the epoch, clears
  /// the result cache, and lets in-flight batches drain on the old index.
  /// Safe to call concurrently with Submit/Query from any thread. Returns
  /// the epoch the snapshot was published as.
  uint64_t Publish(std::shared_ptr<const tasks::EmbeddingIndex> index);

  /// Runs `loader` on a background thread and Publish()es whatever non-null
  /// index it returns — the hot-swap path for expensive loads (CSV re-parse,
  /// snapshot mmap + validation). Serving is never paused: workers keep
  /// draining batches on the old snapshot the whole time, and in-flight
  /// futures resolve at their usual latency. The returned future yields the
  /// new epoch, or 0 when the loader returned null (load failed; the old
  /// snapshot stays live). Loader threads are joined by the destructor.
  std::future<uint64_t> PublishAsync(
      std::function<std::shared_ptr<const tasks::EmbeddingIndex>()> loader);

  uint64_t epoch() const;
  ServeStats Stats() const;
  /// Per-stage latency breakdown + traced-request dump for statsz.
  ServeTraceStats TraceStats() const;

 private:
  struct Pending {
    ServeRequest request;
    std::promise<ServeResponse> promise;
    std::chrono::steady_clock::time_point admitted;
    obs::RequestContext ctx;
  };
  struct Snapshot {
    uint64_t epoch = 0;
    std::shared_ptr<const tasks::EmbeddingIndex> index;
  };

  std::shared_ptr<const Snapshot> AcquireSnapshot() const;
  void WorkerLoop();
  /// Pops the next micro-batch; empty only when stopping with a drained queue.
  std::vector<Pending> WaitBatch();
  void ExecuteBatch(std::vector<Pending> batch);
  ServeResponse Resolve(const ServeRequest& request, const Snapshot& snapshot,
                        tasks::IndexQuery* query) const;

  const ServeOptions options_;
  std::shared_ptr<const geo::SpatialIndex> locator_;
  ResultCache cache_;
  Timer uptime_;

  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const Snapshot> snapshot_;
  uint64_t next_epoch_ = 1;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;

  // Background PublishAsync loader threads; joined first in the destructor
  // so a late Publish never lands on a dead engine.
  std::mutex loaders_mu_;
  std::vector<std::thread> loaders_;

  // Per-engine statistics (Stats()); the process-global obs registry is
  // updated alongside under sarn.serve.* names.
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> batched_items_{0};
  std::atomic<uint64_t> swaps_{0};
  obs::Histogram latency_seconds_;
  obs::Histogram batch_size_;

  // Request-scoped tracing (engine-owned so a snapshot hot-swap never resets
  // request ids or the ring). Stage histograms record only traced requests;
  // exemplar ids in their tail buckets come from the same requests the ring
  // holds, so statsz can join a p99 bucket to a full timeline.
  obs::RequestTracer tracer_;
  std::unique_ptr<obs::Histogram> stage_seconds_[obs::kRequestStageCount];
  obs::Histogram traced_total_seconds_;
};

}  // namespace sarn::serve

#endif  // SARN_SERVE_QUERY_ENGINE_H_
