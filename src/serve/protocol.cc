#include "serve/protocol.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <map>
#include <optional>
#include <vector>

#include "obs/json.h"

namespace sarn::serve {
namespace {

// ---------------------------------------------------------------------------
// Minimal flat-JSON reader: one object of string/number/bool/null/
// array-of-number values. Anything nested is rejected — the request grammar
// is flat by design, and rejecting early keeps the parser small and safe.

struct JsonField {
  enum class Type { kNumber, kString, kBool, kNull, kNumberArray };
  Type type = Type::kNull;
  double number = 0.0;
  bool boolean = false;
  std::string text;
  std::vector<double> numbers;
};

class FlatJsonReader {
 public:
  explicit FlatJsonReader(std::string_view text) : text_(text) {}

  // Parses the whole line into *fields; false + error_ on malformed input.
  bool Read(std::map<std::string, JsonField>* fields) {
    SkipSpace();
    if (!Consume('{')) return Fail("expected '{'");
    SkipSpace();
    if (Consume('}')) return AtEnd();
    for (;;) {
      std::string key;
      if (!ReadString(&key)) return false;
      SkipSpace();
      if (!Consume(':')) return Fail("expected ':'");
      JsonField field;
      if (!ReadValue(&field)) return false;
      (*fields)[key] = std::move(field);
      SkipSpace();
      if (Consume(',')) {
        SkipSpace();
        continue;
      }
      if (Consume('}')) return AtEnd();
      return Fail("expected ',' or '}'");
    }
  }

  const std::string& error() const { return error_; }

 private:
  bool AtEnd() {
    SkipSpace();
    if (pos_ != text_.size()) return Fail("trailing characters after object");
    return true;
  }

  bool Fail(const std::string& message) {
    if (error_.empty()) {
      error_ = message + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\r' ||
            text_[pos_] == '\n')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  bool ReadString(std::string* out) {
    SkipSpace();
    if (!Consume('"')) return Fail("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char escape = text_[pos_++];
        switch (escape) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            // Flat request strings are file paths; keep \uXXXX simple by
            // passing the code unit through as UTF-8 for the BMP-ASCII case
            // and rejecting anything that needs surrogates.
            if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return Fail("bad \\u escape");
            }
            if (code > 0x7F) return Fail("non-ASCII \\u escape unsupported");
            out->push_back(static_cast<char>(code));
            break;
          }
          default:
            return Fail("bad escape");
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) return Fail("control char in string");
      out->push_back(c);
    }
    return Fail("unterminated string");
  }

  bool ReadNumber(double* out) {
    SkipSpace();
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected number");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(value)) {
      return Fail("bad number '" + token + "'");
    }
    *out = value;
    return true;
  }

  bool ReadValue(JsonField* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("expected value");
    char c = text_[pos_];
    if (c == '"') {
      out->type = JsonField::Type::kString;
      return ReadString(&out->text);
    }
    if (c == 't') {
      if (!ConsumeWord("true")) return Fail("bad literal");
      out->type = JsonField::Type::kBool;
      out->boolean = true;
      return true;
    }
    if (c == 'f') {
      if (!ConsumeWord("false")) return Fail("bad literal");
      out->type = JsonField::Type::kBool;
      out->boolean = false;
      return true;
    }
    if (c == 'n') {
      if (!ConsumeWord("null")) return Fail("bad literal");
      out->type = JsonField::Type::kNull;
      return true;
    }
    if (c == '[') {
      ++pos_;
      out->type = JsonField::Type::kNumberArray;
      SkipSpace();
      if (Consume(']')) return true;
      for (;;) {
        double value = 0.0;
        if (!ReadNumber(&value)) return false;
        out->numbers.push_back(value);
        SkipSpace();
        if (Consume(',')) continue;
        if (Consume(']')) return true;
        return Fail("expected ',' or ']'");
      }
    }
    if (c == '{') return Fail("nested objects unsupported");
    out->type = JsonField::Type::kNumber;
    return ReadNumber(&out->number);
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string error_;
};

const JsonField* FindField(const std::map<std::string, JsonField>& fields,
                           const std::string& name) {
  auto it = fields.find(name);
  return it == fields.end() ? nullptr : &it->second;
}

ParsedLine Invalid(std::string error) {
  ParsedLine parsed;
  parsed.op = ParsedLine::Op::kInvalid;
  parsed.error = std::move(error);
  return parsed;
}

std::optional<int64_t> AsInteger(const JsonField& field) {
  if (field.type != JsonField::Type::kNumber) return std::nullopt;
  double rounded = std::nearbyint(field.number);
  if (rounded != field.number || std::fabs(rounded) > 9.2e18) return std::nullopt;
  return static_cast<int64_t>(rounded);
}

void AppendNeighbors(const std::vector<tasks::Neighbor>& neighbors,
                     std::string* out) {
  out->append("\"neighbors\":[");
  for (size_t i = 0; i < neighbors.size(); ++i) {
    if (i > 0) out->push_back(',');
    out->append("{\"id\":");
    out->append(std::to_string(neighbors[i].id));
    out->append(",\"score\":");
    out->append(obs::JsonNumber(neighbors[i].score));
    out->push_back('}');
  }
  out->push_back(']');
}

}  // namespace

ParsedLine ParseRequestLine(std::string_view line, int default_k) {
  std::map<std::string, JsonField> fields;
  FlatJsonReader reader(line);
  if (!reader.Read(&fields)) return Invalid("parse error: " + reader.error());

  std::string op = "query";
  if (const JsonField* field = FindField(fields, "op")) {
    if (field->type != JsonField::Type::kString) return Invalid("\"op\" must be a string");
    op = field->text;
  }

  if (op == "stats") {
    ParsedLine parsed;
    parsed.op = ParsedLine::Op::kStats;
    return parsed;
  }
  if (op == "statsz") {
    ParsedLine parsed;
    parsed.op = ParsedLine::Op::kStatsz;
    return parsed;
  }
  if (op == "reload") {
    const JsonField* path = FindField(fields, "embeddings");
    if (path == nullptr || path->type != JsonField::Type::kString || path->text.empty()) {
      return Invalid("reload needs \"embeddings\": \"<csv path>\"");
    }
    ParsedLine parsed;
    parsed.op = ParsedLine::Op::kReload;
    parsed.reload_path = path->text;
    return parsed;
  }
  if (op != "query") return Invalid("unknown op \"" + op + "\"");

  ParsedLine parsed;
  parsed.op = ParsedLine::Op::kQuery;
  parsed.request.k = default_k;
  if (const JsonField* k = FindField(fields, "k")) {
    std::optional<int64_t> value = AsInteger(*k);
    if (!value.has_value() || *value < 0 || *value > 1'000'000) {
      return Invalid("\"k\" must be a non-negative integer");
    }
    parsed.request.k = static_cast<int>(*value);
  }

  const JsonField* id = FindField(fields, "id");
  const JsonField* vector = FindField(fields, "vector");
  const JsonField* lat = FindField(fields, "lat");
  const JsonField* lng = FindField(fields, "lng");
  if (lng == nullptr) lng = FindField(fields, "lon");
  const int selectors = (id != nullptr) + (vector != nullptr) +
                        (lat != nullptr || lng != nullptr);
  if (selectors != 1) {
    return Invalid("query needs exactly one of \"id\", \"vector\", or \"lat\"+\"lng\"");
  }

  if (id != nullptr) {
    std::optional<int64_t> value = AsInteger(*id);
    if (!value.has_value() || *value < 0) return Invalid("\"id\" must be an integer >= 0");
    parsed.request.kind = ServeRequest::Kind::kById;
    parsed.request.id = *value;
    return parsed;
  }
  if (vector != nullptr) {
    if (vector->type != JsonField::Type::kNumberArray || vector->numbers.empty()) {
      return Invalid("\"vector\" must be a non-empty array of numbers");
    }
    parsed.request.kind = ServeRequest::Kind::kByVector;
    parsed.request.vector.reserve(vector->numbers.size());
    for (double v : vector->numbers) {
      parsed.request.vector.push_back(static_cast<float>(v));
    }
    return parsed;
  }
  if (lat == nullptr || lng == nullptr ||
      lat->type != JsonField::Type::kNumber || lng->type != JsonField::Type::kNumber) {
    return Invalid("point query needs numeric \"lat\" and \"lng\"");
  }
  parsed.request.kind = ServeRequest::Kind::kByPoint;
  parsed.request.point = geo::LatLng{lat->number, lng->number};
  return parsed;
}

std::string FormatResponseLine(uint64_t seq, const ServeResponse& response) {
  std::string out;
  out.reserve(64 + response.neighbors.size() * 32);
  out.append("{\"seq\":");
  out.append(std::to_string(seq));
  out.append(",\"ok\":");
  out.append(response.ok ? "true" : "false");
  if (!response.ok) {
    out.append(",\"error\":\"");
    obs::JsonEscape(response.error, &out);
    out.append("\"}");
    return out;
  }
  out.append(",\"epoch\":");
  out.append(std::to_string(response.epoch));
  out.append(",\"cache\":");
  out.append(response.cache_hit ? "true" : "false");
  if (response.query_id >= 0) {
    out.append(",\"id\":");
    out.append(std::to_string(response.query_id));
  }
  out.push_back(',');
  AppendNeighbors(response.neighbors, &out);
  out.push_back('}');
  return out;
}

std::string FormatStatsLine(uint64_t seq, const ServeStats& stats) {
  std::string out;
  out.append("{\"seq\":");
  out.append(std::to_string(seq));
  out.append(",\"ok\":true,\"stats\":{");
  out.append("\"requests\":" + std::to_string(stats.requests));
  out.append(",\"errors\":" + std::to_string(stats.errors));
  out.append(",\"batches\":" + std::to_string(stats.batches));
  out.append(",\"cache_hits\":" + std::to_string(stats.cache_hits));
  out.append(",\"cache_misses\":" + std::to_string(stats.cache_misses));
  out.append(",\"swaps\":" + std::to_string(stats.swaps));
  out.append(",\"epoch\":" + std::to_string(stats.epoch));
  out.append(",\"index_bytes\":" + std::to_string(stats.index_bytes));
  out.append(",\"precision\":\"" + stats.precision + "\"");
  out.append(",\"simd_tier\":\"" + stats.simd_tier + "\"");
  out.append(",\"uptime_seconds\":" + obs::JsonNumber(stats.uptime_seconds));
  out.append(",\"qps\":" + obs::JsonNumber(stats.qps));
  out.append(",\"mean_batch_size\":" + obs::JsonNumber(stats.mean_batch_size));
  out.append(",\"latency_p50_ms\":" + obs::JsonNumber(stats.latency_p50_ms));
  out.append(",\"latency_p95_ms\":" + obs::JsonNumber(stats.latency_p95_ms));
  out.append(",\"latency_p99_ms\":" + obs::JsonNumber(stats.latency_p99_ms));
  out.append(",\"snapshot\":{");
  out.append("\"loads\":" + std::to_string(stats.snapshot_loads));
  out.append(",\"load_errors\":" + std::to_string(stats.snapshot_load_errors));
  out.append(",\"bytes\":" + std::to_string(stats.snapshot_bytes));
  out.append(",\"mapped_bytes\":" + std::to_string(stats.snapshot_mapped_bytes));
  out.append(",\"copied_bytes\":" + std::to_string(stats.snapshot_copied_bytes));
  out.append("}}}");
  return out;
}

namespace {

void AppendRecord(const obs::RequestRecord& record, std::string* out) {
  out->append("{\"id\":");
  out->append(std::to_string(record.id));
  out->append(",\"ok\":");
  out->append(record.ok ? "true" : "false");
  out->append(",\"cache_hit\":");
  out->append(record.cache_hit ? "true" : "false");
  out->append(",\"total_ms\":");
  out->append(obs::JsonNumber(static_cast<double>(record.TotalNanos()) * 1e-6));
  out->append(",\"stages_ms\":{");
  for (int s = 0; s < obs::kRequestStageCount; ++s) {
    if (s > 0) out->push_back(',');
    auto stage = static_cast<obs::RequestStage>(s);
    out->push_back('"');
    out->append(obs::RequestStageName(stage));
    out->append("\":");
    out->append(
        obs::JsonNumber(static_cast<double>(record.StageNanos(stage)) * 1e-6));
  }
  out->append("}}");
}

}  // namespace

std::string FormatStatszLine(uint64_t seq, const ServeTraceStats& stats) {
  std::string out;
  out.reserve(512 + (stats.recent.size() + stats.slowest.size()) * 192);
  out.append("{\"seq\":");
  out.append(std::to_string(seq));
  out.append(",\"ok\":true,\"statsz\":{");
  out.append("\"enabled\":");
  out.append(stats.enabled ? "true" : "false");
  out.append(",\"sample_every\":" + std::to_string(stats.sample_every));
  out.append(",\"admitted\":" + std::to_string(stats.admitted));
  out.append(",\"traced\":" + std::to_string(stats.traced));
  out.append(",\"traced_total_ms\":" + obs::JsonNumber(stats.traced_total_ms));
  out.append(",\"attributed_fraction\":" +
             obs::JsonNumber(stats.attributed_fraction));
  out.append(",\"stages\":[");
  for (size_t i = 0; i < stats.stages.size(); ++i) {
    const ServeTraceStats::StageStat& stage = stats.stages[i];
    if (i > 0) out.push_back(',');
    out.append("{\"stage\":\"");
    out.append(stage.stage);
    out.append("\",\"count\":" + std::to_string(stage.count));
    out.append(",\"total_ms\":" + obs::JsonNumber(stage.total_ms));
    out.append(",\"p50_ms\":" + obs::JsonNumber(stage.p50_ms));
    out.append(",\"p95_ms\":" + obs::JsonNumber(stage.p95_ms));
    out.append(",\"p99_ms\":" + obs::JsonNumber(stage.p99_ms));
    out.append(",\"exemplar_ids\":[");
    for (size_t e = 0; e < stage.exemplars.size(); ++e) {
      if (e > 0) out.push_back(',');
      out.append(std::to_string(stage.exemplars[e]));
    }
    out.append("]}");
  }
  out.append("],\"recent\":[");
  for (size_t i = 0; i < stats.recent.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendRecord(stats.recent[i], &out);
  }
  out.append("],\"slowest\":[");
  for (size_t i = 0; i < stats.slowest.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendRecord(stats.slowest[i], &out);
  }
  out.append("]}}");
  return out;
}

std::string FormatErrorLine(uint64_t seq, const std::string& error) {
  std::string out;
  out.append("{\"seq\":");
  out.append(std::to_string(seq));
  out.append(",\"ok\":false,\"error\":\"");
  obs::JsonEscape(error, &out);
  out.append("\"}");
  return out;
}

std::string FormatReloadLine(uint64_t seq, bool ok, uint64_t epoch,
                             const std::string& error) {
  if (!ok) return FormatErrorLine(seq, error);
  std::string out;
  out.append("{\"seq\":");
  out.append(std::to_string(seq));
  out.append(",\"ok\":true,\"epoch\":");
  out.append(std::to_string(epoch));
  out.push_back('}');
  return out;
}

}  // namespace sarn::serve
