// Newline-delimited JSON protocol for `sarn serve`.
//
// Requests, one JSON object per line on stdin:
//   {"op":"query","id":12,"k":5}                     top-k of stored row 12
//   {"op":"query","vector":[0.1,0.2,...],"k":5}      top-k of an external vector
//   {"op":"query","lat":30.65,"lng":104.06,"k":3}    top-k of nearest segment
//   {"op":"stats"}                                   engine statistics
//   {"op":"statsz"}                                  per-stage latency breakdown
//                                                    + traced-request dump
//   {"op":"reload","embeddings":"emb.csv"}           hot-swap a new snapshot
// "op" defaults to "query"; "k" defaults to the CLI's --k. "lon" is accepted
// for "lng".
//
// Responses, one JSON object per line on stdout, tagged with the 0-based
// input line sequence number and (for queries) the snapshot epoch:
//   {"seq":0,"ok":true,"epoch":1,"cache":false,"id":12,
//    "neighbors":[{"id":3,"score":0.97},...]}
//   {"seq":1,"ok":false,"error":"..."}
//
// The parser is a deliberately minimal flat-JSON reader (strings, numbers,
// booleans, null, arrays of numbers — no nesting), matching the request
// grammar above; the emitter reuses src/obs/json escaping/number formatting
// so every output line is RFC 8259-valid (`sarn check-json --lines true`).

#ifndef SARN_SERVE_PROTOCOL_H_
#define SARN_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "serve/query_engine.h"

namespace sarn::serve {

struct ParsedLine {
  enum class Op { kQuery, kStats, kStatsz, kReload, kInvalid };
  Op op = Op::kInvalid;
  ServeRequest request;      // kQuery.
  std::string reload_path;   // kReload.
  std::string error;         // kInvalid.
};

/// Parses one request line; never aborts on malformed input (returns
/// kInvalid with a description instead, so one bad client line cannot take
/// the server down).
ParsedLine ParseRequestLine(std::string_view line, int default_k);

/// One response line (no trailing newline), valid JSON.
std::string FormatResponseLine(uint64_t seq, const ServeResponse& response);
std::string FormatStatsLine(uint64_t seq, const ServeStats& stats);
/// statsz: per-stage latency attribution (count/total/percentiles/exemplar
/// request ids per named stage), the attributed fraction, and the traced
/// request records (recent ring + slowest table) with full timelines.
std::string FormatStatszLine(uint64_t seq, const ServeTraceStats& stats);
std::string FormatErrorLine(uint64_t seq, const std::string& error);
std::string FormatReloadLine(uint64_t seq, bool ok, uint64_t epoch,
                             const std::string& error);

}  // namespace sarn::serve

#endif  // SARN_SERVE_PROTOCOL_H_
