#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace sarn {

std::vector<std::string> Split(const std::string& text, char delimiter) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : text) {
    if (c == delimiter) {
      parts.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  parts.push_back(std::move(current));
  return parts;
}

std::string Trim(const std::string& text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::optional<double> ParseDouble(const std::string& text) {
  std::string trimmed = Trim(text);
  if (trimmed.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(trimmed.c_str(), &end);
  if (errno != 0 || end != trimmed.c_str() + trimmed.size()) return std::nullopt;
  return value;
}

std::optional<int64_t> ParseInt(const std::string& text) {
  std::string trimmed = Trim(text);
  if (trimmed.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  int64_t value = std::strtoll(trimmed.c_str(), &end, 10);
  if (errno != 0 || end != trimmed.c_str() + trimmed.size()) return std::nullopt;
  return value;
}

std::string FormatDouble(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

bool StartsWith(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() && text.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace sarn
