#include "common/binary_io.h"

#include <array>
#include <cstring>

namespace sarn {
namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t crc) {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void ByteWriter::PutString(std::string_view s) {
  PutU64(static_cast<uint64_t>(s.size()));
  PutBytes(s.data(), s.size());
}

void ByteWriter::PutFloats(const std::vector<float>& values) {
  PutFloats(values.data(), values.size());
}

void ByteWriter::PutFloats(const float* values, size_t count) {
  PutU64(static_cast<uint64_t>(count));
  PutBytes(values, count * sizeof(float));
}

void ByteWriter::PutBytes(const void* data, size_t size) {
  buffer_.append(static_cast<const char*>(data), size);
}

bool ByteReader::GetString(std::string* s) {
  uint64_t size = 0;
  if (!GetU64(&size)) return false;
  if (size > remaining()) {
    failed_ = true;
    return false;
  }
  s->assign(data_.data() + pos_, static_cast<size_t>(size));
  pos_ += static_cast<size_t>(size);
  return true;
}

bool ByteReader::GetFloats(std::vector<float>* values) {
  uint64_t count = 0;
  if (!GetU64(&count)) return false;
  if (count > remaining() / sizeof(float)) {
    failed_ = true;
    return false;
  }
  values->resize(static_cast<size_t>(count));
  return GetBytes(values->data(), static_cast<size_t>(count) * sizeof(float));
}

bool ByteReader::GetBytes(void* out, size_t size) {
  if (failed_ || size > data_.size() - pos_) {
    failed_ = true;
    return false;
  }
  std::memcpy(out, data_.data() + pos_, size);
  pos_ += size;
  return true;
}

}  // namespace sarn
