// Parallel-for over a persistent worker pool, used by the hot numeric
// kernels (matmul, GAT message passing, A^s construction).
//
// Workers are spawned once (lazily, on first use) and park on a condition
// variable between calls, so ParallelFor costs a wake/notify instead of a
// thread spawn+join per invocation. Work is distributed dynamically in
// chunks of at least `grain` items; the calling thread participates, so a
// ParallelFor always completes even if every worker is busy elsewhere.
// Falls back to serial execution for small ranges, when the pool is pinned
// to one thread, or when called from inside another ParallelFor body
// (nested calls run inline rather than deadlocking on the shared pool).
//
// The thread count can be pinned globally; tests pin it to 1 for
// determinism where accumulation order matters.

#ifndef SARN_COMMON_PARALLEL_H_
#define SARN_COMMON_PARALLEL_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace sarn {

/// Number of threads ParallelFor may use, including the calling thread
/// (defaults to hardware concurrency capped at 8). Thread-safe; the
/// underlying pool is initialised exactly once.
size_t GetParallelThreads();

/// Resizes the worker pool to `threads - 1` persistent workers (the caller
/// is the remaining thread); 0 is clamped to 1. Joins the old workers
/// before spawning the new ones, so it is safe to call between parallel
/// regions from any thread.
void SetParallelThreads(size_t threads);

/// Runs body(begin, end) over a partition of [0, n) across the pool. `body`
/// must be safe to call concurrently on disjoint ranges, and may be invoked
/// several times per thread (dynamic chunking). Serial when the range is
/// small (fewer than `grain` items), when threads == 1, or when already
/// inside a ParallelFor body. Pass a small `grain` when each item is
/// expensive (e.g., a matrix row). Exceptions thrown by `body` are caught
/// in the worker, the remaining chunks still run, and the first exception
/// is rethrown on the calling thread after the region completes.
void ParallelFor(size_t n, const std::function<void(size_t begin, size_t end)>& body,
                 size_t grain = 2048);

/// True while the current thread is executing a ParallelFor body (nested
/// calls therefore run serially). Exposed for tests and assertions.
bool InParallelRegion();

/// Cumulative activity counters of the parallel runtime, for telemetry.
/// Counters are updated with relaxed atomics once per region / chunk / park
/// cycle (never per item), so the cost is noise even on hot kernels.
struct ParallelPoolStats {
  uint64_t regions = 0;         // ParallelFor calls dispatched to the pool.
  uint64_t serial_regions = 0;  // Calls that ran inline (small / nested / 1 thread).
  uint64_t chunks = 0;          // Dynamic chunks executed across all threads.
  uint64_t items = 0;           // Items covered by pool-dispatched regions.
  double worker_idle_seconds = 0.0;  // Total time workers spent parked.
};

/// Snapshot of the counters since process start (or the last reset). Epoch
/// telemetry consumes deltas between successive snapshots.
ParallelPoolStats GetParallelPoolStats();
void ResetParallelPoolStats();

}  // namespace sarn

#endif  // SARN_COMMON_PARALLEL_H_
