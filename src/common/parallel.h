// Minimal parallel-for over std::thread, used by the hot numeric kernels
// (matmul, GAT message passing, A^s construction). Falls back to serial
// execution for small ranges, and the thread count can be pinned globally
// (tests pin it to 1 for determinism where order matters).

#ifndef SARN_COMMON_PARALLEL_H_
#define SARN_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace sarn {

/// Number of worker threads parallel-for may use (defaults to hardware
/// concurrency capped at 8).
size_t GetParallelThreads();
void SetParallelThreads(size_t threads);

/// Runs body(begin, end) over a partition of [0, n) across threads. `body`
/// must be safe to call concurrently on disjoint ranges. Serial when the
/// range is small (fewer than `grain` items) or threads == 1. Pass a small
/// `grain` when each item is expensive (e.g., a matrix row).
void ParallelFor(size_t n, const std::function<void(size_t begin, size_t end)>& body,
                 size_t grain = 2048);

}  // namespace sarn

#endif  // SARN_COMMON_PARALLEL_H_
