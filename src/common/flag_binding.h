// Declarative flag <-> struct binding on top of common/flags.h.
//
// CLI commands used to copy-paste the same plumbing twice per flag: once to
// declare it ("--epochs", default, help) and once to read the parsed value
// back into a typed options struct (`config.max_epochs =
// static_cast<int>(flags.GetInt("epochs"))`). FlagBindings collapses both
// sides into one line that points at the target field:
//
//   struct TrainArgs {
//     std::string network;
//     int epochs = 40;
//     FlagBindings Bindings() {
//       FlagBindings b;
//       b.String("network", &network, "network CSV", /*required=*/true)
//           .Int("epochs", &epochs, "training epochs");
//       return b;
//     }
//   };
//
//   // Declaring: defaults come from the default-constructed struct, so the
//   // generated --help shows exactly what the code will use.
//   TrainArgs().Bindings().Declare(flag_set);
//   // Applying: writes every parsed value back into the bound fields.
//   TrainArgs args;
//   args.Bindings().Apply(flag_set);
//
// Bindings hold raw pointers into the struct; the struct must outlive the
// Declare/Apply call (both are single-expression uses in practice).
// Declaration order is preserved, so the generated usage text is identical
// to what the hand-written FlagSet calls produced.

#ifndef SARN_COMMON_FLAG_BINDING_H_
#define SARN_COMMON_FLAG_BINDING_H_

#include <cstdint>
#include <functional>
#include <string>
#include <type_traits>
#include <vector>

#include "common/flags.h"

namespace sarn {

class FlagBindings {
 public:
  FlagBindings& String(const std::string& name, std::string* target,
                       const std::string& help, bool required = false) {
    bindings_.push_back(
        {[=](FlagSet& f) { f.String(name, *target, help, required); },
         [=](const FlagSet& f) { *target = f.GetString(name); }});
    return *this;
  }

  /// Any integral field (int, int64_t, uint32_t, size_t, ...); parsed as
  /// int64 and narrowed with static_cast, matching the old call sites.
  template <typename T, typename = std::enable_if_t<std::is_integral_v<T> &&
                                                    !std::is_same_v<T, bool>>>
  FlagBindings& Int(const std::string& name, T* target, const std::string& help) {
    bindings_.push_back(
        {[=](FlagSet& f) { f.Int(name, static_cast<int64_t>(*target), help); },
         [=](const FlagSet& f) { *target = static_cast<T>(f.GetInt(name)); }});
    return *this;
  }

  FlagBindings& Double(const std::string& name, double* target,
                       const std::string& help) {
    bindings_.push_back({[=](FlagSet& f) { f.Double(name, *target, help); },
                         [=](const FlagSet& f) { *target = f.GetDouble(name); }});
    return *this;
  }

  FlagBindings& Bool(const std::string& name, bool* target, const std::string& help) {
    bindings_.push_back({[=](FlagSet& f) { f.Bool(name, *target, help); },
                         [=](const FlagSet& f) { *target = f.GetBool(name); }});
    return *this;
  }

  /// Declares every bound flag on `flags`, defaults taken from the targets'
  /// current values, in binding order.
  void Declare(FlagSet& flags) const {
    for (const Binding& binding : bindings_) binding.declare(flags);
  }

  /// Writes every parsed (or defaulted) flag value into its bound target.
  void Apply(const FlagSet& flags) const {
    for (const Binding& binding : bindings_) binding.apply(flags);
  }

 private:
  struct Binding {
    std::function<void(FlagSet&)> declare;
    std::function<void(const FlagSet&)> apply;
  };
  std::vector<Binding> bindings_;
};

}  // namespace sarn

#endif  // SARN_COMMON_FLAG_BINDING_H_
