#include "common/logging.h"

#include <atomic>

namespace sarn {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }

void SetLogLevel(LogLevel level) { g_log_level.store(static_cast<int>(level)); }

}  // namespace sarn
