#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <ctime>

namespace sarn {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<uint32_t> g_next_thread_id{1};

}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }

void SetLogLevel(LogLevel level) { g_log_level.store(static_cast<int>(level)); }

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

std::optional<LogLevel> ParseLogLevel(std::string_view name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(c)));
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warning" || lower == "warn") return LogLevel::kWarning;
  if (lower == "error") return LogLevel::kError;
  return std::nullopt;
}

bool InitLogLevelFromEnv() {
  const char* value = std::getenv("SARN_LOG_LEVEL");
  if (value == nullptr || *value == '\0') return true;
  std::optional<LogLevel> level = ParseLogLevel(value);
  if (!level.has_value()) {
    SARN_LOG(Warning) << "SARN_LOG_LEVEL=" << value
                      << " is not a level (debug|info|warning|error); keeping "
                      << LogLevelName(GetLogLevel());
    return false;
  }
  SetLogLevel(*level);
  return true;
}

uint32_t ThreadId() {
  thread_local uint32_t id = g_next_thread_id.fetch_add(1);
  return id;
}

namespace internal {

std::string LogPrefix(LogLevel level, const char* file, int line) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  auto now = std::chrono::system_clock::now();
  std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  int millis = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(now.time_since_epoch())
          .count() %
      1000);
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  char stamp[64];
  std::snprintf(stamp, sizeof(stamp), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, millis);
  std::ostringstream prefix;
  prefix << "[" << LogLevelName(level) << " " << stamp << " t" << ThreadId() << " "
         << base << ":" << line << "] ";
  return prefix.str();
}

}  // namespace internal
}  // namespace sarn
