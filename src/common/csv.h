// Small CSV reader/writer used for road-network and trajectory persistence
// and for exporting benchmark series.
//
// The dialect is deliberately simple: comma-separated, first row optionally a
// header, fields containing commas/quotes/newlines are double-quoted with
// embedded quotes doubled. This is sufficient for the numeric/identifier data
// the library stores; it is not a general RFC 4180 parser for exotic input.

#ifndef SARN_COMMON_CSV_H_
#define SARN_COMMON_CSV_H_

#include <optional>
#include <string>
#include <vector>

namespace sarn {

/// An in-memory CSV table: optional header plus string rows.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of the named header column, or nullopt.
  std::optional<size_t> ColumnIndex(const std::string& name) const;
};

/// Parses a single CSV line into fields (handles quoting).
std::vector<std::string> ParseCsvLine(const std::string& line);

/// Escapes a field for CSV output if needed.
std::string EscapeCsvField(const std::string& field);

/// Reads a CSV file. Returns nullopt if the file cannot be opened.
/// If `has_header` the first row populates `header`.
std::optional<CsvTable> ReadCsvFile(const std::string& path, bool has_header);

/// Writes a CSV file. Returns false on I/O failure.
bool WriteCsvFile(const std::string& path, const CsvTable& table);

}  // namespace sarn

#endif  // SARN_COMMON_CSV_H_
