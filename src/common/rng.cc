#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <sstream>
#include <unordered_set>

namespace sarn {

void Rng::SaveState(ByteWriter& out) const {
  // mt19937_64 defines exact text round-tripping via the stream operators.
  std::ostringstream stream;
  stream << engine_;
  out.PutString(stream.str());
}

bool Rng::LoadState(ByteReader& in) {
  std::string text;
  if (!in.GetString(&text)) return false;
  std::istringstream stream(text);
  std::mt19937_64 restored;
  stream >> restored;
  if (stream.fail()) return false;
  engine_ = restored;
  return true;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  SARN_CHECK_LE(k, n);
  if (k == 0) return {};
  // For small k relative to n, rejection sampling; otherwise partial shuffle.
  if (k * 4 <= n) {
    std::unordered_set<size_t> seen;
    std::vector<size_t> out;
    out.reserve(k);
    while (out.size() < k) {
      size_t candidate = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(n) - 1));
      if (seen.insert(candidate).second) out.push_back(candidate);
    }
    return out;
  }
  std::vector<size_t> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = i;
  for (size_t i = 0; i < k; ++i) {
    size_t j = static_cast<size_t>(UniformInt(static_cast<int64_t>(i), static_cast<int64_t>(n) - 1));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

std::vector<size_t> Rng::WeightedSampleWithoutReplacement(const std::vector<double>& weights,
                                                          size_t k) {
  // Efraimidis–Spirakis A-ES: each item gets key u^(1/w); take the k largest.
  // Using log-keys for numerical stability: log(u)/w.
  using Entry = std::pair<double, size_t>;  // (key, index)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> smallest_on_top;
  for (size_t i = 0; i < weights.size(); ++i) {
    double w = weights[i];
    if (w <= 0.0) continue;
    double u = Uniform(std::numeric_limits<double>::min(), 1.0);
    double key = std::log(u) / w;
    if (smallest_on_top.size() < k) {
      smallest_on_top.emplace(key, i);
    } else if (key > smallest_on_top.top().first) {
      smallest_on_top.pop();
      smallest_on_top.emplace(key, i);
    }
  }
  std::vector<size_t> out;
  out.reserve(smallest_on_top.size());
  while (!smallest_on_top.empty()) {
    out.push_back(smallest_on_top.top().second);
    smallest_on_top.pop();
  }
  std::reverse(out.begin(), out.end());  // Highest key (most likely) first.
  return out;
}

}  // namespace sarn
