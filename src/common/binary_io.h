// Little byte-buffer serialization layer used by the checkpoint subsystem.
//
// ByteWriter appends typed values to an in-memory buffer; ByteReader parses
// them back with sticky failure semantics: the first short read marks the
// reader failed and every subsequent Get* returns false without touching its
// output, so callers can chain reads and check once at the end. Multi-byte
// values are written in host byte order (checkpoints are a same-machine
// crash-recovery format, not an interchange format; the container's magic and
// CRC reject foreign files).
//
// Crc32 is the standard CRC-32 (IEEE 802.3, reflected, polynomial
// 0xEDB88320), computed over a whole payload to detect torn or bit-flipped
// checkpoint files.

#ifndef SARN_COMMON_BINARY_IO_H_
#define SARN_COMMON_BINARY_IO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sarn {

/// CRC-32 (IEEE) of `size` bytes at `data`; pass the previous return value
/// as `crc` to extend a running checksum.
uint32_t Crc32(const void* data, size_t size, uint32_t crc = 0);

/// Appends typed values to a growable byte buffer.
class ByteWriter {
 public:
  void PutU32(uint32_t v) { PutBytes(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutBytes(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutBytes(&v, sizeof(v)); }
  void PutF32(float v) { PutBytes(&v, sizeof(v)); }
  void PutF64(double v) { PutBytes(&v, sizeof(v)); }

  /// u64 length followed by the raw bytes.
  void PutString(std::string_view s);

  /// u64 count followed by the raw float32 payload.
  void PutFloats(const std::vector<float>& values);
  void PutFloats(const float* values, size_t count);

  void PutBytes(const void* data, size_t size);

  const std::string& buffer() const { return buffer_; }
  std::string Take() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

/// Parses values from a byte buffer (not owned). All Get* methods return
/// false — leaving the output untouched — once the buffer is exhausted or a
/// previous read failed.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool GetU32(uint32_t* v) { return GetBytes(v, sizeof(*v)); }
  bool GetU64(uint64_t* v) { return GetBytes(v, sizeof(*v)); }
  bool GetI64(int64_t* v) { return GetBytes(v, sizeof(*v)); }
  bool GetF32(float* v) { return GetBytes(v, sizeof(*v)); }
  bool GetF64(double* v) { return GetBytes(v, sizeof(*v)); }
  bool GetString(std::string* s);
  bool GetFloats(std::vector<float>* values);
  bool GetBytes(void* out, size_t size);

  bool ok() const { return !failed_; }
  bool AtEnd() const { return !failed_ && pos_ == data_.size(); }
  size_t remaining() const { return failed_ ? 0 : data_.size() - pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace sarn

#endif  // SARN_COMMON_BINARY_IO_H_
