// Wall-clock timing utilities used by the benchmark harness and the trainers'
// progress reports.

#ifndef SARN_COMMON_TIMER_H_
#define SARN_COMMON_TIMER_H_

#include <chrono>

namespace sarn {

/// Monotonic wall-clock stopwatch. Starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sarn

#endif  // SARN_COMMON_TIMER_H_
