#include "common/csv.h"

#include <fstream>
#include <sstream>

namespace sarn {

std::optional<size_t> CsvTable::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  return std::nullopt;
}

std::vector<std::string> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r') {
      // Tolerate CRLF line endings.
    } else {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

std::string EscapeCsvField(const std::string& field) {
  bool needs_quoting = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::optional<CsvTable> ReadCsvFile(const std::string& path, bool has_header) {
  std::ifstream in(path);
  if (!in.is_open()) return std::nullopt;
  CsvTable table;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<std::string> fields = ParseCsvLine(line);
    if (first && has_header) {
      table.header = std::move(fields);
    } else {
      table.rows.push_back(std::move(fields));
    }
    first = false;
  }
  return table;
}

bool WriteCsvFile(const std::string& path, const CsvTable& table) {
  std::ofstream out(path);
  if (!out.is_open()) return false;
  auto write_row = [&out](const std::vector<std::string>& row) {
    if (row.size() == 1 && row[0].empty()) {
      // A bare empty line would be skipped by the reader; quote it.
      out << "\"\"\n";
      return;
    }
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ',';
      out << EscapeCsvField(row[i]);
    }
    out << '\n';
  };
  if (!table.header.empty()) write_row(table.header);
  for (const auto& row : table.rows) write_row(row);
  return out.good();
}

}  // namespace sarn
