// Declarative command-line flag registry for the sarn CLI.
//
// Each CLI command declares its flags once — name, type, default, help —
// and gets uniform "--name value" parsing, type validation, required-flag
// checking, and a generated usage text (`sarn <command> --help`) for free.
// This replaces the ad-hoc string map the commands used to share, where
// typos in flag names were silently ignored and every call site re-parsed
// its own numbers.
//
// Conventions (unchanged from the old parser): every flag takes exactly one
// value ("--lines true", never a bare "--lines"), unknown flags are errors,
// and "--help" / "-h" anywhere requests the usage text.

#ifndef SARN_COMMON_FLAGS_H_
#define SARN_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sarn {

enum class FlagType { kString, kInt, kDouble, kBool };

struct FlagSpec {
  std::string name;           // Without the leading "--".
  FlagType type = FlagType::kString;
  std::string default_value;  // Parsed like a command-line value; "" = empty.
  std::string help;
  bool required = false;      // Required flags have no meaningful default.
};

class FlagSet {
 public:
  /// `command` and `summary` head the generated usage text.
  FlagSet(std::string command, std::string summary);

  /// Declares a flag; fluent so command tables read declaratively.
  /// Names must be unique within the set (checked).
  FlagSet& Add(FlagSpec spec);

  /// Shorthands for Add.
  FlagSet& String(const std::string& name, const std::string& default_value,
                  const std::string& help, bool required = false);
  FlagSet& Int(const std::string& name, int64_t default_value, const std::string& help);
  FlagSet& Double(const std::string& name, double default_value,
                  const std::string& help);
  FlagSet& Bool(const std::string& name, bool default_value, const std::string& help);

  /// Parses "--name value" pairs from argv[first..argc). False on unknown
  /// flag, missing value, type mismatch, or missing required flag, with the
  /// problem described in *error. "--help" / "-h" anywhere sets
  /// help_requested() and returns true without further validation.
  bool Parse(int argc, char** argv, int first, std::string* error);

  bool help_requested() const { return help_requested_; }
  /// True when the flag was given on the command line (not defaulted).
  bool provided(const std::string& name) const;

  /// Typed accessors; the flag must exist with the matching type (checked).
  std::string GetString(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  /// Generated per-command usage: one line per flag with type, default and
  /// help, required flags first.
  std::string Usage() const;

  const std::string& command() const { return command_; }

 private:
  const FlagSpec* Find(const std::string& name) const;
  const FlagSpec& Expect(const std::string& name, FlagType type) const;

  std::string command_;
  std::string summary_;
  std::vector<FlagSpec> specs_;
  std::map<std::string, std::string> values_;    // Parsed or defaulted.
  std::map<std::string, bool> explicitly_set_;
  bool help_requested_ = false;
};

}  // namespace sarn

#endif  // SARN_COMMON_FLAGS_H_
