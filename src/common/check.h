// Contract-checking macros.
//
// The project does not use exceptions (Google style). Logic errors — broken
// invariants, out-of-range arguments, shape mismatches — abort the process
// with a diagnostic. Recoverable conditions are expressed with
// std::optional or status-like return values instead.

#ifndef SARN_COMMON_CHECK_H_
#define SARN_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace sarn::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr,
                                     const std::string& message) {
  std::fprintf(stderr, "[SARN CHECK FAILED] %s:%d: %s %s\n", file, line, expr,
               message.c_str());
  std::fflush(stderr);
  std::abort();
}

// Accumulates the streamed context of a failed check and aborts in its
// destructor, so `SARN_CHECK(x) << "context"` works.
class CheckFailer {
 public:
  CheckFailer(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  [[noreturn]] ~CheckFailer() { CheckFailed(file_, line_, expr_, stream_.str()); }

  template <typename T>
  CheckFailer& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace sarn::internal

/// Aborts with a diagnostic unless `condition` holds. Supports streaming
/// extra context: SARN_CHECK(i < n) << "i=" << i;
#define SARN_CHECK(condition)         \
  if (static_cast<bool>(condition)) { \
  } else /* NOLINT */                 \
    ::sarn::internal::CheckFailer(__FILE__, __LINE__, #condition)

#define SARN_CHECK_EQ(a, b) SARN_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define SARN_CHECK_NE(a, b) SARN_CHECK((a) != (b)) << " (" << (a) << " vs " << (b) << ") "
#define SARN_CHECK_LT(a, b) SARN_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define SARN_CHECK_LE(a, b) SARN_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define SARN_CHECK_GT(a, b) SARN_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define SARN_CHECK_GE(a, b) SARN_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

/// Debug-only check; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define SARN_DCHECK(condition) \
  if (true) {                  \
  } else                       \
    ::sarn::internal::CheckFailer(__FILE__, __LINE__, #condition)
#else
#define SARN_DCHECK(condition) SARN_CHECK(condition)
#endif

#endif  // SARN_COMMON_CHECK_H_
