#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace sarn {
namespace {

// Telemetry counters (GetParallelPoolStats). Relaxed: these are statistics,
// not synchronisation; readers tolerate slightly stale values.
std::atomic<uint64_t> g_stat_regions{0};
std::atomic<uint64_t> g_stat_serial_regions{0};
std::atomic<uint64_t> g_stat_chunks{0};
std::atomic<uint64_t> g_stat_items{0};
std::atomic<uint64_t> g_stat_idle_ns{0};

size_t DefaultThreads() {
  size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return std::min<size_t>(hw, 8);
}

// Set while a thread (worker or caller) executes chunks of a parallel
// region; nested ParallelFor calls observe it and run inline.
thread_local bool t_in_parallel_region = false;

// One ParallelFor invocation. Threads claim [next, next+chunk) ranges until
// all n items are taken; `done` counts completed items so the caller knows
// when every claimed chunk has finished, not just been handed out. Held by
// shared_ptr: a worker that wakes late may still hold a reference after the
// caller has returned.
struct Job {
  const std::function<void(size_t, size_t)>* body = nullptr;
  size_t n = 0;
  size_t chunk = 1;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  std::mutex error_mu;
  std::exception_ptr error;
};

// Persistent pool of `threads - 1` workers parked on a condition variable.
// Publishing a job bumps `epoch_`; each worker processes at most one job per
// epoch and goes back to sleep. The caller always participates in its own
// job, so completion never depends on workers waking up (they may still be
// draining a previous job or be parked through a whole small region).
class ThreadPool {
 public:
  static ThreadPool& Instance() {
    // Magic static: initialised exactly once even under concurrent first
    // use (fixes the load/store race the old lazy g_threads init had).
    static ThreadPool pool(DefaultThreads());
    return pool;
  }

  explicit ThreadPool(size_t threads) { Start(threads == 0 ? 1 : threads); }

  ~ThreadPool() { Stop(); }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t threads() const { return threads_.load(std::memory_order_relaxed); }

  void Resize(size_t threads) {
    if (threads == 0) threads = 1;
    std::lock_guard<std::mutex> lock(resize_mu_);
    if (threads == threads_.load(std::memory_order_relaxed)) return;
    Stop();
    Start(threads);
  }

  void Run(size_t n, size_t chunk, const std::function<void(size_t, size_t)>& body) {
    auto job = std::make_shared<Job>();
    job->body = &body;
    job->n = n;
    job->chunk = chunk;
    {
      std::lock_guard<std::mutex> lock(mu_);
      job_ = job;
      ++epoch_;
    }
    work_cv_.notify_all();
    RunChunks(*job);
    if (job->done.load(std::memory_order_acquire) != n) {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [&] { return job->done.load(std::memory_order_acquire) == n; });
    }
    {
      // Drop the pool's reference; late-waking workers hold their own.
      std::lock_guard<std::mutex> lock(mu_);
      if (job_ == job) job_ = nullptr;
    }
    if (job->error) std::rethrow_exception(job->error);
  }

 private:
  void Start(size_t threads) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = false;
    }
    threads_.store(threads, std::memory_order_relaxed);
    workers_.reserve(threads - 1);
    for (size_t i = 0; i + 1 < threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  void Stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
    workers_.clear();
  }

  void WorkerLoop() {
    uint64_t seen_epoch = 0;
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      auto park_begin = std::chrono::steady_clock::now();
      work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
      g_stat_idle_ns.fetch_add(
          static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                    std::chrono::steady_clock::now() - park_begin)
                                    .count()),
          std::memory_order_relaxed);
      if (stop_) return;
      seen_epoch = epoch_;
      std::shared_ptr<Job> job = job_;
      lock.unlock();
      if (job) RunChunks(*job);
      lock.lock();
    }
  }

  void RunChunks(Job& job) {
    bool was_in_region = t_in_parallel_region;
    t_in_parallel_region = true;
    uint64_t chunks_run = 0;
    for (;;) {
      size_t begin = job.next.fetch_add(job.chunk, std::memory_order_relaxed);
      if (begin >= job.n) break;
      ++chunks_run;
      size_t end = std::min(job.n, begin + job.chunk);
      try {
        (*job.body)(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(job.error_mu);
        if (!job.error) job.error = std::current_exception();
      }
      size_t items = end - begin;
      if (job.done.fetch_add(items, std::memory_order_acq_rel) + items == job.n) {
        // Last chunk finished: the caller may be asleep on done_cv_. Take
        // the lock before notifying so the wakeup cannot slip between its
        // predicate check and the wait.
        std::lock_guard<std::mutex> lock(mu_);
        done_cv_.notify_all();
      }
    }
    if (chunks_run > 0) {
      g_stat_chunks.fetch_add(chunks_run, std::memory_order_relaxed);
    }
    t_in_parallel_region = was_in_region;
  }

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // Workers park here between jobs.
  std::condition_variable done_cv_;  // Callers park here awaiting completion.
  std::vector<std::thread> workers_;
  std::shared_ptr<Job> job_;  // Current job, null between regions.
  uint64_t epoch_ = 0;
  bool stop_ = false;
  std::atomic<size_t> threads_{1};
  std::mutex resize_mu_;  // Serialises concurrent Resize calls.
};

}  // namespace

size_t GetParallelThreads() { return ThreadPool::Instance().threads(); }

void SetParallelThreads(size_t threads) { ThreadPool::Instance().Resize(threads); }

bool InParallelRegion() { return t_in_parallel_region; }

void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& body,
                 size_t grain) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  ThreadPool& pool = ThreadPool::Instance();
  size_t threads = pool.threads();
  if (t_in_parallel_region || threads <= 1 || n < grain) {
    g_stat_serial_regions.fetch_add(1, std::memory_order_relaxed);
    body(0, n);
    return;
  }
  g_stat_regions.fetch_add(1, std::memory_order_relaxed);
  g_stat_items.fetch_add(n, std::memory_order_relaxed);
  // ~4 chunks per thread for dynamic load balancing, but never below the
  // caller's grain (each chunk should amortise its dispatch).
  size_t chunk = std::max(grain, (n + threads * 4 - 1) / (threads * 4));
  pool.Run(n, chunk, body);
}

ParallelPoolStats GetParallelPoolStats() {
  ParallelPoolStats stats;
  stats.regions = g_stat_regions.load(std::memory_order_relaxed);
  stats.serial_regions = g_stat_serial_regions.load(std::memory_order_relaxed);
  stats.chunks = g_stat_chunks.load(std::memory_order_relaxed);
  stats.items = g_stat_items.load(std::memory_order_relaxed);
  stats.worker_idle_seconds =
      static_cast<double>(g_stat_idle_ns.load(std::memory_order_relaxed)) * 1e-9;
  return stats;
}

void ResetParallelPoolStats() {
  g_stat_regions.store(0, std::memory_order_relaxed);
  g_stat_serial_regions.store(0, std::memory_order_relaxed);
  g_stat_chunks.store(0, std::memory_order_relaxed);
  g_stat_items.store(0, std::memory_order_relaxed);
  g_stat_idle_ns.store(0, std::memory_order_relaxed);
}

}  // namespace sarn
