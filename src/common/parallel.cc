#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace sarn {
namespace {

std::atomic<size_t> g_threads{0};  // 0 = not yet initialised.

size_t DefaultThreads() {
  size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return std::min<size_t>(hw, 8);
}

}  // namespace

size_t GetParallelThreads() {
  size_t t = g_threads.load();
  if (t == 0) {
    t = DefaultThreads();
    g_threads.store(t);
  }
  return t;
}

void SetParallelThreads(size_t threads) { g_threads.store(threads == 0 ? 1 : threads); }

void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& body,
                 size_t grain) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  size_t threads = GetParallelThreads();
  if (threads <= 1 || n < grain) {
    body(0, n);
    return;
  }
  threads = std::min(threads, (n + grain - 1) / grain);
  size_t chunk = (n + threads - 1) / threads;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    size_t begin = t * chunk;
    size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    workers.emplace_back([&body, begin, end] { body(begin, end); });
  }
  for (auto& worker : workers) worker.join();
}

}  // namespace sarn
