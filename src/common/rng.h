// Deterministic random-number utilities.
//
// Every stochastic component of the library (graph augmentation, negative
// sampling, weight initialisation, synthetic data generation) draws from an
// explicitly seeded Rng so that training runs, tests and benchmarks are
// reproducible.

#ifndef SARN_COMMON_RNG_H_
#define SARN_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

#include "common/binary_io.h"
#include "common/check.h"

namespace sarn {

/// A seeded pseudo-random generator with the handful of distributions the
/// library needs. Thin wrapper over std::mt19937_64.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    SARN_CHECK_LE(lo, hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Gaussian with the given mean and standard deviation.
  double Normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) {
    SARN_CHECK(p >= 0.0 && p <= 1.0) << "p=" << p;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Index drawn proportionally to the (non-negative) weights.
  size_t Discrete(const std::vector<double>& weights) {
    SARN_CHECK(!weights.empty());
    return std::discrete_distribution<size_t>(weights.begin(), weights.end())(engine_);
  }

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(values[i - 1], values[j]);
    }
  }

  /// k distinct indices sampled uniformly from [0, n). Requires k <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// k indices sampled *without replacement* with probability proportional to
  /// `weights` (the A-ES weighted reservoir scheme of Efraimidis & Spirakis).
  /// Entries with non-positive weight are never selected. Returns fewer than k
  /// indices if fewer than k entries have positive weight.
  std::vector<size_t> WeightedSampleWithoutReplacement(const std::vector<double>& weights,
                                                       size_t k);

  /// Derives an independent child generator; useful for giving each component
  /// its own stream from one master seed.
  Rng Fork() { return Rng(engine_()); }

  /// Serialises the engine state so the stream can be resumed exactly.
  /// Because every distribution object is constructed per call, the engine
  /// state is the *complete* state of an Rng: after LoadState the generator
  /// continues the saved stream bitwise.
  void SaveState(ByteWriter& out) const;
  /// Restores a state written by SaveState. Returns false (leaving this Rng
  /// untouched) on truncated or malformed input.
  bool LoadState(ByteReader& in);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace sarn

#endif  // SARN_COMMON_RNG_H_
