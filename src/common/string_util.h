// Small string helpers shared across modules.

#ifndef SARN_COMMON_STRING_UTIL_H_
#define SARN_COMMON_STRING_UTIL_H_

#include <optional>
#include <string>
#include <vector>

namespace sarn {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(const std::string& text, char delimiter);

/// Strips ASCII whitespace from both ends.
std::string Trim(const std::string& text);

/// Locale-independent numeric parsing; nullopt on malformed input.
std::optional<double> ParseDouble(const std::string& text);
std::optional<int64_t> ParseInt(const std::string& text);

/// Formats a double with the given number of decimals (printf "%.*f").
std::string FormatDouble(double value, int decimals);

/// True if `text` starts with `prefix`.
bool StartsWith(const std::string& text, const std::string& prefix);

}  // namespace sarn

#endif  // SARN_COMMON_STRING_UTIL_H_
