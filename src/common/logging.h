// Minimal leveled logging to stderr.

#ifndef SARN_COMMON_LOGGING_H_
#define SARN_COMMON_LOGGING_H_

#include <cstdio>
#include <ctime>
#include <sstream>
#include <string>

namespace sarn {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log threshold; messages below it are dropped. Defaults to kInfo.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  }

  ~LogMessage() {
    if (level_ >= GetLogLevel()) {
      std::fprintf(stderr, "%s\n", stream_.str().c_str());
    }
  }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  static const char* LevelName(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug:
        return "DEBUG";
      case LogLevel::kInfo:
        return "INFO";
      case LogLevel::kWarning:
        return "WARN";
      case LogLevel::kError:
        return "ERROR";
    }
    return "?";
  }

  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace sarn

#define SARN_LOG(level) \
  ::sarn::internal::LogMessage(::sarn::LogLevel::k##level, __FILE__, __LINE__)

#endif  // SARN_COMMON_LOGGING_H_
