// Minimal leveled logging to stderr.
//
// Prefix: "[LEVEL 2026-08-06T12:34:56.789Z t3 file.cc:42] message". The level
// check happens in the SARN_LOG macro *before* the message object is
// constructed, so a disabled `SARN_LOG(Debug) << Expensive()` costs one
// atomic load and never evaluates its operands.

#ifndef SARN_COMMON_LOGGING_H_
#define SARN_COMMON_LOGGING_H_

#include <cstdint>
#include <cstdio>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace sarn {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log threshold; messages below it are dropped. Defaults to kInfo.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Parses "debug" / "info" / "warning" (or "warn") / "error", case-insensitive.
std::optional<LogLevel> ParseLogLevel(std::string_view name);
const char* LogLevelName(LogLevel level);

/// Applies the SARN_LOG_LEVEL environment variable, if set and valid. Called
/// once at CLI startup; an explicit --log-level flag takes precedence (apply
/// it with SetLogLevel *after* this). Returns false if the variable was set
/// but unparsable (a warning is logged).
bool InitLogLevelFromEnv();

/// Small dense id of the calling thread (1, 2, ... in first-use order);
/// stable for the thread's lifetime. Used by log prefixes and trace events.
uint32_t ThreadId();

namespace internal {

/// "[LEVEL <iso8601-utc> t<tid> <basename>:<line>] " — split out so tests can
/// validate the format without capturing stderr.
std::string LogPrefix(LogLevel level, const char* file, int line);

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) {
    stream_ << LogPrefix(level, file, line);
  }

  ~LogMessage() { std::fprintf(stderr, "%s\n", stream_.str().c_str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Turns the LogMessage expression into void so both branches of the
// SARN_LOG conditional have the same type ('&' binds looser than '<<').
struct LogVoidify {
  void operator&(const LogMessage&) {}
};

}  // namespace internal
}  // namespace sarn

#define SARN_LOG(level)                                               \
  (::sarn::LogLevel::k##level < ::sarn::GetLogLevel())                \
      ? (void)0                                                       \
      : ::sarn::internal::LogVoidify() &                              \
            ::sarn::internal::LogMessage(::sarn::LogLevel::k##level,  \
                                         __FILE__, __LINE__)

#endif  // SARN_COMMON_LOGGING_H_
