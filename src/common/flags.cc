#include "common/flags.h"

#include <sstream>

#include "common/check.h"
#include "common/string_util.h"

namespace sarn {
namespace {

const char* TypeName(FlagType type) {
  switch (type) {
    case FlagType::kString: return "string";
    case FlagType::kInt: return "int";
    case FlagType::kDouble: return "float";
    case FlagType::kBool: return "bool";
  }
  return "?";
}

bool ValueValid(FlagType type, const std::string& value) {
  switch (type) {
    case FlagType::kString:
      return true;
    case FlagType::kInt:
      return ParseInt(value).has_value();
    case FlagType::kDouble:
      return ParseDouble(value).has_value();
    case FlagType::kBool:
      return value == "true" || value == "false" || value == "1" || value == "0";
  }
  return false;
}

}  // namespace

FlagSet::FlagSet(std::string command, std::string summary)
    : command_(std::move(command)), summary_(std::move(summary)) {}

FlagSet& FlagSet::Add(FlagSpec spec) {
  SARN_CHECK(Find(spec.name) == nullptr) << "duplicate flag --" << spec.name;
  SARN_CHECK(spec.required || ValueValid(spec.type, spec.default_value))
      << "flag --" << spec.name << " default '" << spec.default_value
      << "' is not a valid " << TypeName(spec.type);
  values_[spec.name] = spec.default_value;
  specs_.push_back(std::move(spec));
  return *this;
}

FlagSet& FlagSet::String(const std::string& name, const std::string& default_value,
                         const std::string& help, bool required) {
  return Add({name, FlagType::kString, default_value, help, required});
}

FlagSet& FlagSet::Int(const std::string& name, int64_t default_value,
                      const std::string& help) {
  return Add({name, FlagType::kInt, std::to_string(default_value), help, false});
}

FlagSet& FlagSet::Double(const std::string& name, double default_value,
                         const std::string& help) {
  std::ostringstream text;
  text << default_value;
  return Add({name, FlagType::kDouble, text.str(), help, false});
}

FlagSet& FlagSet::Bool(const std::string& name, bool default_value,
                       const std::string& help) {
  return Add({name, FlagType::kBool, default_value ? "true" : "false", help, false});
}

bool FlagSet::Parse(int argc, char** argv, int first, std::string* error) {
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      return true;
    }
    if (!StartsWith(arg, "--")) {
      if (error != nullptr) *error = "expected --flag, got '" + arg + "'";
      return false;
    }
    std::string name = arg.substr(2);
    const FlagSpec* spec = Find(name);
    if (spec == nullptr) {
      if (error != nullptr) {
        *error = "unknown flag --" + name + " for '" + command_ +
                 "' (try: sarn " + command_ + " --help)";
      }
      return false;
    }
    if (i + 1 >= argc) {
      if (error != nullptr) *error = "flag --" + name + " needs a value";
      return false;
    }
    std::string value = argv[++i];
    if (!ValueValid(spec->type, value)) {
      if (error != nullptr) {
        *error = "flag --" + name + " expects a " + TypeName(spec->type) + ", got '" +
                 value + "'";
      }
      return false;
    }
    values_[name] = value;
    explicitly_set_[name] = true;
  }
  for (const FlagSpec& spec : specs_) {
    if (spec.required && !provided(spec.name)) {
      if (error != nullptr) *error = command_ + ": --" + spec.name + " is required";
      return false;
    }
  }
  return true;
}

bool FlagSet::provided(const std::string& name) const {
  auto it = explicitly_set_.find(name);
  return it != explicitly_set_.end() && it->second;
}

const FlagSpec* FlagSet::Find(const std::string& name) const {
  for (const FlagSpec& spec : specs_) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

const FlagSpec& FlagSet::Expect(const std::string& name, FlagType type) const {
  const FlagSpec* spec = Find(name);
  SARN_CHECK(spec != nullptr) << "undeclared flag --" << name;
  SARN_CHECK(spec->type == type)
      << "flag --" << name << " is a " << TypeName(spec->type) << ", read as "
      << TypeName(type);
  return *spec;
}

std::string FlagSet::GetString(const std::string& name) const {
  Expect(name, FlagType::kString);
  return values_.at(name);
}

int64_t FlagSet::GetInt(const std::string& name) const {
  Expect(name, FlagType::kInt);
  const std::string& value = values_.at(name);
  auto parsed = ParseInt(value);
  SARN_CHECK(parsed.has_value()) << "--" << name << " '" << value << "'";
  return *parsed;
}

double FlagSet::GetDouble(const std::string& name) const {
  Expect(name, FlagType::kDouble);
  const std::string& value = values_.at(name);
  auto parsed = ParseDouble(value);
  SARN_CHECK(parsed.has_value()) << "--" << name << " '" << value << "'";
  return *parsed;
}

bool FlagSet::GetBool(const std::string& name) const {
  Expect(name, FlagType::kBool);
  const std::string& value = values_.at(name);
  return value == "true" || value == "1";
}

std::string FlagSet::Usage() const {
  std::ostringstream out;
  out << "usage: sarn " << command_ << " [--flag value ...]\n";
  if (!summary_.empty()) out << "  " << summary_ << "\n";
  // Required flags first, in declaration order.
  for (int pass = 0; pass < 2; ++pass) {
    for (const FlagSpec& spec : specs_) {
      if (spec.required != (pass == 0)) continue;
      out << "  --" << spec.name << " <" << TypeName(spec.type) << ">";
      if (spec.required) {
        out << "  (required)";
      } else {
        out << "  (default: " << (spec.default_value.empty() ? "\"\"" : spec.default_value)
            << ")";
      }
      out << "\n      " << spec.help << "\n";
    }
  }
  return out.str();
}

}  // namespace sarn
