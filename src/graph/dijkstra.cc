#include "graph/dijkstra.h"

#include <algorithm>
#include <queue>

#include "common/check.h"

namespace sarn::graph {

ShortestPathTree Dijkstra(const CsrGraph& graph, VertexId source,
                          std::optional<VertexId> target, double max_distance) {
  int64_t n = graph.num_vertices();
  SARN_CHECK(source >= 0 && source < n) << "source " << source;
  ShortestPathTree tree;
  tree.distance.assign(static_cast<size_t>(n), kInfiniteDistance);
  tree.parent.assign(static_cast<size_t>(n), -1);
  tree.distance[static_cast<size_t>(source)] = 0.0;

  using Entry = std::pair<double, VertexId>;  // (distance, vertex)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    auto [dist, v] = heap.top();
    heap.pop();
    if (dist > tree.distance[static_cast<size_t>(v)]) continue;  // Stale entry.
    if (target.has_value() && v == *target) break;
    std::span<const VertexId> neighbors = graph.OutNeighbors(v);
    std::span<const double> weights = graph.OutWeights(v);
    for (size_t k = 0; k < neighbors.size(); ++k) {
      SARN_DCHECK(weights[k] >= 0.0);
      double candidate = dist + weights[k];
      if (candidate > max_distance) continue;
      VertexId u = neighbors[k];
      if (candidate < tree.distance[static_cast<size_t>(u)]) {
        tree.distance[static_cast<size_t>(u)] = candidate;
        tree.parent[static_cast<size_t>(u)] = v;
        heap.emplace(candidate, u);
      }
    }
  }
  return tree;
}

std::optional<double> ShortestPathDistance(const CsrGraph& graph, VertexId source,
                                           VertexId target) {
  ShortestPathTree tree = Dijkstra(graph, source, target);
  double d = tree.distance[static_cast<size_t>(target)];
  if (d == kInfiniteDistance) return std::nullopt;
  return d;
}

std::vector<VertexId> ReconstructPath(const ShortestPathTree& tree, VertexId source,
                                      VertexId target) {
  if (tree.distance[static_cast<size_t>(target)] == kInfiniteDistance) return {};
  std::vector<VertexId> path;
  VertexId v = target;
  while (v != -1) {
    path.push_back(v);
    if (v == source) break;
    v = tree.parent[static_cast<size_t>(v)];
  }
  if (path.back() != source) return {};  // Tree rooted elsewhere.
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace sarn::graph
