// Compressed-sparse-row directed graph with edge weights.
//
// Used as the algorithmic view of a road network (vertices = road segments,
// edges = topological connectivity) for Dijkstra ground truth, random-walk
// baselines and reachability checks.

#ifndef SARN_GRAPH_CSR_GRAPH_H_
#define SARN_GRAPH_CSR_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

namespace sarn::graph {

using VertexId = int64_t;

struct WeightedEdge {
  VertexId from = 0;
  VertexId to = 0;
  double weight = 1.0;
};

/// Immutable CSR adjacency structure.
class CsrGraph {
 public:
  /// Builds from an edge list; edges may arrive in any order. Parallel edges
  /// are kept as-is (Dijkstra handles them naturally).
  CsrGraph(int64_t num_vertices, const std::vector<WeightedEdge>& edges);

  int64_t num_vertices() const { return static_cast<int64_t>(offsets_.size()) - 1; }
  int64_t num_edges() const { return static_cast<int64_t>(targets_.size()); }

  /// Out-neighbors of v (targets) and matching weights, as parallel spans.
  std::span<const VertexId> OutNeighbors(VertexId v) const;
  std::span<const double> OutWeights(VertexId v) const;

  int64_t OutDegree(VertexId v) const;

  /// Vertices reachable from `source` (BFS, ignoring weights).
  std::vector<bool> ReachableFrom(VertexId source) const;

  /// Number of weakly connected components (edges treated as undirected).
  int64_t CountWeakComponents() const;

 private:
  std::vector<int64_t> offsets_;  // Size n+1.
  std::vector<VertexId> targets_;
  std::vector<double> weights_;
};

}  // namespace sarn::graph

#endif  // SARN_GRAPH_CSR_GRAPH_H_
