// Dijkstra single-source shortest paths, the ground-truth oracle of the
// shortest-path-distance downstream task (paper §5.2.3) and the router of
// the synthetic trajectory generator.

#ifndef SARN_GRAPH_DIJKSTRA_H_
#define SARN_GRAPH_DIJKSTRA_H_

#include <limits>
#include <optional>
#include <vector>

#include "graph/csr_graph.h"

namespace sarn::graph {

inline constexpr double kInfiniteDistance = std::numeric_limits<double>::infinity();

struct ShortestPathTree {
  /// distance[v] = shortest distance from the source, kInfiniteDistance when
  /// unreachable (or pruned by a bound).
  std::vector<double> distance;
  /// parent[v] = predecessor on a shortest path, -1 for source/unreached.
  std::vector<VertexId> parent;
};

/// Full single-source run. `max_distance` prunes the search: vertices farther
/// than the bound keep infinite distance. `target` (if set) stops the search
/// once the target is settled.
ShortestPathTree Dijkstra(const CsrGraph& graph, VertexId source,
                          std::optional<VertexId> target = std::nullopt,
                          double max_distance = kInfiniteDistance);

/// Point query; nullopt when unreachable.
std::optional<double> ShortestPathDistance(const CsrGraph& graph, VertexId source,
                                           VertexId target);

/// Reconstructs source -> target as a vertex sequence (inclusive); empty when
/// the tree does not reach target.
std::vector<VertexId> ReconstructPath(const ShortestPathTree& tree, VertexId source,
                                      VertexId target);

}  // namespace sarn::graph

#endif  // SARN_GRAPH_DIJKSTRA_H_
