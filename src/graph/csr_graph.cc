#include "graph/csr_graph.h"

#include <algorithm>
#include <queue>

#include "common/check.h"

namespace sarn::graph {

CsrGraph::CsrGraph(int64_t num_vertices, const std::vector<WeightedEdge>& edges) {
  SARN_CHECK_GE(num_vertices, 0);
  offsets_.assign(static_cast<size_t>(num_vertices) + 1, 0);
  for (const WeightedEdge& e : edges) {
    SARN_CHECK(e.from >= 0 && e.from < num_vertices) << "from " << e.from;
    SARN_CHECK(e.to >= 0 && e.to < num_vertices) << "to " << e.to;
    ++offsets_[static_cast<size_t>(e.from) + 1];
  }
  for (size_t v = 1; v < offsets_.size(); ++v) offsets_[v] += offsets_[v - 1];
  targets_.resize(edges.size());
  weights_.resize(edges.size());
  std::vector<int64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const WeightedEdge& e : edges) {
    int64_t slot = cursor[static_cast<size_t>(e.from)]++;
    targets_[static_cast<size_t>(slot)] = e.to;
    weights_[static_cast<size_t>(slot)] = e.weight;
  }
}

std::span<const VertexId> CsrGraph::OutNeighbors(VertexId v) const {
  SARN_DCHECK(v >= 0 && v < num_vertices());
  size_t begin = static_cast<size_t>(offsets_[static_cast<size_t>(v)]);
  size_t end = static_cast<size_t>(offsets_[static_cast<size_t>(v) + 1]);
  return {targets_.data() + begin, end - begin};
}

std::span<const double> CsrGraph::OutWeights(VertexId v) const {
  SARN_DCHECK(v >= 0 && v < num_vertices());
  size_t begin = static_cast<size_t>(offsets_[static_cast<size_t>(v)]);
  size_t end = static_cast<size_t>(offsets_[static_cast<size_t>(v) + 1]);
  return {weights_.data() + begin, end - begin};
}

int64_t CsrGraph::OutDegree(VertexId v) const {
  return offsets_[static_cast<size_t>(v) + 1] - offsets_[static_cast<size_t>(v)];
}

std::vector<bool> CsrGraph::ReachableFrom(VertexId source) const {
  std::vector<bool> visited(static_cast<size_t>(num_vertices()), false);
  std::queue<VertexId> frontier;
  visited[static_cast<size_t>(source)] = true;
  frontier.push(source);
  while (!frontier.empty()) {
    VertexId v = frontier.front();
    frontier.pop();
    for (VertexId u : OutNeighbors(v)) {
      if (!visited[static_cast<size_t>(u)]) {
        visited[static_cast<size_t>(u)] = true;
        frontier.push(u);
      }
    }
  }
  return visited;
}

int64_t CsrGraph::CountWeakComponents() const {
  int64_t n = num_vertices();
  // Build an undirected adjacency once (union of out-edges both ways).
  std::vector<std::vector<VertexId>> undirected(static_cast<size_t>(n));
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId u : OutNeighbors(v)) {
      undirected[static_cast<size_t>(v)].push_back(u);
      undirected[static_cast<size_t>(u)].push_back(v);
    }
  }
  std::vector<bool> visited(static_cast<size_t>(n), false);
  int64_t components = 0;
  std::vector<VertexId> stack;
  for (VertexId start = 0; start < n; ++start) {
    if (visited[static_cast<size_t>(start)]) continue;
    ++components;
    stack.push_back(start);
    visited[static_cast<size_t>(start)] = true;
    while (!stack.empty()) {
      VertexId v = stack.back();
      stack.pop_back();
      for (VertexId u : undirected[static_cast<size_t>(v)]) {
        if (!visited[static_cast<size_t>(u)]) {
          visited[static_cast<size_t>(u)] = true;
          stack.push_back(u);
        }
      }
    }
  }
  return components;
}

}  // namespace sarn::graph
