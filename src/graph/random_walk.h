// Random walks over a CsrGraph: uniform first-order walks and node2vec's
// biased second-order walks (Grover & Leskovec, KDD'16), the corpus
// generator of the node2vec baseline.

#ifndef SARN_GRAPH_RANDOM_WALK_H_
#define SARN_GRAPH_RANDOM_WALK_H_

#include <vector>

#include "common/rng.h"
#include "graph/csr_graph.h"

namespace sarn::graph {

struct RandomWalkConfig {
  int walk_length = 80;
  int walks_per_vertex = 10;
  /// node2vec return parameter p: larger p discourages revisiting the
  /// previous vertex.
  double p = 1.0;
  /// node2vec in-out parameter q: q > 1 keeps walks local (BFS-like),
  /// q < 1 pushes them outward (DFS-like).
  double q = 1.0;
};

/// One biased walk starting at `start`. The walk stops early at sinks.
std::vector<VertexId> BiasedWalk(const CsrGraph& graph, VertexId start,
                                 const RandomWalkConfig& config, Rng& rng);

/// The full node2vec corpus: `walks_per_vertex` walks from every vertex, in
/// a shuffled vertex order per round.
std::vector<std::vector<VertexId>> GenerateWalkCorpus(const CsrGraph& graph,
                                                      const RandomWalkConfig& config,
                                                      Rng& rng);

}  // namespace sarn::graph

#endif  // SARN_GRAPH_RANDOM_WALK_H_
