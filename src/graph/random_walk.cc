#include "graph/random_walk.h"

#include <algorithm>

#include "common/check.h"

namespace sarn::graph {
namespace {

// True if `graph` has an edge prev -> candidate (linear scan; road-network
// degrees are tiny, typically <= 4).
bool HasEdge(const CsrGraph& graph, VertexId prev, VertexId candidate) {
  for (VertexId u : graph.OutNeighbors(prev)) {
    if (u == candidate) return true;
  }
  return false;
}

}  // namespace

std::vector<VertexId> BiasedWalk(const CsrGraph& graph, VertexId start,
                                 const RandomWalkConfig& config, Rng& rng) {
  SARN_CHECK_GT(config.walk_length, 0);
  SARN_CHECK_GT(config.p, 0.0);
  SARN_CHECK_GT(config.q, 0.0);
  std::vector<VertexId> walk;
  walk.reserve(static_cast<size_t>(config.walk_length));
  walk.push_back(start);
  std::vector<double> probabilities;
  while (static_cast<int>(walk.size()) < config.walk_length) {
    VertexId current = walk.back();
    std::span<const VertexId> neighbors = graph.OutNeighbors(current);
    std::span<const double> weights = graph.OutWeights(current);
    if (neighbors.empty()) break;
    if (walk.size() == 1) {
      // First step: plain weighted choice.
      probabilities.assign(weights.begin(), weights.end());
    } else {
      VertexId prev = walk[walk.size() - 2];
      probabilities.resize(neighbors.size());
      for (size_t k = 0; k < neighbors.size(); ++k) {
        double bias;
        if (neighbors[k] == prev) {
          bias = 1.0 / config.p;  // Return step.
        } else if (HasEdge(graph, prev, neighbors[k])) {
          bias = 1.0;  // Common neighbor: distance 1 from prev.
        } else {
          bias = 1.0 / config.q;  // Outward step: distance 2 from prev.
        }
        probabilities[k] = weights[k] * bias;
      }
    }
    walk.push_back(neighbors[rng.Discrete(probabilities)]);
  }
  return walk;
}

std::vector<std::vector<VertexId>> GenerateWalkCorpus(const CsrGraph& graph,
                                                      const RandomWalkConfig& config,
                                                      Rng& rng) {
  std::vector<VertexId> order(static_cast<size_t>(graph.num_vertices()));
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<VertexId>(i);
  std::vector<std::vector<VertexId>> corpus;
  corpus.reserve(order.size() * static_cast<size_t>(config.walks_per_vertex));
  for (int round = 0; round < config.walks_per_vertex; ++round) {
    rng.Shuffle(order);
    for (VertexId start : order) {
      std::vector<VertexId> walk = BiasedWalk(graph, start, config, rng);
      if (walk.size() >= 2) corpus.push_back(std::move(walk));
    }
  }
  return corpus;
}

}  // namespace sarn::graph
