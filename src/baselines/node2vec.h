// node2vec baseline (Grover & Leskovec, KDD'16): biased random walks over
// the road-segment graph + skip-gram with negative sampling (word2vec).
// Topology-only — no spatial structure — which is exactly the weakness the
// paper's experiments expose.
//
// The skip-gram trainer is a classic hand-rolled SGNS loop over raw float
// tables (no autograd): it is the standard formulation and an order of
// magnitude faster than taping millions of tiny ops.

#ifndef SARN_BASELINES_NODE2VEC_H_
#define SARN_BASELINES_NODE2VEC_H_

#include <cstdint>

#include "graph/random_walk.h"
#include "roadnet/road_network.h"
#include "tensor/tensor.h"

namespace sarn::baselines {

struct Node2VecConfig {
  uint64_t seed = 17;
  int64_t dim = 64;
  graph::RandomWalkConfig walk;
  int window = 5;
  int negatives_per_positive = 5;
  int epochs = 2;
  float learning_rate = 0.025f;
};

/// Trains node2vec embeddings for all road segments. Returns [n, dim].
tensor::Tensor TrainNode2Vec(const roadnet::RoadNetwork& network,
                             const Node2VecConfig& config);

/// DeepWalk (Perozzi et al., KDD'14), the other random-walk baseline the
/// paper's related work cites: node2vec with uniform (p = q = 1),
/// weight-blind first-order walks.
tensor::Tensor TrainDeepWalk(const roadnet::RoadNetwork& network,
                             const Node2VecConfig& config);

}  // namespace sarn::baselines

#endif  // SARN_BASELINES_NODE2VEC_H_
