#include "baselines/node2vec.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace sarn::baselines {
namespace {

float FastSigmoid(float x) {
  if (x > 8.0f) return 1.0f;
  if (x < -8.0f) return 0.0f;
  return 1.0f / (1.0f + std::exp(-x));
}

}  // namespace

tensor::Tensor TrainNode2Vec(const roadnet::RoadNetwork& network,
                             const Node2VecConfig& config) {
  int64_t n = network.num_segments();
  int64_t d = config.dim;
  SARN_CHECK_GT(n, 1);
  Rng rng(config.seed);

  graph::CsrGraph g = network.ToTypeWeightedGraph();
  std::vector<std::vector<graph::VertexId>> corpus =
      GenerateWalkCorpus(g, config.walk, rng);

  // Input (embedding) and output (context) tables.
  std::vector<float> in(static_cast<size_t>(n * d));
  std::vector<float> out(static_cast<size_t>(n * d), 0.0f);
  float init = 0.5f / static_cast<float>(d);
  for (float& v : in) v = static_cast<float>(rng.Uniform(-init, init));

  // Unigram^0.75 negative-sampling distribution over corpus frequencies.
  std::vector<double> frequency(static_cast<size_t>(n), 1.0);
  for (const auto& walk : corpus) {
    for (graph::VertexId v : walk) frequency[static_cast<size_t>(v)] += 1.0;
  }
  std::vector<double> noise(static_cast<size_t>(n));
  for (int64_t v = 0; v < n; ++v) {
    noise[static_cast<size_t>(v)] = std::pow(frequency[static_cast<size_t>(v)], 0.75);
  }
  // Built once and reused: constructing a discrete distribution per draw
  // would cost O(n) per negative sample.
  std::discrete_distribution<size_t> noise_distribution(noise.begin(), noise.end());

  std::vector<float> gradient(static_cast<size_t>(d));
  float lr = config.learning_rate;
  int64_t total_steps = static_cast<int64_t>(corpus.size()) * config.epochs;
  int64_t step = 0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    for (const auto& walk : corpus) {
      // Linear learning-rate decay (word2vec style).
      float progress = static_cast<float>(step++) / std::max<int64_t>(1, total_steps);
      float current_lr = std::max(lr * (1.0f - progress), lr * 0.01f);
      for (size_t center = 0; center < walk.size(); ++center) {
        int64_t center_id = walk[center];
        float* center_vec = in.data() + center_id * d;
        size_t lo = center >= static_cast<size_t>(config.window)
                        ? center - static_cast<size_t>(config.window)
                        : 0;
        size_t hi = std::min(walk.size() - 1, center + static_cast<size_t>(config.window));
        for (size_t ctx = lo; ctx <= hi; ++ctx) {
          if (ctx == center) continue;
          std::fill(gradient.begin(), gradient.end(), 0.0f);
          // One positive + k negative updates.
          for (int k = 0; k <= config.negatives_per_positive; ++k) {
            int64_t target;
            float label;
            if (k == 0) {
              target = walk[ctx];
              label = 1.0f;
            } else {
              target = static_cast<int64_t>(noise_distribution(rng.engine()));
              if (target == walk[ctx]) continue;
              label = 0.0f;
            }
            float* target_vec = out.data() + target * d;
            float dot = 0.0f;
            for (int64_t j = 0; j < d; ++j) dot += center_vec[j] * target_vec[j];
            float g_scale = (label - FastSigmoid(dot)) * current_lr;
            for (int64_t j = 0; j < d; ++j) {
              gradient[static_cast<size_t>(j)] += g_scale * target_vec[j];
              target_vec[j] += g_scale * center_vec[j];
            }
          }
          for (int64_t j = 0; j < d; ++j) center_vec[j] += gradient[static_cast<size_t>(j)];
        }
      }
    }
  }
  return tensor::Tensor::FromVector({n, d}, std::move(in));
}

tensor::Tensor TrainDeepWalk(const roadnet::RoadNetwork& network,
                             const Node2VecConfig& config) {
  Node2VecConfig uniform = config;
  uniform.walk.p = 1.0;
  uniform.walk.q = 1.0;
  return TrainNode2Vec(network, uniform);
}

}  // namespace sarn::baselines
