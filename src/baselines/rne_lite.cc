#include "baselines/rne_lite.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/timer.h"
#include "geo/grid.h"
#include "graph/dijkstra.h"
#include "nn/losses.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"

namespace sarn::baselines {
namespace {

using tensor::Tensor;

struct DistancePair {
  int64_t a;
  int64_t b;
  float km;
};

}  // namespace

RneLiteResult TrainRneLite(const roadnet::RoadNetwork& network,
                           const RneLiteConfig& config) {
  Timer timer;
  Rng rng(config.seed);
  int64_t n = network.num_segments();
  int64_t d = config.dim;

  // Zone assignment via a coarse grid.
  geo::Grid grid(network.bounding_box(), config.zone_cell_meters);
  std::vector<int64_t> zone_of;
  zone_of.reserve(static_cast<size_t>(n));
  for (const roadnet::RoadSegment& s : network.segments()) {
    zone_of.push_back(grid.CellOf(s.Midpoint()));
  }

  Tensor zone_table = Tensor::Randn({grid.num_cells(), d}, rng, 0.1f).RequiresGrad();
  Tensor residual = Tensor::Randn({n, d}, rng, 0.05f).RequiresGrad();
  // Learned affine from L1 embedding distance to kilometers.
  Tensor scale = Tensor::FromVector({1}, {1.0f}).RequiresGrad();
  Tensor offset = Tensor::FromVector({1}, {0.0f}).RequiresGrad();
  tensor::Adam optimizer({zone_table, residual, scale, offset}, config.learning_rate);

  graph::CsrGraph routing = network.ToLengthWeightedGraph();

  RneLiteResult result;
  std::vector<DistancePair> pairs;
  for (int epoch = 0; epoch < config.max_epochs; ++epoch) {
    pairs.clear();
    for (int s = 0; s < config.sources_per_epoch; ++s) {
      int64_t source = rng.UniformInt(0, n - 1);
      graph::ShortestPathTree tree = Dijkstra(routing, source);
      std::vector<int64_t> reachable;
      for (int64_t v = 0; v < n; ++v) {
        if (v != source &&
            tree.distance[static_cast<size_t>(v)] != graph::kInfiniteDistance) {
          reachable.push_back(v);
        }
      }
      if (reachable.empty()) continue;
      for (int t = 0; t < config.targets_per_source; ++t) {
        int64_t target = reachable[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(reachable.size()) - 1))];
        pairs.push_back({source, target,
                         static_cast<float>(tree.distance[static_cast<size_t>(target)] /
                                            1000.0)});
      }
    }
    rng.Shuffle(pairs);

    double epoch_loss = 0.0;
    int batches = 0;
    for (size_t begin = 0; begin < pairs.size();
         begin += static_cast<size_t>(config.batch_size)) {
      size_t end = std::min(pairs.size(), begin + static_cast<size_t>(config.batch_size));
      std::vector<int64_t> a_ids, b_ids, a_zones, b_zones;
      std::vector<float> targets;
      for (size_t i = begin; i < end; ++i) {
        a_ids.push_back(pairs[i].a);
        b_ids.push_back(pairs[i].b);
        a_zones.push_back(zone_of[static_cast<size_t>(pairs[i].a)]);
        b_zones.push_back(zone_of[static_cast<size_t>(pairs[i].b)]);
        targets.push_back(pairs[i].km);
      }
      int64_t m = static_cast<int64_t>(a_ids.size());
      Tensor ea = tensor::Add(tensor::Rows(zone_table, a_zones),
                              tensor::Rows(residual, a_ids));
      Tensor eb = tensor::Add(tensor::Rows(zone_table, b_zones),
                              tensor::Rows(residual, b_ids));
      Tensor l1 = tensor::SumAxis(tensor::Abs(tensor::Sub(ea, eb)), 1);  // [m]
      Tensor prediction = tensor::Add(tensor::Mul(l1, scale), offset);
      Tensor loss = nn::MseLoss(prediction, Tensor::FromVector({m}, targets));
      epoch_loss += loss.item();
      ++batches;
      optimizer.ZeroGrad();
      loss.Backward();
      optimizer.Step();
    }
    result.final_loss = epoch_loss / std::max(1, batches);
    result.epochs_run = epoch + 1;
  }

  {
    tensor::NoGradGuard guard;
    std::vector<int64_t> all_ids(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) all_ids[static_cast<size_t>(i)] = i;
    result.embeddings =
        tensor::Add(tensor::Rows(zone_table, zone_of), tensor::Rows(residual, all_ids))
            .Detach();
  }
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace sarn::baselines
