// NEUTRAJ baseline (Yao et al., ICDE'19), reduced-scale reimplementation
// ("NeutrajLite", DESIGN.md §3): a dedicated supervised trajectory-
// similarity model. It learns its own segment embedding table plus a GRU
// trajectory encoder, trained with distance-weighted pair regression
// against ground-truth (Fréchet) distances — the seed-guided metric-
// learning idea, with near pairs weighted more. It does NOT produce
// reusable road-segment embeddings (paper §5.2), so it only participates
// in downstream task 2.

#ifndef SARN_BASELINES_NEUTRAJ_LITE_H_
#define SARN_BASELINES_NEUTRAJ_LITE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "nn/gru.h"
#include "tensor/tensor.h"

namespace sarn::baselines {

struct NeutrajLiteConfig {
  uint64_t seed = 43;
  int64_t segment_dim = 32;
  int64_t hidden_dim = 64;
  int gru_layers = 2;
  int pairs_per_epoch = 1024;
  int max_epochs = 8;
  int batch_pairs = 32;
  float learning_rate = 0.01f;
  /// Weighting bandwidth (meters): pair weight = exp(-distance / bandwidth),
  /// emphasising near pairs as NEUTRAJ's seeding does.
  double weight_bandwidth_meters = 2000.0;
};

class NeutrajLite {
 public:
  /// `num_segments` sizes the learnable segment table.
  NeutrajLite(int64_t num_segments, NeutrajLiteConfig config);

  /// Trains on trajectories (segment-id sequences) with a ground-truth
  /// distance oracle (meters). Returns the final training loss.
  double Train(const std::vector<std::vector<int64_t>>& trajectories,
               const std::function<double(size_t, size_t)>& distance);

  /// Embeds trajectories (detached) for ranking: [k, hidden_dim].
  tensor::Tensor Embed(const std::vector<std::vector<int64_t>>& trajectories) const;

 private:
  NeutrajLiteConfig config_;
  Rng rng_;
  tensor::Tensor segment_table_;
  std::unique_ptr<nn::Gru> gru_;
  tensor::Tensor scale_;
  tensor::Tensor offset_;
};

}  // namespace sarn::baselines

#endif  // SARN_BASELINES_NEUTRAJ_LITE_H_
