#include "baselines/srn2vec.h"

#include <algorithm>

#include "common/rng.h"
#include "common/timer.h"
#include "geo/spatial_index.h"
#include "nn/linear.h"
#include "nn/losses.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"

namespace sarn::baselines {
namespace {

using tensor::Tensor;

struct PairSample {
  int64_t a;
  int64_t b;
  float close;
  float same_type;
};

}  // namespace

Srn2VecResult TrainSrn2Vec(const roadnet::RoadNetwork& network,
                           const Srn2VecConfig& config) {
  Timer timer;
  Rng rng(config.seed);
  int64_t n = network.num_segments();
  int64_t d = config.dim;

  // Trainable segment embedding table (the FFN's first-layer weights in the
  // original formulation). The "close" prediction is metric-based — its
  // logit decreases with the L1 distance between the two embeddings — which
  // forces spatial proximity into the table's geometry; the "same type"
  // prediction uses an MLP head on the concatenated pair.
  Tensor table = Tensor::Randn({n, d}, rng, 0.1f).RequiresGrad();
  Tensor close_scale = Tensor::FromVector({1}, {1.0f}).RequiresGrad();
  Tensor close_offset = Tensor::FromVector({1}, {1.0f}).RequiresGrad();
  nn::Ffn type_head({2 * d, d, 1}, nn::Activation::kRelu, rng);
  std::vector<Tensor> parameters = {table, close_scale, close_offset};
  for (const Tensor& p : type_head.Parameters()) parameters.push_back(p);
  tensor::Adam optimizer(parameters, config.learning_rate);

  geo::SpatialIndex index(network.Midpoints(), config.close_radius_meters);

  auto same_type = [&](int64_t a, int64_t b) {
    return network.segment(a).type == network.segment(b).type ? 1.0f : 0.0f;
  };

  Srn2VecResult result;
  std::vector<PairSample> pairs;
  for (int epoch = 0; epoch < config.max_epochs; ++epoch) {
    // Fresh pair corpus per epoch: positives from radius queries, negatives
    // from random (almost surely far) pairs.
    pairs.clear();
    while (static_cast<int>(pairs.size()) < config.pairs_per_epoch) {
      int64_t a = rng.UniformInt(0, n - 1);
      std::vector<uint32_t> nearby = index.WithinRadius(
          network.segment(a).Midpoint(), config.close_radius_meters);
      if (nearby.size() > 1) {
        int64_t b = nearby[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(nearby.size()) - 1))];
        if (b != a) pairs.push_back({a, b, 1.0f, same_type(a, b)});
      }
      for (int k = 0; k < config.negatives_per_positive; ++k) {
        int64_t u = rng.UniformInt(0, n - 1);
        int64_t v = rng.UniformInt(0, n - 1);
        if (u == v) continue;
        double dist = geo::HaversineMeters(network.segment(u).Midpoint(),
                                           network.segment(v).Midpoint());
        pairs.push_back({u, v, dist <= config.close_radius_meters ? 1.0f : 0.0f,
                         same_type(u, v)});
      }
    }
    rng.Shuffle(pairs);

    double epoch_loss = 0.0;
    int batches = 0;
    for (size_t begin = 0; begin < pairs.size();
         begin += static_cast<size_t>(config.batch_size)) {
      size_t end = std::min(pairs.size(), begin + static_cast<size_t>(config.batch_size));
      std::vector<int64_t> left, right;
      std::vector<float> close_labels, type_labels;
      for (size_t i = begin; i < end; ++i) {
        left.push_back(pairs[i].a);
        right.push_back(pairs[i].b);
        close_labels.push_back(pairs[i].close);
        type_labels.push_back(pairs[i].same_type);
      }
      Tensor ea = tensor::Rows(table, left);
      Tensor eb = tensor::Rows(table, right);
      int64_t m = ea.shape()[0];
      Tensor l1 = tensor::SumAxis(tensor::Abs(tensor::Sub(ea, eb)), 1);  // [m]
      Tensor close_logit =
          tensor::Sub(close_offset, tensor::Mul(l1, close_scale));  // [m]
      Tensor type_logit = tensor::Reshape(
          type_head.Forward(tensor::Concat({ea, eb}, 1)), {m});
      Tensor loss = tensor::Add(nn::BinaryCrossEntropyWithLogits(close_logit, close_labels),
                                nn::BinaryCrossEntropyWithLogits(type_logit, type_labels));
      epoch_loss += loss.item();
      ++batches;
      optimizer.ZeroGrad();
      loss.Backward();
      optimizer.Step();
    }
    result.final_loss = epoch_loss / std::max(1, batches);
    result.epochs_run = epoch + 1;
  }

  result.embeddings = table.Detach();
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace sarn::baselines
