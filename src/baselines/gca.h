// GCA baseline (Zhu et al., WWW'21) adapted to road networks (§5.1):
// GraphCL plus (i) ADAPTIVE augmentation — important edges (by the Eq. 1
// type weights) are retained with higher probability — and (ii) negatives
// drawn from ALL vertices of the other view, which is what gives GCA its
// O(n^2 d) loss cost and its out-of-memory failure on large road networks
// (paper Table 8).

#ifndef SARN_BASELINES_GCA_H_
#define SARN_BASELINES_GCA_H_

#include <cstdint>
#include <optional>

#include "roadnet/road_network.h"
#include "tensor/tensor.h"

namespace sarn::baselines {

struct GcaConfig {
  uint64_t seed = 29;
  int64_t feature_dim_per_feature = 12;
  int64_t hidden_dim = 64;
  int64_t embedding_dim = 64;
  int gat_layers = 2;
  int gat_heads = 4;
  int64_t projection_dim = 32;
  double edge_drop_rate = 0.3;  // Mean drop rate; per-edge adaptive.
  double epsilon = 0.05;
  double tau = 0.1;
  int max_epochs = 30;
  int batch_size = 128;  // Anchors per step; negatives are still all n.
  float learning_rate = 0.005f;
  /// Memory guard reproducing GCA's documented failure mode: training
  /// aborts (status OOM) when the all-vertex similarity computation would
  /// exceed this budget. 0 disables the guard.
  int64_t memory_budget_bytes = 4LL * 1024 * 1024 * 1024;
};

struct GcaResult {
  /// Undefined (`!defined()`) when the memory guard fired.
  tensor::Tensor embeddings;
  bool out_of_memory = false;
  int epochs_run = 0;
  double final_loss = 0.0;
  double seconds = 0.0;
};

GcaResult TrainGca(const roadnet::RoadNetwork& network, const GcaConfig& config);

}  // namespace sarn::baselines

#endif  // SARN_BASELINES_GCA_H_
