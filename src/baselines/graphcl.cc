// GraphCL re-expressed on the pluggable contrastive plane (DESIGN.md §16):
// the bespoke training loop this file used to carry is gone — the baseline
// is now the registry composition {encoder "gat", augmentation
// "uniform-drop", negatives "in-batch"} with momentum 0 (a zero-momentum
// target branch tracks the online parameters exactly, which is how the
// plane expresses GraphCL's parameter-shared encoders) driven by the same
// ContrastiveTrainer as SARN, so checkpoint/resume, telemetry and the
// step-plan engine come from one implementation.

#include "baselines/graphcl.h"

#include "common/timer.h"
#include "core/sarn_model.h"

namespace sarn::baselines {

GraphClResult TrainGraphCl(const roadnet::RoadNetwork& network,
                           const GraphClConfig& config) {
  Timer timer;
  core::SarnConfig model_config;
  model_config.seed = config.seed;
  model_config.feature_dim_per_feature = config.feature_dim_per_feature;
  model_config.hidden_dim = config.hidden_dim;
  model_config.embedding_dim = config.embedding_dim;
  model_config.gat_layers = config.gat_layers;
  model_config.gat_heads = config.gat_heads;
  model_config.projection_dim = config.projection_dim;
  model_config.tau = config.tau;
  model_config.max_epochs = config.max_epochs;
  model_config.patience = config.max_epochs;  // GraphCL has no early stopping.
  model_config.batch_size = config.batch_size;
  model_config.learning_rate = config.learning_rate;
  model_config.momentum = 0.0f;           // Parameter-shared encoders.
  model_config.use_spatial_matrix = false;  // Topological edges only.
  model_config.encoder = "gat";
  model_config.augmentation = "uniform-drop";
  model_config.negatives = "in-batch";
  model_config.edge_drop_rate = config.edge_drop_rate;
  model_config.feature_mask_rate = config.feature_mask_rate;

  core::SarnModel model(network, model_config);
  core::TrainOptions options;
  options.checkpoint_dir = config.checkpoint_dir;
  options.checkpoint_every = config.checkpoint_every;
  options.keep_last = config.keep_last;
  options.resume = config.resume;
  options.max_epochs = config.stop_after_epochs;
  options.metrics_sink = config.metrics_sink;
  options.plan_mode = config.plan_mode;
  options.run_name = "graphcl";
  core::TrainStats stats = model.Train(options);

  GraphClResult result;
  result.embeddings = model.Embeddings();
  result.epochs_run = stats.epochs_run;
  result.final_loss = stats.final_loss;
  result.resumed_from_epoch = stats.resumed_from_epoch;
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace sarn::baselines
