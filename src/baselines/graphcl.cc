#include "baselines/graphcl.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <numeric>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/timer.h"
#include "obs/trace.h"
#include "plan/executor.h"
#include "nn/embedding.h"
#include "nn/gat.h"
#include "nn/losses.h"
#include "nn/projection_head.h"
#include "nn/serialization.h"
#include "roadnet/features.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"

namespace sarn::baselines {
namespace {

using tensor::Tensor;

// Everything the structure of one GraphCL step depends on: hyper-parameters
// (plus the epoch's scheduled LR), per-view edge counts, batch size and
// thread count. Mirrors core::SarnModel::MakeStepPlanKey.
plan::PlanKey MakeGraphClStepKey(const GraphClConfig& config, int64_t vertices,
                                 const nn::EdgeList& view1, const nn::EdgeList& view2,
                                 int64_t batch, float learning_rate) {
  plan::PlanKey key;
  uint64_t h = 0x47434c;  // Arbitrary non-zero basis.
  auto put = [&h](uint64_t v) { h = plan::HashCombine(h, v); };
  auto put_d = [&put](double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    put(bits);
  };
  auto put_f = [&put](float v) {
    uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    put(bits);
  };
  put(config.seed);
  put(static_cast<uint64_t>(config.feature_dim_per_feature));
  put(static_cast<uint64_t>(config.hidden_dim));
  put(static_cast<uint64_t>(config.embedding_dim));
  put(static_cast<uint64_t>(config.gat_layers));
  put(static_cast<uint64_t>(config.gat_heads));
  put(static_cast<uint64_t>(config.projection_dim));
  put_d(config.edge_drop_rate);
  put_d(config.feature_mask_rate);
  put_d(config.tau);
  put(static_cast<uint64_t>(config.max_epochs));
  put(static_cast<uint64_t>(config.batch_size));
  put_f(config.learning_rate);
  put_f(learning_rate);
  key.config_hash = h;
  key.vertices = vertices;
  key.edges_a = static_cast<int64_t>(view1.src.size());
  key.edges_b = static_cast<int64_t>(view2.src.size());
  key.batch = batch;
  key.threads = static_cast<int64_t>(GetParallelThreads());
  return key;
}

nn::EdgeList DropEdgesUniform(const std::vector<roadnet::TopoEdge>& edges, double rate,
                              Rng& rng) {
  nn::EdgeList out;
  for (const roadnet::TopoEdge& e : edges) {
    if (!rng.Bernoulli(rate)) out.Add(e.from, e.to);
  }
  return out;
}

// GraphCL's attribute masking: replaces a fraction of feature values with
// bin 0 (an arbitrary shared "masked" id — the embedding learns to treat it
// as low-information).
roadnet::SegmentFeatures MaskFeatures(const roadnet::SegmentFeatures& features,
                                      double rate, Rng& rng) {
  roadnet::SegmentFeatures masked = features;
  if (rate <= 0.0) return masked;
  for (auto& column : masked.ids) {
    for (int64_t& id : column) {
      if (rng.Bernoulli(rate)) id = 0;
    }
  }
  return masked;
}

// Training-checkpoint section names.
constexpr char kSectionParams[] = "graphcl/params";
constexpr char kSectionOptimizer[] = "graphcl/optimizer";
constexpr char kSectionSchedule[] = "graphcl/schedule";
constexpr char kSectionRng[] = "graphcl/rng";
constexpr char kSectionTrainer[] = "graphcl/trainer";

nn::TrainingCheckpoint BuildGraphClCheckpoint(
    const GraphClConfig& config, const std::vector<Tensor>& parameters,
    const tensor::Adam& optimizer, const tensor::CosineAnnealingSchedule& schedule,
    const Rng& rng, int next_epoch, double last_loss) {
  nn::TrainingCheckpoint ckpt;
  ByteWriter params;
  nn::WriteTensors(params, parameters);
  ckpt.SetSection(kSectionParams, params.Take());
  ByteWriter optimizer_state;
  optimizer.SaveState(optimizer_state);
  ckpt.SetSection(kSectionOptimizer, optimizer_state.Take());
  ByteWriter schedule_state;
  schedule.SaveState(schedule_state);
  ckpt.SetSection(kSectionSchedule, schedule_state.Take());
  ByteWriter rng_state;
  rng.SaveState(rng_state);
  ckpt.SetSection(kSectionRng, rng_state.Take());
  ByteWriter trainer;
  trainer.PutU64(config.seed);
  trainer.PutI64(next_epoch);
  trainer.PutF64(last_loss);
  ckpt.SetSection(kSectionTrainer, trainer.Take());
  return ckpt;
}

// Atomic restore of a GraphCL checkpoint: stages every section, commits only
// when all of them validate. Returns false on any mismatch.
bool ApplyGraphClCheckpoint(const nn::TrainingCheckpoint& ckpt,
                            const GraphClConfig& config,
                            const std::vector<Tensor>& parameters,
                            tensor::Adam& optimizer,
                            tensor::CosineAnnealingSchedule& schedule, Rng& rng,
                            int* next_epoch, double* last_loss) {
  const std::string* params = ckpt.FindSection(kSectionParams);
  const std::string* optimizer_state = ckpt.FindSection(kSectionOptimizer);
  const std::string* schedule_state = ckpt.FindSection(kSectionSchedule);
  const std::string* rng_state = ckpt.FindSection(kSectionRng);
  const std::string* trainer = ckpt.FindSection(kSectionTrainer);
  if (!params || !optimizer_state || !schedule_state || !rng_state || !trainer) {
    return false;
  }

  std::vector<std::vector<float>> staged_params;
  ByteReader params_in(*params);
  if (!nn::ParseTensors(params_in, parameters, &staged_params).ok()) return false;
  tensor::Adam staged_optimizer = optimizer;
  ByteReader optimizer_in(*optimizer_state);
  if (!staged_optimizer.LoadState(optimizer_in)) return false;
  tensor::CosineAnnealingSchedule staged_schedule = schedule;
  ByteReader schedule_in(*schedule_state);
  if (!staged_schedule.LoadState(schedule_in)) return false;
  Rng staged_rng = rng;
  ByteReader rng_in(*rng_state);
  if (!staged_rng.LoadState(rng_in)) return false;
  uint64_t seed = 0;
  int64_t epoch = 0;
  double loss = 0.0;
  ByteReader trainer_in(*trainer);
  if (!trainer_in.GetU64(&seed) || !trainer_in.GetI64(&epoch) ||
      !trainer_in.GetF64(&loss)) {
    return false;
  }
  if (seed != config.seed || epoch < 0 || epoch > config.max_epochs) return false;

  for (size_t i = 0; i < parameters.size(); ++i) {
    const_cast<Tensor&>(parameters[i]).mutable_data() = std::move(staged_params[i]);
  }
  optimizer = staged_optimizer;
  schedule = staged_schedule;
  rng = staged_rng;
  *next_epoch = static_cast<int>(epoch);
  *last_loss = loss;
  return true;
}

}  // namespace

GraphClResult TrainGraphCl(const roadnet::RoadNetwork& network,
                           const GraphClConfig& config) {
  Timer timer;
  Rng rng(config.seed);
  roadnet::SegmentFeatures features = roadnet::FeaturizeSegments(network);
  std::vector<int64_t> dims(features.vocab_sizes.size(), config.feature_dim_per_feature);
  nn::FeatureEmbedding feature_embedding(features.vocab_sizes, dims, rng);
  nn::GatEncoder encoder(feature_embedding.output_dim(), config.hidden_dim,
                         config.embedding_dim, config.gat_layers, config.gat_heads, rng);
  nn::ProjectionHead head(config.embedding_dim, config.embedding_dim,
                          config.projection_dim, rng);

  std::vector<Tensor> parameters = feature_embedding.Parameters();
  for (const Tensor& p : encoder.Parameters()) parameters.push_back(p);
  for (const Tensor& p : head.Parameters()) parameters.push_back(p);
  tensor::Adam optimizer(parameters, config.learning_rate);
  tensor::CosineAnnealingSchedule schedule(config.learning_rate, config.max_epochs);

  int64_t n = network.num_segments();
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);

  auto project = [&](const nn::EdgeList& edges,
                     const roadnet::SegmentFeatures& view_features) {
    Tensor x = feature_embedding.Forward(view_features.ids);
    return tensor::RowL2Normalize(head.Forward(encoder.Forward(x, edges)));
  };

  GraphClResult result;
  int start_epoch = 0;
  bool checkpointing = !config.checkpoint_dir.empty();
  if (checkpointing) {
    std::error_code ec;
    std::filesystem::create_directories(config.checkpoint_dir, ec);
    if (ec) {
      SARN_LOG(Error) << "cannot create checkpoint dir " << config.checkpoint_dir
                      << ": " << ec.message() << "; training without checkpoints";
      checkpointing = false;
    }
  }
  if (checkpointing && config.resume) {
    for (const auto& [ckpt_epoch, path] : nn::ListCheckpoints(config.checkpoint_dir)) {
      obs::CheckpointEvent event;
      event.path = path;
      event.epoch = ckpt_epoch;
      nn::TrainingCheckpoint ckpt;
      nn::CheckpointStatus status = nn::LoadCheckpoint(path, &ckpt);
      if (!status.ok()) {
        event.action = obs::CheckpointEvent::Action::kSkippedCorrupt;
        event.detail = std::string(nn::CheckpointErrorName(status.error)) + ": " +
                       status.message;
        obs::RecordCheckpointEvent(config.metrics_sink, event);
        continue;
      }
      if (!ApplyGraphClCheckpoint(ckpt, config, parameters, optimizer, schedule, rng,
                                  &start_epoch, &result.final_loss)) {
        event.action = obs::CheckpointEvent::Action::kSkippedMismatch;
        event.detail = "state does not match this configuration";
        obs::RecordCheckpointEvent(config.metrics_sink, event);
        continue;
      }
      event.action = obs::CheckpointEvent::Action::kResumedFrom;
      event.epoch = start_epoch;
      result.resumed_from_epoch = start_epoch;
      result.epochs_run = start_epoch;
      obs::RecordCheckpointEvent(config.metrics_sink, event);
      break;
    }
  }

  int stop_after = config.stop_after_epochs >= 0
                       ? std::min(config.stop_after_epochs, config.max_epochs)
                       : config.max_epochs;
  plan::PlanExecutor plan_executor(plan::EffectivePlanMode(config.plan_mode));
  bool aborted = false;
  for (int epoch = start_epoch; epoch < stop_after && !aborted; ++epoch) {
    SARN_TRACE_SPAN("graphcl_epoch");
    Timer epoch_timer;
    double augmentation_seconds = 0.0, forward_seconds = 0.0, loss_seconds = 0.0,
           backward_seconds = 0.0, optimizer_seconds = 0.0,
           checkpoint_seconds = 0.0;
    ParallelPoolStats pool_before = GetParallelPoolStats();

    schedule.OnEpoch(optimizer, epoch);
    nn::EdgeList view1, view2;
    roadnet::SegmentFeatures features1, features2;
    {
      SARN_TRACE_SPAN("augmentation");
      obs::ScopedPhaseTimer phase(&augmentation_seconds);
      view1 = DropEdgesUniform(network.topo_edges(), config.edge_drop_rate, rng);
      view2 = DropEdgesUniform(network.topo_edges(), config.edge_drop_rate, rng);
      features1 = MaskFeatures(features, config.feature_mask_rate, rng);
      features2 = MaskFeatures(features, config.feature_mask_rate, rng);
    }
    // Shuffle from the identity so the batch order depends only on the
    // checkpointed RNG state (resume must replay it bitwise), not on the
    // cumulative permutation history.
    std::iota(order.begin(), order.end(), 0);
    rng.Shuffle(order);
    double epoch_loss = 0.0;
    int batches = 0;
    for (int64_t begin = 0; begin < n; begin += config.batch_size) {
      int64_t end = std::min<int64_t>(n, begin + config.batch_size);
      std::vector<int64_t> batch(order.begin() + begin, order.begin() + end);
      int64_t m = static_cast<int64_t>(batch.size());
      if (m < 2) continue;
      // Declared before any Tensor of the step so the guard destructs after
      // every step tensor has released its buffer (arena quiescence check).
      plan::PlanExecutor::StepGuard plan_step = plan_executor.BeginStep(
          MakeGraphClStepKey(config, n, view1, view2, m, optimizer.learning_rate()));

      // Both views through the SHARED encoder.
      Tensor z1, z2;
      {
        SARN_TRACE_SPAN("online_forward");
        obs::ScopedPhaseTimer phase(&forward_seconds);
        z1 = tensor::Rows(project(view1, features1), batch);
        z2 = tensor::Rows(project(view2, features2), batch);
      }

      // NT-Xent with in-batch negatives, symmetric.
      Tensor loss;
      {
        SARN_TRACE_SPAN("loss");
        obs::ScopedPhaseTimer phase(&loss_seconds);
        Tensor logits12 = tensor::MulScalar(tensor::MatMul(z1, tensor::Transpose(z2)),
                                            1.0f / static_cast<float>(config.tau));
        Tensor logits21 = tensor::MulScalar(tensor::MatMul(z2, tensor::Transpose(z1)),
                                            1.0f / static_cast<float>(config.tau));
        std::vector<int64_t> labels(static_cast<size_t>(m));
        std::iota(labels.begin(), labels.end(), 0);
        loss =
            tensor::MulScalar(tensor::Add(nn::CrossEntropyWithLogits(logits12, labels),
                                          nn::CrossEntropyWithLogits(logits21, labels)),
                              0.5f);
      }
      float loss_value = loss.item();
      if (!std::isfinite(loss_value)) {
        aborted = true;
        SARN_LOG(Error) << "GraphCL: non-finite loss at epoch " << epoch
                        << "; aborting training (embeddings keep the last "
                           "finite parameters)";
        break;
      }
      epoch_loss += loss_value;
      ++batches;
      {
        SARN_TRACE_SPAN("backward");
        obs::ScopedPhaseTimer phase(&backward_seconds);
        optimizer.ZeroGrad();
        loss.Backward();
      }
      {
        SARN_TRACE_SPAN("optimizer_step");
        obs::ScopedPhaseTimer phase(&optimizer_seconds);
        optimizer.Step();
      }
    }
    if (aborted) break;  // No checkpoint of the poisoned epoch.
    result.final_loss = epoch_loss / std::max(1, batches);
    result.epochs_run = epoch + 1;
    int64_t checkpoint_bytes = 0;
    if (checkpointing && (epoch + 1 == stop_after ||
                          (epoch + 1) % std::max(1, config.checkpoint_every) == 0)) {
      SARN_TRACE_SPAN("checkpoint_write");
      obs::ScopedPhaseTimer phase(&checkpoint_seconds);
      std::string path =
          config.checkpoint_dir + "/" + nn::CheckpointFileName(epoch + 1);
      Timer write_timer;
      nn::CheckpointStatus status = nn::SaveCheckpoint(
          path, BuildGraphClCheckpoint(config, parameters, optimizer, schedule, rng,
                                       epoch + 1, result.final_loss));
      obs::CheckpointEvent event;
      event.path = path;
      event.epoch = epoch + 1;
      event.seconds = write_timer.ElapsedSeconds();
      if (status.ok()) {
        std::error_code ec;
        auto size = std::filesystem::file_size(path, ec);
        checkpoint_bytes = ec ? 0 : static_cast<int64_t>(size);
        event.action = obs::CheckpointEvent::Action::kWritten;
        event.bytes = checkpoint_bytes;
        obs::RecordCheckpointEvent(config.metrics_sink, event);
        nn::PruneCheckpoints(config.checkpoint_dir, config.keep_last);
      } else {
        event.action = obs::CheckpointEvent::Action::kWriteFailed;
        event.detail = std::string(nn::CheckpointErrorName(status.error)) + ": " +
                       status.message;
        obs::RecordCheckpointEvent(config.metrics_sink, event);
      }
    }
    if (config.metrics_sink != nullptr) {
      ParallelPoolStats pool_after = GetParallelPoolStats();
      obs::EpochRecord record;
      record.run = "graphcl";
      record.epoch = epoch;
      record.loss = result.final_loss;
      record.learning_rate = optimizer.learning_rate();
      record.batches = batches;
      record.epoch_seconds = epoch_timer.ElapsedSeconds();
      record.resumed = result.resumed_from_epoch > 0;
      record.phase_seconds = {{"augmentation", augmentation_seconds},
                              {"online_forward", forward_seconds},
                              {"loss", loss_seconds},
                              {"backward", backward_seconds},
                              {"optimizer_step", optimizer_seconds},
                              {"checkpoint_write", checkpoint_seconds}};
      record.checkpoint_bytes = checkpoint_bytes;
      record.checkpoint_seconds = checkpoint_seconds;
      record.pool_regions = pool_after.regions - pool_before.regions;
      record.pool_chunks = pool_after.chunks - pool_before.chunks;
      record.pool_items = pool_after.items - pool_before.items;
      record.pool_idle_seconds =
          pool_after.worker_idle_seconds - pool_before.worker_idle_seconds;
      config.metrics_sink->OnEpoch(record);
    }
  }
  if (config.metrics_sink != nullptr) config.metrics_sink->Flush();

  {
    tensor::NoGradGuard guard;
    nn::EdgeList full;
    for (const roadnet::TopoEdge& e : network.topo_edges()) full.Add(e.from, e.to);
    Tensor x = feature_embedding.Forward(features.ids);  // Unmasked at inference.
    result.embeddings = encoder.Forward(x, full);
  }
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace sarn::baselines
