#include "baselines/graphcl.h"

#include <algorithm>
#include <numeric>

#include "common/rng.h"
#include "common/timer.h"
#include "nn/embedding.h"
#include "nn/gat.h"
#include "nn/losses.h"
#include "nn/projection_head.h"
#include "roadnet/features.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"

namespace sarn::baselines {
namespace {

using tensor::Tensor;

nn::EdgeList DropEdgesUniform(const std::vector<roadnet::TopoEdge>& edges, double rate,
                              Rng& rng) {
  nn::EdgeList out;
  for (const roadnet::TopoEdge& e : edges) {
    if (!rng.Bernoulli(rate)) out.Add(e.from, e.to);
  }
  return out;
}

// GraphCL's attribute masking: replaces a fraction of feature values with
// bin 0 (an arbitrary shared "masked" id — the embedding learns to treat it
// as low-information).
roadnet::SegmentFeatures MaskFeatures(const roadnet::SegmentFeatures& features,
                                      double rate, Rng& rng) {
  roadnet::SegmentFeatures masked = features;
  if (rate <= 0.0) return masked;
  for (auto& column : masked.ids) {
    for (int64_t& id : column) {
      if (rng.Bernoulli(rate)) id = 0;
    }
  }
  return masked;
}

}  // namespace

GraphClResult TrainGraphCl(const roadnet::RoadNetwork& network,
                           const GraphClConfig& config) {
  Timer timer;
  Rng rng(config.seed);
  roadnet::SegmentFeatures features = roadnet::FeaturizeSegments(network);
  std::vector<int64_t> dims(features.vocab_sizes.size(), config.feature_dim_per_feature);
  nn::FeatureEmbedding feature_embedding(features.vocab_sizes, dims, rng);
  nn::GatEncoder encoder(feature_embedding.output_dim(), config.hidden_dim,
                         config.embedding_dim, config.gat_layers, config.gat_heads, rng);
  nn::ProjectionHead head(config.embedding_dim, config.embedding_dim,
                          config.projection_dim, rng);

  std::vector<Tensor> parameters = feature_embedding.Parameters();
  for (const Tensor& p : encoder.Parameters()) parameters.push_back(p);
  for (const Tensor& p : head.Parameters()) parameters.push_back(p);
  tensor::Adam optimizer(parameters, config.learning_rate);
  tensor::CosineAnnealingSchedule schedule(config.learning_rate, config.max_epochs);

  int64_t n = network.num_segments();
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);

  auto project = [&](const nn::EdgeList& edges,
                     const roadnet::SegmentFeatures& view_features) {
    Tensor x = feature_embedding.Forward(view_features.ids);
    return tensor::RowL2Normalize(head.Forward(encoder.Forward(x, edges)));
  };

  GraphClResult result;
  for (int epoch = 0; epoch < config.max_epochs; ++epoch) {
    schedule.OnEpoch(optimizer, epoch);
    nn::EdgeList view1 = DropEdgesUniform(network.topo_edges(), config.edge_drop_rate, rng);
    nn::EdgeList view2 = DropEdgesUniform(network.topo_edges(), config.edge_drop_rate, rng);
    roadnet::SegmentFeatures features1 =
        MaskFeatures(features, config.feature_mask_rate, rng);
    roadnet::SegmentFeatures features2 =
        MaskFeatures(features, config.feature_mask_rate, rng);
    rng.Shuffle(order);
    double epoch_loss = 0.0;
    int batches = 0;
    for (int64_t begin = 0; begin < n; begin += config.batch_size) {
      int64_t end = std::min<int64_t>(n, begin + config.batch_size);
      std::vector<int64_t> batch(order.begin() + begin, order.begin() + end);
      int64_t m = static_cast<int64_t>(batch.size());
      if (m < 2) continue;

      // Both views through the SHARED encoder.
      Tensor z1 = tensor::Rows(project(view1, features1), batch);
      Tensor z2 = tensor::Rows(project(view2, features2), batch);

      // NT-Xent with in-batch negatives, symmetric.
      Tensor logits12 = tensor::MulScalar(tensor::MatMul(z1, tensor::Transpose(z2)),
                                          1.0f / static_cast<float>(config.tau));
      Tensor logits21 = tensor::MulScalar(tensor::MatMul(z2, tensor::Transpose(z1)),
                                          1.0f / static_cast<float>(config.tau));
      std::vector<int64_t> labels(static_cast<size_t>(m));
      std::iota(labels.begin(), labels.end(), 0);
      Tensor loss =
          tensor::MulScalar(tensor::Add(nn::CrossEntropyWithLogits(logits12, labels),
                                        nn::CrossEntropyWithLogits(logits21, labels)),
                            0.5f);
      epoch_loss += loss.item();
      ++batches;
      optimizer.ZeroGrad();
      loss.Backward();
      optimizer.Step();
    }
    result.final_loss = epoch_loss / std::max(1, batches);
    result.epochs_run = epoch + 1;
  }

  {
    tensor::NoGradGuard guard;
    nn::EdgeList full;
    for (const roadnet::TopoEdge& e : network.topo_edges()) full.Add(e.from, e.to);
    Tensor x = feature_embedding.Forward(features.ids);  // Unmasked at inference.
    result.embeddings = encoder.Forward(x, full);
  }
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace sarn::baselines
