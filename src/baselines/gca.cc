// GCA re-expressed on the pluggable contrastive plane (DESIGN.md §16): the
// registry composition {encoder "gat", augmentation "adaptive-drop",
// negatives "all-vertex"} with momentum 0 (the plane's rendering of GCA's
// parameter-shared encoders), driven by the shared ContrastiveTrainer. Only
// the documented failure mode stays local: the up-front memory guard that
// reproduces GCA's O(n^2) all-vertex similarity blow-up (paper Table 8).

#include "baselines/gca.h"

#include "common/logging.h"
#include "common/timer.h"
#include "core/sarn_model.h"

namespace sarn::baselines {

GcaResult TrainGca(const roadnet::RoadNetwork& network, const GcaConfig& config) {
  Timer timer;
  GcaResult result;
  int64_t n = network.num_segments();
  // GCA's loss touches an n x n similarity structure (anchors vs all
  // vertices, both views). Estimate and enforce the budget up front.
  if (config.memory_budget_bytes > 0) {
    int64_t required = 2 * n * n * static_cast<int64_t>(sizeof(float));
    if (required > config.memory_budget_bytes) {
      SARN_LOG(Warning) << "GCA OOM: needs " << required << " bytes for n=" << n;
      result.out_of_memory = true;
      return result;
    }
  }

  core::SarnConfig model_config;
  model_config.seed = config.seed;
  model_config.feature_dim_per_feature = config.feature_dim_per_feature;
  model_config.hidden_dim = config.hidden_dim;
  model_config.embedding_dim = config.embedding_dim;
  model_config.gat_layers = config.gat_layers;
  model_config.gat_heads = config.gat_heads;
  model_config.projection_dim = config.projection_dim;
  model_config.tau = config.tau;
  model_config.max_epochs = config.max_epochs;
  model_config.patience = config.max_epochs;  // GCA has no early stopping.
  model_config.batch_size = config.batch_size;
  model_config.learning_rate = config.learning_rate;
  model_config.momentum = 0.0f;           // Parameter-shared encoders.
  model_config.use_spatial_matrix = false;  // Topological edges only.
  model_config.encoder = "gat";
  model_config.augmentation = "adaptive-drop";
  model_config.negatives = "all-vertex";
  model_config.edge_drop_rate = config.edge_drop_rate;
  model_config.epsilon = config.epsilon;

  core::SarnModel model(network, model_config);
  core::TrainOptions options;
  options.run_name = "gca";
  core::TrainStats stats = model.Train(options);

  result.embeddings = model.Embeddings();
  result.epochs_run = stats.epochs_run;
  result.final_loss = stats.final_loss;
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace sarn::baselines
