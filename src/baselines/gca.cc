#include "baselines/gca.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/rng.h"
#include "common/timer.h"
#include "nn/embedding.h"
#include "nn/gat.h"
#include "nn/losses.h"
#include "nn/projection_head.h"
#include "roadnet/features.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"

namespace sarn::baselines {
namespace {

using tensor::Tensor;

// Adaptive edge dropping: drop probability scales inversely with the Eq. 1
// importance weight, centred on `mean_rate` (the GCA recipe).
nn::EdgeList DropEdgesAdaptive(const std::vector<roadnet::TopoEdge>& edges,
                               double mean_rate, double epsilon, Rng& rng) {
  double min_w = 1e18, max_w = -1e18;
  for (const roadnet::TopoEdge& e : edges) {
    min_w = std::min(min_w, e.weight);
    max_w = std::max(max_w, e.weight);
  }
  nn::EdgeList out;
  for (const roadnet::TopoEdge& e : edges) {
    double normalized =
        max_w > min_w ? (e.weight - min_w) / (max_w - min_w) : 0.5;
    double drop = std::clamp(2.0 * mean_rate * (1.0 - normalized), epsilon,
                             1.0 - epsilon);
    if (!rng.Bernoulli(drop)) out.Add(e.from, e.to);
  }
  return out;
}

}  // namespace

GcaResult TrainGca(const roadnet::RoadNetwork& network, const GcaConfig& config) {
  Timer timer;
  GcaResult result;
  int64_t n = network.num_segments();
  // GCA's loss touches an n x n similarity structure (anchors vs all
  // vertices, both views). Estimate and enforce the budget up front.
  if (config.memory_budget_bytes > 0) {
    int64_t required = 2 * n * n * static_cast<int64_t>(sizeof(float));
    if (required > config.memory_budget_bytes) {
      SARN_LOG(Warning) << "GCA OOM: needs " << required << " bytes for n=" << n;
      result.out_of_memory = true;
      return result;
    }
  }

  Rng rng(config.seed);
  roadnet::SegmentFeatures features = roadnet::FeaturizeSegments(network);
  std::vector<int64_t> dims(features.vocab_sizes.size(), config.feature_dim_per_feature);
  nn::FeatureEmbedding feature_embedding(features.vocab_sizes, dims, rng);
  nn::GatEncoder encoder(feature_embedding.output_dim(), config.hidden_dim,
                         config.embedding_dim, config.gat_layers, config.gat_heads, rng);
  nn::ProjectionHead head(config.embedding_dim, config.embedding_dim,
                          config.projection_dim, rng);

  std::vector<Tensor> parameters = feature_embedding.Parameters();
  for (const Tensor& p : encoder.Parameters()) parameters.push_back(p);
  for (const Tensor& p : head.Parameters()) parameters.push_back(p);
  tensor::Adam optimizer(parameters, config.learning_rate);
  tensor::CosineAnnealingSchedule schedule(config.learning_rate, config.max_epochs);

  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);

  auto project = [&](const nn::EdgeList& edges) {
    Tensor x = feature_embedding.Forward(features.ids);
    return tensor::RowL2Normalize(head.Forward(encoder.Forward(x, edges)));
  };

  for (int epoch = 0; epoch < config.max_epochs; ++epoch) {
    schedule.OnEpoch(optimizer, epoch);
    nn::EdgeList view1 = DropEdgesAdaptive(network.topo_edges(), config.edge_drop_rate,
                                           config.epsilon, rng);
    nn::EdgeList view2 = DropEdgesAdaptive(network.topo_edges(), config.edge_drop_rate,
                                           config.epsilon, rng);
    rng.Shuffle(order);
    double epoch_loss = 0.0;
    int batches = 0;
    for (int64_t begin = 0; begin < n; begin += config.batch_size) {
      int64_t end = std::min<int64_t>(n, begin + config.batch_size);
      std::vector<int64_t> batch(order.begin() + begin, order.begin() + end);
      Tensor z1_all = project(view1);
      Tensor z2_all = project(view2);
      Tensor z1 = tensor::Rows(z1_all, batch);
      // Negatives: ALL vertices of the other view (label = own column).
      Tensor logits = tensor::MulScalar(tensor::MatMul(z1, tensor::Transpose(z2_all)),
                                        1.0f / static_cast<float>(config.tau));
      Tensor loss = nn::CrossEntropyWithLogits(logits, batch);
      epoch_loss += loss.item();
      ++batches;
      optimizer.ZeroGrad();
      loss.Backward();
      optimizer.Step();
    }
    result.final_loss = epoch_loss / std::max(1, batches);
    result.epochs_run = epoch + 1;
  }

  {
    tensor::NoGradGuard guard;
    nn::EdgeList full;
    for (const roadnet::TopoEdge& e : network.topo_edges()) full.Add(e.from, e.to);
    Tensor x = feature_embedding.Forward(features.ids);
    result.embeddings = encoder.Forward(x, full);
  }
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace sarn::baselines
