#include "baselines/neutraj_lite.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "nn/sequence_util.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"

namespace sarn::baselines {

using tensor::Tensor;

NeutrajLite::NeutrajLite(int64_t num_segments, NeutrajLiteConfig config)
    : config_(config), rng_(config.seed) {
  SARN_CHECK_GT(num_segments, 0);
  segment_table_ =
      Tensor::Randn({num_segments, config.segment_dim}, rng_, 0.1f).RequiresGrad();
  gru_ = std::make_unique<nn::Gru>(config.segment_dim, config.hidden_dim,
                                   config.gru_layers, rng_);
  scale_ = Tensor::FromVector({1}, {1.0f}).RequiresGrad();
  offset_ = Tensor::FromVector({1}, {0.0f}).RequiresGrad();
}

double NeutrajLite::Train(const std::vector<std::vector<int64_t>>& trajectories,
                          const std::function<double(size_t, size_t)>& distance) {
  SARN_CHECK_GE(trajectories.size(), 2u);
  std::vector<Tensor> parameters = {segment_table_, scale_, offset_};
  for (const Tensor& p : gru_->Parameters()) parameters.push_back(p);
  tensor::Adam optimizer(parameters, config_.learning_rate);

  double last_loss = 0.0;
  for (int epoch = 0; epoch < config_.max_epochs; ++epoch) {
    double epoch_loss = 0.0;
    int batches = 0;
    for (int produced = 0; produced < config_.pairs_per_epoch;
         produced += config_.batch_pairs) {
      // Sample a batch of pairs; embed the union of members once.
      std::vector<std::pair<size_t, size_t>> pairs;
      std::vector<std::vector<int64_t>> batch_sequences;
      std::vector<float> targets_km, weights;
      for (int k = 0; k < config_.batch_pairs; ++k) {
        size_t a = static_cast<size_t>(
            rng_.UniformInt(0, static_cast<int64_t>(trajectories.size()) - 1));
        size_t b = static_cast<size_t>(
            rng_.UniformInt(0, static_cast<int64_t>(trajectories.size()) - 1));
        if (a == b) continue;
        double d = distance(a, b);
        pairs.emplace_back(batch_sequences.size(), batch_sequences.size() + 1);
        batch_sequences.push_back(trajectories[a]);
        batch_sequences.push_back(trajectories[b]);
        targets_km.push_back(static_cast<float>(d / 1000.0));
        weights.push_back(static_cast<float>(
            std::exp(-d / config_.weight_bandwidth_meters)) + 0.1f);
      }
      if (pairs.empty()) continue;
      Tensor embedded = nn::EmbedSequences(*gru_, segment_table_, batch_sequences);
      std::vector<int64_t> left, right;
      for (const auto& [a, b] : pairs) {
        left.push_back(static_cast<int64_t>(a));
        right.push_back(static_cast<int64_t>(b));
      }
      Tensor l1 = tensor::SumAxis(
          tensor::Abs(tensor::Sub(tensor::Rows(embedded, left),
                                  tensor::Rows(embedded, right))),
          1);
      Tensor prediction = tensor::Add(tensor::Mul(l1, scale_), offset_);
      int64_t m = prediction.numel();
      Tensor error = tensor::Square(
          tensor::Sub(prediction, Tensor::FromVector({m}, targets_km)));
      Tensor loss = tensor::Mean(tensor::Mul(error, Tensor::FromVector({m}, weights)));
      epoch_loss += loss.item();
      ++batches;
      optimizer.ZeroGrad();
      loss.Backward();
      optimizer.Step();
    }
    last_loss = epoch_loss / std::max(1, batches);
  }
  return last_loss;
}

Tensor NeutrajLite::Embed(const std::vector<std::vector<int64_t>>& trajectories) const {
  tensor::NoGradGuard guard;
  return nn::EmbedSequences(*gru_, segment_table_, trajectories);
}

}  // namespace sarn::baselines
