// RNE baseline (Huang et al., ICDE'21), reduced-scale reimplementation
// ("RneLite", DESIGN.md §3): road-segment embeddings trained so that a
// (learned affine of the) L1 distance between two embeddings regresses
// their shortest-path distance. The hierarchy is two-level: a coarse
// zone-grid embedding plus a per-segment residual, summed — mirroring RNE's
// coarse-to-fine construction. Embeddings encode global pairwise distance
// structure, which is why RNE is strong on task 3 and surprisingly useful
// elsewhere (paper §5.2.2).

#ifndef SARN_BASELINES_RNE_LITE_H_
#define SARN_BASELINES_RNE_LITE_H_

#include <cstdint>

#include "roadnet/road_network.h"
#include "tensor/tensor.h"

namespace sarn::baselines {

struct RneLiteConfig {
  uint64_t seed = 37;
  int64_t dim = 64;
  double zone_cell_meters = 800.0;
  /// Dijkstra sources per epoch; targets sampled from each tree.
  int sources_per_epoch = 24;
  int targets_per_source = 48;
  int max_epochs = 15;
  int batch_size = 256;
  float learning_rate = 0.01f;
};

struct RneLiteResult {
  tensor::Tensor embeddings;  // [n, dim] = zone + residual, detached.
  int epochs_run = 0;
  double final_loss = 0.0;
  double seconds = 0.0;
};

RneLiteResult TrainRneLite(const roadnet::RoadNetwork& network,
                           const RneLiteConfig& config);

}  // namespace sarn::baselines

#endif  // SARN_BASELINES_RNE_LITE_H_
