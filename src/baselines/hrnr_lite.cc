#include "baselines/hrnr_lite.h"

#include <set>

#include "common/logging.h"
#include "geo/grid.h"
#include "tensor/ops.h"

namespace sarn::baselines {

using tensor::Tensor;

HrnrLite::HrnrLite(const roadnet::RoadNetwork& network, HrnrLiteConfig config)
    : network_(&network), config_(config) {
  int64_t n = network.num_segments();
  geo::Grid grid(network.bounding_box(), config.zone_cell_meters);
  num_zones_ = grid.num_cells();

  // Hierarchy memory estimate: HRNR keeps several n x n and n x C adjacency
  // and assignment matrices; model the dominant dense n x n term.
  if (config_.memory_budget_bytes > 0) {
    int64_t required = 3 * n * n * static_cast<int64_t>(sizeof(float));
    if (required > config_.memory_budget_bytes) {
      SARN_LOG(Warning) << "HRNR OOM: needs " << required << " bytes for n=" << n;
      out_of_memory_ = true;
      return;
    }
  }

  features_ = roadnet::FeaturizeSegments(network);
  zone_of_.reserve(static_cast<size_t>(n));
  std::vector<float> counts(static_cast<size_t>(num_zones_), 0.0f);
  for (const roadnet::RoadSegment& s : network.segments()) {
    int zone = grid.CellOf(s.Midpoint());
    zone_of_.push_back(zone);
    counts[static_cast<size_t>(zone)] += 1.0f;
  }
  std::vector<float> inverse(static_cast<size_t>(num_zones_), 0.0f);
  for (size_t z = 0; z < counts.size(); ++z) {
    if (counts[z] > 0) inverse[z] = 1.0f / counts[z];
  }
  zone_count_inverse_ = Tensor::FromVector({num_zones_}, std::move(inverse));

  for (const roadnet::TopoEdge& e : network.topo_edges()) {
    segment_edges_.Add(e.from, e.to);
  }
  std::set<std::pair<int64_t, int64_t>> zone_pairs;
  for (const roadnet::TopoEdge& e : network.topo_edges()) {
    int64_t za = zone_of_[static_cast<size_t>(e.from)];
    int64_t zb = zone_of_[static_cast<size_t>(e.to)];
    if (za != zb) {
      zone_pairs.emplace(za, zb);
      zone_pairs.emplace(zb, za);
    }
  }
  for (const auto& [za, zb] : zone_pairs) zone_edges_.Add(za, zb);

  Rng rng(config_.seed);
  std::vector<int64_t> dims(features_.vocab_sizes.size(),
                            config_.feature_dim_per_feature);
  feature_embedding_ =
      std::make_unique<nn::FeatureEmbedding>(features_.vocab_sizes, dims, rng);
  int64_t head_dim = config_.hidden_dim / config_.gat_heads;
  // No residual paths: HRNR's hierarchy-reconstruction design has no direct
  // feature shortcut, which is what limits it against SARN* in the paper.
  segment_gat_ = std::make_unique<nn::GatLayer>(
      feature_embedding_->output_dim(), head_dim, config_.gat_heads,
      /*concat_heads=*/true, nn::Activation::kElu, rng, 0.2f,
      /*add_self_loops=*/true, /*residual=*/false);
  zone_gat_ = std::make_unique<nn::GatLayer>(
      config_.hidden_dim, head_dim, config_.gat_heads, /*concat_heads=*/true,
      nn::Activation::kElu, rng, 0.2f, /*add_self_loops=*/true, /*residual=*/false);
  fusion_ = std::make_unique<nn::Linear>(2 * config_.hidden_dim, config_.embedding_dim,
                                         rng);
}

Tensor HrnrLite::Forward() const {
  SARN_CHECK(!out_of_memory_) << "HrnrLite hit its memory guard";
  // Level 1: segments.
  Tensor x = feature_embedding_->Forward(features_.ids);
  Tensor h_seg = segment_gat_->Forward(x, segment_edges_);  // [n, hidden]
  // Pool to zones (mean), run the zone-level GAT.
  Tensor zone_sum = tensor::ScatterAddRows(h_seg, zone_of_, num_zones_);
  Tensor h_zone_in = tensor::ScaleRows(zone_sum, zone_count_inverse_);
  Tensor h_zone = zone_gat_->Forward(h_zone_in, zone_edges_);  // [C, hidden]
  // Broadcast zone context back and fuse.
  Tensor zone_context = tensor::Rows(h_zone, zone_of_);  // [n, hidden]
  return fusion_->Forward(tensor::Concat({h_seg, zone_context}, 1));
}

std::vector<Tensor> HrnrLite::Parameters() const {
  SARN_CHECK(!out_of_memory_);
  std::vector<Tensor> params = feature_embedding_->Parameters();
  for (const Tensor& p : segment_gat_->Parameters()) params.push_back(p);
  for (const Tensor& p : zone_gat_->Parameters()) params.push_back(p);
  for (const Tensor& p : fusion_->Parameters()) params.push_back(p);
  return params;
}

}  // namespace sarn::baselines
