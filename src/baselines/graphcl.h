// GraphCL baseline (You et al., NeurIPS'20) adapted to road networks, as the
// paper configures it (§5.1): the same GAT backbone and feature embedding as
// SARN, but (i) topological edges only, (ii) parameter-SHARED encoders for
// both views, (iii) uniform random edge dropping, and (iv) in-batch
// negatives (the other anchors of the same minibatch).

#ifndef SARN_BASELINES_GRAPHCL_H_
#define SARN_BASELINES_GRAPHCL_H_

#include <cstdint>
#include <optional>
#include <string>

#include "obs/metrics_sink.h"
#include "plan/plan.h"
#include "roadnet/road_network.h"
#include "tensor/tensor.h"

namespace sarn::baselines {

struct GraphClConfig {
  uint64_t seed = 23;
  int64_t feature_dim_per_feature = 12;
  int64_t hidden_dim = 64;
  int64_t embedding_dim = 64;
  int gat_layers = 2;
  int gat_heads = 4;
  int64_t projection_dim = 32;
  /// Uniform edge-drop rate for each view.
  double edge_drop_rate = 0.2;
  /// GraphCL's attribute-masking augmentation: per view, this fraction of
  /// the seven input features is replaced by a masked (shared) bin id.
  double feature_mask_rate = 0.1;
  double tau = 0.1;
  int max_epochs = 30;
  int batch_size = 128;
  float learning_rate = 0.005f;

  // --- Crash-safe checkpointing (mirrors core::TrainOptions) -----------------
  // With checkpoint_dir set, TrainGraphCl writes atomic rolling checkpoints
  // of the full training state (parameters, Adam moments, schedule position,
  // RNG stream) and resumes from the newest valid one, so interrupted bench
  // table runs restart where they stopped — bitwise identical to an
  // uninterrupted run at the same thread count.
  std::string checkpoint_dir;  // Empty disables checkpointing and resume.
  int checkpoint_every = 1;    // Epochs between checkpoints.
  int keep_last = 2;           // Rolling retention.
  bool resume = true;          // Resume from the newest valid checkpoint.
  /// Stop once this many *total* epochs are complete (simulates a kill);
  /// < 0 trains to max_epochs. The LR schedule always spans max_epochs.
  int stop_after_epochs = -1;

  /// Optional telemetry sink (not owned; must outlive TrainGraphCl): one
  /// obs::EpochRecord per epoch (run = "graphcl") plus checkpoint lifecycle
  /// events, so baseline training curves are comparable with SARN's from
  /// the same JSONL file. Measurement-only; does not perturb training.
  obs::MetricsSink* metrics_sink = nullptr;

  /// Step-plan engine mode (DESIGN.md §15), same semantics as
  /// core::TrainOptions::plan_mode: unset defers to SARN_PLAN, then off.
  /// Bitwise identical to the dynamic tape in every mode.
  std::optional<plan::PlanMode> plan_mode;
};

struct GraphClResult {
  tensor::Tensor embeddings;  // [n, embedding_dim]
  int epochs_run = 0;
  double final_loss = 0.0;
  double seconds = 0.0;
  /// Epochs restored from a checkpoint before this call trained (0 = fresh).
  int resumed_from_epoch = 0;
};

GraphClResult TrainGraphCl(const roadnet::RoadNetwork& network,
                           const GraphClConfig& config);

}  // namespace sarn::baselines

#endif  // SARN_BASELINES_GRAPHCL_H_
