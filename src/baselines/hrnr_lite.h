// HRNR baseline (Wu et al., KDD'20), reduced-scale reimplementation
// ("HrnrLite", DESIGN.md §3): a hierarchical supervised road-network
// encoder. Level 1 is a GAT over the segment graph; level 2 pools segments
// into grid zones, runs a GAT over the zone adjacency (zones connected when
// any topological edge crosses them), and broadcasts zone context back to
// the segments; a fusion layer produces the final embeddings. Unlike SARN,
// it is trained END-TO-END with each downstream task's supervision signal
// (the paper's "task-agnostic supervised" category), and its multi-level
// adjacency state is what makes it memory-hungry on large networks
// (Table 8: OOM on SF-L).

#ifndef SARN_BASELINES_HRNR_LITE_H_
#define SARN_BASELINES_HRNR_LITE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/embedding.h"
#include "nn/gat.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "roadnet/features.h"
#include "roadnet/road_network.h"
#include "tensor/tensor.h"

namespace sarn::baselines {

struct HrnrLiteConfig {
  uint64_t seed = 41;
  int64_t feature_dim_per_feature = 12;
  int64_t hidden_dim = 64;
  int64_t embedding_dim = 64;
  int gat_heads = 4;
  double zone_cell_meters = 900.0;
  /// Memory guard for the hierarchical adjacency state (paper: OOM on
  /// SF-L); 0 disables.
  int64_t memory_budget_bytes = 4LL * 1024 * 1024 * 1024;
};

/// Trainable end-to-end encoder. Construct, then optimise Parameters()
/// jointly with a task head against Forward() outputs.
class HrnrLite : public nn::Module {
 public:
  /// `network` must outlive the module.
  HrnrLite(const roadnet::RoadNetwork& network, HrnrLiteConfig config);

  /// True when the memory guard fired; Forward() must not be called then.
  bool out_of_memory() const { return out_of_memory_; }

  /// Segment embeddings [n, embedding_dim], gradient-tracked.
  tensor::Tensor Forward() const;

  std::vector<tensor::Tensor> Parameters() const override;

  int64_t embedding_dim() const { return config_.embedding_dim; }

 private:
  const roadnet::RoadNetwork* network_;
  HrnrLiteConfig config_;
  bool out_of_memory_ = false;
  roadnet::SegmentFeatures features_;
  std::vector<int64_t> zone_of_;
  int64_t num_zones_ = 0;
  tensor::Tensor zone_count_inverse_;  // [num_zones] 1/|zone| (0 if empty).
  nn::EdgeList segment_edges_;
  nn::EdgeList zone_edges_;
  std::unique_ptr<nn::FeatureEmbedding> feature_embedding_;
  std::unique_ptr<nn::GatLayer> segment_gat_;
  std::unique_ptr<nn::GatLayer> zone_gat_;
  std::unique_ptr<nn::Linear> fusion_;
};

}  // namespace sarn::baselines

#endif  // SARN_BASELINES_HRNR_LITE_H_
