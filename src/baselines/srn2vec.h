// SRN2Vec baseline (Wang et al., TIST'20), reimplemented from its proposal
// as the paper did (§5.1, no released code): an FFN is trained to predict,
// for a pair of road segments, (i) whether they are spatially close and
// (ii) whether they share the same road type; the learned per-segment
// embedding table is the road-network embedding. Spatial proximity only —
// no topology — the mirror image of node2vec's weakness.

#ifndef SARN_BASELINES_SRN2VEC_H_
#define SARN_BASELINES_SRN2VEC_H_

#include <cstdint>

#include "roadnet/road_network.h"
#include "tensor/tensor.h"

namespace sarn::baselines {

struct Srn2VecConfig {
  uint64_t seed = 31;
  int64_t dim = 64;
  /// Pairs within this distance are "close" positives.
  double close_radius_meters = 250.0;
  /// Random (mostly far) pairs per positive pair.
  int negatives_per_positive = 3;
  int pairs_per_epoch = 8192;
  int max_epochs = 12;
  int batch_size = 256;
  float learning_rate = 0.01f;
};

struct Srn2VecResult {
  tensor::Tensor embeddings;  // [n, dim]
  int epochs_run = 0;
  double final_loss = 0.0;
  double seconds = 0.0;
};

Srn2VecResult TrainSrn2Vec(const roadnet::RoadNetwork& network,
                           const Srn2VecConfig& config);

}  // namespace sarn::baselines

#endif  // SARN_BASELINES_SRN2VEC_H_
