#include "nn/rfn.h"

#include "common/check.h"
#include "tensor/ops.h"

namespace sarn::nn {
namespace {

using tensor::Tensor;

// Uniform-mean aggregation over a relation: for every destination vertex,
// the mean of its incoming sources' rows (softmax of constant scores =
// 1/deg per edge, the same trick GatLayer uses for its no-attention path).
// Vertices with no incoming edges of this relation get a zero row.
Tensor MeanAggregate(const Tensor& x, const EdgeList& edges, int64_t n) {
  int64_t e_count = static_cast<int64_t>(edges.size());
  Tensor alpha = tensor::EdgeSoftmax(Tensor::Zeros({e_count}), edges.dst, n);
  Tensor messages = tensor::ScaleRows(tensor::Rows(x, edges.src), alpha);
  return tensor::ScatterAddRows(messages, edges.dst, n);  // [n, d]
}

}  // namespace

RfnLayer::RfnLayer(int64_t in_dim, int64_t out_dim, Activation activation, Rng& rng)
    : self_(in_dim, out_dim, rng),
      topo_(in_dim, out_dim, rng, /*bias=*/false),
      spatial_(in_dim, out_dim, rng, /*bias=*/false),
      activation_(activation) {}

Tensor RfnLayer::Forward(const Tensor& x, const EdgeList& topo,
                         const EdgeList& spatial) const {
  SARN_CHECK_EQ(x.shape().size(), 2u);
  int64_t n = x.shape()[0];
  Tensor out = self_.Forward(x);
  if (topo.size() > 0) {
    out = tensor::Add(out, topo_.Forward(MeanAggregate(x, topo, n)));
  }
  if (spatial.size() > 0) {
    out = tensor::Add(out, spatial_.Forward(MeanAggregate(x, spatial, n)));
  }
  return Apply(activation_, out);
}

std::vector<Tensor> RfnLayer::Parameters() const {
  std::vector<Tensor> params = self_.Parameters();
  for (const Tensor& p : topo_.Parameters()) params.push_back(p);
  for (const Tensor& p : spatial_.Parameters()) params.push_back(p);
  return params;
}

RfnEncoder::RfnEncoder(int64_t in_dim, int64_t hidden_dim, int64_t out_dim,
                       int num_layers, Rng& rng) {
  SARN_CHECK_GE(num_layers, 1);
  int64_t in = in_dim;
  for (int l = 0; l < num_layers - 1; ++l) {
    layers_.emplace_back(in, hidden_dim, Activation::kElu, rng);
    in = hidden_dim;
  }
  layers_.emplace_back(in, out_dim, Activation::kNone, rng);
}

Tensor RfnEncoder::Forward(const Tensor& x, const EdgeList& topo,
                           const EdgeList& spatial) const {
  Tensor h = x;
  for (const RfnLayer& layer : layers_) h = layer.Forward(h, topo, spatial);
  return h;
}

std::vector<Tensor> RfnEncoder::Parameters() const {
  std::vector<Tensor> params;
  for (const RfnLayer& layer : layers_) {
    for (const Tensor& p : layer.Parameters()) params.push_back(p);
  }
  return params;
}

std::vector<Tensor> RfnEncoder::FinalLayerParameters() const {
  return layers_.back().Parameters();
}

}  // namespace sarn::nn
