// The nonlinear projection head of contrastive learning (paper Eq. 11):
// z = FC(ReLU(FC(h))), mapping encoder outputs [*, d] to the lower
// dimensional space [*, d_z] used only for loss computation.

#ifndef SARN_NN_PROJECTION_HEAD_H_
#define SARN_NN_PROJECTION_HEAD_H_

#include <vector>

#include "nn/linear.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace sarn::nn {

class ProjectionHead : public Module {
 public:
  ProjectionHead(int64_t in_dim, int64_t hidden_dim, int64_t out_dim, Rng& rng);

  tensor::Tensor Forward(const tensor::Tensor& h) const;

  std::vector<tensor::Tensor> Parameters() const override;

  int64_t out_dim() const { return fc2_.out_features(); }

 private:
  Linear fc1_;
  Linear fc2_;
};

}  // namespace sarn::nn

#endif  // SARN_NN_PROJECTION_HEAD_H_
