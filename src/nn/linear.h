// Dense layers: Linear, activation helpers and Ffn (multi-layer perceptron).

#ifndef SARN_NN_LINEAR_H_
#define SARN_NN_LINEAR_H_

#include <vector>

#include "nn/module.h"
#include "tensor/tensor.h"

namespace sarn::nn {

/// Supported nonlinearities for Ffn hidden layers.
enum class Activation { kNone, kRelu, kLeakyRelu, kElu, kSigmoid, kTanh };

/// Applies the chosen activation elementwise (autograd-tracked).
tensor::Tensor Apply(Activation activation, const tensor::Tensor& x);

/// y = x W + b with Glorot-uniform W. Input [m, in] -> output [m, out].
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng& rng, bool bias = true);

  tensor::Tensor Forward(const tensor::Tensor& x) const;

  std::vector<tensor::Tensor> Parameters() const override;

  int64_t in_features() const { return weight_.shape()[0]; }
  int64_t out_features() const { return weight_.shape()[1]; }

 private:
  tensor::Tensor weight_;  // [in, out]
  tensor::Tensor bias_;    // [out] or undefined
};

/// Feed-forward network: Linear -> act -> ... -> Linear. `layer_sizes` is
/// {in, hidden..., out}; the activation is applied between layers (not after
/// the last).
class Ffn : public Module {
 public:
  Ffn(const std::vector<int64_t>& layer_sizes, Activation activation, Rng& rng);

  tensor::Tensor Forward(const tensor::Tensor& x) const;

  std::vector<tensor::Tensor> Parameters() const override;

  size_t num_layers() const { return layers_.size(); }

 private:
  std::vector<Linear> layers_;
  Activation activation_;
};

}  // namespace sarn::nn

#endif  // SARN_NN_LINEAR_H_
