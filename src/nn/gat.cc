#include "nn/gat.h"

#include "common/check.h"
#include "obs/trace.h"
#include "tensor/ops.h"

namespace sarn::nn {

using tensor::Tensor;

const EdgeList& EdgeList::WithSelfLoops(int64_t num_vertices) const {
  if (!self_loop_cache_ || cached_vertices_ != num_vertices ||
      cached_edges_ != src.size()) {
    auto augmented = std::make_shared<EdgeList>();
    augmented->src.reserve(src.size() + static_cast<size_t>(num_vertices));
    augmented->dst.reserve(dst.size() + static_cast<size_t>(num_vertices));
    augmented->src = src;
    augmented->dst = dst;
    for (int64_t v = 0; v < num_vertices; ++v) augmented->Add(v, v);
    self_loop_cache_ = std::move(augmented);
    cached_vertices_ = num_vertices;
    cached_edges_ = src.size();
  }
  return *self_loop_cache_;
}

GatLayer::GatLayer(int64_t in_dim, int64_t head_dim, int num_heads, bool concat_heads,
                   Activation activation, Rng& rng, float leaky_relu_slope,
                   bool add_self_loops, bool residual, bool use_attention)
    : head_dim_(head_dim),
      num_heads_(num_heads),
      concat_heads_(concat_heads),
      activation_(activation),
      leaky_relu_slope_(leaky_relu_slope),
      add_self_loops_(add_self_loops),
      use_attention_(use_attention) {
  SARN_CHECK_GT(head_dim, 0);
  SARN_CHECK_GT(num_heads, 0);
  for (int h = 0; h < num_heads; ++h) {
    weight_.push_back(Tensor::GlorotUniform(in_dim, head_dim, rng).RequiresGrad());
    att_src_.push_back(Tensor::GlorotUniform(head_dim, 1, rng).RequiresGrad());
    att_dst_.push_back(Tensor::GlorotUniform(head_dim, 1, rng).RequiresGrad());
  }
  if (residual) {
    residual_weight_ = Tensor::GlorotUniform(in_dim, output_dim(), rng).RequiresGrad();
  }
}

Tensor GatLayer::Forward(const Tensor& x, const EdgeList& edges) const {
  SARN_TRACE_SPAN("gat_layer_forward");
  SARN_CHECK_EQ(x.rank(), 2);
  int64_t n = x.shape()[0];
  // Self-loops make every vertex attend to itself; without them isolated
  // vertices (possible after aggressive augmentation) would emit zeros. The
  // augmented list is cached on the EdgeList, so a whole encoder stack (and
  // repeated Forward calls on the same view) builds it once.
  const EdgeList& graph = add_self_loops_ ? edges.WithSelfLoops(n) : edges;
  const std::vector<int64_t>& src = graph.src;
  const std::vector<int64_t>& dst = graph.dst;
  int64_t e_count = static_cast<int64_t>(src.size());

  // Fused per-head projection: one [n, in] x [in, num_heads * head_dim]
  // matmul instead of num_heads separate ones — the wide kernel amortises
  // dispatch and keeps x in cache across heads. Concat is differentiable,
  // so each head's weight still receives its own gradient slice.
  Tensor wx_all = num_heads_ == 1 ? tensor::MatMul(x, weight_[0])
                                  : tensor::MatMul(x, tensor::Concat(weight_, 1));

  // With grad recording off (serving, momentum-encoder passes) the per-edge
  // gather/scale/scatter chain collapses into fused kernels that skip the
  // [E, d] intermediates entirely; values stay bitwise identical to the op
  // path because the fused loops apply the same float operation order.
  // With grad recording on, the plan executor can request the differentiable
  // fusions instead (one tape node per chain, bitwise-identical gradients).
  const bool fused_inference = !tensor::GradModeEnabled();
  const bool fused_grad = !fused_inference && tensor::GradFusionEnabled();

  // Footnote-1 ablation: softmax of constant scores = uniform mean over each
  // vertex's incoming edges; identical for every head, so computed once.
  Tensor uniform_alpha;
  if (!use_attention_) {
    uniform_alpha = tensor::EdgeSoftmax(Tensor::Zeros({e_count}), dst, n);
  }

  std::vector<Tensor> head_outputs;
  head_outputs.reserve(num_heads_);
  for (int h = 0; h < num_heads_; ++h) {
    Tensor wx = num_heads_ == 1
                    ? wx_all
                    : tensor::ColsRange(wx_all, h * head_dim_, head_dim_);  // [n, head_dim]
    Tensor alpha;
    if (use_attention_) {
      Tensor score_src = tensor::MatMul(wx, att_src_[h]);  // [n, 1]
      Tensor score_dst = tensor::MatMul(wx, att_dst_[h]);  // [n, 1]
      if (fused_inference) {
        alpha = tensor::EdgeSoftmax(
            tensor::FusedEdgeScores(score_src, score_dst, src, dst, leaky_relu_slope_),
            dst, n);
      } else if (fused_grad) {
        alpha = tensor::EdgeSoftmax(tensor::FusedEdgeScoreActivate(
                                        score_src, score_dst, src, dst, leaky_relu_slope_),
                                    dst, n);
      } else {
        Tensor e = tensor::LeakyRelu(
            tensor::Add(tensor::Rows(score_dst, dst), tensor::Rows(score_src, src)),
            leaky_relu_slope_);  // [E, 1]
        alpha = tensor::EdgeSoftmax(tensor::Reshape(e, {e_count}), dst, n);
      }
    } else {
      alpha = uniform_alpha;
    }
    if (fused_inference) {
      head_outputs.push_back(tensor::FusedGatherScaleScatter(wx, src, dst, alpha, n));
    } else if (fused_grad) {
      head_outputs.push_back(
          tensor::ScaleScatterRows(tensor::Rows(wx, src), alpha, dst, n));
    } else {
      Tensor messages = tensor::ScaleRows(tensor::Rows(wx, src), alpha);
      head_outputs.push_back(tensor::ScatterAddRows(messages, dst, n));  // [n, head_dim]
    }
  }

  Tensor combined;
  if (concat_heads_) {
    combined = num_heads_ == 1 ? head_outputs[0] : tensor::Concat(head_outputs, 1);
  } else {
    combined = head_outputs[0];
    for (int h = 1; h < num_heads_; ++h) combined = tensor::Add(combined, head_outputs[h]);
    combined = tensor::MulScalar(combined, 1.0f / static_cast<float>(num_heads_));
  }
  if (residual_weight_.defined()) {
    combined = tensor::Add(combined, tensor::MatMul(x, residual_weight_));
  }
  return Apply(activation_, combined);
}

std::vector<Tensor> GatLayer::Parameters() const {
  std::vector<Tensor> params;
  for (int h = 0; h < num_heads_; ++h) {
    params.push_back(weight_[h]);
    params.push_back(att_src_[h]);
    params.push_back(att_dst_[h]);
  }
  if (residual_weight_.defined()) params.push_back(residual_weight_);
  return params;
}

GatEncoder::GatEncoder(int64_t in_dim, int64_t hidden_dim, int64_t out_dim,
                       int num_layers, int num_heads, Rng& rng, bool use_attention) {
  SARN_CHECK_GE(num_layers, 1);
  SARN_CHECK_EQ(hidden_dim % num_heads, 0)
      << "hidden_dim " << hidden_dim << " not divisible by heads " << num_heads;
  int64_t head_dim = hidden_dim / num_heads;
  int64_t current = in_dim;
  for (int layer = 0; layer + 1 < num_layers; ++layer) {
    layers_.emplace_back(current, head_dim, num_heads, /*concat_heads=*/true,
                         Activation::kElu, rng, 0.2f, /*add_self_loops=*/true,
                         /*residual=*/true, use_attention);
    current = hidden_dim;
  }
  // Final layer: average heads, no activation (its output is the embedding).
  layers_.emplace_back(current, out_dim, num_heads, /*concat_heads=*/false,
                       Activation::kNone, rng, 0.2f, /*add_self_loops=*/true,
                       /*residual=*/true, use_attention);
}

Tensor GatEncoder::Forward(const Tensor& x, const EdgeList& edges) const {
  SARN_TRACE_SPAN("gat_forward");
  Tensor h = x;
  for (const GatLayer& layer : layers_) h = layer.Forward(h, edges);
  return h;
}

std::vector<Tensor> GatEncoder::Parameters() const {
  std::vector<Tensor> params;
  for (const GatLayer& layer : layers_) {
    for (const Tensor& p : layer.Parameters()) params.push_back(p);
  }
  return params;
}

std::vector<Tensor> GatEncoder::FinalLayerParameters() const {
  return layers_.back().Parameters();
}

}  // namespace sarn::nn
