#include "nn/gat.h"

#include "common/check.h"
#include "tensor/ops.h"

namespace sarn::nn {

using tensor::Tensor;

GatLayer::GatLayer(int64_t in_dim, int64_t head_dim, int num_heads, bool concat_heads,
                   Activation activation, Rng& rng, float leaky_relu_slope,
                   bool add_self_loops, bool residual, bool use_attention)
    : head_dim_(head_dim),
      num_heads_(num_heads),
      concat_heads_(concat_heads),
      activation_(activation),
      leaky_relu_slope_(leaky_relu_slope),
      add_self_loops_(add_self_loops),
      use_attention_(use_attention) {
  SARN_CHECK_GT(head_dim, 0);
  SARN_CHECK_GT(num_heads, 0);
  for (int h = 0; h < num_heads; ++h) {
    weight_.push_back(Tensor::GlorotUniform(in_dim, head_dim, rng).RequiresGrad());
    att_src_.push_back(Tensor::GlorotUniform(head_dim, 1, rng).RequiresGrad());
    att_dst_.push_back(Tensor::GlorotUniform(head_dim, 1, rng).RequiresGrad());
  }
  if (residual) {
    residual_weight_ = Tensor::GlorotUniform(in_dim, output_dim(), rng).RequiresGrad();
  }
}

Tensor GatLayer::Forward(const Tensor& x, const EdgeList& edges) const {
  SARN_CHECK_EQ(x.rank(), 2);
  int64_t n = x.shape()[0];
  // Self-loops make every vertex attend to itself; without them isolated
  // vertices (possible after aggressive augmentation) would emit zeros.
  const std::vector<int64_t>* src = &edges.src;
  const std::vector<int64_t>* dst = &edges.dst;
  std::vector<int64_t> src_aug, dst_aug;
  if (add_self_loops_) {
    src_aug = edges.src;
    dst_aug = edges.dst;
    src_aug.reserve(src_aug.size() + n);
    dst_aug.reserve(dst_aug.size() + n);
    for (int64_t v = 0; v < n; ++v) {
      src_aug.push_back(v);
      dst_aug.push_back(v);
    }
    src = &src_aug;
    dst = &dst_aug;
  }
  int64_t e_count = static_cast<int64_t>(src->size());

  std::vector<Tensor> head_outputs;
  head_outputs.reserve(num_heads_);
  for (int h = 0; h < num_heads_; ++h) {
    Tensor wx = tensor::MatMul(x, weight_[h]);  // [n, head_dim]
    Tensor alpha;
    if (use_attention_) {
      Tensor score_src = tensor::MatMul(wx, att_src_[h]);  // [n, 1]
      Tensor score_dst = tensor::MatMul(wx, att_dst_[h]);  // [n, 1]
      Tensor e = tensor::LeakyRelu(
          tensor::Add(tensor::Rows(score_dst, *dst), tensor::Rows(score_src, *src)),
          leaky_relu_slope_);  // [E, 1]
      alpha = tensor::EdgeSoftmax(tensor::Reshape(e, {e_count}), *dst, n);
    } else {
      // Footnote-1 ablation: softmax of constant scores = uniform mean over
      // each vertex's incoming edges.
      alpha = tensor::EdgeSoftmax(Tensor::Zeros({e_count}), *dst, n);
    }
    Tensor messages = tensor::ScaleRows(tensor::Rows(wx, *src), alpha);
    head_outputs.push_back(tensor::ScatterAddRows(messages, *dst, n));  // [n, head_dim]
  }

  Tensor combined;
  if (concat_heads_) {
    combined = num_heads_ == 1 ? head_outputs[0] : tensor::Concat(head_outputs, 1);
  } else {
    combined = head_outputs[0];
    for (int h = 1; h < num_heads_; ++h) combined = tensor::Add(combined, head_outputs[h]);
    combined = tensor::MulScalar(combined, 1.0f / static_cast<float>(num_heads_));
  }
  if (residual_weight_.defined()) {
    combined = tensor::Add(combined, tensor::MatMul(x, residual_weight_));
  }
  return Apply(activation_, combined);
}

std::vector<Tensor> GatLayer::Parameters() const {
  std::vector<Tensor> params;
  for (int h = 0; h < num_heads_; ++h) {
    params.push_back(weight_[h]);
    params.push_back(att_src_[h]);
    params.push_back(att_dst_[h]);
  }
  if (residual_weight_.defined()) params.push_back(residual_weight_);
  return params;
}

GatEncoder::GatEncoder(int64_t in_dim, int64_t hidden_dim, int64_t out_dim,
                       int num_layers, int num_heads, Rng& rng, bool use_attention) {
  SARN_CHECK_GE(num_layers, 1);
  SARN_CHECK_EQ(hidden_dim % num_heads, 0)
      << "hidden_dim " << hidden_dim << " not divisible by heads " << num_heads;
  int64_t head_dim = hidden_dim / num_heads;
  int64_t current = in_dim;
  for (int layer = 0; layer + 1 < num_layers; ++layer) {
    layers_.emplace_back(current, head_dim, num_heads, /*concat_heads=*/true,
                         Activation::kElu, rng, 0.2f, /*add_self_loops=*/true,
                         /*residual=*/true, use_attention);
    current = hidden_dim;
  }
  // Final layer: average heads, no activation (its output is the embedding).
  layers_.emplace_back(current, out_dim, num_heads, /*concat_heads=*/false,
                       Activation::kNone, rng, 0.2f, /*add_self_loops=*/true,
                       /*residual=*/true, use_attention);
}

Tensor GatEncoder::Forward(const Tensor& x, const EdgeList& edges) const {
  Tensor h = x;
  for (const GatLayer& layer : layers_) h = layer.Forward(h, edges);
  return h;
}

std::vector<Tensor> GatEncoder::Parameters() const {
  std::vector<Tensor> params;
  for (const GatLayer& layer : layers_) {
    for (const Tensor& p : layer.Parameters()) params.push_back(p);
  }
  return params;
}

std::vector<Tensor> GatEncoder::FinalLayerParameters() const {
  return layers_.back().Parameters();
}

}  // namespace sarn::nn
