// Batched GRU embedding of variable-length id sequences.
//
// Trajectories are sequences of road-segment ids of varying length; a GRU
// cannot batch different lengths directly, and padding would corrupt the
// final state. EmbedSequences groups sequences of equal length, runs each
// group as one batch, and reassembles the results in input order — all
// within a single autograd graph (gradients flow into `item_embeddings`
// when it requires grad).

#ifndef SARN_NN_SEQUENCE_UTIL_H_
#define SARN_NN_SEQUENCE_UTIL_H_

#include <cstdint>
#include <vector>

#include "nn/gru.h"
#include "tensor/tensor.h"

namespace sarn::nn {

/// item_embeddings: [n, d]; sequences: ids into its rows (each non-empty).
/// Returns [num_sequences, gru.hidden_dim()], row i = embedding of
/// sequences[i].
tensor::Tensor EmbedSequences(const Gru& gru, const tensor::Tensor& item_embeddings,
                              const std::vector<std::vector<int64_t>>& sequences);

}  // namespace sarn::nn

#endif  // SARN_NN_SEQUENCE_UTIL_H_
