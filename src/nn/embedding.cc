#include "nn/embedding.h"

#include "common/check.h"
#include "tensor/ops.h"

namespace sarn::nn {

using tensor::Tensor;

Embedding::Embedding(int64_t num_entries, int64_t dim, Rng& rng) {
  SARN_CHECK_GT(num_entries, 0);
  SARN_CHECK_GT(dim, 0);
  // Small Gaussian init (word2vec-style).
  table_ = Tensor::Randn({num_entries, dim}, rng, 0.1f);
  table_.RequiresGrad();
}

Tensor Embedding::Forward(const std::vector<int64_t>& ids) const {
  return tensor::Rows(table_, ids);
}

std::vector<Tensor> Embedding::Parameters() const { return {table_}; }

FeatureEmbedding::FeatureEmbedding(const std::vector<int64_t>& vocab_sizes,
                                   const std::vector<int64_t>& dims, Rng& rng) {
  SARN_CHECK_EQ(vocab_sizes.size(), dims.size());
  SARN_CHECK(!vocab_sizes.empty());
  for (size_t f = 0; f < vocab_sizes.size(); ++f) {
    tables_.emplace_back(vocab_sizes[f], dims[f], rng);
    output_dim_ += dims[f];
  }
}

Tensor FeatureEmbedding::Forward(const std::vector<std::vector<int64_t>>& ids) const {
  SARN_CHECK_EQ(ids.size(), tables_.size());
  std::vector<Tensor> parts;
  parts.reserve(tables_.size());
  for (size_t f = 0; f < tables_.size(); ++f) {
    SARN_CHECK_EQ(ids[f].size(), ids[0].size());
    parts.push_back(tables_[f].Forward(ids[f]));
  }
  return tensor::Concat(parts, /*axis=*/1);
}

std::vector<Tensor> FeatureEmbedding::Parameters() const {
  std::vector<Tensor> params;
  for (const Embedding& table : tables_) params.push_back(table.table());
  return params;
}

}  // namespace sarn::nn
