// Embedding table and the paper's per-feature road-segment input embedding.

#ifndef SARN_NN_EMBEDDING_H_
#define SARN_NN_EMBEDDING_H_

#include <vector>

#include "nn/module.h"
#include "tensor/tensor.h"

namespace sarn::nn {

/// A learnable lookup table [num_entries, dim]; Forward gathers rows for the
/// given ids (equivalent to one-hot * linear, as the paper describes, but
/// without materialising the one-hot vectors).
class Embedding : public Module {
 public:
  Embedding(int64_t num_entries, int64_t dim, Rng& rng);

  tensor::Tensor Forward(const std::vector<int64_t>& ids) const;

  std::vector<tensor::Tensor> Parameters() const override;

  int64_t num_entries() const { return table_.shape()[0]; }
  int64_t dim() const { return table_.shape()[1]; }
  const tensor::Tensor& table() const { return table_; }

 private:
  tensor::Tensor table_;
};

/// The paper's feature embedding layer (§4.3): each of the seven road-segment
/// feature values (type id, plus discretised length, radian, and the four
/// endpoint coordinates) is mapped through its own embedding table; the
/// per-feature outputs are concatenated into one vector of size
/// sum(feature_dims).
///
/// Inputs arrive as pre-discretised bin ids per feature (see
/// roadnet::SegmentFeaturizer), shaped feature-major:
/// ids[f][r] = bin id of feature f for row r.
class FeatureEmbedding : public Module {
 public:
  /// `vocab_sizes[f]` is the bin count of feature f; `dims[f]` its embedding
  /// width. Both must have the same length.
  FeatureEmbedding(const std::vector<int64_t>& vocab_sizes,
                   const std::vector<int64_t>& dims, Rng& rng);

  /// ids must contain one id-vector per feature, all of equal length m.
  /// Returns [m, sum(dims)].
  tensor::Tensor Forward(const std::vector<std::vector<int64_t>>& ids) const;

  std::vector<tensor::Tensor> Parameters() const override;

  int64_t output_dim() const { return output_dim_; }
  size_t num_features() const { return tables_.size(); }

 private:
  std::vector<Embedding> tables_;
  int64_t output_dim_ = 0;
};

}  // namespace sarn::nn

#endif  // SARN_NN_EMBEDDING_H_
