// Parameter checkpointing: save/load a module's parameter list to a compact
// binary file. The format is positional — parameters are written in
// Parameters() order — so a checkpoint can only be restored into the same
// architecture, which is validated by shape at load time.
//
// Format: magic "SARNW1\n", int64 count, then per tensor: int64 rank,
// int64 dims..., float32 data (little-endian host order).

#ifndef SARN_NN_SERIALIZATION_H_
#define SARN_NN_SERIALIZATION_H_

#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace sarn::nn {

/// Writes the tensors to `path`. Returns false on I/O failure.
bool SaveParameters(const std::string& path, const std::vector<tensor::Tensor>& params);

/// Restores values into `params` (shapes must match the file exactly).
/// Returns false on I/O failure, magic/shape mismatch or truncation.
bool LoadParameters(const std::string& path, const std::vector<tensor::Tensor>& params);

}  // namespace sarn::nn

#endif  // SARN_NN_SERIALIZATION_H_
