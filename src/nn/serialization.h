// Checkpointing.
//
// Two formats live here:
//
// 1. Parameter snapshots (SaveParameters/LoadParameters): save/load a
//    module's parameter list to a compact binary file. The format is
//    positional — parameters are written in Parameters() order — so a
//    snapshot can only be restored into the same architecture, which is
//    validated by shape at load time.
//    Layout: magic "SARNW1\n", int64 count, then per tensor: int64 rank,
//    int64 dims..., float32 data (little-endian host order).
//
// 2. Training checkpoints (SaveCheckpoint/LoadCheckpoint): a versioned,
//    CRC-checked container of named binary sections, used by the
//    crash-safe trainers to capture *all* training state (model + momentum
//    parameters, optimizer moments, schedule position, RNG streams,
//    negative queues, trainer progress) so a resumed run continues the
//    interrupted one bitwise.
//    Layout:
//      magic   "SARNCK1\n"                      (8 bytes)
//      version u32                               (kCheckpointVersion)
//      size    u64                               (payload byte count)
//      payload u32 section count, then per section: string name (u64 length
//              + bytes), string body
//      crc     u32                               (CRC-32 of the payload)
//    Writers publish atomically: the file is written to "<path>.tmp" and
//    renamed over <path>, so a reader never observes a half-written
//    checkpoint under POSIX rename semantics. Loaders verify magic, version,
//    declared size and CRC before parsing, and report each failure mode as a
//    distinct CheckpointError so corrupt files are skipped with a precise
//    diagnostic instead of crashing or half-loading.

#ifndef SARN_NN_SERIALIZATION_H_
#define SARN_NN_SERIALIZATION_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/binary_io.h"
#include "tensor/tensor.h"

namespace sarn::nn {

/// Writes the tensors to `path`. Returns false on I/O failure (logged).
bool SaveParameters(const std::string& path, const std::vector<tensor::Tensor>& params);

/// Restores values into `params` (shapes must match the file exactly).
/// Returns false on I/O failure, magic/shape mismatch or truncation.
bool LoadParameters(const std::string& path, const std::vector<tensor::Tensor>& params);

// --- Training checkpoints ----------------------------------------------------

inline constexpr uint32_t kCheckpointVersion = 1;

/// Why a checkpoint failed to save or load. Each corruption mode maps to its
/// own code so callers (and tests) can tell a torn file from a bit flip from
/// an architecture mismatch.
enum class CheckpointError {
  kOk = 0,
  kIoError,        // Cannot open/read/write/rename the file.
  kBadMagic,       // Not a checkpoint file.
  kBadVersion,     // A checkpoint, but a version this build cannot read.
  kTruncated,      // File shorter than the header's declared payload size.
  kCrcMismatch,    // Payload bytes corrupted (e.g. a flipped bit).
  kMalformed,      // CRC passed but the section structure does not parse.
  kShapeMismatch,  // Tensor payload does not match the target architecture.
};

const char* CheckpointErrorName(CheckpointError error);

struct CheckpointStatus {
  CheckpointError error = CheckpointError::kOk;
  std::string message;

  bool ok() const { return error == CheckpointError::kOk; }
  static CheckpointStatus Ok() { return {}; }
  static CheckpointStatus Fail(CheckpointError error, std::string message) {
    return {error, std::move(message)};
  }
};

/// An ordered set of named binary sections; each subsystem serialises itself
/// into one section with a ByteWriter.
struct TrainingCheckpoint {
  std::vector<std::pair<std::string, std::string>> sections;

  void SetSection(const std::string& name, std::string body);
  /// nullptr when absent.
  const std::string* FindSection(const std::string& name) const;
};

/// Atomically writes the checkpoint ("<path>.tmp" then rename).
CheckpointStatus SaveCheckpoint(const std::string& path, const TrainingCheckpoint& ckpt);

/// Reads and fully validates (magic, version, size, CRC) a checkpoint.
/// `*ckpt` is only modified on success.
CheckpointStatus LoadCheckpoint(const std::string& path, TrainingCheckpoint* ckpt);

/// Serialises a tensor list (shapes + values) into `out`; the counterpart of
/// ReadTensorsInto.
void WriteTensors(ByteWriter& out, const std::vector<tensor::Tensor>& tensors);

/// Two-phase restore of a tensor list written by WriteTensors: every tensor
/// is parsed and shape-checked against `tensors` before ANY value is
/// written, so a mismatch never leaves the targets half-loaded.
CheckpointStatus ReadTensorsInto(ByteReader& in, const std::vector<tensor::Tensor>& tensors);

/// Parse-only half of ReadTensorsInto: validates count and shapes against
/// `like` and fills `staged` with one value buffer per tensor, without
/// touching `like`. Lets a caller stage several tensor groups and commit
/// them together (whole-model atomic resume).
CheckpointStatus ParseTensors(ByteReader& in, const std::vector<tensor::Tensor>& like,
                              std::vector<std::vector<float>>* staged);

// --- Checkpoint directories --------------------------------------------------
// Trainers keep rolling checkpoints "ckpt_<epoch>.sarnckpt" in a directory;
// these helpers implement the naming, newest-first discovery and keep-last-K
// rotation shared by SarnModel and the baselines.

/// "ckpt_000042.sarnckpt" for epoch 42 (zero-padded so names sort).
std::string CheckpointFileName(int epoch);

/// All checkpoint files in `dir` as (epoch, full path), newest epoch first.
/// Missing or unreadable directories yield an empty list.
std::vector<std::pair<int, std::string>> ListCheckpoints(const std::string& dir);

/// Deletes all but the `keep_last` newest checkpoint files in `dir`.
void PruneCheckpoints(const std::string& dir, int keep_last);

}  // namespace sarn::nn

#endif  // SARN_NN_SERIALIZATION_H_
