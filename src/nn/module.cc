#include "nn/module.h"

#include "common/check.h"

namespace sarn::nn {

void Module::CopyWeightsFrom(const Module& other) {
  std::vector<tensor::Tensor> dst = Parameters();
  std::vector<tensor::Tensor> src = other.Parameters();
  SARN_CHECK_EQ(dst.size(), src.size());
  for (size_t i = 0; i < dst.size(); ++i) {
    SARN_CHECK_EQ(dst[i].numel(), src[i].numel());
    dst[i].mutable_data().CopyFrom(src[i].data());
  }
}

int64_t Module::NumParameters() const {
  int64_t total = 0;
  for (const tensor::Tensor& p : Parameters()) total += p.numel();
  return total;
}

void MomentumUpdate(const std::vector<tensor::Tensor>& target,
                    const std::vector<tensor::Tensor>& source, float momentum) {
  SARN_CHECK_EQ(target.size(), source.size());
  SARN_CHECK(momentum >= 0.0f && momentum <= 1.0f) << momentum;
  for (size_t i = 0; i < target.size(); ++i) {
    SARN_CHECK_EQ(target[i].numel(), source[i].numel());
    tensor::Storage& t = const_cast<tensor::Tensor&>(target[i]).mutable_data();
    const tensor::Storage& s = source[i].data();
    for (size_t j = 0; j < t.size(); ++j) {
      t[j] = momentum * t[j] + (1.0f - momentum) * s[j];
    }
  }
}

}  // namespace sarn::nn
