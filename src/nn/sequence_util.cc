#include "nn/sequence_util.h"

#include <map>

#include "common/check.h"
#include "tensor/ops.h"

namespace sarn::nn {

using tensor::Tensor;

Tensor EmbedSequences(const Gru& gru, const Tensor& item_embeddings,
                      const std::vector<std::vector<int64_t>>& sequences) {
  SARN_CHECK(!sequences.empty());
  std::map<size_t, std::vector<size_t>> by_length;  // length -> sequence indices.
  for (size_t i = 0; i < sequences.size(); ++i) {
    SARN_CHECK(!sequences[i].empty()) << "sequence " << i;
    by_length[sequences[i].size()].push_back(i);
  }

  std::vector<Tensor> group_outputs;
  std::vector<size_t> group_order;  // Original index of each produced row.
  for (const auto& [length, members] : by_length) {
    std::vector<Tensor> steps;
    steps.reserve(length);
    for (size_t t = 0; t < length; ++t) {
      std::vector<int64_t> ids;
      ids.reserve(members.size());
      for (size_t m : members) ids.push_back(sequences[m][t]);
      steps.push_back(tensor::Rows(item_embeddings, ids));
    }
    group_outputs.push_back(gru.Forward(steps));  // [|members|, hidden]
    for (size_t m : members) group_order.push_back(m);
  }

  Tensor stacked =
      group_outputs.size() == 1 ? group_outputs[0] : tensor::Concat(group_outputs, 0);
  // Reorder rows back to the input order: row r of the result must be the
  // stacked row holding sequence r.
  std::vector<int64_t> perm(sequences.size());
  for (size_t pos = 0; pos < group_order.size(); ++pos) {
    perm[group_order[pos]] = static_cast<int64_t>(pos);
  }
  return tensor::Rows(stacked, perm);
}

}  // namespace sarn::nn
