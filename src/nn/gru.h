// Gated recurrent units, used by the trajectory-similarity downstream task
// (paper §5.2.2: a 2-layer GRU over frozen road-segment embeddings) and by
// the NEUTRAJ-lite baseline.

#ifndef SARN_NN_GRU_H_
#define SARN_NN_GRU_H_

#include <vector>

#include "nn/module.h"
#include "tensor/tensor.h"

namespace sarn::nn {

/// A single GRU cell:
///   z = sigmoid(x W_z + h U_z + b_z)
///   r = sigmoid(x W_r + h U_r + b_r)
///   n = tanh(x W_n + (r * h) U_n + b_n)
///   h' = (1 - z) * n + z * h
class GruCell : public Module {
 public:
  GruCell(int64_t input_dim, int64_t hidden_dim, Rng& rng);

  /// x: [batch, input_dim], h: [batch, hidden_dim] -> new h.
  tensor::Tensor Forward(const tensor::Tensor& x, const tensor::Tensor& h) const;

  /// Zero initial state for a batch.
  tensor::Tensor InitialState(int64_t batch) const;

  std::vector<tensor::Tensor> Parameters() const override;

  int64_t hidden_dim() const { return hidden_dim_; }
  int64_t input_dim() const { return input_dim_; }

 private:
  int64_t input_dim_;
  int64_t hidden_dim_;
  tensor::Tensor w_z_, u_z_, b_z_;
  tensor::Tensor w_r_, u_r_, b_r_;
  tensor::Tensor w_n_, u_n_, b_n_;
};

/// A (possibly multi-layer) unidirectional GRU. Forward consumes a sequence
/// of [batch, input_dim] steps and returns the final hidden state of the last
/// layer — the trajectory embedding in task 2.
class Gru : public Module {
 public:
  Gru(int64_t input_dim, int64_t hidden_dim, int num_layers, Rng& rng);

  /// steps[t]: [batch, input_dim]; returns [batch, hidden_dim].
  tensor::Tensor Forward(const std::vector<tensor::Tensor>& steps) const;

  /// Like Forward but also returns each timestep's top-layer hidden state.
  std::vector<tensor::Tensor> ForwardAllSteps(
      const std::vector<tensor::Tensor>& steps) const;

  std::vector<tensor::Tensor> Parameters() const override;

  int64_t hidden_dim() const { return cells_.back().hidden_dim(); }

 private:
  std::vector<GruCell> cells_;
};

}  // namespace sarn::nn

#endif  // SARN_NN_GRU_H_
