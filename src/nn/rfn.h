// Relational fusion encoder, after Relational Fusion Networks (Jepsen et
// al., arXiv 2006.09030): road networks carry more than one edge relation,
// and aggregating each relation separately — then fusing — beats flattening
// them into a single adjacency.
//
// Each layer computes three terms over the input representations h:
//   self:     h W_self
//   topo:     mean over incoming topological edges of h_src, then W_topo
//   spatial:  mean over incident spatial edges of h_src, then W_spatial
// and fuses them by summation followed by the activation. A relation with no
// edges in the current view contributes nothing (its term is skipped), so
// the encoder degrades gracefully to a topology-only or self-only network.
// This is the "node-relational" half of the RFN recipe, sized to be a
// drop-in head-to-head against the GAT encoder over A^s + A^t.

#ifndef SARN_NN_RFN_H_
#define SARN_NN_RFN_H_

#include <cstdint>
#include <vector>

#include "nn/gat.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace sarn::nn {

/// One relational fusion layer: out = act(self(h) + topo(agg_t) + spat(agg_s)).
class RfnLayer : public Module {
 public:
  RfnLayer(int64_t in_dim, int64_t out_dim, Activation activation, Rng& rng);

  /// x: [n, in_dim]; `topo` aggregates src -> dst with uniform mean per dst,
  /// `spatial` likewise (callers pass both directions of undirected spatial
  /// edges). Either list may be empty.
  tensor::Tensor Forward(const tensor::Tensor& x, const EdgeList& topo,
                         const EdgeList& spatial) const;

  std::vector<tensor::Tensor> Parameters() const override;

  int64_t output_dim() const { return self_.out_features(); }

 private:
  Linear self_;
  Linear topo_;
  Linear spatial_;
  Activation activation_;
};

/// A stack of RfnLayers: `num_layers - 1` ELU layers of width `hidden_dim`,
/// then one linear layer to `out_dim` (mirrors GatEncoder's depth layout).
class RfnEncoder : public Module {
 public:
  RfnEncoder(int64_t in_dim, int64_t hidden_dim, int64_t out_dim, int num_layers,
             Rng& rng);

  tensor::Tensor Forward(const tensor::Tensor& x, const EdgeList& topo,
                         const EdgeList& spatial) const;

  std::vector<tensor::Tensor> Parameters() const override;

  /// Parameters of the final layer only (SARN* fine-tunes just this layer).
  std::vector<tensor::Tensor> FinalLayerParameters() const;

  int64_t out_dim() const { return layers_.back().output_dim(); }
  size_t num_layers() const { return layers_.size(); }

 private:
  std::vector<RfnLayer> layers_;
};

}  // namespace sarn::nn

#endif  // SARN_NN_RFN_H_
