// Base interface for neural-network modules.

#ifndef SARN_NN_MODULE_H_
#define SARN_NN_MODULE_H_

#include <vector>

#include "tensor/tensor.h"

namespace sarn::nn {

/// A trainable component owning parameter tensors. Parameters() returns the
/// full flattened list (own + children) in a deterministic order, which is
/// what optimizers, the momentum update and weight copying rely on.
class Module {
 public:
  virtual ~Module() = default;

  virtual std::vector<tensor::Tensor> Parameters() const = 0;

  /// Copies parameter *values* from another module of identical architecture
  /// (same parameter list shapes, in order).
  void CopyWeightsFrom(const Module& other);

  /// Total number of scalar parameters.
  int64_t NumParameters() const;
};

/// MoCo-style momentum update (paper Eq. 12): for every parameter pair,
/// target = m * target + (1 - m) * source. Both lists must align.
void MomentumUpdate(const std::vector<tensor::Tensor>& target,
                    const std::vector<tensor::Tensor>& source, float momentum);

}  // namespace sarn::nn

#endif  // SARN_NN_MODULE_H_
