#include "nn/projection_head.h"

#include "tensor/ops.h"

namespace sarn::nn {

ProjectionHead::ProjectionHead(int64_t in_dim, int64_t hidden_dim, int64_t out_dim,
                               Rng& rng)
    : fc1_(in_dim, hidden_dim, rng), fc2_(hidden_dim, out_dim, rng) {}

tensor::Tensor ProjectionHead::Forward(const tensor::Tensor& h) const {
  return fc2_.Forward(tensor::Relu(fc1_.Forward(h)));
}

std::vector<tensor::Tensor> ProjectionHead::Parameters() const {
  std::vector<tensor::Tensor> params = fc1_.Parameters();
  for (const tensor::Tensor& p : fc2_.Parameters()) params.push_back(p);
  return params;
}

}  // namespace sarn::nn
