#include "nn/losses.h"

#include "common/check.h"
#include "tensor/ops.h"

namespace sarn::nn {

using tensor::Tensor;

Tensor MseLoss(const Tensor& prediction, const Tensor& target) {
  return tensor::Mean(tensor::Square(tensor::Sub(prediction, target)));
}

Tensor L1Loss(const Tensor& prediction, const Tensor& target) {
  return tensor::Mean(tensor::Abs(tensor::Sub(prediction, target)));
}

Tensor CrossEntropyWithLogits(const Tensor& logits, const std::vector<int64_t>& labels) {
  SARN_CHECK_EQ(logits.rank(), 2);
  SARN_CHECK_EQ(logits.shape()[0], static_cast<int64_t>(labels.size()));
  Tensor log_probs = tensor::RowLogSoftmax(logits);
  Tensor picked = tensor::TakePerRow(log_probs, labels);
  return tensor::Neg(tensor::Mean(picked));
}

Tensor BinaryCrossEntropyWithLogits(const Tensor& logits,
                                    const std::vector<float>& targets) {
  SARN_CHECK_EQ(logits.numel(), static_cast<int64_t>(targets.size()));
  // Stable BCE: max(x, 0) - x*t + log(1 + exp(-|x|)).
  // Expressed with tracked ops: relu(x) - x*t + log1p(exp(-|x|)).
  Tensor x = logits.rank() == 1 ? logits : tensor::Reshape(logits, {logits.numel()});
  Tensor t = Tensor::FromVector({x.numel()}, targets);
  Tensor term1 = tensor::Relu(x);
  Tensor term2 = tensor::Mul(x, t);
  Tensor softplus = tensor::Log(
      tensor::AddScalar(tensor::Exp(tensor::Neg(tensor::Abs(x))), 1.0f));
  return tensor::Mean(tensor::Add(tensor::Sub(term1, term2), softplus));
}

Tensor InfoNceLoss(const Tensor& positive_sim, const Tensor& negative_sim,
                   float temperature) {
  SARN_CHECK_GT(temperature, 0.0f);
  SARN_CHECK_EQ(negative_sim.rank(), 2);
  int64_t m = negative_sim.shape()[0];
  SARN_CHECK_EQ(positive_sim.numel(), m);
  Tensor pos_col = positive_sim.rank() == 2 ? positive_sim
                                            : tensor::Reshape(positive_sim, {m, 1});
  // Column 0 is the positive; a cross entropy with label 0 per row is exactly
  // Eq. 2 / Eq. 15 / Eq. 16.
  Tensor logits =
      tensor::MulScalar(tensor::Concat({pos_col, negative_sim}, 1), 1.0f / temperature);
  std::vector<int64_t> labels(static_cast<size_t>(m), 0);
  return CrossEntropyWithLogits(logits, labels);
}

}  // namespace sarn::nn
