#include "nn/linear.h"

#include "common/check.h"
#include "tensor/ops.h"

namespace sarn::nn {

using tensor::Tensor;

Tensor Apply(Activation activation, const Tensor& x) {
  switch (activation) {
    case Activation::kNone:
      return x;
    case Activation::kRelu:
      return tensor::Relu(x);
    case Activation::kLeakyRelu:
      return tensor::LeakyRelu(x);
    case Activation::kElu:
      return tensor::Elu(x);
    case Activation::kSigmoid:
      return tensor::Sigmoid(x);
    case Activation::kTanh:
      return tensor::Tanh(x);
  }
  SARN_CHECK(false) << "unknown activation";
  return x;
}

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng, bool bias) {
  SARN_CHECK_GT(in_features, 0);
  SARN_CHECK_GT(out_features, 0);
  weight_ = Tensor::GlorotUniform(in_features, out_features, rng);
  weight_.RequiresGrad();
  if (bias) {
    bias_ = Tensor::Zeros({out_features});
    bias_.RequiresGrad();
  }
}

Tensor Linear::Forward(const Tensor& x) const {
  Tensor y = tensor::MatMul(x, weight_);
  if (bias_.defined()) y = tensor::Add(y, bias_);
  return y;
}

std::vector<Tensor> Linear::Parameters() const {
  std::vector<Tensor> params = {weight_};
  if (bias_.defined()) params.push_back(bias_);
  return params;
}

Ffn::Ffn(const std::vector<int64_t>& layer_sizes, Activation activation, Rng& rng)
    : activation_(activation) {
  SARN_CHECK_GE(layer_sizes.size(), 2u);
  for (size_t i = 0; i + 1 < layer_sizes.size(); ++i) {
    layers_.emplace_back(layer_sizes[i], layer_sizes[i + 1], rng);
  }
}

Tensor Ffn::Forward(const Tensor& x) const {
  Tensor h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].Forward(h);
    if (i + 1 < layers_.size()) h = Apply(activation_, h);
  }
  return h;
}

std::vector<Tensor> Ffn::Parameters() const {
  std::vector<Tensor> params;
  for (const Linear& layer : layers_) {
    for (const Tensor& p : layer.Parameters()) params.push_back(p);
  }
  return params;
}

}  // namespace sarn::nn
