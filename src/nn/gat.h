// Graph attention network (Veličković et al., ICLR'18), the paper's graph
// encoder (§4.3, Eqs. 8-10).
//
// Edges are directed src -> dst: a vertex aggregates messages over its
// incoming edges, with attention coefficients normalised per destination
// (Eq. 10). SARN feeds the union of topological and spatial edges of an
// augmented graph view, so the attention weights subsume both edge types.

#ifndef SARN_NN_GAT_H_
#define SARN_NN_GAT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/linear.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace sarn::nn {

/// A directed edge list in struct-of-arrays form; src[k] -> dst[k].
struct EdgeList {
  std::vector<int64_t> src;
  std::vector<int64_t> dst;

  size_t size() const { return src.size(); }
  void Add(int64_t s, int64_t d) {
    src.push_back(s);
    dst.push_back(d);
  }

  /// This edge list with one self-loop per vertex appended, built lazily and
  /// cached on the instance: a GAT stack augments the same graph view once
  /// instead of once per layer per Forward call. The cache is invalidated
  /// when the edge count or vertex count changes (the only mutator, Add,
  /// changes the count). Copies share the cache. Not safe to call
  /// concurrently on the same instance (same contract as Tensor).
  const EdgeList& WithSelfLoops(int64_t num_vertices) const;

 private:
  mutable std::shared_ptr<const EdgeList> self_loop_cache_;
  mutable int64_t cached_vertices_ = -1;
  mutable size_t cached_edges_ = 0;
};

/// One multi-head GAT layer.
class GatLayer : public Module {
 public:
  /// If `concat_heads`, the output is [n, num_heads * head_dim]; otherwise
  /// heads are averaged to [n, head_dim] (the paper's final-layer variant).
  /// `residual` adds a (linearly projected) skip connection from the layer
  /// input to its output before the activation — standard in GAT stacks; it
  /// preserves per-vertex identity against neighborhood over-smoothing.
  GatLayer(int64_t in_dim, int64_t head_dim, int num_heads, bool concat_heads,
           Activation activation, Rng& rng, float leaky_relu_slope = 0.2f,
           bool add_self_loops = true, bool residual = true,
           bool use_attention = true);

  /// Disables the learned attention scores: aggregation becomes a uniform
  /// mean over incoming edges (the paper's footnote-1 alternative of using
  /// fixed adjacency weights instead of attention).
  void set_use_attention(bool value) { use_attention_ = value; }

  /// x: [n, in_dim]; vertices referenced by `edges` must be < n.
  tensor::Tensor Forward(const tensor::Tensor& x, const EdgeList& edges) const;

  std::vector<tensor::Tensor> Parameters() const override;

  int64_t output_dim() const {
    return concat_heads_ ? head_dim_ * num_heads_ : head_dim_;
  }

 private:
  int64_t head_dim_;
  int num_heads_;
  bool concat_heads_;
  Activation activation_;
  float leaky_relu_slope_;
  bool add_self_loops_;
  bool use_attention_;
  std::vector<tensor::Tensor> weight_;   // Per head: [in, head_dim].
  std::vector<tensor::Tensor> att_src_;  // Per head: [head_dim, 1].
  std::vector<tensor::Tensor> att_dst_;  // Per head: [head_dim, 1].
  tensor::Tensor residual_weight_;       // [in, output_dim] or undefined.
};

/// A stack of GAT layers: `num_layers - 1` concat-head ELU layers of width
/// `hidden_dim`, then one mean-head layer to `out_dim` (paper: 3 layers, 4
/// heads, ELU).
class GatEncoder : public Module {
 public:
  GatEncoder(int64_t in_dim, int64_t hidden_dim, int64_t out_dim, int num_layers,
             int num_heads, Rng& rng, bool use_attention = true);

  tensor::Tensor Forward(const tensor::Tensor& x, const EdgeList& edges) const;

  std::vector<tensor::Tensor> Parameters() const override;

  /// Parameters of the final layer only (SARN* fine-tunes just this layer).
  std::vector<tensor::Tensor> FinalLayerParameters() const;

  int64_t out_dim() const { return layers_.back().output_dim(); }
  size_t num_layers() const { return layers_.size(); }

 private:
  std::vector<GatLayer> layers_;
};

}  // namespace sarn::nn

#endif  // SARN_NN_GAT_H_
