#include "nn/gru.h"

#include "common/check.h"
#include "tensor/ops.h"

namespace sarn::nn {

using tensor::Tensor;

GruCell::GruCell(int64_t input_dim, int64_t hidden_dim, Rng& rng)
    : input_dim_(input_dim), hidden_dim_(hidden_dim) {
  SARN_CHECK_GT(input_dim, 0);
  SARN_CHECK_GT(hidden_dim, 0);
  auto gate = [&](Tensor& w, Tensor& u, Tensor& b) {
    w = Tensor::GlorotUniform(input_dim, hidden_dim, rng).RequiresGrad();
    u = Tensor::GlorotUniform(hidden_dim, hidden_dim, rng).RequiresGrad();
    b = Tensor::Zeros({hidden_dim});
    b.RequiresGrad();
  };
  gate(w_z_, u_z_, b_z_);
  gate(w_r_, u_r_, b_r_);
  gate(w_n_, u_n_, b_n_);
}

Tensor GruCell::Forward(const Tensor& x, const Tensor& h) const {
  using namespace tensor;  // NOLINT: local op readability.
  Tensor z = Sigmoid(Add(Add(MatMul(x, w_z_), MatMul(h, u_z_)), b_z_));
  Tensor r = Sigmoid(Add(Add(MatMul(x, w_r_), MatMul(h, u_r_)), b_r_));
  Tensor n = Tanh(Add(Add(MatMul(x, w_n_), MatMul(Mul(r, h), u_n_)), b_n_));
  // h' = (1 - z) * n + z * h = n - z*n + z*h
  return Add(Sub(n, Mul(z, n)), Mul(z, h));
}

Tensor GruCell::InitialState(int64_t batch) const {
  return Tensor::Zeros({batch, hidden_dim_});
}

std::vector<Tensor> GruCell::Parameters() const {
  return {w_z_, u_z_, b_z_, w_r_, u_r_, b_r_, w_n_, u_n_, b_n_};
}

Gru::Gru(int64_t input_dim, int64_t hidden_dim, int num_layers, Rng& rng) {
  SARN_CHECK_GE(num_layers, 1);
  int64_t in = input_dim;
  for (int layer = 0; layer < num_layers; ++layer) {
    cells_.emplace_back(in, hidden_dim, rng);
    in = hidden_dim;
  }
}

Tensor Gru::Forward(const std::vector<Tensor>& steps) const {
  std::vector<Tensor> all = ForwardAllSteps(steps);
  return all.back();
}

std::vector<Tensor> Gru::ForwardAllSteps(const std::vector<Tensor>& steps) const {
  SARN_CHECK(!steps.empty());
  int64_t batch = steps[0].shape()[0];
  std::vector<Tensor> layer_input = steps;
  std::vector<Tensor> outputs;
  for (const GruCell& cell : cells_) {
    Tensor h = cell.InitialState(batch);
    outputs.clear();
    outputs.reserve(layer_input.size());
    for (const Tensor& x : layer_input) {
      h = cell.Forward(x, h);
      outputs.push_back(h);
    }
    layer_input = outputs;
  }
  return outputs;
}

std::vector<Tensor> Gru::Parameters() const {
  std::vector<Tensor> params;
  for (const GruCell& cell : cells_) {
    for (const Tensor& p : cell.Parameters()) params.push_back(p);
  }
  return params;
}

}  // namespace sarn::nn
