// Loss functions shared across models. SARN's two-level contrastive loss
// (core/sarn_loss.h) composes the InfoNCE primitive defined here.

#ifndef SARN_NN_LOSSES_H_
#define SARN_NN_LOSSES_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace sarn::nn {

/// Mean squared error over all elements.
tensor::Tensor MseLoss(const tensor::Tensor& prediction, const tensor::Tensor& target);

/// Mean absolute error over all elements.
tensor::Tensor L1Loss(const tensor::Tensor& prediction, const tensor::Tensor& target);

/// Multi-class cross entropy from raw logits [m, k] and integer labels [m].
tensor::Tensor CrossEntropyWithLogits(const tensor::Tensor& logits,
                                      const std::vector<int64_t>& labels);

/// Binary cross entropy from a single logit column [m] (or [m,1]) and 0/1
/// targets; numerically stable formulation.
tensor::Tensor BinaryCrossEntropyWithLogits(const tensor::Tensor& logits,
                                            const std::vector<float>& targets);

/// InfoNCE (paper Eq. 2): `positive_sim` [m] holds Λ(z_i, z_i⁺), and
/// `negative_sim` [m, K] the similarities to the K negatives of each anchor.
/// Returns mean over the batch of -log softmax(sim/τ)[positive].
tensor::Tensor InfoNceLoss(const tensor::Tensor& positive_sim,
                           const tensor::Tensor& negative_sim, float temperature);

}  // namespace sarn::nn

#endif  // SARN_NN_LOSSES_H_
