#include "nn/serialization.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/logging.h"

namespace sarn::nn {
namespace {

constexpr char kMagic[] = "SARNW1\n";
constexpr size_t kMagicLen = sizeof(kMagic) - 1;

constexpr char kCheckpointMagic[] = "SARNCK1\n";
constexpr size_t kCheckpointMagicLen = sizeof(kCheckpointMagic) - 1;
constexpr char kCheckpointSuffix[] = ".sarnckpt";
constexpr char kCheckpointPrefix[] = "ckpt_";

}  // namespace

bool SaveParameters(const std::string& path, const std::vector<tensor::Tensor>& params) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) {
    SARN_LOG(Error) << "cannot open " << path << " for writing";
    return false;
  }
  out.write(kMagic, static_cast<std::streamsize>(kMagicLen));
  int64_t count = static_cast<int64_t>(params.size());
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const tensor::Tensor& p : params) {
    int64_t rank = p.rank();
    out.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
    for (int64_t d : p.shape()) {
      out.write(reinterpret_cast<const char*>(&d), sizeof(d));
    }
    out.write(reinterpret_cast<const char*>(p.data().data()),
              static_cast<std::streamsize>(p.data().size() * sizeof(float)));
  }
  if (!out.good()) SARN_LOG(Error) << "short write to " << path;
  return out.good();
}

bool LoadParameters(const std::string& path, const std::vector<tensor::Tensor>& params) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return false;
  char magic[kMagicLen];
  in.read(magic, static_cast<std::streamsize>(kMagicLen));
  if (!in.good() || std::memcmp(magic, kMagic, kMagicLen) != 0) {
    SARN_LOG(Error) << "bad checkpoint magic in " << path;
    return false;
  }
  int64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in.good() || count != static_cast<int64_t>(params.size())) {
    SARN_LOG(Error) << "checkpoint has " << count << " tensors, expected "
                    << params.size();
    return false;
  }
  for (const tensor::Tensor& p : params) {
    int64_t rank = 0;
    in.read(reinterpret_cast<char*>(&rank), sizeof(rank));
    if (!in.good() || rank != p.rank()) return false;
    for (int64_t expected : p.shape()) {
      int64_t d = 0;
      in.read(reinterpret_cast<char*>(&d), sizeof(d));
      if (!in.good() || d != expected) {
        SARN_LOG(Error) << "checkpoint shape mismatch in " << path;
        return false;
      }
    }
    tensor::Storage& data = const_cast<tensor::Tensor&>(p).mutable_data();
    in.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
    if (!in.good()) return false;
  }
  return true;
}

// --- Training checkpoints ----------------------------------------------------

const char* CheckpointErrorName(CheckpointError error) {
  switch (error) {
    case CheckpointError::kOk: return "ok";
    case CheckpointError::kIoError: return "io-error";
    case CheckpointError::kBadMagic: return "bad-magic";
    case CheckpointError::kBadVersion: return "bad-version";
    case CheckpointError::kTruncated: return "truncated";
    case CheckpointError::kCrcMismatch: return "crc-mismatch";
    case CheckpointError::kMalformed: return "malformed";
    case CheckpointError::kShapeMismatch: return "shape-mismatch";
  }
  return "unknown";
}

void TrainingCheckpoint::SetSection(const std::string& name, std::string body) {
  for (auto& [existing, value] : sections) {
    if (existing == name) {
      value = std::move(body);
      return;
    }
  }
  sections.emplace_back(name, std::move(body));
}

const std::string* TrainingCheckpoint::FindSection(const std::string& name) const {
  for (const auto& [existing, value] : sections) {
    if (existing == name) return &value;
  }
  return nullptr;
}

CheckpointStatus SaveCheckpoint(const std::string& path, const TrainingCheckpoint& ckpt) {
  ByteWriter payload;
  payload.PutU32(static_cast<uint32_t>(ckpt.sections.size()));
  for (const auto& [name, body] : ckpt.sections) {
    payload.PutString(name);
    payload.PutString(body);
  }
  const std::string& bytes = payload.buffer();
  uint32_t crc = Crc32(bytes.data(), bytes.size());

  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      return CheckpointStatus::Fail(CheckpointError::kIoError,
                                    "cannot open " + tmp + " for writing");
    }
    out.write(kCheckpointMagic, static_cast<std::streamsize>(kCheckpointMagicLen));
    uint32_t version = kCheckpointVersion;
    out.write(reinterpret_cast<const char*>(&version), sizeof(version));
    uint64_t size = bytes.size();
    out.write(reinterpret_cast<const char*>(&size), sizeof(size));
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
    out.flush();
    if (!out.good()) {
      return CheckpointStatus::Fail(CheckpointError::kIoError, "short write to " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return CheckpointStatus::Fail(CheckpointError::kIoError,
                                  "cannot rename " + tmp + " to " + path);
  }
  return CheckpointStatus::Ok();
}

CheckpointStatus LoadCheckpoint(const std::string& path, TrainingCheckpoint* ckpt) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return CheckpointStatus::Fail(CheckpointError::kIoError, "cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return CheckpointStatus::Fail(CheckpointError::kIoError, "cannot read " + path);
  }
  std::string file = std::move(buffer).str();

  ByteReader header(file);
  char magic[kCheckpointMagicLen];
  if (!header.GetBytes(magic, kCheckpointMagicLen) ||
      std::memcmp(magic, kCheckpointMagic, kCheckpointMagicLen) != 0) {
    return CheckpointStatus::Fail(CheckpointError::kBadMagic,
                                  path + " is not a SARN training checkpoint");
  }
  uint32_t version = 0;
  if (!header.GetU32(&version)) {
    return CheckpointStatus::Fail(CheckpointError::kTruncated,
                                  path + " ends inside the header");
  }
  if (version != kCheckpointVersion) {
    return CheckpointStatus::Fail(
        CheckpointError::kBadVersion,
        path + " has version " + std::to_string(version) + ", this build reads " +
            std::to_string(kCheckpointVersion));
  }
  uint64_t declared = 0;
  if (!header.GetU64(&declared) || header.remaining() < declared + sizeof(uint32_t)) {
    return CheckpointStatus::Fail(
        CheckpointError::kTruncated,
        path + " is truncated (declared payload " + std::to_string(declared) +
            " bytes, " + std::to_string(header.remaining()) + " available)");
  }
  size_t payload_offset = kCheckpointMagicLen + sizeof(uint32_t) + sizeof(uint64_t);
  std::string_view payload(file.data() + payload_offset, static_cast<size_t>(declared));
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, file.data() + payload_offset + declared, sizeof(stored_crc));
  uint32_t actual_crc = Crc32(payload.data(), payload.size());
  if (stored_crc != actual_crc) {
    return CheckpointStatus::Fail(CheckpointError::kCrcMismatch,
                                  path + " payload CRC mismatch (file corrupt)");
  }

  ByteReader body(payload);
  uint32_t count = 0;
  if (!body.GetU32(&count)) {
    return CheckpointStatus::Fail(CheckpointError::kMalformed,
                                  path + ": cannot read section count");
  }
  TrainingCheckpoint parsed;
  for (uint32_t i = 0; i < count; ++i) {
    std::string name, value;
    if (!body.GetString(&name) || !body.GetString(&value)) {
      return CheckpointStatus::Fail(CheckpointError::kMalformed,
                                    path + ": section " + std::to_string(i) +
                                        " does not parse");
    }
    parsed.sections.emplace_back(std::move(name), std::move(value));
  }
  *ckpt = std::move(parsed);
  return CheckpointStatus::Ok();
}

void WriteTensors(ByteWriter& out, const std::vector<tensor::Tensor>& tensors) {
  out.PutU64(tensors.size());
  for (const tensor::Tensor& t : tensors) {
    out.PutI64(t.rank());
    for (int64_t d : t.shape()) out.PutI64(d);
    out.PutFloats(t.data().data(), t.data().size());
  }
}

CheckpointStatus ReadTensorsInto(ByteReader& in,
                                 const std::vector<tensor::Tensor>& tensors) {
  std::vector<std::vector<float>> staged;
  CheckpointStatus status = ParseTensors(in, tensors, &staged);
  if (!status.ok()) return status;
  for (size_t i = 0; i < tensors.size(); ++i) {
    const_cast<tensor::Tensor&>(tensors[i]).mutable_data() = std::move(staged[i]);
  }
  return CheckpointStatus::Ok();
}

CheckpointStatus ParseTensors(ByteReader& in, const std::vector<tensor::Tensor>& like,
                              std::vector<std::vector<float>>* out_staged) {
  uint64_t count = 0;
  if (!in.GetU64(&count)) {
    return CheckpointStatus::Fail(CheckpointError::kMalformed,
                                  "tensor section: cannot read count");
  }
  if (count != like.size()) {
    return CheckpointStatus::Fail(
        CheckpointError::kShapeMismatch,
        "tensor section has " + std::to_string(count) + " tensors, expected " +
            std::to_string(like.size()));
  }
  std::vector<std::vector<float>> staged(like.size());
  for (size_t i = 0; i < like.size(); ++i) {
    const tensor::Tensor& t = like[i];
    int64_t rank = 0;
    if (!in.GetI64(&rank)) {
      return CheckpointStatus::Fail(CheckpointError::kMalformed,
                                    "tensor section: truncated at tensor " +
                                        std::to_string(i));
    }
    if (rank != t.rank()) {
      return CheckpointStatus::Fail(
          CheckpointError::kShapeMismatch,
          "tensor " + std::to_string(i) + " has rank " + std::to_string(rank) +
              ", expected " + std::to_string(t.rank()));
    }
    for (int64_t expected : t.shape()) {
      int64_t d = 0;
      if (!in.GetI64(&d)) {
        return CheckpointStatus::Fail(CheckpointError::kMalformed,
                                      "tensor section: truncated at tensor " +
                                          std::to_string(i));
      }
      if (d != expected) {
        return CheckpointStatus::Fail(
            CheckpointError::kShapeMismatch,
            "tensor " + std::to_string(i) + " dim " + std::to_string(d) +
                " != expected " + std::to_string(expected));
      }
    }
    if (!in.GetFloats(&staged[i]) || staged[i].size() != t.data().size()) {
      return CheckpointStatus::Fail(CheckpointError::kMalformed,
                                    "tensor section: bad value payload for tensor " +
                                        std::to_string(i));
    }
  }
  *out_staged = std::move(staged);
  return CheckpointStatus::Ok();
}

// --- Checkpoint directories --------------------------------------------------

std::string CheckpointFileName(int epoch) {
  char name[64];
  std::snprintf(name, sizeof(name), "%s%06d%s", kCheckpointPrefix, epoch,
                kCheckpointSuffix);
  return name;
}

std::vector<std::pair<int, std::string>> ListCheckpoints(const std::string& dir) {
  std::vector<std::pair<int, std::string>> found;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    std::string name = entry.path().filename().string();
    size_t prefix_len = sizeof(kCheckpointPrefix) - 1;
    size_t suffix_len = sizeof(kCheckpointSuffix) - 1;
    if (name.size() <= prefix_len + suffix_len ||
        name.compare(0, prefix_len, kCheckpointPrefix) != 0 ||
        name.compare(name.size() - suffix_len, suffix_len, kCheckpointSuffix) != 0) {
      continue;
    }
    std::string digits = name.substr(prefix_len, name.size() - prefix_len - suffix_len);
    if (digits.empty() || digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    found.emplace_back(std::stoi(digits), entry.path().string());
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return found;
}

void PruneCheckpoints(const std::string& dir, int keep_last) {
  if (keep_last < 1) keep_last = 1;
  std::vector<std::pair<int, std::string>> found = ListCheckpoints(dir);
  std::error_code ec;
  for (size_t i = static_cast<size_t>(keep_last); i < found.size(); ++i) {
    std::filesystem::remove(found[i].second, ec);
  }
}

}  // namespace sarn::nn
