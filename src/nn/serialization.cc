#include "nn/serialization.h"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "common/logging.h"

namespace sarn::nn {
namespace {

constexpr char kMagic[] = "SARNW1\n";
constexpr size_t kMagicLen = sizeof(kMagic) - 1;

}  // namespace

bool SaveParameters(const std::string& path, const std::vector<tensor::Tensor>& params) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) return false;
  out.write(kMagic, static_cast<std::streamsize>(kMagicLen));
  int64_t count = static_cast<int64_t>(params.size());
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const tensor::Tensor& p : params) {
    int64_t rank = p.rank();
    out.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
    for (int64_t d : p.shape()) {
      out.write(reinterpret_cast<const char*>(&d), sizeof(d));
    }
    out.write(reinterpret_cast<const char*>(p.data().data()),
              static_cast<std::streamsize>(p.data().size() * sizeof(float)));
  }
  return out.good();
}

bool LoadParameters(const std::string& path, const std::vector<tensor::Tensor>& params) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return false;
  char magic[kMagicLen];
  in.read(magic, static_cast<std::streamsize>(kMagicLen));
  if (!in.good() || std::memcmp(magic, kMagic, kMagicLen) != 0) {
    SARN_LOG(Error) << "bad checkpoint magic in " << path;
    return false;
  }
  int64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in.good() || count != static_cast<int64_t>(params.size())) {
    SARN_LOG(Error) << "checkpoint has " << count << " tensors, expected "
                    << params.size();
    return false;
  }
  for (const tensor::Tensor& p : params) {
    int64_t rank = 0;
    in.read(reinterpret_cast<char*>(&rank), sizeof(rank));
    if (!in.good() || rank != p.rank()) return false;
    for (int64_t expected : p.shape()) {
      int64_t d = 0;
      in.read(reinterpret_cast<char*>(&d), sizeof(d));
      if (!in.good() || d != expected) {
        SARN_LOG(Error) << "checkpoint shape mismatch in " << path;
        return false;
      }
    }
    std::vector<float>& data = const_cast<tensor::Tensor&>(p).mutable_data();
    in.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
    if (!in.good()) return false;
  }
  return true;
}

}  // namespace sarn::nn
