#include "core/contrastive_trainer.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <numeric>
#include <utility>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "core/checkpoint_tags.h"
#include "core/sarn_model.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "plan/executor.h"
#include "tensor/ops.h"

namespace sarn::core {
namespace {

using tensor::Tensor;

int64_t FileSizeOrZero(const std::string& path) {
  std::error_code ec;
  auto size = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<int64_t>(size);
}

// Squared L2 norm of the accumulated gradients; +inf/NaN poison propagates
// into the sum, so one finite check covers every parameter.
double GradNormSquared(const std::vector<Tensor>& parameters) {
  double sum = 0.0;
  for (const Tensor& p : parameters) {
    for (float g : p.grad()) sum += static_cast<double>(g) * g;
  }
  return sum;
}

// L2-normalises a raw float vector in place.
void NormalizeVector(std::vector<float>& v) {
  double sq = 0.0;
  for (float x : v) sq += static_cast<double>(x) * x;
  float inv = sq > 1e-16 ? static_cast<float>(1.0 / std::sqrt(sq)) : 0.0f;
  for (float& x : v) x *= inv;
}

// Wall-time breakdown of one training epoch; field order is the emission
// order in the metrics file.
struct EpochPhases {
  double augmentation = 0.0;
  double target_forward = 0.0;
  double online_forward = 0.0;
  double loss = 0.0;
  double backward = 0.0;
  double optimizer_step = 0.0;
  double queue_push = 0.0;
  double checkpoint_write = 0.0;

  std::vector<std::pair<std::string, double>> AsList() const {
    return {{"augmentation", augmentation},   {"target_forward", target_forward},
            {"online_forward", online_forward}, {"loss", loss},
            {"backward", backward},           {"optimizer_step", optimizer_step},
            {"queue_push", queue_push},       {"checkpoint_write", checkpoint_write}};
  }
};

}  // namespace

TrainStats ContrastiveTrainer::Run(const TrainOptions& options) {
  Timer timer;
  const SarnConfig& config = model_->config_;
  Rng rng(config.seed + 1);

  std::vector<Tensor> parameters = model_->OnlineParameters();
  tensor::Adam optimizer(parameters, config.learning_rate);
  tensor::CosineAnnealingSchedule schedule(config.learning_rate, config.max_epochs);

  std::vector<Tensor> target_params = model_->TargetParameters();
  std::vector<Tensor> online_params_no_features = model_->online_encoder_->Parameters();
  for (const Tensor& p : model_->online_head_->Parameters()) {
    online_params_no_features.push_back(p);
  }

  TrainStats stats;
  Progress progress;
  bool checkpointing = !options.checkpoint_dir.empty();
  if (checkpointing) {
    std::error_code ec;
    std::filesystem::create_directories(options.checkpoint_dir, ec);
    if (ec) {
      SARN_LOG(Error) << "cannot create checkpoint dir " << options.checkpoint_dir
                      << ": " << ec.message() << "; training without checkpoints";
      checkpointing = false;
    }
  }
  if (checkpointing && options.resume) {
    // Newest first; every skipped or restored file becomes a structured
    // checkpoint lifecycle event (log line + registry counter + sink).
    for (const auto& [ckpt_epoch, path] : nn::ListCheckpoints(options.checkpoint_dir)) {
      obs::CheckpointEvent event;
      event.path = path;
      event.epoch = ckpt_epoch;
      nn::TrainingCheckpoint ckpt;
      Timer load_timer;
      nn::CheckpointStatus status = nn::LoadCheckpoint(path, &ckpt);
      if (!status.ok()) {
        event.action = obs::CheckpointEvent::Action::kSkippedCorrupt;
        event.detail = std::string(nn::CheckpointErrorName(status.error)) + ": " +
                       status.message;
        obs::RecordCheckpointEvent(options.metrics_sink, event);
        continue;
      }
      std::string detail;
      if (!ApplyCheckpoint(ckpt, optimizer, schedule, rng, progress, &detail)) {
        event.action = obs::CheckpointEvent::Action::kSkippedMismatch;
        event.detail = detail;
        obs::RecordCheckpointEvent(options.metrics_sink, event);
        continue;
      }
      event.action = obs::CheckpointEvent::Action::kResumedFrom;
      event.epoch = progress.next_epoch;
      event.bytes = FileSizeOrZero(path);
      event.seconds = load_timer.ElapsedSeconds();
      obs::RecordCheckpointEvent(options.metrics_sink, event);
      stats.resumed_from_epoch = progress.next_epoch;
      break;
    }
  }
  stats.epoch_losses = progress.epoch_losses;
  stats.epochs_run = progress.next_epoch;
  if (!stats.epoch_losses.empty()) stats.final_loss = stats.epoch_losses.back();

  int64_t n = model_->network_->num_segments();
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);

  NegativeSampler& sampler = *model_->sampler_;
  const Augmentation& augmentation = *model_->augmentation_;
  const bool keep_all_projections = sampler.NeedsAllProjections();
  const bool sampler_wants_pushes = sampler.WantsPushes();

  // Cached instrument references: one registry lock each, lock-free updates
  // in the loop. Telemetry is measurement-only — it must never touch `rng`
  // or the numerics, or resumed runs would stop being bitwise reproducible.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  obs::Counter& epochs_counter = registry.GetCounter("sarn.train.epochs");
  obs::Counter& batches_counter = registry.GetCounter("sarn.train.batches");
  obs::Gauge& loss_gauge = registry.GetGauge("sarn.train.loss");
  obs::Gauge& lr_gauge = registry.GetGauge("sarn.train.lr");
  obs::Gauge& grad_norm_gauge = registry.GetGauge("sarn.train.grad_norm");
  obs::Gauge& queue_stored_gauge = registry.GetGauge("sarn.queue.stored");
  obs::Histogram& epoch_seconds_hist =
      registry.GetHistogram("sarn.train.epoch_seconds");

  // Step-plan engine (DESIGN.md §15). Off by default; `record` verifies every
  // step's allocation stream against the dynamic tape, `replay` executes
  // verified plans from an AOT-packed arena. All modes are bitwise identical.
  plan::PlanExecutor plan_executor(plan::EffectivePlanMode(options.plan_mode));

  int stop_after = options.max_epochs >= 0
                       ? std::min(options.max_epochs, config.max_epochs)
                       : config.max_epochs;
  for (int epoch = progress.next_epoch; epoch < stop_after && !stats.aborted;
       ++epoch) {
    SARN_TRACE_SPAN("train_epoch");
    Timer epoch_timer;
    EpochPhases phases;
    ParallelPoolStats pool_before = GetParallelPoolStats();
    double grad_norm_sum = 0.0;

    schedule.OnEpoch(optimizer, epoch);
    GraphView view1, view2;
    {
      SARN_TRACE_SPAN("augmentation");
      obs::ScopedPhaseTimer phase(&phases.augmentation);
      view1 = augmentation.MakeView(rng);
      view2 = augmentation.MakeView(rng);
    }
    // Reshuffle from the identity so the batch order is a pure function of
    // the RNG state — which is checkpointed — rather than of the cumulative
    // permutation history, which is not. Statistically equivalent (a uniform
    // shuffle of any fixed permutation is uniform) and required for resumed
    // runs to be bitwise identical to uninterrupted ones.
    std::iota(order.begin(), order.end(), 0);
    rng.Shuffle(order);

    double epoch_loss = 0.0;
    int batches = 0;
    for (int64_t begin = 0; begin < n; begin += config.batch_size) {
      // One storage "step": every tensor buffer and tape closure acquired in
      // this batch returns to the pool when Backward() consumes the tape, so
      // after the first batch warms the size classes, steady-state batches
      // run with zero pool-miss allocations (tracked by sarn.alloc.*).
      tensor::StepScope alloc_scope;
      int64_t end = std::min<int64_t>(n, begin + config.batch_size);
      std::vector<int64_t> batch(order.begin() + begin, order.begin() + end);
      // Declared before any Tensor of the step: the guard destructs after
      // every step tensor has released its buffer, which is exactly when the
      // executor checks that a replayed arena went quiescent.
      plan::PlanExecutor::StepGuard plan_step = plan_executor.BeginStep(
          model_->MakeStepPlanKey(view1, view2, batch, optimizer.learning_rate()));

      // Target branch first (fills z' and, later, the sampler state). The
      // all-vertex projection buffer is released at scope end unless the
      // sampler's loss reads it — keeping the default allocation stream
      // identical to a trainer without the handle.
      Tensor z_prime_batch;
      Tensor z_prime_all_kept;
      {
        SARN_TRACE_SPAN("target_forward");
        obs::ScopedPhaseTimer phase(&phases.target_forward);
        tensor::NoGradGuard guard;
        Tensor z_prime_all = model_->TargetProject(view2);
        z_prime_batch = tensor::Rows(z_prime_all, batch);
        if (keep_all_projections) z_prime_all_kept = z_prime_all;
      }

      // Online branch.
      Tensor z_batch;
      {
        SARN_TRACE_SPAN("online_forward");
        obs::ScopedPhaseTimer phase(&phases.online_forward);
        Tensor h = model_->OnlineEncode(view1);
        Tensor z_all = tensor::RowL2Normalize(model_->online_head_->Forward(h));
        z_batch = tensor::Rows(z_all, batch);
      }

      Tensor loss;
      {
        SARN_TRACE_SPAN("loss");
        obs::ScopedPhaseTimer phase(&phases.loss);
        loss = sampler.ComputeLoss(z_batch, z_prime_batch, z_prime_all_kept, batch,
                                   rng);
      }
      float loss_value = loss.item();
      if (!std::isfinite(loss_value)) {
        stats.aborted = true;
        stats.abort_reason = "non-finite loss " + std::to_string(loss_value) +
                             " at epoch " + std::to_string(epoch) + ", batch " +
                             std::to_string(batches);
        break;
      }
      epoch_loss += loss_value;
      ++batches;

      double grad_norm_sq = 0.0;
      {
        SARN_TRACE_SPAN("backward");
        obs::ScopedPhaseTimer phase(&phases.backward);
        optimizer.ZeroGrad();
        loss.Backward();
        grad_norm_sq = GradNormSquared(parameters);
      }
      if (!std::isfinite(grad_norm_sq)) {
        // Abort before Step(): parameters keep their last finite values.
        stats.aborted = true;
        stats.abort_reason = "non-finite gradient norm at epoch " +
                             std::to_string(epoch) + ", batch " +
                             std::to_string(batches - 1);
        break;
      }
      grad_norm_sum += std::sqrt(grad_norm_sq);
      {
        SARN_TRACE_SPAN("optimizer_step");
        obs::ScopedPhaseTimer phase(&phases.optimizer_step);
        optimizer.Step();
        nn::MomentumUpdate(target_params, online_params_no_features, config.momentum);
      }

      // Sampler update with the fresh momentum projections (Algorithm 1 L15).
      {
        SARN_TRACE_SPAN("queue_push");
        obs::ScopedPhaseTimer phase(&phases.queue_push);
        if (sampler_wants_pushes) {
          for (size_t i = 0; i < batch.size(); ++i) {
            std::vector<float> embedding(
                z_prime_batch.data().begin() +
                    static_cast<int64_t>(i) * config.projection_dim,
                z_prime_batch.data().begin() +
                    static_cast<int64_t>(i + 1) * config.projection_dim);
            NormalizeVector(embedding);
            sampler.Push(batch[i], std::move(embedding));
          }
        }
      }
    }
    if (stats.aborted) {
      // Leave the last durable checkpoint as the restart point rather than
      // persisting an epoch that produced non-finite numbers.
      SARN_LOG(Error) << "training aborted: " << stats.abort_reason;
      break;
    }

    epoch_loss /= std::max(1, batches);
    progress.epoch_losses.push_back(epoch_loss);
    progress.next_epoch = epoch + 1;
    stats.epoch_losses.push_back(epoch_loss);
    stats.epochs_run = epoch + 1;
    stats.final_loss = epoch_loss;

    bool stopping = epoch + 1 == stop_after;
    if (epoch_loss < progress.best_loss - 1e-4) {
      progress.best_loss = epoch_loss;
      progress.epochs_since_best = 0;
    } else if (++progress.epochs_since_best >= config.patience) {
      SARN_LOG(Debug) << "early stop at epoch " << epoch;
      stopping = true;
    }

    int64_t checkpoint_bytes = 0;
    if (checkpointing &&
        (stopping || (epoch + 1) % std::max(1, options.checkpoint_every) == 0)) {
      SARN_TRACE_SPAN("checkpoint_write");
      obs::ScopedPhaseTimer phase(&phases.checkpoint_write);
      std::string path = options.checkpoint_dir + "/" +
                         nn::CheckpointFileName(progress.next_epoch);
      Timer write_timer;
      nn::CheckpointStatus status = nn::SaveCheckpoint(
          path, BuildCheckpoint(optimizer, schedule, rng, progress));
      obs::CheckpointEvent event;
      event.path = path;
      event.epoch = progress.next_epoch;
      event.seconds = write_timer.ElapsedSeconds();
      if (status.ok()) {
        ++stats.checkpoints_written;
        checkpoint_bytes = FileSizeOrZero(path);
        event.action = obs::CheckpointEvent::Action::kWritten;
        event.bytes = checkpoint_bytes;
        obs::RecordCheckpointEvent(options.metrics_sink, event);
        nn::PruneCheckpoints(options.checkpoint_dir, options.keep_last);
      } else {
        event.action = obs::CheckpointEvent::Action::kWriteFailed;
        event.detail = std::string(nn::CheckpointErrorName(status.error)) + ": " +
                       status.message;
        obs::RecordCheckpointEvent(options.metrics_sink, event);
      }
    }

    double epoch_seconds = epoch_timer.ElapsedSeconds();
    double grad_norm_mean = grad_norm_sum / std::max(1, batches);
    NegativeSamplerStats sampler_stats = sampler.Stats();
    epochs_counter.Increment();
    batches_counter.Increment(static_cast<uint64_t>(batches));
    loss_gauge.Set(epoch_loss);
    lr_gauge.Set(optimizer.learning_rate());
    grad_norm_gauge.Set(grad_norm_mean);
    queue_stored_gauge.Set(static_cast<double>(sampler_stats.stored));
    epoch_seconds_hist.Observe(epoch_seconds);
    if (options.metrics_sink != nullptr) {
      ParallelPoolStats pool_after = GetParallelPoolStats();
      obs::EpochRecord record;
      record.run = options.run_name;
      record.epoch = epoch;
      record.loss = epoch_loss;
      record.grad_norm = grad_norm_mean;
      record.learning_rate = optimizer.learning_rate();
      record.batches = batches;
      record.epoch_seconds = epoch_seconds;
      record.resumed = stats.resumed_from_epoch > 0;
      record.phase_seconds = phases.AsList();
      record.queue_stored = sampler_stats.stored;
      record.queue_nonempty_cells = sampler_stats.nonempty_cells;
      record.queue_pushes = sampler_stats.pushes;
      record.queue_evictions = sampler_stats.evictions;
      record.checkpoint_bytes = checkpoint_bytes;
      record.checkpoint_seconds = phases.checkpoint_write;
      record.pool_regions = pool_after.regions - pool_before.regions;
      record.pool_chunks = pool_after.chunks - pool_before.chunks;
      record.pool_items = pool_after.items - pool_before.items;
      record.pool_idle_seconds =
          pool_after.worker_idle_seconds - pool_before.worker_idle_seconds;
      options.metrics_sink->OnEpoch(record);
    }
    if (stopping) break;
  }
  if (options.metrics_sink != nullptr) options.metrics_sink->Flush();
  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

nn::TrainingCheckpoint ContrastiveTrainer::BuildCheckpoint(
    const tensor::Adam& optimizer, const tensor::CosineAnnealingSchedule& schedule,
    const Rng& rng, const Progress& progress) const {
  nn::TrainingCheckpoint ckpt;
  ByteWriter online;
  nn::WriteTensors(online, model_->OnlineParameters());
  ckpt.SetSection(kSectionOnline, online.Take());

  ByteWriter target;
  nn::WriteTensors(target, model_->TargetParameters());
  ckpt.SetSection(kSectionTarget, target.Take());

  ByteWriter optimizer_state;
  optimizer.SaveState(optimizer_state);
  ckpt.SetSection(kSectionOptimizer, optimizer_state.Take());

  ByteWriter schedule_state;
  schedule.SaveState(schedule_state);
  ckpt.SetSection(kSectionSchedule, schedule_state.Take());

  ByteWriter rng_state;
  rng.SaveState(rng_state);
  ckpt.SetSection(kSectionRng, rng_state.Take());

  ByteWriter sampler_state;
  model_->sampler_->SaveState(sampler_state);
  ckpt.SetSection(kSectionQueues, sampler_state.Take());

  ByteWriter variant;
  WriteVariantTag(variant, model_->variant_tag_);
  ckpt.SetSection(kSectionVariant, variant.Take());

  ByteWriter trainer;
  trainer.PutU64(model_->config_.seed);
  trainer.PutI64(progress.next_epoch);
  trainer.PutF64(progress.best_loss);
  trainer.PutI64(progress.epochs_since_best);
  trainer.PutU64(progress.epoch_losses.size());
  for (double loss : progress.epoch_losses) trainer.PutF64(loss);
  ckpt.SetSection(kSectionTrainer, trainer.Take());
  return ckpt;
}

bool ContrastiveTrainer::ApplyCheckpoint(const nn::TrainingCheckpoint& ckpt,
                                         tensor::Adam& optimizer,
                                         tensor::CosineAnnealingSchedule& schedule,
                                         Rng& rng, Progress& progress,
                                         std::string* detail) {
  const SarnConfig& config = model_->config_;
  auto fail = [detail](std::string message) {
    SARN_LOG(Warning) << message;
    if (detail != nullptr) *detail = std::move(message);
    return false;
  };

  // Variant compatibility first: a checkpoint from a differently-composed
  // model is rejected by name, never via a downstream shape mismatch.
  // Checkpoints from before the pluggable plane carry no tag and are
  // accepted (their tensor shapes still gate the restore).
  const std::string* variant = ckpt.FindSection(kSectionVariant);
  if (variant != nullptr) {
    VariantTag tag;
    ByteReader variant_in(*variant);
    if (!ReadVariantTag(variant_in, &tag)) {
      return fail("checkpoint variant tag is corrupt");
    }
    if (tag != model_->variant_tag_) {
      return fail("checkpoint was trained with " + VariantTagString(tag) +
                  " but this model composes " +
                  VariantTagString(model_->variant_tag_));
    }
  }

  const std::string* online = ckpt.FindSection(kSectionOnline);
  const std::string* target = ckpt.FindSection(kSectionTarget);
  const std::string* optimizer_state = ckpt.FindSection(kSectionOptimizer);
  const std::string* schedule_state = ckpt.FindSection(kSectionSchedule);
  const std::string* rng_state = ckpt.FindSection(kSectionRng);
  const std::string* sampler_state = ckpt.FindSection(kSectionQueues);
  const std::string* trainer = ckpt.FindSection(kSectionTrainer);
  if (!online || !target || !optimizer_state || !schedule_state || !rng_state ||
      !sampler_state || !trainer) {
    return fail("checkpoint is missing a required section");
  }

  // Phase 1: parse and validate every section into staging; the model is
  // not touched until all of them check out.
  std::vector<Tensor> online_params = model_->OnlineParameters();
  std::vector<Tensor> target_params = model_->TargetParameters();
  std::vector<std::vector<float>> online_staged, target_staged;
  ByteReader online_in(*online);
  nn::CheckpointStatus status = nn::ParseTensors(online_in, online_params, &online_staged);
  if (!status.ok()) {
    return fail("online parameters: " + status.message);
  }
  ByteReader target_in(*target);
  status = nn::ParseTensors(target_in, target_params, &target_staged);
  if (!status.ok()) {
    return fail("target parameters: " + status.message);
  }

  tensor::Adam staged_optimizer = optimizer;
  ByteReader optimizer_in(*optimizer_state);
  if (!staged_optimizer.LoadState(optimizer_in)) {
    return fail("optimizer state does not match this model");
  }

  tensor::CosineAnnealingSchedule staged_schedule = schedule;
  ByteReader schedule_in(*schedule_state);
  if (!staged_schedule.LoadState(schedule_in)) {
    return fail("schedule state does not match this model");
  }

  Rng staged_rng = rng;
  ByteReader rng_in(*rng_state);
  if (!staged_rng.LoadState(rng_in)) {
    return fail("rng state is corrupt");
  }

  std::unique_ptr<NegativeSampler> staged_sampler = model_->sampler_->Clone();
  ByteReader sampler_in(*sampler_state);
  if (!staged_sampler->LoadState(sampler_in)) {
    return fail("negative-sampler state does not match this model");
  }

  Progress staged_progress;
  ByteReader trainer_in(*trainer);
  uint64_t seed = 0;
  int64_t next_epoch = 0;
  int64_t epochs_since_best = 0;
  uint64_t loss_count = 0;
  if (!trainer_in.GetU64(&seed) || !trainer_in.GetI64(&next_epoch) ||
      !trainer_in.GetF64(&staged_progress.best_loss) ||
      !trainer_in.GetI64(&epochs_since_best) || !trainer_in.GetU64(&loss_count)) {
    return fail("trainer progress section is corrupt");
  }
  if (seed != config.seed) {
    return fail("checkpoint was trained with seed " + std::to_string(seed) +
                ", this model uses " + std::to_string(config.seed));
  }
  if (next_epoch < 0 || next_epoch > config.max_epochs ||
      loss_count != static_cast<uint64_t>(next_epoch)) {
    return fail("trainer progress is out of range");
  }
  staged_progress.next_epoch = static_cast<int>(next_epoch);
  staged_progress.epochs_since_best = static_cast<int>(epochs_since_best);
  staged_progress.epoch_losses.resize(static_cast<size_t>(loss_count));
  for (double& loss : staged_progress.epoch_losses) {
    if (!trainer_in.GetF64(&loss)) {
      return fail("trainer progress section is corrupt");
    }
  }

  // Phase 2: commit everything.
  for (size_t i = 0; i < online_params.size(); ++i) {
    online_params[i].mutable_data() = std::move(online_staged[i]);
  }
  for (size_t i = 0; i < target_params.size(); ++i) {
    target_params[i].mutable_data() = std::move(target_staged[i]);
  }
  optimizer = staged_optimizer;
  schedule = staged_schedule;
  rng = staged_rng;
  model_->sampler_ = std::move(staged_sampler);
  progress = std::move(staged_progress);
  return true;
}

}  // namespace sarn::core
