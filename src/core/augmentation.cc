#include "core/augmentation.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "common/check.h"
#include "geo/point.h"

namespace sarn::core {
namespace {

using PairKey = std::pair<roadnet::SegmentId, roadnet::SegmentId>;

PairKey KeyOf(roadnet::SegmentId a, roadnet::SegmentId b) {
  return {std::min(a, b), std::max(a, b)};
}

}  // namespace

double SigmaEpsilon(double x, double epsilon) {
  SARN_CHECK(epsilon >= 0.0 && epsilon < 0.5) << epsilon;
  return epsilon + x * (1.0 - 2.0 * epsilon);
}

double TopoCorruptionProbability(double weight, double min_weight, double max_weight,
                                 double epsilon) {
  double normalized =
      max_weight > min_weight ? (weight - min_weight) / (max_weight - min_weight) : 0.5;
  return SigmaEpsilon(1.0 - normalized, epsilon);
}

double SpatialCorruptionProbability(double weight, double epsilon) {
  return SigmaEpsilon(1.0 - weight, epsilon);
}

GraphView AugmentGraph(const std::vector<roadnet::TopoEdge>& topo_edges,
                       const std::vector<SpatialEdge>& spatial_edges,
                       const AugmentationConfig& config, Rng& rng) {
  SARN_CHECK(config.rho_t >= 0.0 && config.rho_t < 1.0) << config.rho_t;
  SARN_CHECK(config.rho_s >= 0.0 && config.rho_s < 1.0) << config.rho_s;

  // Eq. 6 normalisation bounds over non-zero topological weights.
  double min_w = 1e18, max_w = -1e18;
  for (const roadnet::TopoEdge& e : topo_edges) {
    min_w = std::min(min_w, e.weight);
    max_w = std::max(max_w, e.weight);
  }

  std::vector<bool> drop_topo(topo_edges.size(), false);
  std::vector<bool> drop_spatial(spatial_edges.size(), false);

  if (!topo_edges.empty() && config.rho_t > 0.0) {
    std::vector<double> weights(topo_edges.size());
    for (size_t i = 0; i < topo_edges.size(); ++i) {
      weights[i] =
          TopoCorruptionProbability(topo_edges[i].weight, min_w, max_w, config.epsilon);
    }
    size_t k = static_cast<size_t>(std::llround(config.rho_t * topo_edges.size()));
    for (size_t idx : rng.WeightedSampleWithoutReplacement(weights, k)) {
      drop_topo[idx] = true;
    }
  }
  if (!spatial_edges.empty() && config.rho_s > 0.0) {
    std::vector<double> weights(spatial_edges.size());
    for (size_t i = 0; i < spatial_edges.size(); ++i) {
      weights[i] = SpatialCorruptionProbability(spatial_edges[i].weight, config.epsilon);
    }
    size_t k = static_cast<size_t>(std::llround(config.rho_s * spatial_edges.size()));
    for (size_t idx : rng.WeightedSampleWithoutReplacement(weights, k)) {
      drop_spatial[idx] = true;
    }
  }

  // Dual-typed coupling: a pair removed in either matrix disappears from both.
  if (config.couple_dual_typed) {
    std::map<PairKey, std::vector<size_t>> topo_of_pair;
    for (size_t i = 0; i < topo_edges.size(); ++i) {
      topo_of_pair[KeyOf(topo_edges[i].from, topo_edges[i].to)].push_back(i);
    }
    std::map<PairKey, size_t> spatial_of_pair;
    for (size_t i = 0; i < spatial_edges.size(); ++i) {
      spatial_of_pair[KeyOf(spatial_edges[i].a, spatial_edges[i].b)] = i;
    }
    for (const auto& [key, topo_indices] : topo_of_pair) {
      auto it = spatial_of_pair.find(key);
      if (it == spatial_of_pair.end()) continue;
      bool any_topo_dropped = false;
      for (size_t idx : topo_indices) any_topo_dropped |= drop_topo[idx];
      if (any_topo_dropped || drop_spatial[it->second]) {
        for (size_t idx : topo_indices) drop_topo[idx] = true;
        drop_spatial[it->second] = true;
      }
    }
  }

  GraphView view;
  for (size_t i = 0; i < topo_edges.size(); ++i) {
    if (drop_topo[i]) continue;
    view.edges.Add(topo_edges[i].from, topo_edges[i].to);
    view.topo_edges.Add(topo_edges[i].from, topo_edges[i].to);
    ++view.surviving_topo;
  }
  for (size_t i = 0; i < spatial_edges.size(); ++i) {
    if (drop_spatial[i]) continue;
    view.edges.Add(spatial_edges[i].a, spatial_edges[i].b);
    view.edges.Add(spatial_edges[i].b, spatial_edges[i].a);
    view.spatial_edges.Add(spatial_edges[i].a, spatial_edges[i].b);
    view.spatial_edges.Add(spatial_edges[i].b, spatial_edges[i].a);
    ++view.surviving_spatial;
  }
  return view;
}

nn::EdgeList FullEdgeList(const std::vector<roadnet::TopoEdge>& topo_edges,
                          const std::vector<SpatialEdge>& spatial_edges) {
  nn::EdgeList edges;
  for (const roadnet::TopoEdge& e : topo_edges) edges.Add(e.from, e.to);
  for (const SpatialEdge& e : spatial_edges) {
    edges.Add(e.a, e.b);
    edges.Add(e.b, e.a);
  }
  return edges;
}

GraphView FullGraphView(const std::vector<roadnet::TopoEdge>& topo_edges,
                        const std::vector<SpatialEdge>& spatial_edges) {
  GraphView view;
  view.edges = FullEdgeList(topo_edges, spatial_edges);
  for (const roadnet::TopoEdge& e : topo_edges) view.topo_edges.Add(e.from, e.to);
  for (const SpatialEdge& e : spatial_edges) {
    view.spatial_edges.Add(e.a, e.b);
    view.spatial_edges.Add(e.b, e.a);
  }
  view.surviving_topo = static_cast<int64_t>(topo_edges.size());
  view.surviving_spatial = static_cast<int64_t>(spatial_edges.size());
  return view;
}

// --- Pluggable augmentation strategies ---------------------------------------

namespace {

class SpatialImportanceAugmentation : public Augmentation {
 public:
  SpatialImportanceAugmentation(const roadnet::RoadNetwork& network,
                                const std::vector<SpatialEdge>& spatial_edges,
                                const AugmentationConfig& config)
      : network_(&network), spatial_edges_(&spatial_edges), config_(config) {}

  const char* name() const override { return "spatial-importance"; }

  GraphView MakeView(Rng& rng) const override {
    return AugmentGraph(network_->topo_edges(), *spatial_edges_, config_, rng);
  }

 private:
  const roadnet::RoadNetwork* network_;
  const std::vector<SpatialEdge>* spatial_edges_;
  AugmentationConfig config_;
};

class ThirdLawAugmentation : public Augmentation {
 public:
  ThirdLawAugmentation(const roadnet::RoadNetwork& network,
                       const std::vector<SpatialEdge>& spatial_edges,
                       const AugmentationConfig& config, const ThirdLawConfig& third_law)
      : base_(network, spatial_edges, config) {
    // Geographic-configuration similarity: cosine over the dense per-segment
    // feature vectors (type one-hot, length, orientation, normalized
    // position), restricted to *distant* pairs — nearby pairs are already
    // covered by the spatial-similarity matrix, the Third Law's contribution
    // is exactly the far-apart lookalikes.
    auto dense = roadnet::DenseSegmentFeatures(network);
    auto midpoints = network.Midpoints();
    int64_t n = network.num_segments();
    std::vector<double> norms(static_cast<size_t>(n), 0.0);
    for (int64_t i = 0; i < n; ++i) {
      double sq = 0.0;
      for (float v : dense[static_cast<size_t>(i)]) sq += static_cast<double>(v) * v;
      norms[static_cast<size_t>(i)] = std::sqrt(sq);
    }
    std::map<PairKey, double> pairs;
    for (int64_t i = 0; i < n; ++i) {
      // Top `neighbors` configuration-similar distant segments for anchor i.
      std::vector<std::pair<double, int64_t>> best;
      for (int64_t j = 0; j < n; ++j) {
        if (j == i) continue;
        if (geo::HaversineMeters(midpoints[static_cast<size_t>(i)],
                                 midpoints[static_cast<size_t>(j)]) <
            third_law.radius_meters) {
          continue;
        }
        double dot = 0.0;
        const auto& a = dense[static_cast<size_t>(i)];
        const auto& b = dense[static_cast<size_t>(j)];
        for (size_t f = 0; f < a.size(); ++f) {
          dot += static_cast<double>(a[f]) * b[f];
        }
        double denom = norms[static_cast<size_t>(i)] * norms[static_cast<size_t>(j)];
        double sim = denom > 1e-12 ? dot / denom : 0.0;
        if (sim >= third_law.min_similarity) best.emplace_back(sim, j);
      }
      int keep = std::max(0, third_law.neighbors);
      if (static_cast<int>(best.size()) > keep) {
        std::partial_sort(best.begin(), best.begin() + keep, best.end(),
                          [](const auto& x, const auto& y) {
                            return x.first > y.first ||
                                   (x.first == y.first && x.second < y.second);
                          });
        best.resize(static_cast<size_t>(keep));
      }
      for (const auto& [sim, j] : best) pairs[KeyOf(i, j)] = sim;
    }
    for (const auto& [key, sim] : pairs) {
      extra_edges_.push_back({key.first, key.second});
    }
  }

  const char* name() const override { return "third-law"; }

  GraphView MakeView(Rng& rng) const override {
    GraphView view = base_.MakeView(rng);
    // Deterministic injection (no RNG): the same configuration-similar pairs
    // appear in every view, as both directions of a spatial-type edge.
    for (const auto& [a, b] : extra_edges_) {
      view.edges.Add(a, b);
      view.edges.Add(b, a);
      view.spatial_edges.Add(a, b);
      view.spatial_edges.Add(b, a);
      ++view.surviving_spatial;
    }
    return view;
  }

  size_t num_extra_pairs() const { return extra_edges_.size(); }

 private:
  SpatialImportanceAugmentation base_;
  std::vector<std::pair<roadnet::SegmentId, roadnet::SegmentId>> extra_edges_;
};

class UniformDropAugmentation : public Augmentation {
 public:
  UniformDropAugmentation(const roadnet::RoadNetwork& network,
                          const roadnet::SegmentFeatures& features,
                          double edge_drop_rate, double feature_mask_rate)
      : network_(&network),
        features_(&features),
        edge_drop_rate_(edge_drop_rate),
        feature_mask_rate_(feature_mask_rate) {}

  const char* name() const override { return "uniform-drop"; }

  GraphView MakeView(Rng& rng) const override {
    GraphView view;
    for (const roadnet::TopoEdge& e : network_->topo_edges()) {
      if (rng.Bernoulli(edge_drop_rate_)) continue;
      view.edges.Add(e.from, e.to);
      view.topo_edges.Add(e.from, e.to);
      ++view.surviving_topo;
    }
    if (feature_mask_rate_ > 0.0) {
      // GraphCL's attribute masking: replaces a fraction of feature values
      // with bin 0 (an arbitrary shared "masked" id — the embedding learns
      // to treat it as low-information).
      view.masked_ids = features_->ids;
      for (auto& column : view.masked_ids) {
        for (int64_t& id : column) {
          if (rng.Bernoulli(feature_mask_rate_)) id = 0;
        }
      }
    }
    return view;
  }

 private:
  const roadnet::RoadNetwork* network_;
  const roadnet::SegmentFeatures* features_;
  double edge_drop_rate_;
  double feature_mask_rate_;
};

class AdaptiveDropAugmentation : public Augmentation {
 public:
  AdaptiveDropAugmentation(const roadnet::RoadNetwork& network, double mean_rate,
                           double epsilon)
      : network_(&network), mean_rate_(mean_rate), epsilon_(epsilon) {}

  const char* name() const override { return "adaptive-drop"; }

  GraphView MakeView(Rng& rng) const override {
    const auto& edges = network_->topo_edges();
    double min_w = 1e18, max_w = -1e18;
    for (const roadnet::TopoEdge& e : edges) {
      min_w = std::min(min_w, e.weight);
      max_w = std::max(max_w, e.weight);
    }
    GraphView view;
    for (const roadnet::TopoEdge& e : edges) {
      double normalized = max_w > min_w ? (e.weight - min_w) / (max_w - min_w) : 0.5;
      double drop =
          std::clamp(2.0 * mean_rate_ * (1.0 - normalized), epsilon_, 1.0 - epsilon_);
      if (rng.Bernoulli(drop)) continue;
      view.edges.Add(e.from, e.to);
      view.topo_edges.Add(e.from, e.to);
      ++view.surviving_topo;
    }
    return view;
  }

 private:
  const roadnet::RoadNetwork* network_;
  double mean_rate_;
  double epsilon_;
};

}  // namespace

std::unique_ptr<Augmentation> MakeSpatialImportanceAugmentation(
    const roadnet::RoadNetwork& network, const std::vector<SpatialEdge>& spatial_edges,
    const AugmentationConfig& config) {
  return std::make_unique<SpatialImportanceAugmentation>(network, spatial_edges, config);
}

std::unique_ptr<Augmentation> MakeThirdLawAugmentation(
    const roadnet::RoadNetwork& network, const std::vector<SpatialEdge>& spatial_edges,
    const AugmentationConfig& config, const ThirdLawConfig& third_law) {
  return std::make_unique<ThirdLawAugmentation>(network, spatial_edges, config,
                                                third_law);
}

std::unique_ptr<Augmentation> MakeUniformDropAugmentation(
    const roadnet::RoadNetwork& network, const roadnet::SegmentFeatures& features,
    double edge_drop_rate, double feature_mask_rate) {
  return std::make_unique<UniformDropAugmentation>(network, features, edge_drop_rate,
                                                   feature_mask_rate);
}

std::unique_ptr<Augmentation> MakeAdaptiveDropAugmentation(
    const roadnet::RoadNetwork& network, double mean_rate, double epsilon) {
  return std::make_unique<AdaptiveDropAugmentation>(network, mean_rate, epsilon);
}

}  // namespace sarn::core
