#include "core/augmentation.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "common/check.h"

namespace sarn::core {
namespace {

using PairKey = std::pair<roadnet::SegmentId, roadnet::SegmentId>;

PairKey KeyOf(roadnet::SegmentId a, roadnet::SegmentId b) {
  return {std::min(a, b), std::max(a, b)};
}

}  // namespace

double SigmaEpsilon(double x, double epsilon) {
  SARN_CHECK(epsilon >= 0.0 && epsilon < 0.5) << epsilon;
  return epsilon + x * (1.0 - 2.0 * epsilon);
}

double TopoCorruptionProbability(double weight, double min_weight, double max_weight,
                                 double epsilon) {
  double normalized =
      max_weight > min_weight ? (weight - min_weight) / (max_weight - min_weight) : 0.5;
  return SigmaEpsilon(1.0 - normalized, epsilon);
}

double SpatialCorruptionProbability(double weight, double epsilon) {
  return SigmaEpsilon(1.0 - weight, epsilon);
}

GraphView AugmentGraph(const std::vector<roadnet::TopoEdge>& topo_edges,
                       const std::vector<SpatialEdge>& spatial_edges,
                       const AugmentationConfig& config, Rng& rng) {
  SARN_CHECK(config.rho_t >= 0.0 && config.rho_t < 1.0) << config.rho_t;
  SARN_CHECK(config.rho_s >= 0.0 && config.rho_s < 1.0) << config.rho_s;

  // Eq. 6 normalisation bounds over non-zero topological weights.
  double min_w = 1e18, max_w = -1e18;
  for (const roadnet::TopoEdge& e : topo_edges) {
    min_w = std::min(min_w, e.weight);
    max_w = std::max(max_w, e.weight);
  }

  std::vector<bool> drop_topo(topo_edges.size(), false);
  std::vector<bool> drop_spatial(spatial_edges.size(), false);

  if (!topo_edges.empty() && config.rho_t > 0.0) {
    std::vector<double> weights(topo_edges.size());
    for (size_t i = 0; i < topo_edges.size(); ++i) {
      weights[i] =
          TopoCorruptionProbability(topo_edges[i].weight, min_w, max_w, config.epsilon);
    }
    size_t k = static_cast<size_t>(std::llround(config.rho_t * topo_edges.size()));
    for (size_t idx : rng.WeightedSampleWithoutReplacement(weights, k)) {
      drop_topo[idx] = true;
    }
  }
  if (!spatial_edges.empty() && config.rho_s > 0.0) {
    std::vector<double> weights(spatial_edges.size());
    for (size_t i = 0; i < spatial_edges.size(); ++i) {
      weights[i] = SpatialCorruptionProbability(spatial_edges[i].weight, config.epsilon);
    }
    size_t k = static_cast<size_t>(std::llround(config.rho_s * spatial_edges.size()));
    for (size_t idx : rng.WeightedSampleWithoutReplacement(weights, k)) {
      drop_spatial[idx] = true;
    }
  }

  // Dual-typed coupling: a pair removed in either matrix disappears from both.
  if (config.couple_dual_typed) {
    std::map<PairKey, std::vector<size_t>> topo_of_pair;
    for (size_t i = 0; i < topo_edges.size(); ++i) {
      topo_of_pair[KeyOf(topo_edges[i].from, topo_edges[i].to)].push_back(i);
    }
    std::map<PairKey, size_t> spatial_of_pair;
    for (size_t i = 0; i < spatial_edges.size(); ++i) {
      spatial_of_pair[KeyOf(spatial_edges[i].a, spatial_edges[i].b)] = i;
    }
    for (const auto& [key, topo_indices] : topo_of_pair) {
      auto it = spatial_of_pair.find(key);
      if (it == spatial_of_pair.end()) continue;
      bool any_topo_dropped = false;
      for (size_t idx : topo_indices) any_topo_dropped |= drop_topo[idx];
      if (any_topo_dropped || drop_spatial[it->second]) {
        for (size_t idx : topo_indices) drop_topo[idx] = true;
        drop_spatial[it->second] = true;
      }
    }
  }

  GraphView view;
  for (size_t i = 0; i < topo_edges.size(); ++i) {
    if (drop_topo[i]) continue;
    view.edges.Add(topo_edges[i].from, topo_edges[i].to);
    ++view.surviving_topo;
  }
  for (size_t i = 0; i < spatial_edges.size(); ++i) {
    if (drop_spatial[i]) continue;
    view.edges.Add(spatial_edges[i].a, spatial_edges[i].b);
    view.edges.Add(spatial_edges[i].b, spatial_edges[i].a);
    ++view.surviving_spatial;
  }
  return view;
}

nn::EdgeList FullEdgeList(const std::vector<roadnet::TopoEdge>& topo_edges,
                          const std::vector<SpatialEdge>& spatial_edges) {
  nn::EdgeList edges;
  for (const roadnet::TopoEdge& e : topo_edges) edges.Add(e.from, e.to);
  for (const SpatialEdge& e : spatial_edges) {
    edges.Add(e.a, e.b);
    edges.Add(e.b, e.a);
  }
  return edges;
}

}  // namespace sarn::core
