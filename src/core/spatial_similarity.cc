#include "core/spatial_similarity.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "common/check.h"
#include "geo/spatial_index.h"

namespace sarn::core {

double DistanceSimilarity(double sp_dist_meters, double delta_ds_meters) {
  SARN_CHECK_GT(delta_ds_meters, 0.0);
  double clamped = std::min(sp_dist_meters, delta_ds_meters);
  return std::cos(geo::kPi * clamped / (2.0 * delta_ds_meters));
}

double AngleSimilarity(double ag_dist_radians, double delta_as_radians) {
  SARN_CHECK_GT(delta_as_radians, 0.0);
  double clamped = std::min(ag_dist_radians, delta_as_radians);
  return std::cos(geo::kPi * clamped / (2.0 * delta_as_radians));
}

double SpatialSimilarity(const roadnet::RoadSegment& a, const roadnet::RoadSegment& b,
                         const SpatialSimilarityConfig& config) {
  double sp_dist = geo::HaversineMeters(a.Midpoint(), b.Midpoint());
  double ag_dist = geo::AngularDistance(a.radian, b.radian);
  if (sp_dist >= config.delta_ds_meters || ag_dist >= config.delta_as_radians) {
    return 0.0;
  }
  return 0.5 * (DistanceSimilarity(sp_dist, config.delta_ds_meters) +
                AngleSimilarity(ag_dist, config.delta_as_radians));
}

std::vector<SpatialEdge> BuildSpatialEdges(const roadnet::RoadNetwork& network,
                                           const SpatialSimilarityConfig& config) {
  int64_t n = network.num_segments();
  geo::SpatialIndex index(network.Midpoints(), config.delta_ds_meters);

  // Candidate edges per segment, strongest first, capped.
  using Candidate = std::pair<double, roadnet::SegmentId>;  // (weight, neighbor)
  std::vector<std::vector<Candidate>> top(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const roadnet::RoadSegment& si = network.segment(i);
    std::vector<uint32_t> nearby =
        index.WithinRadius(si.Midpoint(), config.delta_ds_meters);
    std::vector<Candidate>& candidates = top[static_cast<size_t>(i)];
    for (uint32_t j : nearby) {
      if (static_cast<int64_t>(j) == i) continue;
      double w = SpatialSimilarity(si, network.segment(j), config);
      if (w > 0.0) candidates.emplace_back(w, static_cast<roadnet::SegmentId>(j));
    }
    if (static_cast<int>(candidates.size()) > config.max_spatial_neighbors) {
      std::partial_sort(candidates.begin(),
                        candidates.begin() + config.max_spatial_neighbors,
                        candidates.end(), std::greater<Candidate>());
      candidates.resize(static_cast<size_t>(config.max_spatial_neighbors));
    }
  }

  // Union of both directions' top lists, deduplicated as undirected (a < b).
  std::set<std::pair<roadnet::SegmentId, roadnet::SegmentId>> seen;
  std::vector<SpatialEdge> edges;
  for (int64_t i = 0; i < n; ++i) {
    for (const Candidate& c : top[static_cast<size_t>(i)]) {
      roadnet::SegmentId a = std::min<roadnet::SegmentId>(i, c.second);
      roadnet::SegmentId b = std::max<roadnet::SegmentId>(i, c.second);
      if (seen.emplace(a, b).second) {
        edges.push_back({a, b, c.first});
      }
    }
  }
  return edges;
}

int64_t CountDualTypedEdges(const roadnet::RoadNetwork& network,
                            const std::vector<SpatialEdge>& spatial_edges) {
  std::set<std::pair<roadnet::SegmentId, roadnet::SegmentId>> topo_pairs;
  for (const roadnet::TopoEdge& e : network.topo_edges()) {
    topo_pairs.emplace(std::min(e.from, e.to), std::max(e.from, e.to));
  }
  int64_t count = 0;
  for (const SpatialEdge& e : spatial_edges) {
    if (topo_pairs.count({e.a, e.b}) > 0) ++count;
  }
  return count;
}

}  // namespace sarn::core
