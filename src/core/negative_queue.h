// Spatial distance-based negative sampling (paper §4.4, Technical
// Contribution 3, Fig. 3).
//
// The road-network space is partitioned by a uniform grid with cell side
// `clen`; each cell keeps a FIFO queue of the last phi projected embeddings
// z'_j (from the momentum head P', MoCo-style) of segments whose midpoints
// fall into the cell. For an anchor s_i:
//  * local negatives  N_l(s_i): the queue entries of s_i's own cell, minus
//    entries that belong to s_i itself (Eq. 13);
//  * global negatives N_g(s_i): the mean-readout R(Q(c_k)) of every other
//    non-empty cell (Eq. 14); R(Q(s_i.cell)) doubles as the positive of the
//    global loss (Eq. 16).

#ifndef SARN_CORE_NEGATIVE_QUEUE_H_
#define SARN_CORE_NEGATIVE_QUEUE_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "common/binary_io.h"
#include "common/rng.h"
#include "geo/grid.h"
#include "roadnet/road_network.h"

namespace sarn::core {

/// A stored (detached) projected embedding.
struct QueueEntry {
  roadnet::SegmentId segment = -1;
  std::vector<float> embedding;
};

class NegativeQueueStore {
 public:
  /// `queue_budget` = total entries across all queues (the paper's K);
  /// the per-cell capacity phi is budget / num_cells, at least 2.
  NegativeQueueStore(const roadnet::RoadNetwork& network, double cell_side_meters,
                     int queue_budget);

  /// Enqueues z' for a segment (evicting the oldest entry when full).
  void Push(roadnet::SegmentId segment, std::vector<float> embedding);

  /// Eq. 13. Order: oldest first.
  std::vector<const QueueEntry*> LocalNegatives(roadnet::SegmentId anchor) const;

  /// Eq. 14: one aggregated embedding per *other* non-empty cell.
  std::vector<std::vector<float>> GlobalNegatives(roadnet::SegmentId anchor) const;

  /// R(Q(anchor.cell)); empty vector when the anchor's cell queue is empty.
  std::vector<float> OwnCellAggregate(roadnet::SegmentId anchor) const;

  /// Mean embedding of a cell's queue; empty when the queue is empty.
  std::vector<float> CellAggregate(int cell) const;

  /// Uniform random sample of up to `count` stored entries across all cells
  /// (the plain-InfoNCE negatives of the ablation variants).
  std::vector<const QueueEntry*> RandomNegatives(roadnet::SegmentId anchor, int count,
                                                 Rng& rng) const;

  int CellOf(roadnet::SegmentId segment) const;
  int num_cells() const { return grid_.num_cells(); }
  int per_cell_capacity() const { return capacity_; }
  int64_t TotalStored() const;

  /// Telemetry: cumulative Push calls / FIFO evictions since construction.
  /// Deliberately *not* part of the checkpointed state — a resumed run's
  /// counters restart at the restore point, but the queue contents (which
  /// drive training) are restored exactly.
  uint64_t push_count() const { return pushes_; }
  uint64_t eviction_count() const { return evictions_; }

  /// Cells with at least one entry, ascending.
  std::vector<int> NonEmptyCells() const;

  /// Serialises every cell queue (entry order preserved) so a resumed
  /// training run sees exactly the negatives the interrupted run had.
  void SaveState(ByteWriter& out) const;
  /// Restores queues written by SaveState. Returns false — leaving the store
  /// untouched — on truncation, a grid/capacity mismatch or out-of-range
  /// segment ids.
  bool LoadState(ByteReader& in);

 private:
  geo::Grid grid_;
  std::vector<int> cell_of_segment_;
  int capacity_;
  std::vector<std::deque<QueueEntry>> queues_;
  uint64_t pushes_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace sarn::core

#endif  // SARN_CORE_NEGATIVE_QUEUE_H_
