// Hyper-parameters of the SARN model (paper §5.1 defaults; bench binaries
// scale the structural sizes down via environment overrides).

#ifndef SARN_CORE_SARN_CONFIG_H_
#define SARN_CORE_SARN_CONFIG_H_

#include <cstdint>
#include <string>

#include "geo/point.h"

namespace sarn::core {

struct SarnConfig {
  uint64_t seed = 42;

  // --- Input feature embedding (paper §4.3) ---------------------------------
  /// Width of each of the seven per-feature embeddings; d_f = 7 * this.
  int64_t feature_dim_per_feature = 12;

  // --- Graph encoder ----------------------------------------------------------
  /// GAT hidden width (multi-head concat width) and final embedding size d.
  /// Paper: d = 128, 3 layers, L = 4 heads.
  int64_t hidden_dim = 64;
  int64_t embedding_dim = 64;
  int gat_layers = 2;
  int gat_heads = 4;

  /// Projection head output d_z < d (Eq. 11).
  int64_t projection_dim = 32;
  /// Footnote-1 ablation: false replaces GAT attention with a uniform mean
  /// over neighbors (fixed-adjacency aggregation).
  bool use_attention = true;

  // --- Spatial similarity matrix (Eqs. 3-5) ------------------------------------
  double delta_ds_meters = 200.0;
  double delta_as_radians = geo::kPi / 8.0;
  /// Cap on spatial neighbours kept per segment (highest A^s first); keeps
  /// |A^s| on par with |A^t| as in the paper's Table 3.
  int max_spatial_neighbors = 4;

  // --- Spatial importance-based augmentation (Eqs. 6-7) -------------------------
  double rho_t = 0.4;
  double rho_s = 0.4;
  /// The sigma_epsilon clamp of the corruption probabilities.
  double epsilon = 0.05;

  // --- Spatial distance-based negative sampling (§4.4) ---------------------------
  /// Grid cell side clen; paper uses 600-1200 m depending on the city.
  double cell_side_meters = 600.0;
  /// Total budget K across all cell queues (paper: 1000).
  int queue_budget = 1000;

  // --- Two-level loss (Eqs. 15-17) -------------------------------------------------
  double lambda = 0.4;
  double tau = 0.05;

  /// MoCo momentum m for the target encoder/head (Eq. 12).
  float momentum = 0.999f;

  // --- Training (Algorithm 1) ---------------------------------------------------
  int max_epochs = 40;
  int patience = 20;
  float learning_rate = 0.005f;
  int batch_size = 128;

  // --- Ablation switches (paper §5.4) ---------------------------------------------
  /// M: the spatial similarity matrix / spatial edges. Off in SARN-w/o-MNL
  /// and SARN-w/o-M.
  bool use_spatial_matrix = true;
  /// N+L: grid-based negative sampling with the two-level loss. Off in
  /// SARN-w/o-MNL and SARN-w/o-NL (plain InfoNCE with random negatives).
  bool use_spatial_negatives = true;
  /// Negatives per anchor when use_spatial_negatives is off.
  int random_negatives = 64;

  // --- Variant plane (DESIGN.md §16) ----------------------------------------------
  /// Registry names of the pluggable pieces. Empty string = the default.
  /// Encoders: "gat" (paper), "rfn". Augmentations: "spatial-importance"
  /// (paper), "third-law", "uniform-drop", "adaptive-drop". Negatives:
  /// "spatial" (paper), "random", "in-batch", "all-vertex". The legacy
  /// ablation switch `use_spatial_negatives = false` resolves "spatial" to
  /// "random" (SARN-w/o-NL) so pre-plane configs keep their meaning.
  std::string encoder = "gat";
  std::string augmentation = "spatial-importance";
  std::string negatives = "spatial";

  // --- "third-law" augmentation (arXiv 2406.04038) ---------------------------------
  /// Minimum midpoint distance for an injected far-pair edge.
  double third_law_radius_meters = 600.0;
  /// Minimum cosine similarity of dense feature vectors for a far pair.
  double third_law_min_similarity = 0.92;
  /// Far-pair edges kept per segment (best-similarity first).
  int third_law_neighbors = 2;

  // --- "uniform-drop" / "adaptive-drop" augmentations ------------------------------
  /// Edge-drop rate (uniform: exact Bernoulli rate; adaptive: mean rate).
  double edge_drop_rate = 0.2;
  /// Attribute-mask rate of "uniform-drop" (ids remapped to shared bin 0).
  double feature_mask_rate = 0.1;
};

}  // namespace sarn::core

namespace sarn::roadnet {
class RoadNetwork;
}

namespace sarn::core {

/// Scales `cell_side_meters` so the negative-sampling grid has roughly
/// `target_cells_per_axis` cells along the network's longer extent, clamped
/// to [150 m, 1200 m]. The paper picks clen per city (600-1200 m at 6-10 km
/// extents); this keeps the local/global negative balance when benches run
/// scaled-down networks.
void FitCellSideToNetwork(SarnConfig& config, const roadnet::RoadNetwork& network,
                          int target_cells_per_axis = 6);

}  // namespace sarn::core

#endif  // SARN_CORE_SARN_CONFIG_H_
