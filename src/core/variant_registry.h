// Name-keyed registry of the contrastive plane's pluggable pieces
// (DESIGN.md §16): encoders, augmentations, and negative samplers. SarnModel
// resolves its configured variant names here; the CLI and tests enumerate
// the registered names to expose/exercise every variant without hard-coding
// the list anywhere else.
//
// Built-in variants are registered on first access. External code may add
// further factories (e.g. from experiments) before constructing models; a
// later registration under an existing name replaces the earlier one.

#ifndef SARN_CORE_VARIANT_REGISTRY_H_
#define SARN_CORE_VARIANT_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/augmentation.h"
#include "core/checkpoint_tags.h"
#include "core/encoder.h"
#include "core/negative_sampler.h"
#include "core/sarn_config.h"
#include "core/spatial_similarity.h"
#include "roadnet/features.h"
#include "roadnet/road_network.h"

namespace sarn::core {

/// Everything a variant factory may need. All pointers outlive the created
/// variant (they reference SarnModel members).
struct VariantContext {
  const roadnet::RoadNetwork* network = nullptr;
  const SarnConfig* config = nullptr;
  const roadnet::SegmentFeatures* features = nullptr;
  const std::vector<SpatialEdge>* spatial_edges = nullptr;
  /// Encoder input width d_f (the feature-embedding output dimension).
  int64_t input_dim = 0;
};

class VariantRegistry {
 public:
  using EncoderFactory =
      std::function<std::unique_ptr<Encoder>(const VariantContext&, Rng&)>;
  using AugmentationFactory =
      std::function<std::unique_ptr<Augmentation>(const VariantContext&)>;
  using SamplerFactory =
      std::function<std::unique_ptr<NegativeSampler>(const VariantContext&)>;

  /// The process-wide registry, with built-ins already registered.
  static VariantRegistry& Instance();

  void RegisterEncoder(const std::string& name, EncoderFactory factory);
  void RegisterAugmentation(const std::string& name, AugmentationFactory factory);
  void RegisterSampler(const std::string& name, SamplerFactory factory);

  bool HasEncoder(const std::string& name) const;
  bool HasAugmentation(const std::string& name) const;
  bool HasSampler(const std::string& name) const;

  /// Construct a registered variant; nullptr for unknown names. The encoder
  /// factory draws its initial weights from `rng` (the caller controls the
  /// initialization stream).
  std::unique_ptr<Encoder> MakeEncoder(const std::string& name,
                                       const VariantContext& context, Rng& rng) const;
  std::unique_ptr<Augmentation> MakeAugmentation(const std::string& name,
                                                 const VariantContext& context) const;
  std::unique_ptr<NegativeSampler> MakeSampler(const std::string& name,
                                               const VariantContext& context) const;

  /// Registered names, sorted (stable enumeration for CLI help and tests).
  std::vector<std::string> EncoderNames() const;
  std::vector<std::string> AugmentationNames() const;
  std::vector<std::string> SamplerNames() const;

 private:
  VariantRegistry();

  std::map<std::string, EncoderFactory> encoders_;
  std::map<std::string, AugmentationFactory> augmentations_;
  std::map<std::string, SamplerFactory> samplers_;
};

/// Resolves a config's variant names to the registry names a model built
/// from it will use: empty strings fall back to the paper defaults, and the
/// legacy ablation switch use_spatial_negatives = false maps "spatial"
/// negatives to "random" (SARN-w/o-NL predates the named plane).
VariantTag ResolvedVariantTag(const SarnConfig& config);

}  // namespace sarn::core

#endif  // SARN_CORE_VARIANT_REGISTRY_H_
