#include "core/encoder.h"

#include <utility>

#include "nn/gat.h"
#include "nn/rfn.h"

namespace sarn::core {
namespace {

using tensor::Tensor;

class GatPlaneEncoder final : public Encoder {
 public:
  GatPlaneEncoder(const SarnConfig& config, int64_t input_dim, Rng& rng)
      : gat_(input_dim, config.hidden_dim, config.embedding_dim, config.gat_layers,
             config.gat_heads, rng, config.use_attention) {}

  const char* name() const override { return "gat"; }

  Tensor Forward(const Tensor& x, const GraphView& view) const override {
    return gat_.Forward(x, view.edges);
  }

  std::vector<Tensor> Parameters() const override { return gat_.Parameters(); }

  std::vector<Tensor> FinalLayerParameters() const override {
    return gat_.FinalLayerParameters();
  }

  int64_t out_dim() const override { return gat_.out_dim(); }

  // The combined edge count is already part of the PlanKey; GAT's op
  // sequence depends on nothing else, so no extension needed.

 private:
  nn::GatEncoder gat_;
};

class RfnPlaneEncoder final : public Encoder {
 public:
  RfnPlaneEncoder(const SarnConfig& config, int64_t input_dim, Rng& rng)
      : rfn_(input_dim, config.hidden_dim, config.embedding_dim, config.gat_layers,
             rng) {}

  const char* name() const override { return "rfn"; }

  Tensor Forward(const Tensor& x, const GraphView& view) const override {
    return rfn_.Forward(x, view.topo_edges, view.spatial_edges);
  }

  std::vector<Tensor> Parameters() const override { return rfn_.Parameters(); }

  std::vector<Tensor> FinalLayerParameters() const override {
    return rfn_.FinalLayerParameters();
  }

  int64_t out_dim() const override { return rfn_.out_dim(); }

  // RfnLayer skips a relation's term when that relation has no surviving
  // edges, so the step structure depends on the per-relation split — not
  // just on the combined counts the base PlanKey hashes.
  void ExtendPlanKey(uint64_t& hash, const GraphView& view1,
                     const GraphView& view2) const override {
    auto mix = [&hash](uint64_t v) {
      hash ^= v + 0x9e3779b97f4a7c15ull + (hash << 6) + (hash >> 2);
    };
    mix(static_cast<uint64_t>(view1.topo_edges.size()));
    mix(static_cast<uint64_t>(view1.spatial_edges.size()));
    mix(static_cast<uint64_t>(view2.topo_edges.size()));
    mix(static_cast<uint64_t>(view2.spatial_edges.size()));
  }

 private:
  nn::RfnEncoder rfn_;
};

}  // namespace

std::unique_ptr<Encoder> MakeGatEncoder(const SarnConfig& config, int64_t input_dim,
                                        Rng& rng) {
  return std::make_unique<GatPlaneEncoder>(config, input_dim, rng);
}

std::unique_ptr<Encoder> MakeRfnEncoder(const SarnConfig& config, int64_t input_dim,
                                        Rng& rng) {
  return std::make_unique<RfnPlaneEncoder>(config, input_dim, rng);
}

}  // namespace sarn::core
