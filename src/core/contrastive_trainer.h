// The variant-agnostic contrastive training driver (DESIGN.md §16).
//
// ContrastiveTrainer owns everything about *how* momentum contrastive
// training runs — the epoch/batch loop, MoCo momentum update, optimizer and
// LR schedule, crash-safe checkpoint/resume (with the variant tag), the
// step-plan engine hookup, abort-on-non-finite guards, and epoch telemetry —
// while the model supplies *what* is trained: the encoder pair, the
// augmentation's graph views, and the negative sampler's loss. Swapping any
// registry variant changes none of the driver code, which is why the
// bitwise-reproducibility invariants (resume identity, plan-replay identity,
// thread-count identity) hold for every composition at once.

#ifndef SARN_CORE_CONTRASTIVE_TRAINER_H_
#define SARN_CORE_CONTRASTIVE_TRAINER_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/serialization.h"
#include "tensor/optimizer.h"

namespace sarn::core {

class SarnModel;
struct TrainOptions;
struct TrainStats;

class ContrastiveTrainer {
 public:
  /// `model` must outlive the trainer.
  explicit ContrastiveTrainer(SarnModel& model) : model_(&model) {}

  /// Runs (or resumes) training to completion; see SarnModel::Train for the
  /// full contract.
  TrainStats Run(const TrainOptions& options);

 private:
  /// Early-stopping and epoch bookkeeping carried across checkpoints.
  struct Progress {
    int next_epoch = 0;
    double best_loss = 1e18;
    int epochs_since_best = 0;
    std::vector<double> epoch_losses;
  };

  /// Packs the complete training state into a checkpoint container,
  /// including the model's variant tag.
  nn::TrainingCheckpoint BuildCheckpoint(const tensor::Adam& optimizer,
                                         const tensor::CosineAnnealingSchedule& schedule,
                                         const Rng& rng, const Progress& progress) const;

  /// Restores the state captured by BuildCheckpoint. Atomic: every section
  /// is parsed and validated into staging first, and the model/optimizer/
  /// rng/sampler are only mutated once everything checks out. Returns false
  /// when the checkpoint does not match this model, with a human-readable
  /// reason in *detail (a variant-tag mismatch names both combos).
  bool ApplyCheckpoint(const nn::TrainingCheckpoint& ckpt, tensor::Adam& optimizer,
                       tensor::CosineAnnealingSchedule& schedule, Rng& rng,
                       Progress& progress, std::string* detail);

  SarnModel* model_;
};

}  // namespace sarn::core

#endif  // SARN_CORE_CONTRASTIVE_TRAINER_H_
