#include "core/negative_queue.h"

#include <algorithm>

#include "common/check.h"

namespace sarn::core {

NegativeQueueStore::NegativeQueueStore(const roadnet::RoadNetwork& network,
                                       double cell_side_meters, int queue_budget)
    : grid_(network.bounding_box(), cell_side_meters) {
  SARN_CHECK_GT(queue_budget, 0);
  cell_of_segment_.reserve(static_cast<size_t>(network.num_segments()));
  for (const roadnet::RoadSegment& s : network.segments()) {
    cell_of_segment_.push_back(grid_.CellOf(s.Midpoint()));
  }
  capacity_ = std::max(2, queue_budget / std::max(1, grid_.num_cells()));
  queues_.resize(static_cast<size_t>(grid_.num_cells()));
}

void NegativeQueueStore::Push(roadnet::SegmentId segment, std::vector<float> embedding) {
  SARN_CHECK(segment >= 0 &&
             segment < static_cast<int64_t>(cell_of_segment_.size()));
  std::deque<QueueEntry>& queue =
      queues_[static_cast<size_t>(cell_of_segment_[static_cast<size_t>(segment)])];
  queue.push_back({segment, std::move(embedding)});
  ++pushes_;
  if (static_cast<int>(queue.size()) > capacity_) {
    queue.pop_front();
    ++evictions_;
  }
}

std::vector<const QueueEntry*> NegativeQueueStore::LocalNegatives(
    roadnet::SegmentId anchor) const {
  const std::deque<QueueEntry>& queue =
      queues_[static_cast<size_t>(CellOf(anchor))];
  std::vector<const QueueEntry*> out;
  out.reserve(queue.size());
  for (const QueueEntry& entry : queue) {
    if (entry.segment != anchor) out.push_back(&entry);
  }
  return out;
}

std::vector<float> NegativeQueueStore::CellAggregate(int cell) const {
  const std::deque<QueueEntry>& queue = queues_[static_cast<size_t>(cell)];
  if (queue.empty()) return {};
  std::vector<float> mean(queue.front().embedding.size(), 0.0f);
  for (const QueueEntry& entry : queue) {
    for (size_t j = 0; j < mean.size(); ++j) mean[j] += entry.embedding[j];
  }
  float inv = 1.0f / static_cast<float>(queue.size());
  for (float& v : mean) v *= inv;
  return mean;
}

std::vector<std::vector<float>> NegativeQueueStore::GlobalNegatives(
    roadnet::SegmentId anchor) const {
  int own = CellOf(anchor);
  std::vector<std::vector<float>> out;
  for (int cell = 0; cell < grid_.num_cells(); ++cell) {
    if (cell == own) continue;
    std::vector<float> aggregate = CellAggregate(cell);
    if (!aggregate.empty()) out.push_back(std::move(aggregate));
  }
  return out;
}

std::vector<float> NegativeQueueStore::OwnCellAggregate(roadnet::SegmentId anchor) const {
  return CellAggregate(CellOf(anchor));
}

std::vector<const QueueEntry*> NegativeQueueStore::RandomNegatives(
    roadnet::SegmentId anchor, int count, Rng& rng) const {
  std::vector<const QueueEntry*> pool;
  for (const std::deque<QueueEntry>& queue : queues_) {
    for (const QueueEntry& entry : queue) {
      if (entry.segment != anchor) pool.push_back(&entry);
    }
  }
  if (static_cast<int>(pool.size()) <= count) return pool;
  std::vector<const QueueEntry*> out;
  out.reserve(static_cast<size_t>(count));
  for (size_t idx :
       rng.SampleWithoutReplacement(pool.size(), static_cast<size_t>(count))) {
    out.push_back(pool[idx]);
  }
  return out;
}

int NegativeQueueStore::CellOf(roadnet::SegmentId segment) const {
  SARN_CHECK(segment >= 0 &&
             segment < static_cast<int64_t>(cell_of_segment_.size()));
  return cell_of_segment_[static_cast<size_t>(segment)];
}

int64_t NegativeQueueStore::TotalStored() const {
  int64_t total = 0;
  for (const auto& queue : queues_) total += static_cast<int64_t>(queue.size());
  return total;
}

void NegativeQueueStore::SaveState(ByteWriter& out) const {
  out.PutI64(grid_.num_cells());
  out.PutI64(capacity_);
  for (const std::deque<QueueEntry>& queue : queues_) {
    out.PutU64(queue.size());
    for (const QueueEntry& entry : queue) {
      out.PutI64(entry.segment);
      out.PutFloats(entry.embedding);
    }
  }
}

bool NegativeQueueStore::LoadState(ByteReader& in) {
  int64_t num_cells = 0;
  int64_t capacity = 0;
  if (!in.GetI64(&num_cells) || !in.GetI64(&capacity)) return false;
  if (num_cells != grid_.num_cells() || capacity != capacity_) return false;
  std::vector<std::deque<QueueEntry>> staged(queues_.size());
  for (std::deque<QueueEntry>& queue : staged) {
    uint64_t size = 0;
    if (!in.GetU64(&size) || size > static_cast<uint64_t>(capacity_)) return false;
    for (uint64_t i = 0; i < size; ++i) {
      QueueEntry entry;
      if (!in.GetI64(&entry.segment) || !in.GetFloats(&entry.embedding)) return false;
      if (entry.segment < 0 ||
          entry.segment >= static_cast<int64_t>(cell_of_segment_.size())) {
        return false;
      }
      queue.push_back(std::move(entry));
    }
  }
  queues_ = std::move(staged);
  return true;
}

std::vector<int> NegativeQueueStore::NonEmptyCells() const {
  std::vector<int> cells;
  for (int cell = 0; cell < grid_.num_cells(); ++cell) {
    if (!queues_[static_cast<size_t>(cell)].empty()) cells.push_back(cell);
  }
  return cells;
}

}  // namespace sarn::core
