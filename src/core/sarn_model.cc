#include "core/sarn_model.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/logging.h"
#include "common/timer.h"
#include "nn/losses.h"
#include "nn/serialization.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"

namespace sarn::core {

void FitCellSideToNetwork(SarnConfig& config, const roadnet::RoadNetwork& network,
                          int target_cells_per_axis) {
  SARN_CHECK_GT(target_cells_per_axis, 0);
  double extent = std::max(network.bounding_box().WidthMeters(),
                           network.bounding_box().HeightMeters());
  config.cell_side_meters =
      std::clamp(extent / target_cells_per_axis, 150.0, 1200.0);
}

namespace {

using tensor::Tensor;

// Mask value for padded negative slots; after division by tau (>= 0.01)
// exp() underflows to exactly 0.
constexpr float kMaskedSimilarity = -1e4f;

// L2-normalises a raw float vector in place.
void NormalizeVector(std::vector<float>& v) {
  double sq = 0.0;
  for (float x : v) sq += static_cast<double>(x) * x;
  float inv = sq > 1e-16 ? static_cast<float>(1.0 / std::sqrt(sq)) : 0.0f;
  for (float& x : v) x *= inv;
}

}  // namespace

SarnModel::SarnModel(const roadnet::RoadNetwork& network, SarnConfig config)
    : network_(&network), config_(config) {
  SARN_CHECK_GT(network.num_segments(), 1);
  features_ = roadnet::FeaturizeSegments(network);

  if (config_.use_spatial_matrix) {
    SpatialSimilarityConfig similarity_config;
    similarity_config.delta_ds_meters = config_.delta_ds_meters;
    similarity_config.delta_as_radians = config_.delta_as_radians;
    similarity_config.max_spatial_neighbors = config_.max_spatial_neighbors;
    spatial_edges_ = BuildSpatialEdges(network, similarity_config);
  }
  full_edges_ = FullEdgeList(network.topo_edges(), spatial_edges_);

  Rng init_rng(config_.seed);
  std::vector<int64_t> feature_dims(features_.vocab_sizes.size(),
                                    config_.feature_dim_per_feature);
  feature_embedding_ = std::make_unique<nn::FeatureEmbedding>(features_.vocab_sizes,
                                                              feature_dims, init_rng);
  int64_t d_f = feature_embedding_->output_dim();
  online_encoder_ = std::make_unique<nn::GatEncoder>(
      d_f, config_.hidden_dim, config_.embedding_dim, config_.gat_layers,
      config_.gat_heads, init_rng, config_.use_attention);
  online_head_ = std::make_unique<nn::ProjectionHead>(
      config_.embedding_dim, config_.embedding_dim, config_.projection_dim, init_rng);
  target_encoder_ = std::make_unique<nn::GatEncoder>(
      d_f, config_.hidden_dim, config_.embedding_dim, config_.gat_layers,
      config_.gat_heads, init_rng, config_.use_attention);
  target_head_ = std::make_unique<nn::ProjectionHead>(
      config_.embedding_dim, config_.embedding_dim, config_.projection_dim, init_rng);
  target_encoder_->CopyWeightsFrom(*online_encoder_);
  target_head_->CopyWeightsFrom(*online_head_);

  queues_ = std::make_unique<NegativeQueueStore>(network, config_.cell_side_meters,
                                                 config_.queue_budget);
}

Tensor SarnModel::OnlineEncode(const nn::EdgeList& edges) const {
  Tensor x = feature_embedding_->Forward(features_.ids);
  return online_encoder_->Forward(x, edges);
}

Tensor SarnModel::TargetProject(const nn::EdgeList& edges) const {
  Tensor x = feature_embedding_->Forward(features_.ids);
  Tensor h = target_encoder_->Forward(x, edges);
  return tensor::RowL2Normalize(target_head_->Forward(h));
}

Tensor SarnModel::ComputeLoss(const Tensor& z, const Tensor& z_prime,
                              const std::vector<int64_t>& batch, Rng& rng) const {
  int64_t m = z.shape()[0];
  int64_t dz = z.shape()[1];
  Tensor positive_sim = tensor::DotRows(z, z_prime);  // Lambda(z_i, z'_i), [m].

  if (!config_.use_spatial_negatives) {
    // Plain InfoNCE (Eq. 2) with random negatives from the global queue pool.
    int k = config_.random_negatives;
    std::vector<float> neg_data(static_cast<size_t>(m * k * dz), 0.0f);
    std::vector<float> mask(static_cast<size_t>(m * k), kMaskedSimilarity);
    for (int64_t i = 0; i < m; ++i) {
      auto negatives = queues_->RandomNegatives(batch[static_cast<size_t>(i)], k, rng);
      for (size_t s = 0; s < negatives.size(); ++s) {
        std::copy(negatives[s]->embedding.begin(), negatives[s]->embedding.end(),
                  neg_data.begin() + (static_cast<size_t>(i) * k + s) * dz);
        mask[static_cast<size_t>(i) * k + s] = 0.0f;
      }
    }
    Tensor negatives = Tensor::FromVector({m * k, dz}, std::move(neg_data));
    std::vector<int64_t> repeat_index(static_cast<size_t>(m * k));
    for (int64_t i = 0; i < m; ++i) {
      std::fill_n(repeat_index.begin() + i * k, k, i);
    }
    Tensor sims = tensor::Reshape(
        tensor::DotRows(tensor::Rows(z, repeat_index), negatives), {m, k});
    sims = tensor::Add(sims, Tensor::FromVector({m, k}, std::move(mask)));
    return nn::InfoNceLoss(positive_sim, sims, static_cast<float>(config_.tau));
  }

  // --- Local contrastive loss (Eq. 15) -------------------------------------
  std::vector<std::vector<const QueueEntry*>> local(static_cast<size_t>(m));
  int64_t phi_max = 0;
  for (int64_t i = 0; i < m; ++i) {
    local[static_cast<size_t>(i)] =
        queues_->LocalNegatives(batch[static_cast<size_t>(i)]);
    phi_max = std::max(phi_max,
                       static_cast<int64_t>(local[static_cast<size_t>(i)].size()));
  }
  Tensor local_loss;
  if (phi_max == 0) {
    local_loss = Tensor::Zeros({1});  // Queues still empty (first iterations).
  } else {
    std::vector<float> neg_data(static_cast<size_t>(m * phi_max * dz), 0.0f);
    std::vector<float> mask(static_cast<size_t>(m * phi_max), kMaskedSimilarity);
    for (int64_t i = 0; i < m; ++i) {
      const auto& entries = local[static_cast<size_t>(i)];
      for (size_t s = 0; s < entries.size(); ++s) {
        std::copy(entries[s]->embedding.begin(), entries[s]->embedding.end(),
                  neg_data.begin() + (static_cast<size_t>(i) * phi_max + s) * dz);
        mask[static_cast<size_t>(i) * phi_max + s] = 0.0f;
      }
    }
    Tensor negatives = Tensor::FromVector({m * phi_max, dz}, std::move(neg_data));
    std::vector<int64_t> repeat_index(static_cast<size_t>(m * phi_max));
    for (int64_t i = 0; i < m; ++i) {
      std::fill_n(repeat_index.begin() + i * phi_max, phi_max, i);
    }
    Tensor sims = tensor::Reshape(
        tensor::DotRows(tensor::Rows(z, repeat_index), negatives), {m, phi_max});
    sims = tensor::Add(sims, Tensor::FromVector({m, phi_max}, std::move(mask)));
    local_loss = nn::InfoNceLoss(positive_sim, sims, static_cast<float>(config_.tau));
  }

  // --- Global contrastive loss (Eq. 16) --------------------------------------
  // One InfoNCE over cell aggregates: for anchor i, the positive is its own
  // cell's readout and the negatives are every other non-empty cell's
  // readout — i.e., cross entropy over cells with label = own cell.
  std::vector<int> cells = queues_->NonEmptyCells();
  Tensor global_loss = Tensor::Zeros({1});
  if (cells.size() >= 2) {
    std::vector<int> cell_rank(static_cast<size_t>(queues_->num_cells()), -1);
    for (size_t c = 0; c < cells.size(); ++c) cell_rank[static_cast<size_t>(cells[c])] =
        static_cast<int>(c);
    int64_t c_count = static_cast<int64_t>(cells.size());
    std::vector<float> agg_data(static_cast<size_t>(c_count * dz), 0.0f);
    for (int64_t c = 0; c < c_count; ++c) {
      std::vector<float> aggregate = queues_->CellAggregate(cells[static_cast<size_t>(c)]);
      std::copy(aggregate.begin(), aggregate.end(), agg_data.begin() + c * dz);
    }
    // Anchors whose own cell queue is non-empty participate.
    std::vector<int64_t> rows;
    std::vector<int64_t> labels;
    for (int64_t i = 0; i < m; ++i) {
      int rank = cell_rank[static_cast<size_t>(
          queues_->CellOf(batch[static_cast<size_t>(i)]))];
      if (rank >= 0) {
        rows.push_back(i);
        labels.push_back(rank);
      }
    }
    if (!rows.empty()) {
      Tensor aggregates = Tensor::FromVector({c_count, dz}, std::move(agg_data));
      Tensor sims = tensor::MatMul(tensor::Rows(z, rows), tensor::Transpose(aggregates));
      Tensor logits = tensor::MulScalar(sims, 1.0f / static_cast<float>(config_.tau));
      global_loss = nn::CrossEntropyWithLogits(logits, labels);
    }
  }

  float lambda = static_cast<float>(config_.lambda);
  return tensor::Add(tensor::MulScalar(local_loss, lambda),
                     tensor::MulScalar(global_loss, 1.0f - lambda));
}

TrainStats SarnModel::Train() {
  Timer timer;
  Rng rng(config_.seed + 1);
  AugmentationConfig augmentation;
  augmentation.rho_t = config_.rho_t;
  augmentation.rho_s = config_.rho_s;
  augmentation.epsilon = config_.epsilon;

  std::vector<Tensor> parameters = OnlineParameters();
  tensor::Adam optimizer(parameters, config_.learning_rate);
  tensor::CosineAnnealingSchedule schedule(config_.learning_rate, config_.max_epochs);

  std::vector<Tensor> target_params = target_encoder_->Parameters();
  for (const Tensor& p : target_head_->Parameters()) target_params.push_back(p);
  std::vector<Tensor> online_params_no_features = online_encoder_->Parameters();
  for (const Tensor& p : online_head_->Parameters()) {
    online_params_no_features.push_back(p);
  }

  int64_t n = network_->num_segments();
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);

  TrainStats stats;
  double best_loss = 1e18;
  int epochs_since_best = 0;
  for (int epoch = 0; epoch < config_.max_epochs; ++epoch) {
    schedule.OnEpoch(optimizer, epoch);
    GraphView view1 =
        AugmentGraph(network_->topo_edges(), spatial_edges_, augmentation, rng);
    GraphView view2 =
        AugmentGraph(network_->topo_edges(), spatial_edges_, augmentation, rng);
    rng.Shuffle(order);

    double epoch_loss = 0.0;
    int batches = 0;
    for (int64_t begin = 0; begin < n; begin += config_.batch_size) {
      int64_t end = std::min<int64_t>(n, begin + config_.batch_size);
      std::vector<int64_t> batch(order.begin() + begin, order.begin() + end);

      // Target branch first (fills z' and, later, the queues).
      Tensor z_prime_batch;
      {
        tensor::NoGradGuard guard;
        Tensor z_prime_all = TargetProject(view2.edges);
        z_prime_batch = tensor::Rows(z_prime_all, batch);
      }

      // Online branch.
      Tensor h = OnlineEncode(view1.edges);
      Tensor z_all = tensor::RowL2Normalize(online_head_->Forward(h));
      Tensor z_batch = tensor::Rows(z_all, batch);

      Tensor loss = ComputeLoss(z_batch, z_prime_batch, batch, rng);
      epoch_loss += loss.item();
      ++batches;

      optimizer.ZeroGrad();
      loss.Backward();
      optimizer.Step();
      nn::MomentumUpdate(target_params, online_params_no_features, config_.momentum);

      // Queue update with the fresh momentum projections (Algorithm 1 L15).
      for (size_t i = 0; i < batch.size(); ++i) {
        std::vector<float> embedding(
            z_prime_batch.data().begin() + static_cast<int64_t>(i) * config_.projection_dim,
            z_prime_batch.data().begin() +
                static_cast<int64_t>(i + 1) * config_.projection_dim);
        NormalizeVector(embedding);
        queues_->Push(batch[i], std::move(embedding));
      }
    }
    epoch_loss /= std::max(1, batches);
    stats.epoch_losses.push_back(epoch_loss);
    stats.epochs_run = epoch + 1;
    stats.final_loss = epoch_loss;
    if (epoch_loss < best_loss - 1e-4) {
      best_loss = epoch_loss;
      epochs_since_best = 0;
    } else if (++epochs_since_best >= config_.patience) {
      SARN_LOG(Debug) << "early stop at epoch " << epoch;
      break;
    }
  }
  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

Tensor SarnModel::Embeddings() const {
  tensor::NoGradGuard guard;
  return OnlineEncode(full_edges_);
}

Tensor SarnModel::EncodeForFineTune() const { return OnlineEncode(full_edges_); }

std::vector<Tensor> SarnModel::FineTuneParameters() const {
  return online_encoder_->FinalLayerParameters();
}

bool SarnModel::SaveWeights(const std::string& path) const {
  return nn::SaveParameters(path, OnlineParameters());
}

bool SarnModel::LoadWeights(const std::string& path) {
  if (!nn::LoadParameters(path, OnlineParameters())) return false;
  target_encoder_->CopyWeightsFrom(*online_encoder_);
  target_head_->CopyWeightsFrom(*online_head_);
  return true;
}

std::vector<Tensor> SarnModel::OnlineParameters() const {
  std::vector<Tensor> params = feature_embedding_->Parameters();
  for (const Tensor& p : online_encoder_->Parameters()) params.push_back(p);
  for (const Tensor& p : online_head_->Parameters()) params.push_back(p);
  return params;
}

}  // namespace sarn::core
