#include "core/sarn_model.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/csv.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/parallel.h"
#include "core/contrastive_trainer.h"
#include "core/variant_registry.h"
#include "tensor/ops.h"

namespace sarn::core {

void FitCellSideToNetwork(SarnConfig& config, const roadnet::RoadNetwork& network,
                          int target_cells_per_axis) {
  SARN_CHECK_GT(target_cells_per_axis, 0);
  double extent = std::max(network.bounding_box().WidthMeters(),
                           network.bounding_box().HeightMeters());
  config.cell_side_meters =
      std::clamp(extent / target_cells_per_axis, 150.0, 1200.0);
}

namespace {

using tensor::Tensor;

std::string JoinNames(const std::vector<std::string>& names) {
  std::string joined;
  for (const std::string& name : names) {
    if (!joined.empty()) joined += ", ";
    joined += name;
  }
  return joined;
}

}  // namespace

SarnModel::SarnModel(const roadnet::RoadNetwork& network, SarnConfig config)
    : network_(&network), config_(std::move(config)) {
  SARN_CHECK_GT(network.num_segments(), 1);
  variant_tag_ = ResolvedVariantTag(config_);
  features_ = roadnet::FeaturizeSegments(network);

  if (config_.use_spatial_matrix) {
    SpatialSimilarityConfig similarity_config;
    similarity_config.delta_ds_meters = config_.delta_ds_meters;
    similarity_config.delta_as_radians = config_.delta_as_radians;
    similarity_config.max_spatial_neighbors = config_.max_spatial_neighbors;
    spatial_edges_ = BuildSpatialEdges(network, similarity_config);
  }
  full_edges_ = FullEdgeList(network.topo_edges(), spatial_edges_);
  full_view_ = FullGraphView(network.topo_edges(), spatial_edges_);

  VariantRegistry& registry = VariantRegistry::Instance();
  VariantContext context;
  context.network = network_;
  context.config = &config_;
  context.features = &features_;
  context.spatial_edges = &spatial_edges_;

  // Initialization draws from one seeded stream, in member order: feature
  // embedding, online encoder, online head, target encoder, target head.
  // This order is a compatibility contract — changing it changes every
  // trained result (the golden-trace test pins it).
  Rng init_rng(config_.seed);
  std::vector<int64_t> feature_dims(features_.vocab_sizes.size(),
                                    config_.feature_dim_per_feature);
  feature_embedding_ = std::make_unique<nn::FeatureEmbedding>(features_.vocab_sizes,
                                                              feature_dims, init_rng);
  context.input_dim = feature_embedding_->output_dim();
  SARN_CHECK(registry.HasEncoder(variant_tag_.encoder))
      << "unknown encoder \"" << variant_tag_.encoder
      << "\" (registered: " << JoinNames(registry.EncoderNames()) << ")";
  SARN_CHECK(registry.HasAugmentation(variant_tag_.augmentation))
      << "unknown augmentation \"" << variant_tag_.augmentation
      << "\" (registered: " << JoinNames(registry.AugmentationNames()) << ")";
  SARN_CHECK(registry.HasSampler(variant_tag_.negatives))
      << "unknown negative sampler \"" << variant_tag_.negatives
      << "\" (registered: " << JoinNames(registry.SamplerNames()) << ")";
  online_encoder_ = registry.MakeEncoder(variant_tag_.encoder, context, init_rng);
  online_head_ = std::make_unique<nn::ProjectionHead>(
      config_.embedding_dim, config_.embedding_dim, config_.projection_dim, init_rng);
  target_encoder_ = registry.MakeEncoder(variant_tag_.encoder, context, init_rng);
  target_head_ = std::make_unique<nn::ProjectionHead>(
      config_.embedding_dim, config_.embedding_dim, config_.projection_dim, init_rng);
  target_encoder_->CopyWeightsFrom(*online_encoder_);
  target_head_->CopyWeightsFrom(*online_head_);

  augmentation_ = registry.MakeAugmentation(variant_tag_.augmentation, context);
  sampler_ = registry.MakeSampler(variant_tag_.negatives, context);
}

Tensor SarnModel::OnlineEncode(const GraphView& view) const {
  Tensor x = view.masked_ids.empty()
                 ? feature_embedding_->Forward(features_.ids)
                 : feature_embedding_->Forward(view.masked_ids);
  return online_encoder_->Forward(x, view);
}

Tensor SarnModel::TargetProject(const GraphView& view) const {
  Tensor x = view.masked_ids.empty()
                 ? feature_embedding_->Forward(features_.ids)
                 : feature_embedding_->Forward(view.masked_ids);
  Tensor h = target_encoder_->Forward(x, view);
  return tensor::RowL2Normalize(target_head_->Forward(h));
}

Tensor SarnModel::ComputeLoss(const Tensor& z, const Tensor& z_prime,
                              const std::vector<int64_t>& batch, Rng& rng) const {
  return sampler_->ComputeLoss(z, z_prime, Tensor(), batch, rng);
}

plan::PlanKey SarnModel::MakeStepPlanKey(const GraphView& view1, const GraphView& view2,
                                         const std::vector<int64_t>& batch,
                                         float learning_rate) const {
  plan::PlanKey key;
  uint64_t h = 0x5a524e;  // Arbitrary non-zero basis.
  auto put = [&h](uint64_t v) { h = plan::HashCombine(h, v); };
  auto put_d = [&put](double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    put(bits);
  };
  auto put_f = [&put](float v) {
    uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    put(bits);
  };
  // Hash every hyper-parameter: conservative (some fields cannot change the
  // step structure) but guarantees any config edit invalidates cached plans.
  put(config_.seed);
  put(static_cast<uint64_t>(config_.feature_dim_per_feature));
  put(static_cast<uint64_t>(config_.hidden_dim));
  put(static_cast<uint64_t>(config_.embedding_dim));
  put(static_cast<uint64_t>(config_.gat_layers));
  put(static_cast<uint64_t>(config_.gat_heads));
  put(static_cast<uint64_t>(config_.projection_dim));
  put(config_.use_attention ? 1 : 0);
  put_d(config_.delta_ds_meters);
  put_d(config_.delta_as_radians);
  put(static_cast<uint64_t>(config_.max_spatial_neighbors));
  put_d(config_.rho_t);
  put_d(config_.rho_s);
  put_d(config_.epsilon);
  put_d(config_.cell_side_meters);
  put(static_cast<uint64_t>(config_.queue_budget));
  put_d(config_.lambda);
  put_d(config_.tau);
  put_f(config_.momentum);
  put(static_cast<uint64_t>(config_.max_epochs));
  put(static_cast<uint64_t>(config_.patience));
  put_f(config_.learning_rate);
  put(static_cast<uint64_t>(config_.batch_size));
  put(config_.use_spatial_matrix ? 1 : 0);
  put(config_.use_spatial_negatives ? 1 : 0);
  put(static_cast<uint64_t>(config_.random_negatives));
  // Variant identity: a plan recorded under one encoder/augmentation/
  // negatives combo must never replay under another, even when the shape
  // fields happen to coincide.
  h = plan::HashString(h, variant_tag_.encoder);
  h = plan::HashString(h, variant_tag_.augmentation);
  h = plan::HashString(h, variant_tag_.negatives);
  put_d(config_.third_law_radius_meters);
  put_d(config_.third_law_min_similarity);
  put(static_cast<uint64_t>(config_.third_law_neighbors));
  put_d(config_.edge_drop_rate);
  put_d(config_.feature_mask_rate);
  // The LR the cosine schedule set for this epoch: an LR-schedule change is
  // a plan invalidation (the step values differ even if shapes do not, and
  // the key is the one contract a cached plan is trusted on).
  put_f(learning_rate);
  // Encoder-specific structural inputs (e.g. RFN's per-relation splits).
  online_encoder_->ExtendPlanKey(h, view1, view2);
  key.config_hash = h;

  key.vertices = network_->num_segments();
  key.edges_a = static_cast<int64_t>(view1.edges.src.size());
  key.edges_b = static_cast<int64_t>(view2.edges.src.size());
  key.batch = static_cast<int64_t>(batch.size());
  key.threads = static_cast<int64_t>(GetParallelThreads());
  // Sampler-specific structural state (phi_max / cells / rows for the
  // spatial two-level loss).
  sampler_->ExtendPlanKey(key, batch);
  return key;
}

TrainStats SarnModel::Train() { return Train(TrainOptions{}); }

TrainStats SarnModel::Train(const TrainOptions& options) {
  ContrastiveTrainer trainer(*this);
  return trainer.Run(options);
}

std::vector<Tensor> SarnModel::TargetParameters() const {
  std::vector<Tensor> params = target_encoder_->Parameters();
  for (const Tensor& p : target_head_->Parameters()) params.push_back(p);
  return params;
}

Tensor SarnModel::Embeddings() const {
  tensor::NoGradGuard guard;
  return OnlineEncode(full_view_);
}

Tensor SarnModel::EncodeForFineTune() const { return OnlineEncode(full_view_); }

std::vector<Tensor> SarnModel::FineTuneParameters() const {
  return online_encoder_->FinalLayerParameters();
}

bool SarnModel::SaveWeights(const std::string& path) const {
  return nn::SaveParameters(path, OnlineParameters());
}

bool SarnModel::LoadWeights(const std::string& path) {
  if (!nn::LoadParameters(path, OnlineParameters())) return false;
  target_encoder_->CopyWeightsFrom(*online_encoder_);
  target_head_->CopyWeightsFrom(*online_head_);
  return true;
}

ModelLoadStatus SarnModel::LoadFromTrainingCheckpoint(const std::string& path) {
  auto fail = [&path](ModelLoadError error, std::string message) {
    ModelLoadStatus status;
    status.error = error;
    status.message = path + ": " + std::move(message);
    SARN_LOG(Warning) << "checkpoint " << status.message;
    return status;
  };
  nn::TrainingCheckpoint ckpt;
  nn::CheckpointStatus ckpt_status = nn::LoadCheckpoint(path, &ckpt);
  if (!ckpt_status.ok()) {
    return fail(ModelLoadError::kParseError, ckpt_status.message);
  }
  // Variant compatibility first: a mismatched combo must fail with the two
  // combos named, never as a downstream tensor-shape mismatch.
  const std::string* variant = ckpt.FindSection(kSectionVariant);
  if (variant != nullptr) {
    VariantTag tag;
    ByteReader variant_in(*variant);
    if (!ReadVariantTag(variant_in, &tag)) {
      return fail(ModelLoadError::kParseError, "corrupt variant tag");
    }
    if (tag != variant_tag_) {
      return fail(ModelLoadError::kVariantMismatch,
                  "checkpoint was trained with " + VariantTagString(tag) +
                      " but this model composes " + VariantTagString(variant_tag_));
    }
  }
  const std::string* online = ckpt.FindSection(kSectionOnline);
  if (online == nullptr) {
    return fail(ModelLoadError::kParseError,
                std::string("no ") + kSectionOnline + " section");
  }
  ByteReader in(*online);
  ckpt_status = nn::ReadTensorsInto(in, OnlineParameters());
  if (!ckpt_status.ok()) {
    return fail(ModelLoadError::kArchitectureMismatch, ckpt_status.message);
  }
  target_encoder_->CopyWeightsFrom(*online_encoder_);
  target_head_->CopyWeightsFrom(*online_head_);
  return ModelLoadStatus{};
}

std::vector<Tensor> SarnModel::OnlineParameters() const {
  std::vector<Tensor> params = feature_embedding_->Parameters();
  for (const Tensor& p : online_encoder_->Parameters()) params.push_back(p);
  for (const Tensor& p : online_head_->Parameters()) params.push_back(p);
  return params;
}

// --- Unified model-state loading -------------------------------------------

const char* ModelLoadErrorName(ModelLoadError error) {
  switch (error) {
    case ModelLoadError::kOk: return "ok";
    case ModelLoadError::kFileNotFound: return "file_not_found";
    case ModelLoadError::kParseError: return "parse_error";
    case ModelLoadError::kArchitectureMismatch: return "architecture_mismatch";
    case ModelLoadError::kVariantMismatch: return "variant_mismatch";
    case ModelLoadError::kUnsupportedFormat: return "unsupported_format";
  }
  return "unknown";
}

namespace {

SarnModel::SnapshotLoader g_snapshot_loader = nullptr;

bool PathEndsWith(const std::string& path, const std::string& suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

ModelLoadResult LoadFail(ModelLoadError error, std::string message) {
  ModelLoadResult result;
  result.error = error;
  result.message = std::move(message);
  return result;
}

ModelLoadResult LoadEmbeddingsCsvSource(const std::string& path) {
  if (!std::filesystem::exists(path)) {
    return LoadFail(ModelLoadError::kFileNotFound, "cannot open " + path);
  }
  auto table = ReadCsvFile(path, /*has_header=*/false);
  if (!table.has_value() || table->rows.empty()) {
    return LoadFail(ModelLoadError::kParseError, path + ": not a CSV table");
  }
  int64_t n = static_cast<int64_t>(table->rows.size());
  int64_t d = static_cast<int64_t>(table->rows[0].size());
  std::vector<float> data;
  data.reserve(static_cast<size_t>(n * d));
  for (size_t i = 0; i < table->rows.size(); ++i) {
    const auto& row = table->rows[i];
    if (static_cast<int64_t>(row.size()) != d) {
      return LoadFail(ModelLoadError::kParseError,
                      path + ": row " + std::to_string(i) + " has " +
                          std::to_string(row.size()) + " cells, expected " +
                          std::to_string(d));
    }
    for (const std::string& cell : row) {
      auto value = ParseDouble(cell);
      if (!value.has_value()) {
        return LoadFail(ModelLoadError::kParseError,
                        path + ": non-numeric cell \"" + cell + "\"");
      }
      data.push_back(static_cast<float>(*value));
    }
  }
  ModelLoadResult result;
  result.embeddings = Tensor::FromVector({n, d}, std::move(data));
  return result;
}

ModelLoadResult LoadCheckpointSource(const ModelLoadSource& source) {
  if (source.network == nullptr) {
    return LoadFail(ModelLoadError::kArchitectureMismatch,
                    "checkpoint restore needs the network (and config) the "
                    "encoder runs on");
  }
  if (!std::filesystem::exists(source.path)) {
    return LoadFail(ModelLoadError::kFileNotFound, "cannot open " + source.path);
  }
  auto model = std::make_unique<SarnModel>(*source.network, source.config);
  ModelLoadStatus status = model->LoadFromTrainingCheckpoint(source.path);
  if (!status.ok()) {
    return LoadFail(status.error, status.message);
  }
  ModelLoadResult result;
  result.embeddings = model->Embeddings();
  result.model = std::move(model);
  return result;
}

}  // namespace

void SarnModel::SetSnapshotLoader(SnapshotLoader loader) {
  g_snapshot_loader = loader;
}

ModelLoadResult SarnModel::Load(const ModelLoadSource& source) {
  ModelLoadSource::Kind kind = source.kind;
  if (kind == ModelLoadSource::Kind::kAuto) {
    if (PathEndsWith(source.path, ".sarnsnap")) {
      kind = ModelLoadSource::Kind::kSnapshot;
    } else if (PathEndsWith(source.path, ".sarnckpt")) {
      kind = ModelLoadSource::Kind::kTrainingCheckpoint;
    } else {
      kind = ModelLoadSource::Kind::kEmbeddingsCsv;
    }
  }
  switch (kind) {
    case ModelLoadSource::Kind::kEmbeddingsCsv:
      return LoadEmbeddingsCsvSource(source.path);
    case ModelLoadSource::Kind::kTrainingCheckpoint:
      return LoadCheckpointSource(source);
    case ModelLoadSource::Kind::kSnapshot:
      if (g_snapshot_loader == nullptr) {
        return LoadFail(ModelLoadError::kUnsupportedFormat,
                        "snapshot loading is not linked into this binary");
      }
      return g_snapshot_loader(source.path);
    case ModelLoadSource::Kind::kAuto:
      break;  // Resolved above.
  }
  return LoadFail(ModelLoadError::kUnsupportedFormat, "unknown source kind");
}

}  // namespace sarn::core
