#include "core/sarn_model.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <numeric>

#include "common/check.h"
#include "common/csv.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "nn/losses.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "plan/executor.h"
#include "tensor/ops.h"

namespace sarn::core {

void FitCellSideToNetwork(SarnConfig& config, const roadnet::RoadNetwork& network,
                          int target_cells_per_axis) {
  SARN_CHECK_GT(target_cells_per_axis, 0);
  double extent = std::max(network.bounding_box().WidthMeters(),
                           network.bounding_box().HeightMeters());
  config.cell_side_meters =
      std::clamp(extent / target_cells_per_axis, 150.0, 1200.0);
}

namespace {

using tensor::Tensor;

// Mask value for padded negative slots; after division by tau (>= 0.01)
// exp() underflows to exactly 0.
constexpr float kMaskedSimilarity = -1e4f;

// Training-checkpoint section names.
constexpr char kSectionOnline[] = "sarn/online";
constexpr char kSectionTarget[] = "sarn/target";
constexpr char kSectionOptimizer[] = "sarn/optimizer";
constexpr char kSectionSchedule[] = "sarn/schedule";
constexpr char kSectionRng[] = "sarn/rng";
constexpr char kSectionQueues[] = "sarn/queues";
constexpr char kSectionTrainer[] = "sarn/trainer";

// Squared L2 norm of the accumulated gradients; +inf/NaN poison propagates
// into the sum, so one finite check covers every parameter.
double GradNormSquared(const std::vector<Tensor>& parameters) {
  double sum = 0.0;
  for (const Tensor& p : parameters) {
    for (float g : p.grad()) sum += static_cast<double>(g) * g;
  }
  return sum;
}

// L2-normalises a raw float vector in place.
void NormalizeVector(std::vector<float>& v) {
  double sq = 0.0;
  for (float x : v) sq += static_cast<double>(x) * x;
  float inv = sq > 1e-16 ? static_cast<float>(1.0 / std::sqrt(sq)) : 0.0f;
  for (float& x : v) x *= inv;
}

// Wall-time breakdown of one training epoch; field order is the emission
// order in the metrics file.
struct EpochPhases {
  double augmentation = 0.0;
  double target_forward = 0.0;
  double online_forward = 0.0;
  double loss = 0.0;
  double backward = 0.0;
  double optimizer_step = 0.0;
  double queue_push = 0.0;
  double checkpoint_write = 0.0;

  std::vector<std::pair<std::string, double>> AsList() const {
    return {{"augmentation", augmentation},   {"target_forward", target_forward},
            {"online_forward", online_forward}, {"loss", loss},
            {"backward", backward},           {"optimizer_step", optimizer_step},
            {"queue_push", queue_push},       {"checkpoint_write", checkpoint_write}};
  }
};

int64_t FileSizeOrZero(const std::string& path) {
  std::error_code ec;
  auto size = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<int64_t>(size);
}

}  // namespace

SarnModel::SarnModel(const roadnet::RoadNetwork& network, SarnConfig config)
    : network_(&network), config_(config) {
  SARN_CHECK_GT(network.num_segments(), 1);
  features_ = roadnet::FeaturizeSegments(network);

  if (config_.use_spatial_matrix) {
    SpatialSimilarityConfig similarity_config;
    similarity_config.delta_ds_meters = config_.delta_ds_meters;
    similarity_config.delta_as_radians = config_.delta_as_radians;
    similarity_config.max_spatial_neighbors = config_.max_spatial_neighbors;
    spatial_edges_ = BuildSpatialEdges(network, similarity_config);
  }
  full_edges_ = FullEdgeList(network.topo_edges(), spatial_edges_);

  Rng init_rng(config_.seed);
  std::vector<int64_t> feature_dims(features_.vocab_sizes.size(),
                                    config_.feature_dim_per_feature);
  feature_embedding_ = std::make_unique<nn::FeatureEmbedding>(features_.vocab_sizes,
                                                              feature_dims, init_rng);
  int64_t d_f = feature_embedding_->output_dim();
  online_encoder_ = std::make_unique<nn::GatEncoder>(
      d_f, config_.hidden_dim, config_.embedding_dim, config_.gat_layers,
      config_.gat_heads, init_rng, config_.use_attention);
  online_head_ = std::make_unique<nn::ProjectionHead>(
      config_.embedding_dim, config_.embedding_dim, config_.projection_dim, init_rng);
  target_encoder_ = std::make_unique<nn::GatEncoder>(
      d_f, config_.hidden_dim, config_.embedding_dim, config_.gat_layers,
      config_.gat_heads, init_rng, config_.use_attention);
  target_head_ = std::make_unique<nn::ProjectionHead>(
      config_.embedding_dim, config_.embedding_dim, config_.projection_dim, init_rng);
  target_encoder_->CopyWeightsFrom(*online_encoder_);
  target_head_->CopyWeightsFrom(*online_head_);

  queues_ = std::make_unique<NegativeQueueStore>(network, config_.cell_side_meters,
                                                 config_.queue_budget);
}

Tensor SarnModel::OnlineEncode(const nn::EdgeList& edges) const {
  Tensor x = feature_embedding_->Forward(features_.ids);
  return online_encoder_->Forward(x, edges);
}

Tensor SarnModel::TargetProject(const nn::EdgeList& edges) const {
  Tensor x = feature_embedding_->Forward(features_.ids);
  Tensor h = target_encoder_->Forward(x, edges);
  return tensor::RowL2Normalize(target_head_->Forward(h));
}

Tensor SarnModel::ComputeLoss(const Tensor& z, const Tensor& z_prime,
                              const std::vector<int64_t>& batch, Rng& rng) const {
  int64_t m = z.shape()[0];
  int64_t dz = z.shape()[1];
  Tensor positive_sim = tensor::DotRows(z, z_prime);  // Lambda(z_i, z'_i), [m].

  if (!config_.use_spatial_negatives) {
    // Plain InfoNCE (Eq. 2) with random negatives from the global queue pool.
    // Negatives and mask are staged straight into pooled tensor storage —
    // no transient std::vector<float> per batch.
    int k = config_.random_negatives;
    Tensor negatives = Tensor::Zeros({m * k, dz});
    Tensor mask = Tensor::Full({m, k}, kMaskedSimilarity);
    tensor::Storage& neg_data = negatives.mutable_data();
    tensor::Storage& mask_data = mask.mutable_data();
    for (int64_t i = 0; i < m; ++i) {
      auto drawn = queues_->RandomNegatives(batch[static_cast<size_t>(i)], k, rng);
      for (size_t s = 0; s < drawn.size(); ++s) {
        std::copy(drawn[s]->embedding.begin(), drawn[s]->embedding.end(),
                  neg_data.begin() + (static_cast<size_t>(i) * k + s) * dz);
        mask_data[static_cast<size_t>(i) * k + s] = 0.0f;
      }
    }
    std::vector<int64_t> repeat_index(static_cast<size_t>(m * k));
    for (int64_t i = 0; i < m; ++i) {
      std::fill_n(repeat_index.begin() + i * k, k, i);
    }
    Tensor sims = tensor::Reshape(
        tensor::DotRows(tensor::Rows(z, repeat_index), negatives), {m, k});
    sims = tensor::Add(sims, mask);
    return nn::InfoNceLoss(positive_sim, sims, static_cast<float>(config_.tau));
  }

  // --- Local contrastive loss (Eq. 15) -------------------------------------
  std::vector<std::vector<const QueueEntry*>> local(static_cast<size_t>(m));
  int64_t phi_max = 0;
  for (int64_t i = 0; i < m; ++i) {
    local[static_cast<size_t>(i)] =
        queues_->LocalNegatives(batch[static_cast<size_t>(i)]);
    phi_max = std::max(phi_max,
                       static_cast<int64_t>(local[static_cast<size_t>(i)].size()));
  }
  Tensor local_loss;
  if (phi_max == 0) {
    local_loss = Tensor::Zeros({1});  // Queues still empty (first iterations).
  } else {
    Tensor negatives = Tensor::Zeros({m * phi_max, dz});
    Tensor mask = Tensor::Full({m, phi_max}, kMaskedSimilarity);
    tensor::Storage& neg_data = negatives.mutable_data();
    tensor::Storage& mask_data = mask.mutable_data();
    for (int64_t i = 0; i < m; ++i) {
      const auto& entries = local[static_cast<size_t>(i)];
      for (size_t s = 0; s < entries.size(); ++s) {
        std::copy(entries[s]->embedding.begin(), entries[s]->embedding.end(),
                  neg_data.begin() + (static_cast<size_t>(i) * phi_max + s) * dz);
        mask_data[static_cast<size_t>(i) * phi_max + s] = 0.0f;
      }
    }
    std::vector<int64_t> repeat_index(static_cast<size_t>(m * phi_max));
    for (int64_t i = 0; i < m; ++i) {
      std::fill_n(repeat_index.begin() + i * phi_max, phi_max, i);
    }
    Tensor sims = tensor::Reshape(
        tensor::DotRows(tensor::Rows(z, repeat_index), negatives), {m, phi_max});
    sims = tensor::Add(sims, mask);
    local_loss = nn::InfoNceLoss(positive_sim, sims, static_cast<float>(config_.tau));
  }

  // --- Global contrastive loss (Eq. 16) --------------------------------------
  // One InfoNCE over cell aggregates: for anchor i, the positive is its own
  // cell's readout and the negatives are every other non-empty cell's
  // readout — i.e., cross entropy over cells with label = own cell.
  std::vector<int> cells = queues_->NonEmptyCells();
  Tensor global_loss = Tensor::Zeros({1});
  if (cells.size() >= 2) {
    std::vector<int> cell_rank(static_cast<size_t>(queues_->num_cells()), -1);
    for (size_t c = 0; c < cells.size(); ++c) cell_rank[static_cast<size_t>(cells[c])] =
        static_cast<int>(c);
    int64_t c_count = static_cast<int64_t>(cells.size());
    // Every row is fully overwritten by its cell's aggregate, so the pooled
    // buffer can stay uninitialized.
    Tensor aggregates = Tensor::Uninitialized({c_count, dz});
    tensor::Storage& agg_data = aggregates.mutable_data();
    for (int64_t c = 0; c < c_count; ++c) {
      std::vector<float> aggregate = queues_->CellAggregate(cells[static_cast<size_t>(c)]);
      std::copy(aggregate.begin(), aggregate.end(), agg_data.begin() + c * dz);
    }
    // Anchors whose own cell queue is non-empty participate.
    std::vector<int64_t> rows;
    std::vector<int64_t> labels;
    for (int64_t i = 0; i < m; ++i) {
      int rank = cell_rank[static_cast<size_t>(
          queues_->CellOf(batch[static_cast<size_t>(i)]))];
      if (rank >= 0) {
        rows.push_back(i);
        labels.push_back(rank);
      }
    }
    if (!rows.empty()) {
      Tensor sims = tensor::MatMul(tensor::Rows(z, rows), tensor::Transpose(aggregates));
      Tensor logits = tensor::MulScalar(sims, 1.0f / static_cast<float>(config_.tau));
      global_loss = nn::CrossEntropyWithLogits(logits, labels);
    }
  }

  float lambda = static_cast<float>(config_.lambda);
  return tensor::Add(tensor::MulScalar(local_loss, lambda),
                     tensor::MulScalar(global_loss, 1.0f - lambda));
}

plan::PlanKey SarnModel::MakeStepPlanKey(const GraphView& view1, const GraphView& view2,
                                         const std::vector<int64_t>& batch,
                                         float learning_rate) const {
  plan::PlanKey key;
  uint64_t h = 0x5a524e;  // Arbitrary non-zero basis.
  auto put = [&h](uint64_t v) { h = plan::HashCombine(h, v); };
  auto put_d = [&put](double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    put(bits);
  };
  auto put_f = [&put](float v) {
    uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    put(bits);
  };
  // Hash every hyper-parameter: conservative (some fields cannot change the
  // step structure) but guarantees any config edit invalidates cached plans.
  put(config_.seed);
  put(static_cast<uint64_t>(config_.feature_dim_per_feature));
  put(static_cast<uint64_t>(config_.hidden_dim));
  put(static_cast<uint64_t>(config_.embedding_dim));
  put(static_cast<uint64_t>(config_.gat_layers));
  put(static_cast<uint64_t>(config_.gat_heads));
  put(static_cast<uint64_t>(config_.projection_dim));
  put(config_.use_attention ? 1 : 0);
  put_d(config_.delta_ds_meters);
  put_d(config_.delta_as_radians);
  put(static_cast<uint64_t>(config_.max_spatial_neighbors));
  put_d(config_.rho_t);
  put_d(config_.rho_s);
  put_d(config_.epsilon);
  put_d(config_.cell_side_meters);
  put(static_cast<uint64_t>(config_.queue_budget));
  put_d(config_.lambda);
  put_d(config_.tau);
  put_f(config_.momentum);
  put(static_cast<uint64_t>(config_.max_epochs));
  put(static_cast<uint64_t>(config_.patience));
  put_f(config_.learning_rate);
  put(static_cast<uint64_t>(config_.batch_size));
  put(config_.use_spatial_matrix ? 1 : 0);
  put(config_.use_spatial_negatives ? 1 : 0);
  put(static_cast<uint64_t>(config_.random_negatives));
  // The LR the cosine schedule set for this epoch: an LR-schedule change is
  // a plan invalidation (the step values differ even if shapes do not, and
  // the key is the one contract a cached plan is trusted on).
  put_f(learning_rate);
  key.config_hash = h;

  key.vertices = network_->num_segments();
  key.edges_a = static_cast<int64_t>(view1.edges.src.size());
  key.edges_b = static_cast<int64_t>(view2.edges.src.size());
  key.batch = static_cast<int64_t>(batch.size());
  key.threads = static_cast<int64_t>(GetParallelThreads());
  if (config_.use_spatial_negatives) {
    // Mirror ComputeLoss's structural branches with pure queue queries.
    int64_t phi_max = 0;
    for (int64_t member : batch) {
      phi_max = std::max(
          phi_max, static_cast<int64_t>(queues_->LocalNegatives(member).size()));
    }
    key.phi_max = phi_max;
    std::vector<int> cells = queues_->NonEmptyCells();
    key.cells = static_cast<int64_t>(cells.size());
    if (cells.size() >= 2) {
      std::vector<char> nonempty(static_cast<size_t>(queues_->num_cells()), 0);
      for (int cell : cells) nonempty[static_cast<size_t>(cell)] = 1;
      int64_t rows = 0;
      for (int64_t member : batch) {
        if (nonempty[static_cast<size_t>(queues_->CellOf(member))] != 0) ++rows;
      }
      key.rows = rows;
    }
  }
  return key;
}

TrainStats SarnModel::Train() { return Train(TrainOptions{}); }

TrainStats SarnModel::Train(const TrainOptions& options) {
  Timer timer;
  Rng rng(config_.seed + 1);
  AugmentationConfig augmentation;
  augmentation.rho_t = config_.rho_t;
  augmentation.rho_s = config_.rho_s;
  augmentation.epsilon = config_.epsilon;

  std::vector<Tensor> parameters = OnlineParameters();
  tensor::Adam optimizer(parameters, config_.learning_rate);
  tensor::CosineAnnealingSchedule schedule(config_.learning_rate, config_.max_epochs);

  std::vector<Tensor> target_params = TargetParameters();
  std::vector<Tensor> online_params_no_features = online_encoder_->Parameters();
  for (const Tensor& p : online_head_->Parameters()) {
    online_params_no_features.push_back(p);
  }

  TrainStats stats;
  TrainerProgress progress;
  bool checkpointing = !options.checkpoint_dir.empty();
  if (checkpointing) {
    std::error_code ec;
    std::filesystem::create_directories(options.checkpoint_dir, ec);
    if (ec) {
      SARN_LOG(Error) << "cannot create checkpoint dir " << options.checkpoint_dir
                      << ": " << ec.message() << "; training without checkpoints";
      checkpointing = false;
    }
  }
  if (checkpointing && options.resume) {
    // Newest first; every skipped or restored file becomes a structured
    // checkpoint lifecycle event (log line + registry counter + sink).
    for (const auto& [ckpt_epoch, path] : nn::ListCheckpoints(options.checkpoint_dir)) {
      obs::CheckpointEvent event;
      event.path = path;
      event.epoch = ckpt_epoch;
      nn::TrainingCheckpoint ckpt;
      Timer load_timer;
      nn::CheckpointStatus status = nn::LoadCheckpoint(path, &ckpt);
      if (!status.ok()) {
        event.action = obs::CheckpointEvent::Action::kSkippedCorrupt;
        event.detail = std::string(nn::CheckpointErrorName(status.error)) + ": " +
                       status.message;
        obs::RecordCheckpointEvent(options.metrics_sink, event);
        continue;
      }
      if (!ApplyCheckpoint(ckpt, optimizer, schedule, rng, progress)) {
        event.action = obs::CheckpointEvent::Action::kSkippedMismatch;
        event.detail = "state does not match this model/config";
        obs::RecordCheckpointEvent(options.metrics_sink, event);
        continue;
      }
      event.action = obs::CheckpointEvent::Action::kResumedFrom;
      event.epoch = progress.next_epoch;
      event.bytes = FileSizeOrZero(path);
      event.seconds = load_timer.ElapsedSeconds();
      obs::RecordCheckpointEvent(options.metrics_sink, event);
      stats.resumed_from_epoch = progress.next_epoch;
      break;
    }
  }
  stats.epoch_losses = progress.epoch_losses;
  stats.epochs_run = progress.next_epoch;
  if (!stats.epoch_losses.empty()) stats.final_loss = stats.epoch_losses.back();

  int64_t n = network_->num_segments();
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);

  // Cached instrument references: one registry lock each, lock-free updates
  // in the loop. Telemetry is measurement-only — it must never touch `rng`
  // or the numerics, or resumed runs would stop being bitwise reproducible.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  obs::Counter& epochs_counter = registry.GetCounter("sarn.train.epochs");
  obs::Counter& batches_counter = registry.GetCounter("sarn.train.batches");
  obs::Gauge& loss_gauge = registry.GetGauge("sarn.train.loss");
  obs::Gauge& lr_gauge = registry.GetGauge("sarn.train.lr");
  obs::Gauge& grad_norm_gauge = registry.GetGauge("sarn.train.grad_norm");
  obs::Gauge& queue_stored_gauge = registry.GetGauge("sarn.queue.stored");
  obs::Histogram& epoch_seconds_hist =
      registry.GetHistogram("sarn.train.epoch_seconds");

  // Step-plan engine (DESIGN.md §15). Off by default; `record` verifies every
  // step's allocation stream against the dynamic tape, `replay` executes
  // verified plans from an AOT-packed arena. All modes are bitwise identical.
  plan::PlanExecutor plan_executor(plan::EffectivePlanMode(options.plan_mode));

  int stop_after = options.max_epochs >= 0
                       ? std::min(options.max_epochs, config_.max_epochs)
                       : config_.max_epochs;
  for (int epoch = progress.next_epoch; epoch < stop_after && !stats.aborted;
       ++epoch) {
    SARN_TRACE_SPAN("train_epoch");
    Timer epoch_timer;
    EpochPhases phases;
    ParallelPoolStats pool_before = GetParallelPoolStats();
    double grad_norm_sum = 0.0;

    schedule.OnEpoch(optimizer, epoch);
    GraphView view1, view2;
    {
      SARN_TRACE_SPAN("augmentation");
      obs::ScopedPhaseTimer phase(&phases.augmentation);
      view1 = AugmentGraph(network_->topo_edges(), spatial_edges_, augmentation, rng);
      view2 = AugmentGraph(network_->topo_edges(), spatial_edges_, augmentation, rng);
    }
    // Reshuffle from the identity so the batch order is a pure function of
    // the RNG state — which is checkpointed — rather than of the cumulative
    // permutation history, which is not. Statistically equivalent (a uniform
    // shuffle of any fixed permutation is uniform) and required for resumed
    // runs to be bitwise identical to uninterrupted ones.
    std::iota(order.begin(), order.end(), 0);
    rng.Shuffle(order);

    double epoch_loss = 0.0;
    int batches = 0;
    for (int64_t begin = 0; begin < n; begin += config_.batch_size) {
      // One storage "step": every tensor buffer and tape closure acquired in
      // this batch returns to the pool when Backward() consumes the tape, so
      // after the first batch warms the size classes, steady-state batches
      // run with zero pool-miss allocations (tracked by sarn.alloc.*).
      tensor::StepScope alloc_scope;
      int64_t end = std::min<int64_t>(n, begin + config_.batch_size);
      std::vector<int64_t> batch(order.begin() + begin, order.begin() + end);
      // Declared before any Tensor of the step: the guard destructs after
      // every step tensor has released its buffer, which is exactly when the
      // executor checks that a replayed arena went quiescent.
      plan::PlanExecutor::StepGuard plan_step = plan_executor.BeginStep(
          MakeStepPlanKey(view1, view2, batch, optimizer.learning_rate()));

      // Target branch first (fills z' and, later, the queues).
      Tensor z_prime_batch;
      {
        SARN_TRACE_SPAN("target_forward");
        obs::ScopedPhaseTimer phase(&phases.target_forward);
        tensor::NoGradGuard guard;
        Tensor z_prime_all = TargetProject(view2.edges);
        z_prime_batch = tensor::Rows(z_prime_all, batch);
      }

      // Online branch.
      Tensor z_batch;
      {
        SARN_TRACE_SPAN("online_forward");
        obs::ScopedPhaseTimer phase(&phases.online_forward);
        Tensor h = OnlineEncode(view1.edges);
        Tensor z_all = tensor::RowL2Normalize(online_head_->Forward(h));
        z_batch = tensor::Rows(z_all, batch);
      }

      Tensor loss;
      {
        SARN_TRACE_SPAN("loss");
        obs::ScopedPhaseTimer phase(&phases.loss);
        loss = ComputeLoss(z_batch, z_prime_batch, batch, rng);
      }
      float loss_value = loss.item();
      if (!std::isfinite(loss_value)) {
        stats.aborted = true;
        stats.abort_reason = "non-finite loss " + std::to_string(loss_value) +
                             " at epoch " + std::to_string(epoch) + ", batch " +
                             std::to_string(batches);
        break;
      }
      epoch_loss += loss_value;
      ++batches;

      double grad_norm_sq = 0.0;
      {
        SARN_TRACE_SPAN("backward");
        obs::ScopedPhaseTimer phase(&phases.backward);
        optimizer.ZeroGrad();
        loss.Backward();
        grad_norm_sq = GradNormSquared(parameters);
      }
      if (!std::isfinite(grad_norm_sq)) {
        // Abort before Step(): parameters keep their last finite values.
        stats.aborted = true;
        stats.abort_reason = "non-finite gradient norm at epoch " +
                             std::to_string(epoch) + ", batch " +
                             std::to_string(batches - 1);
        break;
      }
      grad_norm_sum += std::sqrt(grad_norm_sq);
      {
        SARN_TRACE_SPAN("optimizer_step");
        obs::ScopedPhaseTimer phase(&phases.optimizer_step);
        optimizer.Step();
        nn::MomentumUpdate(target_params, online_params_no_features, config_.momentum);
      }

      // Queue update with the fresh momentum projections (Algorithm 1 L15).
      {
        SARN_TRACE_SPAN("queue_push");
        obs::ScopedPhaseTimer phase(&phases.queue_push);
        for (size_t i = 0; i < batch.size(); ++i) {
          std::vector<float> embedding(
              z_prime_batch.data().begin() + static_cast<int64_t>(i) * config_.projection_dim,
              z_prime_batch.data().begin() +
                  static_cast<int64_t>(i + 1) * config_.projection_dim);
          NormalizeVector(embedding);
          queues_->Push(batch[i], std::move(embedding));
        }
      }
    }
    if (stats.aborted) {
      // Leave the last durable checkpoint as the restart point rather than
      // persisting an epoch that produced non-finite numbers.
      SARN_LOG(Error) << "training aborted: " << stats.abort_reason;
      break;
    }

    epoch_loss /= std::max(1, batches);
    progress.epoch_losses.push_back(epoch_loss);
    progress.next_epoch = epoch + 1;
    stats.epoch_losses.push_back(epoch_loss);
    stats.epochs_run = epoch + 1;
    stats.final_loss = epoch_loss;

    bool stopping = epoch + 1 == stop_after;
    if (epoch_loss < progress.best_loss - 1e-4) {
      progress.best_loss = epoch_loss;
      progress.epochs_since_best = 0;
    } else if (++progress.epochs_since_best >= config_.patience) {
      SARN_LOG(Debug) << "early stop at epoch " << epoch;
      stopping = true;
    }

    int64_t checkpoint_bytes = 0;
    if (checkpointing &&
        (stopping || (epoch + 1) % std::max(1, options.checkpoint_every) == 0)) {
      SARN_TRACE_SPAN("checkpoint_write");
      obs::ScopedPhaseTimer phase(&phases.checkpoint_write);
      std::string path = options.checkpoint_dir + "/" +
                         nn::CheckpointFileName(progress.next_epoch);
      Timer write_timer;
      nn::CheckpointStatus status = nn::SaveCheckpoint(
          path, BuildCheckpoint(optimizer, schedule, rng, progress));
      obs::CheckpointEvent event;
      event.path = path;
      event.epoch = progress.next_epoch;
      event.seconds = write_timer.ElapsedSeconds();
      if (status.ok()) {
        ++stats.checkpoints_written;
        checkpoint_bytes = FileSizeOrZero(path);
        event.action = obs::CheckpointEvent::Action::kWritten;
        event.bytes = checkpoint_bytes;
        obs::RecordCheckpointEvent(options.metrics_sink, event);
        nn::PruneCheckpoints(options.checkpoint_dir, options.keep_last);
      } else {
        event.action = obs::CheckpointEvent::Action::kWriteFailed;
        event.detail = std::string(nn::CheckpointErrorName(status.error)) + ": " +
                       status.message;
        obs::RecordCheckpointEvent(options.metrics_sink, event);
      }
    }

    double epoch_seconds = epoch_timer.ElapsedSeconds();
    double grad_norm_mean = grad_norm_sum / std::max(1, batches);
    epochs_counter.Increment();
    batches_counter.Increment(static_cast<uint64_t>(batches));
    loss_gauge.Set(epoch_loss);
    lr_gauge.Set(optimizer.learning_rate());
    grad_norm_gauge.Set(grad_norm_mean);
    queue_stored_gauge.Set(static_cast<double>(queues_->TotalStored()));
    epoch_seconds_hist.Observe(epoch_seconds);
    if (options.metrics_sink != nullptr) {
      ParallelPoolStats pool_after = GetParallelPoolStats();
      obs::EpochRecord record;
      record.run = "sarn";
      record.epoch = epoch;
      record.loss = epoch_loss;
      record.grad_norm = grad_norm_mean;
      record.learning_rate = optimizer.learning_rate();
      record.batches = batches;
      record.epoch_seconds = epoch_seconds;
      record.resumed = stats.resumed_from_epoch > 0;
      record.phase_seconds = phases.AsList();
      record.queue_stored = queues_->TotalStored();
      record.queue_nonempty_cells =
          static_cast<int64_t>(queues_->NonEmptyCells().size());
      record.queue_pushes = queues_->push_count();
      record.queue_evictions = queues_->eviction_count();
      record.checkpoint_bytes = checkpoint_bytes;
      record.checkpoint_seconds = phases.checkpoint_write;
      record.pool_regions = pool_after.regions - pool_before.regions;
      record.pool_chunks = pool_after.chunks - pool_before.chunks;
      record.pool_items = pool_after.items - pool_before.items;
      record.pool_idle_seconds =
          pool_after.worker_idle_seconds - pool_before.worker_idle_seconds;
      options.metrics_sink->OnEpoch(record);
    }
    if (stopping) break;
  }
  if (options.metrics_sink != nullptr) options.metrics_sink->Flush();
  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

std::vector<Tensor> SarnModel::TargetParameters() const {
  std::vector<Tensor> params = target_encoder_->Parameters();
  for (const Tensor& p : target_head_->Parameters()) params.push_back(p);
  return params;
}

nn::TrainingCheckpoint SarnModel::BuildCheckpoint(
    const tensor::Adam& optimizer, const tensor::CosineAnnealingSchedule& schedule,
    const Rng& rng, const TrainerProgress& progress) const {
  nn::TrainingCheckpoint ckpt;
  ByteWriter online;
  nn::WriteTensors(online, OnlineParameters());
  ckpt.SetSection(kSectionOnline, online.Take());

  ByteWriter target;
  nn::WriteTensors(target, TargetParameters());
  ckpt.SetSection(kSectionTarget, target.Take());

  ByteWriter optimizer_state;
  optimizer.SaveState(optimizer_state);
  ckpt.SetSection(kSectionOptimizer, optimizer_state.Take());

  ByteWriter schedule_state;
  schedule.SaveState(schedule_state);
  ckpt.SetSection(kSectionSchedule, schedule_state.Take());

  ByteWriter rng_state;
  rng.SaveState(rng_state);
  ckpt.SetSection(kSectionRng, rng_state.Take());

  ByteWriter queue_state;
  queues_->SaveState(queue_state);
  ckpt.SetSection(kSectionQueues, queue_state.Take());

  ByteWriter trainer;
  trainer.PutU64(config_.seed);
  trainer.PutI64(progress.next_epoch);
  trainer.PutF64(progress.best_loss);
  trainer.PutI64(progress.epochs_since_best);
  trainer.PutU64(progress.epoch_losses.size());
  for (double loss : progress.epoch_losses) trainer.PutF64(loss);
  ckpt.SetSection(kSectionTrainer, trainer.Take());
  return ckpt;
}

bool SarnModel::ApplyCheckpoint(const nn::TrainingCheckpoint& ckpt,
                                tensor::Adam& optimizer,
                                tensor::CosineAnnealingSchedule& schedule, Rng& rng,
                                TrainerProgress& progress) {
  const std::string* online = ckpt.FindSection(kSectionOnline);
  const std::string* target = ckpt.FindSection(kSectionTarget);
  const std::string* optimizer_state = ckpt.FindSection(kSectionOptimizer);
  const std::string* schedule_state = ckpt.FindSection(kSectionSchedule);
  const std::string* rng_state = ckpt.FindSection(kSectionRng);
  const std::string* queue_state = ckpt.FindSection(kSectionQueues);
  const std::string* trainer = ckpt.FindSection(kSectionTrainer);
  if (!online || !target || !optimizer_state || !schedule_state || !rng_state ||
      !queue_state || !trainer) {
    SARN_LOG(Warning) << "checkpoint is missing a required section";
    return false;
  }

  // Phase 1: parse and validate every section into staging; the model is
  // not touched until all of them check out.
  std::vector<Tensor> online_params = OnlineParameters();
  std::vector<Tensor> target_params = TargetParameters();
  std::vector<std::vector<float>> online_staged, target_staged;
  ByteReader online_in(*online);
  nn::CheckpointStatus status = nn::ParseTensors(online_in, online_params, &online_staged);
  if (!status.ok()) {
    SARN_LOG(Warning) << "online parameters: " << status.message;
    return false;
  }
  ByteReader target_in(*target);
  status = nn::ParseTensors(target_in, target_params, &target_staged);
  if (!status.ok()) {
    SARN_LOG(Warning) << "target parameters: " << status.message;
    return false;
  }

  tensor::Adam staged_optimizer = optimizer;
  ByteReader optimizer_in(*optimizer_state);
  if (!staged_optimizer.LoadState(optimizer_in)) return false;

  tensor::CosineAnnealingSchedule staged_schedule = schedule;
  ByteReader schedule_in(*schedule_state);
  if (!staged_schedule.LoadState(schedule_in)) return false;

  Rng staged_rng = rng;
  ByteReader rng_in(*rng_state);
  if (!staged_rng.LoadState(rng_in)) return false;

  NegativeQueueStore staged_queues = *queues_;
  ByteReader queue_in(*queue_state);
  if (!staged_queues.LoadState(queue_in)) return false;

  TrainerProgress staged_progress;
  ByteReader trainer_in(*trainer);
  uint64_t seed = 0;
  int64_t next_epoch = 0;
  int64_t epochs_since_best = 0;
  uint64_t loss_count = 0;
  if (!trainer_in.GetU64(&seed) || !trainer_in.GetI64(&next_epoch) ||
      !trainer_in.GetF64(&staged_progress.best_loss) ||
      !trainer_in.GetI64(&epochs_since_best) || !trainer_in.GetU64(&loss_count)) {
    return false;
  }
  if (seed != config_.seed) {
    SARN_LOG(Warning) << "checkpoint was trained with seed " << seed
                      << ", this model uses " << config_.seed;
    return false;
  }
  if (next_epoch < 0 || next_epoch > config_.max_epochs ||
      loss_count != static_cast<uint64_t>(next_epoch)) {
    return false;
  }
  staged_progress.next_epoch = static_cast<int>(next_epoch);
  staged_progress.epochs_since_best = static_cast<int>(epochs_since_best);
  staged_progress.epoch_losses.resize(static_cast<size_t>(loss_count));
  for (double& loss : staged_progress.epoch_losses) {
    if (!trainer_in.GetF64(&loss)) return false;
  }

  // Phase 2: commit everything.
  for (size_t i = 0; i < online_params.size(); ++i) {
    online_params[i].mutable_data() = std::move(online_staged[i]);
  }
  for (size_t i = 0; i < target_params.size(); ++i) {
    target_params[i].mutable_data() = std::move(target_staged[i]);
  }
  optimizer = staged_optimizer;
  schedule = staged_schedule;
  rng = staged_rng;
  *queues_ = std::move(staged_queues);
  progress = std::move(staged_progress);
  return true;
}

Tensor SarnModel::Embeddings() const {
  tensor::NoGradGuard guard;
  return OnlineEncode(full_edges_);
}

Tensor SarnModel::EncodeForFineTune() const { return OnlineEncode(full_edges_); }

std::vector<Tensor> SarnModel::FineTuneParameters() const {
  return online_encoder_->FinalLayerParameters();
}

bool SarnModel::SaveWeights(const std::string& path) const {
  return nn::SaveParameters(path, OnlineParameters());
}

bool SarnModel::LoadWeights(const std::string& path) {
  if (!nn::LoadParameters(path, OnlineParameters())) return false;
  target_encoder_->CopyWeightsFrom(*online_encoder_);
  target_head_->CopyWeightsFrom(*online_head_);
  return true;
}

bool SarnModel::LoadFromTrainingCheckpoint(const std::string& path) {
  nn::TrainingCheckpoint ckpt;
  nn::CheckpointStatus status = nn::LoadCheckpoint(path, &ckpt);
  if (!status.ok()) {
    SARN_LOG(Warning) << "checkpoint " << path << ": " << status.message;
    return false;
  }
  const std::string* online = ckpt.FindSection(kSectionOnline);
  if (online == nullptr) {
    SARN_LOG(Warning) << "checkpoint " << path << " has no " << kSectionOnline
                      << " section";
    return false;
  }
  ByteReader in(*online);
  status = nn::ReadTensorsInto(in, OnlineParameters());
  if (!status.ok()) {
    SARN_LOG(Warning) << "checkpoint " << path << ": " << status.message;
    return false;
  }
  target_encoder_->CopyWeightsFrom(*online_encoder_);
  target_head_->CopyWeightsFrom(*online_head_);
  return true;
}

std::vector<Tensor> SarnModel::OnlineParameters() const {
  std::vector<Tensor> params = feature_embedding_->Parameters();
  for (const Tensor& p : online_encoder_->Parameters()) params.push_back(p);
  for (const Tensor& p : online_head_->Parameters()) params.push_back(p);
  return params;
}

// --- Unified model-state loading -------------------------------------------

const char* ModelLoadErrorName(ModelLoadError error) {
  switch (error) {
    case ModelLoadError::kOk: return "ok";
    case ModelLoadError::kFileNotFound: return "file_not_found";
    case ModelLoadError::kParseError: return "parse_error";
    case ModelLoadError::kArchitectureMismatch: return "architecture_mismatch";
    case ModelLoadError::kUnsupportedFormat: return "unsupported_format";
  }
  return "unknown";
}

namespace {

SarnModel::SnapshotLoader g_snapshot_loader = nullptr;

bool PathEndsWith(const std::string& path, const std::string& suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

ModelLoadResult LoadFail(ModelLoadError error, std::string message) {
  ModelLoadResult result;
  result.error = error;
  result.message = std::move(message);
  return result;
}

ModelLoadResult LoadEmbeddingsCsvSource(const std::string& path) {
  if (!std::filesystem::exists(path)) {
    return LoadFail(ModelLoadError::kFileNotFound, "cannot open " + path);
  }
  auto table = ReadCsvFile(path, /*has_header=*/false);
  if (!table.has_value() || table->rows.empty()) {
    return LoadFail(ModelLoadError::kParseError, path + ": not a CSV table");
  }
  int64_t n = static_cast<int64_t>(table->rows.size());
  int64_t d = static_cast<int64_t>(table->rows[0].size());
  std::vector<float> data;
  data.reserve(static_cast<size_t>(n * d));
  for (size_t i = 0; i < table->rows.size(); ++i) {
    const auto& row = table->rows[i];
    if (static_cast<int64_t>(row.size()) != d) {
      return LoadFail(ModelLoadError::kParseError,
                      path + ": row " + std::to_string(i) + " has " +
                          std::to_string(row.size()) + " cells, expected " +
                          std::to_string(d));
    }
    for (const std::string& cell : row) {
      auto value = ParseDouble(cell);
      if (!value.has_value()) {
        return LoadFail(ModelLoadError::kParseError,
                        path + ": non-numeric cell \"" + cell + "\"");
      }
      data.push_back(static_cast<float>(*value));
    }
  }
  ModelLoadResult result;
  result.embeddings = Tensor::FromVector({n, d}, std::move(data));
  return result;
}

ModelLoadResult LoadCheckpointSource(const ModelLoadSource& source) {
  if (source.network == nullptr) {
    return LoadFail(ModelLoadError::kArchitectureMismatch,
                    "checkpoint restore needs the network (and config) the "
                    "encoder runs on");
  }
  if (!std::filesystem::exists(source.path)) {
    return LoadFail(ModelLoadError::kFileNotFound, "cannot open " + source.path);
  }
  auto model = std::make_unique<SarnModel>(*source.network, source.config);
  if (!model->LoadFromTrainingCheckpoint(source.path)) {
    return LoadFail(ModelLoadError::kArchitectureMismatch,
                    "cannot restore " + source.path +
                        " (corrupt file or architecture mismatch — wrong dim?)");
  }
  ModelLoadResult result;
  result.embeddings = model->Embeddings();
  result.model = std::move(model);
  return result;
}

}  // namespace

void SarnModel::SetSnapshotLoader(SnapshotLoader loader) {
  g_snapshot_loader = loader;
}

ModelLoadResult SarnModel::Load(const ModelLoadSource& source) {
  ModelLoadSource::Kind kind = source.kind;
  if (kind == ModelLoadSource::Kind::kAuto) {
    if (PathEndsWith(source.path, ".sarnsnap")) {
      kind = ModelLoadSource::Kind::kSnapshot;
    } else if (PathEndsWith(source.path, ".sarnckpt")) {
      kind = ModelLoadSource::Kind::kTrainingCheckpoint;
    } else {
      kind = ModelLoadSource::Kind::kEmbeddingsCsv;
    }
  }
  switch (kind) {
    case ModelLoadSource::Kind::kEmbeddingsCsv:
      return LoadEmbeddingsCsvSource(source.path);
    case ModelLoadSource::Kind::kTrainingCheckpoint:
      return LoadCheckpointSource(source);
    case ModelLoadSource::Kind::kSnapshot:
      if (g_snapshot_loader == nullptr) {
        return LoadFail(ModelLoadError::kUnsupportedFormat,
                        "snapshot loading is not linked into this binary");
      }
      return g_snapshot_loader(source.path);
    case ModelLoadSource::Kind::kAuto:
      break;  // Resolved above.
  }
  return LoadFail(ModelLoadError::kUnsupportedFormat, "unknown source kind");
}

}  // namespace sarn::core
