// Section names and the variant tag of SARN training checkpoints.
//
// Every checkpoint written since the pluggable plane landed carries a
// "sarn/variant" section naming the encoder / augmentation / negative-sampler
// combo that produced it. Restores check this tag BEFORE parsing any tensor
// section, so loading a checkpoint into a differently-composed model fails
// with a typed error naming both combos instead of a downstream shape
// mismatch. Checkpoints from before the plane have no tag; they are accepted
// and guarded only by the tensor shape checks (legacy behaviour).

#ifndef SARN_CORE_CHECKPOINT_TAGS_H_
#define SARN_CORE_CHECKPOINT_TAGS_H_

#include <string>

#include "common/binary_io.h"

namespace sarn::core {

// Training-checkpoint section names.
inline constexpr char kSectionOnline[] = "sarn/online";
inline constexpr char kSectionTarget[] = "sarn/target";
inline constexpr char kSectionOptimizer[] = "sarn/optimizer";
inline constexpr char kSectionSchedule[] = "sarn/schedule";
inline constexpr char kSectionRng[] = "sarn/rng";
inline constexpr char kSectionQueues[] = "sarn/queues";
inline constexpr char kSectionTrainer[] = "sarn/trainer";
inline constexpr char kSectionVariant[] = "sarn/variant";

/// The resolved variant names of one model composition.
struct VariantTag {
  std::string encoder;
  std::string augmentation;
  std::string negatives;

  friend bool operator==(const VariantTag&, const VariantTag&) = default;
};

inline void WriteVariantTag(ByteWriter& out, const VariantTag& tag) {
  out.PutString(tag.encoder);
  out.PutString(tag.augmentation);
  out.PutString(tag.negatives);
}

inline bool ReadVariantTag(ByteReader& in, VariantTag* tag) {
  return in.GetString(&tag->encoder) && in.GetString(&tag->augmentation) &&
         in.GetString(&tag->negatives);
}

/// "encoder=gat augmentation=third-law negatives=spatial" — for error
/// messages naming a combo.
inline std::string VariantTagString(const VariantTag& tag) {
  return "encoder=" + tag.encoder + " augmentation=" + tag.augmentation +
         " negatives=" + tag.negatives;
}

}  // namespace sarn::core

#endif  // SARN_CORE_CHECKPOINT_TAGS_H_
