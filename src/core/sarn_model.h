// The SARN model (paper §4) as a composition over the pluggable contrastive
// plane (DESIGN.md §16): feature embedding + a momentum-coupled pair of
// graph encoders (core::Encoder) and projection heads, trained by the
// variant-agnostic ContrastiveTrainer with a graph-view generator
// (core::Augmentation) and a negative-sampling/loss policy
// (core::NegativeSampler). The paper's defaults compose encoder "gat" +
// augmentation "spatial-importance" + negatives "spatial" (Algorithm 1);
// every piece is swappable by registry name through SarnConfig.
//
// Ablation variants (paper §5.4) are obtained through SarnConfig:
//  * SARN          — defaults.
//  * SARN-w/o-M    — use_spatial_matrix = false.
//  * SARN-w/o-NL   — use_spatial_negatives = false (resolves the "spatial"
//                    negatives to "random": plain InfoNCE).
//  * SARN-w/o-MNL  — both false (the plain weighted-GCL baseline of §3).

#ifndef SARN_CORE_SARN_MODEL_H_
#define SARN_CORE_SARN_MODEL_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/augmentation.h"
#include "core/checkpoint_tags.h"
#include "core/encoder.h"
#include "core/negative_sampler.h"
#include "core/sarn_config.h"
#include "core/spatial_similarity.h"
#include "plan/plan.h"
#include "nn/embedding.h"
#include "nn/gat.h"
#include "nn/projection_head.h"
#include "nn/serialization.h"
#include "obs/metrics_sink.h"
#include "roadnet/features.h"
#include "roadnet/road_network.h"
#include "tensor/optimizer.h"
#include "tensor/tensor.h"

namespace sarn::core {

struct TrainStats {
  int epochs_run = 0;
  double final_loss = 0.0;
  double seconds = 0.0;
  std::vector<double> epoch_losses;
  /// Epochs that were already complete when this call started (restored from
  /// a checkpoint); 0 for a fresh run. epoch_losses always covers the full
  /// history, including restored epochs.
  int resumed_from_epoch = 0;
  /// Checkpoint files successfully written by this call.
  int checkpoints_written = 0;
  /// True when training stopped because a loss or gradient norm went
  /// non-finite; abort_reason carries the diagnostic. The model keeps the
  /// last finite parameter state and no checkpoint of the poisoned epoch is
  /// written.
  bool aborted = false;
  std::string abort_reason;
};

/// Options for the crash-safe training driver. Defaults reproduce the
/// original single-shot Train() behaviour (no checkpointing).
struct TrainOptions {
  /// Directory for rolling checkpoints (created if missing). Empty disables
  /// checkpointing and resume.
  std::string checkpoint_dir;
  /// Write a checkpoint every this many completed epochs (>= 1). A final
  /// checkpoint is always written when training stops with checkpointing on.
  int checkpoint_every = 1;
  /// Rolling retention: only the newest `keep_last` checkpoint files are
  /// kept in checkpoint_dir.
  int keep_last = 3;
  /// Resume from the newest valid checkpoint in checkpoint_dir; corrupt or
  /// mismatched files are skipped with a logged warning.
  bool resume = true;
  /// Stop once this many *total* epochs are complete (simulating a kill at
  /// epoch k); < 0 trains to config.max_epochs. The LR schedule and
  /// early-stopping horizon always follow config.max_epochs, so an
  /// interrupted-and-resumed run is bitwise identical to an uninterrupted
  /// one.
  int max_epochs = -1;
  /// Optional telemetry sink (not owned; must outlive the Train call).
  /// Receives one obs::EpochRecord per completed epoch plus checkpoint
  /// lifecycle events. Telemetry is measurement-only: it never touches the
  /// RNG or the numerics, so a run with a sink attached is bitwise identical
  /// to one without.
  obs::MetricsSink* metrics_sink = nullptr;
  /// Step-plan engine mode (DESIGN.md §15): record-once/replay training
  /// plans with AOT-packed buffer arenas and fused grad kernels. Unset
  /// defers to the SARN_PLAN environment variable, then off. Every mode is
  /// bitwise identical to the dynamic tape — losses, gradients, parameters,
  /// checkpoints and telemetry all match, at any thread count.
  std::optional<plan::PlanMode> plan_mode;
  /// Run label stamped on every telemetry record ("sarn" for the model's own
  /// training; baseline wrappers pass their own name).
  std::string run_name = "sarn";
};

class SarnModel;

/// Typed outcome of SarnModel::Load.
enum class ModelLoadError {
  kOk = 0,
  kFileNotFound,          // Missing or unreadable path.
  kParseError,            // Unparsable CSV (ragged rows, non-numeric cells).
  kArchitectureMismatch,  // Checkpoint does not fit the requested config.
  kVariantMismatch,       // Checkpoint was written by a different encoder/
                          // augmentation/negatives combo (the message names
                          // both combos).
  kUnsupportedFormat,     // Unrecognised extension, or the snapshot loader is
                          // not linked into this binary.
};
const char* ModelLoadErrorName(ModelLoadError error);

/// Typed status of the partial-restore entry points (no payload).
struct ModelLoadStatus {
  ModelLoadError error = ModelLoadError::kOk;
  std::string message;
  bool ok() const { return error == ModelLoadError::kOk; }
};

/// One description of "where trained model state lives": an embeddings CSV,
/// a rolling training checkpoint, or a .sarnsnap serving snapshot.
struct ModelLoadSource {
  enum class Kind {
    kAuto,                // Sniff from the extension (.sarnsnap, .sarnckpt, else CSV).
    kEmbeddingsCsv,       // Headerless n x d CSV of embedding rows.
    kTrainingCheckpoint,  // Rolling checkpoint written by Train(); restores
                          // the online branch (needs `network` + `config`).
    kSnapshot,            // Serving snapshot with an embedded model matrix.
  };
  Kind kind = Kind::kAuto;
  std::string path;
  /// Checkpoint restores rebuild the architecture first; both fields are
  /// ignored for the other kinds. `network` must outlive the loaded model.
  const roadnet::RoadNetwork* network = nullptr;
  SarnConfig config;
};

struct ModelLoadResult {
  ModelLoadError error = ModelLoadError::kOk;
  std::string message;
  /// The [n, d] embedding matrix; defined on success for every kind.
  tensor::Tensor embeddings;
  /// The restored model; only set for checkpoint loads (the other formats
  /// carry no encoder weights).
  std::unique_ptr<SarnModel> model;
  bool ok() const { return error == ModelLoadError::kOk; }
};

class SarnModel {
 public:
  /// `network` must outlive the model. The config's variant names must be
  /// registered (checked); unknown names abort with the available set.
  SarnModel(const roadnet::RoadNetwork& network, SarnConfig config);

  /// One factory for every on-disk form of trained state (embeddings CSV,
  /// training checkpoint, serving snapshot), with a typed error instead of
  /// the per-format bool/optional mix the call sites used to juggle.
  static ModelLoadResult Load(const ModelLoadSource& source);

  /// Loader for ModelLoadSource::Kind::kSnapshot. The snapshot reader lives
  /// above sarn_core in the link graph (sarn_snapshot -> sarn_tasks ->
  /// sarn_core), so binaries that want snapshot loads install the hook at
  /// startup (the CLI does); without it Load reports kUnsupportedFormat.
  using SnapshotLoader = ModelLoadResult (*)(const std::string& path);
  static void SetSnapshotLoader(SnapshotLoader loader);

  /// Runs Algorithm 1 (with cosine-annealed Adam and loss-plateau early
  /// stopping) and leaves the online encoder ready for Embeddings().
  TrainStats Train();

  /// Fault-tolerant epoch-stepping driver (ContrastiveTrainer): same
  /// training loop, but resumes from the newest valid checkpoint in
  /// options.checkpoint_dir, writes atomic rolling checkpoints of the
  /// *complete* training state (online + momentum parameters, Adam moments,
  /// schedule position, RNG stream, negative-sampler state, early-stop
  /// progress, variant tag), and aborts with a diagnostic if a loss or
  /// gradient norm goes non-finite. Resume invariant: a run killed after
  /// any checkpoint and resumed with the same config and thread count
  /// finishes bitwise identical to an uninterrupted run.
  TrainStats Train(const TrainOptions& options);

  /// Road-segment embeddings H = F(S, G) on the *uncorrupted* graph,
  /// detached ([n, d]). This is what downstream tasks consume.
  tensor::Tensor Embeddings() const;

  /// Gradient-tracked encoder output for SARN* fine-tuning; optimise
  /// FineTuneParameters() against a task loss on top of this.
  tensor::Tensor EncodeForFineTune() const;

  /// Final encoder layer parameters (the paper fine-tunes only this layer).
  std::vector<tensor::Tensor> FineTuneParameters() const;

  const SarnConfig& config() const { return config_; }
  const std::vector<SpatialEdge>& spatial_edges() const { return spatial_edges_; }
  const roadnet::RoadNetwork& network() const { return *network_; }
  int64_t embedding_dim() const { return config_.embedding_dim; }

  /// The resolved registry names this model is composed of (config names
  /// after legacy-ablation mapping; see ResolvedVariantTag).
  const VariantTag& variant_tag() const { return variant_tag_; }
  const char* encoder_name() const { return variant_tag_.encoder.c_str(); }
  const char* augmentation_name() const { return variant_tag_.augmentation.c_str(); }
  const char* negatives_name() const { return variant_tag_.negatives.c_str(); }

  /// All trainable parameters of the online branch (tests/inspection).
  std::vector<tensor::Tensor> OnlineParameters() const;

  /// Checkpointing of the online branch (the target branch is re-synced on
  /// load). Returns false on I/O or architecture mismatch.
  bool SaveWeights(const std::string& path) const;
  bool LoadWeights(const std::string& path);

  /// Serving-export interop: restores just the online branch from a full
  /// training checkpoint (the rolling file Train() writes), so
  /// `sarn snapshot save --checkpoint` can serialise Embeddings() without a
  /// separate weights file. Optimizer/RNG/queue sections are ignored. The
  /// checkpoint's variant tag must match this model's composition
  /// (kVariantMismatch names both combos otherwise); a corrupt file or
  /// architecture mismatch also fails, and the model is left untouched.
  ModelLoadStatus LoadFromTrainingCheckpoint(const std::string& path);

 private:
  friend class SarnModelTestPeer;
  friend class ContrastiveTrainer;

  /// Momentum-branch parameters (target encoder + target head).
  std::vector<tensor::Tensor> TargetParameters() const;

  /// Full online forward on one graph view: feature embedding (honouring the
  /// view's attribute mask, if any) -> encoder -> [n, d].
  tensor::Tensor OnlineEncode(const GraphView& view) const;
  /// Target branch forward (call under NoGradGuard), through the projection
  /// head: [n, d_z], L2-normalised.
  tensor::Tensor TargetProject(const GraphView& view) const;

  /// Contrastive loss of one minibatch, delegated to the negative sampler.
  /// `z` is the online projection rows of the batch (normalised,
  /// grad-tracked); `z_prime` the matching momentum projections (detached,
  /// normalised). Convenience for policies that never read z'_all.
  tensor::Tensor ComputeLoss(const tensor::Tensor& z, const tensor::Tensor& z_prime,
                             const std::vector<int64_t>& batch, Rng& rng) const;

  /// Everything the structure of one training step depends on, mirroring the
  /// branch/shape logic of the forward pass and the sampler's loss:
  /// hyper-parameters and variant names (plus the current LR), per-view edge
  /// counts, batch size, encoder- and sampler-specific structural state
  /// (per-relation splits; phi_max, non-empty cells, global-loss rows) and
  /// thread count. Pure queries — never touches the RNG or the numerics.
  plan::PlanKey MakeStepPlanKey(const GraphView& view1, const GraphView& view2,
                                const std::vector<int64_t>& batch,
                                float learning_rate) const;

  const roadnet::RoadNetwork* network_;
  SarnConfig config_;
  VariantTag variant_tag_;
  roadnet::SegmentFeatures features_;
  std::vector<SpatialEdge> spatial_edges_;
  nn::EdgeList full_edges_;
  /// The uncorrupted graph as a GraphView (edges = full_edges_, relations
  /// split); what Embeddings()/EncodeForFineTune() encode over.
  GraphView full_view_;

  std::unique_ptr<nn::FeatureEmbedding> feature_embedding_;
  std::unique_ptr<Encoder> online_encoder_;
  std::unique_ptr<nn::ProjectionHead> online_head_;
  std::unique_ptr<Encoder> target_encoder_;
  std::unique_ptr<nn::ProjectionHead> target_head_;
  std::unique_ptr<Augmentation> augmentation_;
  std::unique_ptr<NegativeSampler> sampler_;
};

}  // namespace sarn::core

#endif  // SARN_CORE_SARN_MODEL_H_
