// The pluggable graph-encoder interface of the contrastive plane
// (DESIGN.md §16).
//
// An Encoder maps embedded segment features [n, d_f] plus one graph view to
// per-segment representations [n, d]. It is momentum-pair aware by
// construction: SarnModel builds two identically-architected instances (the
// trainable online encoder and the momentum target), aligns them with
// CopyWeightsFrom, and drives the MoCo update over their Parameters() lists
// — so an implementation must return its parameters in a deterministic
// order and must not keep hidden trainable state outside Parameters().
//
// Implementations registered by name (variant_registry.h):
//  * "gat" — the paper's GAT over the combined A^s + A^t edge list;
//  * "rfn" — relational fusion (nn/rfn.h): topological and spatial
//            aggregates computed separately per layer, then fused.

#ifndef SARN_CORE_ENCODER_H_
#define SARN_CORE_ENCODER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/augmentation.h"
#include "core/sarn_config.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace sarn::core {

class Encoder : public nn::Module {
 public:
  virtual const char* name() const = 0;

  /// x: [n, d_f] embedded features of the view (already masked if the view
  /// masks attributes); returns [n, out_dim()].
  virtual tensor::Tensor Forward(const tensor::Tensor& x,
                                 const GraphView& view) const = 0;

  /// Parameters of the final layer only (SARN* fine-tunes just this layer).
  virtual std::vector<tensor::Tensor> FinalLayerParameters() const = 0;

  virtual int64_t out_dim() const = 0;

  /// Folds any *structural* per-view inputs beyond the combined edge counts
  /// (already in the PlanKey) into the step-plan hash. An encoder whose op
  /// sequence depends on per-relation splits must hash them here, or replay
  /// plans could cross structurally different steps. Pure; never touches
  /// RNG or numerics.
  virtual void ExtendPlanKey(uint64_t& hash, const GraphView& view1,
                             const GraphView& view2) const {
    (void)hash;
    (void)view1;
    (void)view2;
  }
};

/// The paper's GAT encoder over the combined (topological + spatial) edge
/// list of a view. Consumes `rng` exactly like the pre-refactor inlined
/// construction (per-head weights, attention vectors, residuals, in order).
std::unique_ptr<Encoder> MakeGatEncoder(const SarnConfig& config, int64_t input_dim,
                                        Rng& rng);

/// Relational fusion encoder (nn/rfn.h) over the per-relation edge splits.
std::unique_ptr<Encoder> MakeRfnEncoder(const SarnConfig& config, int64_t input_dim,
                                        Rng& rng);

}  // namespace sarn::core

#endif  // SARN_CORE_ENCODER_H_
