#include "core/negative_sampler.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "nn/losses.h"
#include "tensor/ops.h"

namespace sarn::core {
namespace {

using tensor::Tensor;

// Mask value for padded negative slots; after division by tau (>= 0.01)
// exp() underflows to exactly 0.
constexpr float kMaskedSimilarity = -1e4f;

// --- "spatial": the paper's two-level loss over grid queues ------------------

class SpatialNegativeSampler final : public NegativeSampler {
 public:
  SpatialNegativeSampler(const roadnet::RoadNetwork& network, const SarnConfig& config)
      : config_(&config),
        queues_(std::make_unique<NegativeQueueStore>(network, config.cell_side_meters,
                                                     config.queue_budget)) {}

  const char* name() const override { return "spatial"; }

  Tensor ComputeLoss(const Tensor& z, const Tensor& z_prime, const Tensor&,
                     const std::vector<int64_t>& batch, Rng&) const override {
    int64_t m = z.shape()[0];
    int64_t dz = z.shape()[1];
    Tensor positive_sim = tensor::DotRows(z, z_prime);  // Lambda(z_i, z'_i), [m].

    // --- Local contrastive loss (Eq. 15) -----------------------------------
    std::vector<std::vector<const QueueEntry*>> local(static_cast<size_t>(m));
    int64_t phi_max = 0;
    for (int64_t i = 0; i < m; ++i) {
      local[static_cast<size_t>(i)] =
          queues_->LocalNegatives(batch[static_cast<size_t>(i)]);
      phi_max = std::max(phi_max,
                         static_cast<int64_t>(local[static_cast<size_t>(i)].size()));
    }
    Tensor local_loss;
    if (phi_max == 0) {
      local_loss = Tensor::Zeros({1});  // Queues still empty (first iterations).
    } else {
      Tensor negatives = Tensor::Zeros({m * phi_max, dz});
      Tensor mask = Tensor::Full({m, phi_max}, kMaskedSimilarity);
      tensor::Storage& neg_data = negatives.mutable_data();
      tensor::Storage& mask_data = mask.mutable_data();
      for (int64_t i = 0; i < m; ++i) {
        const auto& entries = local[static_cast<size_t>(i)];
        for (size_t s = 0; s < entries.size(); ++s) {
          std::copy(entries[s]->embedding.begin(), entries[s]->embedding.end(),
                    neg_data.begin() + (static_cast<size_t>(i) * phi_max + s) * dz);
          mask_data[static_cast<size_t>(i) * phi_max + s] = 0.0f;
        }
      }
      std::vector<int64_t> repeat_index(static_cast<size_t>(m * phi_max));
      for (int64_t i = 0; i < m; ++i) {
        std::fill_n(repeat_index.begin() + i * phi_max, phi_max, i);
      }
      Tensor sims = tensor::Reshape(
          tensor::DotRows(tensor::Rows(z, repeat_index), negatives), {m, phi_max});
      sims = tensor::Add(sims, mask);
      local_loss =
          nn::InfoNceLoss(positive_sim, sims, static_cast<float>(config_->tau));
    }

    // --- Global contrastive loss (Eq. 16) ------------------------------------
    // One InfoNCE over cell aggregates: for anchor i, the positive is its own
    // cell's readout and the negatives are every other non-empty cell's
    // readout — i.e., cross entropy over cells with label = own cell.
    std::vector<int> cells = queues_->NonEmptyCells();
    Tensor global_loss = Tensor::Zeros({1});
    if (cells.size() >= 2) {
      std::vector<int> cell_rank(static_cast<size_t>(queues_->num_cells()), -1);
      for (size_t c = 0; c < cells.size(); ++c)
        cell_rank[static_cast<size_t>(cells[c])] = static_cast<int>(c);
      int64_t c_count = static_cast<int64_t>(cells.size());
      // Every row is fully overwritten by its cell's aggregate, so the pooled
      // buffer can stay uninitialized.
      Tensor aggregates = Tensor::Uninitialized({c_count, dz});
      tensor::Storage& agg_data = aggregates.mutable_data();
      for (int64_t c = 0; c < c_count; ++c) {
        std::vector<float> aggregate =
            queues_->CellAggregate(cells[static_cast<size_t>(c)]);
        std::copy(aggregate.begin(), aggregate.end(), agg_data.begin() + c * dz);
      }
      // Anchors whose own cell queue is non-empty participate.
      std::vector<int64_t> rows;
      std::vector<int64_t> labels;
      for (int64_t i = 0; i < m; ++i) {
        int rank = cell_rank[static_cast<size_t>(
            queues_->CellOf(batch[static_cast<size_t>(i)]))];
        if (rank >= 0) {
          rows.push_back(i);
          labels.push_back(rank);
        }
      }
      if (!rows.empty()) {
        Tensor sims =
            tensor::MatMul(tensor::Rows(z, rows), tensor::Transpose(aggregates));
        Tensor logits =
            tensor::MulScalar(sims, 1.0f / static_cast<float>(config_->tau));
        global_loss = nn::CrossEntropyWithLogits(logits, labels);
      }
    }

    float lambda = static_cast<float>(config_->lambda);
    return tensor::Add(tensor::MulScalar(local_loss, lambda),
                       tensor::MulScalar(global_loss, 1.0f - lambda));
  }

  bool WantsPushes() const override { return true; }

  void Push(int64_t segment, std::vector<float> embedding) override {
    queues_->Push(segment, std::move(embedding));
  }

  void ExtendPlanKey(plan::PlanKey& key,
                     const std::vector<int64_t>& batch) const override {
    // Mirror ComputeLoss's structural branches with pure queue queries.
    int64_t phi_max = 0;
    for (int64_t member : batch) {
      phi_max = std::max(
          phi_max, static_cast<int64_t>(queues_->LocalNegatives(member).size()));
    }
    key.phi_max = phi_max;
    std::vector<int> cells = queues_->NonEmptyCells();
    key.cells = static_cast<int64_t>(cells.size());
    if (cells.size() >= 2) {
      std::vector<char> nonempty(static_cast<size_t>(queues_->num_cells()), 0);
      for (int cell : cells) nonempty[static_cast<size_t>(cell)] = 1;
      int64_t rows = 0;
      for (int64_t member : batch) {
        if (nonempty[static_cast<size_t>(queues_->CellOf(member))] != 0) ++rows;
      }
      key.rows = rows;
    }
  }

  void SaveState(ByteWriter& out) const override { queues_->SaveState(out); }
  bool LoadState(ByteReader& in) override { return queues_->LoadState(in); }

  std::unique_ptr<NegativeSampler> Clone() const override {
    auto clone = std::make_unique<SpatialNegativeSampler>(*this);
    return clone;
  }

  NegativeSamplerStats Stats() const override {
    NegativeSamplerStats stats;
    stats.stored = queues_->TotalStored();
    stats.nonempty_cells = static_cast<int64_t>(queues_->NonEmptyCells().size());
    stats.pushes = queues_->push_count();
    stats.evictions = queues_->eviction_count();
    return stats;
  }

  NegativeQueueStore* queue_store() override { return queues_.get(); }

  SpatialNegativeSampler(const SpatialNegativeSampler& other)
      : config_(other.config_),
        queues_(std::make_unique<NegativeQueueStore>(*other.queues_)) {}

 private:
  const SarnConfig* config_;
  std::unique_ptr<NegativeQueueStore> queues_;
};

// --- "random": plain InfoNCE with uniform queue-pool draws (SARN-w/o-NL) -----

class RandomNegativeSampler final : public NegativeSampler {
 public:
  RandomNegativeSampler(const roadnet::RoadNetwork& network, const SarnConfig& config)
      : config_(&config),
        queues_(std::make_unique<NegativeQueueStore>(network, config.cell_side_meters,
                                                     config.queue_budget)) {}

  const char* name() const override { return "random"; }

  Tensor ComputeLoss(const Tensor& z, const Tensor& z_prime, const Tensor&,
                     const std::vector<int64_t>& batch, Rng& rng) const override {
    int64_t m = z.shape()[0];
    int64_t dz = z.shape()[1];
    Tensor positive_sim = tensor::DotRows(z, z_prime);
    // Plain InfoNCE (Eq. 2) with random negatives from the global queue pool.
    // Negatives and mask are staged straight into pooled tensor storage —
    // no transient std::vector<float> per batch.
    int k = config_->random_negatives;
    Tensor negatives = Tensor::Zeros({m * k, dz});
    Tensor mask = Tensor::Full({m, k}, kMaskedSimilarity);
    tensor::Storage& neg_data = negatives.mutable_data();
    tensor::Storage& mask_data = mask.mutable_data();
    for (int64_t i = 0; i < m; ++i) {
      auto drawn = queues_->RandomNegatives(batch[static_cast<size_t>(i)], k, rng);
      for (size_t s = 0; s < drawn.size(); ++s) {
        std::copy(drawn[s]->embedding.begin(), drawn[s]->embedding.end(),
                  neg_data.begin() + (static_cast<size_t>(i) * k + s) * dz);
        mask_data[static_cast<size_t>(i) * k + s] = 0.0f;
      }
    }
    std::vector<int64_t> repeat_index(static_cast<size_t>(m * k));
    for (int64_t i = 0; i < m; ++i) {
      std::fill_n(repeat_index.begin() + i * k, k, i);
    }
    Tensor sims = tensor::Reshape(
        tensor::DotRows(tensor::Rows(z, repeat_index), negatives), {m, k});
    sims = tensor::Add(sims, mask);
    return nn::InfoNceLoss(positive_sim, sims, static_cast<float>(config_->tau));
  }

  bool WantsPushes() const override { return true; }

  void Push(int64_t segment, std::vector<float> embedding) override {
    queues_->Push(segment, std::move(embedding));
  }

  // Loss shape depends only on m and random_negatives (both in the base
  // key); masked padding keeps the structure fixed while queues fill up.

  void SaveState(ByteWriter& out) const override { queues_->SaveState(out); }
  bool LoadState(ByteReader& in) override { return queues_->LoadState(in); }

  std::unique_ptr<NegativeSampler> Clone() const override {
    return std::make_unique<RandomNegativeSampler>(*this);
  }

  NegativeSamplerStats Stats() const override {
    NegativeSamplerStats stats;
    stats.stored = queues_->TotalStored();
    stats.nonempty_cells = static_cast<int64_t>(queues_->NonEmptyCells().size());
    stats.pushes = queues_->push_count();
    stats.evictions = queues_->eviction_count();
    return stats;
  }

  NegativeQueueStore* queue_store() override { return queues_.get(); }

  RandomNegativeSampler(const RandomNegativeSampler& other)
      : config_(other.config_),
        queues_(std::make_unique<NegativeQueueStore>(*other.queues_)) {}

 private:
  const SarnConfig* config_;
  std::unique_ptr<NegativeQueueStore> queues_;
};

// --- "in-batch": symmetric NT-Xent (GraphCL) ---------------------------------

class InBatchNegativeSampler final : public NegativeSampler {
 public:
  explicit InBatchNegativeSampler(const SarnConfig& config) : config_(&config) {}

  const char* name() const override { return "in-batch"; }

  Tensor ComputeLoss(const Tensor& z, const Tensor& z_prime, const Tensor&,
                     const std::vector<int64_t>&, Rng&) const override {
    int64_t m = z.shape()[0];
    float inv_tau = 1.0f / static_cast<float>(config_->tau);
    Tensor logits12 =
        tensor::MulScalar(tensor::MatMul(z, tensor::Transpose(z_prime)), inv_tau);
    Tensor logits21 =
        tensor::MulScalar(tensor::MatMul(z_prime, tensor::Transpose(z)), inv_tau);
    std::vector<int64_t> labels(static_cast<size_t>(m));
    std::iota(labels.begin(), labels.end(), 0);
    return tensor::MulScalar(
        tensor::Add(nn::CrossEntropyWithLogits(logits12, labels),
                    nn::CrossEntropyWithLogits(logits21, labels)),
        0.5f);
  }

  std::unique_ptr<NegativeSampler> Clone() const override {
    return std::make_unique<InBatchNegativeSampler>(*this);
  }

 private:
  const SarnConfig* config_;
};

// --- "all-vertex": every vertex of the target view is a negative (GCA) -------

class AllVertexNegativeSampler final : public NegativeSampler {
 public:
  explicit AllVertexNegativeSampler(const SarnConfig& config) : config_(&config) {}

  const char* name() const override { return "all-vertex"; }

  Tensor ComputeLoss(const Tensor& z, const Tensor&, const Tensor& z_prime_all,
                     const std::vector<int64_t>& batch, Rng&) const override {
    // Negatives: ALL vertices of the target view (label = own row).
    Tensor logits =
        tensor::MulScalar(tensor::MatMul(z, tensor::Transpose(z_prime_all)),
                          1.0f / static_cast<float>(config_->tau));
    return nn::CrossEntropyWithLogits(logits, batch);
  }

  bool NeedsAllProjections() const override { return true; }

  std::unique_ptr<NegativeSampler> Clone() const override {
    return std::make_unique<AllVertexNegativeSampler>(*this);
  }

 private:
  const SarnConfig* config_;
};

}  // namespace

std::unique_ptr<NegativeSampler> MakeSpatialNegativeSampler(
    const roadnet::RoadNetwork& network, const SarnConfig& config) {
  return std::make_unique<SpatialNegativeSampler>(network, config);
}

std::unique_ptr<NegativeSampler> MakeRandomNegativeSampler(
    const roadnet::RoadNetwork& network, const SarnConfig& config) {
  return std::make_unique<RandomNegativeSampler>(network, config);
}

std::unique_ptr<NegativeSampler> MakeInBatchNegativeSampler(const SarnConfig& config) {
  return std::make_unique<InBatchNegativeSampler>(config);
}

std::unique_ptr<NegativeSampler> MakeAllVertexNegativeSampler(const SarnConfig& config) {
  return std::make_unique<AllVertexNegativeSampler>(config);
}

}  // namespace sarn::core
