// The pluggable negative-sampling / contrastive-loss policy of the plane
// (DESIGN.md §16). A NegativeSampler owns whatever negative state its loss
// needs (for SARN: the grid-based momentum queues) and turns one batch of
// online + target projections into the scalar contrastive loss.
//
// Registered policies (variant_registry.h):
//  * "spatial"    — the paper's two-level loss (Eqs. 15-17): local InfoNCE
//                   against same-cell queue entries plus global InfoNCE over
//                   cell aggregates, mixed by lambda. Owns the grid queues.
//  * "random"     — plain InfoNCE (Eq. 2) with `random_negatives` uniform
//                   draws from the queue pool (the SARN-w/o-NL ablation).
//  * "in-batch"   — symmetric NT-Xent over the batch (GraphCL's loss).
//  * "all-vertex" — cross entropy against every vertex's target projection
//                   (GCA's loss); the only policy that needs z'_all.

#ifndef SARN_CORE_NEGATIVE_SAMPLER_H_
#define SARN_CORE_NEGATIVE_SAMPLER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/binary_io.h"
#include "common/rng.h"
#include "core/negative_queue.h"
#include "core/sarn_config.h"
#include "plan/plan.h"
#include "roadnet/road_network.h"
#include "tensor/tensor.h"

namespace sarn::core {

/// Measurement-only snapshot of the sampler's negative state, surfaced in
/// epoch telemetry. All zero for stateless policies.
struct NegativeSamplerStats {
  int64_t stored = 0;
  int64_t nonempty_cells = 0;
  uint64_t pushes = 0;
  uint64_t evictions = 0;
};

class NegativeSampler {
 public:
  virtual ~NegativeSampler() = default;
  virtual const char* name() const = 0;

  /// z: [m, d] online batch projections (row-normalized); z_prime: [m, d]
  /// target batch projections; z_prime_all: [n, d] target projections of
  /// every vertex — only materialized (non-empty) when NeedsAllProjections()
  /// is true. `rng` must be drawn from deterministically (checkpointed
  /// stream). Returns a scalar loss tensor.
  virtual tensor::Tensor ComputeLoss(const tensor::Tensor& z,
                                     const tensor::Tensor& z_prime,
                                     const tensor::Tensor& z_prime_all,
                                     const std::vector<int64_t>& batch,
                                     Rng& rng) const = 0;

  /// Whether ComputeLoss reads z_prime_all. When false the trainer releases
  /// the all-vertex projection buffer before the online forward pass — the
  /// pre-refactor allocation stream — so return false unless the loss truly
  /// needs every vertex.
  virtual bool NeedsAllProjections() const { return false; }

  /// Whether the trainer should slice + normalize the batch's momentum
  /// projections and Push them after each step (Algorithm 1 L15). False for
  /// stateless policies, sparing the per-batch copy.
  virtual bool WantsPushes() const { return false; }

  /// Offers one fresh momentum projection (post-step, L2-normalized) for the
  /// batch segment. Stateless policies ignore it.
  virtual void Push(int64_t segment, std::vector<float> embedding) {
    (void)segment;
    (void)embedding;
  }

  /// Fills the structural PlanKey fields this policy's loss depends on
  /// (phi_max / cells / rows for "spatial"). Pure: queries only, no RNG.
  virtual void ExtendPlanKey(plan::PlanKey& key,
                             const std::vector<int64_t>& batch) const {
    (void)key;
    (void)batch;
  }

  /// Negative-state serialization for training checkpoints. Stateless
  /// policies write/read nothing.
  virtual void SaveState(ByteWriter& out) const { (void)out; }
  virtual bool LoadState(ByteReader& in) {
    (void)in;
    return true;
  }

  /// Deep copy, for two-phase (stage-then-commit) checkpoint restore.
  virtual std::unique_ptr<NegativeSampler> Clone() const = 0;

  virtual NegativeSamplerStats Stats() const { return {}; }

  /// The backing queue store, if this policy has one (tests and benches
  /// introspect it); nullptr for stateless policies.
  virtual NegativeQueueStore* queue_store() { return nullptr; }
  const NegativeQueueStore* queue_store() const {
    return const_cast<NegativeSampler*>(this)->queue_store();
  }
};

/// The paper's two-level spatial loss over grid queues.
std::unique_ptr<NegativeSampler> MakeSpatialNegativeSampler(
    const roadnet::RoadNetwork& network, const SarnConfig& config);

/// Plain InfoNCE with uniform queue-pool negatives (SARN-w/o-NL).
std::unique_ptr<NegativeSampler> MakeRandomNegativeSampler(
    const roadnet::RoadNetwork& network, const SarnConfig& config);

/// Symmetric in-batch NT-Xent (GraphCL-style).
std::unique_ptr<NegativeSampler> MakeInBatchNegativeSampler(const SarnConfig& config);

/// All-vertex cross entropy (GCA-style).
std::unique_ptr<NegativeSampler> MakeAllVertexNegativeSampler(const SarnConfig& config);

}  // namespace sarn::core

#endif  // SARN_CORE_NEGATIVE_SAMPLER_H_
