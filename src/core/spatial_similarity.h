// The spatial similarity matrix A^s (paper §4.1, Technical Contribution 1).
//
// A^s_{i,j} = (ds + as) / 2 where ds/as are cosine-normalised spatial and
// angular similarities (Eqs. 4-5), thresholded at delta_ds meters /
// delta_as radians. A^s is sparse and symmetric; it is materialised as an
// undirected edge list. A spatial edge exists when both thresholds hold
// (both similarity terms positive); per segment only the top
// `max_spatial_neighbors` strongest edges are kept, which keeps |A^s| on
// the same order as |A^t| (paper Table 3: 48k spatial vs 50k topological
// edges on CD).

#ifndef SARN_CORE_SPATIAL_SIMILARITY_H_
#define SARN_CORE_SPATIAL_SIMILARITY_H_

#include <cstdint>
#include <vector>

#include "roadnet/road_network.h"

namespace sarn::core {

/// One undirected spatial edge with its A^s weight in (0, 1].
struct SpatialEdge {
  roadnet::SegmentId a = 0;
  roadnet::SegmentId b = 0;  // a < b.
  double weight = 0.0;
};

struct SpatialSimilarityConfig {
  double delta_ds_meters = 200.0;
  double delta_as_radians = 0.39269908;  // pi/8.
  int max_spatial_neighbors = 4;
};

/// Distance similarity A^s_{i,j}.ds (Eq. 4): cos(pi * min(d, delta) / (2 delta)).
double DistanceSimilarity(double sp_dist_meters, double delta_ds_meters);

/// Angular similarity A^s_{i,j}.as (Eq. 5).
double AngleSimilarity(double ag_dist_radians, double delta_as_radians);

/// Pairwise A^s value for two segments (Eq. 3); 0 when either threshold is
/// exceeded or i == j.
double SpatialSimilarity(const roadnet::RoadSegment& a, const roadnet::RoadSegment& b,
                         const SpatialSimilarityConfig& config);

/// Builds the sparse A^s for a whole network using a grid index over segment
/// midpoints (O(n * neighbourhood) instead of O(n^2)).
std::vector<SpatialEdge> BuildSpatialEdges(const roadnet::RoadNetwork& network,
                                           const SpatialSimilarityConfig& config);

/// Number of segment pairs carrying both a topological and a spatial edge
/// ("dual-typed edges", §4.2; ~7.5% on CD in the paper).
int64_t CountDualTypedEdges(const roadnet::RoadNetwork& network,
                            const std::vector<SpatialEdge>& spatial_edges);

}  // namespace sarn::core

#endif  // SARN_CORE_SPATIAL_SIMILARITY_H_
