#include "core/variant_registry.h"

#include <utility>

namespace sarn::core {
namespace {

AugmentationConfig CorruptionConfigOf(const SarnConfig& config) {
  AugmentationConfig augmentation;
  augmentation.rho_t = config.rho_t;
  augmentation.rho_s = config.rho_s;
  augmentation.epsilon = config.epsilon;
  return augmentation;
}

template <typename Map>
std::vector<std::string> SortedKeys(const Map& map) {
  std::vector<std::string> names;
  names.reserve(map.size());
  for (const auto& [name, factory] : map) names.push_back(name);
  return names;  // std::map iterates in sorted order.
}

}  // namespace

VariantRegistry::VariantRegistry() {
  RegisterEncoder("gat", [](const VariantContext& context, Rng& rng) {
    return MakeGatEncoder(*context.config, context.input_dim, rng);
  });
  RegisterEncoder("rfn", [](const VariantContext& context, Rng& rng) {
    return MakeRfnEncoder(*context.config, context.input_dim, rng);
  });

  RegisterAugmentation("spatial-importance", [](const VariantContext& context) {
    return MakeSpatialImportanceAugmentation(*context.network, *context.spatial_edges,
                                             CorruptionConfigOf(*context.config));
  });
  RegisterAugmentation("third-law", [](const VariantContext& context) {
    ThirdLawConfig third_law;
    third_law.radius_meters = context.config->third_law_radius_meters;
    third_law.min_similarity = context.config->third_law_min_similarity;
    third_law.neighbors = context.config->third_law_neighbors;
    return MakeThirdLawAugmentation(*context.network, *context.spatial_edges,
                                    CorruptionConfigOf(*context.config), third_law);
  });
  RegisterAugmentation("uniform-drop", [](const VariantContext& context) {
    return MakeUniformDropAugmentation(*context.network, *context.features,
                                       context.config->edge_drop_rate,
                                       context.config->feature_mask_rate);
  });
  RegisterAugmentation("adaptive-drop", [](const VariantContext& context) {
    return MakeAdaptiveDropAugmentation(*context.network,
                                        context.config->edge_drop_rate,
                                        context.config->epsilon);
  });

  RegisterSampler("spatial", [](const VariantContext& context) {
    return MakeSpatialNegativeSampler(*context.network, *context.config);
  });
  RegisterSampler("random", [](const VariantContext& context) {
    return MakeRandomNegativeSampler(*context.network, *context.config);
  });
  RegisterSampler("in-batch", [](const VariantContext& context) {
    return MakeInBatchNegativeSampler(*context.config);
  });
  RegisterSampler("all-vertex", [](const VariantContext& context) {
    return MakeAllVertexNegativeSampler(*context.config);
  });
}

VariantRegistry& VariantRegistry::Instance() {
  static VariantRegistry* registry = new VariantRegistry();
  return *registry;
}

void VariantRegistry::RegisterEncoder(const std::string& name, EncoderFactory factory) {
  encoders_[name] = std::move(factory);
}

void VariantRegistry::RegisterAugmentation(const std::string& name,
                                           AugmentationFactory factory) {
  augmentations_[name] = std::move(factory);
}

void VariantRegistry::RegisterSampler(const std::string& name, SamplerFactory factory) {
  samplers_[name] = std::move(factory);
}

bool VariantRegistry::HasEncoder(const std::string& name) const {
  return encoders_.count(name) != 0;
}

bool VariantRegistry::HasAugmentation(const std::string& name) const {
  return augmentations_.count(name) != 0;
}

bool VariantRegistry::HasSampler(const std::string& name) const {
  return samplers_.count(name) != 0;
}

std::unique_ptr<Encoder> VariantRegistry::MakeEncoder(const std::string& name,
                                                      const VariantContext& context,
                                                      Rng& rng) const {
  auto it = encoders_.find(name);
  if (it == encoders_.end()) return nullptr;
  return it->second(context, rng);
}

std::unique_ptr<Augmentation> VariantRegistry::MakeAugmentation(
    const std::string& name, const VariantContext& context) const {
  auto it = augmentations_.find(name);
  if (it == augmentations_.end()) return nullptr;
  return it->second(context);
}

std::unique_ptr<NegativeSampler> VariantRegistry::MakeSampler(
    const std::string& name, const VariantContext& context) const {
  auto it = samplers_.find(name);
  if (it == samplers_.end()) return nullptr;
  return it->second(context);
}

std::vector<std::string> VariantRegistry::EncoderNames() const {
  return SortedKeys(encoders_);
}

std::vector<std::string> VariantRegistry::AugmentationNames() const {
  return SortedKeys(augmentations_);
}

std::vector<std::string> VariantRegistry::SamplerNames() const {
  return SortedKeys(samplers_);
}

VariantTag ResolvedVariantTag(const SarnConfig& config) {
  VariantTag tag;
  tag.encoder = config.encoder.empty() ? "gat" : config.encoder;
  tag.augmentation =
      config.augmentation.empty() ? "spatial-importance" : config.augmentation;
  tag.negatives = config.negatives.empty() ? "spatial" : config.negatives;
  if (!config.use_spatial_negatives && tag.negatives == "spatial") {
    tag.negatives = "random";
  }
  return tag;
}

}  // namespace sarn::core
