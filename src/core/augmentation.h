// Graph-view augmentations for contrastive training.
//
// The default strategy is SARN's spatial importance-based corruption (paper
// §4.2, Technical Contribution 2): a view removes rho_t of the topological
// edges and rho_s of the spatial edges via weighted sampling WITHOUT
// replacement — an edge's probability of being picked for removal decreases
// with its importance weight (Eqs. 6-7), clamped into [epsilon, 1-epsilon]
// by sigma_epsilon. When a segment pair carries both edge types
// ("dual-typed"), sampling either one removes both.
//
// Alternative strategies live behind the core::Augmentation interface
// (DESIGN.md §16) and are chosen by name through the variant registry:
//  * "spatial-importance" — the paper's corruption above (default);
//  * "third-law"          — spatial-importance plus injected positive edges
//                           between geographically *distant* segments with
//                           near-identical geographic configuration (the
//                           Third Law of Geography; arXiv 2406.04038);
//  * "uniform-drop"       — GraphCL-style uniform edge dropping plus
//                           attribute masking, topological edges only;
//  * "adaptive-drop"      — GCA-style adaptive dropping (important edges by
//                           the Eq. 1 weights survive more often).

#ifndef SARN_CORE_AUGMENTATION_H_
#define SARN_CORE_AUGMENTATION_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/spatial_similarity.h"
#include "nn/gat.h"
#include "roadnet/features.h"
#include "roadnet/road_network.h"

namespace sarn::core {

struct AugmentationConfig {
  double rho_t = 0.4;
  double rho_s = 0.4;
  double epsilon = 0.05;
  /// Dual-typed coupling: removing either edge of a dual-typed pair removes
  /// both (paper §4.2). Exposed for the ablation bench.
  bool couple_dual_typed = true;
};

/// A corrupted graph view. `edges` is the flattened directed edge list a
/// single-relation encoder (GAT) consumes: surviving topological edges keep
/// their direction; surviving spatial edges contribute both directions.
/// `topo_edges`/`spatial_edges` hold the same survivors split by relation for
/// relational encoders (RFN) that aggregate each edge type separately.
struct GraphView {
  nn::EdgeList edges;
  nn::EdgeList topo_edges;
  nn::EdgeList spatial_edges;
  /// Optional per-view masked feature ids (GraphCL-style attribute masking),
  /// feature-major like roadnet::SegmentFeatures::ids; empty = the encoder
  /// uses the unmasked network features.
  std::vector<std::vector<int64_t>> masked_ids;
  int64_t surviving_topo = 0;
  int64_t surviving_spatial = 0;
};

/// sigma_epsilon: maps [0,1] -> [epsilon, 1-epsilon] linearly.
double SigmaEpsilon(double x, double epsilon);

/// Corruption probability of topological edge (i,j) given the min/max
/// non-zero weights of A^t (Eq. 6).
double TopoCorruptionProbability(double weight, double min_weight, double max_weight,
                                 double epsilon);

/// Corruption probability of a spatial edge (Eq. 7).
double SpatialCorruptionProbability(double weight, double epsilon);

/// Samples one corrupted view. Deterministic given `rng` state.
GraphView AugmentGraph(const std::vector<roadnet::TopoEdge>& topo_edges,
                       const std::vector<SpatialEdge>& spatial_edges,
                       const AugmentationConfig& config, Rng& rng);

/// The uncorrupted flattening of the same edges (used at inference and by
/// baselines): all topo edges plus both directions of all spatial edges.
nn::EdgeList FullEdgeList(const std::vector<roadnet::TopoEdge>& topo_edges,
                          const std::vector<SpatialEdge>& spatial_edges);

/// The uncorrupted graph as a GraphView (edges = FullEdgeList, relation
/// splits filled, no attribute mask) — what inference encodes over.
GraphView FullGraphView(const std::vector<roadnet::TopoEdge>& topo_edges,
                        const std::vector<SpatialEdge>& spatial_edges);

// --- Pluggable augmentation strategies (DESIGN.md §16) -----------------------

/// A graph-view generator. MakeView consumes `rng` deterministically: two
/// calls with the same RNG state produce the same view, which is what resume
/// and plan-replay bitwise identity rely on. Implementations hold references
/// to the network (and any precomputed structure) and must not mutate shared
/// state in MakeView.
class Augmentation {
 public:
  virtual ~Augmentation() = default;
  virtual const char* name() const = 0;
  virtual GraphView MakeView(Rng& rng) const = 0;
};

/// The paper's spatial importance-based corruption (Eqs. 6-7); wraps
/// AugmentGraph over the network's topological and spatial edges.
/// `network` and `spatial_edges` must outlive the augmentation.
std::unique_ptr<Augmentation> MakeSpatialImportanceAugmentation(
    const roadnet::RoadNetwork& network, const std::vector<SpatialEdge>& spatial_edges,
    const AugmentationConfig& config);

/// Third Law of Geography (arXiv 2406.04038) composed with spatial
/// importance: each view is first corrupted exactly like "spatial-importance"
/// and then receives deterministic extra spatial edges between segment pairs
/// that are geographically far apart (>= radius_meters between midpoints)
/// but have near-identical geographic configuration (cosine similarity of
/// their dense feature vectors >= min_similarity; top `neighbors` matches
/// per segment). Precomputation is O(n^2) over segments.
struct ThirdLawConfig {
  double radius_meters = 600.0;
  double min_similarity = 0.92;
  int neighbors = 2;
};
std::unique_ptr<Augmentation> MakeThirdLawAugmentation(
    const roadnet::RoadNetwork& network, const std::vector<SpatialEdge>& spatial_edges,
    const AugmentationConfig& config, const ThirdLawConfig& third_law);

/// GraphCL-style view: uniform edge dropping over topological edges only,
/// plus attribute masking (a fraction of feature ids replaced by the shared
/// bin 0). `features` must outlive the augmentation.
std::unique_ptr<Augmentation> MakeUniformDropAugmentation(
    const roadnet::RoadNetwork& network, const roadnet::SegmentFeatures& features,
    double edge_drop_rate, double feature_mask_rate);

/// GCA-style view: adaptive edge dropping over topological edges — the drop
/// probability scales inversely with the Eq. 1 importance weight, centred on
/// `mean_rate` and clamped into [epsilon, 1-epsilon].
std::unique_ptr<Augmentation> MakeAdaptiveDropAugmentation(
    const roadnet::RoadNetwork& network, double mean_rate, double epsilon);

}  // namespace sarn::core

#endif  // SARN_CORE_AUGMENTATION_H_
