// Spatial importance-based graph augmentation (paper §4.2, Technical
// Contribution 2).
//
// A graph view corrupts G by removing rho_t of the topological edges and
// rho_s of the spatial edges via weighted sampling WITHOUT replacement:
// an edge's probability of being picked for removal decreases with its
// importance weight (Eqs. 6-7), clamped into [epsilon, 1-epsilon] by
// sigma_epsilon. When a segment pair carries both edge types ("dual-typed"),
// sampling either one removes both.

#ifndef SARN_CORE_AUGMENTATION_H_
#define SARN_CORE_AUGMENTATION_H_

#include <vector>

#include "common/rng.h"
#include "core/spatial_similarity.h"
#include "nn/gat.h"
#include "roadnet/road_network.h"

namespace sarn::core {

struct AugmentationConfig {
  double rho_t = 0.4;
  double rho_s = 0.4;
  double epsilon = 0.05;
  /// Dual-typed coupling: removing either edge of a dual-typed pair removes
  /// both (paper §4.2). Exposed for the ablation bench.
  bool couple_dual_typed = true;
};

/// A corrupted graph view, already flattened to the directed edge list the
/// GAT encoder consumes: surviving topological edges keep their direction;
/// surviving spatial edges contribute both directions.
struct GraphView {
  nn::EdgeList edges;
  int64_t surviving_topo = 0;
  int64_t surviving_spatial = 0;
};

/// sigma_epsilon: maps [0,1] -> [epsilon, 1-epsilon] linearly.
double SigmaEpsilon(double x, double epsilon);

/// Corruption probability of topological edge (i,j) given the min/max
/// non-zero weights of A^t (Eq. 6).
double TopoCorruptionProbability(double weight, double min_weight, double max_weight,
                                 double epsilon);

/// Corruption probability of a spatial edge (Eq. 7).
double SpatialCorruptionProbability(double weight, double epsilon);

/// Samples one corrupted view. Deterministic given `rng` state.
GraphView AugmentGraph(const std::vector<roadnet::TopoEdge>& topo_edges,
                       const std::vector<SpatialEdge>& spatial_edges,
                       const AugmentationConfig& config, Rng& rng);

/// The uncorrupted flattening of the same edges (used at inference and by
/// baselines): all topo edges plus both directions of all spatial edges.
nn::EdgeList FullEdgeList(const std::vector<roadnet::TopoEdge>& topo_edges,
                          const std::vector<SpatialEdge>& spatial_edges);

}  // namespace sarn::core

#endif  // SARN_CORE_AUGMENTATION_H_
