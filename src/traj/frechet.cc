#include "traj/frechet.h"

#include <algorithm>

#include "common/check.h"

namespace sarn::traj {

double DiscreteFrechet(const std::vector<geo::LatLng>& a,
                       const std::vector<geo::LatLng>& b) {
  SARN_CHECK(!a.empty() && !b.empty());
  size_t n = a.size(), m = b.size();
  // Rolling single-row DP: ca[j] = coupling distance for (i, j).
  std::vector<double> row(m);
  std::vector<double> prev(m);
  for (size_t j = 0; j < m; ++j) {
    double d = geo::HaversineMeters(a[0], b[j]);
    prev[j] = j == 0 ? d : std::max(prev[j - 1], d);
  }
  for (size_t i = 1; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      double d = geo::HaversineMeters(a[i], b[j]);
      double best_prior;
      if (j == 0) {
        best_prior = prev[0];
      } else {
        best_prior = std::min({prev[j], prev[j - 1], row[j - 1]});
      }
      row[j] = std::max(best_prior, d);
    }
    std::swap(row, prev);
  }
  return prev[m - 1];
}

}  // namespace sarn::traj
