// Nearest-segment map matching with shortest-path gap bridging — a light
// version of the HMM matcher the paper cites [Lou et al. 2009], adequate for
// the synthetic low-noise trajectories the generator emits (DESIGN.md §3).

#ifndef SARN_TRAJ_MAP_MATCHING_H_
#define SARN_TRAJ_MAP_MATCHING_H_

#include <memory>
#include <optional>
#include <vector>

#include "geo/spatial_index.h"
#include "graph/csr_graph.h"
#include "roadnet/road_network.h"
#include "traj/trajectory.h"

namespace sarn::traj {

struct MapMatcherConfig {
  /// GPS fixes farther than this from any segment are dropped as outliers.
  double max_snap_meters = 120.0;
  /// Non-adjacent consecutive matches are connected by shortest path when
  /// the connecting path has at most this many intermediate segments.
  int max_bridge_segments = 12;
  /// Heading penalty (meters at opposite heading): disambiguates the two
  /// directed twins of a two-way street using the travel direction.
  double heading_penalty_meters = 60.0;
};

/// Matches GPS trajectories onto a road network. Build once per network;
/// Match() is const and thread-compatible.
class MapMatcher {
 public:
  MapMatcher(const roadnet::RoadNetwork& network, MapMatcherConfig config = {});

  /// Returns the ordered, deduplicated, gap-bridged segment sequence; empty
  /// if no point snapped onto the network.
  MatchedTrajectory Match(const Trajectory& trajectory) const;

  /// Nearest segment to a point (by point-to-segment geometric distance over
  /// candidates from the midpoint index), or -1 when outside max_snap_meters.
  /// When `heading_radians` is provided (travel direction at the fix),
  /// candidates are ranked by distance plus a heading-mismatch penalty,
  /// which disambiguates the directed twins of two-way streets.
  roadnet::SegmentId SnapPoint(const geo::LatLng& point,
                               std::optional<double> heading_radians = {}) const;

 private:
  const roadnet::RoadNetwork& network_;
  MapMatcherConfig config_;
  geo::SpatialIndex midpoint_index_;
  graph::CsrGraph routing_graph_;
};

/// Geometric distance from a point to the straight segment start-end, meters
/// (local-projection approximation; exact enough at city scale).
double PointToSegmentMeters(const geo::LatLng& point, const geo::LatLng& seg_start,
                            const geo::LatLng& seg_end);

}  // namespace sarn::traj

#endif  // SARN_TRAJ_MAP_MATCHING_H_
