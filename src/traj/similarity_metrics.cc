#include "traj/similarity_metrics.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "traj/frechet.h"

namespace sarn::traj {

double DynamicTimeWarping(const std::vector<geo::LatLng>& a,
                          const std::vector<geo::LatLng>& b) {
  SARN_CHECK(!a.empty() && !b.empty());
  size_t n = a.size(), m = b.size();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // Rolling rows: dp[j] = cost of aligning a[0..i] with b[0..j].
  std::vector<double> prev(m + 1, kInf), row(m + 1, kInf);
  prev[0] = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    row[0] = kInf;
    for (size_t j = 1; j <= m; ++j) {
      double cost = geo::HaversineMeters(a[i - 1], b[j - 1]);
      row[j] = cost + std::min({prev[j], row[j - 1], prev[j - 1]});
    }
    std::swap(prev, row);
  }
  return prev[m];
}

double HausdorffDistance(const std::vector<geo::LatLng>& a,
                         const std::vector<geo::LatLng>& b) {
  SARN_CHECK(!a.empty() && !b.empty());
  auto directed = [](const std::vector<geo::LatLng>& from,
                     const std::vector<geo::LatLng>& to) {
    double worst = 0.0;
    for (const geo::LatLng& p : from) {
      double best = std::numeric_limits<double>::infinity();
      for (const geo::LatLng& q : to) {
        best = std::min(best, geo::HaversineMeters(p, q));
        if (best == 0.0) break;
      }
      worst = std::max(worst, best);
    }
    return worst;
  };
  return std::max(directed(a, b), directed(b, a));
}

double TrajectoryDistance(SimilarityMetric metric, const std::vector<geo::LatLng>& a,
                          const std::vector<geo::LatLng>& b) {
  switch (metric) {
    case SimilarityMetric::kFrechet:
      return DiscreteFrechet(a, b);
    case SimilarityMetric::kDtw:
      return DynamicTimeWarping(a, b);
    case SimilarityMetric::kHausdorff:
      return HausdorffDistance(a, b);
  }
  SARN_CHECK(false) << "unknown metric";
  return 0.0;
}

}  // namespace sarn::traj
