// Trajectory data model and preprocessing utilities (paper §5.1: split on
// 20-minute gaps, map-match, truncate to a maximum number of segments).

#ifndef SARN_TRAJ_TRAJECTORY_H_
#define SARN_TRAJ_TRAJECTORY_H_

#include <cstdint>
#include <vector>

#include "geo/point.h"
#include "roadnet/road_network.h"

namespace sarn::traj {

/// A single GPS fix.
struct GpsPoint {
  geo::LatLng position;
  double timestamp_s = 0.0;
};

/// A raw GPS trajectory, time-ordered.
struct Trajectory {
  std::vector<GpsPoint> points;

  bool empty() const { return points.empty(); }
  size_t size() const { return points.size(); }
  double DurationSeconds() const {
    return points.empty() ? 0.0 : points.back().timestamp_s - points.front().timestamp_s;
  }
  /// Sum of consecutive haversine hops, meters.
  double LengthMeters() const;
};

/// A trajectory expressed on the road network: an ordered segment sequence.
struct MatchedTrajectory {
  std::vector<roadnet::SegmentId> segments;

  bool empty() const { return segments.empty(); }
  size_t size() const { return segments.size(); }
};

/// Splits a trajectory wherever the time gap between adjacent points exceeds
/// `max_gap_s` (paper: 20 minutes). Pieces with < 2 points are discarded.
std::vector<Trajectory> SplitOnTimeGap(const Trajectory& trajectory, double max_gap_s);

/// Keeps only the first `max_segments` segments (paper: 60 by default,
/// swept to 180 in Table 7).
MatchedTrajectory TruncateSegments(const MatchedTrajectory& matched,
                                   size_t max_segments);

/// Midpoints of the matched segments, as a polyline for distance computation.
std::vector<geo::LatLng> MatchedMidpoints(const MatchedTrajectory& matched,
                                          const roadnet::RoadNetwork& network);

}  // namespace sarn::traj

#endif  // SARN_TRAJ_TRAJECTORY_H_
