// CSV persistence for trajectory datasets.
//
// Two formats:
//  * GPS trajectories — rows (trajectory_id, timestamp_s, lat, lng); the
//    interchange format of the public datasets the paper uses (T-Drive,
//    SF-Cab are distributed as per-point CSV logs).
//  * Matched trajectories — rows (trajectory_id, position, segment_id);
//    the cached output of map matching, so the expensive matching step can
//    be done once per dataset.

#ifndef SARN_TRAJ_IO_H_
#define SARN_TRAJ_IO_H_

#include <optional>
#include <string>
#include <vector>

#include "traj/trajectory.h"

namespace sarn::traj {

bool SaveTrajectoriesCsv(const std::vector<Trajectory>& trajectories,
                         const std::string& path);
std::optional<std::vector<Trajectory>> LoadTrajectoriesCsv(const std::string& path);

bool SaveMatchedCsv(const std::vector<MatchedTrajectory>& matched,
                    const std::string& path);
std::optional<std::vector<MatchedTrajectory>> LoadMatchedCsv(const std::string& path);

}  // namespace sarn::traj

#endif  // SARN_TRAJ_IO_H_
