// Synthetic GPS trajectory generator — the substitute for the DiDi /
// T-Drive / SF-Cab datasets (DESIGN.md §3).
//
// Trajectories are produced the way vehicle traces arise: an origin and a
// destination segment are drawn (with popularity hotspots so some corridors
// are shared by many trips, as in real taxi data), the route is computed on
// the road network with per-trip randomised edge weights (drivers do not all
// take the exact shortest path), and GPS fixes are emitted along the route
// at a fixed sampling interval with Gaussian position noise.

#ifndef SARN_TRAJ_TRAJECTORY_GENERATOR_H_
#define SARN_TRAJ_TRAJECTORY_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "roadnet/road_network.h"
#include "traj/trajectory.h"

namespace sarn::traj {

struct TrajectoryGeneratorConfig {
  uint64_t seed = 13;
  /// Number of OD popularity hotspots; trips start/end near hotspots with
  /// probability `hotspot_fraction`.
  int num_hotspots = 6;
  double hotspot_fraction = 0.6;
  /// GPS sampling interval and positional noise.
  double sample_interval_s = 15.0;
  double gps_noise_meters = 12.0;
  /// Route length bounds (in segments); shorter routes are rejected.
  int min_route_segments = 10;
  int max_route_segments = 220;
  /// Log-normal sigma of the per-trip edge-weight perturbation (route
  /// diversity); 0 = everyone drives the exact shortest path.
  double route_diversity = 0.25;
  /// Number of pre-built perturbed routing graphs shared across trips.
  int num_routing_variants = 8;
  /// Legs per trip: after reaching a destination the vehicle continues to a
  /// new destination (taxi-style chains). legs > 1 produces the long
  /// trajectories of the paper's Table 7 length sweep.
  int legs = 1;
};

struct GeneratedTrajectory {
  Trajectory gps;                                 // Noisy fixes.
  std::vector<roadnet::SegmentId> ground_truth;   // The actual driven route.
};

/// Generates trajectories over a network. Construction precomputes the
/// routing variants; Generate() draws `count` trajectories.
class TrajectoryGenerator {
 public:
  TrajectoryGenerator(const roadnet::RoadNetwork& network,
                      TrajectoryGeneratorConfig config = {});

  std::vector<GeneratedTrajectory> Generate(int count);

  /// One trajectory; nullopt if OD sampling failed repeatedly (disconnected
  /// pair), which is rare on generator-produced networks.
  std::optional<GeneratedTrajectory> GenerateOne();

 private:
  roadnet::SegmentId SampleEndpoint();

  const roadnet::RoadNetwork& network_;
  TrajectoryGeneratorConfig config_;
  Rng rng_;
  std::vector<graph::CsrGraph> routing_variants_;
  std::vector<geo::LatLng> hotspots_;
  std::vector<geo::LatLng> midpoints_;
};

}  // namespace sarn::traj

#endif  // SARN_TRAJ_TRAJECTORY_GENERATOR_H_
