// Discrete Fréchet distance (Alt & Godau), the paper's ground-truth
// trajectory similarity metric (§5.2.2). O(n*m) dynamic program over
// haversine point distances.

#ifndef SARN_TRAJ_FRECHET_H_
#define SARN_TRAJ_FRECHET_H_

#include <vector>

#include "geo/point.h"

namespace sarn::traj {

/// Discrete Fréchet distance between two polylines, meters. Both inputs must
/// be non-empty.
double DiscreteFrechet(const std::vector<geo::LatLng>& a,
                       const std::vector<geo::LatLng>& b);

}  // namespace sarn::traj

#endif  // SARN_TRAJ_FRECHET_H_
