#include "traj/trajectory_generator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "geo/spatial_index.h"
#include "graph/dijkstra.h"

namespace sarn::traj {
namespace {

// Typical cruising speed on a segment, m/s: a bit under the median posted
// limit of the road class.
double CruiseSpeed(const roadnet::RoadSegment& segment) {
  const std::vector<int>& pool = roadnet::TypicalSpeedLimits(segment.type);
  double median_kmh = pool[pool.size() / 2];
  return median_kmh * 0.75 / 3.6;
}

}  // namespace

TrajectoryGenerator::TrajectoryGenerator(const roadnet::RoadNetwork& network,
                                         TrajectoryGeneratorConfig config)
    : network_(network), config_(config), rng_(config.seed) {
  SARN_CHECK_GT(network.num_segments(), 1);
  midpoints_ = network.Midpoints();
  // Hotspots: random segment midpoints.
  for (int h = 0; h < config_.num_hotspots; ++h) {
    size_t pick =
        static_cast<size_t>(rng_.UniformInt(0, network.num_segments() - 1));
    hotspots_.push_back(midpoints_[pick]);
  }
  // Pre-built perturbed routing graphs.
  int variants = std::max(1, config_.num_routing_variants);
  for (int v = 0; v < variants; ++v) {
    std::vector<graph::WeightedEdge> edges;
    edges.reserve(network.topo_edges().size());
    for (const roadnet::TopoEdge& e : network.topo_edges()) {
      double base = (network.segment(e.from).length_meters +
                     network.segment(e.to).length_meters) /
                    2.0;
      double factor = std::exp(rng_.Normal(0.0, config_.route_diversity));
      edges.push_back({e.from, e.to, base * factor});
    }
    routing_variants_.emplace_back(network.num_segments(), edges);
  }
}

roadnet::SegmentId TrajectoryGenerator::SampleEndpoint() {
  if (!hotspots_.empty() && rng_.Bernoulli(config_.hotspot_fraction)) {
    // Near a hotspot: hotspot midpoint + Gaussian offset, snapped to the
    // nearest segment midpoint by linear probing over random candidates.
    const geo::LatLng& hotspot =
        hotspots_[static_cast<size_t>(rng_.UniformInt(0, static_cast<int64_t>(hotspots_.size()) - 1))];
    roadnet::SegmentId best = -1;
    double best_dist = 1e18;
    // 48 random candidates: cheap and keeps endpoints clustered.
    for (int trial = 0; trial < 48; ++trial) {
      auto id = static_cast<roadnet::SegmentId>(
          rng_.UniformInt(0, network_.num_segments() - 1));
      double d = geo::HaversineMeters(hotspot, midpoints_[static_cast<size_t>(id)]);
      if (d < best_dist) {
        best_dist = d;
        best = id;
      }
    }
    return best;
  }
  return static_cast<roadnet::SegmentId>(rng_.UniformInt(0, network_.num_segments() - 1));
}

std::optional<GeneratedTrajectory> TrajectoryGenerator::GenerateOne() {
  for (int attempt = 0; attempt < 12; ++attempt) {
    roadnet::SegmentId origin = SampleEndpoint();
    roadnet::SegmentId destination = SampleEndpoint();
    if (origin == destination) continue;
    const graph::CsrGraph& routing = routing_variants_[static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(routing_variants_.size()) - 1))];
    graph::ShortestPathTree tree = Dijkstra(routing, origin, destination);
    std::vector<graph::VertexId> path = ReconstructPath(tree, origin, destination);
    if (static_cast<int>(path.size()) < config_.min_route_segments) continue;
    // Taxi-style chained legs: keep driving to fresh destinations.
    for (int leg = 1; leg < config_.legs; ++leg) {
      graph::VertexId from = path.back();
      roadnet::SegmentId next = SampleEndpoint();
      if (next == from) continue;
      graph::ShortestPathTree leg_tree = Dijkstra(routing, from, next);
      std::vector<graph::VertexId> leg_path = ReconstructPath(leg_tree, from, next);
      if (leg_path.size() < 2) continue;
      path.insert(path.end(), leg_path.begin() + 1, leg_path.end());
    }
    if (static_cast<int>(path.size()) > config_.max_route_segments) {
      path.resize(static_cast<size_t>(config_.max_route_segments));
    }

    GeneratedTrajectory out;
    out.ground_truth.assign(path.begin(), path.end());

    // Emit GPS fixes: drive each segment start -> end at its cruise speed,
    // sampling every sample_interval_s with Gaussian position noise.
    double t = 0.0;
    double next_sample = 0.0;
    for (graph::VertexId sid : path) {
      const roadnet::RoadSegment& s = network_.segment(sid);
      double speed = CruiseSpeed(s);
      double duration = s.length_meters / std::max(speed, 0.5);
      while (next_sample <= t + duration) {
        double along = (next_sample - t) / duration;  // In [0, 1].
        geo::LatLng exact{
            s.start.lat + (s.end.lat - s.start.lat) * along,
            s.start.lng + (s.end.lng - s.start.lng) * along,
        };
        geo::LocalProjection proj(exact);
        geo::LatLng noisy = proj.ToLatLng(rng_.Normal(0.0, config_.gps_noise_meters),
                                          rng_.Normal(0.0, config_.gps_noise_meters));
        out.gps.points.push_back({noisy, next_sample});
        next_sample += config_.sample_interval_s;
      }
      t += duration;
    }
    if (out.gps.points.size() < 2) continue;
    return out;
  }
  return std::nullopt;
}

std::vector<GeneratedTrajectory> TrajectoryGenerator::Generate(int count) {
  std::vector<GeneratedTrajectory> out;
  out.reserve(static_cast<size_t>(count));
  int failures = 0;
  while (static_cast<int>(out.size()) < count && failures < count + 100) {
    std::optional<GeneratedTrajectory> one = GenerateOne();
    if (one.has_value()) {
      out.push_back(std::move(*one));
    } else {
      ++failures;
    }
  }
  return out;
}

}  // namespace sarn::traj
