#include "traj/io.h"

#include "common/csv.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace sarn::traj {

bool SaveTrajectoriesCsv(const std::vector<Trajectory>& trajectories,
                         const std::string& path) {
  CsvTable table;
  table.header = {"trajectory_id", "timestamp_s", "lat", "lng"};
  for (size_t id = 0; id < trajectories.size(); ++id) {
    for (const GpsPoint& p : trajectories[id].points) {
      table.rows.push_back({std::to_string(id), FormatDouble(p.timestamp_s, 3),
                            FormatDouble(p.position.lat, 7),
                            FormatDouble(p.position.lng, 7)});
    }
  }
  return WriteCsvFile(path, table);
}

std::optional<std::vector<Trajectory>> LoadTrajectoriesCsv(const std::string& path) {
  std::optional<CsvTable> table = ReadCsvFile(path, /*has_header=*/true);
  if (!table.has_value() || table->header.size() != 4) return std::nullopt;
  std::vector<Trajectory> trajectories;
  for (const auto& row : table->rows) {
    if (row.size() != 4) return std::nullopt;
    auto id = ParseInt(row[0]);
    auto timestamp = ParseDouble(row[1]);
    auto lat = ParseDouble(row[2]);
    auto lng = ParseDouble(row[3]);
    if (!id || !timestamp || !lat || !lng || *id < 0) {
      SARN_LOG(Error) << "malformed trajectory row in " << path;
      return std::nullopt;
    }
    if (static_cast<size_t>(*id) >= trajectories.size()) {
      trajectories.resize(static_cast<size_t>(*id) + 1);
    }
    trajectories[static_cast<size_t>(*id)].points.push_back(
        {geo::LatLng{*lat, *lng}, *timestamp});
  }
  return trajectories;
}

bool SaveMatchedCsv(const std::vector<MatchedTrajectory>& matched,
                    const std::string& path) {
  CsvTable table;
  table.header = {"trajectory_id", "position", "segment_id"};
  for (size_t id = 0; id < matched.size(); ++id) {
    for (size_t k = 0; k < matched[id].segments.size(); ++k) {
      table.rows.push_back({std::to_string(id), std::to_string(k),
                            std::to_string(matched[id].segments[k])});
    }
  }
  return WriteCsvFile(path, table);
}

std::optional<std::vector<MatchedTrajectory>> LoadMatchedCsv(const std::string& path) {
  std::optional<CsvTable> table = ReadCsvFile(path, /*has_header=*/true);
  if (!table.has_value() || table->header.size() != 3) return std::nullopt;
  std::vector<MatchedTrajectory> matched;
  for (const auto& row : table->rows) {
    if (row.size() != 3) return std::nullopt;
    auto id = ParseInt(row[0]);
    auto position = ParseInt(row[1]);
    auto segment = ParseInt(row[2]);
    if (!id || !position || !segment || *id < 0 || *position < 0) {
      SARN_LOG(Error) << "malformed matched row in " << path;
      return std::nullopt;
    }
    if (static_cast<size_t>(*id) >= matched.size()) {
      matched.resize(static_cast<size_t>(*id) + 1);
    }
    std::vector<roadnet::SegmentId>& segments =
        matched[static_cast<size_t>(*id)].segments;
    if (static_cast<size_t>(*position) != segments.size()) {
      SARN_LOG(Error) << "out-of-order matched rows in " << path;
      return std::nullopt;
    }
    segments.push_back(*segment);
  }
  return matched;
}

}  // namespace sarn::traj
