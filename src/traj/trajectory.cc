#include "traj/trajectory.h"

#include "common/check.h"

namespace sarn::traj {

double Trajectory::LengthMeters() const {
  double total = 0.0;
  for (size_t i = 1; i < points.size(); ++i) {
    total += geo::HaversineMeters(points[i - 1].position, points[i].position);
  }
  return total;
}

std::vector<Trajectory> SplitOnTimeGap(const Trajectory& trajectory, double max_gap_s) {
  SARN_CHECK_GT(max_gap_s, 0.0);
  std::vector<Trajectory> pieces;
  Trajectory current;
  for (const GpsPoint& p : trajectory.points) {
    if (!current.points.empty() &&
        p.timestamp_s - current.points.back().timestamp_s > max_gap_s) {
      if (current.points.size() >= 2) pieces.push_back(std::move(current));
      current = Trajectory{};
    }
    current.points.push_back(p);
  }
  if (current.points.size() >= 2) pieces.push_back(std::move(current));
  return pieces;
}

MatchedTrajectory TruncateSegments(const MatchedTrajectory& matched,
                                   size_t max_segments) {
  MatchedTrajectory out;
  size_t n = std::min(matched.segments.size(), max_segments);
  out.segments.assign(matched.segments.begin(),
                      matched.segments.begin() + static_cast<int64_t>(n));
  return out;
}

std::vector<geo::LatLng> MatchedMidpoints(const MatchedTrajectory& matched,
                                          const roadnet::RoadNetwork& network) {
  std::vector<geo::LatLng> midpoints;
  midpoints.reserve(matched.segments.size());
  for (roadnet::SegmentId id : matched.segments) {
    midpoints.push_back(network.segment(id).Midpoint());
  }
  return midpoints;
}

}  // namespace sarn::traj
