// Additional trajectory distance metrics.
//
// The paper uses the discrete Fréchet distance as ground truth and notes it
// is "straightforward to replace it with another metric" (§5.2.2); these are
// the two most common alternatives in the trajectory-query literature:
// dynamic time warping (Keogh & Ratanamahatana) and the (symmetric)
// Hausdorff distance. The trajectory-similarity task can be configured to
// use any of the three.

#ifndef SARN_TRAJ_SIMILARITY_METRICS_H_
#define SARN_TRAJ_SIMILARITY_METRICS_H_

#include <vector>

#include "geo/point.h"

namespace sarn::traj {

enum class SimilarityMetric {
  kFrechet = 0,
  kDtw = 1,
  kHausdorff = 2,
};

/// Dynamic time warping distance: minimum total point-to-point cost over
/// monotone alignments, meters (sum-of-costs, not normalised).
double DynamicTimeWarping(const std::vector<geo::LatLng>& a,
                          const std::vector<geo::LatLng>& b);

/// Symmetric Hausdorff distance between point sets, meters.
double HausdorffDistance(const std::vector<geo::LatLng>& a,
                         const std::vector<geo::LatLng>& b);

/// Dispatches to Fréchet / DTW / Hausdorff.
double TrajectoryDistance(SimilarityMetric metric, const std::vector<geo::LatLng>& a,
                          const std::vector<geo::LatLng>& b);

}  // namespace sarn::traj

#endif  // SARN_TRAJ_SIMILARITY_METRICS_H_
