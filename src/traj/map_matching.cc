#include "traj/map_matching.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "graph/dijkstra.h"

namespace sarn::traj {

double PointToSegmentMeters(const geo::LatLng& point, const geo::LatLng& seg_start,
                            const geo::LatLng& seg_end) {
  geo::LocalProjection proj(seg_start);
  double px = 0, py = 0, ex = 0, ey = 0;
  proj.ToMeters(point, &px, &py);
  proj.ToMeters(seg_end, &ex, &ey);
  double len_sq = ex * ex + ey * ey;
  if (len_sq < 1e-9) return std::sqrt(px * px + py * py);
  double t = std::clamp((px * ex + py * ey) / len_sq, 0.0, 1.0);
  double dx = px - t * ex;
  double dy = py - t * ey;
  return std::sqrt(dx * dx + dy * dy);
}

MapMatcher::MapMatcher(const roadnet::RoadNetwork& network, MapMatcherConfig config)
    : network_(network),
      config_(config),
      midpoint_index_(network.Midpoints(),
                      std::max(50.0, network.MeanSegmentLength())),
      routing_graph_(network.ToLengthWeightedGraph()) {}

roadnet::SegmentId MapMatcher::SnapPoint(const geo::LatLng& point,
                                         std::optional<double> heading_radians) const {
  // Candidate segments: those whose midpoint is within snap radius plus half
  // the longest plausible segment; then rank by point-to-segment distance
  // plus (optionally) a heading-mismatch penalty.
  double scan_radius = config_.max_snap_meters + network_.MeanSegmentLength() * 2.0;
  std::vector<uint32_t> candidates = midpoint_index_.WithinRadius(point, scan_radius);
  roadnet::SegmentId best = -1;
  double best_score = config_.max_snap_meters;
  for (uint32_t id : candidates) {
    const roadnet::RoadSegment& s = network_.segment(id);
    double score = PointToSegmentMeters(point, s.start, s.end);
    if (score >= config_.max_snap_meters) continue;  // Geometric gate first.
    if (heading_radians.has_value()) {
      score += config_.heading_penalty_meters *
               geo::AngularDistance(*heading_radians, s.radian) / geo::kPi;
    }
    if (score < best_score) {
      best_score = score;
      best = static_cast<roadnet::SegmentId>(id);
    }
  }
  return best;
}

MatchedTrajectory MapMatcher::Match(const Trajectory& trajectory) const {
  MatchedTrajectory matched;
  for (size_t k = 0; k < trajectory.points.size(); ++k) {
    const GpsPoint& p = trajectory.points[k];
    // Travel heading from the surrounding fixes (forward difference; falls
    // back to backward difference on the last point).
    std::optional<double> heading;
    const geo::LatLng* from = nullptr;
    const geo::LatLng* to = nullptr;
    if (k + 1 < trajectory.points.size()) {
      from = &p.position;
      to = &trajectory.points[k + 1].position;
    } else if (k > 0) {
      from = &trajectory.points[k - 1].position;
      to = &p.position;
    }
    if (from != nullptr && geo::HaversineMeters(*from, *to) > 1.0) {
      heading = geo::SegmentRadian(*from, *to);
    }
    roadnet::SegmentId snapped = SnapPoint(p.position, heading);
    if (snapped < 0) continue;  // Outlier fix.
    if (!matched.segments.empty() && matched.segments.back() == snapped) continue;
    if (!matched.segments.empty()) {
      roadnet::SegmentId prev = matched.segments.back();
      // Bridge the gap with the shortest connecting path if prev -> snapped
      // is not a direct topological step.
      bool adjacent = false;
      for (graph::VertexId u : routing_graph_.OutNeighbors(prev)) {
        if (u == snapped) {
          adjacent = true;
          break;
        }
      }
      if (!adjacent) {
        graph::ShortestPathTree tree = Dijkstra(
            routing_graph_, prev, snapped,
            /*max_distance=*/network_.MeanSegmentLength() *
                (config_.max_bridge_segments + 2) * 2.0);
        std::vector<graph::VertexId> path = ReconstructPath(tree, prev, snapped);
        if (path.size() >= 2 &&
            static_cast<int>(path.size()) - 2 <= config_.max_bridge_segments) {
          // Append intermediates (skip endpoints: prev present, snapped below).
          for (size_t k = 1; k + 1 < path.size(); ++k) {
            matched.segments.push_back(path[k]);
          }
        }
        // Unreachable or too long: accept the jump as-is (GPS tunnel gap).
      }
    }
    matched.segments.push_back(snapped);
  }
  return matched;
}

}  // namespace sarn::traj
